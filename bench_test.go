// Benchmarks regenerating every table and figure of the paper's evaluation
// (DATE 2005), plus ablations of the design choices called out in DESIGN.md.
// Each benchmark measures the kernel that produces the artifact and prints
// the artifact's rows once per `go test -bench` process, so
// `go test -bench=. -benchmem` doubles as the reproduction run. Run counts
// are reduced from the paper's 10000 to keep bench iterations meaningful;
// cmd/dtmb-experiments regenerates the full-resolution numbers.
package dmfb_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"dmfb/client"
	"dmfb/internal/chip"
	"dmfb/internal/defects"
	"dmfb/internal/experiments"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/service"
	"dmfb/internal/stats"
	"dmfb/internal/yieldsim"
)

// printOnce prints each artifact a single time even though benchmarks run
// with increasing b.N.
var printOnce sync.Map

func printArtifact(name, body string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, body)
	}
}

func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Runs = 400
	return cfg
}

// BenchmarkTable1RedundancyRatios regenerates Table 1 (redundancy ratios of
// the four DTMB designs).
func BenchmarkTable1RedundancyRatios(b *testing.B) {
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.Table1()
	}
	printArtifact("Table 1", tb.String())
}

// BenchmarkFigure2ShiftedReplacementCost regenerates the Fig. 2 comparison:
// shifted replacement on a spare-row array vs interstitial reconfiguration.
func BenchmarkFigure2ShiftedReplacementCost(b *testing.B) {
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, err = experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Figure 2", tb.String())
}

// BenchmarkFigure7YieldDTMB16 regenerates Fig. 7: the analytical DTMB(1,6)
// yield curves against the no-redundancy baseline.
func BenchmarkFigure7YieldDTMB16(b *testing.B) {
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		_, tb = experiments.Figure7(nil, nil)
	}
	printArtifact("Figure 7", tb.String())
}

// BenchmarkFigure8MatchingExample regenerates Fig. 8: the bipartite matching
// between faulty primaries and adjacent fault-free spares.
func BenchmarkFigure8MatchingExample(b *testing.B) {
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, err = experiments.Figure8(2005)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Figure 8", tb.String())
}

// BenchmarkFigure9MonteCarloYield regenerates Fig. 9: Monte-Carlo yield of
// DTMB(2,6)/(3,6)/(4,4) vs p (reduced run count and grid for benchmarking).
func BenchmarkFigure9MonteCarloYield(b *testing.B) {
	cfg := benchCfg()
	ps := []float64{0.90, 0.95, 0.99}
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, err = experiments.Figure9(cfg, []int{100}, ps)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Figure 9 (n=100, reduced runs)", tb.String())
}

// BenchmarkFigure10EffectiveYield regenerates Fig. 10: effective yield of
// all four designs at n = 100.
func BenchmarkFigure10EffectiveYield(b *testing.B) {
	cfg := benchCfg()
	ps := []float64{0.80, 0.90, 0.95, 0.99, 0.999}
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, err = experiments.Figure10(cfg, ps)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Figure 10 (reduced runs)", tb.String())
}

// BenchmarkCaseStudyBaselineYield regenerates the §7 baseline: the original
// 108-cell chip's yield, 0.3378 at p = 0.99.
func BenchmarkCaseStudyBaselineYield(b *testing.B) {
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.CaseStudyBaseline(nil)
	}
	printArtifact("Case-study baseline", tb.String())
}

// BenchmarkFigure13CaseStudyYield regenerates Fig. 13: yield of the
// DTMB(2,6)-based redesign vs the number of injected faults, under all four
// fault-domain/repair-scope policies.
func BenchmarkFigure13CaseStudyYield(b *testing.B) {
	cfg := benchCfg()
	ms := []int{0, 10, 20, 30, 35, 40, 50}
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, err = experiments.Figure13(cfg, ms, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Figure 13 (reduced runs)", tb.String())
}

// BenchmarkAblationMatchingAlgorithms compares the Hopcroft–Karp and Kuhn
// matching kernels on the case-study reconfiguration workload.
func BenchmarkAblationMatchingAlgorithms(b *testing.B) {
	c, err := chip.NewRedesignedChip()
	if err != nil {
		b.Fatal(err)
	}
	arr := c.Array()
	in := defects.NewInjector(1)
	for _, alg := range []struct {
		name string
		kuhn bool
	}{{"hopcroft-karp", false}, {"kuhn", true}} {
		b.Run(alg.name, func(b *testing.B) {
			var fs *defects.FaultSet
			for i := 0; i < b.N; i++ {
				var err error
				fs, err = in.FixedCount(arr, 35, defects.AllCells, fs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := reconfig.LocalReconfigure(arr, fs, reconfig.Options{UseKuhn: alg.kuhn}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDTMB26Variants compares the two DTMB(2,6) geometries
// (Fig. 4a vs Fig. 4b) at equal redundancy.
func BenchmarkAblationDTMB26Variants(b *testing.B) {
	cfg := benchCfg()
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = experiments.VariantAblation(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Ablation: DTMB(2,6) variants", tb.String())
}

// BenchmarkAblationBoundaryEffects compares cluster-complete DTMB(1,6)
// arrays (the analytical model's geometry) against parallelogram arrays.
func BenchmarkAblationBoundaryEffects(b *testing.B) {
	cfg := benchCfg()
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = experiments.BoundaryAblation(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Ablation: boundary effects", tb.String())
}

// BenchmarkAblationFaultDomainPolicies isolates the Fig. 13 policy choice:
// the same m under the four fault-domain/repair-scope combinations.
func BenchmarkAblationFaultDomainPolicies(b *testing.B) {
	cfg := benchCfg()
	var points []experiments.Figure13Point
	for i := 0; i < b.N; i++ {
		var err error
		points, _, err = experiments.Figure13(cfg, []int{35}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	body := ""
	for _, pt := range points {
		body += fmt.Sprintf("m=%d %-28s yield %.4f\n", pt.M, pt.Policy, pt.Result.Yield)
	}
	printArtifact("Ablation: Fig. 13 policies at m=35", body)
}

// BenchmarkMonteCarloKernel measures the raw Monte-Carlo yield kernel on
// the paper's largest sweep configuration (n = 240, DTMB(4,4)).
func BenchmarkMonteCarloKernel(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB44(), 240)
	if err != nil {
		b.Fatal(err)
	}
	mc := yieldsim.NewMonteCarlo(1)
	mc.Runs = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Yield(arr, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveHighSurvival quantifies precision-targeted early stopping
// in the regime it was built for: p = 0.999, where the proportion is so
// lopsided that the Wilson half-width collapses long before a worst-case
// fixed budget is spent. Both sides answer the same question to the same
// guaranteed precision; "fixed" pays the full a-priori trial count while
// "adaptive" stops at the first chunk boundary whose realized half-width
// meets epsilon.
func BenchmarkAdaptiveHighSurvival(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 20000
	b.Run("fixed", func(b *testing.B) {
		mc := yieldsim.NewMonteCarlo(1)
		mc.Runs = budget
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mc.Yield(arr, 0.999); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		mc := yieldsim.NewMonteCarlo(1)
		mc.Runs = budget
		mc.Epsilon = 0.002
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := mc.Yield(arr, 0.999)
			if err != nil {
				b.Fatal(err)
			}
			if res.Runs >= budget {
				b.Fatalf("adaptive pass never stopped early (%d trials)", res.Runs)
			}
		}
	})
}

// BenchmarkFootprintComparison regenerates the square-vs-hexagonal footprint
// figure (local and hex sweep strategies through the sweep engine).
func BenchmarkFootprintComparison(b *testing.B) {
	cfg := benchCfg()
	var tb stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, err = experiments.FootprintComparison(cfg, []string{"DTMB(2,6)"}, []int{100}, []float64{0.92, 0.96})
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("Footprint comparison (reduced runs)", tb.String())
}

// BenchmarkHexYieldKernel measures the Monte-Carlo yield kernel on a
// hexagonal-footprint DTMB array (build cost excluded; the kernel and the
// six-neighbor reconfiguration matcher dominate).
func BenchmarkHexYieldKernel(b *testing.B) {
	arr, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	mc := yieldsim.NewMonteCarlo(1)
	mc.Runs = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.YieldModelContext(context.Background(), arr, 0.95, defects.Model{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHexYieldKernelHighSurvival measures the same hex kernel at
// p = 0.999, the near-perfect-process regime where most faulty draws repeat
// a handful of 1–2 fault patterns — the workload the per-worker feasibility
// memo targets (hit rate approaches 100%, vs near zero at p = 0.95).
func BenchmarkHexYieldKernelHighSurvival(b *testing.B) {
	arr, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	mc := yieldsim.NewMonteCarlo(1)
	mc.Runs = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.YieldModelContext(context.Background(), arr, 0.999, defects.Model{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusteredDefectKernel measures the clustered-defect yield kernel
// (clustered injection + local reconfiguration) at the same workload as
// BenchmarkHexYieldKernel's independent model.
func BenchmarkClusteredDefectKernel(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	mc := yieldsim.NewMonteCarlo(1)
	mc.Runs = 1000
	model := defects.Model{Clustered: true, ClusterSize: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.YieldModelContext(context.Background(), arr, 0.95, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusteredInjector isolates the raw clustered-injection draw from
// the reconfiguration matcher.
func BenchmarkClusteredInjector(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	in := defects.NewInjector(1)
	cp := defects.ClusterParams{MeanDefects: 7, ClusterSize: 4}
	var fs *defects.FaultSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, _, err = in.Clustered(arr, cp, fs)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJobStore measures the v2 job machinery itself — plan, job
// registration, per-point emission/encoding, completion — on a 202-point
// closed-form grid, so no Monte-Carlo time drowns the store overhead.
func BenchmarkJobStore(b *testing.B) {
	engine := service.NewEngine(service.EngineConfig{DefaultRuns: 100})
	jobs := service.NewJobStore(engine, service.JobStoreConfig{MaxJobs: 4})
	defer jobs.Close(context.Background())
	req := service.SweepRequest{
		Strategies: []string{"none"},
		NPrimaries: []int{100, 200},
		PMin:       0.90, PMax: 1.00, PPoints: 101,
		Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := jobs.Create(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		st, err := j.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if st.State != service.JobCompleted || st.PointsDone != 202 {
			b.Fatalf("job ended %+v", st)
		}
	}
}

// BenchmarkClientJobStream measures end-to-end streaming throughput of the
// typed client over HTTP: one pass decodes every record of a completed
// 202-point job through GET /v2/jobs/{id}/results.
func BenchmarkClientJobStream(b *testing.B) {
	engine := service.NewEngine(service.EngineConfig{DefaultRuns: 100})
	jobs := service.NewJobStore(engine, service.JobStoreConfig{})
	defer jobs.Close(context.Background())
	srv := httptest.NewServer(service.NewHandler(engine, jobs, nil))
	defer srv.Close()
	c := client.New(srv.URL)
	st, err := c.CreateJob(context.Background(), service.SweepRequest{
		Strategies: []string{"none"},
		NPrimaries: []int{100, 200},
		PMin:       0.90, PMax: 1.00, PPoints: 101,
		Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Job(context.Background(), st.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		next, err := c.StreamJobResults(context.Background(), st.ID, 0, func(service.SweepRecord) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if next != 202 || n != 202 {
			b.Fatalf("streamed %d records, next %d", n, next)
		}
	}
}

// BenchmarkCaseStudyReconfiguration measures one full inject-and-repair
// cycle on the redesigned case-study chip at the paper's headline fault
// count (m = 35).
func BenchmarkCaseStudyReconfiguration(b *testing.B) {
	c, err := chip.NewRedesignedChip()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.InjectFixed(int64(i), 35, defects.AllCells); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Reconfigure(); err != nil {
			b.Fatal(err)
		}
	}
}
