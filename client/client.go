// Package client is the typed Go client of the dtmb-serve HTTP API. It
// speaks both surfaces — the v1 request/response endpoints and the v2
// scenario-first endpoints — re-using the server's own wire types, so a
// request that compiles here is a request the server validates.
//
// The v2 job methods make asynchronous sweeps practical over unreliable
// connections: CreateJob starts a sweep on the server, StreamJobResults
// streams its NDJSON records and, because the server's result streams are
// cursor-resumable with byte-identical replay, transparently reconnects
// after a dropped connection and resumes at the first unread record. RunJob
// bundles create + stream for callers that just want every record.
//
//	c := client.New("http://localhost:8080")
//	rec, err := c.Evaluate(ctx, client.Scenario{
//		Strategy: "hex", Design: "DTMB(2,6)", NPrimary: 100, P: 0.95, Seed: 7,
//	})
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dmfb/internal/service"
)

// Wire types, shared with the server so client and service cannot drift.
type (
	// Scenario is one fully specified yield scenario plus its simulation
	// parameters — the request shape of POST /v2/evaluate.
	Scenario = service.ScenarioRequest
	// ScenarioResult is one evaluated scenario.
	ScenarioResult = service.ScenarioRecord
	// SweepRequest describes a Cartesian grid of scenarios — the request
	// shape of POST /v1/sweep and POST /v2/jobs.
	SweepRequest = service.SweepRequest
	// SweepRecord is one grid point's result: its index plus its scenario.
	SweepRecord = service.SweepRecord
	// JobStatus is a sweep job snapshot.
	JobStatus = service.JobStatus
	// YieldRequest, YieldResponse, RecommendRequest, RecommendResponse,
	// ReconfigureRequest, ReconfigureResponse and StatsResponse are the v1
	// contracts.
	YieldRequest        = service.YieldRequest
	YieldResponse       = service.YieldResponse
	RecommendRequest    = service.RecommendRequest
	RecommendResponse   = service.RecommendResponse
	ReconfigureRequest  = service.ReconfigureRequest
	ReconfigureResponse = service.ReconfigureResponse
	StatsResponse       = service.StatsResponse
	// WorkerRegisterRequest/Response, ShardLease, and ShardResultRequest are
	// the worker↔coordinator dispatch contracts (POST /v2/workers/*), used by
	// the dtmb-worker binary with this client as its transport.
	WorkerRegisterRequest  = service.WorkerRegisterRequest
	WorkerRegisterResponse = service.WorkerRegisterResponse
	ShardLease             = service.ShardLease
	ShardResultRequest     = service.ShardResultRequest
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Message is the server's error string.
	Message string
	// RequestID is the response's X-Request-ID — the server-side trace ID
	// of the failed request. Quote it when reporting a problem: it joins
	// this call to the server's access log and kernel spans.
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("server returned %d (request %s): %s", e.StatusCode, e.RequestID, e.Message)
	}
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// StreamError is the trailing {"error": ...} record of an NDJSON stream —
// the server's signal that a sweep or job ended incompletely (failed or
// cancelled) rather than a transport fault.
type StreamError struct {
	Message string
}

func (e *StreamError) Error() string { return "stream ended with error: " + e.Message }

// Client talks to one dtmb-serve base URL.
type Client struct {
	base      string
	httpc     *http.Client
	policy    Policy
	requestID string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithPolicy installs the retry/backoff/deadline policy governing every
// retried path: idempotent request retries, stream reconnects, and the
// per-attempt timeout. Zero fields fall back to DefaultPolicy.
func WithPolicy(p Policy) Option {
	return func(c *Client) { c.policy = p }
}

// WithRetry is the legacy retry knob, kept as a shim over WithPolicy: up to
// retries reconnect attempts per silent period (progress refills the
// budget), backoff apart. retries 0 disables resumption.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) {
		c.policy.MaxAttempts = retries + 1
		c.policy.BaseBackoff = backoff
	}
}

// WithRequestID sets the X-Request-ID header on every request this client
// sends. The server adopts it as the request's trace ID, so one
// caller-chosen token links the client call to the server's access log and
// kernel spans. Empty (the default) lets the server assign IDs.
func WithRequestID(id string) Option {
	return func(c *Client) { c.requestID = id }
}

// New builds a client for the server at base (e.g. "http://localhost:8080").
// The stock *http.Client carries explicit transport limits (dial, TLS, and
// response-header timeouts) so a stalled server surfaces as an error instead
// of hanging the caller forever; see defaultTransport.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:   strings.TrimRight(base, "/"),
		httpc:  &http.Client{Transport: defaultTransport()},
		policy: DefaultPolicy(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one JSON round-trip: POST body (or bare GET/DELETE when in is
// nil) and decode the 2xx response into out. Idempotent methods (GET,
// DELETE) are retried under the client's policy on transport faults and
// 5xx/429 answers; POSTs get exactly one attempt — the server deduplicates
// worker submissions, but a blindly retried POST /v2/jobs would duplicate
// the job itself, so non-idempotent retry stays the caller's decision.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if method == http.MethodGet || method == http.MethodDelete {
		return c.policy.Do(ctx, func(actx context.Context) error {
			return c.doOnce(actx, method, path, in, out)
		})
	}
	if t := c.policy.normalized().AttemptTimeout; t > 0 {
		actx, cancel := context.WithTimeout(ctx, t)
		defer cancel()
		ctx = actx
	}
	return c.doOnce(ctx, method, path, in, out)
}

// doOnce is a single JSON round-trip.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.requestID != "" {
		req.Header.Set("X-Request-ID", c.requestID)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	var eb struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(string(raw))
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Message:    eb.Error,
		RequestID:  resp.Header.Get("X-Request-ID"),
	}
}

// Evaluate runs one scenario via POST /v2/evaluate.
func (c *Client) Evaluate(ctx context.Context, sc Scenario) (ScenarioResult, error) {
	var out ScenarioResult
	err := c.do(ctx, http.MethodPost, "/v2/evaluate", &sc, &out)
	return out, err
}

// Yield runs POST /v1/yield.
func (c *Client) Yield(ctx context.Context, req YieldRequest) (YieldResponse, error) {
	var out YieldResponse
	err := c.do(ctx, http.MethodPost, "/v1/yield", &req, &out)
	return out, err
}

// Recommend runs POST /v1/recommend.
func (c *Client) Recommend(ctx context.Context, req RecommendRequest) (RecommendResponse, error) {
	var out RecommendResponse
	err := c.do(ctx, http.MethodPost, "/v1/recommend", &req, &out)
	return out, err
}

// Reconfigure runs POST /v1/reconfigure.
func (c *Client) Reconfigure(ctx context.Context, req ReconfigureRequest) (ReconfigureResponse, error) {
	var out ReconfigureResponse
	err := c.do(ctx, http.MethodPost, "/v1/reconfigure", &req, &out)
	return out, err
}

// Stats runs GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// CreateJob starts an asynchronous sweep via POST /v2/jobs and returns its
// initial status (the job is already running).
func (c *Client) CreateJob(ctx context.Context, req SweepRequest) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v2/jobs", &req, &out)
	return out, err
}

// Job fetches a job's status via GET /v2/jobs/{id}.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// CancelJob cancels a job via DELETE /v2/jobs/{id}; the returned status is
// already terminal.
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/v2/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// StreamJobResults streams a job's records from the given cursor, invoking
// fn for each in grid order, following a still-running job until it
// finishes. A dropped connection is resumed transparently at the first
// unread record (the server replays identical bytes for any range, so the
// caller observes the exact uninterrupted sequence); after the configured
// reconnect budget is exhausted without progress, the last transport error
// surfaces. A job that failed or was cancelled server-side surfaces as a
// *StreamError after its final record. Returns the next cursor — the number
// of records consumed from the start of the stream, which doubles as the
// resume point for a later call.
func (c *Client) StreamJobResults(ctx context.Context, id string, cursor int, fn func(SweepRecord) error) (int, error) {
	budget := c.policy.normalized().MaxAttempts - 1
	attempts := 0
	for {
		n, err := c.streamOnce(ctx, id, cursor, fn)
		if n > cursor {
			attempts = 0 // progress: refill the reconnect budget
		}
		cursor = n
		if err == nil || ctx.Err() != nil {
			return cursor, err
		}
		// fn aborted the stream: that is the caller's decision, not a
		// transport fault — surface their error untouched, no retries.
		var cbErr *callbackError
		if errors.As(err, &cbErr) {
			return cursor, cbErr.err
		}
		// Definitive server answers (4xx, terminal stream error records) are
		// not retryable; transport faults and 5xx are, under the policy's
		// jittered backoff, until the budget runs dry without progress.
		if !Retryable(err) {
			return cursor, err
		}
		if attempts++; attempts > budget {
			return cursor, fmt.Errorf("client: stream of job %s lost at cursor %d after %d reconnects: %w",
				id, cursor, budget, err)
		}
		if serr := sleepCtx(ctx, c.policy.Backoff(attempts-1)); serr != nil {
			return cursor, serr
		}
	}
}

// Jitter spreads a retry delay uniformly over [d/2, 3d/2). Fixed-interval
// retries from a fleet of clients that all lost the same server arrive back
// in lockstep — a thundering herd against the restarted process; jitter
// decorrelates them. Exposed for callers (the dtmb-worker lease loop) that
// build their own retry schedules around this client.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + rand.N(d)
}

// streamOnce performs one GET /v2/jobs/{id}/results?cursor=N pass.
func (c *Client) streamOnce(ctx context.Context, id string, cursor int, fn func(SweepRecord) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/jobs/"+url.PathEscape(id)+"/results?cursor="+strconv.Itoa(cursor), nil)
	if err != nil {
		return cursor, err
	}
	if c.requestID != "" {
		req.Header.Set("X-Request-ID", c.requestID)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return cursor, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cursor, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// One decode serves both cases: a result record never carries an
		// "error" key, and the terminal error record carries nothing else.
		var rec struct {
			SweepRecord
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return cursor, fmt.Errorf("client: malformed stream record: %w", err)
		}
		if rec.Error != "" {
			return cursor, &StreamError{Message: rec.Error}
		}
		if err := fn(rec.SweepRecord); err != nil {
			return cursor, &callbackError{err: err}
		}
		cursor++
	}
	return cursor, sc.Err()
}

// callbackError tags an error returned by the caller's per-record callback,
// so the resume loop can distinguish a deliberate abort from a transport
// fault (which is retried, re-invoking the callback from the last consumed
// record).
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// Ready probes GET /readyz; a nil error means the server is accepting work
// (the durable store finished replaying and shutdown has not begun). Workers
// poll this before registering so they never race a coordinator's replay.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// RegisterWorker announces a worker via POST /v2/workers/register and
// returns its assigned ID plus the coordinator's lease TTL.
func (c *Client) RegisterWorker(ctx context.Context, req WorkerRegisterRequest) (WorkerRegisterResponse, error) {
	var out WorkerRegisterResponse
	err := c.do(ctx, http.MethodPost, "/v2/workers/register", &req, &out)
	return out, err
}

// LeaseShard asks the coordinator for one shard of work via
// POST /v2/workers/lease. A (nil, nil) return means no work is currently
// available (HTTP 204); the worker should back off — with Jitter — and retry.
func (c *Client) LeaseShard(ctx context.Context, workerID string) (*ShardLease, error) {
	in := service.LeaseRequest{WorkerID: workerID}
	buf, err := json.Marshal(&in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/workers/lease", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.requestID != "" {
		req.Header.Set("X-Request-ID", c.requestID)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil
	case resp.StatusCode/100 != 2:
		return nil, decodeError(resp)
	}
	lease := new(ShardLease)
	if err := json.NewDecoder(resp.Body).Decode(lease); err != nil {
		return nil, err
	}
	return lease, nil
}

// HeartbeatLease renews a shard lease via POST /v2/workers/heartbeat. An
// *APIError with StatusCode 410 means the lease is gone — expired and
// redispatched, or its job cancelled — and the worker should abandon the
// shard's evaluation.
func (c *Client) HeartbeatLease(ctx context.Context, workerID, leaseID string) error {
	in := service.HeartbeatRequest{WorkerID: workerID, LeaseID: leaseID}
	return c.do(ctx, http.MethodPost, "/v2/workers/heartbeat", &in, nil)
}

// SubmitShard delivers a completed shard's records via
// POST /v2/workers/results. Submission is idempotent server-side, so a
// worker may safely retry after a transport fault.
func (c *Client) SubmitShard(ctx context.Context, req ShardResultRequest) error {
	return c.do(ctx, http.MethodPost, "/v2/workers/results", &req, nil)
}

// RunJob creates a sweep job and streams every record through fn, resuming
// across disconnects; it returns the job's terminal status. The one-call
// replacement for a synchronous POST /v1/sweep.
func (c *Client) RunJob(ctx context.Context, req SweepRequest, fn func(SweepRecord) error) (JobStatus, error) {
	st, err := c.CreateJob(ctx, req)
	if err != nil {
		return st, err
	}
	if _, err := c.StreamJobResults(ctx, st.ID, 0, fn); err != nil {
		return st, err
	}
	return c.Job(ctx, st.ID)
}
