package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmfb/client"
	"dmfb/internal/service"
)

// newTestServer runs the full production handler stack (middleware
// included) over httptest, so client tests exercise exactly what
// dtmb-serve serves.
func newTestServer(t *testing.T, cfg service.EngineConfig) (*httptest.Server, *service.Store) {
	t.Helper()
	engine := service.NewEngine(cfg)
	jobs := service.NewJobStore(engine, service.JobStoreConfig{})
	logger := slog.New(slog.NewJSONHandler(testWriter{t}, nil))
	srv := httptest.NewServer(service.NewHandler(engine, jobs, logger))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := jobs.Close(ctx); err != nil {
			t.Errorf("job store close: %v", err)
		}
	})
	return srv, jobs
}

// testWriter routes the server's access log into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimSpace(p))
	return len(p), nil
}

var jobGrid = client.SweepRequest{
	Strategies:   []string{"none", "local", "shifted", "hex"},
	Designs:      []string{"DTMB(2,6)"},
	NPrimaries:   []int{40},
	Ps:           []float64{0.9, 0.95},
	SpareRows:    []int{1},
	DefectModels: []string{"independent", "clustered"},
	ClusterSize:  4,
	Runs:         150,
	Seed:         11,
}

func TestClientV1RoundTrips(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 200, CacheSize: 32})
	c := client.New(srv.URL)
	ctx := context.Background()

	y, err := c.Yield(ctx, client.YieldRequest{Design: "dtmb26", NPrimary: 60, P: 0.95, Runs: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if y.Design != "DTMB(2,6)" || y.Yield <= 0 || y.Yield > 1 {
		t.Errorf("yield %+v", y)
	}

	rec, err := c.Recommend(ctx, client.RecommendRequest{P: 0.95, NPrimary: 40, Runs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best == "" || len(rec.Analyses) == 0 {
		t.Errorf("recommend %+v", rec)
	}

	rc, err := c.Reconfigure(ctx, client.ReconfigureRequest{Design: "DTMB(2,6)", NPrimary: 60, FaultyCells: []int{0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !rc.OK {
		t.Errorf("reconfigure %+v", rc)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestClientEvaluateRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 200, CacheSize: 32})
	c := client.New(srv.URL)
	ctx := context.Background()

	res, err := c.Evaluate(ctx, client.Scenario{
		Strategy: "hex", Design: "DTMB(2,6)", NPrimary: 40, P: 0.95, Runs: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "hex" || res.Design != "DTMB(2,6)" || res.Yield <= 0 {
		t.Errorf("evaluate %+v", res)
	}

	// Server-side validation surfaces as a typed *APIError with the 400.
	_, err = c.Evaluate(ctx, client.Scenario{Strategy: "bogus", NPrimary: 40, P: 0.9})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid scenario error = %v", err)
	}
	if !strings.Contains(apiErr.Message, "unknown strategy") {
		t.Errorf("error message %q", apiErr.Message)
	}
}

// TestClientSurfacesRequestID pins the trace-ID contract: an APIError
// carries the response's X-Request-ID (server-assigned by default,
// caller-chosen via WithRequestID), and Error() prints it so even an
// unwrapped log line identifies the failed request server-side.
func TestClientSurfacesRequestID(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 150, CacheSize: 16})
	ctx := context.Background()
	bad := client.Scenario{Strategy: "bogus", NPrimary: 40, P: 0.9}

	_, err := client.New(srv.URL).Evaluate(ctx, bad)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if apiErr.RequestID == "" {
		t.Error("APIError.RequestID empty, want the server-assigned X-Request-ID")
	}
	if !strings.Contains(apiErr.Error(), apiErr.RequestID) {
		t.Errorf("Error() %q does not mention request ID %q", apiErr.Error(), apiErr.RequestID)
	}

	_, err = client.New(srv.URL, client.WithRequestID("trace-cli-7")).Evaluate(ctx, bad)
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if apiErr.RequestID != "trace-cli-7" {
		t.Errorf("APIError.RequestID = %q, want the caller-chosen trace-cli-7", apiErr.RequestID)
	}
}

func TestClientJobLifecycleRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 150, CacheSize: 64})
	c := client.New(srv.URL)
	ctx := context.Background()

	st, err := c.CreateJob(ctx, jobGrid)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.TotalPoints != 16 {
		t.Fatalf("created %+v", st)
	}

	var recs []client.SweepRecord
	next, err := c.StreamJobResults(ctx, st.ID, 0, func(r client.SweepRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 16 || len(recs) != 16 {
		t.Fatalf("streamed %d records, next %d", len(recs), next)
	}
	for i, r := range recs {
		if r.Index != i {
			t.Errorf("record %d has index %d", i, r.Index)
		}
	}

	got, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.JobCompleted || got.PointsDone != 16 {
		t.Errorf("final status %+v", got)
	}

	// A callback abort is the caller's error, surfaced as-is — not a
	// transport fault to retry (which would re-invoke the callback with
	// already-delivered records).
	errStop := errors.New("stop here")
	seen := 0
	next, err = c.StreamJobResults(ctx, st.ID, 0, func(client.SweepRecord) error {
		if seen == 3 {
			return errStop
		}
		seen++
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Errorf("callback abort surfaced as %v", err)
	}
	if next != 3 || seen != 3 {
		t.Errorf("callback invoked %d times, next %d; want 3, 3", seen, next)
	}

	// Unknown job: typed 404.
	_, err = c.Job(ctx, "job-999")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job error = %v", err)
	}
}

func TestClientCancelJobRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 150, MaxConcurrent: 1})
	c := client.New(srv.URL)
	ctx := context.Background()

	slow := client.SweepRequest{
		Strategies: []string{"local", "hex"}, Designs: []string{"DTMB(4,4)"},
		NPrimaries: []int{100}, PMin: 0.90, PMax: 0.99, PPoints: 16,
		DefectModels: []string{"independent", "clustered"}, Runs: 200000, Seed: 3,
	}
	st, err := c.CreateJob(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := c.CancelJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != service.JobCancelled {
		t.Fatalf("cancelled state %q", cancelled.State)
	}
	// The stream of a cancelled job surfaces a *StreamError, not silence.
	_, err = c.StreamJobResults(ctx, st.ID, 0, func(client.SweepRecord) error { return nil })
	var streamErr *client.StreamError
	if !errors.As(err, &streamErr) {
		t.Fatalf("cancelled stream error = %v", err)
	}
}

func TestClientRunJob(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 150, CacheSize: 64})
	c := client.New(srv.URL)

	count := 0
	st, err := c.RunJob(context.Background(), jobGrid, func(client.SweepRecord) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 16 || st.State != service.JobCompleted {
		t.Errorf("RunJob: %d records, status %+v", count, st)
	}
}

// TestClientMiddlewareContract covers the server middleware through the
// client's transport: POSTs without application/json are rejected with 415,
// and X-Request-ID round-trips.
func TestClientMiddlewareContract(t *testing.T) {
	srv, _ := newTestServer(t, service.EngineConfig{DefaultRuns: 150})

	resp, err := http.Post(srv.URL+"/v1/yield", "text/plain",
		strings.NewReader(`{"design":"DTMB(2,6)","n_primary":60,"p":0.95}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("plain-text POST status = %d, want 415", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "application/json") {
		t.Errorf("415 body: %v %q", err, eb.Error)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no generated X-Request-ID on response")
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "trace-42" {
		t.Errorf("echoed X-Request-ID = %q, want trace-42", got)
	}

	// A forged ID that could inject key=value fields into the access log is
	// discarded and replaced with a generated one.
	req2, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("X-Request-ID", "x status=500 remote=evil")
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "req-") {
		t.Errorf("forged X-Request-ID echoed back: %q", got)
	}
}

// chokeProxy forwards to a backend but aborts the connection of every
// results-stream response after limit bytes, until remaining kill budgets
// run out — a deterministic stand-in for a flaky network.
type chokeProxy struct {
	backend http.Handler
	mu      sync.Mutex
	kills   int
	limit   int
}

func (p *chokeProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	kill := p.kills > 0 && strings.HasSuffix(r.URL.Path, "/results")
	if kill {
		p.kills--
	}
	p.mu.Unlock()
	if !kill {
		p.backend.ServeHTTP(w, r)
		return
	}
	p.backend.ServeHTTP(&chokedWriter{ResponseWriter: w, remaining: p.limit}, r)
}

// chokedWriter aborts the handler (and with it the HTTP connection) once
// its byte budget is spent. Aborting mid-line exercises the client's
// partial-record handling.
type chokedWriter struct {
	http.ResponseWriter
	remaining int
}

func (w *chokedWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		if w.remaining > 0 {
			_, _ = w.ResponseWriter.Write(p[:w.remaining])
			if f, ok := w.ResponseWriter.(http.Flusher); ok {
				f.Flush()
			}
		}
		panic(http.ErrAbortHandler)
	}
	w.remaining -= len(p)
	return w.ResponseWriter.Write(p)
}

func (w *chokedWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClientResumesAfterKilledConnections kills the results connection
// mid-stream — mid-record, repeatedly — and asserts the client's automatic
// resume delivers every record exactly once, in order, with bytes identical
// to an uninterrupted stream.
func TestClientResumesAfterKilledConnections(t *testing.T) {
	engine := service.NewEngine(service.EngineConfig{DefaultRuns: 150, CacheSize: 64})
	jobs := service.NewJobStore(engine, service.JobStoreConfig{})
	defer jobs.Close(context.Background())
	backend := service.NewHandler(engine, jobs, slog.New(slog.NewJSONHandler(testWriter{t}, nil)))

	// 700 bytes is roughly two and a half records: every kill lands inside a
	// record, never on a clean boundary.
	proxy := &chokeProxy{backend: backend, kills: 3, limit: 700}
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	ctx := context.Background()
	c := client.New(srv.URL, client.WithRetry(5, 10*time.Millisecond))
	st, err := c.CreateJob(ctx, jobGrid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jobs.Get(st.ID); err != nil {
		t.Fatal(err)
	}

	var interrupted bytes.Buffer
	enc := json.NewEncoder(&interrupted)
	next, err := c.StreamJobResults(ctx, st.ID, 0, func(r client.SweepRecord) error {
		return enc.Encode(r)
	})
	if err != nil {
		t.Fatalf("stream with kills: %v", err)
	}
	if next != 16 {
		t.Fatalf("next cursor = %d, want 16", next)
	}

	// Reference: the same stream with no kills, re-encoded the same way.
	var clean bytes.Buffer
	cleanEnc := json.NewEncoder(&clean)
	if _, err := c.StreamJobResults(ctx, st.ID, 0, func(r client.SweepRecord) error {
		return cleanEnc.Encode(r)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(interrupted.Bytes(), clean.Bytes()) {
		t.Errorf("interrupted+resumed records differ from uninterrupted stream:\n%s\nvs\n%s",
			interrupted.Bytes(), clean.Bytes())
	}

	// The retry budget is finite: with a proxy that kills every attempt and
	// a job that never delivers a full record per attempt, the stream fails.
	proxy.mu.Lock()
	proxy.kills = 1 << 30
	proxy.limit = 10
	proxy.mu.Unlock()
	short := client.New(srv.URL, client.WithRetry(2, time.Millisecond))
	if _, err := short.StreamJobResults(ctx, st.ID, 0, func(client.SweepRecord) error { return nil }); err == nil {
		t.Error("stream against a dead network succeeded")
	}
}
