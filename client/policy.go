package client

import (
	"context"
	"errors"
	"math/rand/v2"
	"net"
	"net/http"
	"time"
)

// Policy is the client's unified retry discipline: capped exponential
// backoff with full jitter, an optional per-attempt timeout, and overall
// context-deadline propagation. One policy drives every retry loop in the
// stack — the client's idempotent calls, StreamJobResults reconnects, and
// the dtmb-worker's register/submit loops — so backoff behavior is tuned in
// one place instead of ad hoc at each call site.
//
// The zero value means defaults (4 attempts, 500ms base, 10s cap, no
// per-attempt timeout).
type Policy struct {
	// MaxAttempts bounds total tries per operation (first attempt included);
	// 0 means 4. For streams it bounds reconnects per silent period:
	// MaxAttempts-1 resumption attempts, refilled on progress.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; 0 means 500ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 10s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt with its own context
	// deadline (the overall ctx still governs the whole operation). 0 means
	// no per-attempt bound — appropriate for calls that legitimately compute
	// for a long time server-side. An expired attempt is retryable as long
	// as the parent context is still live.
	AttemptTimeout time.Duration
}

// DefaultPolicy returns the stock policy New installs.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseBackoff: 500 * time.Millisecond, MaxBackoff: 10 * time.Second}
}

// normalized fills zero fields with defaults.
func (p Policy) normalized() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

// Backoff returns the sleep before retry number attempt (0-based): a
// full-jitter draw uniform over [0, min(MaxBackoff, BaseBackoff<<attempt)).
// Full jitter beats fixed or half-jittered schedules at decorrelating a
// fleet that all lost the same server — retries spread across the whole
// window instead of clustering around multiples of the base.
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.normalized()
	ceil := p.BaseBackoff
	for i := 0; i < attempt && ceil < p.MaxBackoff; i++ {
		ceil *= 2
	}
	if ceil > p.MaxBackoff {
		ceil = p.MaxBackoff
	}
	if ceil <= 0 {
		return 0
	}
	return rand.N(ceil)
}

// Retryable classifies an error for retry purposes. Transport-level faults
// (resets, refused connections, timeouts set by the transport) and
// server-side 5xx/429 answers are retryable; every other definitive server
// answer (4xx), a stream's terminal error record, a callback abort, and
// context cancellation are not — retrying cannot change those outcomes.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500 || apiErr.StatusCode == http.StatusTooManyRequests
	}
	var streamErr *StreamError
	if errors.As(err, &streamErr) {
		return false
	}
	var cbErr *callbackError
	if errors.As(err, &cbErr) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level: connection reset, refused, truncated body, DNS
}

// Do runs op under the policy: up to MaxAttempts tries, jittered backoff
// between them, each attempt bounded by AttemptTimeout when set. The parent
// ctx governs the whole operation — its cancellation stops both attempts
// and backoff sleeps immediately. Returns the last attempt's error.
func (p Policy) Do(ctx context.Context, op func(context.Context) error) error {
	p = p.normalized()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if serr := sleepCtx(ctx, p.Backoff(attempt-1)); serr != nil {
				return err // parent cancelled mid-backoff; last error stands
			}
		}
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = op(attemptCtx)
		// Read the attempt context's verdict before cancel() overwrites it:
		// an attempt that hit its own deadline is retryable, the same error
		// from the parent deadline is not.
		attemptExpired := err != nil && attemptCtx != ctx && errors.Is(attemptCtx.Err(), context.DeadlineExceeded)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if !attemptExpired && !Retryable(err) {
			return err
		}
	}
	return err
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// defaultTransport is the client's stock transport: http.DefaultTransport's
// pooling behavior plus explicit limits, so a dead or wedged server surfaces
// as an error instead of a goroutine parked forever. ResponseHeaderTimeout
// is deliberately generous — synchronous endpoints may legitimately compute
// for minutes before their first byte — but finite, because the alternative
// (the old bare &http.Client{}) hung every CLI against a stalled server
// until process kill. Streaming endpoints send headers immediately, so the
// limit never fires on a healthy stream. Callers needing a stricter bound
// use Policy.AttemptTimeout or a ctx deadline, both honored on every path.
func defaultTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          100,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
		ResponseHeaderTimeout: 5 * time.Minute,
	}
}
