package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dmfb/client"
)

// TestPolicyBackoffBounds pins the full-jitter contract: every draw for
// retry n lies in [0, min(MaxBackoff, BaseBackoff<<n)).
func TestPolicyBackoffBounds(t *testing.T) {
	p := client.Policy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	ceilings := map[int]time.Duration{
		0: 100 * time.Millisecond,
		1: 200 * time.Millisecond,
		2: 400 * time.Millisecond,
		7: 400 * time.Millisecond, // capped
	}
	for attempt, ceil := range ceilings {
		for i := 0; i < 300; i++ {
			if d := p.Backoff(attempt); d < 0 || d >= ceil {
				t.Fatalf("Backoff(%d) = %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestPolicyRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"503", &client.APIError{StatusCode: http.StatusServiceUnavailable}, true},
		{"429", &client.APIError{StatusCode: http.StatusTooManyRequests}, true},
		{"404", &client.APIError{StatusCode: http.StatusNotFound}, false},
		{"400", &client.APIError{StatusCode: http.StatusBadRequest}, false},
		{"wrapped 500", fmt.Errorf("op: %w", &client.APIError{StatusCode: 500}), true},
		{"stream error", &client.StreamError{Message: "boom"}, false},
		{"canceled", context.Canceled, false},
		{"wrapped deadline", fmt.Errorf("op: %w", context.DeadlineExceeded), false},
		{"transport", errors.New("connection reset by peer"), true},
	}
	for _, tc := range cases {
		if got := client.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPolicyDoAttemptAccounting(t *testing.T) {
	p := client.Policy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}

	// Transient failures are retried until one attempt succeeds.
	var calls atomic.Int32
	err := p.Do(context.Background(), func(context.Context) error {
		if calls.Add(1) < 3 {
			return errors.New("transient transport fault")
		}
		return nil
	})
	if err != nil || calls.Load() != 3 {
		t.Fatalf("transient: err=%v after %d calls, want success on call 3", err, calls.Load())
	}

	// A definitive server answer is terminal on the first attempt.
	calls.Store(0)
	err = p.Do(context.Background(), func(context.Context) error {
		calls.Add(1)
		return &client.APIError{StatusCode: http.StatusNotFound}
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || calls.Load() != 1 {
		t.Fatalf("4xx: err=%v after %d calls, want one attempt", err, calls.Load())
	}

	// Exhaustion returns the last error after exactly MaxAttempts tries.
	calls.Store(0)
	err = p.Do(context.Background(), func(context.Context) error {
		calls.Add(1)
		return errors.New("still down")
	})
	if err == nil || calls.Load() != 4 {
		t.Fatalf("exhaustion: err=%v after %d calls, want 4 attempts", err, calls.Load())
	}
}

// TestPolicyDoAttemptTimeout distinguishes the two deadline flavors: an
// attempt that burns its own AttemptTimeout is retried, while the parent
// context's deadline ends the operation outright.
func TestPolicyDoAttemptTimeout(t *testing.T) {
	p := client.Policy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
		AttemptTimeout: 20 * time.Millisecond,
	}
	var calls atomic.Int32
	stall := func(actx context.Context) error {
		calls.Add(1)
		<-actx.Done()
		return actx.Err()
	}
	err := p.Do(context.Background(), stall)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled op: err = %v, want deadline exceeded", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("per-attempt expiry must be retryable: got %d attempts, want 3", calls.Load())
	}

	calls.Store(0)
	pctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err = client.Policy{MaxAttempts: 10, BaseBackoff: time.Millisecond}.Do(pctx, stall)
	if !errors.Is(err, context.DeadlineExceeded) || calls.Load() != 1 {
		t.Fatalf("parent deadline: err=%v after %d attempts, want terminal first attempt", err, calls.Load())
	}
}

// TestClientStalledServerFailsFast is the regression test for the bare
// &http.Client{} era, when a server that accepted connections but never
// answered wedged every CLI forever. Both escape hatches must work: a
// per-attempt timeout in the policy, and a plain context deadline with the
// stock policy.
func TestClientStalledServerFailsFast(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stall)

	cli := client.New(srv.URL, client.WithPolicy(client.Policy{
		MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
	}))
	start := time.Now()
	if err := cli.Ready(context.Background()); err == nil {
		t.Fatal("stalled server reported ready")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stalled call under AttemptTimeout took %v, want prompt failure", el)
	}

	cli2 := client.New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start = time.Now()
	if err := cli2.Ready(ctx); err == nil {
		t.Fatal("stalled server reported ready under a context deadline")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline-bound call took %v, want prompt failure", el)
	}
}
