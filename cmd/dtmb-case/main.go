// Command dtmb-case runs the paper's §7 case study: the multiplexed
// in-vitro diagnostics chip. It reports the original chip's no-redundancy
// yield (0.3378 at p = 0.99), regenerates the Fig. 13 yield-vs-faults
// curves of the DTMB(2,6)-based redesign, and renders a Fig. 12-style local
// reconfiguration example.
//
// Examples:
//
//	dtmb-case                 # baseline + Fig. 13 at full resolution
//	dtmb-case -demo -faults 10
//	dtmb-case -fig13 -runs 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb/internal/chip"
	"dmfb/internal/defects"
	"dmfb/internal/experiments"
	"dmfb/internal/render"
)

func main() {
	var (
		runs   = flag.Int("runs", 10000, "Monte-Carlo runs per point")
		seed   = flag.Int64("seed", 20050307, "experiment seed")
		fig13  = flag.Bool("fig13", false, "only the Fig. 13 sweep")
		base   = flag.Bool("baseline", false, "only the original-chip baseline")
		demo   = flag.Bool("demo", false, "only the Fig. 12 reconfiguration demo")
		faults = flag.Int("faults", 10, "fault count for -demo")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-case:", err)
		os.Exit(1)
	}
	all := !(*fig13 || *base || *demo)

	if all || *base {
		fmt.Println(experiments.CaseStudyBaseline(nil).String())
		oc, err := chip.OriginalChipLayout()
		if err != nil {
			fail(err)
		}
		fmt.Printf("original chip: %d modules covering %d cells on a %dx%d square array\n\n",
			len(oc.Placement.Modules), len(oc.Used), oc.Placement.Grid.W, oc.Placement.Grid.H)
	}

	if all || *fig13 {
		cfg := experiments.Config{Runs: *runs, Seed: *seed}
		points, tb, err := experiments.Figure13(cfg, nil, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
		for _, pol := range experiments.Figure13Policies() {
			m := experiments.MaxFaultsAtYield(points, pol.Name, 0.90)
			fmt.Printf("max faults with yield >= 0.90 under %-28s m = %d\n", pol.Name+":", m)
		}
		fmt.Println("\npaper claim: yield >= 0.90 for up to 35 faults (Fig. 13)")
		fmt.Println()
	}

	if all || *demo {
		c, err := chip.NewRedesignedChip()
		if err != nil {
			fail(err)
		}
		if err := c.InjectFixed(*seed, *faults, defects.AllCells); err != nil {
			fail(err)
		}
		plan, err := c.Reconfigure()
		if err != nil {
			fail(err)
		}
		used := make([]bool, c.Array().NumCells())
		for _, id := range c.UsedCells() {
			used[id] = true
		}
		marks := render.Marks{Faults: c.Faults(), Used: used, Plan: &plan}
		fmt.Printf("Fig. 12-style demo: DTMB(2,6) redesign with %d random faults\n\n", *faults)
		fmt.Print(render.ASCII(c.Array(), marks))
		fmt.Println(render.Legend())
		fmt.Println()
		fmt.Print(render.Summary(c.Array(), marks))
	}
}
