// Command dtmb-experiments regenerates every table and figure of the paper's
// evaluation from the experiment drivers. By default it runs everything with
// the paper's 10000 Monte-Carlo runs; -quick reduces run counts for smoke
// testing, and the -table1/-fig2/... flags select individual experiments.
// The yield-grid figures (9 and 10) are driven by the internal/sweep engine,
// the same code path behind cmd/dtmb-sweep and POST /v1/sweep, so all three
// produce identical numbers for identical parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced Monte-Carlo runs for a fast pass")
		runs  = flag.Int("runs", 0, "override Monte-Carlo runs per point")
		seed  = flag.Int64("seed", 0, "override experiment seed")
		t1    = flag.Bool("table1", false, "only Table 1 (redundancy ratios)")
		f2    = flag.Bool("fig2", false, "only Figure 2 (shifted replacement)")
		f7    = flag.Bool("fig7", false, "only Figure 7 (DTMB(1,6) analytical yield)")
		f8    = flag.Bool("fig8", false, "only Figure 8 (bipartite matching example)")
		f9    = flag.Bool("fig9", false, "only Figure 9 (Monte-Carlo yield)")
		f10   = flag.Bool("fig10", false, "only Figure 10 (effective yield)")
		base  = flag.Bool("baseline", false, "only the case-study baseline yield")
		f13   = flag.Bool("fig13", false, "only Figure 13 (case-study yield vs faults)")
		abl   = flag.Bool("ablations", false, "only the ablation studies")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	all := !(*t1 || *f2 || *f7 || *f8 || *f9 || *f10 || *base || *f13 || *abl)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-experiments:", err)
		os.Exit(1)
	}

	if all || *t1 {
		fmt.Println(experiments.Table1().String())
	}
	if all || *f2 {
		_, tb, err := experiments.Figure2()
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
	}
	if all || *f7 {
		_, tb := experiments.Figure7(nil, nil)
		fmt.Println(tb.String())
	}
	if all || *f8 {
		plan, tb, err := experiments.Figure8(cfg.Seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
		fmt.Printf("matching saturates faulty primaries: %v\n\n", plan.OK)
	}
	if all || *f9 {
		_, tb, err := experiments.Figure9(cfg, nil, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
	}
	if all || *f10 {
		_, tb, err := experiments.Figure10(cfg, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
	}
	if all || *base {
		fmt.Println(experiments.CaseStudyBaseline(nil).String())
	}
	if all || *f13 {
		points, tb, err := experiments.Figure13(cfg, nil, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
		for _, pol := range experiments.Figure13Policies() {
			m := experiments.MaxFaultsAtYield(points, pol.Name, 0.90)
			fmt.Printf("max faults with yield >= 0.90 under %-28s m = %d\n", pol.Name+":", m)
		}
		fmt.Println()
	}
	if all || *abl {
		tb, err := experiments.BoundaryAblation(cfg, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
		tb, err = experiments.VariantAblation(cfg, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb.String())
	}
}
