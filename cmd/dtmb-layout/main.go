// Command dtmb-layout renders the DTMB defect-tolerant array designs as
// ASCII art or SVG, optionally with injected faults and the resulting local
// reconfiguration highlighted. It regenerates the geometry figures of the
// paper (Figs. 3-6 and 12).
//
// Examples:
//
//	dtmb-layout -design 'DTMB(1,6)' -w 14 -h 10
//	dtmb-layout -design 'DTMB(2,6)' -n 100 -faults 10 -seed 7
//	dtmb-layout -design 'DTMB(3,6)' -w 20 -h 14 -svg > dtmb36.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/render"
)

func main() {
	var (
		designName = flag.String("design", "DTMB(2,6)", "design name")
		w          = flag.Int("w", 16, "parallelogram width (ignored with -n)")
		h          = flag.Int("h", 12, "parallelogram height (ignored with -n)")
		n          = flag.Int("n", 0, "build with exactly n primary cells instead of -w/-h")
		faults     = flag.Int("faults", 0, "inject this many random cell faults")
		seed       = flag.Int64("seed", 2005, "fault-injection seed")
		svg        = flag.Bool("svg", false, "emit SVG instead of ASCII")
		size       = flag.Float64("size", 12, "SVG hexagon radius in px")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-layout:", err)
		os.Exit(1)
	}

	d, err := layout.DesignByName(*designName)
	if err != nil {
		fail(err)
	}
	var arr *layout.Array
	if *n > 0 {
		arr, err = layout.BuildWithPrimaryTarget(d, *n)
	} else {
		arr, err = layout.BuildParallelogram(d, *w, *h)
	}
	if err != nil {
		fail(err)
	}

	marks := render.Marks{}
	if *faults > 0 {
		in := defects.NewInjector(*seed)
		fs, err := in.FixedCount(arr, *faults, defects.AllCells, nil)
		if err != nil {
			fail(err)
		}
		plan, err := reconfig.LocalReconfigure(arr, fs, reconfig.Options{})
		if err != nil {
			fail(err)
		}
		marks.Faults = fs
		marks.Plan = &plan
	}

	if *svg {
		fmt.Print(render.SVG(arr, marks, *size))
		return
	}
	fmt.Print(render.ASCII(arr, marks))
	fmt.Println(render.Legend())
	fmt.Println()
	fmt.Print(render.Summary(arr, marks))
}
