// Command dtmb-serve runs the yield-analysis HTTP service: Monte-Carlo
// yield estimation, design recommendation, and reconfiguration-plan queries
// over the DTMB defect-tolerance machinery, with an LRU result cache and
// single-flight deduplication of concurrent identical requests.
//
// Examples:
//
//	dtmb-serve -addr :8080
//	curl -s localhost:8080/v1/yield -d '{"design":"DTMB(2,6)","n_primary":100,"p":0.95,"runs":2000,"seed":7}'
//	curl -s localhost:8080/v1/recommend -d '{"p":0.95,"n_primary":100,"runs":2000,"seed":7}'
//	curl -s localhost:8080/v1/reconfigure -d '{"design":"dtmb26","n_primary":100,"faulty_cells":[3,17]}'
//	curl -s localhost:8080/v1/stats
//
// See DESIGN.md for the full API contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfb/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheSize     = flag.Int("cache-size", 1024, "LRU result-cache capacity (entries)")
		defaultRuns   = flag.Int("default-runs", 10000, "Monte-Carlo runs when a request omits runs")
		workers       = flag.Int("workers", 0, "goroutines per simulation (0 = GOMAXPROCS); does not affect results")
		chunkSize     = flag.Int("chunk-size", 0, "Monte-Carlo trials per work unit (0 = yieldsim default); part of the determinism contract")
		maxConcurrent = flag.Int("max-concurrent", 0, "simulations admitted at once (0 = 2; each simulation already parallelizes across cores)")
		grace         = flag.Duration("grace", 15*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	srv := service.NewServer(service.ServerConfig{
		Addr: *addr,
		Engine: service.EngineConfig{
			CacheSize:     *cacheSize,
			DefaultRuns:   *defaultRuns,
			Workers:       *workers,
			ChunkSize:     *chunkSize,
			MaxConcurrent: *maxConcurrent,
		},
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-serve:", err)
		os.Exit(1)
	}
}
