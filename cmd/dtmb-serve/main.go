// Command dtmb-serve runs the yield-analysis HTTP service: Monte-Carlo
// yield estimation, design recommendation, reconfiguration-plan queries,
// single-scenario evaluation, and asynchronous resumable sweep jobs over
// the DTMB defect-tolerance machinery, with an LRU result cache and
// single-flight deduplication of concurrent identical requests. POST bodies
// must declare Content-Type: application/json.
//
// Examples (the jq-free flavor; package client is the typed alternative):
//
//	dtmb-serve -addr :8080
//	curl -s -H 'Content-Type: application/json' localhost:8080/v1/yield \
//	    -d '{"design":"DTMB(2,6)","n_primary":100,"p":0.95,"runs":2000,"seed":7}'
//	curl -s -H 'Content-Type: application/json' localhost:8080/v2/evaluate \
//	    -d '{"strategy":"hex","design":"dtmb26","n_primary":100,"p":0.95,"seed":7}'
//	curl -s -H 'Content-Type: application/json' localhost:8080/v2/jobs \
//	    -d '{"strategies":["local","hex"],"runs":2000,"seed":7}'
//	curl -sN 'localhost:8080/v2/jobs/job-1/results?cursor=0'
//	curl -s localhost:8080/v1/stats
//
// See API.md for the full contract and DESIGN.md for the architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfb/internal/dispatch"
	"dmfb/internal/faultinject"
	"dmfb/internal/service"
	"dmfb/internal/telemetry"
)

// parseLogLevel maps the -log-level flag to a slog level. At debug the
// kernel additionally emits one span per Monte-Carlo chunk, which is
// far too chatty for production but joins an access-log line to the
// simulation work it caused via the shared request/trace ID.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheSize     = flag.Int("cache-size", 1024, "LRU result-cache capacity (entries)")
		defaultRuns   = flag.Int("default-runs", 10000, "Monte-Carlo runs when a request omits runs")
		workers       = flag.Int("workers", 0, "goroutines per simulation (0 = GOMAXPROCS); does not affect results")
		chunkSize     = flag.Int("chunk-size", 0, "Monte-Carlo trials per work unit (0 = yieldsim default); part of the determinism contract")
		maxConcurrent = flag.Int("max-concurrent", 0, "simulations admitted at once (0 = 2; each simulation already parallelizes across cores)")
		maxJobs       = flag.Int("max-jobs", 0, "sweep jobs retained in memory, running and finished combined (0 = 128)")
		maxResultMB   = flag.Int("max-result-mb", 0, "MiB of encoded job results retained by finished jobs before oldest-first eviction (0 = 64)")
		storeDir      = flag.String("store-dir", "", "durable job-store directory; jobs survive restarts and partial jobs resume (empty = in-memory)")
		dispatchOn    = flag.Bool("dispatch", false, "enable distributed sweep dispatch: serve /v2/workers/* and accept jobs with \"distributed\": true")
		leaseTTL      = flag.Duration("lease-ttl", 10*time.Second, "shard lease time-to-live without a heartbeat before redispatch (with -dispatch)")
		shardSize     = flag.Int("shard-size", 0, "grid points per dispatched shard (0 = 64; with -dispatch)")
		maxDispatches = flag.Int("max-shard-dispatches", 0, "dispatch budget per shard before the job is failed as poisoned (0 = 5; with -dispatch)")
		chaosStore    = flag.String("chaos-store", "", "fault-injection schedule for the durable job store, e.g. 'store.append.fsync=0.1,store.append.write=#3' (testing only)")
		chaosSeed     = flag.Uint64("chaos-seed", 1, "seed for the -chaos-store schedule's deterministic PRNGs")
		grace         = flag.Duration("grace", 15*time.Second, "graceful-shutdown drain timeout (requests and running jobs)")
		logLevel      = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error (debug adds per-chunk kernel spans)")
		pprofAddr     = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled); keep it private, e.g. localhost:6060")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-serve:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	storeInject, err := faultinject.ParseSpec(*chaosStore, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-serve:", err)
		os.Exit(2)
	}
	if storeInject != nil {
		logger.Warn("store fault injection armed", slog.String("schedule", storeInject.String()))
	}

	// pprof lives on its own listener, never the API address: profiling
	// endpoints expose internals and must be bindable to localhost only.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				logger.Error("pprof server failed", slog.String("error", err.Error()))
			}
		}()
	}

	// The engine's registry must exist up front when dispatch is enabled, so
	// the coordinator's series land on the same /metrics exposition.
	registry := telemetry.NewRegistry()
	cfg := service.ServerConfig{
		Addr: *addr,
		Engine: service.EngineConfig{
			CacheSize:     *cacheSize,
			DefaultRuns:   *defaultRuns,
			Workers:       *workers,
			ChunkSize:     *chunkSize,
			MaxConcurrent: *maxConcurrent,
			Registry:      registry,
		},
		Jobs:     service.JobStoreConfig{MaxJobs: *maxJobs, MaxResultBytes: int64(*maxResultMB) << 20, Inject: storeInject},
		StoreDir: *storeDir,
		Logger:   logger,
	}
	var coord *dispatch.Coordinator
	if *dispatchOn {
		coord = dispatch.NewCoordinator(dispatch.Config{
			LeaseTTL:           *leaseTTL,
			ShardSize:          *shardSize,
			MaxShardDispatches: *maxDispatches,
			Registry:           registry,
			Logger:             logger,
		})
		defer coord.Close()
		cfg.Jobs.Runner = coord
		cfg.ExtraRoutes = coord.Routes()
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-serve:", err)
		os.Exit(1)
	}
}
