// Command dtmb-sim runs the full defect-tolerance lifecycle end to end on
// the case-study chip: inject manufacturing faults (a fixed count of
// independent spot defects, or spatially correlated clusters via
// -defect-model clustered), reconfigure locally, schedule the multiplexed
// in-vitro diagnostics workload, and execute a complete glucose assay —
// dispense, transport, droplet merge, mixing by shuttling, optical
// detection — on the cycle-accurate fluidics simulator, routing around the
// faulty cells.
//
// dtmb-sim exercises one chip under one fault pattern; for yield statistics
// across the four redundancy strategies (none, local, shifted, hex) and
// both defect models, see dtmb-sweep and dtmb-serve.
//
// Examples:
//
//	dtmb-sim -faults 10 -glucose 0.004 -seed 7
//	dtmb-sim -defect-model clustered -faults 8 -cluster-size 3
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb/internal/bioassay"
	"dmfb/internal/chip"
	"dmfb/internal/defects"
	"dmfb/internal/electrowetting"
	"dmfb/internal/fluidics"
	"dmfb/internal/layout"
	"dmfb/internal/router"
	"dmfb/internal/scheduler"
)

// options holds the parsed command-line flags.
type options struct {
	faults      int
	seed        int64
	glucose     float64
	voltage     float64
	defectModel string
	clusterSize float64
}

// registerFlags declares every dtmb-sim flag on fs; split from main so the
// smoke test can assert the help text documents the defect models and points
// at the sweep strategies.
func registerFlags(fs *flag.FlagSet) *options {
	var o options
	fs.IntVar(&o.faults, "faults", 10, "cell faults to inject: the exact count (fixed model) or the expected count (clustered model)")
	fs.Int64Var(&o.seed, "seed", 2005, "fault-injection seed")
	fs.Float64Var(&o.glucose, "glucose", 0.004, "sample glucose concentration (mol/L)")
	fs.Float64Var(&o.voltage, "voltage", 60, "electrode control voltage (V)")
	fs.StringVar(&o.defectModel, "defect-model", "fixed", "spatial defect model: fixed (exactly -faults independent cell faults) or clustered (center-seeded clusters with geometric radius decay)")
	fs.Float64Var(&o.clusterSize, "cluster-size", 4, "expected faulty cells per cluster for -defect-model clustered")
	fs.Usage = func() {
		out := fs.Output()
		fmt.Fprintf(out, "Usage: dtmb-sim [flags]\n\n")
		fmt.Fprintf(out, "Runs the full defect-tolerance lifecycle on the case-study chip.\n")
		fmt.Fprintf(out, "For yield sweeps across the redundancy strategies none, local, shifted\n")
		fmt.Fprintf(out, "and hex, see dtmb-sweep.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	return &o
}

func main() {
	fs := flag.NewFlagSet("dtmb-sim", flag.ExitOnError)
	o := registerFlags(fs)
	_ = fs.Parse(os.Args[1:])
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-sim:", err)
		os.Exit(1)
	}
}

func run(o *options) error {
	// 1. Build the defect-tolerant chip and break it.
	c, err := chip.NewRedesignedChip()
	if err != nil {
		return err
	}
	arr := c.Array()
	fmt.Printf("chip: %s\n", arr)
	switch o.defectModel {
	case "fixed":
		if err := c.InjectFixed(o.seed, o.faults, defects.AllCells); err != nil {
			return err
		}
	case "clustered":
		clusters, err := c.InjectClustered(o.seed, defects.ClusterParams{
			MeanDefects: float64(o.faults),
			ClusterSize: o.clusterSize,
		})
		if err != nil {
			return err
		}
		fmt.Printf("clustered injection: %d clusters (mean %d defects, cluster size %g)\n",
			clusters, o.faults, o.clusterSize)
	default:
		return fmt.Errorf("unknown defect model %q (want fixed or clustered)", o.defectModel)
	}
	plan, err := c.Reconfigure()
	if err != nil {
		return err
	}
	st := c.Status()
	fmt.Printf("faults injected: %d primary, %d spare\n", st.FaultyPrimaries, st.FaultySpares)
	if !plan.OK {
		fmt.Println("local reconfiguration FAILED - chip must be discarded")
		return nil
	}
	fmt.Printf("local reconfiguration OK: %d faulty primaries replaced by adjacent spares\n", len(plan.Assignments))

	// 2. Timing from the electrowetting model.
	ew := electrowetting.Default()
	stepTime, err := ew.TransportTime(o.voltage)
	if err != nil {
		return err
	}
	fmt.Printf("actuation: %.0f V -> droplet velocity %.1f cm/s, %.1f ms per cell\n",
		o.voltage, ew.Velocity(o.voltage)*100, stepTime*1000)

	// 3. Schedule the multiplexed workload (8 assays on shared modules).
	ops := bioassay.MultiplexedWorkload()
	sched, err := scheduler.List(ops, scheduler.DefaultResources())
	if err != nil {
		return err
	}
	fmt.Printf("multiplexed workload: %d operations, makespan %d cycles (%.2f s at %.0f V)\n",
		len(ops), sched.Makespan, float64(sched.Makespan)*stepTime, o.voltage)

	// 4. Execute one glucose assay on the fluidics simulator.
	protocol := bioassay.ProtocolFor(bioassay.Glucose)
	absorbance, cycles, err := executeGlucoseAssay(c, protocol, o.glucose)
	if err != nil {
		return err
	}
	est, err := protocol.EstimateConcentration(absorbance)
	if err != nil {
		return err
	}
	truth := o.glucose / 2 // 1:1 merge dilutes the sample
	fmt.Printf("glucose assay executed in %d droplet cycles (%.2f s)\n", cycles, float64(cycles)*stepTime)
	fmt.Printf("detector absorbance: %.4f AU at 545 nm\n", absorbance)
	fmt.Printf("estimated glucose in mixed droplet: %.4f mol/L (truth %.4f, error %+.2f%%)\n",
		est, truth, 100*(est-truth)/truth)
	return nil
}

// executeGlucoseAssay runs dispense -> transport -> merge -> mix -> detect
// on the fluidics simulator, avoiding the chip's faulty cells, and returns
// the measured absorbance and total cycles.
func executeGlucoseAssay(c interface {
	Array() *layout.Array
	Faults() *defects.FaultSet
}, protocol bioassay.Protocol, conc float64) (float64, int, error) {
	arr := c.Array()
	faultSet := c.Faults()
	sim, err := fluidics.New(arr, faultSet)
	if err != nil {
		return 0, 0, err
	}
	cons := router.Constraints{Faults: faultSet, PrimariesOnly: true}

	// Pick operation sites: sources far apart, detector between them, and a
	// mixing site for which sample route, reagent staging route (outside the
	// sample's interference halo) and a merge approach all exist. Fault
	// patterns can fragment candidate sites, so try several.
	usable := router.ReachableFrom(arr, firstUsablePrimary(arr, faultSet), cons)
	if len(usable) < 30 {
		return 0, 0, fmt.Errorf("chip too fragmented to run the assay")
	}
	sampleSrc := usable[0]
	reagentSrc := usable[len(usable)-1]
	detector := usable[len(usable)/4]

	var (
		mix, approach, staging layout.CellID
		samplePath, stagePath  []layout.CellID
		found                  bool
	)
	for _, frac := range []int{2, 3, 5, 7, 9, 11} {
		mixCand := usable[len(usable)*frac/(frac*2+1)]
		sp, err := router.ShortestPath(arr, sampleSrc, mixCand, cons)
		if err != nil {
			continue
		}
		blocked := map[layout.CellID]bool{mixCand: true}
		for _, nb := range arr.Neighbors(mixCand) {
			blocked[nb] = true
		}
		consStage := cons
		consStage.Blocked = blocked
		for _, nb := range arr.Neighbors(mixCand) {
			if faultSet.IsFaulty(nb) || arr.Cell(nb).Role != layout.Primary {
				continue
			}
			for _, nb2 := range arr.Neighbors(nb) {
				if blocked[nb2] || faultSet.IsFaulty(nb2) || arr.Cell(nb2).Role != layout.Primary || nb2 == reagentSrc {
					continue
				}
				stp, err := router.ShortestPath(arr, reagentSrc, nb2, consStage)
				if err != nil {
					continue
				}
				mix, approach, staging = mixCand, nb, nb2
				samplePath, stagePath = sp, stp
				found = true
				break
			}
			if found {
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("no feasible mixing site on this fault pattern")
	}
	_ = staging

	sample, err := protocol.SampleDroplet(1.0, conc)
	if err != nil {
		return 0, 0, err
	}
	reagent, err := protocol.ReagentDroplet(1.0)
	if err != nil {
		return 0, 0, err
	}

	// Route the sample to the mixing site, then stage the reagent.
	sampleID, err := sim.Dispense(sampleSrc, sample)
	if err != nil {
		return 0, 0, err
	}
	if err := sim.FollowPath(sampleID, samplePath); err != nil {
		return 0, 0, err
	}
	reagentID, err := sim.Dispense(reagentSrc, reagent)
	if err != nil {
		return 0, 0, err
	}
	if err := sim.FollowPath(reagentID, stagePath); err != nil {
		return 0, 0, err
	}

	// Merge approach: both droplets sanction the contact, then coalesce.
	if err := sim.Step([]fluidics.Command{
		{Droplet: reagentID, Target: approach, MergeWith: sampleID},
		{Droplet: sampleID, Target: mix, MergeWith: reagentID},
	}); err != nil {
		return 0, 0, err
	}
	if err := sim.Step([]fluidics.Command{
		{Droplet: reagentID, Target: mix, MergeWith: sampleID},
		{Droplet: sampleID, Target: mix, MergeWith: reagentID},
	}); err != nil {
		return 0, 0, err
	}
	merged := sim.Droplets()[0].ID

	// Mix by shuttling between the mixing site and the approach cell.
	cells := []layout.CellID{approach, mix}
	for i := 0; ; i++ {
		state, ok := sim.Droplet(merged)
		if !ok {
			return 0, 0, fmt.Errorf("merged droplet lost")
		}
		if state.D.Mixed() {
			break
		}
		if err := sim.Step([]fluidics.Command{{Droplet: merged, Target: cells[i%2]}}); err != nil {
			return 0, 0, err
		}
	}

	// Transport to the detector and measure.
	state, _ := sim.Droplet(merged)
	detPath, err := router.ShortestPath(arr, state.Cell, detector, cons)
	if err != nil {
		return 0, 0, err
	}
	if err := sim.FollowPath(merged, detPath); err != nil {
		return 0, 0, err
	}
	state, _ = sim.Droplet(merged)
	absorbance, err := protocol.Measure(state.D)
	if err != nil {
		return 0, 0, err
	}
	if err := sim.Remove(merged); err != nil {
		return 0, 0, err
	}
	return absorbance, sim.Cycle(), nil
}

// firstUsablePrimary returns the lowest-ID fault-free primary cell.
func firstUsablePrimary(arr *layout.Array, fs *defects.FaultSet) layout.CellID {
	for _, id := range arr.Primaries() {
		if !fs.IsFaulty(id) {
			return id
		}
	}
	return layout.NoCell
}
