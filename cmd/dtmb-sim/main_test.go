package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// TestHelpNamesStrategiesAndDefectModel smoke-tests the -h output: it must
// name every redundancy strategy of the sweep stack (so a reader of the
// lifecycle tool finds the yield tools) and document the defect-model flag
// with both of its values.
func TestHelpNamesStrategiesAndDefectModel(t *testing.T) {
	fs := flag.NewFlagSet("dtmb-sim", flag.ContinueOnError)
	registerFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	usage := buf.String()
	for _, want := range []string{
		"none", "local", "shifted", "hex", // the four strategies
		"defect-model", "fixed", "clustered", // the defect-model flag and its values
		"cluster-size",
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("-h output does not mention %q:\n%s", want, usage)
		}
	}
}

func TestRunRejectsUnknownDefectModel(t *testing.T) {
	o := &options{faults: 1, seed: 1, glucose: 0.004, voltage: 60, defectModel: "quantum", clusterSize: 4}
	if err := run(o); err == nil || !strings.Contains(err.Error(), "defect model") {
		t.Errorf("unknown defect model not rejected: %v", err)
	}
}
