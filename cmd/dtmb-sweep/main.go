// Command dtmb-sweep evaluates a Cartesian grid of yield scenarios —
// survival probability × array size × redundancy strategy — and writes one
// CSV or NDJSON record per grid point, suitable for regenerating the
// paper's yield-versus-defect-probability curves (Figs. 7, 9, 10) with a
// plotting tool of choice.
//
// It drives the same sweep engine as the sweep endpoints of dtmb-serve,
// including its result cache and admission control, so repeated grid points
// cost one simulation. Because the Monte-Carlo kernel is chunk-seeded,
// output is byte-identical for a given (grid, runs, seed, chunk size)
// regardless of -workers or GOMAXPROCS.
//
// With -server the grid is not evaluated in-process: the sweep runs as an
// asynchronous job on a dtmb-serve instance (POST /v2/jobs) and the records
// are streamed through the typed client, which transparently resumes the
// stream after a dropped connection. CSV output is byte-identical to the
// in-process run for the same engine configuration (CSV carries no cache
// provenance); NDJSON records may additionally say "cached":true when the
// server's result cache is warm.
//
// Examples:
//
//	dtmb-sweep -designs 'DTMB(2,6)' -n 60,120,240 -pmin 0.90 -pmax 1.0 -points 11
//	dtmb-sweep -strategies local,none,shifted,hex -n 100 -spare-rows 1,2 -runs 2000 -o grid.csv
//	dtmb-sweep -defect-models independent,clustered -cluster-size 4 -ps 0.95,0.99
//	dtmb-sweep -format ndjson -strategies hex -designs 'DTMB(4,4)'
//	dtmb-sweep -server http://localhost:8080 -strategies local,hex -runs 2000
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dmfb/client"
	"dmfb/internal/service"
)

// options holds the parsed command-line flags.
type options struct {
	strategies, designs, ns, psList string
	pmin, pmax                      float64
	points                          int
	spareRows, defectModels         string
	clusterSize                     float64
	runs                            int
	epsilon                         float64
	seed                            int64
	workers, chunkSize              int
	format, outPath                 string
	server                          string
}

// registerFlags declares every dtmb-sweep flag on fs; split from main so the
// smoke test can assert the help text names every strategy and axis.
func registerFlags(fs *flag.FlagSet) *options {
	var o options
	fs.StringVar(&o.strategies, "strategies", "local", "comma-separated redundancy strategies: none, local, shifted, hex")
	fs.StringVar(&o.designs, "designs", "", "comma-separated DTMB designs for the local and hex strategies (default: all four canonical)")
	fs.StringVar(&o.ns, "n", "100", "comma-separated primary-cell counts")
	fs.StringVar(&o.psList, "ps", "", "comma-separated explicit survival probabilities (overrides -pmin/-pmax/-points)")
	fs.Float64Var(&o.pmin, "pmin", 0.90, "lowest cell survival probability")
	fs.Float64Var(&o.pmax, "pmax", 1.00, "highest cell survival probability")
	fs.IntVar(&o.points, "points", 11, "number of evenly spaced probabilities in [pmin, pmax]")
	fs.StringVar(&o.spareRows, "spare-rows", "1", "comma-separated boundary spare-row counts for the shifted strategy")
	fs.StringVar(&o.defectModels, "defect-models", "independent", "comma-separated spatial defect models: independent, clustered")
	fs.Float64Var(&o.clusterSize, "cluster-size", 0, "expected faulty cells per cluster for the clustered defect model (0 = default 4)")
	fs.IntVar(&o.runs, "runs", 10000, "Monte-Carlo runs per grid point")
	fs.Float64Var(&o.epsilon, "epsilon", 0, "target 95% CI half-width per grid point; >0 stops each estimate early once reached, with -runs as the trial budget")
	fs.Int64Var(&o.seed, "seed", 20050307, "PRNG seed (same seed, same grid: same output)")
	fs.IntVar(&o.workers, "workers", 0, "goroutines per simulation (0 = GOMAXPROCS); never affects results")
	fs.IntVar(&o.chunkSize, "chunk-size", 0, "trials per Monte-Carlo work unit (0 = default 256); part of the determinism contract")
	fs.StringVar(&o.format, "format", "csv", "output format: csv or ndjson")
	fs.StringVar(&o.outPath, "o", "", "output file (default stdout)")
	fs.StringVar(&o.server, "server", "", "dtmb-serve base URL; when set, run the sweep as a remote /v2 job instead of in-process (ignores -workers and -chunk-size)")
	return &o
}

func main() {
	fs := flag.NewFlagSet("dtmb-sweep", flag.ExitOnError)
	o := registerFlags(fs)
	_ = fs.Parse(os.Args[1:])

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-sweep:", err)
		// A server-rejected request carries the server's trace ID; print it
		// separately so the operator can grep the dtmb-serve access log.
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.RequestID != "" {
			fmt.Fprintf(os.Stderr, "dtmb-sweep: server trace id %s (see the dtmb-serve access log)\n", apiErr.RequestID)
		}
		os.Exit(1)
	}

	nVals, err := parseInts(o.ns)
	if err != nil {
		fail(fmt.Errorf("-n: %w", err))
	}
	rowVals, err := parseInts(o.spareRows)
	if err != nil {
		fail(fmt.Errorf("-spare-rows: %w", err))
	}
	pVals, err := parseFloats(o.psList)
	if err != nil {
		fail(fmt.Errorf("-ps: %w", err))
	}

	req := service.SweepRequest{
		Strategies:   splitList(o.strategies),
		Designs:      splitDesigns(o.designs),
		NPrimaries:   nVals,
		Ps:           pVals,
		PMin:         o.pmin,
		PMax:         o.pmax,
		PPoints:      o.points,
		SpareRows:    rowVals,
		DefectModels: splitList(o.defectModels),
		ClusterSize:  o.clusterSize,
		Runs:         o.runs,
		Seed:         o.seed,
		Epsilon:      o.epsilon,
	}

	if o.format != "csv" && o.format != "ndjson" {
		fail(fmt.Errorf("unknown format %q (want csv or ndjson)", o.format))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Validate before touching the output file, so a bad flag cannot
	// truncate a previously generated results file: locally via PlanSweep,
	// remotely by creating the job (server-side validation errors arrive at
	// creation, before any output is written).
	if o.server != "" {
		c := client.New(o.server)
		st, err := c.CreateJob(ctx, req)
		if err != nil {
			fail(err)
		}
		err = writeRecords(o.format, o.outPath, func(emit func(service.SweepRecord) error) error {
			_, err := c.StreamJobResults(ctx, st.ID, 0, emit)
			return err
		})
		if err != nil {
			// The job keeps simulating on the server without us; cancel it
			// so a CLI run that failed anywhere after creation — output
			// file, emitter, stream, or flush — does not leave abandoned
			// work burning remote CPU.
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _ = c.CancelJob(cctx, st.ID)
			fail(err)
		}
		return
	}

	engine := service.NewEngine(service.EngineConfig{
		DefaultRuns: o.runs,
		Workers:     o.workers,
		ChunkSize:   o.chunkSize,
	})
	plan, err := engine.PlanSweep(req)
	if err != nil {
		fail(err)
	}
	err = writeRecords(o.format, o.outPath, func(emit func(service.SweepRecord) error) error {
		return engine.RunSweep(ctx, plan, emit)
	})
	if err != nil {
		fail(err)
	}
}

// writeRecords opens the output target, builds the format's emitter, runs
// the sweep through it, and flushes — the shared scaffold of the local and
// remote paths.
func writeRecords(format, outPath string, run func(emit func(service.SweepRecord) error) error) (err error) {
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, ferr := os.Create(outPath)
		if ferr != nil {
			return ferr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		out = f
	}
	emit, finish, err := newEmitter(format, out)
	if err != nil {
		return err
	}
	if err := run(emit); err != nil {
		return err
	}
	return finish()
}

// newEmitter returns the per-record writer and a final flush for the format.
func newEmitter(format string, out io.Writer) (func(service.SweepRecord) error, func() error, error) {
	switch format {
	case "csv":
		w := csv.NewWriter(out)
		header := []string{"strategy", "design", "n_primary", "spare_rows",
			"defect_model", "cluster_size", "n_total",
			"p", "runs", "seed", "yield", "ci_lo", "ci_hi", "effective_yield", "no_redundancy"}
		if err := w.Write(header); err != nil {
			return nil, nil, err
		}
		emit := func(r service.SweepRecord) error {
			return w.Write([]string{
				r.Strategy, r.Design,
				strconv.Itoa(r.NPrimary), strconv.Itoa(r.SpareRows),
				r.DefectModel, fmtFloat(r.ClusterSize), strconv.Itoa(r.NTotal),
				fmtFloat(r.P), strconv.Itoa(r.Runs), strconv.FormatInt(r.Seed, 10),
				fmtFloat(r.Yield), fmtFloat(r.CILo), fmtFloat(r.CIHi),
				fmtFloat(r.EffectiveYield), fmtFloat(r.NoRedundancy),
			})
		}
		finish := func() error {
			w.Flush()
			return w.Error()
		}
		return emit, finish, nil
	case "ndjson":
		enc := json.NewEncoder(out)
		return func(r service.SweepRecord) error { return enc.Encode(r) },
			func() error { return nil }, nil
	}
	return nil, nil, fmt.Errorf("unknown format %q (want csv or ndjson)", format)
}

// fmtFloat renders a float with the shortest exact representation, so CSV
// output is byte-stable across runs and platforms.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitDesigns splits a comma-separated design list without breaking names
// like "DTMB(2,6)" apart: commas inside parentheses do not separate.
func splitDesigns(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if part := strings.TrimSpace(s[start:end]); part != "" {
			out = append(out, part)
		}
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
