// Command dtmb-sweep evaluates a Cartesian grid of yield scenarios —
// survival probability × array size × redundancy strategy — and writes one
// CSV or NDJSON record per grid point, suitable for regenerating the
// paper's yield-versus-defect-probability curves (Figs. 7, 9, 10) with a
// plotting tool of choice.
//
// It drives the same sweep engine as the POST /v1/sweep endpoint of
// dtmb-serve, including its result cache and admission control, so repeated
// grid points cost one simulation. Because the Monte-Carlo kernel is
// chunk-seeded, output is byte-identical for a given (grid, runs, seed,
// chunk size) regardless of -workers or GOMAXPROCS.
//
// Examples:
//
//	dtmb-sweep -designs 'DTMB(2,6)' -n 60,120,240 -pmin 0.90 -pmax 1.0 -points 11
//	dtmb-sweep -strategies local,none,shifted -n 100 -spare-rows 1,2 -runs 2000 -o grid.csv
//	dtmb-sweep -format ndjson -ps 0.95,0.99
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"dmfb/internal/service"
)

func main() {
	var (
		strategies = flag.String("strategies", "local", "comma-separated redundancy strategies: none, local, shifted")
		designs    = flag.String("designs", "", "comma-separated DTMB designs for the local strategy (default: all four canonical)")
		ns         = flag.String("n", "100", "comma-separated primary-cell counts")
		psList     = flag.String("ps", "", "comma-separated explicit survival probabilities (overrides -pmin/-pmax/-points)")
		pmin       = flag.Float64("pmin", 0.90, "lowest cell survival probability")
		pmax       = flag.Float64("pmax", 1.00, "highest cell survival probability")
		points     = flag.Int("points", 11, "number of evenly spaced probabilities in [pmin, pmax]")
		spareRows  = flag.String("spare-rows", "1", "comma-separated boundary spare-row counts for the shifted strategy")
		runs       = flag.Int("runs", 10000, "Monte-Carlo runs per grid point")
		seed       = flag.Int64("seed", 20050307, "PRNG seed (same seed, same grid: same output)")
		workers    = flag.Int("workers", 0, "goroutines per simulation (0 = GOMAXPROCS); never affects results")
		chunkSize  = flag.Int("chunk-size", 0, "trials per Monte-Carlo work unit (0 = default 256); part of the determinism contract")
		format     = flag.String("format", "csv", "output format: csv or ndjson")
		outPath    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-sweep:", err)
		os.Exit(1)
	}

	nVals, err := parseInts(*ns)
	if err != nil {
		fail(fmt.Errorf("-n: %w", err))
	}
	rowVals, err := parseInts(*spareRows)
	if err != nil {
		fail(fmt.Errorf("-spare-rows: %w", err))
	}
	pVals, err := parseFloats(*psList)
	if err != nil {
		fail(fmt.Errorf("-ps: %w", err))
	}

	req := service.SweepRequest{
		Strategies: splitList(*strategies),
		Designs:    splitDesigns(*designs),
		NPrimaries: nVals,
		Ps:         pVals,
		PMin:       *pmin,
		PMax:       *pmax,
		PPoints:    *points,
		SpareRows:  rowVals,
		Runs:       *runs,
		Seed:       *seed,
	}

	engine := service.NewEngine(service.EngineConfig{
		DefaultRuns: *runs,
		Workers:     *workers,
		ChunkSize:   *chunkSize,
	})
	// Validate the whole request before touching the output file, so a bad
	// flag cannot truncate a previously generated results file.
	plan, err := engine.PlanSweep(req)
	if err != nil {
		fail(err)
	}
	if *format != "csv" && *format != "ndjson" {
		fail(fmt.Errorf("unknown format %q (want csv or ndjson)", *format))
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}

	emit, finish, err := newEmitter(*format, out)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := engine.RunSweep(ctx, plan, emit); err != nil {
		fail(err)
	}
	if err := finish(); err != nil {
		fail(err)
	}
}

// newEmitter returns the per-record writer and a final flush for the format.
func newEmitter(format string, out io.Writer) (func(service.SweepRecord) error, func() error, error) {
	switch format {
	case "csv":
		w := csv.NewWriter(out)
		header := []string{"strategy", "design", "n_primary", "spare_rows", "n_total",
			"p", "runs", "seed", "yield", "ci_lo", "ci_hi", "effective_yield", "no_redundancy"}
		if err := w.Write(header); err != nil {
			return nil, nil, err
		}
		emit := func(r service.SweepRecord) error {
			return w.Write([]string{
				r.Strategy, r.Design,
				strconv.Itoa(r.NPrimary), strconv.Itoa(r.SpareRows), strconv.Itoa(r.NTotal),
				fmtFloat(r.P), strconv.Itoa(r.Runs), strconv.FormatInt(r.Seed, 10),
				fmtFloat(r.Yield), fmtFloat(r.CILo), fmtFloat(r.CIHi),
				fmtFloat(r.EffectiveYield), fmtFloat(r.NoRedundancy),
			})
		}
		finish := func() error {
			w.Flush()
			return w.Error()
		}
		return emit, finish, nil
	case "ndjson":
		enc := json.NewEncoder(out)
		return func(r service.SweepRecord) error { return enc.Encode(r) },
			func() error { return nil }, nil
	}
	return nil, nil, fmt.Errorf("unknown format %q (want csv or ndjson)", format)
}

// fmtFloat renders a float with the shortest exact representation, so CSV
// output is byte-stable across runs and platforms.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitDesigns splits a comma-separated design list without breaking names
// like "DTMB(2,6)" apart: commas inside parentheses do not separate.
func splitDesigns(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if part := strings.TrimSpace(s[start:end]); part != "" {
			out = append(out, part)
		}
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
