package main

import (
	"bytes"
	"flag"
	"reflect"
	"strings"
	"testing"
)

// TestHelpNamesAllStrategiesAndAxes smoke-tests the -h output: every
// redundancy strategy and both defect models must be named, so the flag
// docs cannot silently go stale when an axis is added.
func TestHelpNamesAllStrategiesAndAxes(t *testing.T) {
	fs := flag.NewFlagSet("dtmb-sweep", flag.ContinueOnError)
	registerFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	usage := buf.String()
	for _, want := range []string{
		"none, local, shifted, hex", // the four strategies, in the -strategies doc
		"defect-models",
		"independent, clustered", // both defect models, in the -defect-models doc
		"cluster-size",
		"spare-rows",
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("-h output does not mention %q:\n%s", want, usage)
		}
	}
}

func TestSplitDesignsKeepsParenthesizedNames(t *testing.T) {
	got := splitDesigns("DTMB(2,6), dtmb44 ,DTMB(3,6)")
	want := []string{"DTMB(2,6)", "dtmb44", "DTMB(3,6)"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitDesigns = %v, want %v", got, want)
	}
}

func TestParseListsRejectGarbage(t *testing.T) {
	if _, err := parseInts("1,x"); err == nil {
		t.Error("parseInts accepted garbage")
	}
	if _, err := parseFloats("0.9,oops"); err == nil {
		t.Error("parseFloats accepted garbage")
	}
	ints, err := parseInts(" 1, 2 ,3 ")
	if err != nil || !reflect.DeepEqual(ints, []int{1, 2, 3}) {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
}
