package main

import (
	"bytes"
	"context"
	"flag"
	"log/slog"
	"reflect"
	"strings"
	"testing"

	"dmfb/client"
	"dmfb/internal/service"
)

// TestHelpNamesAllStrategiesAndAxes smoke-tests the -h output: every
// redundancy strategy and both defect models must be named, so the flag
// docs cannot silently go stale when an axis is added.
func TestHelpNamesAllStrategiesAndAxes(t *testing.T) {
	fs := flag.NewFlagSet("dtmb-sweep", flag.ContinueOnError)
	registerFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	usage := buf.String()
	for _, want := range []string{
		"none, local, shifted, hex", // the four strategies, in the -strategies doc
		"defect-models",
		"independent, clustered", // both defect models, in the -defect-models doc
		"cluster-size",
		"spare-rows",
		"dtmb-serve base URL", // the -server remote path
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("-h output does not mention %q:\n%s", want, usage)
		}
	}
}

// TestRemoteSweepMatchesLocalBytes runs the same grid through both of
// main's paths — the in-process engine and a remote /v2 job streamed by the
// typed client — into the CSV emitter, and asserts identical bytes. The
// engine configurations match (same default runs, default chunk size), so
// the chunk-seeded kernel pins every digit.
func TestRemoteSweepMatchesLocalBytes(t *testing.T) {
	req := service.SweepRequest{
		Strategies:   []string{"none", "local", "shifted", "hex"},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{40},
		Ps:           []float64{0.9, 0.95},
		SpareRows:    []int{1},
		DefectModels: []string{"independent", "clustered"},
		ClusterSize:  4,
		Runs:         150,
		Seed:         11,
	}

	runEmitter := func(run func(emit func(service.SweepRecord) error) error) []byte {
		t.Helper()
		var buf bytes.Buffer
		emit, finish, err := newEmitter("csv", &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(emit); err != nil {
			t.Fatal(err)
		}
		if err := finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	engine := service.NewEngine(service.EngineConfig{DefaultRuns: req.Runs})
	local := runEmitter(func(emit func(service.SweepRecord) error) error {
		plan, err := engine.PlanSweep(req)
		if err != nil {
			return err
		}
		return engine.RunSweep(context.Background(), plan, emit)
	})

	srv, err := service.NewServer(service.ServerConfig{
		Addr:   "127.0.0.1:0",
		Engine: service.EngineConfig{DefaultRuns: req.Runs},
		Logger: slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
		if err := <-serveDone; err != nil {
			t.Error(err)
		}
	}()

	c := client.New("http://" + srv.Addr())
	remote := runEmitter(func(emit func(service.SweepRecord) error) error {
		st, err := c.CreateJob(context.Background(), req)
		if err != nil {
			return err
		}
		_, err = c.StreamJobResults(context.Background(), st.ID, 0, emit)
		return err
	})

	if !bytes.Equal(local, remote) {
		t.Errorf("remote CSV differs from local CSV:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
}

func TestSplitDesignsKeepsParenthesizedNames(t *testing.T) {
	got := splitDesigns("DTMB(2,6), dtmb44 ,DTMB(3,6)")
	want := []string{"DTMB(2,6)", "dtmb44", "DTMB(3,6)"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitDesigns = %v, want %v", got, want)
	}
}

func TestParseListsRejectGarbage(t *testing.T) {
	if _, err := parseInts("1,x"); err == nil {
		t.Error("parseInts accepted garbage")
	}
	if _, err := parseFloats("0.9,oops"); err == nil {
		t.Error("parseFloats accepted garbage")
	}
	ints, err := parseInts(" 1, 2 ,3 ")
	if err != nil || !reflect.DeepEqual(ints, []int{1, 2, 3}) {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
}
