// Command dtmb-test exercises the droplet-based test methodology: it
// injects hidden faults into a DTMB array, releases stimulus droplets along
// coverage walks, localizes every reachable fault by adaptive binary
// search, cross-checks the diagnosis against the ground truth, and feeds
// the diagnosed faults into local reconfiguration.
//
// Example:
//
//	dtmb-test -design 'DTMB(2,6)' -n 252 -faults 10 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/testplan"
)

func main() {
	var (
		designName = flag.String("design", "DTMB(2,6)", "design name")
		n          = flag.Int("n", 100, "number of primary cells")
		faults     = flag.Int("faults", 5, "number of hidden faults to inject")
		seed       = flag.Int64("seed", 2005, "fault-injection seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-test:", err)
		os.Exit(1)
	}

	d, err := layout.DesignByName(*designName)
	if err != nil {
		fail(err)
	}
	arr, err := layout.BuildWithPrimaryTarget(d, *n)
	if err != nil {
		fail(err)
	}
	in := defects.NewInjector(*seed)
	truth, err := in.FixedCount(arr, *faults, defects.AllCells, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("chip: %s\nhidden faults: %d\n\n", arr, truth.Count())

	session, err := testplan.NewSession(arr, truth, 0)
	if err != nil {
		fail(err)
	}
	diag, err := session.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("diagnosis: %d faults found with %d stimulus droplets (complete: %v)\n",
		len(diag.Faulty), diag.TestDroplets, diag.Complete)
	for _, id := range diag.Faulty {
		fmt.Printf("  faulty cell %d at %v (%s)\n", id, arr.Cell(id).Pos, arr.Cell(id).Role)
	}
	if len(diag.Unreachable) > 0 {
		fmt.Printf("  %d cells unreachable from the droplet source\n", len(diag.Unreachable))
	}
	if err := testplan.VerifyDiagnosis(arr, truth, diag); err != nil {
		fail(fmt.Errorf("diagnosis unsound: %w", err))
	}
	fmt.Println("diagnosis verified against ground truth")

	// Feed the diagnosis into reconfiguration.
	diagnosed := defects.NewFaultSet(arr.NumCells())
	for _, id := range diag.Faulty {
		diagnosed.MarkFaulty(id)
	}
	plan, err := reconfig.LocalReconfigure(arr, diagnosed, reconfig.Options{})
	if err != nil {
		fail(err)
	}
	if plan.OK {
		fmt.Printf("local reconfiguration: OK, %d faulty primaries replaced by adjacent spares\n",
			len(plan.Assignments))
	} else {
		fmt.Printf("local reconfiguration: FAILED, %d faulty primaries without spares\n",
			len(plan.Unmatched))
	}
}
