// Command dtmb-worker is a shard-evaluation worker for distributed sweeps.
// It registers with a dtmb-serve coordinator running with -dispatch, pulls
// shard leases over HTTP, evaluates them through the same engine core as the
// coordinator (cache, single-flight, admission, telemetry), and submits the
// records back. Results are bit-identical no matter which worker evaluates a
// shard — the lease pins every determinism-relevant parameter — so workers
// are fully interchangeable and safe to kill at any time.
//
//	dtmb-serve -addr :8080 -dispatch -store-dir /var/lib/dtmb/jobs
//	dtmb-worker -coordinator http://localhost:8080 &
//	dtmb-worker -coordinator http://localhost:8080 &
//	curl -s -H 'Content-Type: application/json' localhost:8080/v2/jobs \
//	    -d '{"strategies":["local"],"runs":2000,"seed":7,"distributed":true}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfb/client"
	"dmfb/internal/dispatch"
	"dmfb/internal/faultinject"
	"dmfb/internal/service"
)

func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

func main() {
	var (
		coordinator   = flag.String("coordinator", "http://localhost:8080", "coordinator base URL (a dtmb-serve with -dispatch)")
		name          = flag.String("name", "", "worker label for the coordinator's logs (default: hostname)")
		cacheSize     = flag.Int("cache-size", 1024, "LRU result-cache capacity (entries)")
		workers       = flag.Int("workers", 0, "goroutines per simulation (0 = GOMAXPROCS); does not affect results")
		maxConcurrent = flag.Int("max-concurrent", 0, "simulations admitted at once (0 = 2)")
		poll          = flag.Duration("poll", 500*time.Millisecond, "base backoff between lease attempts when idle (jittered)")
		logLevel      = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		chaos         = flag.String("chaos", "", "fault-injection schedule for the worker loop and its coordinator transport, e.g. 'worker.crash=0.3,transport.5xx=0.05' (testing only)")
		chaosSeed     = flag.Uint64("chaos-seed", 1, "seed for the -chaos schedule's deterministic PRNGs")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-worker:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	label := *name
	if label == "" {
		label, _ = os.Hostname()
	}

	inject, err := faultinject.ParseSpec(*chaos, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtmb-worker:", err)
		os.Exit(2)
	}
	cfg := dispatch.WorkerConfig{
		Coordinator: *coordinator,
		Name:        label,
		Engine: service.EngineConfig{
			CacheSize:     *cacheSize,
			Workers:       *workers,
			MaxConcurrent: *maxConcurrent,
			Logger:        logger,
		},
		Poll:   *poll,
		Logger: logger,
		Inject: inject,
	}
	if inject != nil {
		// One schedule arms both seams: worker.* points fire in the shard
		// loop, transport.* points in the coordinator client's round trips.
		logger.Warn("chaos schedule armed", slog.String("schedule", inject.String()))
		cfg.ClientOptions = []client.Option{client.WithHTTPClient(&http.Client{
			Transport: &faultinject.Transport{Inject: inject},
		})}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = dispatch.RunWorker(ctx, cfg)
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "dtmb-worker:", err)
		os.Exit(1)
	}
}
