// Command dtmb-yield sweeps the yield and effective yield of the DTMB
// defect-tolerant designs across cell survival probabilities, printing
// aligned tables or CSV. It is the workhorse behind the paper's Figs. 7, 9
// and 10.
//
// With -server the estimates are not computed in-process: each (design, p)
// cell is evaluated by a dtmb-serve instance through the typed client
// (POST /v2/evaluate), sharing the server's result cache with every other
// consumer of the same scenarios.
//
// Examples:
//
//	dtmb-yield -design 'DTMB(2,6)' -n 100 -pmin 0.90 -pmax 1.0 -points 11
//	dtmb-yield -all -n 100 -runs 10000 -csv
//	dtmb-yield -all -server http://localhost:8080 -runs 10000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dmfb/client"
	"dmfb/internal/layout"
	"dmfb/internal/stats"
	"dmfb/internal/yieldsim"
)

func main() {
	var (
		designName = flag.String("design", "DTMB(2,6)", "design name (DTMB(1,6), DTMB(2,6), DTMB(2,6)alt, DTMB(3,6), DTMB(4,4))")
		all        = flag.Bool("all", false, "sweep all four canonical designs")
		n          = flag.Int("n", 100, "number of primary cells")
		pmin       = flag.Float64("pmin", 0.90, "lowest cell survival probability")
		pmax       = flag.Float64("pmax", 1.00, "highest cell survival probability")
		points     = flag.Int("points", 11, "number of sweep points")
		runs       = flag.Int("runs", 10000, "Monte-Carlo runs per point")
		epsilon    = flag.Float64("epsilon", 0, "target 95% CI half-width per point; >0 stops each estimate early once reached, with -runs as the trial budget")
		seed       = flag.Int64("seed", 20050307, "PRNG seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		analytic   = flag.Bool("analytic", false, "also print the DTMB(1,6) closed-form and no-redundancy baselines")
		server     = flag.String("server", "", "dtmb-serve base URL; when set, evaluate each point remotely via /v2/evaluate")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dtmb-yield:", err)
		// A server-rejected request carries the server's trace ID; print it
		// separately so the operator can grep the dtmb-serve access log.
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.RequestID != "" {
			fmt.Fprintf(os.Stderr, "dtmb-yield: server trace id %s (see the dtmb-serve access log)\n", apiErr.RequestID)
		}
		os.Exit(1)
	}

	var designs []layout.Design
	if *all {
		designs = layout.AllDesigns()
	} else {
		d, err := layout.DesignByName(*designName)
		if err != nil {
			fail(err)
		}
		designs = []layout.Design{d}
	}

	ps := stats.Linspace(*pmin, *pmax, *points)
	tb := stats.Table{
		Title:   fmt.Sprintf("Yield sweep: n=%d primaries, %d runs per point, seed %d", *n, *runs, *seed),
		Columns: []string{"p"},
	}
	for _, d := range designs {
		tb.Columns = append(tb.Columns, "Y "+d.Name, "EY "+d.Name)
	}
	if *analytic {
		tb.Columns = append(tb.Columns, "Y analytic DTMB(1,6)", "Y no-redundancy")
	}

	type cellResult struct{ y, ey float64 }
	results := make([][]cellResult, len(designs))
	if *server != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		c := client.New(*server)
		for di, d := range designs {
			for _, p := range ps {
				rec, err := c.Evaluate(ctx, client.Scenario{
					Strategy: "local",
					Design:   d.Name,
					NPrimary: *n,
					P:        p,
					Runs:     *runs,
					Seed:     *seed,
					Epsilon:  *epsilon,
				})
				if err != nil {
					fail(err)
				}
				results[di] = append(results[di], cellResult{rec.Yield, rec.EffectiveYield})
			}
		}
	} else {
		for di, d := range designs {
			arr, err := layout.BuildWithPrimaryTarget(d, *n)
			if err != nil {
				fail(err)
			}
			mc := yieldsim.NewMonteCarlo(*seed)
			mc.Runs = *runs
			mc.Epsilon = *epsilon
			for _, p := range ps {
				res, err := mc.Yield(arr, p)
				if err != nil {
					fail(err)
				}
				ey := yieldsim.EffectiveYieldCells(res.Yield, arr.NumPrimary(), arr.NumCells())
				results[di] = append(results[di], cellResult{res.Yield, ey})
			}
		}
	}
	for pi, p := range ps {
		row := []string{fmt.Sprintf("%.4f", p)}
		for di := range designs {
			row = append(row,
				fmt.Sprintf("%.4f", results[di][pi].y),
				fmt.Sprintf("%.4f", results[di][pi].ey))
		}
		if *analytic {
			row = append(row,
				fmt.Sprintf("%.4f", yieldsim.ClusterYieldDTMB16(p, *n)),
				fmt.Sprintf("%.4f", yieldsim.NoRedundancy(p, *n)))
		}
		tb.AddRow(row...)
	}

	if *csv {
		fmt.Print(tb.CSV())
		return
	}
	fmt.Println(tb.String())
}
