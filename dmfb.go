// Package dmfb is a Go implementation of yield enhancement for digital
// microfluidics-based biochips using space redundancy and local
// reconfiguration, reproducing Su, Chakrabarty and Pamula (DATE 2005).
//
// Digital microfluidic biochips (DMFBs) move nanoliter droplets over a 2-D
// electrode array by electrowetting. Because a droplet can only step to a
// physically adjacent cell, classic boundary spare-row redundancy forces
// expensive "shifted replacement" cascades; this library instead builds
// DTMB(s, p) arrays with *interstitial* spare cells so every faulty primary
// cell is repaired locally by an adjacent spare, assigned with maximum
// bipartite matching.
//
// The facade re-exports the main entry points; the full machinery lives in
// the internal packages (layout, defects, matching, reconfig, yieldsim,
// chip, fluidics, bioassay, ...; see DESIGN.md):
//
//	chip, _ := dmfb.New(dmfb.DTMB26(), 100) // 100 primaries + interstitial spares
//	chip.InjectBernoulli(1, 0.95)           // manufacturing defects (p = cell survival)
//	plan, _ := chip.Reconfigure()           // local reconfiguration via matching
//	fmt.Println(plan.OK)                    // chip shippable?
//
// Beyond the library, the repository ships one-shot CLIs under cmd/
// (dtmb-yield, dtmb-experiments, dtmb-layout, ...), a parameter-sweep tool
// (cmd/dtmb-sweep, emitting CSV/NDJSON grids of yield scenarios, in-process
// or against a remote server), and an online serving layer: cmd/dtmb-serve
// exposes the v1 endpoints (POST /v1/yield, /v1/recommend, /v1/reconfigure,
// streaming /v1/sweep) and a scenario-first v2 surface — POST /v2/evaluate
// for one scenario of any strategy × defect model, and POST /v2/jobs for
// asynchronous sweeps whose NDJSON result streams are cursor-resumable with
// byte identity — over HTTP/JSON, backed by internal/service: a batched
// Monte-Carlo engine with a bounded worker pool, an LRU result cache,
// single-flight deduplication of concurrent identical requests, and an
// in-memory job store drained by graceful shutdown. Package dmfb/client is
// the typed Go client of both surfaces, resuming interrupted job streams
// automatically. The Monte-Carlo kernel is chunk-seeded, so estimates are
// deterministic in (seed, runs, chunk size) regardless of parallelism;
// identical requests are therefore cacheable, sweep output is
// byte-reproducible, and a served answer equals the library answer for the
// same parameters. DESIGN.md documents the architecture and API.md the full
// HTTP contract.
package dmfb

import (
	"dmfb/internal/core"
	"dmfb/internal/layout"
	"dmfb/internal/yieldsim"
)

// Biochip is a defect-tolerant microfluidic biochip; see internal/core.
type Biochip = core.Biochip

// Design describes a DTMB(s, p) interstitial-redundancy pattern.
type Design = layout.Design

// New builds a biochip with the given design and exactly nPrimary primary
// cells.
func New(design Design, nPrimary int) (*Biochip, error) {
	return core.New(design, nPrimary)
}

// The four canonical defect-tolerant designs of the paper (Table 1), plus
// the alternative DTMB(2,6) arrangement of Fig. 4(b).
var (
	DTMB16    = layout.DTMB16
	DTMB26    = layout.DTMB26
	DTMB26Alt = layout.DTMB26Alt
	DTMB36    = layout.DTMB36
	DTMB44    = layout.DTMB44
)

// AllDesigns returns the four canonical designs in Table 1 order.
func AllDesigns() []Design { return layout.AllDesigns() }

// NoRedundancyYield returns p^n, the yield of a chip whose n working cells
// have no spares.
func NoRedundancyYield(p float64, n int) float64 { return yieldsim.NoRedundancy(p, n) }

// ClusterYieldDTMB16 returns the paper's closed-form DTMB(1,6) yield
// Y = (p^7 + 7p^6(1−p))^(n/6).
func ClusterYieldDTMB16(p float64, n int) float64 { return yieldsim.ClusterYieldDTMB16(p, n) }

// EffectiveYield returns EY = Y/(1+RR), the paper's yield-per-area metric.
func EffectiveYield(y, rr float64) float64 { return yieldsim.EffectiveYield(y, rr) }

// RecommendDesign evaluates all canonical designs at survival probability p
// and picks the one with the highest effective yield (paper Fig. 10).
func RecommendDesign(p float64, nPrimary, runs int, seed int64) (core.Recommendation, error) {
	return core.RecommendDesign(p, nPrimary, runs, seed)
}
