package dmfb_test

import (
	"math"
	"testing"

	"dmfb"
)

func TestFacadeLifecycle(t *testing.T) {
	chip, err := dmfb.New(dmfb.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Array().NumPrimary() != 100 {
		t.Errorf("primaries %d", chip.Array().NumPrimary())
	}
	if err := chip.InjectBernoulli(1, 0.97); err != nil {
		t.Fatal(err)
	}
	plan, err := chip.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	_ = plan.OK // deterministic given the seed; either way the plan is valid
}

func TestFacadeDesignsMatchTable1(t *testing.T) {
	designs := dmfb.AllDesigns()
	if len(designs) != 4 {
		t.Fatalf("%d designs", len(designs))
	}
	wantRR := []float64{1.0 / 6, 1.0 / 3, 0.5, 1.0}
	for i, d := range designs {
		if math.Abs(d.RR()-wantRR[i]) > 1e-12 {
			t.Errorf("%s RR %v, want %v", d.Name, d.RR(), wantRR[i])
		}
	}
	if dmfb.DTMB26Alt().Name != "DTMB(2,6)alt" {
		t.Error("alt variant missing")
	}
}

func TestFacadeYieldHelpers(t *testing.T) {
	if math.Abs(dmfb.NoRedundancyYield(0.99, 108)-0.3378) > 5e-4 {
		t.Error("paper baseline number broken")
	}
	if dmfb.ClusterYieldDTMB16(1, 120) != 1 {
		t.Error("cluster yield at p=1")
	}
	if math.Abs(dmfb.EffectiveYield(0.9, 0.5)-0.6) > 1e-12 {
		t.Error("effective yield")
	}
}

func TestFacadeRecommendDesign(t *testing.T) {
	rec, err := dmfb.RecommendDesign(0.999, 60, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Name == "" || len(rec.Analyses) != 4 {
		t.Errorf("recommendation %+v", rec)
	}
	// Near-perfect cells: low redundancy must win on effective yield.
	if rec.Best.RR() > 0.5 {
		t.Errorf("at p=0.999 best design %s has RR %v", rec.Best.Name, rec.Best.RR())
	}
}
