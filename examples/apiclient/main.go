// apiclient: the typed Go client against an in-process dtmb-serve. The
// example starts the full HTTP server on a loopback port, then walks the v2
// surface the way a remote consumer would: evaluate one scenario, run a
// heterogeneous sweep as an asynchronous job with a resumable result
// stream, poll the job, and read the server stats — all through package
// client, never raw HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"time"

	"dmfb/client"
	"dmfb/internal/service"
)

func main() {
	// An in-process server on a loopback port; a real deployment runs
	// cmd/dtmb-serve and points the client at its address instead.
	srv, err := service.NewServer(service.ServerConfig{
		Addr:   "127.0.0.1:0",
		Engine: service.EngineConfig{DefaultRuns: 2000},
		Logger: slog.New(slog.DiscardHandler),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			log.Fatal(err)
		}
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
	}()

	ctx := context.Background()
	c := client.New("http://" + srv.Addr())

	// One scenario: the paper's DTMB(2,6) proposal on a hexagonal footprint.
	rec, err := c.Evaluate(ctx, client.Scenario{
		Strategy: "hex", Design: "DTMB(2,6)", NPrimary: 100, P: 0.95, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hex DTMB(2,6) at p=0.95: yield %.4f (effective %.4f over %d cells)\n",
		rec.Yield, rec.EffectiveYield, rec.NTotal)

	// A whole yield-vs-p family as an asynchronous job. RunJob creates the
	// job and streams its records in grid order, transparently resuming if
	// the connection drops mid-stream.
	grid := client.SweepRequest{
		Strategies: []string{"none", "local", "hex"},
		Designs:    []string{"DTMB(2,6)"},
		NPrimaries: []int{100},
		Ps:         []float64{0.90, 0.95, 0.99},
		Seed:       7,
	}
	fmt.Println("\nstrategy  design      p     yield")
	status, err := c.RunJob(ctx, grid, func(r client.SweepRecord) error {
		fmt.Printf("%-9s %-10s %.2f  %.4f\n", r.Strategy, r.Design, r.P, r.Yield)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob %s: %s, %d/%d points\n",
		status.ID, status.State, status.PointsDone, status.TotalPoints)

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d simulations run, %d jobs completed, %d points evaluated\n",
		stats.Completed, stats.JobsCompleted, stats.PointsEvaluated)
}
