// In-vitro diagnostics case study (paper §7): the multiplexed
// glucose/lactate/glutamate/pyruvate chip. Reproduces the paper's numbers —
// the original 108-cell chip yields only 0.3378 at p = 0.99, while the
// DTMB(2,6) redesign (252 primary + 91 spare cells) tolerates dozens of
// faults — and then runs the four Trinder assays through the kinetics model.
package main

import (
	"fmt"
	"log"

	"dmfb/internal/bioassay"
	"dmfb/internal/chip"
	"dmfb/internal/defects"
	"dmfb/internal/droplet"
	"dmfb/internal/scheduler"
	"dmfb/internal/yieldsim"
)

func main() {
	// The original fabricated chip: 108 assay cells, no spares.
	original, err := chip.OriginalChipLayout()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original chip: %d modules, %d assay cells, no spares\n",
		len(original.Placement.Modules), len(original.Used))
	fmt.Printf("yield at p=0.99: %.4f  <- one faulty cell discards the chip\n\n",
		chip.OriginalYield(0.99))

	// The DTMB(2,6)-based redesign with the paper's cell counts.
	redesign, err := chip.NewRedesignedChip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redesign: %s (%d assay-used cells)\n", redesign.Array(), redesign.NumUsed())

	// Fig. 12-style event: 10 random faults, repaired locally.
	if err := redesign.InjectFixed(2005, 10, defects.AllCells); err != nil {
		log.Fatal(err)
	}
	plan, err := redesign.Reconfigure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10 random faults -> reconfiguration OK=%v with %d replacements\n\n",
		plan.OK, len(plan.Assignments))

	// Fig. 13-style sweep: yield vs fault count for the redesign.
	mc := yieldsim.NewMonteCarlo(20050307)
	mc.Runs = 3000
	fmt.Println("yield of the redesign vs number of random cell faults:")
	for _, m := range []int{0, 10, 20, 30, 40, 50} {
		res, err := mc.YieldFixedFaults(redesign.Array(), m, defects.AllCells)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  m=%2d  yield %.4f\n", m, res.Yield)
	}

	// Schedule the multiplexed workload: 2 fluids x 4 assays.
	ops := bioassay.MultiplexedWorkload()
	sched, err := scheduler.List(ops, scheduler.DefaultResources())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmultiplexed workload: %d operations across 8 assays, makespan %d cycles\n",
		len(ops), sched.Makespan)

	// Run the chemistry of all four assays through Trinder kinetics.
	fmt.Println("\nassay chemistry (sample diluted 1:1 with reagent, 30 s detection):")
	concentrations := map[bioassay.Kind]float64{
		bioassay.Glucose:   0.0050, // mol/L, high-normal blood glucose
		bioassay.Lactate:   0.0015,
		bioassay.Glutamate: 0.0001,
		bioassay.Pyruvate:  0.0001,
	}
	for _, kind := range bioassay.AllKinds() {
		protocol := bioassay.ProtocolFor(kind)
		sample, err := protocol.SampleDroplet(1.0, concentrations[kind])
		if err != nil {
			log.Fatal(err)
		}
		reagent, err := protocol.ReagentDroplet(1.0)
		if err != nil {
			log.Fatal(err)
		}
		mixed := droplet.Merge(sample, reagent)
		mixed.AdvanceMixing(1)
		absorbance, err := protocol.Measure(mixed)
		if err != nil {
			log.Fatal(err)
		}
		estimate, err := protocol.EstimateConcentration(absorbance)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s absorbance %.4f AU -> estimated %.5f mol/L (true diluted %.5f)\n",
			kind, absorbance, estimate, concentrations[kind]/2)
	}
}
