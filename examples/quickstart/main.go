// Quickstart: build a defect-tolerant DTMB(2,6) biochip, break it with
// random manufacturing defects, repair it by local reconfiguration, and
// compare yield against a chip without redundancy.
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	// A biochip with 100 primary cells; interstitial spares are added
	// automatically by the DTMB(2,6) pattern (one spare per three primaries).
	chip, err := dmfb.New(dmfb.DTMB26(), 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built:", chip.Array())

	// Manufacturing: every cell survives with probability p = 0.95.
	if err := chip.InjectBernoulli(42, 0.95); err != nil {
		log.Fatal(err)
	}
	st := chip.Status()
	fmt.Printf("defects: %d faulty primaries, %d faulty spares\n",
		st.FaultyPrimaries, st.FaultySpares)

	// Repair: every faulty primary must be replaced by an adjacent
	// fault-free spare (maximum bipartite matching).
	plan, err := chip.Reconfigure()
	if err != nil {
		log.Fatal(err)
	}
	if plan.OK {
		fmt.Printf("reconfiguration OK: %d local replacements, chip shippable\n",
			len(plan.Assignments))
		for _, a := range plan.Assignments {
			fmt.Printf("  primary %v -> spare %v\n",
				chip.Array().Cell(a.Faulty).Pos, chip.Array().Cell(a.Spare).Pos)
		}
	} else {
		fmt.Printf("reconfiguration failed: %d faulty primaries without spares\n",
			len(plan.Unmatched))
	}

	// Yield: what fraction of manufactured chips survive at p = 0.95?
	analysis, err := chip.AnalyzeYield(0.95, 5000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nyield at p=0.95:  %.4f (DTMB(2,6) with local reconfiguration)\n", analysis.Yield)
	fmt.Printf("                  %.4f (same 100 cells, no redundancy)\n", analysis.NoRedundancy)
	fmt.Printf("effective yield:  %.4f (yield per unit array area)\n", analysis.EffectiveYield)
}
