// Reconfiguration demo (paper Fig. 12): render a DTMB(2,6) array with 10
// random faulty cells before and after local reconfiguration, and contrast
// the repair cost with the shifted-replacement baseline of Fig. 2.
package main

import (
	"fmt"
	"log"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/render"
	"dmfb/internal/sqgrid"
)

func main() {
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 14, 12)
	if err != nil {
		log.Fatal(err)
	}
	in := defects.NewInjector(12)
	faults, err := in.FixedCount(arr, 10, defects.AllCells, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DTMB(2,6) array with 10 random faults:")
	fmt.Println()
	fmt.Print(render.ASCII(arr, render.Marks{Faults: faults}))
	fmt.Println(render.Legend())

	plan, err := reconfig.LocalReconfigure(arr, faults, reconfig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter local reconfiguration (R = spare standing in for a neighbor):")
	fmt.Println()
	fmt.Print(render.ASCII(arr, render.Marks{Faults: faults, Plan: &plan}))
	fmt.Println()
	fmt.Print(render.Summary(arr, render.Marks{Faults: faults, Plan: &plan}))
	fmt.Printf("repair cost: %d cells remapped (one per fault), no fault-free module touched\n",
		plan.CellsRemapped())

	// The baseline the paper argues against: spare-row redundancy with
	// shifted replacement (Fig. 2).
	fmt.Println("\n--- boundary spare-row baseline (paper Fig. 2) ---")
	p := sqgrid.Figure2Placement()
	for _, scenario := range []struct {
		name  string
		fault sqgrid.Coord
	}{
		{"fault in Module 1 (next to the spare row)", sqgrid.Coord{X: 3, Y: 6}},
		{"fault in Module 3 (far from the spare row)", sqgrid.Coord{X: 3, Y: 1}},
	} {
		res, err := reconfig.ShiftedReplacement(p, scenario.fault, reconfig.ShiftOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n  %d cells remapped, modules reconfigured: %v\n",
			scenario.name, res.CellsRemapped, res.ModulesReconfigured)
	}
	fmt.Println("\ninterstitial redundancy repairs every fault with exactly one adjacent spare;")
	fmt.Println("shifted replacement drags fault-free modules into the reconfiguration.")
}
