// Testing demo: the droplet-based test methodology the paper builds on
// (refs [10, 11]). A stimulus droplet of conducting fluid walks a coverage
// route; a droplet that stalls reveals a fault, which adaptive binary search
// localizes with O(log n) droplets. The diagnosis then drives local
// reconfiguration, and the parametric-fault model shows why geometry
// deviations are detectable only beyond the performance tolerance.
package main

import (
	"fmt"
	"log"

	"dmfb/internal/defects"
	"dmfb/internal/electrowetting"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/testplan"
)

func main() {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chip under test:", arr)

	// Hide six faults: the test procedure only observes droplet arrivals.
	in := defects.NewInjector(77)
	truth, err := in.FixedCount(arr, 6, defects.AllCells, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden faults: %d (unknown to the tester)\n\n", truth.Count())

	// Plan coverage and run adaptive localization.
	plan, err := testplan.CoverageWalk(arr, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage walk: %d steps visiting all %d cells\n", len(plan.Path), arr.NumCells())

	session, err := testplan.NewSession(arr, truth, 0)
	if err != nil {
		log.Fatal(err)
	}
	diag, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosis: %d faults localized with %d stimulus droplets\n",
		len(diag.Faulty), diag.TestDroplets)
	for _, id := range diag.Faulty {
		fmt.Printf("  cell %3d at %-8v (%s)\n", id, arr.Cell(id).Pos, arr.Cell(id).Role)
	}
	if err := testplan.VerifyDiagnosis(arr, truth, diag); err != nil {
		log.Fatal(err)
	}
	fmt.Println("diagnosis verified against ground truth")

	// Feed the diagnosis into reconfiguration.
	diagnosed := defects.NewFaultSet(arr.NumCells())
	for _, id := range diag.Faulty {
		diagnosed.MarkFaulty(id)
	}
	rplan, err := reconfig.LocalReconfigure(arr, diagnosed, reconfig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfiguration after diagnosis: OK=%v, %d replacements\n\n",
		rplan.OK, len(rplan.Assignments))

	// Parametric faults: detectable only beyond the performance tolerance.
	ew := electrowetting.Default()
	const voltage, tolerance = 60, 0.15
	fmt.Printf("parametric defects at %.0f V (tolerance %.0f%% transport-time deviation):\n",
		float64(voltage), tolerance*100)
	for _, dev := range []float64{0.02, 0.10, 0.30, 0.80} {
		isFault := ew.IsParametricFault(defects.InsulatorThicknessDeviation, dev, voltage, tolerance)
		vdev := ew.VelocityDeviation(defects.InsulatorThicknessDeviation, dev, voltage)
		fmt.Printf("  insulator +%3.0f%%: velocity change %+6.1f%%  -> fault: %v\n",
			dev*100, vdev*100, isFault)
	}
}
