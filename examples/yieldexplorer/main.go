// Yield explorer: design-space exploration over the four DTMB redundancy
// levels (paper Figs. 7, 9, 10). For each cell survival probability it
// estimates yield and effective yield of every design and recommends the
// redundancy level a manufacturer should pick — high redundancy for immature
// processes (low p), low redundancy for mature ones (high p).
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	const (
		nPrimary = 100
		runs     = 4000
		seed     = 20050307
	)

	fmt.Printf("design-space exploration, n = %d primary cells, %d Monte-Carlo runs per point\n\n",
		nPrimary, runs)
	fmt.Println("redundancy levels (paper Table 1):")
	for _, d := range dmfb.AllDesigns() {
		fmt.Printf("  %-10s every primary touches %d spare(s), RR = %.4f\n", d.Name, d.S, d.RR())
	}

	fmt.Println("\nbest design by effective yield EY = Y/(1+RR):")
	fmt.Printf("%-8s", "p")
	for _, d := range dmfb.AllDesigns() {
		fmt.Printf("  %-16s", "EY "+d.Name)
	}
	fmt.Printf("  %s\n", "recommended")

	for _, p := range []float64{0.80, 0.85, 0.90, 0.95, 0.98, 0.99, 0.995, 0.999} {
		rec, err := dmfb.RecommendDesign(p, nPrimary, runs, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.3f", p)
		for _, a := range rec.Analyses {
			fmt.Printf("  %-16.4f", a.EffectiveYield)
		}
		fmt.Printf("  %s\n", rec.Best.Name)
	}

	fmt.Println("\nanalytic check (paper Fig. 7), DTMB(1,6) vs no redundancy at n = 120:")
	for _, p := range []float64{0.95, 0.97, 0.99} {
		fmt.Printf("  p=%.2f  DTMB(1,6) %.4f   no-redundancy %.4f\n",
			p, dmfb.ClusterYieldDTMB16(p, 120), dmfb.NoRedundancyYield(p, 120))
	}
}
