module dmfb

go 1.24
