// Package bioassay models the colorimetric enzyme-kinetic assays of the
// paper's case study (§7): multiplexed in-vitro measurement of glucose,
// lactate, glutamate and pyruvate in human physiological fluids using
// Trinder's reaction.
//
// Chemistry (glucose variant): glucose oxidase converts glucose to gluconic
// acid and hydrogen peroxide; peroxidase then couples the peroxide with
// 4-amino antipyrine (4-AAP) and N-ethyl-N-sulfopropyl-m-toluidine (TOPS)
// to form violet quinoneimine with an absorbance peak at 545 nm. Under
// reagent excess the product follows pseudo-first-order kinetics
// C(t) = C0·(1 − e^{−kt}), and the optical detector reads absorbance through
// Beer–Lambert's law A = ε·l·C. Inverting the calibration recovers the
// analyte concentration.
//
// The package also defines each assay as an operation DAG (dispense,
// transport, mix, detect) consumed by the scheduler and the fluidics
// simulator.
package bioassay

import (
	"fmt"
	"math"

	"dmfb/internal/droplet"
)

// Kind enumerates the supported assays.
type Kind uint8

// The four metabolite assays of the multiplexed diagnostics case study.
const (
	Glucose Kind = iota
	Lactate
	Glutamate
	Pyruvate
)

// String names the assay.
func (k Kind) String() string {
	switch k {
	case Glucose:
		return "glucose"
	case Lactate:
		return "lactate"
	case Glutamate:
		return "glutamate"
	case Pyruvate:
		return "pyruvate"
	}
	return fmt.Sprintf("assay(%d)", uint8(k))
}

// AllKinds returns the four assay kinds.
func AllKinds() []Kind { return []Kind{Glucose, Lactate, Glutamate, Pyruvate} }

// Protocol is the chemistry of one Trinder-type assay.
type Protocol struct {
	Kind Kind
	// Analyte is the measured species in the sample droplet.
	Analyte droplet.Species
	// Oxidase is the analyte-specific enzyme in the reagent droplet.
	Oxidase droplet.Species
	// RateConstant k (1/s) of the pseudo-first-order color development.
	RateConstant float64
	// Epsilon is the molar absorptivity of quinoneimine at 545 nm
	// (L/(mol·cm)).
	Epsilon float64
	// PathLength is the optical path length through the droplet (cm); set
	// by the plate gap.
	PathLength float64
	// DetectTime is the dwell time (s) on the detector before readout.
	DetectTime float64
}

// ProtocolFor returns the protocol of the given assay kind with literature-
// plausible constants. All four share Trinder chemistry and differ in the
// oxidase enzyme and rate.
func ProtocolFor(kind Kind) Protocol {
	p := Protocol{
		Kind:       kind,
		Epsilon:    28000, // quinoneimine-class dye at 545 nm
		PathLength: 0.03,  // 300 µm plate gap
		DetectTime: 30,
	}
	switch kind {
	case Glucose:
		p.Analyte, p.Oxidase, p.RateConstant = droplet.Glucose, droplet.GlucoseOxidase, 0.065
	case Lactate:
		p.Analyte, p.Oxidase, p.RateConstant = droplet.Lactate, droplet.LactateOxidase, 0.055
	case Glutamate:
		p.Analyte, p.Oxidase, p.RateConstant = droplet.Glutamate, droplet.GlutamateOxidase, 0.040
	case Pyruvate:
		p.Analyte, p.Oxidase, p.RateConstant = droplet.Pyruvate, droplet.PyruvateOxidase, 0.050
	}
	return p
}

// SampleDroplet returns a physiological-fluid droplet carrying the analyte
// at the given concentration (mol/L).
func (p Protocol) SampleDroplet(volumeNL, concentration float64) (droplet.Droplet, error) {
	if concentration < 0 {
		return droplet.Droplet{}, fmt.Errorf("bioassay: negative concentration")
	}
	return droplet.New(volumeNL, droplet.Mixture{p.Analyte: concentration})
}

// ReagentDroplet returns the Trinder reagent droplet: oxidase, peroxidase,
// 4-AAP and TOPS in excess.
func (p Protocol) ReagentDroplet(volumeNL float64) (droplet.Droplet, error) {
	return droplet.New(volumeNL, droplet.Mixture{
		p.Oxidase:          1e-4,
		droplet.Peroxidase: 1e-4,
		droplet.FourAAP:    5e-3,
		droplet.TOPS:       5e-3,
	})
}

// ReactionProduct returns the quinoneimine concentration after the mixed
// droplet has reacted for t seconds, given the diluted analyte
// concentration: C(t) = C_analyte·(1 − e^{−kt}). One mole of analyte yields
// one mole of dye.
func (p Protocol) ReactionProduct(analyteConc, t float64) float64 {
	if t <= 0 || analyteConc <= 0 {
		return 0
	}
	return analyteConc * (1 - math.Exp(-p.RateConstant*t))
}

// Absorbance returns the Beer–Lambert absorbance of the droplet after t
// seconds of reaction: A = ε·l·C(t).
func (p Protocol) Absorbance(analyteConc, t float64) float64 {
	return p.Epsilon * p.PathLength * p.ReactionProduct(analyteConc, t)
}

// ReactionReady reports whether the mixed droplet has the reagents needed
// for color development.
func (p Protocol) ReactionReady(m droplet.Mixture) bool {
	return m.Concentration(p.Analyte) > 0 &&
		m.Concentration(p.Oxidase) > 0 &&
		m.Concentration(droplet.Peroxidase) > 0 &&
		m.Concentration(droplet.FourAAP) > 0 &&
		m.Concentration(droplet.TOPS) > 0
}

// Measure simulates the optical detection of a reacted droplet: it returns
// the absorbance read after DetectTime seconds, or an error when the droplet
// is not a ready, mixed reaction droplet.
func (p Protocol) Measure(d droplet.Droplet) (float64, error) {
	if !d.Mixed() {
		return 0, fmt.Errorf("bioassay: droplet not homogenized (%.0f%%)", d.Mixedness*100)
	}
	if !p.ReactionReady(d.Contents) {
		return 0, fmt.Errorf("bioassay: droplet lacks %s reaction components", p.Kind)
	}
	return p.Absorbance(d.Contents.Concentration(p.Analyte), p.DetectTime), nil
}

// EstimateConcentration inverts the calibration: given the absorbance read
// after DetectTime seconds, it returns the analyte concentration in the
// mixed droplet.
func (p Protocol) EstimateConcentration(absorbance float64) (float64, error) {
	if absorbance < 0 {
		return 0, fmt.Errorf("bioassay: negative absorbance")
	}
	den := p.Epsilon * p.PathLength * (1 - math.Exp(-p.RateConstant*p.DetectTime))
	if den <= 0 {
		return 0, fmt.Errorf("bioassay: degenerate calibration")
	}
	return absorbance / den, nil
}

// OpKind enumerates assay operations.
type OpKind uint8

// Operations of a Trinder assay on a digital microfluidic biochip.
const (
	OpDispenseSample OpKind = iota
	OpDispenseReagent
	OpTransport
	OpMix
	OpDetect
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpDispenseSample:
		return "dispense-sample"
	case OpDispenseReagent:
		return "dispense-reagent"
	case OpTransport:
		return "transport"
	case OpMix:
		return "mix"
	case OpDetect:
		return "detect"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one node of an assay's operation DAG.
type Op struct {
	// ID is unique within the assay set.
	ID int
	// Assay names the owning assay instance.
	Assay string
	// Kind is the operation type.
	Kind OpKind
	// Deps lists operation IDs that must complete first.
	Deps []int
	// Duration is the operation latency in scheduler time units (cycles).
	Duration int
	// Resource names the module class the operation occupies ("" = none):
	// "dispenser", "mixer", "detector".
	Resource string
}

// Operations returns the canonical operation DAG of one assay instance:
// dispense sample and reagent (in parallel), transport both to a mixer, mix,
// transport to a detector, detect. IDs start at firstID; the returned
// nextID is the first free ID after the DAG.
func Operations(assay string, firstID int) (ops []Op, nextID int) {
	id := firstID
	mk := func(kind OpKind, dur int, resource string, deps ...int) Op {
		op := Op{ID: id, Assay: assay, Kind: kind, Deps: deps, Duration: dur, Resource: resource}
		id++
		ops = append(ops, op)
		return op
	}
	ds := mk(OpDispenseSample, 2, "dispenser")
	dr := mk(OpDispenseReagent, 2, "dispenser")
	tr := mk(OpTransport, 6, "", ds.ID, dr.ID)
	mx := mk(OpMix, 16, "mixer", tr.ID)
	td := mk(OpTransport, 4, "", mx.ID)
	mk(OpDetect, 30, "detector", td.ID)
	return ops, id
}

// MultiplexedWorkload returns the operation DAG of the full case study: the
// four metabolite assays on two physiological-fluid samples (eight assay
// instances), as multiplexed on the fabricated chip.
func MultiplexedWorkload() []Op {
	var ops []Op
	id := 0
	for _, sample := range []string{"sample1", "sample2"} {
		for _, kind := range AllKinds() {
			name := fmt.Sprintf("%s/%s", sample, kind)
			var assayOps []Op
			assayOps, id = Operations(name, id)
			ops = append(ops, assayOps...)
		}
	}
	return ops
}

// ValidateDAG checks that dependencies reference earlier ops and IDs are
// unique and dense enough to schedule.
func ValidateDAG(ops []Op) error {
	seen := make(map[int]bool, len(ops))
	for _, op := range ops {
		if seen[op.ID] {
			return fmt.Errorf("bioassay: duplicate op ID %d", op.ID)
		}
		seen[op.ID] = true
	}
	for _, op := range ops {
		for _, d := range op.Deps {
			if !seen[d] {
				return fmt.Errorf("bioassay: op %d depends on unknown op %d", op.ID, d)
			}
			if d == op.ID {
				return fmt.Errorf("bioassay: op %d depends on itself", op.ID)
			}
		}
		if op.Duration <= 0 {
			return fmt.Errorf("bioassay: op %d has non-positive duration", op.ID)
		}
	}
	return nil
}
