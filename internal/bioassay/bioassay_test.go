package bioassay

import (
	"math"
	"strings"
	"testing"

	"dmfb/internal/droplet"
)

func TestProtocolForAllKinds(t *testing.T) {
	seen := map[droplet.Species]bool{}
	for _, k := range AllKinds() {
		p := ProtocolFor(k)
		if p.Kind != k {
			t.Errorf("%v: kind mismatch", k)
		}
		if p.Analyte == "" || p.Oxidase == "" {
			t.Errorf("%v: missing species", k)
		}
		if seen[p.Analyte] {
			t.Errorf("%v: analyte %s reused", k, p.Analyte)
		}
		seen[p.Analyte] = true
		if p.RateConstant <= 0 || p.Epsilon <= 0 || p.PathLength <= 0 || p.DetectTime <= 0 {
			t.Errorf("%v: non-positive constants %+v", k, p)
		}
	}
	if Kind(99).String() == "" || !strings.HasPrefix(Kind(99).String(), "assay(") {
		t.Error("unknown kind should have numeric name")
	}
}

func TestReactionProductKinetics(t *testing.T) {
	p := ProtocolFor(Glucose)
	c0 := 0.005
	if p.ReactionProduct(c0, 0) != 0 {
		t.Error("no product at t=0")
	}
	if p.ReactionProduct(0, 100) != 0 {
		t.Error("no product without analyte")
	}
	// Monotone increasing, asymptote at c0.
	prev := -1.0
	for _, tt := range []float64{1, 5, 10, 30, 60, 300} {
		c := p.ReactionProduct(c0, tt)
		if c <= prev {
			t.Errorf("product not increasing at t=%v", tt)
		}
		if c > c0 {
			t.Errorf("product %v exceeds analyte %v", c, c0)
		}
		prev = c
	}
	if got := p.ReactionProduct(c0, 1e6); math.Abs(got-c0) > 1e-9 {
		t.Errorf("asymptote %v, want %v", got, c0)
	}
	// Half-life: C(t½) = C0/2 at t½ = ln2/k.
	tHalf := math.Ln2 / p.RateConstant
	if got := p.ReactionProduct(c0, tHalf); math.Abs(got-c0/2) > 1e-12 {
		t.Errorf("half-life product %v, want %v", got, c0/2)
	}
}

func TestAbsorbanceBeerLambert(t *testing.T) {
	p := ProtocolFor(Lactate)
	// Absorbance is linear in product concentration.
	a1 := p.Absorbance(0.001, p.DetectTime)
	a2 := p.Absorbance(0.002, p.DetectTime)
	if math.Abs(a2-2*a1) > 1e-12 {
		t.Errorf("absorbance not linear: %v vs %v", a1, a2)
	}
}

func TestMeasureAndEstimateRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		p := ProtocolFor(k)
		sample, err := p.SampleDroplet(1.0, 0.004)
		if err != nil {
			t.Fatal(err)
		}
		reagent, err := p.ReagentDroplet(1.0)
		if err != nil {
			t.Fatal(err)
		}
		mixed := droplet.Merge(sample, reagent)
		mixed.AdvanceMixing(1)
		a, err := p.Measure(mixed)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if a <= 0 {
			t.Fatalf("%v: absorbance %v", k, a)
		}
		est, err := p.EstimateConcentration(a)
		if err != nil {
			t.Fatal(err)
		}
		// The merge diluted 0.004 mol/L 1:1 to 0.002.
		if math.Abs(est-0.002) > 1e-9 {
			t.Errorf("%v: estimated %v, want 0.002", k, est)
		}
	}
}

func TestMeasureRejectsUnmixedAndIncomplete(t *testing.T) {
	p := ProtocolFor(Glucose)
	sample, _ := p.SampleDroplet(1, 0.004)
	reagent, _ := p.ReagentDroplet(1)
	mixed := droplet.Merge(sample, reagent)
	if _, err := p.Measure(mixed); err == nil {
		t.Error("unmixed droplet accepted")
	}
	// Sample alone lacks reagents.
	if _, err := p.Measure(sample); err == nil {
		t.Error("reagent-free droplet accepted")
	}
	// Wrong assay's reagent.
	lactateReagent, _ := ProtocolFor(Lactate).ReagentDroplet(1)
	wrong := droplet.Merge(sample, lactateReagent)
	wrong.AdvanceMixing(1)
	if _, err := p.Measure(wrong); err == nil {
		t.Error("glucose measurement with lactate reagent accepted")
	}
}

func TestSampleDropletValidation(t *testing.T) {
	p := ProtocolFor(Glucose)
	if _, err := p.SampleDroplet(1, -0.1); err == nil {
		t.Error("negative concentration accepted")
	}
	if _, err := p.SampleDroplet(0, 0.1); err == nil {
		t.Error("zero volume accepted")
	}
}

func TestEstimateConcentrationValidation(t *testing.T) {
	p := ProtocolFor(Glucose)
	if _, err := p.EstimateConcentration(-0.5); err == nil {
		t.Error("negative absorbance accepted")
	}
	if _, err := p.EstimateConcentration(0); err != nil {
		t.Error("zero absorbance should estimate zero")
	}
}

func TestOperationsDAGShape(t *testing.T) {
	ops, next := Operations("sample1/glucose", 0)
	if len(ops) != 6 {
		t.Fatalf("%d ops", len(ops))
	}
	if next != 6 {
		t.Errorf("nextID %d", next)
	}
	if err := ValidateDAG(ops); err != nil {
		t.Fatal(err)
	}
	// Kinds in canonical order.
	wantKinds := []OpKind{OpDispenseSample, OpDispenseReagent, OpTransport, OpMix, OpTransport, OpDetect}
	for i, op := range ops {
		if op.Kind != wantKinds[i] {
			t.Errorf("op %d kind %v, want %v", i, op.Kind, wantKinds[i])
		}
		if op.Assay != "sample1/glucose" {
			t.Errorf("op %d assay %q", i, op.Assay)
		}
	}
	// Mix depends on transport which depends on both dispenses.
	if len(ops[2].Deps) != 2 {
		t.Error("transport must wait for both dispenses")
	}
	if len(ops[5].Deps) != 1 || ops[5].Deps[0] != ops[4].ID {
		t.Error("detect must follow the final transport")
	}
}

func TestMultiplexedWorkload(t *testing.T) {
	ops := MultiplexedWorkload()
	if len(ops) != 48 { // 2 samples x 4 assays x 6 ops
		t.Fatalf("%d ops, want 48", len(ops))
	}
	if err := ValidateDAG(ops); err != nil {
		t.Fatal(err)
	}
	assays := map[string]int{}
	for _, op := range ops {
		assays[op.Assay]++
	}
	if len(assays) != 8 {
		t.Errorf("%d assay instances, want 8", len(assays))
	}
	for name, count := range assays {
		if count != 6 {
			t.Errorf("assay %s has %d ops", name, count)
		}
	}
}

func TestValidateDAGRejectsBadShapes(t *testing.T) {
	if err := ValidateDAG([]Op{{ID: 1, Duration: 1}, {ID: 1, Duration: 1}}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if err := ValidateDAG([]Op{{ID: 1, Duration: 1, Deps: []int{2}}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	if err := ValidateDAG([]Op{{ID: 1, Duration: 1, Deps: []int{1}}}); err == nil {
		t.Error("self-dependency accepted")
	}
	if err := ValidateDAG([]Op{{ID: 1, Duration: 0}}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpDispenseSample, OpDispenseReagent, OpTransport, OpMix, OpDetect} {
		if strings.HasPrefix(k.String(), "op(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
