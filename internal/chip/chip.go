// Package chip builds the multiplexed in-vitro diagnostics biochips of the
// paper's case study (§7).
//
// Two chips are modeled. The original fabricated chip (paper Fig. 11) is a
// square-electrode array whose assay footprint — sample and reagent
// reservoirs, transport routes, two mixing regions, detection sites with
// transparent electrodes, droplet storage, and a waste reservoir — uses
// exactly 108 cells and has no spares, so its yield is p^108 (0.3378 at
// p = 0.99). The redesigned chip maps the same workload onto a
// hexagonal-electrode DTMB(2,6) array with exactly 252 primary and 91 spare
// cells (343 total), the counts the paper reports, enabling local
// reconfiguration.
//
// The paper's Fig. 11 floorplan photograph is not machine-readable; the
// reconstruction here preserves the quantitative facts the experiments
// depend on (108 used cells; 252 + 91 redesign; DTMB(2,6) structure) and a
// functionally equivalent topology (sources on the array edges, central
// mixers, detection loops). See DESIGN.md §5.
package chip

import (
	"fmt"
	"sort"

	"dmfb/internal/core"
	"dmfb/internal/hexgrid"
	"dmfb/internal/layout"
	"dmfb/internal/sqgrid"
	"dmfb/internal/yieldsim"
)

// UsedCellCount is the paper's count of cells used by the multiplexed
// bioassays on the original chip.
const UsedCellCount = 108

// RedesignPrimaries and RedesignSpares are the paper's cell counts for the
// DTMB(2,6)-based defect-tolerant redesign.
const (
	RedesignPrimaries = 252
	RedesignSpares    = 91
)

// OriginalChip is the reconstructed first-generation square-electrode chip.
type OriginalChip struct {
	// Placement holds the named assay modules on the square grid.
	Placement sqgrid.Placement
	// Used lists the cells covered by assay modules, sorted row-major.
	Used []sqgrid.Coord
}

// OriginalChipLayout reconstructs the Fig. 11 floorplan: a 16×16 square
// array whose assay modules cover exactly 108 cells. Reservoirs sit on the
// west and east edges (SAMPLE1/2 carry physiological fluids, REAGENT1/2 the
// enzyme reagents), routes feed two stacked 4×3 mixers in the center, and
// detection columns with transparent-electrode detector sites run north and
// south toward a waste reservoir and four storage areas.
func OriginalChipLayout() (*OriginalChip, error) {
	p := sqgrid.Placement{
		Grid: sqgrid.Grid{W: 16, H: 16},
		Modules: []sqgrid.Module{
			{Name: "SAMPLE1", X: 0, Y: 6, W: 2, H: 2},
			{Name: "SAMPLE2", X: 14, Y: 6, W: 2, H: 2},
			{Name: "REAGENT1", X: 0, Y: 9, W: 2, H: 2},
			{Name: "REAGENT2", X: 14, Y: 9, W: 2, H: 2},
			{Name: "ROUTE-WEST-UPPER", X: 2, Y: 7, W: 4, H: 1},
			{Name: "ROUTE-WEST-LOWER", X: 2, Y: 10, W: 4, H: 1},
			{Name: "ROUTE-EAST-UPPER", X: 10, Y: 7, W: 4, H: 1},
			{Name: "ROUTE-EAST-LOWER", X: 10, Y: 10, W: 4, H: 1},
			{Name: "MIXER1", X: 6, Y: 6, W: 4, H: 3},
			{Name: "MIXER2", X: 6, Y: 9, W: 4, H: 3},
			{Name: "DETECT-NORTH", X: 7, Y: 1, W: 1, H: 5},
			{Name: "DETECT-SOUTH", X: 7, Y: 12, W: 1, H: 4},
			{Name: "DETECTOR-GLUCOSE", X: 6, Y: 1, W: 1, H: 1},
			{Name: "DETECTOR-LACTATE", X: 8, Y: 1, W: 1, H: 1},
			{Name: "DETECTOR-GLUTAMATE", X: 6, Y: 14, W: 1, H: 1},
			{Name: "DETECTOR-PYRUVATE", X: 8, Y: 14, W: 1, H: 1},
			{Name: "STORAGE-NW", X: 2, Y: 4, W: 3, H: 3},
			{Name: "STORAGE-NE", X: 11, Y: 4, W: 3, H: 3},
			{Name: "STORAGE-SW", X: 2, Y: 11, W: 3, H: 3},
			{Name: "STORAGE-SE", X: 11, Y: 11, W: 3, H: 3},
			{Name: "WASTE", X: 6, Y: 0, W: 3, H: 1},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("chip: original layout invalid: %w", err)
	}
	used := p.UsedCells()
	if len(used) != UsedCellCount {
		return nil, fmt.Errorf("chip: original layout uses %d cells, want %d", len(used), UsedCellCount)
	}
	return &OriginalChip{Placement: p, Used: used}, nil
}

// OriginalYield returns the yield of the original chip at cell survival
// probability p. Without spares, all 108 assay cells must be fault-free.
func OriginalYield(p float64) float64 {
	return yieldsim.NoRedundancy(p, UsedCellCount)
}

// redesignRegion builds the region of the DTMB(2,6) redesign: a 14×25 axial
// parallelogram (which contains exactly 91 spare sites under the
// even-even rule and 259 primaries) minus 7 deterministic odd-odd boundary
// primary cells, leaving 252 primaries and 343 cells in total.
func redesignRegion() *hexgrid.Region {
	region := hexgrid.Parallelogram(14, 25)
	trimmed := 0
	for r := 1; r < 25 && trimmed < 7; r += 2 {
		region.Remove(hexgrid.Axial{Q: 13, R: r})
		trimmed++
	}
	return region
}

// NewRedesignedChip builds the DTMB(2,6)-based defect-tolerant redesign with
// the paper's cell counts (252 primary + 91 spare) and marks the 108
// assay-used primary cells. The used footprint is the breadth-first ball of
// 108 primaries grown from the array center through primary-to-primary
// adjacency, a connected region mirroring the original chip's footprint.
func NewRedesignedChip() (*core.Biochip, error) {
	arr, err := layout.Build(layout.DTMB26(), redesignRegion())
	if err != nil {
		return nil, err
	}
	if arr.NumPrimary() != RedesignPrimaries || arr.NumSpare() != RedesignSpares {
		return nil, fmt.Errorf("chip: redesign has %d primaries and %d spares, want %d/%d",
			arr.NumPrimary(), arr.NumSpare(), RedesignPrimaries, RedesignSpares)
	}
	chip := core.FromArray(arr)
	used, err := usedFootprint(arr, UsedCellCount)
	if err != nil {
		return nil, err
	}
	if err := chip.MarkUsed(used...); err != nil {
		return nil, err
	}
	return chip, nil
}

// usedFootprint selects n primary cells by deterministic breadth-first
// search from the primary nearest the region centroid, walking only
// primary-to-primary adjacency so the footprint is a connected assay region.
func usedFootprint(arr *layout.Array, n int) ([]layout.CellID, error) {
	primaries := arr.Primaries()
	if len(primaries) < n {
		return nil, fmt.Errorf("chip: need %d used cells, array has %d primaries", n, len(primaries))
	}
	// Centroid of all cells.
	var sq, sr int
	for i := 0; i < arr.NumCells(); i++ {
		pos := arr.Cell(layout.CellID(i)).Pos
		sq += pos.Q
		sr += pos.R
	}
	center := hexgrid.Axial{Q: sq / arr.NumCells(), R: sr / arr.NumCells()}
	start := layout.NoCell
	bestDist := 1 << 30
	for _, id := range primaries {
		if d := arr.Cell(id).Pos.Distance(center); d < bestDist {
			bestDist = d
			start = id
		}
	}
	visited := map[layout.CellID]bool{start: true}
	queue := []layout.CellID{start}
	var used []layout.CellID
	for len(queue) > 0 && len(used) < n {
		cur := queue[0]
		queue = queue[1:]
		used = append(used, cur)
		nbrs := append([]layout.CellID(nil), arr.PrimaryNeighbors(cur)...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nb := range nbrs {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(used) < n {
		return nil, fmt.Errorf("chip: primary subgraph exhausted at %d cells, need %d", len(used), n)
	}
	return used, nil
}
