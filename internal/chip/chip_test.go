package chip

import (
	"math"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/sqgrid"
)

func TestOriginalChipUsesExactly108Cells(t *testing.T) {
	oc, err := OriginalChipLayout()
	if err != nil {
		t.Fatal(err)
	}
	if len(oc.Used) != UsedCellCount {
		t.Fatalf("used cells = %d, want %d", len(oc.Used), UsedCellCount)
	}
	if err := oc.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOriginalChipHasExpectedModules(t *testing.T) {
	oc, err := OriginalChipLayout()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range oc.Placement.Modules {
		names[m.Name] = true
	}
	for _, want := range []string{
		"SAMPLE1", "SAMPLE2", "REAGENT1", "REAGENT2",
		"MIXER1", "MIXER2", "WASTE",
		"DETECTOR-GLUCOSE", "DETECTOR-LACTATE", "DETECTOR-GLUTAMATE", "DETECTOR-PYRUVATE",
	} {
		if !names[want] {
			t.Errorf("missing module %s", want)
		}
	}
}

func TestOriginalChipFootprintConnected(t *testing.T) {
	// Droplets must be able to reach every assay cell: the 108-cell
	// footprint is connected under 4-adjacency.
	oc, err := OriginalChipLayout()
	if err != nil {
		t.Fatal(err)
	}
	inUse := map[sqgrid.Coord]bool{}
	for _, c := range oc.Used {
		inUse[c] = true
	}
	start := oc.Used[0]
	seen := map[sqgrid.Coord]bool{start: true}
	queue := []sqgrid.Coord{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range cur.Neighbors4() {
			if inUse[n] && !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	if len(seen) != len(oc.Used) {
		t.Errorf("footprint has %d reachable of %d cells", len(seen), len(oc.Used))
	}
}

func TestOriginalYieldPaperNumber(t *testing.T) {
	// Paper §7: yield 0.3378 at p = 0.99 for the original chip.
	if got := OriginalYield(0.99); math.Abs(got-0.3378) > 5e-4 {
		t.Errorf("OriginalYield(0.99) = %.4f, want 0.3378", got)
	}
	if OriginalYield(1) != 1 {
		t.Error("perfect cells must give yield 1")
	}
}

func TestRedesignedChipPaperCounts(t *testing.T) {
	// Paper §7: "There are 252 primary cells (108 of them used in assays)
	// and 91 spare cells in this defect-tolerant biochip."
	chip, err := NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	arr := chip.Array()
	if arr.NumPrimary() != 252 {
		t.Errorf("primaries = %d, want 252", arr.NumPrimary())
	}
	if arr.NumSpare() != 91 {
		t.Errorf("spares = %d, want 91", arr.NumSpare())
	}
	if arr.NumCells() != 343 {
		t.Errorf("total cells = %d, want 343", arr.NumCells())
	}
	if chip.NumUsed() != 108 {
		t.Errorf("used cells = %d, want 108", chip.NumUsed())
	}
	if arr.Design().Name != "DTMB(2,6)" {
		t.Errorf("design = %s", arr.Design().Name)
	}
	if err := arr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRedesignRedundancyRatioNearOneThird(t *testing.T) {
	chip, err := NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	rr := chip.Array().RedundancyRatio()
	// 91/252 = 0.3611; the asymptotic DTMB(2,6) ratio is 1/3. Boundary
	// effects keep the finite ratio slightly above.
	if math.Abs(rr-91.0/252.0) > 1e-9 {
		t.Errorf("RR = %v", rr)
	}
}

func TestRedesignUsedFootprintConnected(t *testing.T) {
	chip, err := NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	arr := chip.Array()
	used := chip.UsedCells()
	inUse := map[layout.CellID]bool{}
	for _, id := range used {
		inUse[id] = true
		if arr.Cell(id).Role != layout.Primary {
			t.Fatalf("used cell %d is not primary", id)
		}
	}
	seen := map[layout.CellID]bool{used[0]: true}
	queue := []layout.CellID{used[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range arr.PrimaryNeighbors(cur) {
			if inUse[nb] && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != len(used) {
		t.Errorf("used footprint: %d reachable of %d", len(seen), len(used))
	}
}

func TestRedesignDeterministic(t *testing.T) {
	a, err := NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	ua, ub := a.UsedCells(), b.UsedCells()
	if len(ua) != len(ub) {
		t.Fatal("used sets differ in size")
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("used sets differ at %d: %d vs %d", i, ua[i], ub[i])
		}
	}
}

func TestRedesignSurvivesModerateFaults(t *testing.T) {
	// Paper Fig. 12(b): an example with 10 faulty cells reconfigures
	// successfully. With a fixed seed this is deterministic.
	chip, err := NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.InjectFixed(2005, 10, defects.AllCells); err != nil {
		t.Fatal(err)
	}
	plan, err := chip.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OK {
		t.Errorf("10-fault reconfiguration failed: %d unmatched", len(plan.Unmatched))
	}
}

func BenchmarkNewRedesignedChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewRedesignedChip(); err != nil {
			b.Fatal(err)
		}
	}
}
