// Package controller compiles droplet motion plans into electrode
// activation sequences — the paper's §3: "the configurations of the
// microfluidic array are programmed into a microcontroller that controls
// the voltages of electrodes in the array".
//
// A Frame is one clock cycle's electrode state: the set of cells driven at
// the control voltage while everything else is grounded. Moving a droplet
// means activating the destination electrode and deactivating the one under
// the droplet; holding means keeping the droplet's own electrode energized.
// The compiler also reports driver statistics (activations, peak
// simultaneous electrodes, switching energy ∝ C·V² per activation) used to
// budget the chip's pin drivers.
package controller

import (
	"fmt"

	"dmfb/internal/electrowetting"
	"dmfb/internal/layout"
	"dmfb/internal/router"
)

// Frame is the electrode state of one cycle.
type Frame struct {
	// Cycle is the frame index, starting at 0.
	Cycle int
	// Active lists the electrodes driven at Voltage this cycle, ascending.
	Active []layout.CellID
	// Voltage is the drive voltage (V).
	Voltage float64
}

// Program is a compiled activation sequence.
type Program struct {
	Frames  []Frame
	Voltage float64
}

// Stats summarizes driver load.
type Stats struct {
	// Frames is the program length in cycles.
	Frames int
	// Activations counts electrode-cycles driven.
	Activations int
	// PeakSimultaneous is the maximum electrodes driven in one cycle,
	// bounding the number of simultaneously switched driver pins.
	PeakSimultaneous int
	// SwitchingEnergy is the total C·V²·A energy of all activations in
	// joules, with C the per-area insulator capacitance and A the electrode
	// area from the electrowetting parameters.
	SwitchingEnergy float64
}

// Stats computes driver statistics under the given device parameters.
func (p Program) Stats(params electrowetting.Params) Stats {
	st := Stats{Frames: len(p.Frames)}
	capacitance := params.InsulatorPermittivity * 8.8541878128e-12 / params.InsulatorThickness
	area := params.ElectrodePitch * params.ElectrodePitch
	for _, f := range p.Frames {
		st.Activations += len(f.Active)
		if len(f.Active) > st.PeakSimultaneous {
			st.PeakSimultaneous = len(f.Active)
		}
	}
	st.SwitchingEnergy = capacitance * area * p.Voltage * p.Voltage * float64(st.Activations)
	return st
}

// CompilePath compiles a single-droplet path (consecutive cells adjacent,
// starting at the droplet's current cell) into frames: each step activates
// the next cell; the final frame holds the droplet at its destination.
func CompilePath(arr *layout.Array, path []layout.CellID, voltage float64) (Program, error) {
	if len(path) == 0 {
		return Program{}, fmt.Errorf("controller: empty path")
	}
	if voltage <= 0 {
		return Program{}, fmt.Errorf("controller: non-positive voltage")
	}
	for i, id := range path {
		if id < 0 || int(id) >= arr.NumCells() {
			return Program{}, fmt.Errorf("controller: path cell %d out of range", id)
		}
		if i == 0 || path[i-1] == id {
			continue
		}
		adjacent := false
		for _, nb := range arr.Neighbors(path[i-1]) {
			if nb == id {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return Program{}, fmt.Errorf("controller: path jumps %d -> %d", path[i-1], id)
		}
	}
	prog := Program{Voltage: voltage}
	for i := 1; i < len(path); i++ {
		prog.Frames = append(prog.Frames, Frame{
			Cycle:   i - 1,
			Active:  []layout.CellID{path[i]},
			Voltage: voltage,
		})
	}
	// Terminal hold frame keeps the droplet parked.
	prog.Frames = append(prog.Frames, Frame{
		Cycle:   len(path) - 1,
		Active:  []layout.CellID{path[len(path)-1]},
		Voltage: voltage,
	})
	return prog, nil
}

// CompileSchedule compiles a multi-droplet router schedule into frames: at
// each cycle the electrodes of every droplet's next cell are driven (moving
// droplets get their destination, holding droplets their own cell).
func CompileSchedule(arr *layout.Array, s router.Schedule, voltage float64) (Program, error) {
	if len(s.Steps) == 0 {
		return Program{}, fmt.Errorf("controller: empty schedule")
	}
	if voltage <= 0 {
		return Program{}, fmt.Errorf("controller: non-positive voltage")
	}
	prog := Program{Voltage: voltage}
	for t := 1; t < len(s.Steps); t++ {
		frame := Frame{Cycle: t - 1, Voltage: voltage}
		seen := map[layout.CellID]bool{}
		for i := range s.Steps[t] {
			target := s.Steps[t][i]
			if target < 0 || int(target) >= arr.NumCells() {
				return Program{}, fmt.Errorf("controller: cell %d out of range at t=%d", target, t)
			}
			if seen[target] {
				return Program{}, fmt.Errorf("controller: electrode %d double-driven at t=%d", target, t)
			}
			seen[target] = true
			frame.Active = append(frame.Active, target)
		}
		sortCells(frame.Active)
		prog.Frames = append(prog.Frames, frame)
	}
	return prog, nil
}

func sortCells(cells []layout.CellID) {
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && cells[j] < cells[j-1]; j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
}

// Validate checks a program against device physics and array structure:
// the drive voltage must exceed the actuation threshold, and no frame may
// drive two adjacent electrodes (which would stretch a droplet between
// cells — the electrode-short failure mode induced deliberately).
func (p Program) Validate(arr *layout.Array, params electrowetting.Params) error {
	if p.Voltage <= params.ThresholdVoltage() {
		return fmt.Errorf("controller: drive voltage %.1f V below actuation threshold %.1f V",
			p.Voltage, params.ThresholdVoltage())
	}
	for _, f := range p.Frames {
		on := map[layout.CellID]bool{}
		for _, id := range f.Active {
			on[id] = true
		}
		for _, id := range f.Active {
			for _, nb := range arr.Neighbors(id) {
				if on[nb] {
					return fmt.Errorf("controller: frame %d drives adjacent electrodes %d and %d",
						f.Cycle, id, nb)
				}
			}
		}
	}
	return nil
}

// Duration returns the program's wall-clock duration in seconds at the
// given device parameters (cycles × per-cell transport time).
func (p Program) Duration(params electrowetting.Params) (float64, error) {
	step, err := params.TransportTime(p.Voltage)
	if err != nil {
		return 0, err
	}
	return step * float64(len(p.Frames)), nil
}
