package controller

import (
	"testing"

	"dmfb/internal/electrowetting"
	"dmfb/internal/layout"
	"dmfb/internal/router"
)

func buildArray(t testing.TB) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func straightPath(t *testing.T, arr *layout.Array, n int) []layout.CellID {
	t.Helper()
	path, err := router.ShortestPath(arr, 0, layout.CellID(n), router.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompilePathFrames(t *testing.T) {
	arr := buildArray(t)
	path := straightPath(t, arr, 40)
	prog, err := CompilePath(arr, path, 60)
	if err != nil {
		t.Fatal(err)
	}
	// One frame per move plus a terminal hold.
	if len(prog.Frames) != len(path) {
		t.Errorf("%d frames for %d-cell path", len(prog.Frames), len(path))
	}
	for i, f := range prog.Frames {
		if f.Cycle != i {
			t.Errorf("frame %d has cycle %d", i, f.Cycle)
		}
		if len(f.Active) != 1 {
			t.Errorf("single-droplet frame drives %d electrodes", len(f.Active))
		}
	}
	// Frame k drives path[k+1] (the move target); last frame holds the end.
	for i := 0; i < len(path)-1; i++ {
		if prog.Frames[i].Active[0] != path[i+1] {
			t.Errorf("frame %d drives %d, want %d", i, prog.Frames[i].Active[0], path[i+1])
		}
	}
	if last := prog.Frames[len(prog.Frames)-1].Active[0]; last != path[len(path)-1] {
		t.Errorf("terminal frame drives %d", last)
	}
}

func TestCompilePathValidation(t *testing.T) {
	arr := buildArray(t)
	if _, err := CompilePath(arr, nil, 60); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := CompilePath(arr, []layout.CellID{0, layout.CellID(arr.NumCells() - 1)}, 60); err == nil {
		t.Error("jumping path accepted")
	}
	if _, err := CompilePath(arr, []layout.CellID{0}, 0); err == nil {
		t.Error("zero voltage accepted")
	}
	if _, err := CompilePath(arr, []layout.CellID{9999}, 60); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestProgramValidateThreshold(t *testing.T) {
	arr := buildArray(t)
	params := electrowetting.Default()
	path := straightPath(t, arr, 20)
	prog, err := CompilePath(arr, path, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(arr, params); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	weak, err := CompilePath(arr, path, params.ThresholdVoltage()*0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := weak.Validate(arr, params); err == nil {
		t.Error("sub-threshold program accepted")
	}
}

func TestProgramValidateAdjacentElectrodes(t *testing.T) {
	arr := buildArray(t)
	params := electrowetting.Default()
	nb := arr.Neighbors(50)[0]
	prog := Program{
		Voltage: 60,
		Frames:  []Frame{{Cycle: 0, Active: []layout.CellID{50, nb}, Voltage: 60}},
	}
	if err := prog.Validate(arr, params); err == nil {
		t.Error("adjacent driven electrodes accepted")
	}
}

func TestCompileScheduleMultiDroplet(t *testing.T) {
	arr := buildArray(t)
	var src1, dst1, src2, dst2 layout.CellID = -1, -1, -1, -1
	for i := 0; i < arr.NumCells(); i++ {
		pos := arr.Cell(layout.CellID(i)).Pos
		switch {
		case pos.Q == 0 && pos.R == 0:
			src1 = layout.CellID(i)
		case pos.Q == 11 && pos.R == 0:
			dst1 = layout.CellID(i)
		case pos.Q == 0 && pos.R == 11:
			src2 = layout.CellID(i)
		case pos.Q == 11 && pos.R == 11:
			dst2 = layout.CellID(i)
		}
	}
	sched, err := router.MultiRoute(arr, []router.Request{
		{Name: "a", Src: src1, Dst: dst1},
		{Name: "b", Src: src2, Dst: dst2},
	}, router.Constraints{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileSchedule(arr, sched, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Frames) != sched.Makespan() {
		t.Errorf("%d frames for makespan %d", len(prog.Frames), sched.Makespan())
	}
	if err := prog.Validate(arr, electrowetting.Default()); err != nil {
		t.Errorf("compiled schedule invalid: %v", err)
	}
	st := prog.Stats(electrowetting.Default())
	if st.PeakSimultaneous != 2 {
		t.Errorf("peak simultaneous %d, want 2", st.PeakSimultaneous)
	}
	if st.Activations != 2*len(prog.Frames) {
		t.Errorf("activations %d", st.Activations)
	}
	if st.SwitchingEnergy <= 0 {
		t.Error("non-positive switching energy")
	}
}

func TestCompileScheduleValidation(t *testing.T) {
	arr := buildArray(t)
	if _, err := CompileSchedule(arr, router.Schedule{}, 60); err == nil {
		t.Error("empty schedule accepted")
	}
	bad := router.Schedule{
		Requests: []router.Request{{Name: "a"}, {Name: "b"}},
		Steps:    [][]layout.CellID{{0, 5}, {1, 1}}, // both driven to cell 1
	}
	if _, err := CompileSchedule(arr, bad, 60); err == nil {
		t.Error("double-driven electrode accepted")
	}
}

func TestProgramDuration(t *testing.T) {
	arr := buildArray(t)
	params := electrowetting.Default()
	path := straightPath(t, arr, 30)
	prog, err := CompilePath(arr, path, 90)
	if err != nil {
		t.Fatal(err)
	}
	d, err := prog.Duration(params)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0075 * float64(len(prog.Frames)) // 7.5 ms per cell at 90 V
	if d < want*0.99 || d > want*1.01 {
		t.Errorf("duration %v, want ≈ %v", d, want)
	}
	weak, _ := CompilePath(arr, path, 5)
	if _, err := weak.Duration(params); err == nil {
		t.Error("sub-threshold duration accepted")
	}
}

func TestStatsEnergyScalesWithVoltageSquared(t *testing.T) {
	arr := buildArray(t)
	params := electrowetting.Default()
	path := straightPath(t, arr, 25)
	p60, err := CompilePath(arr, path, 60)
	if err != nil {
		t.Fatal(err)
	}
	p90, err := CompilePath(arr, path, 90)
	if err != nil {
		t.Fatal(err)
	}
	e60 := p60.Stats(params).SwitchingEnergy
	e90 := p90.Stats(params).SwitchingEnergy
	ratio := e90 / e60
	want := (90.0 * 90.0) / (60.0 * 60.0)
	if ratio < want*0.999 || ratio > want*1.001 {
		t.Errorf("energy ratio %v, want %v", ratio, want)
	}
}
