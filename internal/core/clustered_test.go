package core

import (
	"reflect"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

func TestBiochipInjectClustered(t *testing.T) {
	chip, err := New(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	params := defects.ClusterParams{MeanDefects: 12, ClusterSize: 4}
	clusters, err := chip.InjectClustered(77, params)
	if err != nil {
		t.Fatal(err)
	}
	if clusters < 0 {
		t.Fatalf("negative cluster count %d", clusters)
	}
	if clusters > 0 && chip.Faults().Count() == 0 {
		t.Error("clusters reported but no faulty cells")
	}
	faulty := chip.Faults().FaultyCells()

	// Same seed reproduces the same fault pattern.
	chip2, err := New(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	clusters2, err := chip2.InjectClustered(77, params)
	if err != nil {
		t.Fatal(err)
	}
	if clusters != clusters2 || !reflect.DeepEqual(faulty, chip2.Faults().FaultyCells()) {
		t.Error("clustered injection not deterministic per seed")
	}

	// Injection invalidates any previous reconfiguration plan.
	if _, ok := chip.Plan(); ok {
		t.Error("plan still valid after injection")
	}
	if _, err := chip.Reconfigure(); err != nil {
		t.Fatal(err)
	}

	// Invalid parameters are rejected.
	if _, err := chip.InjectClustered(1, defects.ClusterParams{MeanDefects: -1, ClusterSize: 2}); err == nil {
		t.Error("negative mean defect count accepted")
	}
}
