// Package core ties the paper's primary contribution together: a
// defect-tolerant digital microfluidic biochip with interstitial redundancy
// whose faulty primary cells are repaired by local reconfiguration, plus the
// yield and effective-yield analysis used to choose a redundancy level.
//
// The type Biochip carries the full defect-tolerance lifecycle:
//
//	chip, _ := core.New(layout.DTMB26(), 100)     // design-time: choose DTMB(s,p)
//	chip.InjectBernoulli(seed, 0.95)              // manufacturing: cells fail
//	plan, _ := chip.Reconfigure()                 // test & repair: local reconfiguration
//	if plan.OK { /* chip shippable */ }
//
// and the design-space exploration entry points (Yield, EffectiveYield,
// RecommendDesign) reproduce the decision procedure of paper §6: high
// redundancy for low cell survival probability, low redundancy when cells
// rarely fail.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/telemetry"
	"dmfb/internal/yieldsim"
)

// Biochip is a defect-tolerant microfluidic array with its current fault
// state and reconfiguration plan. It is not safe for concurrent mutation.
type Biochip struct {
	arr    *layout.Array
	faults *defects.FaultSet
	used   []bool
	plan   reconfig.Plan
	hasRun bool
}

// New builds a biochip using the given DTMB design with exactly nPrimary
// primary cells.
func New(design layout.Design, nPrimary int) (*Biochip, error) {
	arr, err := layout.BuildWithPrimaryTarget(design, nPrimary)
	if err != nil {
		return nil, err
	}
	return FromArray(arr), nil
}

// FromArray wraps an existing array (e.g. the case-study chip) as a Biochip.
func FromArray(arr *layout.Array) *Biochip {
	return &Biochip{
		arr:    arr,
		faults: defects.NewFaultSet(arr.NumCells()),
		used:   make([]bool, arr.NumCells()),
	}
}

// Array exposes the underlying defect-tolerant array.
func (b *Biochip) Array() *layout.Array { return b.arr }

// Faults exposes the current fault set.
func (b *Biochip) Faults() *defects.FaultSet { return b.faults }

// Plan returns the most recent reconfiguration plan; ok is false if
// Reconfigure has not run since the last fault injection.
func (b *Biochip) Plan() (reconfig.Plan, bool) { return b.plan, b.hasRun }

// MarkUsed flags primary cells as used by the running bioassays. Used cells
// are the repair targets under ScopeUsed reconfiguration and define the
// no-redundancy baseline yield.
func (b *Biochip) MarkUsed(ids ...layout.CellID) error {
	for _, id := range ids {
		if id < 0 || int(id) >= b.arr.NumCells() {
			return fmt.Errorf("core: cell %d out of range", id)
		}
		if b.arr.Cell(id).Role != layout.Primary {
			return fmt.Errorf("core: cell %d is a spare; only primaries can be assay cells", id)
		}
		b.used[id] = true
	}
	return nil
}

// UsedCells returns the IDs of cells marked used, ascending.
func (b *Biochip) UsedCells() []layout.CellID {
	var out []layout.CellID
	for id, u := range b.used {
		if u {
			out = append(out, layout.CellID(id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumUsed returns the number of used cells.
func (b *Biochip) NumUsed() int {
	n := 0
	for _, u := range b.used {
		if u {
			n++
		}
	}
	return n
}

// resetPlan invalidates the cached reconfiguration after fault changes.
func (b *Biochip) resetPlan() {
	b.plan = reconfig.Plan{}
	b.hasRun = false
}

// InjectBernoulli fails every cell independently with probability 1−p.
func (b *Biochip) InjectBernoulli(seed int64, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("core: survival probability %v outside [0,1]", p)
	}
	in := defects.NewInjector(seed)
	b.faults = in.Bernoulli(b.arr, p, b.faults)
	b.resetPlan()
	return nil
}

// InjectFixed fails exactly m distinct cells drawn uniformly from the domain.
func (b *Biochip) InjectFixed(seed int64, m int, domain defects.Domain) error {
	in := defects.NewInjector(seed)
	fs, err := in.FixedCount(b.arr, m, domain, b.faults)
	if err != nil {
		return err
	}
	b.faults = fs
	b.resetPlan()
	return nil
}

// InjectClustered seeds spatially correlated defect clusters (center-seeded,
// geometric radius decay) with the given expected defect count and cluster
// size, returning the number of clusters that struck the array.
func (b *Biochip) InjectClustered(seed int64, params defects.ClusterParams) (int, error) {
	in := defects.NewInjector(seed)
	fs, clusters, err := in.Clustered(b.arr, params, b.faults)
	if err != nil {
		return 0, err
	}
	b.faults = fs
	b.resetPlan()
	return clusters, nil
}

// InjectCatalog draws a realistic mixed catastrophic/parametric defect
// catalog with expected size lambda and returns the recorded defects plus the
// sub-tolerance parametric deviations that did not disable their cell.
func (b *Biochip) InjectCatalog(seed int64, params defects.CatalogParams) ([]defects.Defect, []defects.Defect, error) {
	in := defects.NewInjector(seed)
	fs, sub := in.Catalog(b.arr, params)
	b.faults = fs
	b.resetPlan()
	return fs.Defects(), sub, nil
}

// SetFaulty marks specific cells faulty (e.g. from a test session's
// diagnosis instead of simulation).
func (b *Biochip) SetFaulty(ids ...layout.CellID) error {
	for _, id := range ids {
		if id < 0 || int(id) >= b.arr.NumCells() {
			return fmt.Errorf("core: cell %d out of range", id)
		}
		b.faults.MarkFaulty(id)
	}
	b.resetPlan()
	return nil
}

// ClearFaults resets the chip to fault-free.
func (b *Biochip) ClearFaults() {
	b.faults.Clear()
	b.resetPlan()
}

// Scope selects the reconfiguration repair criterion.
type Scope = reconfig.Scope

// Scope values re-exported for callers of Reconfigure.
const (
	ScopeAll  = reconfig.RepairAll
	ScopeUsed = reconfig.RepairUsed
)

// Reconfigure runs local reconfiguration over the current fault set with
// RepairAll scope: every faulty primary must be replaced by an adjacent
// fault-free spare.
func (b *Biochip) Reconfigure() (reconfig.Plan, error) {
	return b.ReconfigureScoped(ScopeAll)
}

// ReconfigureScoped runs local reconfiguration with the given scope;
// ScopeUsed repairs only the faulty cells marked used.
func (b *Biochip) ReconfigureScoped(scope Scope) (reconfig.Plan, error) {
	opts := reconfig.Options{Scope: scope}
	if scope == ScopeUsed {
		opts.Used = b.used
	}
	plan, err := reconfig.LocalReconfigure(b.arr, b.faults, opts)
	if err != nil {
		return reconfig.Plan{}, err
	}
	if err := reconfig.Verify(b.arr, b.faults, plan); err != nil {
		return reconfig.Plan{}, fmt.Errorf("core: reconfiguration produced invalid plan: %w", err)
	}
	b.plan = plan
	b.hasRun = true
	return plan, nil
}

// Status summarizes the chip state for reports and tools.
type Status struct {
	Design          string
	NumPrimary      int
	NumSpare        int
	NumUsed         int
	RedundancyRatio float64
	FaultyPrimaries int
	FaultySpares    int
	Reconfigured    bool
	ReconfigOK      bool
	Repairs         int
}

// Status captures the current chip state.
func (b *Biochip) Status() Status {
	st := Status{
		Design:          b.arr.Design().Name,
		NumPrimary:      b.arr.NumPrimary(),
		NumSpare:        b.arr.NumSpare(),
		NumUsed:         b.NumUsed(),
		RedundancyRatio: b.arr.RedundancyRatio(),
		FaultyPrimaries: len(b.faults.FaultyPrimaries(b.arr)),
		FaultySpares:    len(b.faults.FaultySpares(b.arr)),
		Reconfigured:    b.hasRun,
	}
	if b.hasRun {
		st.ReconfigOK = b.plan.OK
		st.Repairs = len(b.plan.Assignments)
	}
	return st
}

// String renders the status in one line.
func (s Status) String() string {
	state := "not reconfigured"
	if s.Reconfigured {
		if s.ReconfigOK {
			state = fmt.Sprintf("reconfigured OK (%d repairs)", s.Repairs)
		} else {
			state = "reconfiguration FAILED"
		}
	}
	return fmt.Sprintf("%s: %d primary (%d used) + %d spare, RR %.3f; faults %dP/%dS; %s",
		s.Design, s.NumPrimary, s.NumUsed, s.NumSpare, s.RedundancyRatio,
		s.FaultyPrimaries, s.FaultySpares, state)
}

// YieldAnalysis bundles the yield figures for one design at one p.
type YieldAnalysis struct {
	Design   string
	P        float64
	NPrimary int
	NTotal   int
	// Runs and Successes are the realized Monte-Carlo counts behind Yield.
	// Under precision-targeted sampling Runs is where the stopping rule
	// fired, which may be far below the requested budget.
	Runs           int
	Successes      int
	Yield          float64
	CILo, CIHi     float64
	EffectiveYield float64
	NoRedundancy   float64
}

// SimParams configures the Monte-Carlo simulation behind a yield analysis.
// The zero value means the paper's defaults: 10000 runs, seed 0, GOMAXPROCS
// workers, and yieldsim.DefaultChunkSize chunks. Because chunked seeding
// makes estimates independent of Workers, two analyses with equal (Runs,
// Seed, ChunkSize) agree exactly regardless of parallelism.
type SimParams struct {
	Runs      int
	Seed      int64
	Workers   int
	ChunkSize int
	// Epsilon, when positive, makes the simulation precision-targeted: it
	// stops at the first deterministic chunk boundary where the Wilson 95%
	// half-width reaches Epsilon, with Runs acting as the trial budget. The
	// realized count is reported in YieldAnalysis.Runs. Zero keeps the
	// classic fixed-run behavior bit-for-bit.
	Epsilon float64
	// Metrics, when non-nil, is handed to the built simulator so kernel
	// trial/chunk observations land in the caller's telemetry registry.
	Metrics *telemetry.KernelMetrics
	// Logger, when non-nil, gives the kernel a structured logger for
	// debug-level chunk span events.
	Logger *slog.Logger
}

// MonteCarlo builds the simulator for these parameters. It is exported so
// that subsystems layered above core (sweep evaluation, the service engine)
// construct their kernels through one code path and inherit the same
// defaults and determinism contract.
func (sp SimParams) MonteCarlo() *yieldsim.MonteCarlo {
	mc := yieldsim.NewMonteCarlo(sp.Seed)
	if sp.Runs > 0 {
		mc.Runs = sp.Runs
	}
	mc.Workers = sp.Workers
	mc.ChunkSize = sp.ChunkSize
	mc.Epsilon = sp.Epsilon
	mc.Metrics = sp.Metrics
	mc.Logger = sp.Logger
	return mc
}

// AnalyzeYield estimates yield and effective yield of the chip's design at
// survival probability p by Monte-Carlo with the given run count and seed,
// alongside the no-redundancy baseline for the same primary count.
func (b *Biochip) AnalyzeYield(p float64, runs int, seed int64) (YieldAnalysis, error) {
	return b.AnalyzeYieldContext(context.Background(), p, SimParams{Runs: runs, Seed: seed})
}

// AnalyzeYieldContext is AnalyzeYield with cancellation and full simulation
// parameters.
func (b *Biochip) AnalyzeYieldContext(ctx context.Context, p float64, sp SimParams) (YieldAnalysis, error) {
	mc := sp.MonteCarlo()
	res, err := mc.YieldContext(ctx, b.arr, p)
	if err != nil {
		return YieldAnalysis{}, err
	}
	return YieldAnalysis{
		Design:         b.arr.Design().Name,
		P:              p,
		NPrimary:       b.arr.NumPrimary(),
		NTotal:         b.arr.NumCells(),
		Runs:           res.Runs,
		Successes:      res.Successes,
		Yield:          res.Yield,
		CILo:           res.CILo,
		CIHi:           res.CIHi,
		EffectiveYield: yieldsim.EffectiveYieldCells(res.Yield, b.arr.NumPrimary(), b.arr.NumCells()),
		NoRedundancy:   yieldsim.NoRedundancy(p, b.arr.NumPrimary()),
	}, nil
}

// Recommendation is the outcome of a design-space exploration.
type Recommendation struct {
	Best     layout.Design
	Analyses []YieldAnalysis
}

// RecommendDesign evaluates all canonical DTMB designs at survival
// probability p for nPrimary primaries and picks the one with the highest
// effective yield — the paper's Fig. 10 decision procedure (high redundancy
// pays off at low p; low redundancy wins at high p).
func RecommendDesign(p float64, nPrimary, runs int, seed int64) (Recommendation, error) {
	return RecommendDesignContext(context.Background(), p, nPrimary, SimParams{Runs: runs, Seed: seed})
}

// RecommendDesignContext is RecommendDesign with cancellation and full
// simulation parameters.
func RecommendDesignContext(ctx context.Context, p float64, nPrimary int, sp SimParams) (Recommendation, error) {
	var rec Recommendation
	bestEY := -1.0
	for _, d := range layout.AllDesigns() {
		chip, err := New(d, nPrimary)
		if err != nil {
			return Recommendation{}, err
		}
		ya, err := chip.AnalyzeYieldContext(ctx, p, sp)
		if err != nil {
			return Recommendation{}, err
		}
		rec.Analyses = append(rec.Analyses, ya)
		if ya.EffectiveYield > bestEY {
			bestEY = ya.EffectiveYield
			rec.Best = d
		}
	}
	return rec, nil
}

// TargetYield returns the cheapest design (lowest redundancy ratio, hence
// lowest area overhead) whose Monte-Carlo yield at survival probability p
// meets the target — the paper's intent that "biochips with different
// levels of redundancy can be designed to target given yield levels and
// manufacturing processes". ok is false when even DTMB(4,4) misses the
// target; the returned analyses cover every design evaluated.
func TargetYield(p, target float64, nPrimary, runs int, seed int64) (best layout.Design, ok bool, analyses []YieldAnalysis, err error) {
	if target < 0 || target > 1 {
		return layout.Design{}, false, nil, fmt.Errorf("core: yield target %v outside [0,1]", target)
	}
	// AllDesigns is ordered by ascending RR (Table 1), so the first design
	// meeting the target is the cheapest.
	for _, d := range layout.AllDesigns() {
		chip, err := New(d, nPrimary)
		if err != nil {
			return layout.Design{}, false, analyses, err
		}
		ya, err := chip.AnalyzeYield(p, runs, seed)
		if err != nil {
			return layout.Design{}, false, analyses, err
		}
		analyses = append(analyses, ya)
		if !ok && ya.Yield >= target {
			best = d
			ok = true
		}
	}
	return best, ok, analyses, nil
}
