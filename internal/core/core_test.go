package core

import (
	"math"
	"strings"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

func newChip(t testing.TB, d layout.Design, n int) *Biochip {
	t.Helper()
	chip, err := New(d, n)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestNewBuildsRequestedSize(t *testing.T) {
	chip := newChip(t, layout.DTMB26(), 100)
	if chip.Array().NumPrimary() != 100 {
		t.Errorf("NumPrimary = %d", chip.Array().NumPrimary())
	}
	st := chip.Status()
	if st.Design != "DTMB(2,6)" || st.FaultyPrimaries != 0 || st.Reconfigured {
		t.Errorf("fresh status %+v", st)
	}
}

func TestLifecycleInjectReconfigure(t *testing.T) {
	chip := newChip(t, layout.DTMB26(), 100)
	if err := chip.InjectBernoulli(42, 0.97); err != nil {
		t.Fatal(err)
	}
	if _, ok := chip.Plan(); ok {
		t.Error("plan should be invalidated by injection")
	}
	plan, err := chip.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := chip.Plan()
	if !ok || got.OK != plan.OK {
		t.Error("plan not cached")
	}
	st := chip.Status()
	if !st.Reconfigured || st.ReconfigOK != plan.OK {
		t.Errorf("status %+v inconsistent with plan %+v", st, plan.OK)
	}
	if plan.OK && st.Repairs != st.FaultyPrimaries {
		t.Errorf("OK plan repaired %d of %d faulty primaries", st.Repairs, st.FaultyPrimaries)
	}
}

func TestInjectValidation(t *testing.T) {
	chip := newChip(t, layout.DTMB26(), 30)
	if err := chip.InjectBernoulli(1, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
	if err := chip.InjectFixed(1, -3, defects.AllCells); err == nil {
		t.Error("negative m accepted")
	}
	if err := chip.InjectFixed(1, 7, defects.AllCells); err != nil {
		t.Errorf("valid injection failed: %v", err)
	}
	if chip.Faults().Count() != 7 {
		t.Errorf("fault count %d, want 7", chip.Faults().Count())
	}
}

func TestSetFaultyAndClear(t *testing.T) {
	chip := newChip(t, layout.DTMB16(), 60)
	prim := chip.Array().Primaries()[0]
	if err := chip.SetFaulty(prim); err != nil {
		t.Fatal(err)
	}
	if !chip.Faults().IsFaulty(prim) {
		t.Error("SetFaulty did not mark the cell")
	}
	if err := chip.SetFaulty(layout.CellID(99999)); err == nil {
		t.Error("out-of-range cell accepted")
	}
	chip.ClearFaults()
	if chip.Faults().Count() != 0 {
		t.Error("ClearFaults incomplete")
	}
}

func TestMarkUsedRules(t *testing.T) {
	chip := newChip(t, layout.DTMB26(), 60)
	prim := chip.Array().Primaries()[:5]
	if err := chip.MarkUsed(prim...); err != nil {
		t.Fatal(err)
	}
	if chip.NumUsed() != 5 {
		t.Errorf("NumUsed = %d", chip.NumUsed())
	}
	used := chip.UsedCells()
	if len(used) != 5 || used[0] != prim[0] {
		t.Errorf("UsedCells = %v", used)
	}
	spare := chip.Array().Spares()[0]
	if err := chip.MarkUsed(spare); err == nil {
		t.Error("marking a spare as used must fail")
	}
	if err := chip.MarkUsed(layout.CellID(-1)); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestScopedReconfiguration(t *testing.T) {
	chip := newChip(t, layout.DTMB16(), 60)
	// Find an interior primary and kill it together with its only spare.
	var prim layout.CellID = -1
	for _, id := range chip.Array().Primaries() {
		if chip.Array().IsInterior(id) {
			prim = id
			break
		}
	}
	spare := chip.Array().SpareNeighbors(prim)[0]
	if err := chip.SetFaulty(prim, spare); err != nil {
		t.Fatal(err)
	}
	all, err := chip.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	if all.OK {
		t.Fatal("RepairAll should fail with dead spare")
	}
	// The faulty primary is not used, so scoped repair succeeds.
	scoped, err := chip.ReconfigureScoped(ScopeUsed)
	if err != nil {
		t.Fatal(err)
	}
	if !scoped.OK {
		t.Error("ScopeUsed should tolerate idle faulty primary")
	}
}

func TestInjectCatalog(t *testing.T) {
	chip := newChip(t, layout.DTMB26(), 100)
	recorded, sub, err := chip.InjectCatalog(8, defects.DefaultCatalogParams(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Error("expected some defects at lambda=10")
	}
	_ = sub
	if chip.Faults().Count() == 0 {
		t.Error("catalog injection left chip fault-free")
	}
	if _, err := chip.Reconfigure(); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	chip := newChip(t, layout.DTMB36(), 60)
	s := chip.Status().String()
	if !strings.Contains(s, "DTMB(3,6)") || !strings.Contains(s, "not reconfigured") {
		t.Errorf("status string %q", s)
	}
	if err := chip.InjectFixed(3, 5, defects.AllCells); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	s = chip.Status().String()
	if !strings.Contains(s, "reconfig") {
		t.Errorf("status string %q", s)
	}
}

func TestAnalyzeYield(t *testing.T) {
	chip := newChip(t, layout.DTMB26(), 100)
	ya, err := chip.AnalyzeYield(0.95, 800, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ya.Yield < 0 || ya.Yield > 1 || ya.CILo > ya.Yield || ya.CIHi < ya.Yield {
		t.Errorf("inconsistent analysis %+v", ya)
	}
	wantEY := ya.Yield * float64(ya.NPrimary) / float64(ya.NTotal)
	if math.Abs(ya.EffectiveYield-wantEY) > 1e-12 {
		t.Errorf("EY %v, want %v", ya.EffectiveYield, wantEY)
	}
	if ya.NoRedundancy >= ya.Yield {
		t.Errorf("redundant yield %v not above baseline %v at p=0.95", ya.Yield, ya.NoRedundancy)
	}
	if _, err := chip.AnalyzeYield(1.2, 100, 6); err == nil {
		t.Error("invalid p accepted")
	}
}

func TestTargetYieldPicksCheapestSufficientDesign(t *testing.T) {
	// At p=0.95, n=100: DTMB(1,6) falls short of 0.90 but DTMB(2,6) or
	// better makes it (Fig. 9 data), so the cheapest qualifying design must
	// have RR between 1/3 and 1.
	best, ok, analyses, err := TargetYield(0.95, 0.90, 100, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no design met a reachable target")
	}
	if len(analyses) != 4 {
		t.Errorf("%d analyses", len(analyses))
	}
	if best.RR() < 1.0/3-1e-9 {
		t.Errorf("best design %s cheaper than plausible", best.Name)
	}
	// Unreachable target.
	_, ok, _, err = TargetYield(0.50, 0.99, 100, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("impossible target satisfied")
	}
	if _, _, _, err := TargetYield(0.9, 1.5, 100, 100, 3); err == nil {
		t.Error("invalid target accepted")
	}
}

func TestRecommendDesignExtremes(t *testing.T) {
	// Paper Fig. 10: at high p the low-redundancy designs win on effective
	// yield; at low p the high-redundancy designs win.
	low, err := RecommendDesign(0.80, 60, 600, 10)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RecommendDesign(0.999, 60, 600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Analyses) != 4 || len(high.Analyses) != 4 {
		t.Fatal("expected analyses for all four designs")
	}
	if low.Best.RR() <= high.Best.RR() {
		t.Errorf("low-p best %s (RR %.2f) should be more redundant than high-p best %s (RR %.2f)",
			low.Best.Name, low.Best.RR(), high.Best.Name, high.Best.RR())
	}
}
