package defects

import (
	"math"
	"math/bits"

	"dmfb/internal/hexgrid"
	"dmfb/internal/layout"
)

// WordTrials is the number of Monte-Carlo trials one TrialBatch packs: one
// trial per bit of a machine word.
const WordTrials = 64

// TrialBatch packs up to 64 fault-injection trials into machine words.
// During injection the batch is column-major — cols[cell] holds one bit per
// trial — so marking a fault is one OR, and the all-healthy screen over the
// whole batch is a single word (Occupied): trials whose bit is clear drew no
// fault anywhere and never need a FaultSet, a matcher, or even a transpose.
// For the trials that did draw faults, Finalize transposes the packed bits
// into row-major per-trial bitsets (Row), the same word layout as
// FaultSet.Words, ready for word-parallel feasibility checks and
// memoization keys.
//
// A TrialBatch is reused across batches (Reset) and is not safe for
// concurrent use; give each worker its own.
type TrialBatch struct {
	numCells int
	nWords   int // words per trial row: ceil(numCells/64)
	n        int // trials in the current batch, 1..WordTrials
	occupied uint64
	cols     []uint64 // cols[i] bit t = cell i faulty in trial t
	rows     []uint64 // after Finalize: rows[t*nWords+w], trial t's fault words
}

// NewTrialBatch returns a batch sized for arrays of numCells cells. The
// column and row planes share one backing allocation.
func NewTrialBatch(numCells int) *TrialBatch {
	nWords := (numCells + 63) / 64
	buf := make([]uint64, numCells+WordTrials*nWords)
	return &TrialBatch{
		numCells: numCells,
		nWords:   nWords,
		cols:     buf[:numCells:numCells],
		rows:     buf[numCells:],
	}
}

// NumCells returns the array size the batch was built for.
func (b *TrialBatch) NumCells() int { return b.numCells }

// N returns the number of trials in the current batch.
func (b *TrialBatch) N() int { return b.n }

// Reset begins a new batch of n trials (1 ≤ n ≤ WordTrials), clearing every
// column word.
func (b *TrialBatch) Reset(n int) {
	if n < 1 || n > WordTrials {
		panic("defects: batch size out of range")
	}
	b.n = n
	b.occupied = 0
	for i := range b.cols {
		b.cols[i] = 0
	}
}

// Mark marks the cell faulty in trial t of the current batch.
func (b *TrialBatch) Mark(t int, id layout.CellID) {
	bit := uint64(1) << uint(t)
	b.cols[id] |= bit
	b.occupied |= bit
}

// Occupied returns the trial mask of the batch: bit t is set iff trial t
// drew at least one fault. Its zero bits (below N) are the all-healthy
// trials, screened without ever materializing their fault sets.
func (b *TrialBatch) Occupied() uint64 { return b.occupied }

// AllHealthy returns the number of trials in the batch that drew no fault.
func (b *TrialBatch) AllHealthy() int { return b.n - bits.OnesCount64(b.occupied) }

// Finalize transposes the packed columns into per-trial row bitsets; call it
// once per batch before Row. A batch with no occupied trial needs no
// transpose and Finalize returns immediately.
func (b *TrialBatch) Finalize() {
	if b.occupied == 0 {
		return
	}
	var tile [WordTrials]uint64
	for w := 0; w < b.nWords; w++ {
		base := w << 6
		span := b.numCells - base
		if span > WordTrials {
			span = WordTrials
		}
		copy(tile[:span], b.cols[base:base+span])
		for i := span; i < WordTrials; i++ {
			tile[i] = 0
		}
		transpose64(&tile)
		for t := 0; t < b.n; t++ {
			b.rows[t*b.nWords+w] = tile[t]
		}
	}
}

// Row returns trial t's fault bitset in FaultSet.Words layout: bit i of
// Row(t)[i/64] is set iff cell i is faulty in trial t. Valid after Finalize
// and until the next Reset; callers must treat it as read-only.
func (b *TrialBatch) Row(t int) []uint64 {
	return b.rows[t*b.nWords : (t+1)*b.nWords : (t+1)*b.nWords]
}

// transpose64 transposes the 64×64 bit matrix a in place, in plain (i, j)
// coordinates: bit j of a[i] moves to bit i of a[j]. It is the
// block-recursive word transpose of Hacker's Delight §7-3, log₂64 rounds of
// masked block swaps, ~250 word ops for the 4096-bit matrix.
func transpose64(a *[WordTrials]uint64) {
	j := 32
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < WordTrials; k = (k + j + 1) &^ j {
			t := ((a[k] >> uint(j)) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// BernoulliBatch fills the batch with n independent Bernoulli trials over
// numCells cells at survival probability p: cell i of trial t is marked
// faulty with probability q = 1−p. The PRNG draw order is exactly that of n
// successive BernoulliN calls — trial-major, cell-minor — so a batched
// estimate consumes the identical random stream as the scalar path and
// reproduces it bit for bit (the property the differential suite and the
// golden fixtures pin). The batch must be sized for numCells.
func (in *Injector) BernoulliBatch(numCells int, p float64, n int, b *TrialBatch) {
	b.Reset(n)
	q := 1 - p
	if q <= 0 {
		// NaN falls through like BernoulliN: the comparisons below never
		// fire, but the draws are still consumed.
		return
	}
	for t := 0; t < n; t++ {
		bit := uint64(1) << uint(t)
		for i := 0; i < numCells; i++ {
			if in.rng.Float64() < q {
				b.cols[i] |= bit
				b.occupied |= bit
			}
		}
	}
}

// BernoulliGeomBatch is BernoulliBatch with geometric skip-sampling, the
// batched form of BernoulliGeomN: same marginal fault distribution,
// O(expected faults) PRNG draws per trial, and draw-for-draw parity with n
// successive BernoulliGeomN calls.
func (in *Injector) BernoulliGeomBatch(numCells int, p float64, n int, b *TrialBatch) {
	b.Reset(n)
	q := 1 - p
	if math.IsNaN(q) || q <= 0 {
		return
	}
	if q >= 1 {
		mask := uint64(1)<<uint(n) - 1
		if n == WordTrials {
			mask = ^uint64(0)
		}
		for i := 0; i < numCells; i++ {
			b.cols[i] = mask
		}
		if numCells > 0 {
			b.occupied = mask
		}
		return
	}
	lnSurvive := math.Log1p(-q)
	for t := 0; t < n; t++ {
		bit := uint64(1) << uint(t)
		i := 0
		for i < numCells {
			skip := math.Floor(math.Log1p(-in.rng.Float64()) / lnSurvive)
			if skip >= float64(numCells-i) {
				break
			}
			i += int(skip)
			b.cols[i] |= bit
			b.occupied |= bit
			i++
		}
	}
}

// ClusteredBatch fills the batch with n clustered-defect trials over the
// array, the batched form of Clustered: each trial draws its own Poisson
// cluster count, centers, and ring coins, in exactly the per-trial order of
// n successive Clustered calls, so the batched and scalar paths consume the
// identical PRNG stream. It returns the total number of clusters seeded
// across the batch.
func (in *Injector) ClusteredBatch(arr *layout.Array, cp ClusterParams, n int, b *TrialBatch) (int, error) {
	if err := cp.validate(); err != nil {
		return 0, err
	}
	b.Reset(n)
	decay := cp.clusterDecay(6)
	maxR := clusterRadius(decay)
	rate := cp.clusterRate()
	total := 0
	for t := 0; t < n; t++ {
		bit := uint64(1) << uint(t)
		clusters := in.poisson(rate)
		total += clusters
		for c := 0; c < clusters; c++ {
			center := layout.CellID(in.rng.Intn(arr.NumCells()))
			b.cols[center] |= bit
			b.occupied |= bit
			pos := arr.Cell(center).Pos
			prob := 1.0
			for r := 1; r <= maxR; r++ {
				prob *= decay
				cur := pos.Add(hexgrid.Directions[4].Scale(r))
				for side := 0; side < 6; side++ {
					for step := 0; step < r; step++ {
						if id := arr.CellAt(cur); id != layout.NoCell && in.rng.Float64() < prob {
							b.cols[id] |= bit
							b.occupied |= bit
						}
						cur = cur.Neighbor(side)
					}
				}
			}
		}
	}
	return total, nil
}
