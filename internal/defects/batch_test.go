package defects

import (
	"math"
	"math/rand"
	"testing"

	"dmfb/internal/layout"
)

// rowEquals reports whether trial t of the batch carries exactly the fault
// pattern of fs.
func rowEquals(b *TrialBatch, t int, fs *FaultSet) bool {
	row := b.Row(t)
	for w, want := range fs.Words() {
		if row[w] != want {
			return false
		}
	}
	return true
}

// TestTranspose64 pins the bit-matrix transpose against the naive
// definition on random matrices: bit j of input word i must land at bit i
// of output word j.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var in, got [WordTrials]uint64
		for i := range in {
			in[i] = rng.Uint64()
		}
		got = in
		transpose64(&got)
		for i := 0; i < WordTrials; i++ {
			for j := 0; j < WordTrials; j++ {
				want := in[i] >> uint(j) & 1
				have := got[j] >> uint(i) & 1
				if want != have {
					t.Fatalf("transpose64: element (%d,%d) = %d, want %d", j, i, have, want)
				}
			}
		}
	}
}

// TestBernoulliBatchMatchesScalar pins the core batching contract: a batch
// of n trials consumes the identical PRNG stream as n successive scalar
// draws and packs the identical fault sets, across sizes that exercise
// partial last words and multi-word rows.
func TestBernoulliBatchMatchesScalar(t *testing.T) {
	for _, numCells := range []int{1, 17, 64, 65, 130, 300} {
		for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
			for _, n := range []int{1, 7, WordTrials} {
				batchIn, scalarIn := NewInjector(99), NewInjector(99)
				b := NewTrialBatch(numCells)
				batchIn.BernoulliBatch(numCells, p, n, b)
				b.Finalize()
				fs := NewFaultSet(numCells)
				for trial := 0; trial < n; trial++ {
					fs = scalarIn.BernoulliN(numCells, p, fs)
					if hasFault := fs.Count() > 0; hasFault != (b.Occupied()>>uint(trial)&1 == 1) {
						t.Fatalf("cells=%d p=%v n=%d trial %d: occupied bit %v, scalar faults %d",
							numCells, p, n, trial, !hasFault, fs.Count())
					}
					if b.Occupied() != 0 && !rowEquals(b, trial, fs) {
						t.Fatalf("cells=%d p=%v n=%d trial %d: batch row differs from scalar draw",
							numCells, p, n, trial)
					}
				}
				// Post-batch stream positions agree iff the batch consumed
				// exactly the scalar path's draws.
				if bg, sg := batchIn.rng.Float64(), scalarIn.rng.Float64(); bg != sg {
					t.Fatalf("cells=%d p=%v n=%d: PRNG streams diverged (%v vs %v)",
						numCells, p, n, bg, sg)
				}
			}
		}
	}
}

// TestBernoulliBatchNaN pins the NaN edge case: like BernoulliN, a NaN
// survival probability marks nothing but still consumes every draw.
func TestBernoulliBatchNaN(t *testing.T) {
	in, ref := NewInjector(3), NewInjector(3)
	b := NewTrialBatch(50)
	in.BernoulliBatch(50, math.NaN(), 4, b)
	if b.Occupied() != 0 {
		t.Fatalf("NaN batch marked faults: occupied=%b", b.Occupied())
	}
	for i := 0; i < 4*50; i++ {
		ref.rng.Float64()
	}
	if bg, rg := in.rng.Float64(), ref.rng.Float64(); bg != rg {
		t.Fatalf("NaN batch consumed wrong number of draws (%v vs %v)", bg, rg)
	}
}

// TestBernoulliGeomBatchMatchesScalar pins the skip-sampling batch to n
// successive BernoulliGeomN calls, including the q≥1 mark-all and q≤0
// no-draw fast paths.
func TestBernoulliGeomBatchMatchesScalar(t *testing.T) {
	for _, numCells := range []int{1, 64, 130} {
		for _, p := range []float64{-0.5, 0, 0.5, 0.97, 1, math.NaN()} {
			n := 32
			batchIn, scalarIn := NewInjector(7), NewInjector(7)
			b := NewTrialBatch(numCells)
			batchIn.BernoulliGeomBatch(numCells, p, n, b)
			b.Finalize()
			fs := NewFaultSet(numCells)
			for trial := 0; trial < n; trial++ {
				fs = scalarIn.BernoulliGeomN(numCells, p, fs)
				if b.Occupied() != 0 && !rowEquals(b, trial, fs) {
					t.Fatalf("cells=%d p=%v trial %d: geom batch row differs", numCells, p, trial)
				}
				if fs.Count() == 0 && b.Occupied()>>uint(trial)&1 == 1 {
					t.Fatalf("cells=%d p=%v trial %d: occupied set for healthy trial", numCells, p, trial)
				}
			}
			if bg, sg := batchIn.rng.Float64(), scalarIn.rng.Float64(); bg != sg {
				t.Fatalf("cells=%d p=%v: geom PRNG streams diverged", numCells, p)
			}
		}
	}
}

// TestClusteredBatchMatchesScalar pins clustered batch injection to n
// successive Clustered calls on a real array: identical fault patterns,
// identical cluster counts, identical stream position.
func TestClusteredBatchMatchesScalar(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	cp := ClusterParams{MeanDefects: 5, ClusterSize: 4}
	const n = WordTrials
	batchIn, scalarIn := NewInjector(11), NewInjector(11)
	b := NewTrialBatch(arr.NumCells())
	batchClusters, err := batchIn.ClusteredBatch(arr, cp, n, b)
	if err != nil {
		t.Fatal(err)
	}
	b.Finalize()
	fs := NewFaultSet(arr.NumCells())
	scalarClusters := 0
	for trial := 0; trial < n; trial++ {
		next, c, err := scalarIn.Clustered(arr, cp, fs)
		if err != nil {
			t.Fatal(err)
		}
		fs = next
		scalarClusters += c
		if !rowEquals(b, trial, fs) {
			t.Fatalf("trial %d: clustered batch row differs from scalar draw", trial)
		}
	}
	if batchClusters != scalarClusters {
		t.Fatalf("batch seeded %d clusters, scalar %d", batchClusters, scalarClusters)
	}
	if bg, sg := batchIn.rng.Float64(), scalarIn.rng.Float64(); bg != sg {
		t.Fatal("clustered PRNG streams diverged")
	}
	if _, err := batchIn.ClusteredBatch(arr, ClusterParams{MeanDefects: -1, ClusterSize: 4}, 1, b); err == nil {
		t.Fatal("invalid cluster params accepted")
	}
}

// TestTrialBatchReuse checks that Reset fully clears state between batches
// of different sizes, so a reused batch can never leak faults forward.
func TestTrialBatchReuse(t *testing.T) {
	b := NewTrialBatch(100)
	in := NewInjector(1)
	in.BernoulliBatch(100, 0.5, WordTrials, b)
	if b.Occupied() == 0 {
		t.Fatal("dense batch drew no faults")
	}
	in.BernoulliBatch(100, 1, 8, b)
	if b.Occupied() != 0 || b.N() != 8 {
		t.Fatalf("reused batch not cleared: occupied=%b n=%d", b.Occupied(), b.N())
	}
	b.Finalize() // no-op on an empty batch
	for i := range b.cols {
		if b.cols[i] != 0 {
			t.Fatalf("col %d survived Reset: %b", i, b.cols[i])
		}
	}
}
