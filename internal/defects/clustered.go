package defects

import (
	"fmt"
	"math"

	"dmfb/internal/hexgrid"
	"dmfb/internal/layout"
)

// ClusterParams parameterizes clustered catastrophic-defect injection: the
// spatially correlated alternative to the paper's independent-failure
// assumption. Real manufacturing defects (particles, resist flaws, bonding
// voids) strike neighborhoods, not isolated electrodes, so the fault-tolerant
// design-flow literature evaluates redundancy schemes under clustered spot
// defects as well.
//
// A draw seeds a Poisson(MeanDefects/ClusterSize) number of cluster centers
// uniformly over the array. Each cluster marks its center faulty and then
// every cell at lattice distance r from the center independently with
// probability d^r, where the per-ring decay d is solved so that a cluster
// away from the array boundary contains ClusterSize cells in expectation
// ("geometric radius decay"). Clusters overlapping the boundary are
// truncated, so the realized defect density runs slightly below MeanDefects
// on small arrays — the same boundary effect physical chips show.
type ClusterParams struct {
	// MeanDefects is the expected number of faulty cells over the whole
	// array (before boundary truncation). Must be non-negative.
	MeanDefects float64
	// ClusterSize is the expected number of cells per cluster, at least 1.
	// 1 degenerates to independent single-cell spot defects at Poisson rate
	// MeanDefects.
	ClusterSize float64
}

// validate checks the parameter ranges.
func (cp ClusterParams) validate() error {
	if math.IsNaN(cp.MeanDefects) || cp.MeanDefects < 0 {
		return fmt.Errorf("defects: mean defect count %v must be non-negative", cp.MeanDefects)
	}
	if math.IsNaN(cp.ClusterSize) || cp.ClusterSize < 1 {
		return fmt.Errorf("defects: cluster size %v must be at least 1", cp.ClusterSize)
	}
	return nil
}

// clusterRate returns the Poisson rate of cluster centers.
func (cp ClusterParams) clusterRate() float64 { return cp.MeanDefects / cp.ClusterSize }

// clusterDecay solves the per-ring geometric decay d of a cluster whose
// ring at radius r holds ringGrowth·r cells (6r on the hexagonal lattice,
// 8r under Chebyshev adjacency on the square lattice): the expected
// cluster size away from the boundary is 1 + ringGrowth·d/(1−d)², so
// ringGrowth·d/(1−d)² = ClusterSize−1 gives the quadratic
// t·d² − (2t+k)·d + t = 0 with t = ClusterSize−1, k = ringGrowth.
func (cp ClusterParams) clusterDecay(ringGrowth float64) float64 {
	t := cp.ClusterSize - 1
	if t <= 0 {
		return 0
	}
	k := ringGrowth
	b := 2*t + k
	return (b - math.Sqrt(b*b-4*t*t)) / (2 * t)
}

// maxClusterRadius is the hard cap on cluster extent; combined with the
// negligible-probability cutoff it bounds the work of one cluster draw.
const maxClusterRadius = 64

// clusterRadius returns the largest ring worth sampling: past it the
// per-cell failure probability d^r drops below 1e-4 and the expected
// contribution of all remaining rings is negligible. The bound depends only
// on the decay, never on random draws, so injection stays deterministic.
func clusterRadius(decay float64) int {
	if decay <= 0 {
		return 0
	}
	r := int(math.Ceil(math.Log(1e-4) / math.Log(decay)))
	if r < 1 {
		r = 1
	}
	if r > maxClusterRadius {
		r = maxClusterRadius
	}
	return r
}

// Clustered draws a clustered fault set over a defect-tolerant array: cluster
// centers are uniform over all cells (primaries and spares alike, matching
// the paper's fault-domain assumption), and each cluster decays geometrically
// over the six-neighbor hexagonal rings around its center. The draw is
// deterministic in the injector's seed and the array. It reuses dst when it
// has matching size (clearing it first) to stay allocation-light in
// Monte-Carlo loops. The returned count is the number of clusters seeded.
func (in *Injector) Clustered(arr *layout.Array, cp ClusterParams, dst *FaultSet) (*FaultSet, int, error) {
	if err := cp.validate(); err != nil {
		return dst, 0, err
	}
	dst = in.prepare(arr, dst)
	decay := cp.clusterDecay(6)
	maxR := clusterRadius(decay)
	clusters := in.poisson(cp.clusterRate())
	for c := 0; c < clusters; c++ {
		center := layout.CellID(in.rng.Intn(arr.NumCells()))
		dst.MarkFaulty(center)
		pos := arr.Cell(center).Pos
		prob := 1.0
		for r := 1; r <= maxR; r++ {
			prob *= decay
			// Walk the ring in hexgrid.Ring order without materializing it:
			// start r steps south-west, then one ring side per direction.
			cur := pos.Add(hexgrid.Directions[4].Scale(r))
			for side := 0; side < 6; side++ {
				for step := 0; step < r; step++ {
					if id := arr.CellAt(cur); id != layout.NoCell && in.rng.Float64() < prob {
						dst.MarkFaulty(id)
					}
					cur = cur.Neighbor(side)
				}
			}
		}
	}
	return dst, clusters, nil
}

// ClusteredGrid is the square-lattice sibling of Clustered for arrays that
// are not layout.Arrays (the boundary-spare-row placements of the
// shifted-replacement baseline, indexed densely row-major on a w×h grid).
// Rings are Chebyshev (8r cells at radius r), the natural shape of a spot
// defect on a square-electrode array. The returned count is the number of
// clusters seeded.
func (in *Injector) ClusteredGrid(w, h int, cp ClusterParams, dst *FaultSet) (*FaultSet, int, error) {
	if err := cp.validate(); err != nil {
		return dst, 0, err
	}
	if w <= 0 || h <= 0 {
		return dst, 0, fmt.Errorf("defects: invalid grid %dx%d", w, h)
	}
	numCells := w * h
	if dst == nil || dst.NumCells() != numCells {
		dst = NewFaultSet(numCells)
	} else {
		dst.Clear()
	}
	decay := cp.clusterDecay(8)
	maxR := clusterRadius(decay)
	clusters := in.poisson(cp.clusterRate())
	for c := 0; c < clusters; c++ {
		center := in.rng.Intn(numCells)
		dst.MarkFaulty(layout.CellID(center))
		cx, cy := center%w, center/w
		prob := 1.0
		for r := 1; r <= maxR; r++ {
			prob *= decay
			// Chebyshev ring: cells with max(|dx|,|dy|) == r, scanned in
			// deterministic row-major order.
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if maxAbs(dx, dy) != r {
						continue
					}
					x, y := cx+dx, cy+dy
					if x < 0 || x >= w || y < 0 || y >= h {
						continue
					}
					if in.rng.Float64() < prob {
						dst.MarkFaulty(layout.CellID(y*w + x))
					}
				}
			}
		}
	}
	return dst, clusters, nil
}

// maxAbs returns max(|a|, |b|).
func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// Model selects the spatial defect model of a yield trial: the paper's
// independent Bernoulli failures (the zero value) or center-seeded clusters
// with geometric radius decay. Under the clustered model a trial at survival
// probability p targets the same expected defect density (1−p)·N as the
// independent model, so the two are comparable point-for-point along the p
// axis of a sweep.
type Model struct {
	// Clustered selects clustered injection; false means independent
	// Bernoulli failures.
	Clustered bool
	// ClusterSize is the expected cells per cluster (≥ 1); used only when
	// Clustered is set.
	ClusterSize float64
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if !m.Clustered {
		return nil
	}
	if math.IsNaN(m.ClusterSize) || m.ClusterSize < 1 {
		return fmt.Errorf("defects: cluster size %v must be at least 1", m.ClusterSize)
	}
	return nil
}

// Params converts the model at survival probability p on an array of
// numCells cells to clustered-injection parameters: mean defect count
// (1−p)·numCells at the model's cluster size.
func (m Model) Params(p float64, numCells int) ClusterParams {
	return ClusterParams{MeanDefects: (1 - p) * float64(numCells), ClusterSize: m.ClusterSize}
}
