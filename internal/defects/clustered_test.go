package defects

import (
	"math"
	"reflect"
	"testing"

	"dmfb/internal/layout"
)

func clusterTestArray(t *testing.T) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestClusteredDeterministicPerSeed(t *testing.T) {
	arr := clusterTestArray(t)
	cp := ClusterParams{MeanDefects: 20, ClusterSize: 4}
	draw := func(seed int64) ([]layout.CellID, int) {
		fs, clusters, err := NewInjector(seed).Clustered(arr, cp, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fs.FaultyCells(), clusters
	}
	a, ca := draw(42)
	b, cb := draw(42)
	if !reflect.DeepEqual(a, b) || ca != cb {
		t.Fatalf("same seed produced different draws: %v (%d) vs %v (%d)", a, ca, b, cb)
	}
	c, _ := draw(43)
	if reflect.DeepEqual(a, c) && len(a) > 0 {
		t.Error("different seeds produced identical non-empty fault sets")
	}
}

func TestClusteredReusesDst(t *testing.T) {
	arr := clusterTestArray(t)
	cp := ClusterParams{MeanDefects: 10, ClusterSize: 3}
	in := NewInjector(1)
	fs, _, err := in.Clustered(arr, cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs2, _, err := in.Clustered(arr, cp, fs)
	if err != nil {
		t.Fatal(err)
	}
	if fs2 != fs {
		t.Error("Clustered did not reuse the provided fault set")
	}
}

// TestClusteredClusterCountDistribution pins the Poisson cluster-count law:
// across many draws the mean number of clusters is MeanDefects/ClusterSize.
func TestClusteredClusterCountDistribution(t *testing.T) {
	arr := clusterTestArray(t)
	cp := ClusterParams{MeanDefects: 24, ClusterSize: 4}
	in := NewInjector(2005)
	const draws = 4000
	total := 0
	var fs *FaultSet
	for i := 0; i < draws; i++ {
		var clusters int
		var err error
		fs, clusters, err = in.Clustered(arr, cp, fs)
		if err != nil {
			t.Fatal(err)
		}
		total += clusters
	}
	mean := float64(total) / draws
	want := cp.clusterRate() // 6
	// Poisson(6) sample mean over 4000 draws: σ ≈ √(6/4000) ≈ 0.039.
	if math.Abs(mean-want) > 0.2 {
		t.Errorf("mean cluster count %.3f, want %.3f ± 0.2", mean, want)
	}
}

// TestClusteredClusterSizeDistribution pins the geometric-decay cluster-size
// law: a single cluster seeded at the center of a large array contains
// ClusterSize cells in expectation.
func TestClusteredClusterSizeDistribution(t *testing.T) {
	arr := clusterTestArray(t)
	for _, size := range []float64{1, 2, 4, 8} {
		cp := ClusterParams{MeanDefects: size, ClusterSize: size} // rate 1
		in := NewInjector(7)
		const draws = 6000
		totalCells, totalClusters := 0, 0
		var fs *FaultSet
		for i := 0; i < draws; i++ {
			var clusters int
			var err error
			fs, clusters, err = in.Clustered(arr, cp, fs)
			if err != nil {
				t.Fatal(err)
			}
			// Only single-cluster draws measure the per-cluster size cleanly
			// (overlap and boundary truncation shrink multi-cluster draws).
			if clusters == 1 {
				totalCells += fs.Count()
				totalClusters++
			}
		}
		if totalClusters == 0 {
			t.Fatalf("size %g: no single-cluster draws", size)
		}
		mean := float64(totalCells) / float64(totalClusters)
		// Boundary truncation pulls the realized mean a little below the
		// interior expectation; allow 12% slack plus sampling noise.
		if mean > size*1.12 || mean < size*0.82 {
			t.Errorf("cluster size %g: mean realized size %.3f outside [%.2f, %.2f]",
				size, mean, size*0.82, size*1.12)
		}
	}
}

// TestClusteredSizeOneIsSpotDefects checks the degenerate case: cluster size
// 1 must never mark more cells than clusters (no ring spill).
func TestClusteredSizeOneIsSpotDefects(t *testing.T) {
	arr := clusterTestArray(t)
	cp := ClusterParams{MeanDefects: 12, ClusterSize: 1}
	in := NewInjector(11)
	var fs *FaultSet
	for i := 0; i < 200; i++ {
		var clusters int
		var err error
		fs, clusters, err = in.Clustered(arr, cp, fs)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Count() > clusters {
			t.Fatalf("draw %d: %d faulty cells from %d size-1 clusters", i, fs.Count(), clusters)
		}
	}
}

func TestClusteredParamValidation(t *testing.T) {
	arr := clusterTestArray(t)
	in := NewInjector(1)
	bad := []ClusterParams{
		{MeanDefects: -1, ClusterSize: 2},
		{MeanDefects: 5, ClusterSize: 0.5},
		{MeanDefects: math.NaN(), ClusterSize: 2},
		{MeanDefects: 5, ClusterSize: math.NaN()},
	}
	for i, cp := range bad {
		if _, _, err := in.Clustered(arr, cp, nil); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, cp)
		}
		if _, _, err := in.ClusteredGrid(10, 10, cp, nil); err == nil {
			t.Errorf("case %d: invalid grid params %+v accepted", i, cp)
		}
	}
	if _, _, err := in.ClusteredGrid(0, 10, ClusterParams{MeanDefects: 1, ClusterSize: 2}, nil); err == nil {
		t.Error("zero-width grid accepted")
	}
}

func TestClusteredGridDeterministicAndInBounds(t *testing.T) {
	cp := ClusterParams{MeanDefects: 15, ClusterSize: 5}
	const w, h = 18, 12
	draw := func(seed int64) []layout.CellID {
		fs, _, err := NewInjector(seed).ClusteredGrid(w, h, cp, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fs.NumCells() != w*h {
			t.Fatalf("fault set sized %d, want %d", fs.NumCells(), w*h)
		}
		return fs.FaultyCells()
	}
	if a, b := draw(5), draw(5); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed differs: %v vs %v", a, b)
	}
}

// TestClusteredGridClustersAreCompact checks the geometric decay: the cells
// of a single cluster stay within the deterministic radius bound of the
// center.
func TestClusteredGridClustersAreCompact(t *testing.T) {
	cp := ClusterParams{MeanDefects: 3, ClusterSize: 3}
	maxR := clusterRadius(cp.clusterDecay(8))
	const w, h = 40, 40
	in := NewInjector(3)
	var fs *FaultSet
	for i := 0; i < 300; i++ {
		var clusters int
		var err error
		fs, clusters, err = in.ClusteredGrid(w, h, cp, fs)
		if err != nil {
			t.Fatal(err)
		}
		if clusters != 1 {
			continue
		}
		cells := fs.FaultyCells()
		// Every faulty cell must lie within maxR (Chebyshev) of some faulty
		// cell acting as center; with one cluster, the spread of the whole
		// set is at most 2·maxR.
		for _, a := range cells {
			for _, b := range cells {
				ax, ay := int(a)%w, int(a)/w
				bx, by := int(b)%w, int(b)/w
				if d := maxAbs(ax-bx, ay-by); d > 2*maxR {
					t.Fatalf("cluster spread %d exceeds 2·maxR=%d", d, 2*maxR)
				}
			}
		}
	}
}

func TestClusterDecaySolvesExpectedSize(t *testing.T) {
	for _, k := range []float64{6, 8} {
		for _, size := range []float64{1, 1.5, 2, 4, 16} {
			cp := ClusterParams{MeanDefects: 1, ClusterSize: size}
			d := cp.clusterDecay(k)
			if d < 0 || d >= 1 {
				t.Fatalf("decay %v outside [0,1) for size %g", d, size)
			}
			want := size - 1
			got := k * d / ((1 - d) * (1 - d))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("k=%g size=%g: ring sum %v, want %v", k, size, got, want)
			}
		}
	}
}

// TestPoissonLargeLambda regresses the underflow of Knuth's product method:
// past λ ≈ 745, exp(−λ) leaves float64 range and the naive sampler caps its
// draws near 750. The chunked sampler must track the mean at rates the
// clustered model reaches on large arrays (λ = (1−p)·N/size).
func TestPoissonLargeLambda(t *testing.T) {
	in := NewInjector(99)
	for _, lambda := range []float64{500, 2000, 13600} {
		const draws = 200
		total := 0
		for i := 0; i < draws; i++ {
			total += in.poisson(lambda)
		}
		mean := float64(total) / draws
		// Sample-mean σ = sqrt(λ/draws); allow 5σ plus a little.
		tol := 6 * math.Sqrt(lambda/draws)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("λ=%g: mean draw %.1f, want within %.1f", lambda, mean, tol)
		}
	}
}

func TestModelValidateAndParams(t *testing.T) {
	if err := (Model{}).Validate(); err != nil {
		t.Errorf("zero model invalid: %v", err)
	}
	if err := (Model{Clustered: true, ClusterSize: 0.2}).Validate(); err == nil {
		t.Error("cluster size 0.2 accepted")
	}
	cp := Model{Clustered: true, ClusterSize: 4}.Params(0.95, 200)
	if math.Abs(cp.MeanDefects-10) > 1e-12 || cp.ClusterSize != 4 {
		t.Errorf("Params = %+v, want MeanDefects 10, ClusterSize 4", cp)
	}
}
