// Package defects models manufacturing defects of digital microfluidic
// biochips and injects them into defect-tolerant arrays for yield analysis.
//
// Following the paper (§4) and the analog fault-classification tradition it
// cites, faults are either catastrophic (dielectric breakdown, a short
// between adjacent electrodes, an open in the electrode's control-line
// connection — the cell stops transporting droplets entirely) or parametric
// (geometry deviations: insulator thickness, electrode length, plate gap —
// the cell degrades and counts as faulty only when the deviation exceeds the
// performance tolerance).
//
// The yield analysis assumption of the paper is implemented directly: every
// cell, primary or spare, fails independently with the same probability
// q = 1 − p (Bernoulli mode), or exactly m distinct cells fail (fixed-count
// mode, used by the case-study experiment of Fig. 13). Beyond the paper's
// independence assumption, clustered.go models spatially correlated
// manufacturing defects: center-seeded clusters with geometric radius decay
// (Clustered for hexagonal-lattice arrays, ClusteredGrid for the square
// grids of the shifted-replacement baseline), selected via Model.
package defects

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"dmfb/internal/layout"
)

// Class separates catastrophic (hard) from parametric (soft) faults.
type Class uint8

const (
	// Catastrophic faults cause complete malfunction of the cell.
	Catastrophic Class = iota
	// Parametric faults degrade performance; they make a cell faulty only
	// when the deviation exceeds the system tolerance.
	Parametric
)

// String names the class.
func (c Class) String() string {
	if c == Parametric {
		return "parametric"
	}
	return "catastrophic"
}

// Kind enumerates the concrete manufacturing defects from the paper.
type Kind uint8

const (
	// DielectricBreakdown shorts droplet and electrode; the droplet
	// electrolyzes and cannot move further.
	DielectricBreakdown Kind = iota
	// ElectrodeShort merges two adjacent electrodes into one long electrode;
	// droplets resting on it cannot overlap a neighbor, so actuation fails
	// on both cells.
	ElectrodeShort
	// OpenConnection breaks the metal line between electrode and control
	// source; the electrode can never be activated.
	OpenConnection
	// InsulatorThicknessDeviation is a parametric deviation of the Parylene C
	// insulator thickness (nominal ~800 nm).
	InsulatorThicknessDeviation
	// ElectrodeLengthDeviation is a parametric deviation of the electrode
	// pitch.
	ElectrodeLengthDeviation
	// PlateGapDeviation is a parametric deviation of the spacing between the
	// top and bottom glass plates.
	PlateGapDeviation
)

// String names the defect kind.
func (k Kind) String() string {
	switch k {
	case DielectricBreakdown:
		return "dielectric-breakdown"
	case ElectrodeShort:
		return "electrode-short"
	case OpenConnection:
		return "open-connection"
	case InsulatorThicknessDeviation:
		return "insulator-thickness-deviation"
	case ElectrodeLengthDeviation:
		return "electrode-length-deviation"
	case PlateGapDeviation:
		return "plate-gap-deviation"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Class returns the fault class the defect kind belongs to.
func (k Kind) Class() Class {
	switch k {
	case InsulatorThicknessDeviation, ElectrodeLengthDeviation, PlateGapDeviation:
		return Parametric
	default:
		return Catastrophic
	}
}

// CatastrophicKinds lists the hard-fault kinds.
func CatastrophicKinds() []Kind {
	return []Kind{DielectricBreakdown, ElectrodeShort, OpenConnection}
}

// ParametricKinds lists the soft-fault kinds.
func ParametricKinds() []Kind {
	return []Kind{InsulatorThicknessDeviation, ElectrodeLengthDeviation, PlateGapDeviation}
}

// Defect is one concrete manufacturing defect instance.
type Defect struct {
	Kind Kind
	// Cell is the afflicted cell.
	Cell layout.CellID
	// Other is the second cell of an ElectrodeShort (NoCell otherwise).
	Other layout.CellID
	// Deviation is the relative parameter deviation of a parametric defect
	// (e.g. +0.30 = 30% over nominal); zero for catastrophic defects.
	Deviation float64
}

// String describes the defect.
func (d Defect) String() string {
	if d.Kind == ElectrodeShort {
		return fmt.Sprintf("%s between cells %d and %d", d.Kind, d.Cell, d.Other)
	}
	if d.Kind.Class() == Parametric {
		return fmt.Sprintf("%s at cell %d (%.1f%%)", d.Kind, d.Cell, d.Deviation*100)
	}
	return fmt.Sprintf("%s at cell %d", d.Kind, d.Cell)
}

// FaultSet records which cells of an array are faulty, plus the defects that
// made them so. Membership is a bitset — one machine word covers 64 cells —
// so clearing, counting, and the all-healthy screen of the Monte-Carlo
// kernel are word-parallel, and the bit pattern itself is the canonical key
// for feasibility memoization (Words, Signature). The zero value is
// unusable; use NewFaultSet.
type FaultSet struct {
	numCells int
	words    []uint64 // bit i of words[i/64] = cell i faulty
	count    int
	defects  []Defect
}

// NewFaultSet returns an empty fault set for an array with numCells cells.
func NewFaultSet(numCells int) *FaultSet {
	return &FaultSet{numCells: numCells, words: make([]uint64, (numCells+63)/64)}
}

// NumCells returns the size of the underlying array.
func (f *FaultSet) NumCells() int { return f.numCells }

// MarkFaulty marks a cell faulty. Marking twice is a no-op.
func (f *FaultSet) MarkFaulty(id layout.CellID) {
	if uint(id) >= uint(f.numCells) {
		panic("defects: cell id out of range")
	}
	w, bit := id>>6, uint64(1)<<(uint(id)&63)
	if f.words[w]&bit == 0 {
		f.words[w] |= bit
		f.count++
	}
}

// Clear resets every cell to fault-free and drops the defect list.
func (f *FaultSet) Clear() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.count = 0
	f.defects = f.defects[:0]
}

// IsFaulty reports whether the cell is faulty. The id must be in
// [0, NumCells).
func (f *FaultSet) IsFaulty(id layout.CellID) bool {
	return f.words[id>>6]&(uint64(1)<<(uint(id)&63)) != 0
}

// Words exposes the fault bitset: bit i of Words()[i/64] is set iff cell i
// is faulty. The slice is the set's backing store — callers must treat it
// as read-only and must not retain it across a Clear or re-injection. It is
// the zero-copy currency between batched injection, word-parallel
// feasibility checks, and memoization keys.
func (f *FaultSet) Words() []uint64 { return f.words }

// Signature returns a 64-bit signature of the fault bit pattern, the
// memoization key of reconfig feasibility caching. It depends only on the
// final bit state, never on insertion order. For arrays of at most 64 cells
// the pattern is one word and the signature is a bijection of it (see
// mix64), so distinct fault sets are guaranteed distinct signatures; larger
// arrays chain the per-word mixes, which is collision-resistant but not
// provably injective — exact-match callers compare Words too.
func (f *FaultSet) Signature() uint64 { return SignatureOfWords(f.words) }

// SignatureOfWords is Signature over a raw fault bitset, for callers that
// hold trial words without a FaultSet (the bit-packed trial path).
func SignatureOfWords(words []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h = mix64(h ^ w)
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijection on 64-bit words with full
// avalanche, so hashing a single word can never collide.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Count returns the number of faulty cells.
func (f *FaultSet) Count() int { return f.count }

// Defects returns the recorded defect instances (may be shorter than Count
// when faults were injected without defect records, e.g. in the fast
// Monte-Carlo path).
func (f *FaultSet) Defects() []Defect { return f.defects }

// AddDefect records a defect and marks its cell(s) faulty.
func (f *FaultSet) AddDefect(d Defect) {
	f.defects = append(f.defects, d)
	f.MarkFaulty(d.Cell)
	if d.Kind == ElectrodeShort && d.Other != layout.NoCell {
		f.MarkFaulty(d.Other)
	}
}

// FaultyCells returns the faulty cell IDs in ascending order.
func (f *FaultSet) FaultyCells() []layout.CellID {
	out := make([]layout.CellID, 0, f.count)
	for w, word := range f.words {
		for ; word != 0; word &= word - 1 {
			out = append(out, layout.CellID(w<<6+bits.TrailingZeros64(word)))
		}
	}
	return out
}

// FaultyPrimaries returns the faulty cells of the array that are primaries,
// ascending.
func (f *FaultSet) FaultyPrimaries(arr *layout.Array) []layout.CellID {
	var out []layout.CellID
	for _, id := range arr.Primaries() {
		if f.IsFaulty(id) {
			out = append(out, id)
		}
	}
	return out
}

// AnyFaultyPrimary reports whether any primary cell of the array is faulty.
// It is the allocation-free form of len(FaultyPrimaries(arr)) > 0 for
// Monte-Carlo trial loops that only need the verdict.
func (f *FaultSet) AnyFaultyPrimary(arr *layout.Array) bool {
	if f.count == 0 {
		return false
	}
	for _, id := range arr.Primaries() {
		if f.IsFaulty(id) {
			return true
		}
	}
	return false
}

// FaultySpares returns the faulty cells of the array that are spares,
// ascending.
func (f *FaultSet) FaultySpares(arr *layout.Array) []layout.CellID {
	var out []layout.CellID
	for _, id := range arr.Spares() {
		if f.IsFaulty(id) {
			out = append(out, id)
		}
	}
	return out
}

// Injector draws random fault sets. It is not safe for concurrent use; give
// each worker its own Injector (see stats.SeedStream).
type Injector struct {
	rng *rand.Rand
	// pool is the scratch permutation buffer of FixedCount draws, refilled
	// from the domain on every call so results stay independent of call
	// history while the allocation is paid once.
	pool []layout.CellID
}

// NewInjector returns an injector with a deterministic PRNG stream.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the injector onto a fresh deterministic PRNG stream, as if
// newly constructed with NewInjector(seed), while keeping its scratch
// buffers. The chunked Monte-Carlo kernel reseeds one worker-owned injector
// per chunk instead of allocating a new one (a rand source is ~5 KB).
func (in *Injector) Reseed(seed int64) { in.rng.Seed(seed) }

// Bernoulli marks every cell of the array faulty independently with
// probability q = 1−p, the paper's yield-analysis assumption. It reuses dst
// when non-nil (clearing it first) to avoid allocation in Monte-Carlo loops.
func (in *Injector) Bernoulli(arr *layout.Array, p float64, dst *FaultSet) *FaultSet {
	return in.BernoulliN(arr.NumCells(), p, dst)
}

// BernoulliN marks each of numCells generically indexed cells faulty
// independently with probability q = 1−p. It is the structure-agnostic
// sibling of Bernoulli for arrays that are not layout.Arrays (e.g. the
// square-grid spare-row placements of the shifted-replacement baseline,
// whose cells are identified by their dense row-major index). It reuses dst
// when it has matching size (clearing it first) to avoid allocation in
// Monte-Carlo loops.
func (in *Injector) BernoulliN(numCells int, p float64, dst *FaultSet) *FaultSet {
	if dst == nil || dst.NumCells() != numCells {
		dst = NewFaultSet(numCells)
	} else {
		dst.Clear()
	}
	q := 1 - p
	if q <= 0 {
		return dst
	}
	for i := 0; i < numCells; i++ {
		if in.rng.Float64() < q {
			dst.MarkFaulty(layout.CellID(i))
		}
	}
	return dst
}

// BernoulliGeom is Bernoulli with geometric skip-sampling: the same
// marginal fault distribution drawn with O(expected faults) PRNG calls
// instead of O(N) (resetting dst remains O(N) either way). See
// BernoulliGeomN for the draw-order caveat.
func (in *Injector) BernoulliGeom(arr *layout.Array, p float64, dst *FaultSet) *FaultSet {
	return in.BernoulliGeomN(arr.NumCells(), p, dst)
}

// BernoulliGeomN marks each of numCells cells faulty independently with
// probability q = 1−p, like BernoulliN, but samples the gaps between
// successive faults from the geometric distribution instead of flipping one
// coin per cell. At the high survival probabilities yield analysis cares
// about (q ≪ 1) a draw costs O(q·N) PRNG calls rather than O(N).
//
// The marginal distribution of the fault set is identical to BernoulliN's,
// but the PRNG draw order is not: a trial using the skip-sampler consumes
// different random numbers, so individual trial outcomes (and therefore
// golden fixtures pinned to the per-cell scan) differ while every
// statistical property is preserved. Callers opt in explicitly — see
// yieldsim.MonteCarlo.FastSampling — and remain deterministic per seed.
func (in *Injector) BernoulliGeomN(numCells int, p float64, dst *FaultSet) *FaultSet {
	if dst == nil || dst.NumCells() != numCells {
		dst = NewFaultSet(numCells)
	} else {
		dst.Clear()
	}
	q := 1 - p
	if math.IsNaN(q) || q <= 0 {
		// NaN degrades to the empty set, matching BernoulliN (whose per-cell
		// comparison against NaN never fires).
		return dst
	}
	if q >= 1 {
		for i := 0; i < numCells; i++ {
			dst.MarkFaulty(layout.CellID(i))
		}
		return dst
	}
	// The gap before the next fault is Geometric(q): floor(ln(U)/ln(1−q))
	// with U uniform on (0,1]. rng.Float64 is uniform on [0,1), so use 1−U.
	lnSurvive := math.Log1p(-q)
	i := 0
	for {
		skip := math.Floor(math.Log1p(-in.rng.Float64()) / lnSurvive)
		if skip >= float64(numCells-i) {
			return dst
		}
		i += int(skip)
		dst.MarkFaulty(layout.CellID(i))
		i++
		if i >= numCells {
			return dst
		}
	}
}

// Domain selects which cells fixed-count injection may hit.
type Domain uint8

const (
	// AllCells lets faults strike primaries and spares alike (the paper's
	// stated assumption: "the cells in the microfluidic array, including
	// both primary and spare cells, are randomly chosen to fail").
	AllCells Domain = iota
	// PrimariesOnly restricts faults to primary cells, an ablation policy
	// for the case-study experiment.
	PrimariesOnly
)

// String names the domain.
func (d Domain) String() string {
	if d == PrimariesOnly {
		return "primaries-only"
	}
	return "all-cells"
}

// FixedCount marks exactly m distinct cells faulty, drawn uniformly from the
// domain. It returns an error if m exceeds the domain size. The draw buffer
// is the injector's cached pool, refilled from the domain each call: the
// sequence of faults for a given seed is exactly what a freshly allocated
// pool would produce, but steady-state Monte-Carlo loops allocate nothing.
func (in *Injector) FixedCount(arr *layout.Array, m int, domain Domain, dst *FaultSet) (*FaultSet, error) {
	dst = in.prepare(arr, dst)
	var pool []layout.CellID
	switch domain {
	case AllCells:
		pool = in.poolOf(arr.NumCells())
		for i := range pool {
			pool[i] = layout.CellID(i)
		}
	case PrimariesOnly:
		pool = in.poolOf(len(arr.Primaries()))
		copy(pool, arr.Primaries())
	default:
		return nil, fmt.Errorf("defects: unknown domain %d", domain)
	}
	if m < 0 || m > len(pool) {
		return nil, fmt.Errorf("defects: cannot fail %d of %d cells", m, len(pool))
	}
	// Partial Fisher-Yates: draw m distinct cells.
	for i := 0; i < m; i++ {
		j := i + in.rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		dst.MarkFaulty(pool[i])
	}
	return dst, nil
}

// CatalogParams tunes defect-catalog generation.
type CatalogParams struct {
	// Lambda is the expected number of defects on the array.
	Lambda float64
	// ParametricShare is the fraction of defects that are parametric.
	ParametricShare float64
	// Tolerance is the relative deviation above which a parametric defect
	// makes its cell faulty (e.g. 0.15 = 15%).
	Tolerance float64
	// DeviationSigma is the standard deviation of parametric deviations.
	DeviationSigma float64
}

// DefaultCatalogParams returns parameters producing a realistic mixed-defect
// population: mostly catastrophic spot defects with a parametric tail.
func DefaultCatalogParams(lambda float64) CatalogParams {
	return CatalogParams{
		Lambda:          lambda,
		ParametricShare: 0.35,
		Tolerance:       0.15,
		DeviationSigma:  0.12,
	}
}

// Catalog draws a full defect catalog: a Poisson(λ) number of spot defects,
// each assigned a kind, location, and (for parametric defects) a Gaussian
// deviation checked against the tolerance. Cells become faulty for every
// catastrophic defect and for parametric defects beyond tolerance; a
// sub-tolerance parametric defect is recorded but leaves the cell usable.
func (in *Injector) Catalog(arr *layout.Array, params CatalogParams) (*FaultSet, []Defect) {
	fs := NewFaultSet(arr.NumCells())
	n := in.poisson(params.Lambda)
	var subTolerance []Defect
	for i := 0; i < n; i++ {
		cell := layout.CellID(in.rng.Intn(arr.NumCells()))
		if in.rng.Float64() < params.ParametricShare {
			kinds := ParametricKinds()
			d := Defect{
				Kind:      kinds[in.rng.Intn(len(kinds))],
				Cell:      cell,
				Other:     layout.NoCell,
				Deviation: in.rng.NormFloat64() * params.DeviationSigma,
			}
			if abs(d.Deviation) > params.Tolerance {
				fs.AddDefect(d)
			} else {
				subTolerance = append(subTolerance, d)
			}
			continue
		}
		kinds := CatastrophicKinds()
		d := Defect{Kind: kinds[in.rng.Intn(len(kinds))], Cell: cell, Other: layout.NoCell}
		if d.Kind == ElectrodeShort {
			nbrs := arr.Neighbors(cell)
			if len(nbrs) > 0 {
				d.Other = nbrs[in.rng.Intn(len(nbrs))]
			}
		}
		fs.AddDefect(d)
	}
	sort.Slice(subTolerance, func(i, j int) bool { return subTolerance[i].Cell < subTolerance[j].Cell })
	return fs, subTolerance
}

// poisson draws from Poisson(lambda). Knuth's product method underflows once
// exp(−λ) leaves float64 range (λ ≳ 745), silently capping the draw near
// 750, so large rates are split into independent chunks first —
// Poisson(a+b) = Poisson(a) + Poisson(b) — keeping the sampler exact at the
// array-scale rates the clustered-defect model produces.
func (in *Injector) poisson(lambda float64) int {
	const chunk = 256 // exp(-256) ≈ 1.5e-111, far from underflow
	k := 0
	for lambda > chunk {
		k += in.poissonKnuth(chunk)
		lambda -= chunk
	}
	return k + in.poissonKnuth(lambda)
}

// poissonKnuth draws from Poisson(lambda) by Knuth's product method; lambda
// must be small enough that exp(−lambda) is comfortably representable.
func (in *Injector) poissonKnuth(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= in.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// poolOf returns the injector's cached draw buffer resliced to size,
// reallocating only on growth. Contents are stale; callers refill it.
func (in *Injector) poolOf(size int) []layout.CellID {
	if cap(in.pool) < size {
		in.pool = make([]layout.CellID, size)
	}
	in.pool = in.pool[:size]
	return in.pool
}

func (in *Injector) prepare(arr *layout.Array, dst *FaultSet) *FaultSet {
	if dst == nil || dst.NumCells() != arr.NumCells() {
		return NewFaultSet(arr.NumCells())
	}
	dst.Clear()
	return dst
}
