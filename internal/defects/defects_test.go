package defects

import (
	"math"
	"strings"
	"testing"

	"dmfb/internal/layout"
)

func testArray(t *testing.T) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestKindClassification(t *testing.T) {
	for _, k := range CatastrophicKinds() {
		if k.Class() != Catastrophic {
			t.Errorf("%v classified %v", k, k.Class())
		}
	}
	for _, k := range ParametricKinds() {
		if k.Class() != Parametric {
			t.Errorf("%v classified %v", k, k.Class())
		}
	}
	if len(CatastrophicKinds()) != 3 || len(ParametricKinds()) != 3 {
		t.Error("paper lists three defects per class")
	}
}

func TestClassAndKindStrings(t *testing.T) {
	if Catastrophic.String() != "catastrophic" || Parametric.String() != "parametric" {
		t.Error("Class.String wrong")
	}
	for _, k := range append(CatastrophicKinds(), ParametricKinds()...) {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}

func TestDefectString(t *testing.T) {
	d := Defect{Kind: ElectrodeShort, Cell: 3, Other: 4}
	if !strings.Contains(d.String(), "3") || !strings.Contains(d.String(), "4") {
		t.Errorf("short defect string %q lacks cells", d)
	}
	p := Defect{Kind: PlateGapDeviation, Cell: 7, Other: layout.NoCell, Deviation: 0.21}
	if !strings.Contains(p.String(), "21.0%") {
		t.Errorf("parametric defect string %q lacks deviation", p)
	}
	c := Defect{Kind: OpenConnection, Cell: 9, Other: layout.NoCell}
	if !strings.Contains(c.String(), "cell 9") {
		t.Errorf("catastrophic defect string %q", c)
	}
}

func TestFaultSetBasics(t *testing.T) {
	fs := NewFaultSet(10)
	if fs.Count() != 0 || fs.NumCells() != 10 {
		t.Fatal("fresh fault set not empty")
	}
	fs.MarkFaulty(3)
	fs.MarkFaulty(3) // idempotent
	fs.MarkFaulty(7)
	if fs.Count() != 2 {
		t.Errorf("Count = %d, want 2", fs.Count())
	}
	if !fs.IsFaulty(3) || fs.IsFaulty(4) {
		t.Error("IsFaulty wrong")
	}
	cells := fs.FaultyCells()
	if len(cells) != 2 || cells[0] != 3 || cells[1] != 7 {
		t.Errorf("FaultyCells = %v", cells)
	}
	fs.Clear()
	if fs.Count() != 0 || fs.IsFaulty(3) || len(fs.Defects()) != 0 {
		t.Error("Clear incomplete")
	}
}

func TestAddDefectShortMarksBothCells(t *testing.T) {
	fs := NewFaultSet(10)
	fs.AddDefect(Defect{Kind: ElectrodeShort, Cell: 2, Other: 5})
	if !fs.IsFaulty(2) || !fs.IsFaulty(5) || fs.Count() != 2 {
		t.Error("electrode short must fail both electrodes")
	}
	fs.AddDefect(Defect{Kind: OpenConnection, Cell: 8, Other: layout.NoCell})
	if fs.Count() != 3 || len(fs.Defects()) != 2 {
		t.Error("defect bookkeeping wrong")
	}
}

func TestFaultyPartitionByRole(t *testing.T) {
	arr := testArray(t)
	fs := NewFaultSet(arr.NumCells())
	prim := arr.Primaries()[0]
	spare := arr.Spares()[0]
	fs.MarkFaulty(prim)
	fs.MarkFaulty(spare)
	fp := fs.FaultyPrimaries(arr)
	fsp := fs.FaultySpares(arr)
	if len(fp) != 1 || fp[0] != prim {
		t.Errorf("FaultyPrimaries = %v", fp)
	}
	if len(fsp) != 1 || fsp[0] != spare {
		t.Errorf("FaultySpares = %v", fsp)
	}
}

func TestBernoulliRateApproximation(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(1234)
	const (
		p      = 0.9
		rounds = 400
	)
	total := 0
	var fs *FaultSet
	for i := 0; i < rounds; i++ {
		fs = in.Bernoulli(arr, p, fs)
		total += fs.Count()
	}
	rate := float64(total) / float64(rounds*arr.NumCells())
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("empirical failure rate %.4f, want ≈ 0.10", rate)
	}
}

func TestBernoulliEdgeProbabilities(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(9)
	fs := in.Bernoulli(arr, 1.0, nil)
	if fs.Count() != 0 {
		t.Errorf("p=1: %d faults", fs.Count())
	}
	fs = in.Bernoulli(arr, 0.0, fs)
	if fs.Count() != arr.NumCells() {
		t.Errorf("p=0: %d faults, want %d", fs.Count(), arr.NumCells())
	}
}

func TestBernoulliReusesDst(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(5)
	fs1 := in.Bernoulli(arr, 0.9, nil)
	fs2 := in.Bernoulli(arr, 0.9, fs1)
	if fs1 != fs2 {
		t.Error("Bernoulli should reuse matching dst")
	}
	wrong := NewFaultSet(3)
	fs3 := in.Bernoulli(arr, 0.9, wrong)
	if fs3 == wrong {
		t.Error("Bernoulli must replace mismatched dst")
	}
}

func TestBernoulliDeterministicPerSeed(t *testing.T) {
	arr := testArray(t)
	a := NewInjector(77).Bernoulli(arr, 0.9, nil)
	b := NewInjector(77).Bernoulli(arr, 0.9, nil)
	for i := 0; i < arr.NumCells(); i++ {
		if a.IsFaulty(layout.CellID(i)) != b.IsFaulty(layout.CellID(i)) {
			t.Fatal("same seed produced different fault sets")
		}
	}
}

func TestFixedCountExact(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(31)
	for _, m := range []int{0, 1, 10, 35, arr.NumCells()} {
		fs, err := in.FixedCount(arr, m, AllCells, nil)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if fs.Count() != m {
			t.Errorf("m=%d: Count = %d", m, fs.Count())
		}
	}
}

func TestFixedCountPrimariesOnly(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(8)
	fs, err := in.FixedCount(arr, 20, PrimariesOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.FaultySpares(arr)) != 0 {
		t.Error("primaries-only domain hit a spare")
	}
	if len(fs.FaultyPrimaries(arr)) != 20 {
		t.Errorf("faulty primaries %d, want 20", len(fs.FaultyPrimaries(arr)))
	}
}

func TestFixedCountErrors(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(1)
	if _, err := in.FixedCount(arr, -1, AllCells, nil); err == nil {
		t.Error("negative m should fail")
	}
	if _, err := in.FixedCount(arr, arr.NumCells()+1, AllCells, nil); err == nil {
		t.Error("m > cells should fail")
	}
	if _, err := in.FixedCount(arr, 1, Domain(9), nil); err == nil {
		t.Error("unknown domain should fail")
	}
}

func TestFixedCountUniformity(t *testing.T) {
	// Every cell should be hit roughly equally often.
	arr := testArray(t)
	in := NewInjector(2024)
	hits := make([]int, arr.NumCells())
	const rounds = 3000
	var fs *FaultSet
	var err error
	for i := 0; i < rounds; i++ {
		fs, err = in.FixedCount(arr, 10, AllCells, fs)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range fs.FaultyCells() {
			hits[id]++
		}
	}
	expected := float64(rounds*10) / float64(arr.NumCells())
	for id, h := range hits {
		if math.Abs(float64(h)-expected) > expected*0.35 {
			t.Errorf("cell %d hit %d times, expected ≈ %.0f", id, h, expected)
		}
	}
}

func TestDomainString(t *testing.T) {
	if AllCells.String() != "all-cells" || PrimariesOnly.String() != "primaries-only" {
		t.Error("Domain.String wrong")
	}
}

func TestCatalogPopulation(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(606)
	params := DefaultCatalogParams(12)
	totalDefects := 0
	totalSub := 0
	for i := 0; i < 50; i++ {
		fs, sub := in.Catalog(arr, params)
		totalDefects += len(fs.Defects())
		totalSub += len(sub)
		for _, d := range fs.Defects() {
			if d.Kind.Class() == Parametric && abs(d.Deviation) <= params.Tolerance {
				t.Errorf("sub-tolerance parametric defect %v marked faulty", d)
			}
			if d.Kind == ElectrodeShort && d.Other != layout.NoCell {
				// The short's partner must be an actual neighbor.
				found := false
				for _, nb := range arr.Neighbors(d.Cell) {
					if nb == d.Other {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("short partner %d not adjacent to %d", d.Other, d.Cell)
				}
			}
		}
		for _, d := range sub {
			if d.Kind.Class() != Parametric {
				t.Errorf("catastrophic defect %v in sub-tolerance list", d)
			}
			if fs.IsFaulty(d.Cell) {
				// A cell may be faulty from another defect; only flag when
				// the sub-tolerance defect is the sole defect on the cell.
				solo := true
				for _, dd := range fs.Defects() {
					if dd.Cell == d.Cell || (dd.Kind == ElectrodeShort && dd.Other == d.Cell) {
						solo = false
						break
					}
				}
				if solo {
					t.Errorf("cell %d faulty with only sub-tolerance defect", d.Cell)
				}
			}
		}
	}
	// Poisson(12) over 50 rounds: expect about 600 defect draws in total
	// (faulty + sub-tolerance). Allow wide slack.
	got := totalDefects + totalSub
	if got < 400 || got > 800 {
		t.Errorf("defect volume %d far from expectation 600", got)
	}
	if totalSub == 0 {
		t.Error("expected some sub-tolerance parametric defects")
	}
}

func TestCatalogZeroLambda(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(3)
	fs, sub := in.Catalog(arr, DefaultCatalogParams(0))
	if fs.Count() != 0 || len(sub) != 0 {
		t.Error("lambda=0 must produce no defects")
	}
}

func BenchmarkBernoulli(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	in := NewInjector(1)
	var fs *FaultSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs = in.Bernoulli(arr, 0.95, fs)
	}
}

func BenchmarkFixedCount35(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 252)
	if err != nil {
		b.Fatal(err)
	}
	in := NewInjector(1)
	var fs *FaultSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fs, err = in.FixedCount(arr, 35, AllCells, fs)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestBernoulliNDeterministicAndReusesDst(t *testing.T) {
	const n = 200
	fs1 := NewInjector(9).BernoulliN(n, 0.9, nil)
	fs2 := NewInjector(9).BernoulliN(n, 0.9, nil)
	if fs1.Count() == 0 || fs1.Count() == n {
		t.Fatalf("degenerate fault count %d", fs1.Count())
	}
	for i := 0; i < n; i++ {
		if fs1.IsFaulty(layout.CellID(i)) != fs2.IsFaulty(layout.CellID(i)) {
			t.Fatalf("same seed diverged at cell %d", i)
		}
	}
	// A matching-size dst is cleared and reused; a mismatched one replaced.
	reused := NewInjector(10).BernoulliN(n, 1.0, fs1)
	if reused != fs1 {
		t.Error("matching-size dst not reused")
	}
	if reused.Count() != 0 {
		t.Errorf("p=1 left %d faults", reused.Count())
	}
	replaced := NewInjector(10).BernoulliN(n+1, 0.9, fs1)
	if replaced == fs1 {
		t.Error("mismatched dst must be replaced")
	}
	if replaced.NumCells() != n+1 {
		t.Errorf("replacement sized %d", replaced.NumCells())
	}
}

func TestBernoulliNAllFailAtPZero(t *testing.T) {
	fs := NewInjector(1).BernoulliN(50, 0, nil)
	if fs.Count() != 50 {
		t.Errorf("p=0 failed %d of 50 cells", fs.Count())
	}
}
