package defects

import (
	"math"
	"testing"

	"dmfb/internal/layout"
)

// TestAnyFaultyPrimary checks the allocation-free verdict against the
// slice-materializing reference on assorted fault sets.
func TestAnyFaultyPrimary(t *testing.T) {
	arr := testArray(t)
	fs := NewFaultSet(arr.NumCells())
	if fs.AnyFaultyPrimary(arr) {
		t.Fatal("empty fault set reports a faulty primary")
	}
	// Spares only: count > 0 but no faulty primary.
	for _, id := range arr.Spares()[:3] {
		fs.MarkFaulty(id)
	}
	if fs.AnyFaultyPrimary(arr) {
		t.Fatal("spare-only fault set reports a faulty primary")
	}
	fs.MarkFaulty(arr.Primaries()[len(arr.Primaries())-1])
	if !fs.AnyFaultyPrimary(arr) {
		t.Fatal("faulty primary not detected")
	}
	// Randomized agreement with FaultyPrimaries.
	in := NewInjector(9)
	var dst *FaultSet
	for seed := 0; seed < 50; seed++ {
		dst = in.Bernoulli(arr, 0.97, dst)
		if got, want := dst.AnyFaultyPrimary(arr), len(dst.FaultyPrimaries(arr)) > 0; got != want {
			t.Fatalf("seed %d: AnyFaultyPrimary=%v, reference=%v", seed, got, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { fs.AnyFaultyPrimary(arr) })
	if allocs != 0 {
		t.Fatalf("AnyFaultyPrimary allocates %.1f times per run, want 0", allocs)
	}
}

// TestReseedMatchesFreshInjector checks that Reseed rewinds onto exactly the
// stream a fresh injector would produce, regardless of prior use — the
// property the chunked kernel relies on when reusing one injector per worker.
func TestReseedMatchesFreshInjector(t *testing.T) {
	arr := testArray(t)
	used := NewInjector(1)
	// Dirty the injector's rng and pool with unrelated draws.
	var scratch *FaultSet
	scratch = used.Bernoulli(arr, 0.5, scratch)
	if _, err := used.FixedCount(arr, 17, PrimariesOnly, scratch); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{0, 1, -4, 1 << 40} {
		used.Reseed(seed)
		fresh := NewInjector(seed)
		a := used.Bernoulli(arr, 0.9, nil)
		b := fresh.Bernoulli(arr, 0.9, nil)
		if !sameFaults(a, b) {
			t.Fatalf("seed %d: reseeded Bernoulli differs from fresh injector", seed)
		}
		ac, err := used.FixedCount(arr, 11, AllCells, a)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := fresh.FixedCount(arr, 11, AllCells, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFaults(ac, bc) {
			t.Fatalf("seed %d: reseeded FixedCount differs from fresh injector", seed)
		}
	}
}

func sameFaults(a, b *FaultSet) bool {
	if a.NumCells() != b.NumCells() || a.Count() != b.Count() {
		return false
	}
	for i := 0; i < a.NumCells(); i++ {
		if a.IsFaulty(layout.CellID(i)) != b.IsFaulty(layout.CellID(i)) {
			return false
		}
	}
	return true
}

// TestBernoulliGeomRate checks that the skip-sampler's realized fault rate
// matches the target q = 1−p (same marginal distribution as BernoulliN).
func TestBernoulliGeomRate(t *testing.T) {
	const numCells, p, draws = 400, 0.95, 3000
	in := NewInjector(5)
	var fs *FaultSet
	total := 0
	first, last := 0, 0
	for i := 0; i < draws; i++ {
		fs = in.BernoulliGeomN(numCells, p, fs)
		total += fs.Count()
		if fs.IsFaulty(0) {
			first++
		}
		if fs.IsFaulty(numCells - 1) {
			last++
		}
	}
	q := 1 - p
	mean := float64(total) / draws
	want := q * numCells
	// 5-sigma band on the mean of `draws` binomial draws.
	sigma := 5 * math.Sqrt(float64(numCells)*q*p/draws)
	if math.Abs(mean-want) > sigma {
		t.Fatalf("mean fault count %.2f, want %.2f ± %.2f", mean, want, sigma)
	}
	// Boundary cells must carry the same marginal rate (off-by-one guard).
	cellSigma := 5 * math.Sqrt(q*p/draws)
	for name, hits := range map[string]int{"first": first, "last": last} {
		rate := float64(hits) / draws
		if math.Abs(rate-q) > cellSigma {
			t.Fatalf("%s cell fault rate %.4f, want %.4f ± %.4f", name, rate, q, cellSigma)
		}
	}
}

// TestBernoulliGeomDeterministicAndEdges pins seed determinism, dst reuse,
// the p-extremes, and the layout.Array wrapper.
func TestBernoulliGeomDeterministicAndEdges(t *testing.T) {
	arr := testArray(t)
	a := NewInjector(3).BernoulliGeom(arr, 0.9, nil)
	b := NewInjector(3).BernoulliGeom(arr, 0.9, nil)
	if !sameFaults(a, b) {
		t.Fatal("same seed produced different skip-sampled fault sets")
	}
	reused := NewInjector(3).BernoulliGeom(arr, 0.9, NewFaultSet(arr.NumCells()))
	if !sameFaults(a, reused) {
		t.Fatal("dst reuse changed the draw")
	}
	if fs := NewInjector(1).BernoulliGeomN(50, 1.0, nil); fs.Count() != 0 {
		t.Fatalf("p=1 produced %d faults", fs.Count())
	}
	if fs := NewInjector(1).BernoulliGeomN(50, 0.0, nil); fs.Count() != 50 {
		t.Fatalf("p=0 produced %d faults, want all 50", fs.Count())
	}
	// NaN degrades to the empty set like BernoulliN, instead of panicking.
	if fs := NewInjector(1).BernoulliGeomN(50, math.NaN(), nil); fs.Count() != 0 {
		t.Fatalf("p=NaN produced %d faults, want 0", fs.Count())
	}
	allocs := testing.AllocsPerRun(100, func() { a = NewInjector(2).BernoulliGeomN(arr.NumCells(), 0.95, a) })
	if allocs > 3 { // the injector itself; the draw must not add to it
		t.Fatalf("BernoulliGeomN allocates %.1f times per run", allocs)
	}
}

// TestFixedCountPoolSteadyStateZeroAllocs pins the cached-pool fast path:
// after the first draw, fixed-count injection allocates nothing.
func TestFixedCountPoolSteadyStateZeroAllocs(t *testing.T) {
	arr := testArray(t)
	in := NewInjector(4)
	var fs *FaultSet
	var err error
	for _, domain := range []Domain{AllCells, PrimariesOnly} {
		if fs, err = in.FixedCount(arr, 20, domain, fs); err != nil { // warm pool + dst
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			var e error
			fs, e = in.FixedCount(arr, 20, domain, fs)
			if e != nil {
				t.Fatal(e)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v: steady-state FixedCount allocates %.1f times per run, want 0", domain, allocs)
		}
	}
}

// TestFixedCountHistoryIndependent checks that a dirty cached pool cannot
// leak into the next draw: the fault sequence for a seed is identical
// whether the injector is fresh or has served arbitrary prior draws.
func TestFixedCountHistoryIndependent(t *testing.T) {
	arr := testArray(t)
	dirty := NewInjector(0)
	var fs *FaultSet
	var err error
	for m := 1; m < 30; m += 7 { // leave the pool partially shuffled
		if fs, err = dirty.FixedCount(arr, m, AllCells, fs); err != nil {
			t.Fatal(err)
		}
	}
	dirty.Reseed(77)
	fresh := NewInjector(77)
	for i := 0; i < 10; i++ {
		a, err := dirty.FixedCount(arr, 15, AllCells, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.FixedCount(arr, 15, AllCells, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFaults(a, b) {
			t.Fatalf("draw %d: dirty-pool injector diverged from fresh injector", i)
		}
	}
}
