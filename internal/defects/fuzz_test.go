package defects

import (
	"math/rand"
	"testing"

	"dmfb/internal/layout"
)

// FuzzFaultSetSignature fuzzes the two properties feasibility memoization
// rests on: within a single-word cell-ID space (≤ 64 cells, every array the
// memo accepts a signature shortcut for) the signature is injective —
// distinct fault sets can never collide — and for any size it is a pure
// function of the final bit state, stable across insertion order. Corpus
// seeds run in plain `go test`; `go test -fuzz FuzzFaultSetSignature`
// explores further.
func FuzzFaultSetSignature(f *testing.F) {
	f.Add(uint64(0), uint64(1), int64(1))
	f.Add(uint64(1), uint64(2), int64(7))
	f.Add(^uint64(0), ^uint64(0)>>1, int64(42))
	f.Add(uint64(0x8000000000000001), uint64(0x0000000180000000), int64(-3))
	f.Add(uint64(0xAAAAAAAAAAAAAAAA), uint64(0x5555555555555555), int64(99))
	f.Fuzz(func(t *testing.T, a, b uint64, permSeed int64) {
		const numCells = 64
		fa := fromBits(numCells, a, nil)
		fb := fromBits(numCells, b, nil)
		if a != b && fa.Signature() == fb.Signature() {
			t.Fatalf("signature collision within 64-cell space: %#x and %#x both map to %#x",
				a, b, fa.Signature())
		}
		if a == b && fa.Signature() != fb.Signature() {
			t.Fatalf("equal fault sets, unequal signatures: %#x vs %#x", fa.Signature(), fb.Signature())
		}
		// Insertion order must not matter: re-mark a's cells in a shuffled
		// order (with duplicates, which MarkFaulty must absorb).
		rng := rand.New(rand.NewSource(permSeed))
		shuffled := fromBits(numCells, a, rng)
		if shuffled.Signature() != fa.Signature() {
			t.Fatalf("signature depends on insertion order: %#x vs %#x",
				shuffled.Signature(), fa.Signature())
		}
		if shuffled.Count() != fa.Count() {
			t.Fatalf("count depends on insertion order: %d vs %d", shuffled.Count(), fa.Count())
		}
		// The package-level form over raw words must agree with the method.
		if got := SignatureOfWords(fa.Words()); got != fa.Signature() {
			t.Fatalf("SignatureOfWords = %#x, Signature = %#x", got, fa.Signature())
		}
		// Multi-word stability: the same 64 bits placed in a 128-cell space
		// must still be order-independent (injectivity is only promised for
		// one word, order-independence always).
		wide := fromBits(128, a, nil)
		wideShuffled := fromBits(128, a, rng)
		if wide.Signature() != wideShuffled.Signature() {
			t.Fatal("multi-word signature depends on insertion order")
		}
	})
}

// fromBits builds a fault set over numCells cells whose faulty cells are the
// set bits of pattern, marking them in ascending order, or — when rng is
// non-nil — in a shuffled order with each cell marked one extra time.
func fromBits(numCells int, pattern uint64, rng *rand.Rand) *FaultSet {
	fs := NewFaultSet(numCells)
	ids := make([]layout.CellID, 0, 64)
	for i := 0; i < 64 && i < numCells; i++ {
		if pattern>>uint(i)&1 == 1 {
			ids = append(ids, layout.CellID(i))
		}
	}
	if rng != nil {
		ids = append(ids, ids...) // duplicates must be no-ops
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}
	for _, id := range ids {
		fs.MarkFaulty(id)
	}
	return fs
}
