package dispatch

// Chaos suite: randomized but seeded fault schedules against a real
// coordinator + in-process worker fleet. The invariant under every schedule
// is the one the whole system is built around: a job that survives chaos
// streams bytes identical to a fault-free single-process run at every
// cursor, and a job that does not survive fails with a typed, observable
// error — never a hang, never silently wrong bytes. These tests run under
// -race in CI's chaos job (go test -race -run Chaos -count=2).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dmfb/client"
	"dmfb/internal/faultinject"
	"dmfb/internal/service"
)

// addChaosWorker starts a worker whose loop and coordinator client run under
// a chaos schedule: winj arms the worker-loop seams (crash, slow, duplicate
// and corrupt submits), tinj arms the HTTP transport between worker and
// coordinator. Either may be nil.
func (c *cluster) addChaosWorker(t *testing.T, winj, tinj *faultinject.Injector) context.CancelFunc {
	t.Helper()
	c.nextID++
	name := fmt.Sprintf("cw%d", c.nextID)
	cfg := WorkerConfig{
		Coordinator: c.srv.URL,
		Name:        name,
		Engine:      service.EngineConfig{CacheSize: 64},
		Poll:        20 * time.Millisecond,
		Inject:      winj,
	}
	if tinj != nil {
		cfg.ClientOptions = []client.Option{client.WithHTTPClient(&http.Client{
			Transport: &faultinject.Transport{Inject: tinj},
		})}
	}
	wctx, wcancel := context.WithCancel(c.ctx)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if err := RunWorker(wctx, cfg); err != nil && wctx.Err() == nil {
			t.Errorf("chaos worker %s: %v", name, err)
		}
	}()
	return wcancel
}

// newDurableCluster is newCluster on a durable file store, for chaos runs
// that mix disk persistence with network and worker faults.
func newDurableCluster(t *testing.T, cfg Config, dir string, storeInj *faultinject.Injector) *cluster {
	t.Helper()
	e := coordEngine()
	cfg.Registry = e.Registry()
	coord := NewCoordinator(cfg)
	store, err := service.NewFileJobStore(e, service.JobStoreConfig{Runner: coord, Inject: storeInj}, dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewMux(e, store, coord.Routes()...))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{engine: e, store: store, coord: coord, srv: srv, ctx: ctx, cancel: cancel}
	t.Cleanup(func() {
		cancel()
		c.wg.Wait()
		closeCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
		defer done()
		if err := store.Close(closeCtx); err != nil {
			t.Errorf("store close: %v", err)
		}
		coord.Close()
		srv.Close()
	})
	deadline := time.Now().Add(10 * time.Second)
	for !store.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("durable store never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c
}

func createDistributed(t *testing.T, cl *cluster, req service.SweepRequest) *service.Job {
	t.Helper()
	req.Distributed = true
	j, err := cl.store.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func waitTerminal(t *testing.T, j *service.Job, timeout time.Duration) service.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job never reached a terminal state: %v", err)
	}
	return st
}

// TestChaosTransportFaults runs a fleet whose every coordinator exchange
// passes through a faulty transport — resets, injected latency, synthetic
// 503s, truncated response bodies — and requires the finished job to match
// the fault-free golden byte for byte. Then it re-reads the stream through a
// chaotic client transport and requires the exact same record sequence.
func TestChaosTransportFaults(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)
	cl := newCluster(t, Config{LeaseTTL: 2 * time.Second, ShardSize: 3}, 0)
	for i := uint64(0); i < 2; i++ {
		tinj := faultinject.New(100+i).
			Arm(faultinject.TransportReset, faultinject.Rule{Prob: 0.1}).
			Arm(faultinject.Transport5xx, faultinject.Rule{Prob: 0.1}).
			Arm(faultinject.TransportTruncate, faultinject.Rule{Prob: 0.05}).
			Arm(faultinject.TransportLatency, faultinject.Rule{Prob: 0.2, Delay: 5 * time.Millisecond})
		cl.addChaosWorker(t, nil, tinj)
	}
	j := createDistributed(t, cl, req)
	st := waitTerminal(t, j, 120*time.Second)
	if st.State != service.JobCompleted {
		t.Fatalf("job under transport chaos: %+v", st)
	}
	assertGolden(t, j, golden)

	// Client-side: a clean stream is the reference; a stream whose first
	// response is truncated mid-body and whose first resumption is reset
	// must reconnect from its cursor and deliver the identical sequence.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var want []client.SweepRecord
	clean := client.New(cl.srv.URL)
	if _, err := clean.StreamJobResults(ctx, j.ID(), 0, func(r client.SweepRecord) error {
		want = append(want, r)
		return nil
	}); err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if len(want) != st.TotalPoints {
		t.Fatalf("clean stream has %d records, want %d", len(want), st.TotalPoints)
	}
	sinj := faultinject.New(7).
		Arm(faultinject.TransportTruncate, faultinject.Rule{Hits: []int{1}}).
		Arm(faultinject.TransportReset, faultinject.Rule{Hits: []int{2}})
	chaotic := client.New(cl.srv.URL,
		client.WithHTTPClient(&http.Client{Transport: &faultinject.Transport{Inject: sinj}}),
		client.WithPolicy(client.Policy{MaxAttempts: 6, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}))
	var got []client.SweepRecord
	if _, err := chaotic.StreamJobResults(ctx, j.ID(), 0, func(r client.SweepRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("chaos stream: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos stream diverges from clean stream: got %d records, want %d", len(got), len(want))
	}
}

// TestChaosWorkerCrashes kills workers mid-shard (deterministically on the
// first lease, probabilistically after) and requires completion, byte
// identity, and a visible retry count.
func TestChaosWorkerCrashes(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)
	cl := newCluster(t, Config{LeaseTTL: time.Second, ShardSize: 3, MaxShardDispatches: 20}, 0)
	w1 := faultinject.New(1).Arm(faultinject.WorkerCrash, faultinject.Rule{Hits: []int{1}, Prob: 0.2, Limit: 3})
	w2 := faultinject.New(2).Arm(faultinject.WorkerCrash, faultinject.Rule{Prob: 0.2, Limit: 3})
	cl.addChaosWorker(t, w1, nil)
	cl.addChaosWorker(t, w2, nil)
	j := createDistributed(t, cl, req)
	st := waitTerminal(t, j, 120*time.Second)
	if st.State != service.JobCompleted {
		t.Fatalf("job under crash chaos: %+v", st)
	}
	assertGolden(t, j, golden)
	stats := cl.coord.Stats()
	if stats.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1 (w1 crashed its first shard)", stats.Retries)
	}
	if stats.ShardsQuarantined != 0 {
		t.Errorf("ShardsQuarantined = %d, want 0 under a survivable schedule", stats.ShardsQuarantined)
	}
}

// TestChaosQuarantinePoisonShard arms a worker that crashes on every lease:
// the shard burns its dispatch budget, the coordinator quarantines it, and
// the job fails promptly with the typed poison-shard diagnosis instead of
// redispatching forever.
func TestChaosQuarantinePoisonShard(t *testing.T) {
	req := distReq()
	cl := newCluster(t, Config{LeaseTTL: 200 * time.Millisecond, ShardSize: 8, MaxShardDispatches: 2}, 0)
	winj := faultinject.New(3).Arm(faultinject.WorkerCrash, faultinject.Rule{Prob: 1})
	cl.addChaosWorker(t, winj, nil)
	j := createDistributed(t, cl, req)
	st := waitTerminal(t, j, 60*time.Second)
	if st.State != service.JobFailed {
		t.Fatalf("state = %q, want %q", st.State, service.JobFailed)
	}
	if st.Reason != service.ReasonPoisonShard {
		t.Errorf("reason = %q, want %q", st.Reason, service.ReasonPoisonShard)
	}
	if !strings.Contains(st.Error, "quarantined") {
		t.Errorf("error %q does not name the quarantine", st.Error)
	}
	if got := cl.coord.Stats().ShardsQuarantined; got < 1 {
		t.Errorf("ShardsQuarantined = %d, want >= 1", got)
	}
}

// TestChaosDuplicateAndCorruptSubmit exercises the two submission faults:
// a worker that always double-submits (the coordinator must accept exactly
// one copy per shard) and a worker whose first submission is structurally
// corrupted (the coordinator must reject it outright and redispatch).
func TestChaosDuplicateAndCorruptSubmit(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)

	t.Run("duplicate", func(t *testing.T) {
		cl := newCluster(t, Config{LeaseTTL: 2 * time.Second, ShardSize: 3}, 0)
		winj := faultinject.New(4).Arm(faultinject.WorkerDuplicateSubmit, faultinject.Rule{Prob: 1})
		cl.addChaosWorker(t, winj, nil)
		j := createDistributed(t, cl, req)
		st := waitTerminal(t, j, 120*time.Second)
		if st.State != service.JobCompleted {
			t.Fatalf("job under duplicate-submit chaos: %+v", st)
		}
		assertGolden(t, j, golden)
		// 16 points / shard size 3 = 6 shards, each submitted twice;
		// first-wins means exactly one acceptance per shard.
		if got := cl.coord.Stats().ShardsCompleted; got != 6 {
			t.Errorf("ShardsCompleted = %d, want 6 (duplicates must not double-count)", got)
		}
		// The job can reach terminal before the last shard's duplicate is
		// replayed, so only a lower bound on fires is race-free.
		if _, fires := winj.Counts(faultinject.WorkerDuplicateSubmit); fires < 1 {
			t.Errorf("duplicate submissions fired %d times, want >= 1", fires)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		cl := newCluster(t, Config{LeaseTTL: 500 * time.Millisecond, ShardSize: 16}, 0)
		winj := faultinject.New(5).Arm(faultinject.WorkerCorruptSubmit, faultinject.Rule{Hits: []int{1}})
		cl.addChaosWorker(t, winj, nil)
		j := createDistributed(t, cl, req)
		st := waitTerminal(t, j, 120*time.Second)
		if st.State != service.JobCompleted {
			t.Fatalf("job under corrupt-submit chaos: %+v", st)
		}
		assertGolden(t, j, golden)
		if got := cl.coord.Stats().Retries; got < 1 {
			t.Errorf("Retries = %d, want >= 1 (corrupted shard must be redispatched)", got)
		}
	})
}

// TestChaosLeaseExpiryDiscardsLoser drives the lease-TTL edge directly: a
// worker evaluates a shard, its lease expires just before submission, a twin
// re-leases and submits first. The loser's late submission must answer
// errGone (410 on the wire) with its records fully discarded, and the final
// stream must still match the golden bytes exactly.
func TestChaosLeaseExpiryDiscardsLoser(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)
	e := coordEngine()
	// A long TTL keeps the janitor out of the way: expiry is forced
	// explicitly at the exact moment under test.
	coord := NewCoordinator(Config{LeaseTTL: time.Minute, ShardSize: 4, Registry: e.Registry()})
	defer coord.Close()
	store := service.NewJobStore(e, service.JobStoreConfig{Runner: coord})
	defer store.Close(context.Background())
	req.Distributed = true
	j, err := store.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	loser := coord.register("loser")
	winner := coord.register("winner")
	l1 := pollLease(t, coord, loser.WorkerID)
	loserRecords := shardRecords(t, e, l1)

	// The loser's lease hits its TTL before the submission lands.
	coord.expireLeases(time.Now().Add(2 * time.Minute))
	if got := coord.Stats().ShardsExpired; got < 1 {
		t.Fatalf("ShardsExpired = %d after forced expiry, want >= 1", got)
	}

	// The twin re-leases the same shard under a fresh lease ID and wins.
	l2 := pollLease(t, coord, winner.WorkerID)
	if l2.Shard != l1.Shard || l2.LeaseID == l1.LeaseID {
		t.Fatalf("redispatch gave shard %d lease %s, want shard %d under a fresh lease", l2.Shard, l2.LeaseID, l1.Shard)
	}
	if err := coord.submit(service.ShardResultRequest{
		WorkerID: winner.WorkerID, LeaseID: l2.LeaseID,
		JobID: l2.JobID, Shard: l2.Shard, Records: shardRecords(t, e, l2),
	}); err != nil {
		t.Fatalf("winner submission: %v", err)
	}
	err = coord.submit(service.ShardResultRequest{
		WorkerID: loser.WorkerID, LeaseID: l1.LeaseID,
		JobID: l1.JobID, Shard: l1.Shard, Records: loserRecords,
	})
	if !errors.Is(err, errGone) {
		t.Fatalf("loser submission: err = %v, want errGone", err)
	}

	// Drain the remaining shards through the winner.
	for {
		l := coord.nextLease(winner.WorkerID)
		if l == nil {
			break
		}
		if err := coord.submit(service.ShardResultRequest{
			WorkerID: winner.WorkerID, LeaseID: l.LeaseID,
			JobID: l.JobID, Shard: l.Shard, Records: shardRecords(t, e, l),
		}); err != nil {
			t.Fatalf("drain shard %d: %v", l.Shard, err)
		}
	}
	st := waitTerminal(t, j, 120*time.Second)
	if st.State != service.JobCompleted {
		t.Fatalf("job after lease-expiry race: %+v", st)
	}
	assertGolden(t, j, golden)
	// 16 points / shard size 4 = 4 shards; the loser's copy was discarded,
	// not merged as a fifth acceptance.
	if got := coord.Stats().ShardsCompleted; got != 4 {
		t.Errorf("ShardsCompleted = %d, want 4", got)
	}
}

// TestChaosMixedFaults combines worker crashes, stalls, duplicate submits,
// and transport faults over several seeds, on a durable file-backed store —
// the closest in-process analog of the full production deployment — and
// requires byte identity for every surviving run.
func TestChaosMixedFaults(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cl := newDurableCluster(t, Config{LeaseTTL: time.Second, ShardSize: 3, MaxShardDispatches: 20}, t.TempDir(), nil)
			for i := uint64(0); i < 2; i++ {
				winj := faultinject.New(seed*10+i).
					Arm(faultinject.WorkerCrash, faultinject.Rule{Prob: 0.2, Limit: 2}).
					Arm(faultinject.WorkerSlow, faultinject.Rule{Prob: 0.3, Delay: 20 * time.Millisecond}).
					Arm(faultinject.WorkerDuplicateSubmit, faultinject.Rule{Prob: 0.3})
				tinj := faultinject.New(seed*100+i).
					Arm(faultinject.TransportReset, faultinject.Rule{Prob: 0.05}).
					Arm(faultinject.Transport5xx, faultinject.Rule{Prob: 0.05})
				cl.addChaosWorker(t, winj, tinj)
			}
			j := createDistributed(t, cl, req)
			st := waitTerminal(t, j, 120*time.Second)
			if st.State != service.JobCompleted {
				t.Fatalf("job under mixed chaos: %+v", st)
			}
			assertGolden(t, j, golden)
		})
	}
}

func pollLease(t *testing.T, coord *Coordinator, workerID string) *service.ShardLease {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if l := coord.nextLease(workerID); l != nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease available")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// shardRecords evaluates one lease exactly as a worker would.
func shardRecords(t *testing.T, e *service.Engine, l *service.ShardLease) []service.SweepRecord {
	t.Helper()
	plan, err := e.PlanSweep(l.Request)
	if err != nil {
		t.Fatal(err)
	}
	plan.SetChunkSize(l.ChunkSize)
	var records []service.SweepRecord
	if err := e.RunSweepRange(context.Background(), plan, l.Start, l.End, func(rec service.SweepRecord) error {
		rec.Cached = false
		records = append(records, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return records
}
