// Package dispatch shards validated sweep jobs across remote worker
// processes. The coordinator partitions a job's deterministic grid into
// contiguous, index-ordered point shards, leases them to registered workers
// with heartbeat-based expiry and at-least-once redispatch, and merges the
// returned records strictly in point order — so a distributed job's NDJSON
// stream is byte-identical to single-process execution at every cursor.
//
// The determinism argument: the chunk-seeded Monte-Carlo kernel makes every
// grid point a pure function of (scenario, runs, seed, epsilon, chunk size),
// independent of worker count and host. A lease pins all of those — the
// forwarded request carries the coordinator-resolved run count, and the
// lease's chunk size overrides the worker's own default — so any worker
// (or the same shard evaluated twice after a lease expiry) produces
// identical records, and merging shards in index order reproduces the local
// stream exactly.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"dmfb/internal/service"
	"dmfb/internal/telemetry"
)

// Config tunes a Coordinator. The zero value gives sensible defaults.
type Config struct {
	// LeaseTTL is how long a shard lease lives without a heartbeat before
	// it is reclaimed and redispatched; 0 means 10s.
	LeaseTTL time.Duration
	// ShardSize is the number of grid points per shard; 0 means 64.
	ShardSize int
	// MaxShardDispatches bounds how many times one shard may be dispatched
	// (first lease included) before it is declared poisoned and its job
	// failed with service.ErrPoisonShard; 0 means 5. Without the bound, a
	// shard that crashes every worker that leases it would be redispatched
	// forever, burning the fleet on one unit of work.
	MaxShardDispatches int
	// Registry receives the dispatch series (shard counters, active-worker
	// gauge, shard duration histogram); nil leaves them unregistered.
	Registry *telemetry.Registry
	// Logger receives lease lifecycle events; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 64
	}
	if c.MaxShardDispatches <= 0 {
		c.MaxShardDispatches = 5
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// errGone tags lease/job lookups whose target no longer exists (expired and
// redispatched, job finished or cancelled); the HTTP layer maps it to 410 so
// the worker knows to abandon the shard rather than retry.
var errGone = errors.New("dispatch: lease or job gone")

// shardState is a shard's position in the lease state machine.
type shardState int

const (
	shardPending shardState = iota // waiting for a worker
	shardLeased                    // leased, heartbeats expected
	shardDone                      // results accepted, awaiting ordered merge
)

// shard is one contiguous slice [start, end) of a job's grid.
type shard struct {
	index      int // shard number within the job run
	start, end int // global grid-point indices
	state      shardState
	leaseID    string // current lease while shardLeased
	leasedAt   time.Time
	dispatches int                   // lease grants, for the poison budget
	records    []service.SweepRecord // buffered results until merged
}

// jobRun is one distributed job in flight: its shards plus the ordered-merge
// cursor. RunJob's goroutine is the only consumer; workers (via Submit) are
// the producers.
type jobRun struct {
	id        string
	req       service.SweepRequest // forwarded in every lease, runs resolved
	chunkSize int
	shards    []*shard
	nextEmit  int           // first shard not yet merged
	ready     chan struct{} // 1-buffered doorbell: a mergeable shard exists or the job failed
	failed    error         // terminal quarantine diagnosis; stops leasing and RunJob
}

// lease is one outstanding shard lease.
type lease struct {
	id       string
	jobID    string
	shardIdx int
	workerID string
	expires  time.Time
}

// workerState tracks one registered worker for the active-worker gauge.
type workerState struct {
	name     string
	lastSeen time.Time
}

// Coordinator implements service.DistributedRunner over HTTP workers. Mount
// Routes() on the serving mux and pass the coordinator as the job store's
// Runner.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*jobRun
	jobOrder []string // FIFO fairness for lease assignment
	leases   map[string]*lease
	workers  map[string]*workerState
	seq      int // worker and lease ID sequence
	closed   bool

	shardsLeased      atomic.Uint64
	shardsCompleted   atomic.Uint64
	shardsExpired     atomic.Uint64
	shardsQuarantined atomic.Uint64
	retries           atomic.Uint64
	shardDuration     *telemetry.Histogram

	stopJanitor chan struct{}
	janitorDone chan struct{}
}

// shardDurationBuckets spans lease-to-merge times: cached shards finish in
// milliseconds, heavy Monte-Carlo shards in minutes.
var shardDurationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120}

// NewCoordinator builds a coordinator, registers its metric series, and
// starts the lease janitor.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:         cfg,
		jobs:        make(map[string]*jobRun),
		leases:      make(map[string]*lease),
		workers:     make(map[string]*workerState),
		stopJanitor: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	r := cfg.Registry
	r.CounterFunc("dmfb_dispatch_shards_leased_total",
		"Shard leases handed to workers (redispatches included).",
		func() float64 { return float64(c.shardsLeased.Load()) })
	r.CounterFunc("dmfb_dispatch_shards_completed_total",
		"Shards whose results were accepted and merged.",
		func() float64 { return float64(c.shardsCompleted.Load()) })
	r.CounterFunc("dmfb_dispatch_shards_expired_total",
		"Shard leases reclaimed after missed heartbeats.",
		func() float64 { return float64(c.shardsExpired.Load()) })
	r.CounterFunc("dmfb_shards_quarantined_total",
		"Shards that exhausted their dispatch budget and failed their job as poisoned.",
		func() float64 { return float64(c.shardsQuarantined.Load()) })
	r.CounterFunc("dmfb_retries_total",
		"Shard redispatches: every lease grant of a shard past its first.",
		func() float64 { return float64(c.retries.Load()) })
	r.GaugeFunc("dmfb_workers_active",
		"Registered workers seen within the liveness window.",
		func() float64 { return float64(c.Stats().WorkersActive) })
	c.shardDuration = r.Histogram("dmfb_dispatch_shard_duration_seconds",
		"Wall time from shard lease to accepted result.", shardDurationBuckets)
	go c.janitor()
	return c
}

// Close stops the lease janitor. Jobs still in RunJob keep draining (their
// shards just stop expiring); callers shut the job store down first.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stopJanitor)
	<-c.janitorDone
}

// janitor periodically reclaims expired leases so a worker that died
// mid-shard (process exit — no context to cancel) has its shard redispatched
// to a live worker.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	interval := c.cfg.LeaseTTL / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopJanitor:
			return
		case <-t.C:
			c.expireLeases(time.Now())
		}
	}
}

// expireLeases reclaims every lease past its deadline, returning its shard
// to the pending pool for redispatch.
func (c *Coordinator) expireLeases(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		if jr := c.jobs[l.jobID]; jr != nil {
			sh := jr.shards[l.shardIdx]
			if sh.state == shardLeased && sh.leaseID == id {
				sh.state = shardPending
				sh.leaseID = ""
			}
		}
		c.shardsExpired.Add(1)
		c.cfg.Logger.Info("shard lease expired",
			slog.String("lease", id), slog.String("job", l.jobID),
			slog.Int("shard", l.shardIdx), slog.String("worker", l.workerID))
	}
}

// RunJob implements service.DistributedRunner: it shards plan's points
// [start, NumPoints) for lease pickup and blocks merging results, emitting
// every record strictly in grid order. The forwarded request must already
// carry the resolved run count (the job store pins it from the plan).
func (c *Coordinator) RunJob(ctx context.Context, jobID string, plan *service.SweepPlan, req service.SweepRequest, start int, emit func(service.SweepRecord) error) error {
	total := plan.NumPoints()
	if start < 0 || start > total {
		return fmt.Errorf("dispatch: resume point %d outside grid of %d points", start, total)
	}
	if start == total {
		return nil // nothing left to evaluate (resume found a complete log)
	}
	jr := &jobRun{
		id:        jobID,
		req:       req,
		chunkSize: plan.SimParams().ChunkSize,
		ready:     make(chan struct{}, 1),
	}
	for s := start; s < total; s += c.cfg.ShardSize {
		end := min(s+c.cfg.ShardSize, total)
		jr.shards = append(jr.shards, &shard{index: len(jr.shards), start: s, end: end})
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("dispatch: coordinator is shut down")
	}
	if _, dup := c.jobs[jobID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("dispatch: job %s already dispatched", jobID)
	}
	c.jobs[jobID] = jr
	c.jobOrder = append(c.jobOrder, jobID)
	c.mu.Unlock()
	defer c.releaseJob(jobID)
	for {
		// Drain every consecutively-done shard from the merge cursor; the
		// emit calls (which fsync in a durable store) run outside the lock.
		c.mu.Lock()
		var batches [][]service.SweepRecord
		for jr.nextEmit < len(jr.shards) && jr.shards[jr.nextEmit].state == shardDone {
			sh := jr.shards[jr.nextEmit]
			batches = append(batches, sh.records)
			sh.records = nil
			jr.nextEmit++
		}
		finished := jr.nextEmit == len(jr.shards)
		failed := jr.failed
		c.mu.Unlock()
		if failed != nil {
			// A shard was quarantined: the job cannot complete. Records
			// already merged stay durable (they are correct); the terminal
			// diagnosis is the typed poison error.
			return failed
		}
		for _, recs := range batches {
			for _, rec := range recs {
				if err := emit(rec); err != nil {
					return err
				}
			}
		}
		if finished {
			return nil
		}
		select {
		case <-jr.ready:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// releaseJob forgets a job and every lease pointing at it; subsequent
// heartbeats and submissions for it answer 410.
func (c *Coordinator) releaseJob(jobID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, jobID)
	for i, id := range c.jobOrder {
		if id == jobID {
			c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
			break
		}
	}
	for id, l := range c.leases {
		if l.jobID == jobID {
			delete(c.leases, id)
		}
	}
}

// register assigns a worker ID.
func (c *Coordinator) register(name string) service.WorkerRegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("worker-%d", c.seq)
	c.workers[id] = &workerState{name: name, lastSeen: time.Now()}
	c.cfg.Logger.Info("worker registered", slog.String("worker", id), slog.String("name", name))
	return service.WorkerRegisterResponse{
		WorkerID:       id,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	}
}

// touchWorkerLocked records a sighting of workerID, implicitly
// (re-)registering IDs this coordinator has never seen — which is what lets
// a worker fleet survive a coordinator restart without re-registering.
// Requires c.mu.
func (c *Coordinator) touchWorkerLocked(workerID string) {
	if w := c.workers[workerID]; w != nil {
		w.lastSeen = time.Now()
		return
	}
	c.workers[workerID] = &workerState{lastSeen: time.Now()}
}

// nextLease hands workerID the first pending shard in job-arrival order, or
// nil when no work is available.
func (c *Coordinator) nextLease(workerID string) *service.ShardLease {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID)
jobLoop:
	for _, jid := range c.jobOrder {
		jr := c.jobs[jid]
		if jr.failed != nil {
			continue // quarantined job: stop feeding it to workers
		}
		for _, sh := range jr.shards {
			if sh.state != shardPending {
				continue
			}
			if sh.dispatches >= c.cfg.MaxShardDispatches {
				// The shard burned its whole dispatch budget — every worker
				// that leased it crashed, stalled, or submitted garbage.
				// Quarantine: fail the job with a typed diagnosis instead of
				// redispatching forever.
				jr.failed = fmt.Errorf("%w: shard %d (points [%d,%d)) failed %d dispatches",
					service.ErrPoisonShard, sh.index, sh.start, sh.end, sh.dispatches)
				c.shardsQuarantined.Add(1)
				c.cfg.Logger.Error("shard quarantined",
					slog.String("job", jid), slog.Int("shard", sh.index),
					slog.Int("dispatches", sh.dispatches))
				select {
				case jr.ready <- struct{}{}:
				default:
				}
				continue jobLoop // the job is failing; try the next job's shards
			}
			c.seq++
			id := fmt.Sprintf("lease-%d", c.seq)
			now := time.Now()
			sh.state = shardLeased
			sh.leaseID = id
			sh.leasedAt = now
			sh.dispatches++
			if sh.dispatches > 1 {
				c.retries.Add(1)
			}
			c.leases[id] = &lease{
				id: id, jobID: jid, shardIdx: sh.index,
				workerID: workerID, expires: now.Add(c.cfg.LeaseTTL),
			}
			c.shardsLeased.Add(1)
			c.cfg.Logger.Info("shard leased",
				slog.String("lease", id), slog.String("job", jid),
				slog.Int("shard", sh.index), slog.String("worker", workerID),
				slog.Int("start", sh.start), slog.Int("end", sh.end))
			return &service.ShardLease{
				LeaseID:   id,
				JobID:     jid,
				Shard:     sh.index,
				Start:     sh.start,
				End:       sh.end,
				Request:   jr.req,
				ChunkSize: jr.chunkSize,
				TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
			}
		}
	}
	return nil
}

// heartbeat renews a lease; errGone means the lease no longer exists and the
// worker should abandon the shard.
func (c *Coordinator) heartbeat(workerID, leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("%w: lease %q", errGone, leaseID)
	}
	l.expires = time.Now().Add(c.cfg.LeaseTTL)
	return nil
}

// submit accepts a completed shard's records. Acceptance is first-wins and
// independent of lease validity: the kernel is deterministic, so a late
// submission from an expired lease carries exactly the records a redispatch
// would produce. The loser of the race gets errGone (410) — its records are
// fully discarded, never merged alongside the winner's — which workers treat
// as benign (the shard is finished either way).
func (c *Coordinator) submit(req service.ShardResultRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.WorkerID)
	jr := c.jobs[req.JobID]
	if jr == nil {
		return fmt.Errorf("%w: job %q", errGone, req.JobID)
	}
	if req.Shard < 0 || req.Shard >= len(jr.shards) {
		return fmt.Errorf("dispatch: job %s has no shard %d", req.JobID, req.Shard)
	}
	sh := jr.shards[req.Shard]
	if sh.state == shardDone {
		return fmt.Errorf("%w: shard %d of %s already completed by a twin; submission discarded",
			errGone, req.Shard, req.JobID)
	}
	if got, want := len(req.Records), sh.end-sh.start; got != want {
		return fmt.Errorf("dispatch: shard %d of %s wants %d records, got %d", req.Shard, req.JobID, want, got)
	}
	for i := range req.Records {
		if req.Records[i].Index != sh.start+i {
			return fmt.Errorf("dispatch: shard %d of %s record %d has index %d, want %d",
				req.Shard, req.JobID, i, req.Records[i].Index, sh.start+i)
		}
		// Cache provenance is a worker-local accident (a redispatched shard
		// hits the worker's cache; a twin's doesn't). Normalize it away so the
		// merged stream matches a fresh single-process run byte for byte.
		req.Records[i].Cached = false
	}
	if sh.leaseID != "" {
		delete(c.leases, sh.leaseID)
		sh.leaseID = ""
	}
	sh.records = req.Records
	sh.state = shardDone
	c.shardsCompleted.Add(1)
	if !sh.leasedAt.IsZero() {
		c.shardDuration.Observe(time.Since(sh.leasedAt).Seconds())
	}
	select {
	case jr.ready <- struct{}{}:
	default:
	}
	return nil
}

// activeWindow is how long after its last sighting a worker still counts as
// active.
func (c *Coordinator) activeWindow() time.Duration { return 3 * c.cfg.LeaseTTL }

// Stats implements service.DistributedRunner.
func (c *Coordinator) Stats() service.DispatchStats {
	c.mu.Lock()
	active := 0
	cutoff := time.Now().Add(-c.activeWindow())
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			active++
		}
	}
	c.mu.Unlock()
	return service.DispatchStats{
		ShardsLeased:      c.shardsLeased.Load(),
		ShardsCompleted:   c.shardsCompleted.Load(),
		ShardsExpired:     c.shardsExpired.Load(),
		ShardsQuarantined: c.shardsQuarantined.Load(),
		Retries:           c.retries.Load(),
		WorkersActive:     active,
	}
}

// Coordinator must satisfy the runner interface the job store consumes.
var _ service.DistributedRunner = (*Coordinator)(nil)
