package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmfb/client"
	"dmfb/internal/service"
)

// distReq is the shared 16-point heterogeneous grid: every strategy and both
// defect models, so the byte-identity assertions cover the closed-form,
// Monte-Carlo, and clustered evaluation paths at once.
func distReq() service.SweepRequest {
	return service.SweepRequest{
		Strategies:   []string{"none", "local", "shifted", "hex"},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{40},
		Ps:           []float64{0.9, 0.95},
		SpareRows:    []int{1},
		DefectModels: []string{"independent", "clustered"},
		ClusterSize:  4,
		Runs:         150,
		Seed:         11,
	}
}

// slowDistReq is heavy enough (24 points × 15000 runs) that a worker can be
// killed mid-job with shards still outstanding.
func slowDistReq() service.SweepRequest {
	return service.SweepRequest{
		Strategies:   []string{"local", "hex"},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{100},
		PMin:         0.90,
		PMax:         0.99,
		PPoints:      12,
		DefectModels: []string{"independent"},
		Runs:         15000,
		Seed:         3,
	}
}

func coordEngine() *service.Engine {
	return service.NewEngine(service.EngineConfig{DefaultRuns: 150, CacheSize: 256})
}

// goldenLocal evaluates req on a plain in-memory store — the single-process
// reference stream every distributed run must reproduce byte for byte.
func goldenLocal(t *testing.T, req service.SweepRequest) []byte {
	t.Helper()
	s := service.NewJobStore(coordEngine(), service.JobStoreConfig{})
	defer s.Close(context.Background())
	req.Distributed = false
	j, err := s.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if st, err := j.Wait(ctx); err != nil || st.State != service.JobCompleted {
		t.Fatalf("golden job: %+v, %v", st, err)
	}
	return streamAll(t, j, 0)
}

func streamAll(t *testing.T, j *service.Job, cursor int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var buf bytes.Buffer
	if _, err := j.StreamResults(ctx, cursor, func(line []byte) error {
		_, err := buf.Write(line)
		return err
	}); err != nil {
		t.Fatalf("stream from cursor %d: %v", cursor, err)
	}
	return buf.Bytes()
}

// cluster is one in-process coordinator (engine + store + HTTP server) plus
// a set of worker loops talking to it over real HTTP through package client.
type cluster struct {
	engine *service.Engine
	store  *service.Store
	coord  *Coordinator
	srv    *httptest.Server

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	nextID int
}

func newCluster(t *testing.T, cfg Config, nWorkers int) *cluster {
	t.Helper()
	e := coordEngine()
	cfg.Registry = e.Registry()
	coord := NewCoordinator(cfg)
	store := service.NewJobStore(e, service.JobStoreConfig{Runner: coord})
	srv := httptest.NewServer(service.NewMux(e, store, coord.Routes()...))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{engine: e, store: store, coord: coord, srv: srv, ctx: ctx, cancel: cancel}
	t.Cleanup(func() {
		cancel()
		c.wg.Wait()
		closeCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
		defer done()
		if err := store.Close(closeCtx); err != nil {
			t.Errorf("store close: %v", err)
		}
		coord.Close()
		srv.Close()
	})
	for i := 0; i < nWorkers; i++ {
		c.addWorker(t)
	}
	return c
}

// addWorker starts one worker loop and returns a cancel that kills just this
// worker — the in-process analog of kill -9 on a worker mid-shard (its
// heartbeats stop; the lease janitor redispatches whatever it held).
func (c *cluster) addWorker(t *testing.T) context.CancelFunc {
	t.Helper()
	c.nextID++
	name := fmt.Sprintf("w%d", c.nextID)
	wctx, wcancel := context.WithCancel(c.ctx)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		err := RunWorker(wctx, WorkerConfig{
			Coordinator: c.srv.URL,
			Name:        name,
			Engine:      service.EngineConfig{CacheSize: 64},
			Poll:        20 * time.Millisecond,
		})
		if err != nil && wctx.Err() == nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	return wcancel
}

// assertGolden checks full-stream byte identity plus the cursor contract:
// the stream from any cursor is the exact suffix of the golden stream.
func assertGolden(t *testing.T, j *service.Job, golden []byte) {
	t.Helper()
	if got := streamAll(t, j, 0); !bytes.Equal(got, golden) {
		t.Fatalf("merged stream diverges from single-process golden:\n got %d bytes\nwant %d bytes", len(got), len(golden))
	}
	lines := bytes.SplitAfter(golden, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for _, cursor := range []int{1, len(lines) / 2, len(lines)} {
		want := bytes.Join(lines[cursor:], nil)
		if got := streamAll(t, j, cursor); !bytes.Equal(got, want) {
			t.Fatalf("cursor %d: stream diverges from golden suffix", cursor)
		}
	}
}

func TestDistributedByteIdentity(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			// ShardSize 3 forces uneven shards (16 = 5×3 + 1) across n workers.
			cl := newCluster(t, Config{LeaseTTL: 2 * time.Second, ShardSize: 3}, n)
			req := req
			req.Distributed = true
			j, err := cl.store.Create(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			st, err := j.Wait(ctx)
			if err != nil || st.State != service.JobCompleted {
				t.Fatalf("distributed job: %+v, %v", st, err)
			}
			if !st.Distributed {
				t.Error("status does not report distributed")
			}
			assertGolden(t, j, golden)
			stats := cl.coord.Stats()
			if stats.ShardsCompleted < 6 {
				t.Errorf("ShardsCompleted = %d, want >= 6", stats.ShardsCompleted)
			}
			if stats.WorkersActive < n {
				t.Errorf("WorkersActive = %d, want >= %d", stats.WorkersActive, n)
			}
		})
	}
}

func TestWorkerKilledMidJobRedispatches(t *testing.T) {
	req := slowDistReq()
	golden := goldenLocal(t, req)
	// The TTL balances two pressures: short enough that the dead worker's
	// lease is reclaimed promptly, long enough that a live (race-detector
	// slowed) worker's heartbeats at TTL/3 reliably keep its lease alive.
	cl := newCluster(t, Config{LeaseTTL: time.Second, ShardSize: 2}, 0)
	killFirst := cl.addWorker(t)
	req.Distributed = true
	j, err := cl.store.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the only worker once it holds a lease: its heartbeats stop, the
	// janitor expires the lease, and a replacement finishes the job.
	deadline := time.Now().Add(30 * time.Second)
	for cl.coord.Stats().ShardsLeased == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shard ever leased")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killFirst()
	cl.addWorker(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil || st.State != service.JobCompleted {
		t.Fatalf("job after worker kill: %+v, %v", st, err)
	}
	assertGolden(t, j, golden)
}

func TestGhostWorkerLeaseExpiresAndRedispatches(t *testing.T) {
	req := distReq()
	golden := goldenLocal(t, req)
	cl := newCluster(t, Config{LeaseTTL: 300 * time.Millisecond, ShardSize: 4}, 0)
	// A ghost worker grabs the first shard and never heartbeats or submits —
	// the pure lease-expiry path, deterministic because no real worker races
	// for the first lease.
	ghost := cl.coord.register("ghost")
	req.Distributed = true
	j, err := cl.store.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var held *service.ShardLease
	deadline := time.Now().Add(30 * time.Second)
	for held == nil {
		if time.Now().After(deadline) {
			t.Fatal("ghost never obtained a lease")
		}
		held = cl.coord.nextLease(ghost.WorkerID)
		if held == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	cl.addWorker(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil || st.State != service.JobCompleted {
		t.Fatalf("job after ghost lease: %+v, %v", st, err)
	}
	if got := cl.coord.Stats().ShardsExpired; got < 1 {
		t.Errorf("ShardsExpired = %d, want >= 1", got)
	}
	assertGolden(t, j, golden)
}

func TestSubmitValidationAndIdempotency(t *testing.T) {
	e := coordEngine()
	coord := NewCoordinator(Config{LeaseTTL: time.Minute, ShardSize: 4, Registry: e.Registry()})
	defer coord.Close()
	store := service.NewJobStore(e, service.JobStoreConfig{Runner: coord})
	defer store.Close(context.Background())
	req := distReq()
	req.Distributed = true
	j, err := store.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	reg := coord.register("w")
	var held *service.ShardLease
	deadline := time.Now().Add(30 * time.Second)
	for held == nil {
		if time.Now().After(deadline) {
			t.Fatal("no lease available")
		}
		held = coord.nextLease(reg.WorkerID)
		if held == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Evaluate the shard exactly as a worker would.
	plan, err := e.PlanSweep(held.Request)
	if err != nil {
		t.Fatal(err)
	}
	plan.SetChunkSize(held.ChunkSize)
	var records []service.SweepRecord
	if err := e.RunSweepRange(context.Background(), plan, held.Start, held.End, func(rec service.SweepRecord) error {
		rec.Cached = false
		records = append(records, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sub := service.ShardResultRequest{
		WorkerID: reg.WorkerID, LeaseID: held.LeaseID,
		JobID: held.JobID, Shard: held.Shard,
	}

	// Wrong record count is rejected.
	sub.Records = records[:len(records)-1]
	if err := coord.submit(sub); err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("short submission: %v", err)
	}
	// Wrong indices are rejected.
	shifted := make([]service.SweepRecord, len(records))
	copy(shifted, records)
	shifted[0].Index++
	shifted[1].Index--
	sub.Records = shifted
	if err := coord.submit(sub); err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("misindexed submission: %v", err)
	}
	// The real submission is accepted; a duplicate loses the first-wins race
	// and is told so with errGone (410) — its records are discarded, never
	// merged a second time.
	sub.Records = records
	if err := coord.submit(sub); err != nil {
		t.Fatalf("valid submission: %v", err)
	}
	if err := coord.submit(sub); !errors.Is(err, errGone) {
		t.Fatalf("duplicate submission: err = %v, want errGone", err)
	}
	if got := coord.Stats().ShardsCompleted; got != 1 {
		t.Errorf("ShardsCompleted = %d, want 1", got)
	}
	// The consumed lease is gone.
	if err := coord.heartbeat(reg.WorkerID, held.LeaseID); !errors.Is(err, errGone) {
		t.Fatalf("heartbeat on consumed lease: %v", err)
	}
	// Cancelling the job releases it: further submissions answer gone.
	if st := j.Cancel(); st.State != service.JobCancelled {
		t.Fatalf("cancel: %+v", st)
	}
	if err := coord.submit(sub); !errors.Is(err, errGone) {
		t.Fatalf("submit after job release: %v", err)
	}
}

func TestWorkerHTTPEndpoints(t *testing.T) {
	cl := newCluster(t, Config{}, 0)
	cli := client.New(cl.srv.URL)
	ctx := context.Background()

	if err := cli.Ready(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}
	reg, err := cli.RegisterWorker(ctx, client.WorkerRegisterRequest{Name: "itest"})
	if err != nil {
		t.Fatal(err)
	}
	if reg.WorkerID == "" || reg.LeaseTTLMillis <= 0 {
		t.Fatalf("register response: %+v", reg)
	}
	// No jobs: the lease endpoint answers 204 → nil lease, nil error.
	lease, err := cli.LeaseShard(ctx, reg.WorkerID)
	if err != nil || lease != nil {
		t.Fatalf("idle lease: %+v, %v", lease, err)
	}
	// A lease request without a worker ID is malformed.
	if _, err := cli.LeaseShard(ctx, ""); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("empty worker_id: %v", err)
	}
	// Heartbeats and submissions for unknown leases/jobs answer 410 so
	// workers abandon the shard instead of retrying.
	if err := cli.HeartbeatLease(ctx, reg.WorkerID, "lease-404"); !isStatus(err, http.StatusGone) {
		t.Fatalf("unknown lease heartbeat: %v", err)
	}
	err = cli.SubmitShard(ctx, client.ShardResultRequest{
		WorkerID: reg.WorkerID, LeaseID: "lease-404", JobID: "job-404",
	})
	if !isStatus(err, http.StatusGone) {
		t.Fatalf("unknown job submission: %v", err)
	}
}

func isStatus(err error, code int) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == code
}

// TestJitterBounds pins the jitter contract the fleet's backoff relies on:
// uniform in [d/2, 3d/2), never zero, never unbounded.
func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := client.Jitter(d)
		if j < d/2 || j >= 3*d/2 {
			t.Fatalf("Jitter(%v) = %v outside [%v, %v)", d, j, d/2, 3*d/2)
		}
	}
}
