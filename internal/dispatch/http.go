package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dmfb/internal/service"
)

// Request-body bounds: control messages are tiny; a result submission
// carries up to a whole shard of records.
const (
	maxControlBody = 1 << 20
	maxResultBody  = 64 << 20
)

// Routes returns the coordinator's worker-facing endpoints as extra routes
// for the serving mux:
//
//	POST /v2/workers/register   announce a worker, get an ID and lease TTL
//	POST /v2/workers/lease      pull one shard lease (204 when no work)
//	POST /v2/workers/heartbeat  renew a lease (410 when it is gone)
//	POST /v2/workers/results    submit a completed shard's records
func (c *Coordinator) Routes() []service.Route {
	return []service.Route{
		{Pattern: "POST /v2/workers/register", Handler: http.HandlerFunc(c.handleRegister)},
		{Pattern: "POST /v2/workers/lease", Handler: http.HandlerFunc(c.handleLease)},
		{Pattern: "POST /v2/workers/heartbeat", Handler: http.HandlerFunc(c.handleHeartbeat)},
		{Pattern: "POST /v2/workers/results", Handler: http.HandlerFunc(c.handleResults)},
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req service.WorkerRegisterRequest
	if !decodeBody(w, r, maxControlBody, &req) {
		return
	}
	writeJSON(w, http.StatusOK, c.register(req.Name))
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req service.LeaseRequest
	if !decodeBody(w, r, maxControlBody, &req) {
		return
	}
	if req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "worker_id is required"})
		return
	}
	lease := c.nextLease(req.WorkerID)
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req service.HeartbeatRequest
	if !decodeBody(w, r, maxControlBody, &req) {
		return
	}
	if err := c.heartbeat(req.WorkerID, req.LeaseID); err != nil {
		writeJSON(w, dispatchStatus(err), errBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var req service.ShardResultRequest
	if !decodeBody(w, r, maxResultBody, &req) {
		return
	}
	if err := c.submit(req); err != nil {
		writeJSON(w, dispatchStatus(err), errBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// dispatchStatus maps coordinator errors onto HTTP: vanished leases/jobs →
// 410 Gone (the worker abandons the shard), anything else → 400 (the
// submission itself was malformed).
func dispatchStatus(err error) int {
	if errors.Is(err, errGone) {
		return http.StatusGone
	}
	return http.StatusBadRequest
}

// errBody is the same error envelope the service handlers use.
type errBody struct {
	Error string `json:"error"`
}

// decodeBody strictly decodes the request body into v, writing the error
// response itself on failure. Mirrors the service package's strict decoding
// (unknown fields and trailing data rejected).
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		status := http.StatusBadRequest
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errBody{Error: fmt.Sprintf("invalid request body: %v", err)})
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "invalid request body: trailing data"})
		return false
	}
	return true
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
