package dispatch

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"dmfb/client"
	"dmfb/internal/faultinject"
	"dmfb/internal/service"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name is an optional human-readable label for the coordinator's logs.
	Name string
	// Engine tunes the worker's local simulation engine. Determinism-relevant
	// parameters (runs, seed, epsilon, chunk size) are always overridden by
	// the lease, so only capacity knobs (workers, cache size, concurrency)
	// matter here.
	Engine service.EngineConfig
	// Poll is the base backoff between lease attempts when no work is
	// available (jittered to decorrelate a worker fleet); 0 means 500ms.
	Poll time.Duration
	// Logger receives worker lifecycle events; nil discards them.
	Logger *slog.Logger
	// Inject supplies a chaos fault schedule for the worker loop (crash
	// mid-shard, slow shard, duplicate or corrupted submission). nil — the
	// default and the production setting — disables injection entirely.
	Inject *faultinject.Injector
	// ClientOptions are appended to the coordinator client's construction —
	// chaos tests thread a fault-injecting transport through here.
	ClientOptions []client.Option
}

// RunWorker runs the worker loop until ctx is cancelled: wait for the
// coordinator to report ready, register, then pull shard leases, evaluate
// them through the local engine (cache, single-flight, admission, and
// telemetry all apply), and submit results. Lease evaluation heartbeats at
// TTL/3; a 410 on heartbeat aborts the shard (someone else owns it now).
// Every retry sleep is jittered so a restarted coordinator is not hit by
// the whole fleet in lockstep.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	// One policy governs every retried call in the worker: lease-paced
	// backoff base, a bounded attempt count, and a per-attempt timeout so a
	// stalled coordinator never wedges the loop (all worker calls are fast
	// control-plane exchanges; shard evaluation happens locally).
	policy := client.Policy{
		MaxAttempts:    4,
		BaseBackoff:    poll,
		MaxBackoff:     8 * poll,
		AttemptTimeout: 30 * time.Second,
	}
	opts := append([]client.Option{client.WithPolicy(policy)}, cfg.ClientOptions...)
	cli := client.New(cfg.Coordinator, opts...)
	engine := service.NewEngine(cfg.Engine)

	// Readiness gate: a coordinator replaying its durable store answers 503
	// on /readyz; registering against it would just fail.
	for {
		if err := cli.Ready(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			return ctx.Err()
		} else {
			logger.Debug("coordinator not ready", slog.String("error", err.Error()))
		}
		if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
			return err
		}
	}
	// Registration is idempotent from the worker's point of view (a retried
	// registration just burns an ID), so drive it under the policy rather
	// than dying on the first transient fault of a freshly-started fleet.
	var reg client.WorkerRegisterResponse
	err := policy.Do(ctx, func(actx context.Context) error {
		var rerr error
		reg, rerr = cli.RegisterWorker(actx, client.WorkerRegisterRequest{Name: cfg.Name})
		return rerr
	})
	if err != nil {
		return fmt.Errorf("dispatch: register worker: %w", err)
	}
	logger.Info("worker registered",
		slog.String("worker", reg.WorkerID), slog.String("coordinator", cfg.Coordinator))

	// Plans are cached per job: every lease of one job carries the identical
	// request, and re-planning a 20k-point grid per shard would be waste.
	plans := make(map[string]*service.SweepPlan)
	for {
		lease, err := cli.LeaseShard(ctx, reg.WorkerID)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			// Coordinator briefly unreachable (restart, network): back off
			// and retry — the lease endpoint re-registers unknown worker IDs,
			// so no re-registration dance is needed.
			logger.Debug("lease attempt failed", slog.String("error", err.Error()))
			if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
				return err
			}
			continue
		}
		if lease == nil {
			if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
				return err
			}
			continue
		}
		if err := evalLease(ctx, cli, engine, plans, reg.WorkerID, lease, policy, cfg.Inject, logger); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logger.Warn("shard evaluation failed",
				slog.String("lease", lease.LeaseID), slog.String("job", lease.JobID),
				slog.Int("shard", lease.Shard), slog.String("error", err.Error()))
			// The lease will expire and the shard be redispatched; nothing
			// for this worker to do but move on.
		}
	}
}

// evalLease evaluates one leased shard and submits its records. The shard's
// evaluation context is cancelled when a heartbeat answers 410 — the lease
// expired and the shard belongs to someone else, so burning more CPU on it
// helps nobody (its submission would still be accepted, but a live twin is
// already on it).
func evalLease(ctx context.Context, cli *client.Client, engine *service.Engine, plans map[string]*service.SweepPlan, workerID string, lease *client.ShardLease, policy client.Policy, inject *faultinject.Injector, logger *slog.Logger) error {
	plan, ok := plans[lease.JobID]
	if !ok {
		p, err := engine.PlanSweep(lease.Request)
		if err != nil {
			return fmt.Errorf("plan leased sweep: %w", err)
		}
		// The lease's chunk size is the coordinator's — part of the
		// determinism contract, never this worker's own default.
		p.SetChunkSize(lease.ChunkSize)
		plans[lease.JobID] = p
		plan = p
	}
	if lease.Start < 0 || lease.End > plan.NumPoints() || lease.Start > lease.End {
		return fmt.Errorf("lease range [%d,%d) outside grid of %d points", lease.Start, lease.End, plan.NumPoints())
	}

	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	hbInterval := ttl / 3
	if hbInterval < 10*time.Millisecond {
		hbInterval = 10 * time.Millisecond
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hbInterval)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				err := cli.HeartbeatLease(shardCtx, workerID, lease.LeaseID)
				var apiErr *client.APIError
				if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusGone {
					logger.Info("lease gone, abandoning shard",
						slog.String("lease", lease.LeaseID), slog.Int("shard", lease.Shard))
					cancelShard()
					return
				}
				// Transient heartbeat failures are survivable as long as one
				// succeeds inside the TTL; keep ticking.
			}
		}
	}()

	// Chaos seams. Slow: stall the shard (heartbeats keep it alive unless the
	// stall outlives the TTL budget the test armed). Crash: abandon the shard
	// without submitting — the in-process analog of kill -9 mid-shard; the
	// lease expires and the coordinator redispatches.
	if d := inject.Eval(faultinject.WorkerSlow); d.Fire && d.Delay > 0 {
		if err := sleepCtx(shardCtx, d.Delay); err != nil {
			return err
		}
	}
	if d := inject.Eval(faultinject.WorkerCrash); d.Fire {
		return d.Err
	}

	records := make([]service.SweepRecord, 0, lease.End-lease.Start)
	evalErr := engine.RunSweepRange(shardCtx, plan, lease.Start, lease.End, func(rec service.SweepRecord) error {
		// Cache provenance is worker-local state; the coordinator normalizes
		// it too, but stripping it here keeps the wire payload canonical.
		rec.Cached = false
		records = append(records, rec)
		return nil
	})
	cancelShard()
	<-hbDone
	if evalErr != nil {
		return evalErr
	}

	sub := client.ShardResultRequest{
		WorkerID: workerID,
		LeaseID:  lease.LeaseID,
		JobID:    lease.JobID,
		Shard:    lease.Shard,
		Records:  records,
	}
	if d := inject.Eval(faultinject.WorkerCorruptSubmit); d.Fire && len(sub.Records) > 0 {
		// Structural corruption: clone the records, then misindex one and
		// drop another. The coordinator's validation must reject this outright
		// (never merge it) and leave the shard for redispatch.
		corrupted := append([]service.SweepRecord(nil), sub.Records...)
		corrupted[0].Index += 1000000
		sub.Records = corrupted[:len(corrupted)-1]
	}
	if err := submitShard(ctx, cli, policy, sub, logger); err != nil {
		return fmt.Errorf("submit shard %d of %s: %w", lease.Shard, lease.JobID, err)
	}
	if d := inject.Eval(faultinject.WorkerDuplicateSubmit); d.Fire {
		// Deliberate duplicate: the coordinator must answer 410 (first-wins)
		// and the worker must shrug it off. submitShard treats 410 as benign,
		// so an error here would itself be a found bug.
		if err := submitShard(ctx, cli, policy, sub, logger); err != nil {
			return fmt.Errorf("duplicate submit of shard %d of %s surfaced: %w", lease.Shard, lease.JobID, err)
		}
	}
	return nil
}

// submitShard delivers one shard's records under the retry policy.
// Transport faults and 5xx are retried (submission is first-wins idempotent
// server-side); a 410 means a twin already completed the shard — this
// worker's copy was discarded, which is success from the job's point of
// view; any other definitive answer (400 malformed) is a real error.
func submitShard(ctx context.Context, cli *client.Client, policy client.Policy, sub client.ShardResultRequest, logger *slog.Logger) error {
	err := policy.Do(ctx, func(actx context.Context) error {
		return cli.SubmitShard(actx, sub)
	})
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusGone {
		logger.Info("shard already completed by a twin; submission discarded",
			slog.String("job", sub.JobID), slog.Int("shard", sub.Shard))
		return nil
	}
	return err
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
