package dispatch

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"dmfb/client"
	"dmfb/internal/service"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name is an optional human-readable label for the coordinator's logs.
	Name string
	// Engine tunes the worker's local simulation engine. Determinism-relevant
	// parameters (runs, seed, epsilon, chunk size) are always overridden by
	// the lease, so only capacity knobs (workers, cache size, concurrency)
	// matter here.
	Engine service.EngineConfig
	// Poll is the base backoff between lease attempts when no work is
	// available (jittered to decorrelate a worker fleet); 0 means 500ms.
	Poll time.Duration
	// Logger receives worker lifecycle events; nil discards them.
	Logger *slog.Logger
}

// RunWorker runs the worker loop until ctx is cancelled: wait for the
// coordinator to report ready, register, then pull shard leases, evaluate
// them through the local engine (cache, single-flight, admission, and
// telemetry all apply), and submit results. Lease evaluation heartbeats at
// TTL/3; a 410 on heartbeat aborts the shard (someone else owns it now).
// Every retry sleep is jittered so a restarted coordinator is not hit by
// the whole fleet in lockstep.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	cli := client.New(cfg.Coordinator)
	engine := service.NewEngine(cfg.Engine)

	// Readiness gate: a coordinator replaying its durable store answers 503
	// on /readyz; registering against it would just fail.
	for {
		if err := cli.Ready(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			return ctx.Err()
		} else {
			logger.Debug("coordinator not ready", slog.String("error", err.Error()))
		}
		if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
			return err
		}
	}
	reg, err := cli.RegisterWorker(ctx, client.WorkerRegisterRequest{Name: cfg.Name})
	if err != nil {
		return fmt.Errorf("dispatch: register worker: %w", err)
	}
	logger.Info("worker registered",
		slog.String("worker", reg.WorkerID), slog.String("coordinator", cfg.Coordinator))

	// Plans are cached per job: every lease of one job carries the identical
	// request, and re-planning a 20k-point grid per shard would be waste.
	plans := make(map[string]*service.SweepPlan)
	for {
		lease, err := cli.LeaseShard(ctx, reg.WorkerID)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			// Coordinator briefly unreachable (restart, network): back off
			// and retry — the lease endpoint re-registers unknown worker IDs,
			// so no re-registration dance is needed.
			logger.Debug("lease attempt failed", slog.String("error", err.Error()))
			if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
				return err
			}
			continue
		}
		if lease == nil {
			if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
				return err
			}
			continue
		}
		if err := evalLease(ctx, cli, engine, plans, reg.WorkerID, lease, poll, logger); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logger.Warn("shard evaluation failed",
				slog.String("lease", lease.LeaseID), slog.String("job", lease.JobID),
				slog.Int("shard", lease.Shard), slog.String("error", err.Error()))
			// The lease will expire and the shard be redispatched; nothing
			// for this worker to do but move on.
		}
	}
}

// evalLease evaluates one leased shard and submits its records. The shard's
// evaluation context is cancelled when a heartbeat answers 410 — the lease
// expired and the shard belongs to someone else, so burning more CPU on it
// helps nobody (its submission would still be accepted, but a live twin is
// already on it).
func evalLease(ctx context.Context, cli *client.Client, engine *service.Engine, plans map[string]*service.SweepPlan, workerID string, lease *client.ShardLease, poll time.Duration, logger *slog.Logger) error {
	plan, ok := plans[lease.JobID]
	if !ok {
		p, err := engine.PlanSweep(lease.Request)
		if err != nil {
			return fmt.Errorf("plan leased sweep: %w", err)
		}
		// The lease's chunk size is the coordinator's — part of the
		// determinism contract, never this worker's own default.
		p.SetChunkSize(lease.ChunkSize)
		plans[lease.JobID] = p
		plan = p
	}
	if lease.Start < 0 || lease.End > plan.NumPoints() || lease.Start > lease.End {
		return fmt.Errorf("lease range [%d,%d) outside grid of %d points", lease.Start, lease.End, plan.NumPoints())
	}

	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	hbInterval := ttl / 3
	if hbInterval < 10*time.Millisecond {
		hbInterval = 10 * time.Millisecond
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hbInterval)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				err := cli.HeartbeatLease(shardCtx, workerID, lease.LeaseID)
				var apiErr *client.APIError
				if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusGone {
					logger.Info("lease gone, abandoning shard",
						slog.String("lease", lease.LeaseID), slog.Int("shard", lease.Shard))
					cancelShard()
					return
				}
				// Transient heartbeat failures are survivable as long as one
				// succeeds inside the TTL; keep ticking.
			}
		}
	}()

	records := make([]service.SweepRecord, 0, lease.End-lease.Start)
	evalErr := engine.RunSweepRange(shardCtx, plan, lease.Start, lease.End, func(rec service.SweepRecord) error {
		// Cache provenance is worker-local state; the coordinator normalizes
		// it too, but stripping it here keeps the wire payload canonical.
		rec.Cached = false
		records = append(records, rec)
		return nil
	})
	cancelShard()
	<-hbDone
	if evalErr != nil {
		return evalErr
	}

	// Submission survives transient transport faults (it is idempotent
	// server-side); a definitive server answer — 410 job gone, 400 malformed —
	// ends the attempt.
	sub := client.ShardResultRequest{
		WorkerID: workerID,
		LeaseID:  lease.LeaseID,
		JobID:    lease.JobID,
		Shard:    lease.Shard,
		Records:  records,
	}
	for attempt := 0; ; attempt++ {
		err := cli.SubmitShard(ctx, sub)
		if err == nil {
			return nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) || attempt >= 3 {
			return fmt.Errorf("submit shard %d of %s: %w", lease.Shard, lease.JobID, err)
		}
		if err := sleepCtx(ctx, client.Jitter(poll)); err != nil {
			return err
		}
	}
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
