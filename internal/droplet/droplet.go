// Package droplet models the nanoliter droplets manipulated by a digital
// microfluidic biochip: volume, chemical contents, and the merge/split
// arithmetic used by mixing and dispensing operations. Position and motion
// belong to the fluidics simulator; this package is pure chemistry.
package droplet

import (
	"fmt"
	"sort"
	"strings"
)

// Species names a chemical species carried in a droplet.
type Species string

// Species appearing in the multiplexed in-vitro diagnostics assays
// (Trinder's reaction, paper §7).
const (
	Glucose          Species = "glucose"
	Lactate          Species = "lactate"
	Glutamate        Species = "glutamate"
	Pyruvate         Species = "pyruvate"
	GlucoseOxidase   Species = "glucose-oxidase"
	LactateOxidase   Species = "lactate-oxidase"
	GlutamateOxidase Species = "glutamate-oxidase"
	PyruvateOxidase  Species = "pyruvate-oxidase"
	Peroxidase       Species = "peroxidase"
	FourAAP          Species = "4-aap"        // 4-amino antipyrine
	TOPS             Species = "tops"         // N-ethyl-N-sulfopropyl-m-toluidine
	Quinoneimine     Species = "quinoneimine" // violet-colored product, 545 nm
)

// Mixture maps species to molar concentration (mol/L).
type Mixture map[Species]float64

// Clone returns an independent copy of the mixture.
func (m Mixture) Clone() Mixture {
	out := make(Mixture, len(m))
	for s, c := range m {
		out[s] = c
	}
	return out
}

// Concentration returns the concentration of s (0 when absent).
func (m Mixture) Concentration(s Species) float64 { return m[s] }

// Species returns the species present (concentration > 0), sorted by name.
func (m Mixture) Species() []Species {
	var out []Species
	for s, c := range m {
		if c > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String lists the mixture contents deterministically.
func (m Mixture) String() string {
	sp := m.Species()
	parts := make([]string, 0, len(sp))
	for _, s := range sp {
		parts = append(parts, fmt.Sprintf("%s=%.3g", s, m[s]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Droplet is a discrete liquid packet.
type Droplet struct {
	// Volume in nanoliters.
	Volume float64
	// Contents holds the dissolved species.
	Contents Mixture
	// Mixedness in [0,1] tracks homogenization after a merge: 0 = freshly
	// merged (layered), 1 = fully mixed. Transport steps raise it (droplets
	// mix by being shuttled across electrodes).
	Mixedness float64
}

// New returns a fully mixed droplet of the given volume and contents.
func New(volumeNL float64, contents Mixture) (Droplet, error) {
	if volumeNL <= 0 {
		return Droplet{}, fmt.Errorf("droplet: volume %g nL must be positive", volumeNL)
	}
	for s, c := range contents {
		if c < 0 {
			return Droplet{}, fmt.Errorf("droplet: negative concentration %g for %s", c, s)
		}
	}
	return Droplet{Volume: volumeNL, Contents: contents.Clone(), Mixedness: 1}, nil
}

// Merge combines two droplets: volumes add, concentrations average weighted
// by volume, and the result starts unmixed (Mixedness 0).
func Merge(a, b Droplet) Droplet {
	total := a.Volume + b.Volume
	contents := make(Mixture)
	for s, c := range a.Contents {
		contents[s] += c * a.Volume / total
	}
	for s, c := range b.Contents {
		contents[s] += c * b.Volume / total
	}
	return Droplet{Volume: total, Contents: contents, Mixedness: 0}
}

// Split divides a droplet into two equal halves with identical contents. It
// returns an error when the droplet is not yet homogenized: splitting an
// unmixed droplet would give unpredictable halves.
func Split(d Droplet) (Droplet, Droplet, error) {
	if d.Mixedness < 1 {
		return Droplet{}, Droplet{}, fmt.Errorf("droplet: cannot split at mixedness %.2f < 1", d.Mixedness)
	}
	half := Droplet{Volume: d.Volume / 2, Contents: d.Contents.Clone(), Mixedness: 1}
	return half, half.CloneDroplet(), nil
}

// CloneDroplet returns a deep copy.
func (d Droplet) CloneDroplet() Droplet {
	d.Contents = d.Contents.Clone()
	return d
}

// AdvanceMixing raises Mixedness by delta, clamped to 1.
func (d *Droplet) AdvanceMixing(delta float64) {
	d.Mixedness += delta
	if d.Mixedness > 1 {
		d.Mixedness = 1
	}
}

// Mixed reports whether the droplet is homogenized.
func (d Droplet) Mixed() bool { return d.Mixedness >= 1 }

// String summarizes the droplet.
func (d Droplet) String() string {
	return fmt.Sprintf("%.1f nL %s (mixed %.0f%%)", d.Volume, d.Contents, d.Mixedness*100)
}
