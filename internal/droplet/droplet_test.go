package droplet

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("zero volume accepted")
	}
	if _, err := New(-1, nil); err == nil {
		t.Error("negative volume accepted")
	}
	if _, err := New(1, Mixture{Glucose: -0.1}); err == nil {
		t.Error("negative concentration accepted")
	}
	d, err := New(1.5, Mixture{Glucose: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Mixed() {
		t.Error("fresh droplet should be mixed")
	}
}

func TestNewClonesContents(t *testing.T) {
	m := Mixture{Glucose: 1}
	d, err := New(1, m)
	if err != nil {
		t.Fatal(err)
	}
	m[Glucose] = 99
	if d.Contents[Glucose] != 1 {
		t.Error("droplet shares caller's mixture")
	}
}

func TestMergeConservesMassAndVolume(t *testing.T) {
	f := func(v1, v2, c1, c2 uint8) bool {
		vol1 := float64(v1)/50 + 0.5
		vol2 := float64(v2)/50 + 0.5
		conc1 := float64(c1) / 100
		conc2 := float64(c2) / 100
		a, _ := New(vol1, Mixture{Glucose: conc1})
		b, _ := New(vol2, Mixture{Glucose: conc2, Peroxidase: 0.001})
		m := Merge(a, b)
		if math.Abs(m.Volume-(vol1+vol2)) > 1e-12 {
			return false
		}
		// Moles of glucose conserved.
		moles := conc1*vol1 + conc2*vol2
		if math.Abs(m.Contents[Glucose]*m.Volume-moles) > 1e-9 {
			return false
		}
		// Species only in b are diluted, not lost.
		wantPer := 0.001 * vol2 / (vol1 + vol2)
		return math.Abs(m.Contents[Peroxidase]-wantPer) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeStartsUnmixed(t *testing.T) {
	a, _ := New(1, Mixture{Glucose: 1})
	b, _ := New(1, Mixture{Peroxidase: 1})
	m := Merge(a, b)
	if m.Mixed() || m.Mixedness != 0 {
		t.Error("merged droplet must start unmixed")
	}
}

func TestAdvanceMixingClamps(t *testing.T) {
	a, _ := New(1, Mixture{Glucose: 1})
	b, _ := New(1, nil)
	m := Merge(a, b)
	for i := 0; i < 100; i++ {
		m.AdvanceMixing(0.1)
	}
	if m.Mixedness != 1 {
		t.Errorf("mixedness %v, want clamp at 1", m.Mixedness)
	}
}

func TestSplitRequiresMixed(t *testing.T) {
	a, _ := New(1, Mixture{Glucose: 1})
	b, _ := New(1, nil)
	m := Merge(a, b)
	if _, _, err := Split(m); err == nil {
		t.Error("splitting unmixed droplet accepted")
	}
	m.AdvanceMixing(1)
	h1, h2, err := Split(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1.Volume-m.Volume/2) > 1e-12 || math.Abs(h2.Volume-m.Volume/2) > 1e-12 {
		t.Error("split halves unequal")
	}
	if h1.Contents[Glucose] != m.Contents[Glucose] {
		t.Error("split changed concentration")
	}
	// Halves are independent.
	h1.Contents[Glucose] = 42
	if h2.Contents[Glucose] == 42 {
		t.Error("split halves share contents")
	}
}

func TestMixtureSpeciesSortedAndPositive(t *testing.T) {
	m := Mixture{TOPS: 0.1, Glucose: 0.2, Quinoneimine: 0}
	sp := m.Species()
	if len(sp) != 2 || sp[0] != Glucose || sp[1] != TOPS {
		t.Errorf("Species() = %v", sp)
	}
}

func TestMixtureStringDeterministic(t *testing.T) {
	m := Mixture{TOPS: 0.1, Glucose: 0.2}
	if m.String() != m.String() {
		t.Error("String not deterministic")
	}
	if !strings.Contains(m.String(), "glucose") {
		t.Errorf("String = %q", m.String())
	}
}

func TestCloneDropletIndependent(t *testing.T) {
	d, _ := New(2, Mixture{Lactate: 0.5})
	c := d.CloneDroplet()
	c.Contents[Lactate] = 9
	if d.Contents[Lactate] != 0.5 {
		t.Error("clone shares contents")
	}
}

func TestDropletString(t *testing.T) {
	d, _ := New(1.3, Mixture{Glucose: 0.005})
	s := d.String()
	if !strings.Contains(s, "nL") || !strings.Contains(s, "glucose") {
		t.Errorf("String = %q", s)
	}
}
