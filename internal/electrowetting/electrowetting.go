// Package electrowetting models droplet actuation on a digital microfluidic
// biochip: the Lippmann–Young contact-angle response to the control voltage,
// the actuation threshold, and the droplet transport velocity, following the
// device physics of the paper's §3 (control voltages of 0–90 V, droplet
// velocities up to 20 cm/s, Parylene C insulator ≈ 800 nm, Teflon AF
// hydrophobic coating).
//
// The model also quantifies how the paper's parametric manufacturing defects
// (insulator thickness, electrode length and plate gap deviations) degrade
// transport, which is what makes such defects detectable: a deviation is a
// parametric *fault* only when the performance change exceeds the system
// tolerance (§4).
package electrowetting

import (
	"fmt"
	"math"

	"dmfb/internal/defects"
)

// epsilon0 is the vacuum permittivity in F/m.
const epsilon0 = 8.8541878128e-12

// Params describes one cell's electrowetting geometry and materials.
type Params struct {
	// ContactAngle0 is the zero-voltage contact angle in radians (Teflon AF
	// against silicone-oil filler: about 104 degrees).
	ContactAngle0 float64
	// InsulatorThickness is the dielectric thickness in meters (≈ 850 nm:
	// 800 nm Parylene C plus 50 nm Teflon AF).
	InsulatorThickness float64
	// InsulatorPermittivity is the relative permittivity of the dielectric
	// stack (Parylene C ≈ 3.1).
	InsulatorPermittivity float64
	// SurfaceTension is the droplet/filler interfacial tension in N/m
	// (aqueous droplet in silicone oil ≈ 0.047).
	SurfaceTension float64
	// ThresholdForce is the per-unit-length actuation force (N/m) needed to
	// overcome contact-angle hysteresis before the droplet moves.
	ThresholdForce float64
	// ElectrodePitch is the electrode edge length in meters (1.5 mm class
	// devices in the cited experiments).
	ElectrodePitch float64
	// PlateGap is the spacing between the two glass plates in meters.
	PlateGap float64
	// MaxVelocity is the saturation transport velocity in m/s (0.20 = the
	// 20 cm/s the paper reports at high voltage).
	MaxVelocity float64
	// RatedVoltage is the control voltage at which MaxVelocity is reached.
	RatedVoltage float64
	// Mobility converts net actuation force to droplet velocity,
	// (m/s)/(N/m), lumping viscous drag from the filler medium and the
	// plate surfaces.
	Mobility float64
}

// Default returns nominal device parameters matching the paper's description.
func Default() Params {
	return Params{
		ContactAngle0:         104 * math.Pi / 180,
		InsulatorThickness:    850e-9,
		InsulatorPermittivity: 3.1,
		SurfaceTension:        0.047,
		ThresholdForce:        0.010,
		ElectrodePitch:        1.5e-3,
		PlateGap:              0.3e-3,
		MaxVelocity:           0.20,
		RatedVoltage:          90,
		Mobility:              1.66,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.ContactAngle0 <= 0 || p.ContactAngle0 >= math.Pi:
		return fmt.Errorf("electrowetting: contact angle %v outside (0, pi)", p.ContactAngle0)
	case p.InsulatorThickness <= 0:
		return fmt.Errorf("electrowetting: non-positive insulator thickness")
	case p.InsulatorPermittivity < 1:
		return fmt.Errorf("electrowetting: relative permittivity %v < 1", p.InsulatorPermittivity)
	case p.SurfaceTension <= 0:
		return fmt.Errorf("electrowetting: non-positive surface tension")
	case p.ThresholdForce < 0:
		return fmt.Errorf("electrowetting: negative threshold force")
	case p.ElectrodePitch <= 0 || p.PlateGap <= 0:
		return fmt.Errorf("electrowetting: non-positive geometry")
	case p.MaxVelocity <= 0 || p.RatedVoltage <= 0:
		return fmt.Errorf("electrowetting: non-positive velocity rating")
	case p.Mobility <= 0:
		return fmt.Errorf("electrowetting: non-positive mobility")
	}
	return nil
}

// capacitance returns the insulator capacitance per unit area (F/m²).
func (p Params) capacitance() float64 {
	return epsilon0 * p.InsulatorPermittivity / p.InsulatorThickness
}

// ElectrowettingNumber returns the dimensionless electrowetting number
// η = C·V²/(2γ), the voltage-induced change in cos θ.
func (p Params) ElectrowettingNumber(v float64) float64 {
	return p.capacitance() * v * v / (2 * p.SurfaceTension)
}

// ContactAngle returns the voltage-dependent contact angle in radians from
// the Lippmann–Young equation cos θ(V) = cos θ0 + η(V), with saturation:
// real devices never wet below ≈ 30 degrees.
func (p Params) ContactAngle(v float64) float64 {
	const saturationAngle = 30 * math.Pi / 180
	c := math.Cos(p.ContactAngle0) + p.ElectrowettingNumber(v)
	if c > math.Cos(saturationAngle) {
		return saturationAngle
	}
	return math.Acos(c)
}

// ActuationForce returns the per-unit-length driving force (N/m) on a
// droplet overlapping an energized electrode:
// F = γ·(cos θ(V) − cos θ0) = C·V²/2 before saturation.
func (p Params) ActuationForce(v float64) float64 {
	return p.SurfaceTension * (math.Cos(p.ContactAngle(v)) - math.Cos(p.ContactAngle0))
}

// ThresholdVoltage returns the minimum control voltage that overcomes
// contact-angle hysteresis and moves the droplet.
func (p Params) ThresholdVoltage() float64 {
	return math.Sqrt(2 * p.ThresholdForce / p.capacitance())
}

// Velocity returns the droplet transport velocity (m/s) at control voltage
// v: zero below the hysteresis threshold, proportional to the net actuation
// force (Mobility × (C·V²/2 − ThresholdForce)) above it, and saturating at
// MaxVelocity — reached around the rated voltage on nominal devices.
// Parametric defects reduce the capacitance term and therefore the velocity
// at a fixed operating voltage, which is how they become observable.
func (p Params) Velocity(v float64) float64 {
	drive := p.capacitance()*v*v/2 - p.ThresholdForce
	if drive <= 0 {
		return 0
	}
	vel := p.Mobility * drive
	if vel > p.MaxVelocity {
		return p.MaxVelocity
	}
	return vel
}

// TransportTime returns the seconds needed to move a droplet one electrode
// pitch at control voltage v, and an error below the actuation threshold.
func (p Params) TransportTime(v float64) (float64, error) {
	vel := p.Velocity(v)
	if vel <= 0 {
		return 0, fmt.Errorf("electrowetting: %g V below threshold %.3g V", v, p.ThresholdVoltage())
	}
	return p.ElectrodePitch / vel, nil
}

// WithDeviation returns the parameters after applying a relative deviation
// to the quantity targeted by the given parametric defect kind. Catastrophic
// kinds return the parameters unchanged (their effect is modeled as a dead
// cell, not a degraded one).
func (p Params) WithDeviation(kind defects.Kind, deviation float64) Params {
	switch kind {
	case defects.InsulatorThicknessDeviation:
		p.InsulatorThickness *= 1 + deviation
	case defects.ElectrodeLengthDeviation:
		p.ElectrodePitch *= 1 + deviation
	case defects.PlateGapDeviation:
		p.PlateGap *= 1 + deviation
	}
	return p
}

// VelocityDeviation returns the relative transport-velocity change caused by
// a parametric defect at the given operating voltage:
// (v_defective − v_nominal)/v_nominal.
func (p Params) VelocityDeviation(kind defects.Kind, deviation, voltage float64) float64 {
	nominal := p.Velocity(voltage)
	if nominal == 0 {
		return 0
	}
	degraded := p.WithDeviation(kind, deviation).Velocity(voltage)
	return (degraded - nominal) / nominal
}

// IsParametricFault reports whether a parametric deviation is a detectable
// fault at the given operating voltage: the induced transport-time change
// exceeds the relative tolerance (paper §4: "a parametric fault is
// detectable only if this deviation exceeds the tolerance in system
// performance").
func (p Params) IsParametricFault(kind defects.Kind, deviation, voltage, tolerance float64) bool {
	nominalT, err := p.TransportTime(voltage)
	if err != nil {
		return true // nominal device immobile: everything is broken
	}
	degradedT, err := p.WithDeviation(kind, deviation).TransportTime(voltage)
	if err != nil {
		return true // deviation pushed the cell below actuation threshold
	}
	rel := math.Abs(degradedT-nominalT) / nominalT
	return rel > tolerance
}
