package electrowetting

import (
	"math"
	"testing"

	"dmfb/internal/defects"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Mobility = 0 },
		func(p *Params) { p.ContactAngle0 = 0 },
		func(p *Params) { p.ContactAngle0 = math.Pi },
		func(p *Params) { p.InsulatorThickness = 0 },
		func(p *Params) { p.InsulatorPermittivity = 0.5 },
		func(p *Params) { p.SurfaceTension = -1 },
		func(p *Params) { p.ThresholdForce = -1 },
		func(p *Params) { p.ElectrodePitch = 0 },
		func(p *Params) { p.PlateGap = 0 },
		func(p *Params) { p.MaxVelocity = 0 },
		func(p *Params) { p.RatedVoltage = 0 },
	}
	for i, mutate := range mutations {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestContactAngleDecreasesWithVoltage(t *testing.T) {
	p := Default()
	prev := p.ContactAngle(0)
	if math.Abs(prev-p.ContactAngle0) > 1e-12 {
		t.Errorf("zero-voltage angle %v != theta0 %v", prev, p.ContactAngle0)
	}
	for v := 10.0; v <= 120; v += 10 {
		a := p.ContactAngle(v)
		if a > prev+1e-12 {
			t.Errorf("contact angle increased at %v V", v)
		}
		prev = a
	}
}

func TestContactAngleSaturates(t *testing.T) {
	p := Default()
	const saturation = 30 * math.Pi / 180
	if a := p.ContactAngle(1000); math.Abs(a-saturation) > 1e-9 {
		t.Errorf("angle at extreme voltage %v, want saturation %v", a, saturation)
	}
}

func TestThresholdVoltagePlausible(t *testing.T) {
	// The cited devices actuate in the tens of volts (control range 0-90 V).
	vt := Default().ThresholdVoltage()
	if vt < 10 || vt > 60 {
		t.Errorf("threshold voltage %.1f V outside plausible 10-60 V", vt)
	}
}

func TestVelocityCurve(t *testing.T) {
	p := Default()
	vt := p.ThresholdVoltage()
	if p.Velocity(vt-1) != 0 {
		t.Error("below threshold the droplet must not move")
	}
	// Paper: velocities up to 20 cm/s; rated voltage 90 V.
	if got := p.Velocity(90); math.Abs(got-0.20) > 1e-9 {
		t.Errorf("velocity at 90 V = %v, want 0.20 m/s", got)
	}
	if got := p.Velocity(200); got != p.MaxVelocity {
		t.Errorf("velocity beyond rated voltage %v, want saturation", got)
	}
	prev := -1.0
	for v := 0.0; v <= 90; v += 5 {
		vel := p.Velocity(v)
		if vel < prev {
			t.Errorf("velocity decreased at %v V", v)
		}
		if vel < 0 || vel > p.MaxVelocity {
			t.Errorf("velocity %v out of range at %v V", vel, v)
		}
		prev = vel
	}
}

func TestTransportTime(t *testing.T) {
	p := Default()
	tt, err := p.TransportTime(90)
	if err != nil {
		t.Fatal(err)
	}
	// 1.5 mm at 0.2 m/s = 7.5 ms.
	if math.Abs(tt-0.0075) > 1e-9 {
		t.Errorf("transport time %v s, want 7.5 ms", tt)
	}
	if _, err := p.TransportTime(1); err == nil {
		t.Error("sub-threshold voltage should error")
	}
}

func TestWithDeviationTargetsRightParameter(t *testing.T) {
	p := Default()
	thicker := p.WithDeviation(defects.InsulatorThicknessDeviation, 0.5)
	if math.Abs(thicker.InsulatorThickness-1.5*p.InsulatorThickness) > 1e-18 {
		t.Error("insulator deviation not applied")
	}
	longer := p.WithDeviation(defects.ElectrodeLengthDeviation, 0.2)
	if math.Abs(longer.ElectrodePitch-1.2*p.ElectrodePitch) > 1e-12 {
		t.Error("pitch deviation not applied")
	}
	wider := p.WithDeviation(defects.PlateGapDeviation, -0.1)
	if math.Abs(wider.PlateGap-0.9*p.PlateGap) > 1e-12 {
		t.Error("gap deviation not applied")
	}
	same := p.WithDeviation(defects.OpenConnection, 0.9)
	if same != p {
		t.Error("catastrophic kinds must leave parameters unchanged")
	}
}

func TestThickerInsulatorRaisesThresholdAndSlowsDroplet(t *testing.T) {
	p := Default()
	thick := p.WithDeviation(defects.InsulatorThicknessDeviation, 0.4)
	if thick.ThresholdVoltage() <= p.ThresholdVoltage() {
		t.Error("thicker insulator must raise the threshold voltage")
	}
	const v = 50
	if thick.Velocity(v) >= p.Velocity(v) {
		t.Error("thicker insulator must slow the droplet at fixed voltage")
	}
	dev := p.VelocityDeviation(defects.InsulatorThicknessDeviation, 0.4, v)
	if dev >= 0 {
		t.Errorf("velocity deviation %v should be negative", dev)
	}
}

func TestIsParametricFaultToleranceBehavior(t *testing.T) {
	p := Default()
	const v = 60
	// A tiny deviation stays within a 15% tolerance; a huge one does not.
	if p.IsParametricFault(defects.InsulatorThicknessDeviation, 0.01, v, 0.15) {
		t.Error("1% thickness deviation flagged at 15% tolerance")
	}
	if !p.IsParametricFault(defects.InsulatorThicknessDeviation, 0.8, v, 0.15) {
		t.Error("80% thickness deviation not flagged")
	}
	// Deviation large enough to immobilize the droplet is always a fault.
	if !p.IsParametricFault(defects.InsulatorThicknessDeviation, 5.0, v, 0.99) {
		t.Error("immobilizing deviation not flagged")
	}
}

func TestElectrowettingNumberQuadratic(t *testing.T) {
	p := Default()
	e1 := p.ElectrowettingNumber(30)
	e2 := p.ElectrowettingNumber(60)
	if math.Abs(e2-4*e1) > 1e-12 {
		t.Errorf("electrowetting number not quadratic: %v vs %v", e1, e2)
	}
}

func TestActuationForceNonNegativeAndMonotone(t *testing.T) {
	p := Default()
	prev := -1.0
	for v := 0.0; v <= 90; v += 10 {
		f := p.ActuationForce(v)
		if f < -1e-15 {
			t.Errorf("negative force at %v V", v)
		}
		if f < prev-1e-15 {
			t.Errorf("force decreased at %v V", v)
		}
		prev = f
	}
}
