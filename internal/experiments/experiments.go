// Package experiments contains one driver per table and figure of the
// paper's evaluation, each returning printable rows (stats.Table) plus the
// underlying numbers. The cmd/dtmb-experiments tool, the repository
// benchmarks, and EXPERIMENTS.md all consume these drivers, so the recorded
// results are regenerated from a single code path.
package experiments

import (
	"context"
	"fmt"

	"dmfb/internal/chip"
	"dmfb/internal/core"
	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/sqgrid"
	"dmfb/internal/stats"
	"dmfb/internal/sweep"
	"dmfb/internal/yieldsim"
)

// Config bundles the knobs shared by every experiment.
type Config struct {
	// Runs is the Monte-Carlo run count per point (paper: 10000).
	Runs int
	// Seed fixes all pseudo-randomness.
	Seed int64
	// Workers bounds Monte-Carlo parallelism (0 = GOMAXPROCS).
	Workers int
}

// Default returns the paper's configuration: 10000 runs.
func Default() Config { return Config{Runs: 10000, Seed: 20050307} }

// Quick returns a reduced configuration for tests and smoke runs.
func Quick() Config { return Config{Runs: 800, Seed: 20050307} }

func (c Config) monteCarlo() *yieldsim.MonteCarlo {
	mc := yieldsim.NewMonteCarlo(c.Seed)
	if c.Runs > 0 {
		mc.Runs = c.Runs
	}
	mc.Workers = c.Workers
	return mc
}

// simParams converts the experiment knobs to core simulation parameters, so
// sweep-driven experiments and the ad-hoc Monte-Carlo drivers above share
// one determinism contract.
func (c Config) simParams() core.SimParams {
	return core.SimParams{Runs: c.Runs, Seed: c.Seed, Workers: c.Workers}
}

// runSweep expands and evaluates a sweep grid sequentially (each point
// already parallelizes across Workers), returning results in point order.
func runSweep(spec sweep.Spec, sp core.SimParams) ([]sweep.PointResult, error) {
	pts, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	results := make([]sweep.PointResult, 0, len(pts))
	err = sweep.Run(context.Background(), pts, 1, sweep.Evaluator(sp), func(r sweep.PointResult) error {
		results = append(results, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// fmtF formats a float at 4 decimals for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

// Table1 reproduces the paper's Table 1: redundancy ratios of the four
// defect-tolerant designs, both asymptotic (s/p) and realized on a finite
// array of 100 primaries.
func Table1() stats.Table {
	tb := stats.Table{
		Title:   "Table 1: Redundancy ratios for the defect-tolerant architectures",
		Columns: []string{"Design", "RR (s/p)", "RR (n=100 array)"},
	}
	for _, d := range layout.AllDesigns() {
		arr, err := layout.BuildWithPrimaryTarget(d, 100)
		finite := "-"
		if err == nil {
			finite = fmtF(arr.RedundancyRatio())
		}
		tb.AddRow(d.Name, fmtF(d.RR()), finite)
	}
	return tb
}

// Figure2Row is one scenario of the shifted-replacement comparison.
type Figure2Row struct {
	Scenario              string
	ShiftedCells          int
	ShiftedModules        int
	InterstitialCells     int
	InterstitialModules   int
	FaultFreeModulesMoved int
}

// Figure2 reproduces the argument of the paper's Fig. 2: on a spare-row
// array, a fault near the spare row relocates one module, but a fault far
// from it cascades through fault-free modules; interstitial redundancy
// always remaps exactly one cell.
func Figure2() ([]Figure2Row, stats.Table, error) {
	p := sqgrid.Figure2Placement()
	scenarios := []struct {
		name  string
		fault sqgrid.Coord
	}{
		{"fault in Module 1 (next to spare row)", sqgrid.Coord{X: 3, Y: 6}},
		{"fault in Module 2 (middle)", sqgrid.Coord{X: 3, Y: 3}},
		{"fault in Module 3 (far from spare row)", sqgrid.Coord{X: 3, Y: 1}},
	}
	tb := stats.Table{
		Title: "Figure 2: shifted replacement vs interstitial local reconfiguration",
		Columns: []string{"Scenario", "Shifted cells", "Shifted modules",
			"Interstitial cells", "Interstitial modules"},
	}
	var rows []Figure2Row
	for _, sc := range scenarios {
		cmp, results, err := reconfig.CompareWithInterstitial(p, []sqgrid.Coord{sc.fault}, reconfig.ShiftOptions{})
		if err != nil {
			return nil, tb, err
		}
		if !cmp.ShiftedOK {
			return nil, tb, fmt.Errorf("experiments: scenario %q failed: %s", sc.name, results[0].Reason)
		}
		row := Figure2Row{
			Scenario:              sc.name,
			ShiftedCells:          cmp.ShiftedCellsRemapped,
			ShiftedModules:        cmp.ShiftedModulesTouched,
			InterstitialCells:     cmp.InterstitialCellsRemapped,
			InterstitialModules:   cmp.InterstitialModules,
			FaultFreeModulesMoved: cmp.ShiftedModulesTouched - 1,
		}
		rows = append(rows, row)
		tb.AddRow(sc.name, fmt.Sprint(row.ShiftedCells), fmt.Sprint(row.ShiftedModules),
			fmt.Sprint(row.InterstitialCells), fmt.Sprint(row.InterstitialModules))
	}
	return rows, tb, nil
}

// Figure7 reproduces the paper's Fig. 7: the analytical yield of DTMB(1,6)
// versus cell survival probability p for several array sizes n, against the
// no-redundancy baseline.
func Figure7(ns []int, ps []float64) ([]stats.Series, stats.Table) {
	if len(ns) == 0 {
		ns = []int{60, 120, 240}
	}
	if len(ps) == 0 {
		ps = stats.Linspace(0.90, 1.00, 11)
	}
	var series []stats.Series
	tb := stats.Table{
		Title:   "Figure 7: analytical yield of DTMB(1,6) vs no redundancy",
		Columns: []string{"p"},
	}
	for _, n := range ns {
		tb.Columns = append(tb.Columns, fmt.Sprintf("DTMB(1,6) n=%d", n))
		tb.Columns = append(tb.Columns, fmt.Sprintf("no-red n=%d", n))
	}
	for _, n := range ns {
		s := stats.Series{Name: fmt.Sprintf("DTMB(1,6) n=%d", n)}
		b := stats.Series{Name: fmt.Sprintf("no-redundancy n=%d", n)}
		for _, p := range ps {
			s.Append(p, yieldsim.ClusterYieldDTMB16(p, n))
			b.Append(p, yieldsim.NoRedundancy(p, n))
		}
		series = append(series, s, b)
	}
	for i, p := range ps {
		row := []string{fmtF(p)}
		for j := 0; j < len(series); j += 2 {
			row = append(row, fmtF(series[j].Y[i]), fmtF(series[j+1].Y[i]))
		}
		tb.AddRow(row...)
	}
	return series, tb
}

// Figure8 demonstrates the bipartite-matching reconfiguration model on a
// small deterministic instance: the redesigned case-study chip with a fixed
// fault pattern, reporting the faulty primaries, candidate spares, and the
// matching found.
func Figure8(seed int64) (reconfig.Plan, stats.Table, error) {
	c, err := chip.NewRedesignedChip()
	if err != nil {
		return reconfig.Plan{}, stats.Table{}, err
	}
	if err := c.InjectFixed(seed, 8, defects.AllCells); err != nil {
		return reconfig.Plan{}, stats.Table{}, err
	}
	plan, err := c.Reconfigure()
	if err != nil {
		return reconfig.Plan{}, stats.Table{}, err
	}
	tb := stats.Table{
		Title:   "Figure 8: maximal bipartite matching between faulty primaries and adjacent spares",
		Columns: []string{"Faulty primary", "Assigned spare"},
	}
	arr := c.Array()
	for _, a := range plan.Assignments {
		tb.AddRow(arr.Cell(a.Faulty).Pos.String(), arr.Cell(a.Spare).Pos.String())
	}
	for _, u := range plan.Unmatched {
		tb.AddRow(arr.Cell(u).Pos.String(), "UNMATCHED")
	}
	return plan, tb, nil
}

// Figure9Point is one Monte-Carlo yield estimate of Fig. 9.
type Figure9Point struct {
	Design string
	N      int
	P      float64
	Result yieldsim.Result
}

// Figure9 reproduces the paper's Fig. 9: Monte-Carlo yield of DTMB(2,6),
// DTMB(3,6) and DTMB(4,4) versus p for several primary-cell counts n. The
// grid is evaluated by the sweep engine, so the driver and the /v1/sweep
// endpoint produce identical numbers for identical parameters.
func Figure9(cfg Config, ns []int, ps []float64) ([]Figure9Point, stats.Table, error) {
	if len(ns) == 0 {
		ns = []int{60, 120, 240}
	}
	if len(ps) == 0 {
		ps = stats.Linspace(0.90, 1.00, 11)
	}
	tb := stats.Table{
		Title:   fmt.Sprintf("Figure 9: Monte-Carlo yield (%d runs per point)", cfg.Runs),
		Columns: []string{"Design", "n", "p", "yield", "ci-lo", "ci-hi"},
	}
	spec := sweep.Spec{
		Strategies: []sweep.Strategy{sweep.Local},
		Designs:    []string{layout.DTMB26().Name, layout.DTMB36().Name, layout.DTMB44().Name},
		NPrimaries: ns,
		Ps:         ps,
	}
	results, err := runSweep(spec, cfg.simParams())
	if err != nil {
		return nil, tb, err
	}
	points := make([]Figure9Point, 0, len(results))
	for _, r := range results {
		points = append(points, Figure9Point{Design: r.Design, N: r.NPrimary, P: r.P, Result: r.YieldResult()})
		tb.AddRow(r.Design, fmt.Sprint(r.NPrimary), fmtF(r.P), fmtF(r.Yield), fmtF(r.CILo), fmtF(r.CIHi))
	}
	return points, tb, nil
}

// Figure10Point is one effective-yield estimate of Fig. 10.
type Figure10Point struct {
	Design         string
	P              float64
	Yield          float64
	EffectiveYield float64
}

// Figure10 reproduces the paper's Fig. 10: effective yield EY = Y/(1+RR)
// versus p for all four redundancy levels at n = 100 primary cells.
// DTMB(4,4) dominates at low p; DTMB(1,6)/DTMB(2,6) win at high p. The grid
// is evaluated by the sweep engine; the design-major result order is folded
// back into the p-major rows of the paper's figure.
func Figure10(cfg Config, ps []float64) ([]Figure10Point, stats.Table, error) {
	if len(ps) == 0 {
		ps = stats.Linspace(0.80, 1.00, 21)
	}
	const n = 100
	tb := stats.Table{
		Title:   fmt.Sprintf("Figure 10: effective yield, n=%d (%d runs per point)", n, cfg.Runs),
		Columns: []string{"p"},
	}
	designs := layout.AllDesigns()
	names := make([]string, len(designs))
	for i, d := range designs {
		names[i] = d.Name
		tb.Columns = append(tb.Columns, fmt.Sprintf("EY %s", d.Name))
	}
	spec := sweep.Spec{
		Strategies: []sweep.Strategy{sweep.Local},
		Designs:    names,
		NPrimaries: []int{n},
		Ps:         ps,
	}
	results, err := runSweep(spec, cfg.simParams())
	if err != nil {
		return nil, tb, err
	}
	// Expansion order is design-major, p-minor: result index = di*len(ps)+pi.
	at := func(di, pi int) sweep.PointResult { return results[di*len(ps)+pi] }
	var points []Figure10Point
	for pi, p := range ps {
		row := []string{fmtF(p)}
		for di, d := range designs {
			r := at(di, pi)
			points = append(points, Figure10Point{Design: d.Name, P: p, Yield: r.Yield, EffectiveYield: r.EffectiveYield})
			row = append(row, fmtF(r.EffectiveYield))
		}
		tb.AddRow(row...)
	}
	return points, tb, nil
}

// CaseStudyBaseline reports the no-redundancy yield of the original
// 108-cell chip across p, including the paper's 0.3378 figure at p = 0.99.
func CaseStudyBaseline(ps []float64) stats.Table {
	if len(ps) == 0 {
		ps = []float64{0.95, 0.97, 0.99, 0.995, 0.999}
	}
	tb := stats.Table{
		Title:   "Case study: yield of the original chip (108 assay cells, no spares)",
		Columns: []string{"p", "yield"},
	}
	for _, p := range ps {
		tb.AddRow(fmtF(p), fmtF(chip.OriginalYield(p)))
	}
	return tb
}

// Figure13Policy names one fault-domain / repair-scope combination.
type Figure13Policy struct {
	Name   string
	Domain defects.Domain
	Scope  reconfig.Scope
}

// Figure13Policies returns the four policy combinations evaluated for the
// case-study experiment. The paper's description ("the cells in the
// microfluidic array, including both primary and spare cells, are randomly
// chosen to fail" + matching over all faulty primaries) corresponds to
// AllCells/RepairAll; the other combinations are ablations.
func Figure13Policies() []Figure13Policy {
	return []Figure13Policy{
		{"all-cells/repair-all", defects.AllCells, reconfig.RepairAll},
		{"all-cells/repair-used", defects.AllCells, reconfig.RepairUsed},
		{"primaries-only/repair-all", defects.PrimariesOnly, reconfig.RepairAll},
		{"primaries-only/repair-used", defects.PrimariesOnly, reconfig.RepairUsed},
	}
}

// Figure13Point is one (m, yield) estimate.
type Figure13Point struct {
	Policy string
	M      int
	Result yieldsim.Result
}

// Figure13 reproduces the paper's Fig. 13: yield of the DTMB(2,6)-based
// redesign in the presence of exactly m cell failures, for each policy.
func Figure13(cfg Config, ms []int, policies []Figure13Policy) ([]Figure13Point, stats.Table, error) {
	if len(ms) == 0 {
		ms = []int{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}
	}
	if len(policies) == 0 {
		policies = Figure13Policies()
	}
	c, err := chip.NewRedesignedChip()
	if err != nil {
		return nil, stats.Table{}, err
	}
	arr := c.Array()
	used := make([]bool, arr.NumCells())
	for _, id := range c.UsedCells() {
		used[id] = true
	}
	tb := stats.Table{
		Title:   fmt.Sprintf("Figure 13: case-study yield vs number of faults (%d runs per point)", cfg.Runs),
		Columns: []string{"m"},
	}
	for _, pol := range policies {
		tb.Columns = append(tb.Columns, pol.Name)
	}
	var points []Figure13Point
	for _, m := range ms {
		row := []string{fmt.Sprint(m)}
		for _, pol := range policies {
			mc := cfg.monteCarlo()
			mc.Scope = pol.Scope
			if pol.Scope == reconfig.RepairUsed {
				mc.Used = used
			}
			res, err := mc.YieldFixedFaults(arr, m, pol.Domain)
			if err != nil {
				return nil, tb, err
			}
			points = append(points, Figure13Point{Policy: pol.Name, M: m, Result: res})
			row = append(row, fmtF(res.Yield))
		}
		tb.AddRow(row...)
	}
	return points, tb, nil
}

// MaxFaultsAtYield returns the largest m among the sampled points of a
// policy whose yield stays at or above the threshold (paper: m = 35 at
// yield 0.90).
func MaxFaultsAtYield(points []Figure13Point, policy string, threshold float64) int {
	best := -1
	for _, pt := range points {
		if pt.Policy != policy {
			continue
		}
		if pt.Result.Yield >= threshold && pt.M > best {
			best = pt.M
		}
	}
	return best
}

// BoundaryAblation compares the cluster-complete DTMB(1,6) geometry (the
// analytical model's assumption) against the parallelogram build at equal n,
// quantifying boundary losses.
func BoundaryAblation(cfg Config, ps []float64) (stats.Table, error) {
	if len(ps) == 0 {
		ps = []float64{0.95, 0.97, 0.99}
	}
	const clusters = 20 // n = 120
	ideal, err := layout.BuildClusterCompleteDTMB16(clusters)
	if err != nil {
		return stats.Table{}, err
	}
	para, err := layout.BuildWithPrimaryTarget(layout.DTMB16(), ideal.NumPrimary())
	if err != nil {
		return stats.Table{}, err
	}
	tb := stats.Table{
		Title:   fmt.Sprintf("Ablation: DTMB(1,6) boundary effects, n=%d (%d runs)", ideal.NumPrimary(), cfg.Runs),
		Columns: []string{"p", "analytic", "cluster-complete MC", "parallelogram MC"},
	}
	for _, p := range ps {
		mc := cfg.monteCarlo()
		ri, err := mc.Yield(ideal, p)
		if err != nil {
			return tb, err
		}
		rp, err := mc.Yield(para, p)
		if err != nil {
			return tb, err
		}
		tb.AddRow(fmtF(p), fmtF(yieldsim.ClusterYieldDTMB16(p, ideal.NumPrimary())),
			fmtF(ri.Yield), fmtF(rp.Yield))
	}
	return tb, nil
}

// VariantAblation compares the two DTMB(2,6) geometries (Fig. 4a vs 4b):
// same redundancy ratio, nearly identical yield.
func VariantAblation(cfg Config, ps []float64) (stats.Table, error) {
	if len(ps) == 0 {
		ps = []float64{0.90, 0.95, 0.99}
	}
	const n = 100
	a, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), n)
	if err != nil {
		return stats.Table{}, err
	}
	b, err := layout.BuildWithPrimaryTarget(layout.DTMB26Alt(), n)
	if err != nil {
		return stats.Table{}, err
	}
	tb := stats.Table{
		Title:   fmt.Sprintf("Ablation: DTMB(2,6) variant A (Fig. 4a) vs B (Fig. 4b), n=%d (%d runs)", n, cfg.Runs),
		Columns: []string{"p", "variant A yield", "variant B yield"},
	}
	for _, p := range ps {
		mc := cfg.monteCarlo()
		ra, err := mc.Yield(a, p)
		if err != nil {
			return tb, err
		}
		rb, err := mc.Yield(b, p)
		if err != nil {
			return tb, err
		}
		tb.AddRow(fmtF(p), fmtF(ra.Yield), fmtF(rb.Yield))
	}
	return tb, nil
}
