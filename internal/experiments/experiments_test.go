package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dmfb/internal/stats"
)

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows", len(tb.Rows))
	}
	want := map[string]string{
		"DTMB(1,6)": "0.1667",
		"DTMB(2,6)": "0.3333",
		"DTMB(3,6)": "0.5000",
		"DTMB(4,4)": "1.0000",
	}
	for _, row := range tb.Rows {
		if row[1] != want[row[0]] {
			t.Errorf("%s: RR %s, want %s", row[0], row[1], want[row[0]])
		}
	}
}

func TestFigure2ShiftedReplacementCosts(t *testing.T) {
	rows, tb, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d scenarios", len(rows))
	}
	// Fault next to the spare row touches one module; fault far from it
	// cascades through all three. Interstitial cost is always 1.
	if rows[0].ShiftedModules != 1 {
		t.Errorf("Module 1 fault touched %d modules", rows[0].ShiftedModules)
	}
	if rows[2].ShiftedModules != 3 || rows[2].FaultFreeModulesMoved != 2 {
		t.Errorf("Module 3 fault: %+v", rows[2])
	}
	for _, r := range rows {
		if r.InterstitialCells != 1 || r.InterstitialModules != 1 {
			t.Errorf("interstitial cost must be 1/1, got %+v", r)
		}
		if r.ShiftedCells < r.InterstitialCells {
			t.Errorf("shifted cheaper than interstitial: %+v", r)
		}
	}
	if !strings.Contains(tb.String(), "Module 3") {
		t.Error("table missing scenario names")
	}
}

func TestFigure7SeriesShape(t *testing.T) {
	series, tb := Figure7([]int{60, 240}, stats.Linspace(0.90, 1.0, 11))
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	// Redundant curve dominates baseline at every p < 1 and both reach 1 at
	// p = 1.
	for i := 0; i < len(series); i += 2 {
		red, base := series[i], series[i+1]
		for j := range red.X {
			if red.X[j] < 1 && red.Y[j] <= base.Y[j] {
				t.Errorf("%s at p=%v: %v <= baseline %v", red.Name, red.X[j], red.Y[j], base.Y[j])
			}
		}
		if red.Y[red.Len()-1] != 1 || base.Y[base.Len()-1] != 1 {
			t.Error("yield at p=1 must be 1")
		}
	}
	// Larger arrays yield less at equal p.
	y60, _ := series[0].YAt(0.95)
	y240, _ := series[2].YAt(0.95)
	if y240 >= y60 {
		t.Errorf("n=240 yield %v not below n=60 yield %v", y240, y60)
	}
	if len(tb.Rows) != 11 {
		t.Errorf("table has %d rows", len(tb.Rows))
	}
}

func TestFigure8MatchingExample(t *testing.T) {
	plan, tb, err := Figure8(2005)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("empty matching table")
	}
	// With 8 faults on 343 cells the matching almost surely saturates; the
	// fixed seed makes this deterministic.
	if !plan.OK {
		t.Error("expected saturating matching for seed 2005")
	}
}

func TestFigure9YieldOrdering(t *testing.T) {
	cfg := Quick()
	points, _, err := Figure9(cfg, []int{100}, []float64{0.90, 0.95, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	get := func(design string, p float64) float64 {
		for _, pt := range points {
			if pt.Design == design && math.Abs(pt.P-p) < 1e-9 {
				return pt.Result.Yield
			}
		}
		t.Fatalf("missing point %s %v", design, p)
		return 0
	}
	// Paper Fig. 9: higher redundancy gives higher yield at fixed p, n.
	for _, p := range []float64{0.90, 0.95} {
		if get("DTMB(3,6)", p) < get("DTMB(2,6)", p)-0.05 {
			t.Errorf("p=%v: DTMB(3,6) below DTMB(2,6)", p)
		}
		if get("DTMB(4,4)", p) < get("DTMB(3,6)", p)-0.05 {
			t.Errorf("p=%v: DTMB(4,4) below DTMB(3,6)", p)
		}
	}
	// Yield at p=0.99 beats yield at p=0.90 for every design.
	for _, d := range []string{"DTMB(2,6)", "DTMB(3,6)", "DTMB(4,4)"} {
		if get(d, 0.99) < get(d, 0.90) {
			t.Errorf("%s: yield not increasing in p", d)
		}
	}
}

func TestFigure10Crossover(t *testing.T) {
	cfg := Quick()
	points, _, err := Figure10(cfg, []float64{0.80, 0.995})
	if err != nil {
		t.Fatal(err)
	}
	ey := func(design string, p float64) float64 {
		for _, pt := range points {
			if pt.Design == design && math.Abs(pt.P-p) < 1e-9 {
				return pt.EffectiveYield
			}
		}
		t.Fatalf("missing point %s %v", design, p)
		return 0
	}
	// Paper Fig. 10: DTMB(4,4) is best for small p; DTMB(1,6)/DTMB(2,6) for
	// p close to 1.
	if ey("DTMB(4,4)", 0.80) <= ey("DTMB(1,6)", 0.80) {
		t.Errorf("at p=0.80 DTMB(4,4) EY %v should beat DTMB(1,6) %v",
			ey("DTMB(4,4)", 0.80), ey("DTMB(1,6)", 0.80))
	}
	if ey("DTMB(1,6)", 0.995) <= ey("DTMB(4,4)", 0.995) {
		t.Errorf("at p=0.995 DTMB(1,6) EY %v should beat DTMB(4,4) %v",
			ey("DTMB(1,6)", 0.995), ey("DTMB(4,4)", 0.995))
	}
}

func TestCaseStudyBaselineHasPaperNumber(t *testing.T) {
	tb := CaseStudyBaseline(nil)
	found := false
	for _, row := range tb.Rows {
		if row[0] == "0.9900" && row[1] == "0.3378" {
			found = true
		}
	}
	if !found {
		t.Errorf("baseline table missing the 0.99 -> 0.3378 row:\n%s", tb.String())
	}
}

func TestFigure13MonotoneAndBracketsPaperClaim(t *testing.T) {
	cfg := Quick()
	ms := []int{0, 15, 35, 60}
	points, tb, err := Figure13(cfg, ms, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(ms) {
		t.Fatalf("table rows %d", len(tb.Rows))
	}
	// Yield decreases with m under every policy; m=0 yields 1.
	for _, pol := range Figure13Policies() {
		prev := 2.0
		for _, m := range ms {
			var y float64
			ok := false
			for _, pt := range points {
				if pt.Policy == pol.Name && pt.M == m {
					y = pt.Result.Yield
					ok = true
				}
			}
			if !ok {
				t.Fatalf("missing point %s m=%d", pol.Name, m)
			}
			if m == 0 && y != 1 {
				t.Errorf("%s: yield at m=0 is %v", pol.Name, y)
			}
			if y > prev+0.04 {
				t.Errorf("%s: yield rose from %v to %v at m=%d", pol.Name, prev, y, m)
			}
			prev = y
		}
	}
	// The paper's claim (>= 0.90 up to m = 35) must be bracketed by the
	// strictest and most lenient policies.
	strict := MaxFaultsAtYield(points, "all-cells/repair-all", 0.90)
	lenient := MaxFaultsAtYield(points, "primaries-only/repair-used", 0.90)
	if !(strict <= 35 && 35 <= lenient) {
		t.Errorf("paper claim m=35 not bracketed: strict %d, lenient %d", strict, lenient)
	}
}

func TestMaxFaultsAtYield(t *testing.T) {
	pts := []Figure13Point{
		{Policy: "x", M: 0},
		{Policy: "x", M: 10},
		{Policy: "x", M: 20},
	}
	pts[0].Result.Yield = 1.0
	pts[1].Result.Yield = 0.95
	pts[2].Result.Yield = 0.5
	if got := MaxFaultsAtYield(pts, "x", 0.9); got != 10 {
		t.Errorf("MaxFaultsAtYield = %d, want 10", got)
	}
	if got := MaxFaultsAtYield(pts, "y", 0.9); got != -1 {
		t.Errorf("missing policy should give -1, got %d", got)
	}
}

func TestBoundaryAblationOrdering(t *testing.T) {
	tb, err := BoundaryAblation(Quick(), []float64{0.97})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// cluster-complete MC should be at least the parallelogram MC.
	row := tb.Rows[0]
	var ideal, para float64
	if _, err := fmtSscan(row[2], &ideal); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(row[3], &para); err != nil {
		t.Fatal(err)
	}
	if para > ideal+0.02 {
		t.Errorf("parallelogram %v above cluster-complete %v", para, ideal)
	}
}

func TestVariantAblationClose(t *testing.T) {
	tb, err := VariantAblation(Quick(), []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	var a, b float64
	if _, err := fmtSscan(row[1], &a); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(row[2], &b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 0.1 {
		t.Errorf("DTMB(2,6) variants differ too much: %v vs %v", a, b)
	}
}

// fmtSscan parses a float cell written by fmtF.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}
