package experiments

import (
	"fmt"

	"dmfb/internal/layout"
	"dmfb/internal/stats"
	"dmfb/internal/sweep"
)

// FootprintPoint pairs the square (parallelogram) and hexagonal footprint
// yield estimates of one DTMB design at one (n, p).
type FootprintPoint struct {
	Design string
	N      int
	P      float64
	Square sweep.PointResult
	Hex    sweep.PointResult
}

// FootprintComparison compares the paper's square-interstitial arrays
// (parallelogram footprint, the "local" sweep strategy) against the
// hexagonal-array DTMB geometry of the companion fault-tolerance work (the
// "hex" strategy) at equal primary count. The hexagon has proportionally
// fewer boundary cells, but the two footprints quantize the spare sublattice
// differently — at a given n they generally realize different spare counts —
// so raw yield can favor either shape while the hexagon tends to win on
// effective yield (yield per cell of area). The figure reports both, with
// the realized total cell counts, so the tradeoff is visible. The grid is
// evaluated by the sweep engine, so the driver and the /v1/sweep endpoint
// produce identical numbers for identical parameters.
func FootprintComparison(cfg Config, designs []string, ns []int, ps []float64) ([]FootprintPoint, stats.Table, error) {
	if len(designs) == 0 {
		for _, d := range layout.AllDesigns() {
			designs = append(designs, d.Name)
		}
	}
	if len(ns) == 0 {
		ns = []int{100}
	}
	if len(ps) == 0 {
		ps = stats.Linspace(0.90, 1.00, 11)
	}
	tb := stats.Table{
		Title: fmt.Sprintf("Footprint comparison: square vs hexagonal interstitial arrays (%d runs per point)", cfg.Runs),
		Columns: []string{"Design", "n", "p", "square yield", "hex yield",
			"square EY", "hex EY", "square N", "hex N"},
	}
	spec := sweep.Spec{
		Strategies: []sweep.Strategy{sweep.Local, sweep.Hex},
		Designs:    designs,
		NPrimaries: ns,
		Ps:         ps,
	}
	results, err := runSweep(spec, cfg.simParams())
	if err != nil {
		return nil, tb, err
	}
	// Expansion order is strategy-major: the local block precedes the hex
	// block, and within each block design varies slowest, then n, then p.
	half := len(results) / 2
	points := make([]FootprintPoint, 0, half)
	for i := 0; i < half; i++ {
		sq, hx := results[i], results[half+i]
		if sq.Strategy != sweep.Local || hx.Strategy != sweep.Hex ||
			sq.Design != hx.Design || sq.NPrimary != hx.NPrimary || sq.P != hx.P {
			return nil, tb, fmt.Errorf("experiments: sweep blocks misaligned at index %d", i)
		}
		points = append(points, FootprintPoint{
			Design: sq.Design, N: sq.NPrimary, P: sq.P, Square: sq, Hex: hx,
		})
		tb.AddRow(sq.Design, fmt.Sprint(sq.NPrimary), fmtF(sq.P),
			fmtF(sq.Yield), fmtF(hx.Yield),
			fmtF(sq.EffectiveYield), fmtF(hx.EffectiveYield),
			fmt.Sprint(sq.NTotal), fmt.Sprint(hx.NTotal))
	}
	return points, tb, nil
}

// ClusteredDefectAblation contrasts the independent and clustered defect
// models on one design across p at equal expected defect density: local
// reconfiguration repairs scattered single-cell faults almost surely but a
// cluster can exhaust every spare in a neighborhood, so the clustered column
// reads uniformly lower — the yield penalty of spatially correlated
// manufacturing defects that boundary-redundancy comparisons usually hide.
func ClusteredDefectAblation(cfg Config, design string, clusterSizes []float64, ps []float64) (stats.Table, error) {
	if design == "" {
		design = layout.DTMB26().Name
	}
	if len(clusterSizes) == 0 {
		clusterSizes = []float64{2, 4, 8}
	}
	if len(ps) == 0 {
		ps = []float64{0.90, 0.95, 0.99}
	}
	const n = 100
	tb := stats.Table{
		Title:   fmt.Sprintf("Ablation: %s under clustered defects, n=%d (%d runs)", design, n, cfg.Runs),
		Columns: []string{"p", "independent"},
	}
	for _, s := range clusterSizes {
		tb.Columns = append(tb.Columns, fmt.Sprintf("clustered size=%g", s))
	}
	for _, p := range ps {
		row := []string{fmtF(p)}
		base, err := runSweep(sweep.Spec{
			Strategies: []sweep.Strategy{sweep.Local},
			Designs:    []string{design},
			NPrimaries: []int{n},
			Ps:         []float64{p},
		}, cfg.simParams())
		if err != nil {
			return tb, err
		}
		row = append(row, fmtF(base[0].Yield))
		for _, s := range clusterSizes {
			res, err := runSweep(sweep.Spec{
				Strategies:   []sweep.Strategy{sweep.Local},
				Designs:      []string{design},
				NPrimaries:   []int{n},
				Ps:           []float64{p},
				DefectModels: []sweep.DefectModel{sweep.Clustered},
				ClusterSize:  s,
			}, cfg.simParams())
			if err != nil {
				return tb, err
			}
			row = append(row, fmtF(res[0].Yield))
		}
		tb.AddRow(row...)
	}
	return tb, nil
}
