package experiments

import (
	"testing"
)

func TestFootprintComparisonPairsPoints(t *testing.T) {
	cfg := Quick()
	cfg.Runs = 300
	points, tb, err := FootprintComparison(cfg, []string{"DTMB(2,6)"}, []int{40}, []float64{0.93, 0.97})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d table rows, want 2", len(tb.Rows))
	}
	for _, pt := range points {
		if pt.Square.NPrimary != pt.N || pt.Hex.NPrimary != pt.N {
			t.Errorf("pair at p=%v mismatched n: %+v", pt.P, pt)
		}
		if pt.Square.Design != pt.Design || pt.Hex.Design != pt.Design {
			t.Errorf("pair at p=%v mismatched design", pt.P)
		}
		if pt.Hex.NTotal <= pt.N || pt.Square.NTotal <= pt.N {
			t.Errorf("pair at p=%v missing spares: square N=%d hex N=%d",
				pt.P, pt.Square.NTotal, pt.Hex.NTotal)
		}
	}
	// Yield is non-decreasing in p for both footprints.
	if points[0].Square.Yield > points[1].Square.Yield+0.05 {
		t.Errorf("square yield fell with rising p: %v -> %v", points[0].Square.Yield, points[1].Square.Yield)
	}
	if points[0].Hex.Yield > points[1].Hex.Yield+0.05 {
		t.Errorf("hex yield fell with rising p: %v -> %v", points[0].Hex.Yield, points[1].Hex.Yield)
	}
}

func TestClusteredDefectAblationShape(t *testing.T) {
	cfg := Quick()
	cfg.Runs = 200
	tb, err := ClusteredDefectAblation(cfg, "DTMB(2,6)", []float64{4}, []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Columns) != 3 {
		t.Fatalf("columns %v, want p + independent + one clustered", tb.Columns)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(tb.Rows))
	}
}
