package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden fixtures instead of asserting against them:
//
//	go test ./internal/experiments -run TestGolden -update
//
// Review the diff before committing — a changed fixture means the reproduced
// numbers moved.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenCfg is the reduced-but-deterministic configuration the fixtures are
// generated with. The chunk-seeded kernel makes every byte a pure function
// of (Runs, Seed, ChunkSize) — Workers and GOMAXPROCS never leak in — which
// is what makes byte-exact fixtures sound.
func goldenCfg() Config { return Config{Runs: 250, Seed: 20050307} }

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden fixture.\n--- got:\n%s\n--- want:\n%s\n"+
			"If the change is intentional, regenerate with `go test ./internal/experiments -run TestGolden -update` and commit the diff.",
			name, got, string(want))
	}
}

// TestGoldenFigure9 locks the Monte-Carlo yield table of the paper's Fig. 9
// byte-for-byte, so kernel refactors cannot silently shift the reproduced
// numbers.
func TestGoldenFigure9(t *testing.T) {
	_, tb, err := Figure9(goldenCfg(), []int{60}, []float64{0.90, 0.95, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure9.golden", tb.String())
}

// TestGoldenFigure10 locks the effective-yield table of the paper's Fig. 10.
func TestGoldenFigure10(t *testing.T) {
	_, tb, err := Figure10(goldenCfg(), []float64{0.85, 0.95, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure10.golden", tb.String())
}

// TestGoldenFootprintComparison locks the new square-vs-hexagonal footprint
// figure, covering the hex build, the hex sweep strategy, and the shared
// kernel in one fixture.
func TestGoldenFootprintComparison(t *testing.T) {
	_, tb, err := FootprintComparison(goldenCfg(),
		[]string{"DTMB(2,6)", "DTMB(4,4)"}, []int{60}, []float64{0.92, 0.96})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "footprint.golden", tb.String())
}

// TestGoldenClusteredAblation locks the clustered-defect ablation, covering
// the clustered injector end to end.
func TestGoldenClusteredAblation(t *testing.T) {
	tb, err := ClusteredDefectAblation(goldenCfg(), "", []float64{2, 6}, []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "clustered.golden", tb.String())
}
