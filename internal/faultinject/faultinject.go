// Package faultinject is a deterministic, seedable fault-injection layer
// for chaos testing the distributed sweep stack. Code under test declares
// named injection points (Eval calls at its fragile seams — an fsync, an
// HTTP round trip, a shard submission); a test or operator arms a subset of
// those points with rules that fire probabilistically or on a deterministic
// hit schedule. Everything is off by default: the universal idiom is a
// possibly-nil *Injector field, and Eval on a nil receiver is a single
// pointer comparison returning the zero Decision — production pays nothing.
//
// Determinism: every armed point owns its own PRNG, seeded from the
// injector seed mixed with the point name. The sequence of fire/no-fire
// verdicts at one point is therefore a pure function of (seed, point,
// hit index), independent of how other points interleave with it — so a
// chaos schedule replays identically as long as each seam is hit the same
// number of times, and approximately (same fault *rate*) even when
// scheduling noise reorders hits across goroutines.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection site, e.g. "store.append.fsync". Sites are
// declared by the code under test; arming an undeclared point is harmless
// (its rule simply never fires).
type Point string

// The injection points wired through the stack. Declared centrally so tests,
// CLI specs, and the seams themselves agree on spelling.
const (
	// StoreManifestWrite fails a durable manifest save (tmp write/fsync).
	StoreManifestWrite Point = "store.manifest.write"
	// StoreAppendWrite tears a result-log append: only a prefix of the
	// record reaches the file before the write errors.
	StoreAppendWrite Point = "store.append.write"
	// StoreAppendFsync fails the fsync that commits an appended record.
	StoreAppendFsync Point = "store.append.fsync"
	// StoreAppendENOSPC fails an append with a no-space error before any
	// byte is written.
	StoreAppendENOSPC Point = "store.append.enospc"
	// StoreReplayCorrupt flips one bit of a result log as it is read back
	// during replay, exercising the checksum-verification path.
	StoreReplayCorrupt Point = "store.replay.corrupt"

	// TransportReset fails an HTTP round trip before the request is sent,
	// as a reset/refused connection would.
	TransportReset Point = "transport.reset"
	// TransportLatency delays an HTTP round trip by the rule's Delay.
	TransportLatency Point = "transport.latency"
	// Transport5xx replaces the response with a synthetic 503.
	Transport5xx Point = "transport.5xx"
	// TransportTruncate cuts the response body short mid-read.
	TransportTruncate Point = "transport.truncate"

	// WorkerCrash aborts a worker's shard evaluation before submission —
	// the in-process analog of kill -9 mid-shard (the lease just expires).
	WorkerCrash Point = "worker.crash"
	// WorkerSlow stalls a worker's shard evaluation by the rule's Delay.
	WorkerSlow Point = "worker.slow"
	// WorkerDuplicateSubmit makes a worker submit a completed shard twice.
	WorkerDuplicateSubmit Point = "worker.duplicate_submit"
	// WorkerCorruptSubmit structurally corrupts a shard submission
	// (misindexed and short records), which the coordinator must reject.
	WorkerCorruptSubmit Point = "worker.corrupt_submit"
)

// ErrInjected is the root of every injected error; errors.Is(err, ErrInjected)
// distinguishes chaos faults from organic ones in assertions and logs.
var ErrInjected = errors.New("faultinject: injected fault")

// injectedErr wraps ErrInjected with the firing point, so an injected fault
// names its seam all the way up the error chain.
type injectedErr struct{ point Point }

func (e injectedErr) Error() string { return fmt.Sprintf("faultinject: injected fault at %s", e.point) }
func (e injectedErr) Unwrap() error { return ErrInjected }

// Decision is one point's verdict for one hit. The zero value (point not
// armed, rule did not fire, or nil injector) means proceed normally.
type Decision struct {
	// Fire reports whether the fault triggers on this hit.
	Fire bool
	// Err is the error the seam should surface when firing (defaults to an
	// ErrInjected-wrapped error naming the point).
	Err error
	// Delay is the latency to inject when firing (0 for pure failures).
	Delay time.Duration
}

// Rule arms one point. Fire conditions compose as OR: a hit fires when its
// 1-based hit number is listed in Hits, or the point's PRNG draws below
// Prob. Limit then caps the total number of fires.
type Rule struct {
	// Prob fires each hit independently with this probability in [0, 1].
	Prob float64
	// Hits fires deterministically on these 1-based hit numbers.
	Hits []int
	// Limit caps total fires at this point; 0 means unlimited.
	Limit int
	// Err overrides the error surfaced when firing.
	Err error
	// Delay is injected latency when firing.
	Delay time.Duration
}

// armed is one point's live state.
type armed struct {
	rule  Rule
	rng   *rand.Rand
	hits  uint64
	fires uint64
}

// Injector holds the armed rules of one chaos schedule. The zero value is
// not usable; construct with New. A nil *Injector is valid everywhere and
// never fires — the disabled state.
type Injector struct {
	mu    sync.Mutex
	seed  uint64
	rules map[Point]*armed
}

// New builds an empty injector whose per-point PRNGs derive from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, rules: make(map[Point]*armed)}
}

// pointSeed mixes the injector seed with the point name (FNV-1a over the
// name, then splitmix-style finalization) so each point gets an independent,
// reproducible stream.
func pointSeed(seed uint64, p Point) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	z := seed ^ h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Arm installs (or replaces) the rule for a point, resetting its hit and
// fire counters and reseeding its PRNG. Returns the injector for chaining.
func (in *Injector) Arm(p Point, r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := pointSeed(in.seed, p)
	in.rules[p] = &armed{
		rule: r,
		rng:  rand.New(rand.NewPCG(s, s^0x9e3779b97f4a7c15)),
	}
	return in
}

// Eval records one hit at a point and returns the verdict. Safe on a nil
// receiver (never fires) and for concurrent use.
func (in *Injector) Eval(p Point) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	a := in.rules[p]
	if a == nil {
		return Decision{}
	}
	a.hits++
	fire := false
	for _, h := range a.rule.Hits {
		if uint64(h) == a.hits {
			fire = true
			break
		}
	}
	if !fire && a.rule.Prob > 0 && a.rng.Float64() < a.rule.Prob {
		fire = true
	}
	if fire && a.rule.Limit > 0 && a.fires >= uint64(a.rule.Limit) {
		fire = false
	}
	if !fire {
		return Decision{}
	}
	a.fires++
	d := Decision{Fire: true, Err: a.rule.Err, Delay: a.rule.Delay}
	if d.Err == nil {
		d.Err = injectedErr{point: p}
	}
	return d
}

// Counts reports how many times a point was hit and how many of those hits
// fired. Zero for unarmed points and nil injectors.
func (in *Injector) Counts(p Point) (hits, fires uint64) {
	if in == nil {
		return 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if a := in.rules[p]; a != nil {
		return a.hits, a.fires
	}
	return 0, 0
}

// String renders the armed schedule, sorted by point, for logs.
func (in *Injector) String() string {
	if in == nil {
		return "faultinject: disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pts := make([]string, 0, len(in.rules))
	for p := range in.rules {
		pts = append(pts, string(p))
	}
	sort.Strings(pts)
	var b strings.Builder
	fmt.Fprintf(&b, "faultinject(seed=%d):", in.seed)
	for _, p := range pts {
		r := in.rules[Point(p)].rule
		fmt.Fprintf(&b, " %s{p=%g hits=%v}", p, r.Prob, r.Hits)
	}
	return b.String()
}

// ParseSpec builds an injector from a compact operator-facing schedule, the
// format of the -chaos CLI flags:
//
//	point=prob[,point=prob...]            probability per hit, in [0,1]
//	point=#h1|h2|...                      deterministic 1-based hit numbers
//	point=prob@delay                      with injected latency, e.g. 0.2@50ms
//
// Examples:
//
//	store.append.fsync=0.1,transport.reset=0.05
//	worker.crash=1,worker.slow=0.3@100ms
//	store.append.write=#1|3
//
// An empty spec returns a nil injector (chaos disabled).
func ParseSpec(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("faultinject: malformed spec entry %q (want point=prob, point=prob@delay, or point=#h1|h2)", part)
		}
		var rule Rule
		if delayStr, found := cutDelay(&val); found {
			d, err := time.ParseDuration(delayStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: bad delay in %q: %v", part, err)
			}
			rule.Delay = d
		}
		if strings.HasPrefix(val, "#") {
			for _, hs := range strings.Split(val[1:], "|") {
				h, err := strconv.Atoi(hs)
				if err != nil || h < 1 {
					return nil, fmt.Errorf("faultinject: bad hit number %q in %q", hs, part)
				}
				rule.Hits = append(rule.Hits, h)
			}
		} else {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: bad probability %q in %q (want [0,1])", val, part)
			}
			rule.Prob = p
		}
		in.Arm(Point(name), rule)
	}
	return in, nil
}

// cutDelay splits a trailing "@duration" off *val, returning the duration
// string and whether one was present.
func cutDelay(val *string) (string, bool) {
	if i := strings.IndexByte(*val, '@'); i >= 0 {
		d := (*val)[i+1:]
		*val = (*val)[:i]
		return d, true
	}
	return "", false
}
