package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// A nil injector must be inert: the disabled production path.
func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if d := in.Eval(StoreAppendFsync); d.Fire {
			t.Fatal("nil injector fired")
		}
	}
	if h, f := in.Counts(StoreAppendFsync); h != 0 || f != 0 {
		t.Fatalf("nil injector counts = %d/%d", h, f)
	}
	if s := in.String(); s != "faultinject: disabled" {
		t.Fatalf("nil String() = %q", s)
	}
}

// Unarmed points never fire even on an armed injector.
func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1).Arm(TransportReset, Rule{Prob: 1})
	for i := 0; i < 50; i++ {
		if d := in.Eval(StoreAppendWrite); d.Fire {
			t.Fatal("unarmed point fired")
		}
	}
}

// The same seed must reproduce the exact fire sequence; a different seed
// should (at p=0.5 over 200 hits, overwhelmingly) differ.
func TestDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed).Arm(WorkerCrash, Rule{Prob: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Eval(WorkerCrash).Fire
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-hit sequences")
	}
}

// A point's sequence must not depend on traffic at other points.
func TestPointStreamsIndependent(t *testing.T) {
	seq := func(interleave bool) []bool {
		in := New(7).
			Arm(WorkerCrash, Rule{Prob: 0.5}).
			Arm(TransportReset, Rule{Prob: 0.5})
		out := make([]bool, 100)
		for i := range out {
			if interleave {
				in.Eval(TransportReset)
			}
			out[i] = in.Eval(WorkerCrash).Fire
		}
		return out
	}
	a, b := seq(false), seq(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker.crash stream perturbed by transport.reset traffic at hit %d", i)
		}
	}
}

func TestScheduleRule(t *testing.T) {
	in := New(0).Arm(StoreAppendWrite, Rule{Hits: []int{1, 3}})
	want := []bool{true, false, true, false, false}
	for i, w := range want {
		if got := in.Eval(StoreAppendWrite).Fire; got != w {
			t.Fatalf("hit %d: fire = %v, want %v", i+1, got, w)
		}
	}
	if h, f := in.Counts(StoreAppendWrite); h != 5 || f != 2 {
		t.Fatalf("counts = %d/%d, want 5/2", h, f)
	}
}

func TestLimitCapsFires(t *testing.T) {
	in := New(0).Arm(WorkerCrash, Rule{Prob: 1, Limit: 3})
	fires := 0
	for i := 0; i < 10; i++ {
		if in.Eval(WorkerCrash).Fire {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("fires = %d, want 3 (Limit)", fires)
	}
}

func TestInjectedErrorIdentity(t *testing.T) {
	in := New(0).Arm(StoreAppendFsync, Rule{Prob: 1})
	d := in.Eval(StoreAppendFsync)
	if !d.Fire {
		t.Fatal("p=1 did not fire")
	}
	if !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("default error %v does not wrap ErrInjected", d.Err)
	}
	if !strings.Contains(d.Err.Error(), string(StoreAppendFsync)) {
		t.Fatalf("default error %q does not name the point", d.Err)
	}
	custom := errors.New("boom")
	in.Arm(StoreAppendFsync, Rule{Prob: 1, Err: custom})
	if d := in.Eval(StoreAppendFsync); d.Err != custom {
		t.Fatalf("custom error not surfaced: %v", d.Err)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("store.append.fsync=0.25,worker.slow=1@50ms,store.append.write=#2|4", 9)
	if err != nil {
		t.Fatal(err)
	}
	// Probability rule present and live.
	fires := 0
	for i := 0; i < 400; i++ {
		if in.Eval(StoreAppendFsync).Fire {
			fires++
		}
	}
	if fires < 50 || fires > 150 {
		t.Fatalf("p=0.25 over 400 hits fired %d times", fires)
	}
	// Delay attached.
	if d := in.Eval(WorkerSlow); !d.Fire || d.Delay != 50*time.Millisecond {
		t.Fatalf("worker.slow decision = %+v", d)
	}
	// Schedule rule.
	want := []bool{false, true, false, true, false}
	for i, w := range want {
		if got := in.Eval(StoreAppendWrite).Fire; got != w {
			t.Fatalf("schedule hit %d: %v, want %v", i+1, got, w)
		}
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	if in, err := ParseSpec("", 0); err != nil || in != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", in, err)
	}
	if in, err := ParseSpec("  ", 0); err != nil || in != nil {
		t.Fatalf("blank spec = (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{
		"noequals", "=0.5", "point=", "point=1.5", "point=-0.1",
		"point=abc", "point=#0", "point=#x", "point=0.5@nope", "point=0.5@-1s",
	} {
		if _, err := ParseSpec(bad, 0); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseSpecSameSeedSameSchedule(t *testing.T) {
	seq := func() []bool {
		in, err := ParseSpec("transport.reset=0.5", 77)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 100)
		for i := range out {
			out[i] = in.Eval(TransportReset).Fire
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ParseSpec schedules diverged at hit %d", i)
		}
	}
}

func TestTransportPassThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}))
	defer srv.Close()
	c := &http.Client{Transport: &Transport{}}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "hello" {
		t.Fatalf("pass-through got %d %q", resp.StatusCode, body)
	}
}

func TestTransportReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached server despite injected reset")
	}))
	defer srv.Close()
	in := New(0).Arm(TransportReset, Rule{Prob: 1})
	c := &http.Client{Transport: &Transport{Inject: in}}
	_, err := c.Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestTransport5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer srv.Close()
	in := New(0).Arm(Transport5xx, Rule{Hits: []int{1}})
	c := &http.Client{Transport: &Transport{Inject: in}}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "injected") {
		t.Fatalf("503 body = %q", body)
	}
	// Second request passes through untouched.
	resp, err = c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "real" {
		t.Fatalf("second request got %d %q", resp.StatusCode, body)
	}
}

func TestTransportTruncate(t *testing.T) {
	long := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, long)
	}))
	defer srv.Close()
	in := New(0).Arm(TransportTruncate, Rule{Prob: 1})
	c := &http.Client{Transport: &Transport{Inject: in}}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want injected", err)
	}
	if len(body) == 0 || len(body) >= len(long) {
		t.Fatalf("read %d bytes before truncation, want partial prefix", len(body))
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in := New(0).Arm(TransportLatency, Rule{Prob: 1, Delay: 5 * time.Second})
	c := &http.Client{Transport: &Transport{Inject: in}, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(srv.URL)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("latency injection ignored context cancel (took %v)", el)
	}
}
