package faultinject

import (
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport is an http.RoundTripper that injects transport-level faults —
// connection resets, latency, synthetic 5xx responses, truncated bodies —
// in front of a real transport. With a nil Inject it is a pass-through.
//
// Points consulted per round trip, in order:
//
//	transport.latency   sleep Decision.Delay before sending
//	transport.reset     fail before sending, like a reset/refused connection
//	transport.5xx       drop the real response, return a synthetic 503
//	transport.truncate  wrap the response body to error out mid-read
type Transport struct {
	// Base performs real round trips; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Inject supplies the fault schedule; nil disables all faults.
	Inject *Injector
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if d := t.Inject.Eval(TransportLatency); d.Fire && d.Delay > 0 {
		timer := time.NewTimer(d.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if d := t.Inject.Eval(TransportReset); d.Fire {
		// Consume the body as a real failed send would, so the connection
		// pool and retry logic see a request that cannot be replayed blindly.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, d.Err
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d := t.Inject.Eval(Transport5xx); d.Fire {
		resp.Body.Close()
		body := `{"error":"injected upstream failure"}`
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         resp.Proto,
			ProtoMajor:    resp.ProtoMajor,
			ProtoMinor:    resp.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if d := t.Inject.Eval(TransportTruncate); d.Fire {
		resp.Body = &truncatedBody{rc: resp.Body, remain: 16, err: d.Err}
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody passes through a bounded prefix of the response body, then
// fails the read — what a connection dropped mid-response looks like to the
// client's decoder.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
	err    error
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, b.err
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err == io.EOF {
		return n, io.EOF // shorter real body than the cut; pass EOF through
	}
	if err == nil && b.remain <= 0 {
		err = b.err
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
