// Package fluidics is a cycle-accurate simulator for droplet transport on a
// defect-tolerant microfluidic array. Each cycle the controller issues
// per-droplet commands (hold, move to an adjacent cell, merge, split); the
// simulator enforces the device's physical rules:
//
//   - microfluidic locality: droplets move only to physically adjacent cells;
//   - dead cells: droplets can never enter a faulty cell (dielectric
//     breakdown, shorted or open electrodes cannot actuate);
//   - fluidic non-interference: two droplets must never come within one cell
//     of each other unless they are deliberately merging, or they would
//     coalesce accidentally;
//   - merge and split semantics from the droplet package, with
//     transport-driven mixing of merged droplets.
//
// The simulator is the substrate on which the bioassay workloads of the
// case study execute, and what makes reconfiguration observable end to end:
// after local reconfiguration the controller re-routes droplets around the
// faulty cells onto replacement spares.
package fluidics

import (
	"fmt"
	"sort"

	"dmfb/internal/defects"
	"dmfb/internal/droplet"
	"dmfb/internal/layout"
)

// DropletID identifies a droplet within a simulation.
type DropletID int

// State is one droplet's position and payload.
type State struct {
	ID   DropletID
	Cell layout.CellID
	D    droplet.Droplet
}

// EventKind tags simulation log entries.
type EventKind uint8

// Event kinds recorded in the simulation log.
const (
	EvDispense EventKind = iota
	EvMove
	EvHold
	EvMerge
	EvSplit
	EvRemove
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvDispense:
		return "dispense"
	case EvMove:
		return "move"
	case EvHold:
		return "hold"
	case EvMerge:
		return "merge"
	case EvSplit:
		return "split"
	case EvRemove:
		return "remove"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one log entry.
type Event struct {
	Cycle   int
	Kind    EventKind
	Droplet DropletID
	Cell    layout.CellID
	Other   DropletID // merge partner or split twin; -1 otherwise
}

// MixingRatePerMove is how much a transport step homogenizes a merged
// droplet: DMFB mixers work by shuttling the droplet, and experimental
// mixers complete in a few tens of moves.
const MixingRatePerMove = 1.0 / 16

// Sim is the simulator state. Not safe for concurrent use.
type Sim struct {
	arr      *layout.Array
	faults   *defects.FaultSet
	occupied map[layout.CellID]DropletID
	droplets map[DropletID]*State
	nextID   DropletID
	cycle    int
	events   []Event
}

// New creates a simulator over the array. faults may be nil (defect-free).
func New(arr *layout.Array, faults *defects.FaultSet) (*Sim, error) {
	if faults != nil && faults.NumCells() != arr.NumCells() {
		return nil, fmt.Errorf("fluidics: fault set sized %d, array %d", faults.NumCells(), arr.NumCells())
	}
	return &Sim{
		arr:      arr,
		faults:   faults,
		occupied: make(map[layout.CellID]DropletID),
		droplets: make(map[DropletID]*State),
		nextID:   1, // IDs start at 1 so Command's zero MergeWith is inert
	}, nil
}

// Cycle returns the current cycle count.
func (s *Sim) Cycle() int { return s.cycle }

// Events returns the simulation log.
func (s *Sim) Events() []Event { return s.events }

// Droplet returns the state of a droplet.
func (s *Sim) Droplet(id DropletID) (State, bool) {
	st, ok := s.droplets[id]
	if !ok {
		return State{}, false
	}
	return *st, true
}

// Droplets returns all droplet states sorted by ID.
func (s *Sim) Droplets() []State {
	out := make([]State, 0, len(s.droplets))
	for _, st := range s.droplets {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// faulty reports whether a cell cannot be actuated.
func (s *Sim) faulty(id layout.CellID) bool {
	return s.faults != nil && s.faults.IsFaulty(id)
}

// usable reports whether a droplet may occupy the cell.
func (s *Sim) usable(id layout.CellID) bool {
	return id >= 0 && int(id) < s.arr.NumCells() && !s.faulty(id)
}

// interferes reports whether placing droplet id at cell would violate the
// static fluidic constraint against the current occupancy, ignoring the
// droplets in ignore.
func (s *Sim) interferes(cell layout.CellID, ignore map[DropletID]bool) bool {
	if other, ok := s.occupied[cell]; ok && !ignore[other] {
		return true
	}
	for _, nb := range s.arr.Neighbors(cell) {
		if other, ok := s.occupied[nb]; ok && !ignore[other] {
			return true
		}
	}
	return false
}

// Dispense introduces a new droplet at the given cell (a reservoir port).
func (s *Sim) Dispense(cell layout.CellID, d droplet.Droplet) (DropletID, error) {
	if !s.usable(cell) {
		return 0, fmt.Errorf("fluidics: cell %d unusable for dispense", cell)
	}
	if s.interferes(cell, nil) {
		return 0, fmt.Errorf("fluidics: dispense at %d violates fluidic spacing", cell)
	}
	id := s.nextID
	s.nextID++
	s.droplets[id] = &State{ID: id, Cell: cell, D: d}
	s.occupied[cell] = id
	s.log(EvDispense, id, cell, -1)
	return id, nil
}

// Remove takes a droplet off the array (waste port or detection complete).
func (s *Sim) Remove(id DropletID) error {
	st, ok := s.droplets[id]
	if !ok {
		return fmt.Errorf("fluidics: droplet %d unknown", id)
	}
	delete(s.occupied, st.Cell)
	delete(s.droplets, id)
	s.log(EvRemove, id, st.Cell, -1)
	return nil
}

// Command directs one droplet for one cycle.
type Command struct {
	Droplet DropletID
	// Target is the destination cell: the droplet's own cell to hold, or an
	// adjacent cell to move.
	Target layout.CellID
	// MergeWith names a droplet this one is allowed to coalesce with this
	// cycle; -1 (or zero-value with NoMerge) forbids contact.
	MergeWith DropletID
}

// NoMerge marks a command without a merge partner. The zero value of
// Command.MergeWith (0) also means "no merge": droplet IDs start at 1.
const NoMerge DropletID = -1

// Step advances one cycle, applying the commands simultaneously. Droplets
// without a command hold in place. On any rule violation the step aborts
// with an error and no state changes.
func (s *Sim) Step(cmds []Command) error {
	// Destination per droplet; default hold.
	dest := make(map[DropletID]layout.CellID, len(s.droplets))
	mergeWith := make(map[DropletID]DropletID, len(cmds))
	for id, st := range s.droplets {
		dest[id] = st.Cell
	}
	for _, c := range cmds {
		st, ok := s.droplets[c.Droplet]
		if !ok {
			return fmt.Errorf("fluidics: cycle %d: droplet %d unknown", s.cycle, c.Droplet)
		}
		if _, dup := mergeWith[c.Droplet]; dup {
			return fmt.Errorf("fluidics: cycle %d: duplicate command for droplet %d", s.cycle, c.Droplet)
		}
		if c.Target != st.Cell {
			adjacent := false
			for _, nb := range s.arr.Neighbors(st.Cell) {
				if nb == c.Target {
					adjacent = true
					break
				}
			}
			if !adjacent {
				return fmt.Errorf("fluidics: cycle %d: droplet %d cannot jump %d -> %d",
					s.cycle, c.Droplet, st.Cell, c.Target)
			}
		}
		if !s.usable(c.Target) {
			return fmt.Errorf("fluidics: cycle %d: droplet %d target %d is faulty or absent",
				s.cycle, c.Droplet, c.Target)
		}
		dest[c.Droplet] = c.Target
		mergeWith[c.Droplet] = c.MergeWith
	}

	// Swap check: two droplets exchanging cells would collide mid-flight.
	cellNow := make(map[layout.CellID]DropletID, len(s.droplets))
	for id, st := range s.droplets {
		cellNow[st.Cell] = id
	}
	for id, to := range dest {
		if other, ok := cellNow[to]; ok && other != id {
			if dest[other] == s.droplets[id].Cell {
				return fmt.Errorf("fluidics: cycle %d: droplets %d and %d would swap cells", s.cycle, id, other)
			}
		}
	}

	// Grouping by destination: same destination means merge, which both
	// droplets must have sanctioned.
	byDest := make(map[layout.CellID][]DropletID)
	for id, to := range dest {
		byDest[to] = append(byDest[to], id)
	}
	for to, ids := range byDest {
		if len(ids) == 1 {
			continue
		}
		if len(ids) > 2 {
			return fmt.Errorf("fluidics: cycle %d: %d droplets converge on cell %d", s.cycle, len(ids), to)
		}
		a, b := ids[0], ids[1]
		if mergeWith[a] != b || mergeWith[b] != a {
			return fmt.Errorf("fluidics: cycle %d: unsanctioned merge of %d and %d at cell %d",
				s.cycle, a, b, to)
		}
	}

	// Fluidic non-interference on the new configuration: no two distinct
	// (non-merging) droplets on the same or adjacent cells.
	for id, to := range dest {
		for _, nb := range append([]layout.CellID{to}, s.arr.Neighbors(to)...) {
			for other, oto := range dest {
				if other == id || oto != nb {
					continue
				}
				merging := (mergeWith[id] == other && mergeWith[other] == id)
				if !merging {
					return fmt.Errorf("fluidics: cycle %d: droplets %d and %d violate spacing at cells %d/%d",
						s.cycle, id, other, to, oto)
				}
			}
		}
	}

	// Commit: apply moves, then merges.
	s.cycle++
	for id, to := range dest {
		st := s.droplets[id]
		if to != st.Cell {
			delete(s.occupied, st.Cell)
			st.Cell = to
			st.D.AdvanceMixing(MixingRatePerMove)
			s.log(EvMove, id, to, -1)
		} else {
			s.log(EvHold, id, to, -1)
		}
	}
	merged := make(map[DropletID]bool)
	for _, ids := range byDest {
		if len(ids) != 2 {
			continue
		}
		a, b := ids[0], ids[1]
		if a > b {
			a, b = b, a
		}
		sa, sb := s.droplets[a], s.droplets[b]
		sa.D = droplet.Merge(sa.D, sb.D)
		delete(s.droplets, b)
		merged[b] = true
		s.log(EvMerge, a, sa.Cell, b)
	}
	// Rebuild occupancy.
	s.occupied = make(map[layout.CellID]DropletID, len(s.droplets))
	for id, st := range s.droplets {
		s.occupied[st.Cell] = id
	}
	return nil
}

// Split divides droplet id into two: the original stays put and the twin
// appears at the adjacent cell target (splitting pulls the droplet apart
// onto two electrodes). The droplet must be fully mixed.
func (s *Sim) Split(id DropletID, target layout.CellID) (DropletID, error) {
	st, ok := s.droplets[id]
	if !ok {
		return 0, fmt.Errorf("fluidics: droplet %d unknown", id)
	}
	adjacent := false
	for _, nb := range s.arr.Neighbors(st.Cell) {
		if nb == target {
			adjacent = true
			break
		}
	}
	if !adjacent {
		return 0, fmt.Errorf("fluidics: split target %d not adjacent to %d", target, st.Cell)
	}
	if !s.usable(target) {
		return 0, fmt.Errorf("fluidics: split target %d unusable", target)
	}
	ignore := map[DropletID]bool{id: true}
	if s.interferes(target, ignore) {
		return 0, fmt.Errorf("fluidics: split target %d violates fluidic spacing", target)
	}
	a, b, err := droplet.Split(st.D)
	if err != nil {
		return 0, err
	}
	st.D = a
	twin := s.nextID
	s.nextID++
	s.droplets[twin] = &State{ID: twin, Cell: target, D: b}
	s.occupied[target] = twin
	s.cycle++
	s.log(EvSplit, id, st.Cell, twin)
	return twin, nil
}

func (s *Sim) log(kind EventKind, id DropletID, cell layout.CellID, other DropletID) {
	s.events = append(s.events, Event{
		Cycle: s.cycle, Kind: kind, Droplet: id, Cell: cell, Other: other,
	})
}

// FollowPath moves a droplet along a precomputed path of adjacent cells,
// one cell per cycle, holding all other droplets. It is the single-droplet
// convenience used by tests, examples, and the test-plan executor.
func (s *Sim) FollowPath(id DropletID, path []layout.CellID) error {
	for _, cell := range path {
		st, ok := s.droplets[id]
		if !ok {
			return fmt.Errorf("fluidics: droplet %d unknown", id)
		}
		if cell == st.Cell {
			continue
		}
		if err := s.Step([]Command{{Droplet: id, Target: cell, MergeWith: NoMerge}}); err != nil {
			return err
		}
	}
	return nil
}
