package fluidics

import (
	"strings"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/droplet"
	"dmfb/internal/hexgrid"
	"dmfb/internal/layout"
)

// testArray builds a defect-free DTMB(2,6) array for simulation tests.
func testArray(t testing.TB) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func testDroplet(t testing.TB) droplet.Droplet {
	t.Helper()
	d, err := droplet.New(1.0, droplet.Mixture{droplet.Glucose: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsMismatchedFaults(t *testing.T) {
	arr := testArray(t)
	if _, err := New(arr, defects.NewFaultSet(3)); err == nil {
		t.Error("mismatched fault set accepted")
	}
	if _, err := New(arr, nil); err != nil {
		t.Errorf("nil faults rejected: %v", err)
	}
}

func TestDispenseAndHold(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	id, err := sim.Dispense(arr.Primaries()[0], testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first droplet ID %d, want 1", id)
	}
	if err := sim.Step(nil); err != nil {
		t.Fatal(err)
	}
	st, ok := sim.Droplet(id)
	if !ok || st.Cell != arr.Primaries()[0] {
		t.Error("droplet moved while holding")
	}
	if sim.Cycle() != 1 {
		t.Errorf("cycle %d, want 1", sim.Cycle())
	}
}

func TestDispenseSpacingEnforced(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	cell := arr.Primaries()[40]
	if _, err := sim.Dispense(cell, testDroplet(t)); err != nil {
		t.Fatal(err)
	}
	// Same cell fails.
	if _, err := sim.Dispense(cell, testDroplet(t)); err == nil {
		t.Error("double dispense accepted")
	}
	// Adjacent cell fails.
	if _, err := sim.Dispense(arr.Neighbors(cell)[0], testDroplet(t)); err == nil {
		t.Error("adjacent dispense accepted")
	}
}

func TestMoveAlongNeighbors(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	start := arr.Primaries()[30]
	id, err := sim.Dispense(start, testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	target := arr.Neighbors(start)[0]
	if err := sim.Step([]Command{{Droplet: id, Target: target}}); err != nil {
		t.Fatal(err)
	}
	st, _ := sim.Droplet(id)
	if st.Cell != target {
		t.Errorf("droplet at %d, want %d", st.Cell, target)
	}
	// Jump to a non-adjacent cell fails.
	far := arr.Primaries()[0]
	if far == target || adjacent(arr, far, target) {
		t.Skip("unexpected geometry")
	}
	if err := sim.Step([]Command{{Droplet: id, Target: far}}); err == nil {
		t.Error("non-adjacent move accepted")
	}
}

func adjacent(arr *layout.Array, a, b layout.CellID) bool {
	for _, nb := range arr.Neighbors(a) {
		if nb == b {
			return true
		}
	}
	return false
}

func TestFaultyCellBlocksEntry(t *testing.T) {
	arr := testArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	start := arr.Primaries()[30]
	target := arr.Neighbors(start)[0]
	fs.MarkFaulty(target)
	sim, err := New(arr, fs)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sim.Dispense(start, testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step([]Command{{Droplet: id, Target: target}}); err == nil {
		t.Error("move onto faulty cell accepted")
	}
	if _, err := sim.Dispense(target, testDroplet(t)); err == nil {
		t.Error("dispense onto faulty cell accepted")
	}
}

func TestSpacingViolationRejected(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	// Find two primaries at distance 3 along a line.
	var a, b layout.CellID = -1, -1
	for _, p := range arr.Primaries() {
		pos := arr.Cell(p).Pos
		q := arr.CellAt(pos.Add(hexOffset(3, 0)))
		if q != layout.NoCell {
			a, b = p, q
			break
		}
	}
	if a < 0 {
		t.Fatal("no suitable cell pair")
	}
	ida, err := sim.Dispense(a, testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	idb, err := sim.Dispense(b, testDroplet(t))
	if err != nil {
		t.Fatalf("distance-3 dispense should be legal: %v", err)
	}
	// Moving the droplets toward each other to distance 1 must fail.
	posA := arr.Cell(a).Pos
	mid := arr.CellAt(posA.Add(hexOffset(1, 0)))
	mid2 := arr.CellAt(posA.Add(hexOffset(2, 0)))
	if mid == layout.NoCell || mid2 == layout.NoCell {
		t.Fatal("geometry broken")
	}
	err = sim.Step([]Command{
		{Droplet: ida, Target: mid},
		{Droplet: idb, Target: mid2},
	})
	if err == nil {
		t.Error("adjacent non-merging droplets accepted")
	}
}

func hexOffset(dq, dr int) hexgrid.Axial {
	return hexgrid.Axial{Q: dq, R: dr}
}

func TestSanctionedMerge(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	var a layout.CellID = -1
	var mid, b layout.CellID
	for _, p := range arr.Primaries() {
		pos := arr.Cell(p).Pos
		m := arr.CellAt(pos.Add(hexOffset(1, 0)))
		q := arr.CellAt(pos.Add(hexOffset(2, 0)))
		if m != layout.NoCell && q != layout.NoCell {
			a, mid, b = p, m, q
			break
		}
	}
	if a < 0 {
		t.Fatal("no row of three cells")
	}
	s1, err := droplet.New(1, droplet.Mixture{droplet.Glucose: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := droplet.New(1, droplet.Mixture{droplet.GlucoseOxidase: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ida, err := sim.Dispense(a, s1)
	if err != nil {
		t.Fatal(err)
	}
	idb, err := sim.Dispense(b, s2)
	if err != nil {
		t.Fatal(err)
	}
	// Unsanctioned convergence fails.
	if err := sim.Step([]Command{
		{Droplet: ida, Target: mid},
		{Droplet: idb, Target: mid},
	}); err == nil {
		t.Fatal("unsanctioned merge accepted")
	}
	// Sanctioned merge succeeds and produces one combined droplet.
	if err := sim.Step([]Command{
		{Droplet: ida, Target: mid, MergeWith: idb},
		{Droplet: idb, Target: mid, MergeWith: ida},
	}); err != nil {
		t.Fatal(err)
	}
	if len(sim.Droplets()) != 1 {
		t.Fatalf("%d droplets after merge", len(sim.Droplets()))
	}
	merged := sim.Droplets()[0]
	if merged.D.Volume != 2 {
		t.Errorf("merged volume %v", merged.D.Volume)
	}
	if merged.D.Mixed() {
		t.Error("fresh merge should be unmixed")
	}
	if merged.D.Contents[droplet.Glucose] != 0.002 {
		t.Errorf("diluted glucose %v, want 0.002", merged.D.Contents[droplet.Glucose])
	}
}

func TestMixingByTransport(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	var a layout.CellID = -1
	var mid, b layout.CellID
	for _, p := range arr.Primaries() {
		pos := arr.Cell(p).Pos
		m := arr.CellAt(pos.Add(hexOffset(1, 0)))
		q := arr.CellAt(pos.Add(hexOffset(2, 0)))
		if m != layout.NoCell && q != layout.NoCell && arr.IsInterior(m) {
			a, mid, b = p, m, q
			break
		}
	}
	if a < 0 {
		t.Fatal("no suitable cells")
	}
	d1, _ := droplet.New(1, droplet.Mixture{droplet.Glucose: 1})
	d2, _ := droplet.New(1, nil)
	ida, _ := sim.Dispense(a, d1)
	idb, _ := sim.Dispense(b, d2)
	if err := sim.Step([]Command{
		{Droplet: ida, Target: mid, MergeWith: idb},
		{Droplet: idb, Target: mid, MergeWith: ida},
	}); err != nil {
		t.Fatal(err)
	}
	id := sim.Droplets()[0].ID
	// Shuttle the droplet back and forth until mixed.
	cells := []layout.CellID{a, mid}
	steps := 0
	for !sim.Droplets()[0].D.Mixed() {
		target := cells[steps%2]
		if err := sim.Step([]Command{{Droplet: id, Target: target}}); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 200 {
			t.Fatal("mixing never completed")
		}
	}
	want := int(1.0 / MixingRatePerMove)
	if steps != want {
		t.Errorf("mixed after %d moves, want %d", steps, want)
	}
}

func TestSplitCreatesTwin(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	start := arr.Primaries()[50]
	d, _ := droplet.New(2, droplet.Mixture{droplet.Lactate: 0.004})
	id, err := sim.Dispense(start, d)
	if err != nil {
		t.Fatal(err)
	}
	target := arr.Neighbors(start)[0]
	twin, err := sim.Split(id, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Droplets()) != 2 {
		t.Fatal("split should leave two droplets")
	}
	stA, _ := sim.Droplet(id)
	stB, _ := sim.Droplet(twin)
	if stA.D.Volume != 1 || stB.D.Volume != 1 {
		t.Errorf("split volumes %v/%v", stA.D.Volume, stB.D.Volume)
	}
	if stB.Cell != target {
		t.Error("twin not at target")
	}
	// Splitting a non-existent droplet fails.
	if _, err := sim.Split(999, target); err == nil {
		t.Error("unknown droplet accepted")
	}
}

func TestRemove(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	id, _ := sim.Dispense(arr.Primaries()[0], testDroplet(t))
	if err := sim.Remove(id); err != nil {
		t.Fatal(err)
	}
	if len(sim.Droplets()) != 0 {
		t.Error("droplet not removed")
	}
	if err := sim.Remove(id); err == nil {
		t.Error("double remove accepted")
	}
	// The cell is free again.
	if _, err := sim.Dispense(arr.Primaries()[0], testDroplet(t)); err != nil {
		t.Errorf("cell not freed: %v", err)
	}
}

func TestSwapRejected(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	var a layout.CellID = -1
	var b layout.CellID
	for _, p := range arr.Primaries() {
		pos := arr.Cell(p).Pos
		q := arr.CellAt(pos.Add(hexOffset(1, 0)))
		if q != layout.NoCell {
			a, b = p, q
			break
		}
	}
	// Dispense both (must bypass spacing by dispensing then moving? adjacent
	// dispense violates spacing, so craft via merge sanction instead):
	// directly test the command path with two droplets placed legally at
	// distance, then attempt swap after moving adjacent with merge flags.
	// Simpler: place at distance 2 and command a swap through each other.
	var c layout.CellID
	pos := arr.Cell(a).Pos
	c = arr.CellAt(pos.Add(hexOffset(2, 0)))
	if a < 0 || c == layout.NoCell {
		t.Fatal("geometry")
	}
	ida, err := sim.Dispense(a, testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	idc, err := sim.Dispense(c, testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	// Both move toward each other claiming merge with... nothing: the swap
	// through cell b is impossible; commanding a->b and c->b unsanctioned
	// covered elsewhere; command a->b, c->a is a near-swap that must fail
	// the spacing check.
	if err := sim.Step([]Command{
		{Droplet: ida, Target: b},
		{Droplet: idc, Target: b},
	}); err == nil {
		t.Error("unsanctioned convergence accepted")
	}
	_ = idc
}

func TestFollowPath(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	start := arr.Primaries()[10]
	id, err := sim.Dispense(start, testDroplet(t))
	if err != nil {
		t.Fatal(err)
	}
	// Walk three steps along neighbors.
	path := []layout.CellID{start}
	cur := start
	for i := 0; i < 3; i++ {
		cur = arr.Neighbors(cur)[0]
		path = append(path, cur)
	}
	if err := sim.FollowPath(id, path); err != nil {
		t.Fatal(err)
	}
	st, _ := sim.Droplet(id)
	if st.Cell != cur {
		t.Errorf("droplet at %d, want %d", st.Cell, cur)
	}
	if sim.Cycle() != 3 {
		t.Errorf("cycle %d, want 3", sim.Cycle())
	}
}

func TestEventLog(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	id, _ := sim.Dispense(arr.Primaries()[20], testDroplet(t))
	_ = sim.Step([]Command{{Droplet: id, Target: arr.Neighbors(arr.Primaries()[20])[0]}})
	_ = sim.Remove(id)
	events := sim.Events()
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	kinds := []EventKind{EvDispense, EvMove, EvRemove}
	for i, ev := range events {
		if ev.Kind != kinds[i] {
			t.Errorf("event %d kind %v, want %v", i, ev.Kind, kinds[i])
		}
	}
	for _, k := range []EventKind{EvDispense, EvMove, EvHold, EvMerge, EvSplit, EvRemove} {
		if strings.HasPrefix(k.String(), "event(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestUnknownDropletCommand(t *testing.T) {
	arr := testArray(t)
	sim, _ := New(arr, nil)
	if err := sim.Step([]Command{{Droplet: 42, Target: 0}}); err == nil {
		t.Error("command for unknown droplet accepted")
	}
}
