// Package hexgrid provides geometry for the triangular (hexagonal-cell)
// lattice used by digital microfluidic biochips with hexagonal electrodes.
//
// Cells are addressed with axial coordinates (Q, R). The six neighbors of a
// cell are obtained by adding the six direction vectors in Directions. The
// package also supports cube coordinates (for distance and rotation math) and
// odd-r offset coordinates (for rectangular chip footprints), plus region
// builders used by the layout package to instantiate DTMB arrays.
package hexgrid

import (
	"fmt"
	"sort"
)

// Axial is a cell address on the hexagonal lattice in axial coordinates.
// The third cube coordinate is implicit: S = -Q-R.
type Axial struct {
	Q, R int
}

// String returns the coordinate in "(q,r)" form.
func (a Axial) String() string { return fmt.Sprintf("(%d,%d)", a.Q, a.R) }

// Directions lists the six neighbor offsets of a hexagonal cell, in
// counterclockwise order starting from "east". A droplet on a hexagonal
// electrode array can move in exactly these six directions.
var Directions = [6]Axial{
	{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}

// Add returns the vector sum a+b.
func (a Axial) Add(b Axial) Axial { return Axial{a.Q + b.Q, a.R + b.R} }

// Sub returns the vector difference a-b.
func (a Axial) Sub(b Axial) Axial { return Axial{a.Q - b.Q, a.R - b.R} }

// Scale returns the coordinate scaled by k.
func (a Axial) Scale(k int) Axial { return Axial{a.Q * k, a.R * k} }

// Neighbor returns the adjacent cell in direction d (0..5).
func (a Axial) Neighbor(d int) Axial { return a.Add(Directions[d%6]) }

// Neighbors returns the six adjacent cells in direction order.
func (a Axial) Neighbors() [6]Axial {
	var n [6]Axial
	for i, d := range Directions {
		n[i] = a.Add(d)
	}
	return n
}

// Cube is a cell address in cube coordinates (X+Y+Z == 0).
type Cube struct {
	X, Y, Z int
}

// ToCube converts axial to cube coordinates.
func (a Axial) ToCube() Cube { return Cube{a.Q, -a.Q - a.R, a.R} }

// ToAxial converts cube to axial coordinates.
func (c Cube) ToAxial() Axial { return Axial{c.X, c.Z} }

// Valid reports whether the cube coordinate satisfies X+Y+Z == 0.
func (c Cube) Valid() bool { return c.X+c.Y+c.Z == 0 }

// abs returns the absolute value of x.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Norm returns the hex distance from the origin: the minimum number of
// single-cell droplet moves needed to reach a from (0,0).
func (a Axial) Norm() int {
	return (abs(a.Q) + abs(a.R) + abs(a.Q+a.R)) / 2
}

// Distance returns the hex (droplet-move) distance between a and b.
func (a Axial) Distance(b Axial) int { return a.Sub(b).Norm() }

// RotateCW rotates the coordinate 60 degrees clockwise about the origin.
func (a Axial) RotateCW() Axial {
	c := a.ToCube()
	return Cube{-c.Z, -c.X, -c.Y}.ToAxial()
}

// RotateCCW rotates the coordinate 60 degrees counterclockwise about the
// origin.
func (a Axial) RotateCCW() Axial {
	c := a.ToCube()
	return Cube{-c.Y, -c.Z, -c.X}.ToAxial()
}

// OffsetCoord is an odd-r offset coordinate: Row indexes lattice rows and Col
// indexes cells within a row, with odd rows shifted right by half a cell.
// Offset coordinates describe rectangular chip footprints naturally.
type OffsetCoord struct {
	Col, Row int
}

// ToAxial converts an odd-r offset coordinate to axial.
func (o OffsetCoord) ToAxial() Axial {
	q := o.Col - (o.Row-(o.Row&1))/2
	return Axial{q, o.Row}
}

// ToOffset converts an axial coordinate to odd-r offset.
func (a Axial) ToOffset() OffsetCoord {
	col := a.Q + (a.R-(a.R&1))/2
	return OffsetCoord{col, a.R}
}

// Lerp linearly interpolates between cell centers a and b at parameter t and
// rounds to the nearest cell. Used by Line.
func lerpRound(a, b Cube, t float64) Cube {
	fx := float64(a.X) + (float64(b.X)-float64(a.X))*t
	fy := float64(a.Y) + (float64(b.Y)-float64(a.Y))*t
	fz := float64(a.Z) + (float64(b.Z)-float64(a.Z))*t
	return cubeRound(fx, fy, fz)
}

// cubeRound rounds fractional cube coordinates to the nearest valid cell.
func cubeRound(fx, fy, fz float64) Cube {
	rx, ry, rz := round(fx), round(fy), round(fz)
	dx, dy, dz := absF(float64(rx)-fx), absF(float64(ry)-fy), absF(float64(rz)-fz)
	switch {
	case dx > dy && dx > dz:
		rx = -ry - rz
	case dy > dz:
		ry = -rx - rz
	default:
		rz = -rx - ry
	}
	return Cube{rx, ry, rz}
}

func round(f float64) int {
	if f >= 0 {
		return int(f + 0.5)
	}
	return -int(-f + 0.5)
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Line returns the cells on a straight line from a to b inclusive, a useful
// first approximation of a droplet transport path on a defect-free array.
func Line(a, b Axial) []Axial {
	n := a.Distance(b)
	if n == 0 {
		return []Axial{a}
	}
	ca, cb := a.ToCube(), b.ToCube()
	out := make([]Axial, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, lerpRound(ca, cb, float64(i)/float64(n)).ToAxial())
	}
	return out
}

// Ring returns the cells at exactly the given hex distance from center, in
// walk order. Ring(c, 0) returns just the center. The ring at radius r > 0
// contains exactly 6r cells.
func Ring(center Axial, radius int) []Axial {
	if radius < 0 {
		return nil
	}
	if radius == 0 {
		return []Axial{center}
	}
	out := make([]Axial, 0, 6*radius)
	// Start at the cell radius steps in direction 4 (south-west) and walk
	// around the ring, one side per direction.
	cur := center.Add(Directions[4].Scale(radius))
	for side := 0; side < 6; side++ {
		for step := 0; step < radius; step++ {
			out = append(out, cur)
			cur = cur.Neighbor(side)
		}
	}
	return out
}

// Spiral returns all cells within the given hex distance of center, ordered
// center-outward ring by ring. It contains 1 + 3·radius·(radius+1) cells.
func Spiral(center Axial, radius int) []Axial {
	if radius < 0 {
		return nil
	}
	out := make([]Axial, 0, 1+3*radius*(radius+1))
	for r := 0; r <= radius; r++ {
		out = append(out, Ring(center, r)...)
	}
	return out
}

// Region is a finite set of lattice cells. The zero value is an empty region.
type Region struct {
	cells map[Axial]struct{}
}

// NewRegion builds a region from the given cells; duplicates are collapsed.
func NewRegion(cells ...Axial) *Region {
	r := &Region{cells: make(map[Axial]struct{}, len(cells))}
	for _, c := range cells {
		r.cells[c] = struct{}{}
	}
	return r
}

// Add inserts a cell into the region.
func (r *Region) Add(c Axial) {
	if r.cells == nil {
		r.cells = make(map[Axial]struct{})
	}
	r.cells[c] = struct{}{}
}

// Remove deletes a cell from the region; removing an absent cell is a no-op.
func (r *Region) Remove(c Axial) { delete(r.cells, c) }

// Contains reports whether c is in the region.
func (r *Region) Contains(c Axial) bool {
	_, ok := r.cells[c]
	return ok
}

// Len returns the number of cells in the region.
func (r *Region) Len() int { return len(r.cells) }

// Cells returns the region's cells in deterministic (row-major axial) order.
func (r *Region) Cells() []Axial {
	out := make([]Axial, 0, len(r.cells))
	for c := range r.cells {
		out = append(out, c)
	}
	SortAxial(out)
	return out
}

// Clone returns an independent copy of the region.
func (r *Region) Clone() *Region {
	out := &Region{cells: make(map[Axial]struct{}, len(r.cells))}
	for c := range r.cells {
		out.cells[c] = struct{}{}
	}
	return out
}

// Bounds returns the inclusive axial bounding box of the region. ok is false
// for an empty region.
func (r *Region) Bounds() (minQ, maxQ, minR, maxR int, ok bool) {
	first := true
	for c := range r.cells {
		if first {
			minQ, maxQ, minR, maxR = c.Q, c.Q, c.R, c.R
			first = false
			continue
		}
		if c.Q < minQ {
			minQ = c.Q
		}
		if c.Q > maxQ {
			maxQ = c.Q
		}
		if c.R < minR {
			minR = c.R
		}
		if c.R > maxR {
			maxR = c.R
		}
	}
	return minQ, maxQ, minR, maxR, !first
}

// Boundary returns the cells of the region that have at least one neighbor
// outside the region, in deterministic order.
func (r *Region) Boundary() []Axial {
	var out []Axial
	for c := range r.cells {
		for _, n := range c.Neighbors() {
			if !r.Contains(n) {
				out = append(out, c)
				break
			}
		}
	}
	SortAxial(out)
	return out
}

// Interior returns the cells of the region all of whose neighbors are also in
// the region, in deterministic order.
func (r *Region) Interior() []Axial {
	var out []Axial
	for c := range r.cells {
		inside := true
		for _, n := range c.Neighbors() {
			if !r.Contains(n) {
				inside = false
				break
			}
		}
		if inside {
			out = append(out, c)
		}
	}
	SortAxial(out)
	return out
}

// Connected reports whether the region is connected under 6-adjacency. An
// empty region is considered connected. Droplets cannot jump between
// disconnected components, so chip footprints must be connected.
func (r *Region) Connected() bool {
	if len(r.cells) == 0 {
		return true
	}
	var start Axial
	for c := range r.cells {
		start = c
		break
	}
	seen := map[Axial]struct{}{start: {}}
	queue := []Axial{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range cur.Neighbors() {
			if !r.Contains(n) {
				continue
			}
			if _, ok := seen[n]; ok {
				continue
			}
			seen[n] = struct{}{}
			queue = append(queue, n)
		}
	}
	return len(seen) == len(r.cells)
}

// SortAxial sorts cells in row-major axial order (R, then Q), the package's
// canonical deterministic ordering.
func SortAxial(cells []Axial) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].R != cells[j].R {
			return cells[i].R < cells[j].R
		}
		return cells[i].Q < cells[j].Q
	})
}

// Parallelogram returns the w×h axial parallelogram region with q in [0,w)
// and r in [0,h). It is the canonical finite array shape used by the layout
// package.
func Parallelogram(w, h int) *Region {
	r := NewRegion()
	for rr := 0; rr < h; rr++ {
		for q := 0; q < w; q++ {
			r.Add(Axial{q, rr})
		}
	}
	return r
}

// Hexagon returns the regular hexagonal region of the given radius centered
// at the origin (all cells with Norm() <= radius).
func Hexagon(radius int) *Region {
	r := NewRegion()
	for _, c := range Spiral(Axial{}, radius) {
		r.Add(c)
	}
	return r
}

// OffsetRectangle returns a rectangular (odd-r offset) region with cols in
// [0,w) and rows in [0,h), matching a physically rectangular chip outline.
func OffsetRectangle(w, h int) *Region {
	r := NewRegion()
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			r.Add(OffsetCoord{col, row}.ToAxial())
		}
	}
	return r
}
