package hexgrid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator so property tests draw coordinates from
// a bounded window rather than the full int range (which would overflow the
// distance arithmetic).
func (Axial) Generate(r *rand.Rand, size int) reflect.Value {
	const span = 1000
	return reflect.ValueOf(Axial{r.Intn(2*span+1) - span, r.Intn(2*span+1) - span})
}

func TestDirectionsAreUnitAndDistinct(t *testing.T) {
	seen := map[Axial]bool{}
	for i, d := range Directions {
		if d.Norm() != 1 {
			t.Errorf("direction %d = %v has norm %d, want 1", i, d, d.Norm())
		}
		if seen[d] {
			t.Errorf("direction %d = %v duplicated", i, d)
		}
		seen[d] = true
	}
	// Opposite directions must cancel: Directions[i] + Directions[i+3] == 0.
	for i := 0; i < 3; i++ {
		if sum := Directions[i].Add(Directions[i+3]); sum != (Axial{}) {
			t.Errorf("directions %d and %d are not opposite: sum %v", i, i+3, sum)
		}
	}
}

func TestNeighborsMatchDirections(t *testing.T) {
	a := Axial{3, -2}
	n := a.Neighbors()
	for i := range Directions {
		want := a.Add(Directions[i])
		if n[i] != want {
			t.Errorf("Neighbors()[%d] = %v, want %v", i, n[i], want)
		}
		if a.Neighbor(i) != want {
			t.Errorf("Neighbor(%d) = %v, want %v", i, a.Neighbor(i), want)
		}
	}
}

func TestDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b Axial
		want int
	}{
		{Axial{0, 0}, Axial{0, 0}, 0},
		{Axial{0, 0}, Axial{1, 0}, 1},
		{Axial{0, 0}, Axial{1, -1}, 1},
		{Axial{0, 0}, Axial{2, 0}, 2},
		{Axial{0, 0}, Axial{1, 1}, 2},
		{Axial{0, 0}, Axial{-3, 3}, 3},
		{Axial{2, -1}, Axial{-1, 2}, 3},
		{Axial{0, 0}, Axial{3, 2}, 5},
	}
	for _, c := range cases {
		if got := c.a.Distance(c.b); got != c.want {
			t.Errorf("Distance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceIsAMetric(t *testing.T) {
	symmetric := func(a, b Axial) bool { return a.Distance(b) == b.Distance(a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a Axial) bool { return a.Distance(a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, c Axial) bool {
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	positive := func(a, b Axial) bool {
		d := a.Distance(b)
		return (d == 0) == (a == b) && d >= 0
	}
	if err := quick.Check(positive, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborsAtDistanceOne(t *testing.T) {
	f := func(a Axial) bool {
		for _, n := range a.Neighbors() {
			if a.Distance(n) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCubeAxialRoundTrip(t *testing.T) {
	f := func(a Axial) bool {
		c := a.ToCube()
		return c.Valid() && c.ToAxial() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetAxialRoundTrip(t *testing.T) {
	f := func(a Axial) bool { return a.ToOffset().ToAxial() == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(col, row int16) bool {
		o := OffsetCoord{int(col), int(row)}
		return o.ToAxial().ToOffset() == o
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestRotationPreservesNormAndHasOrderSix(t *testing.T) {
	f := func(a Axial) bool {
		cw := a.RotateCW()
		if cw.Norm() != a.Norm() {
			return false
		}
		// Six clockwise rotations return to the start.
		x := a
		for i := 0; i < 6; i++ {
			x = x.RotateCW()
		}
		if x != a {
			return false
		}
		// CCW inverts CW.
		return cw.RotateCCW() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingSizeAndDistance(t *testing.T) {
	center := Axial{2, -5}
	for radius := 0; radius <= 6; radius++ {
		ring := Ring(center, radius)
		wantLen := 6 * radius
		if radius == 0 {
			wantLen = 1
		}
		if len(ring) != wantLen {
			t.Errorf("Ring radius %d: got %d cells, want %d", radius, len(ring), wantLen)
		}
		seen := map[Axial]bool{}
		for _, c := range ring {
			if center.Distance(c) != radius {
				t.Errorf("Ring radius %d: cell %v at distance %d", radius, c, center.Distance(c))
			}
			if seen[c] {
				t.Errorf("Ring radius %d: duplicate cell %v", radius, c)
			}
			seen[c] = true
		}
	}
	if Ring(center, -1) != nil {
		t.Error("Ring with negative radius should be nil")
	}
}

func TestSpiralSizeAndCoverage(t *testing.T) {
	center := Axial{-1, 4}
	for radius := 0; radius <= 5; radius++ {
		sp := Spiral(center, radius)
		want := 1 + 3*radius*(radius+1)
		if len(sp) != want {
			t.Errorf("Spiral radius %d: got %d cells, want %d", radius, len(sp), want)
		}
		seen := map[Axial]bool{}
		for _, c := range sp {
			if d := center.Distance(c); d > radius {
				t.Errorf("Spiral radius %d: cell %v too far (%d)", radius, c, d)
			}
			if seen[c] {
				t.Errorf("Spiral radius %d: duplicate %v", radius, c)
			}
			seen[c] = true
		}
	}
}

func TestLineEndpointsAndStepSize(t *testing.T) {
	f := func(a, b Axial) bool {
		line := Line(a, b)
		if len(line) != a.Distance(b)+1 {
			return false
		}
		if line[0] != a || line[len(line)-1] != b {
			return false
		}
		for i := 1; i < len(line); i++ {
			if line[i-1].Distance(line[i]) != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLineDegenerate(t *testing.T) {
	a := Axial{7, -7}
	line := Line(a, a)
	if len(line) != 1 || line[0] != a {
		t.Errorf("Line(a,a) = %v, want [a]", line)
	}
}

func TestRegionBasics(t *testing.T) {
	r := NewRegion(Axial{0, 0}, Axial{1, 0}, Axial{0, 0})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicates collapsed)", r.Len())
	}
	if !r.Contains(Axial{1, 0}) || r.Contains(Axial{5, 5}) {
		t.Error("Contains gives wrong answers")
	}
	r.Add(Axial{2, 0})
	r.Remove(Axial{0, 0})
	if r.Len() != 2 || r.Contains(Axial{0, 0}) {
		t.Error("Add/Remove failed")
	}
	r.Remove(Axial{9, 9}) // removing absent cell is a no-op
	if r.Len() != 2 {
		t.Error("removing absent cell changed the region")
	}
}

func TestRegionZeroValue(t *testing.T) {
	var r Region
	if r.Len() != 0 || r.Contains(Axial{}) {
		t.Error("zero-value region should be empty")
	}
	r.Add(Axial{1, 2})
	if !r.Contains(Axial{1, 2}) {
		t.Error("Add on zero-value region failed")
	}
}

func TestRegionCellsDeterministicOrder(t *testing.T) {
	r := NewRegion(Axial{1, 1}, Axial{0, 0}, Axial{-1, 1}, Axial{2, 0})
	got := r.Cells()
	want := []Axial{{0, 0}, {2, 0}, {-1, 1}, {1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Cells() = %v, want %v", got, want)
	}
}

func TestRegionCloneIsIndependent(t *testing.T) {
	r := NewRegion(Axial{0, 0}, Axial{1, 0})
	c := r.Clone()
	c.Remove(Axial{0, 0})
	if !r.Contains(Axial{0, 0}) {
		t.Error("Clone shares storage with original")
	}
}

func TestRegionBounds(t *testing.T) {
	r := NewRegion(Axial{-2, 3}, Axial{4, -1}, Axial{0, 0})
	minQ, maxQ, minR, maxR, ok := r.Bounds()
	if !ok || minQ != -2 || maxQ != 4 || minR != -1 || maxR != 3 {
		t.Errorf("Bounds = %d %d %d %d %v", minQ, maxQ, minR, maxR, ok)
	}
	var empty Region
	if _, _, _, _, ok := empty.Bounds(); ok {
		t.Error("empty region should report ok=false")
	}
}

func TestBoundaryAndInteriorPartitionHexagon(t *testing.T) {
	r := Hexagon(3)
	boundary := r.Boundary()
	interior := r.Interior()
	if len(boundary)+len(interior) != r.Len() {
		t.Fatalf("boundary %d + interior %d != total %d", len(boundary), len(interior), r.Len())
	}
	// For Hexagon(3) the boundary is exactly the radius-3 ring (18 cells) and
	// the interior is Hexagon(2) (19 cells).
	if len(boundary) != 18 {
		t.Errorf("boundary size %d, want 18", len(boundary))
	}
	if len(interior) != 19 {
		t.Errorf("interior size %d, want 19", len(interior))
	}
	for _, c := range interior {
		if c.Norm() > 2 {
			t.Errorf("interior cell %v has norm %d > 2", c, c.Norm())
		}
	}
}

func TestConnected(t *testing.T) {
	if !NewRegion().Connected() {
		t.Error("empty region should be connected")
	}
	if !Hexagon(2).Connected() {
		t.Error("hexagon should be connected")
	}
	split := NewRegion(Axial{0, 0}, Axial{5, 5})
	if split.Connected() {
		t.Error("two distant cells should not be connected")
	}
	line := NewRegion(Line(Axial{0, 0}, Axial{6, -3})...)
	if !line.Connected() {
		t.Error("line region should be connected")
	}
}

func TestParallelogramShape(t *testing.T) {
	p := Parallelogram(4, 3)
	if p.Len() != 12 {
		t.Fatalf("Parallelogram(4,3) has %d cells, want 12", p.Len())
	}
	for _, c := range p.Cells() {
		if c.Q < 0 || c.Q >= 4 || c.R < 0 || c.R >= 3 {
			t.Errorf("cell %v outside bounds", c)
		}
	}
	if !p.Connected() {
		t.Error("parallelogram should be connected")
	}
	if Parallelogram(0, 5).Len() != 0 {
		t.Error("degenerate parallelogram should be empty")
	}
}

func TestHexagonSize(t *testing.T) {
	for radius := 0; radius <= 5; radius++ {
		want := 1 + 3*radius*(radius+1)
		if got := Hexagon(radius).Len(); got != want {
			t.Errorf("Hexagon(%d).Len() = %d, want %d", radius, got, want)
		}
	}
}

func TestOffsetRectangleShapeAndConnectivity(t *testing.T) {
	r := OffsetRectangle(5, 4)
	if r.Len() != 20 {
		t.Fatalf("OffsetRectangle(5,4) has %d cells, want 20", r.Len())
	}
	if !r.Connected() {
		t.Error("offset rectangle should be connected")
	}
	// Every cell must map back into the rectangle in offset space.
	for _, c := range r.Cells() {
		o := c.ToOffset()
		if o.Col < 0 || o.Col >= 5 || o.Row < 0 || o.Row >= 4 {
			t.Errorf("cell %v -> offset %v outside rectangle", c, o)
		}
	}
}

func TestSortAxialIsRowMajor(t *testing.T) {
	cells := []Axial{{5, 2}, {1, 0}, {-3, 2}, {0, 0}}
	SortAxial(cells)
	want := []Axial{{0, 0}, {1, 0}, {-3, 2}, {5, 2}}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("SortAxial = %v, want %v", cells, want)
	}
}

func TestScaleAndSub(t *testing.T) {
	a := Axial{2, -3}
	if a.Scale(3) != (Axial{6, -9}) {
		t.Errorf("Scale failed: %v", a.Scale(3))
	}
	if a.Sub(Axial{1, 1}) != (Axial{1, -4}) {
		t.Errorf("Sub failed: %v", a.Sub(Axial{1, 1}))
	}
}

func BenchmarkDistance(b *testing.B) {
	a, c := Axial{-57, 99}, Axial{123, -45}
	for i := 0; i < b.N; i++ {
		_ = a.Distance(c)
	}
}

func BenchmarkSpiralRadius20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Spiral(Axial{}, 20)
	}
}
