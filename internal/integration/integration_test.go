// Package integration holds cross-module end-to-end tests: the full
// defect-tolerance lifecycle (manufacture -> test -> diagnose -> reconfigure
// -> execute bioassays on the fluidics simulator) that no single package
// exercises alone.
package integration

import (
	"math"
	"testing"

	"dmfb/internal/bioassay"
	"dmfb/internal/chip"
	"dmfb/internal/defects"
	"dmfb/internal/electrowetting"
	"dmfb/internal/fluidics"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/router"
	"dmfb/internal/scheduler"
	"dmfb/internal/testplan"
	"dmfb/internal/yieldsim"
)

// TestManufactureTestRepairLifecycle drives the complete industrial flow on
// the case-study chip: hidden defects are injected, localized by stimulus
// droplets, repaired by local reconfiguration, and the repaired chip is
// verified to support droplet routing between distant fault-free cells.
func TestManufactureTestRepairLifecycle(t *testing.T) {
	c, err := chip.NewRedesignedChip()
	if err != nil {
		t.Fatal(err)
	}
	arr := c.Array()

	// Manufacture with hidden defects.
	in := defects.NewInjector(424242)
	truth, err := in.FixedCount(arr, 12, defects.AllCells, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Test & diagnose from a fault-free source.
	source := layout.NoCell
	for _, id := range arr.Primaries() {
		if !truth.IsFaulty(id) {
			source = id
			break
		}
	}
	session, err := testplan.NewSession(arr, truth, source)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := testplan.VerifyDiagnosis(arr, truth, diag); err != nil {
		t.Fatalf("diagnosis unsound: %v", err)
	}
	if !diag.Complete {
		t.Logf("note: %d cells unreachable in diagnosis", len(diag.Unreachable))
	}

	// Reconfigure from the diagnosis (not the hidden truth).
	diagnosed := defects.NewFaultSet(arr.NumCells())
	for _, id := range diag.Faulty {
		diagnosed.MarkFaulty(id)
	}
	plan, err := reconfig.LocalReconfigure(arr, diagnosed, reconfig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reconfig.VerifyComplete(arr, diagnosed, plan); err != nil {
		t.Fatal(err)
	}

	// The repaired chip must still route droplets between distant cells.
	cons := router.Constraints{Faults: truth, PrimariesOnly: true}
	usable := router.ReachableFrom(arr, source, cons)
	if len(usable) < arr.NumPrimary()/2 {
		t.Fatalf("repaired chip fragmented: only %d usable primaries", len(usable))
	}
	path, err := router.ShortestPath(arr, usable[0], usable[len(usable)-1], cons)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range path {
		if truth.IsFaulty(id) {
			t.Fatal("route crosses a faulty cell")
		}
	}
}

// TestGlucoseAssayOnFaultyChip executes a complete glucose assay on the
// fluidics simulator of a chip with injected faults: dispense, routed
// transport, sanctioned merge, shuttle mixing, detection, and concentration
// recovery through the kinetics calibration.
func TestGlucoseAssayOnFaultyChip(t *testing.T) {
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	in := defects.NewInjector(99)
	faults, err := in.FixedCount(arr, 8, defects.AllCells, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := fluidics.New(arr, faults)
	if err != nil {
		t.Fatal(err)
	}
	protocol := bioassay.ProtocolFor(bioassay.Glucose)
	const conc = 0.006

	cons := router.Constraints{Faults: faults, PrimariesOnly: true}
	start := layout.NoCell
	for _, id := range arr.Primaries() {
		if !faults.IsFaulty(id) {
			start = id
			break
		}
	}
	usable := router.ReachableFrom(arr, start, cons)
	if len(usable) < 30 {
		t.Fatal("array too fragmented")
	}
	sampleSrc := usable[0]
	reagentSrc := usable[len(usable)-1]

	// Find a mixing site with a feasible approach.
	var mix, approach, staging layout.CellID = layout.NoCell, layout.NoCell, layout.NoCell
	var samplePath, stagePath []layout.CellID
	for _, cand := range usable[len(usable)/3:] {
		sp, err := router.ShortestPath(arr, sampleSrc, cand, cons)
		if err != nil {
			continue
		}
		blocked := map[layout.CellID]bool{cand: true}
		for _, nb := range arr.Neighbors(cand) {
			blocked[nb] = true
		}
		consStage := cons
		consStage.Blocked = blocked
		for _, nb := range arr.Neighbors(cand) {
			if faults.IsFaulty(nb) || arr.Cell(nb).Role != layout.Primary {
				continue
			}
			for _, nb2 := range arr.Neighbors(nb) {
				if blocked[nb2] || faults.IsFaulty(nb2) || arr.Cell(nb2).Role != layout.Primary || nb2 == reagentSrc {
					continue
				}
				if stp, err := router.ShortestPath(arr, reagentSrc, nb2, consStage); err == nil {
					mix, approach, staging = cand, nb, nb2
					samplePath, stagePath = sp, stp
				}
				break
			}
			if mix != layout.NoCell {
				break
			}
		}
		if mix != layout.NoCell {
			break
		}
	}
	if mix == layout.NoCell {
		t.Fatal("no feasible mixing site")
	}
	_ = staging

	sample, err := protocol.SampleDroplet(1, conc)
	if err != nil {
		t.Fatal(err)
	}
	reagent, err := protocol.ReagentDroplet(1)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := sim.Dispense(sampleSrc, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.FollowPath(sid, samplePath); err != nil {
		t.Fatal(err)
	}
	rid, err := sim.Dispense(reagentSrc, reagent)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.FollowPath(rid, stagePath); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step([]fluidics.Command{
		{Droplet: rid, Target: approach, MergeWith: sid},
		{Droplet: sid, Target: mix, MergeWith: rid},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step([]fluidics.Command{
		{Droplet: rid, Target: mix, MergeWith: sid},
		{Droplet: sid, Target: mix, MergeWith: rid},
	}); err != nil {
		t.Fatal(err)
	}
	if len(sim.Droplets()) != 1 {
		t.Fatal("merge failed")
	}
	merged := sim.Droplets()[0].ID
	shuttle := []layout.CellID{approach, mix}
	for i := 0; ; i++ {
		st, _ := sim.Droplet(merged)
		if st.D.Mixed() {
			break
		}
		if err := sim.Step([]fluidics.Command{{Droplet: merged, Target: shuttle[i%2]}}); err != nil {
			t.Fatal(err)
		}
		if i > 100 {
			t.Fatal("mixing never completed")
		}
	}
	st, _ := sim.Droplet(merged)
	absorbance, err := protocol.Measure(st.D)
	if err != nil {
		t.Fatal(err)
	}
	est, err := protocol.EstimateConcentration(absorbance)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-conc/2) > 1e-9 {
		t.Errorf("estimated %v, want %v", est, conc/2)
	}
}

// TestScheduledWorkloadRespectsElectrowettingTiming converts the scheduled
// multiplexed workload into wall-clock time with the electrowetting model
// and sanity-checks the result against the paper's device physics.
func TestScheduledWorkloadRespectsElectrowettingTiming(t *testing.T) {
	ops := bioassay.MultiplexedWorkload()
	sched, err := scheduler.List(ops, scheduler.DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	ew := electrowetting.Default()
	stepTime, err := ew.TransportTime(90)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(sched.Makespan) * stepTime
	// At 7.5 ms/cycle and makespans around 100 cycles, the multiplexed
	// panel completes within seconds — matching the real-time claims of the
	// cited lab-on-chip experiments.
	if total <= 0 || total > 60 {
		t.Errorf("workload time %v s implausible", total)
	}
}

// TestYieldConsistencyAcrossEntryPoints cross-checks the three routes to a
// yield number: direct Monte-Carlo, the core Biochip analysis, and (for
// DTMB(1,6) cluster-complete arrays) the closed form.
func TestYieldConsistencyAcrossEntryPoints(t *testing.T) {
	arr, err := layout.BuildClusterCompleteDTMB16(15)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.98
	mc := yieldsim.NewMonteCarlo(5)
	mc.Runs = 6000
	res, err := mc.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	analytic := yieldsim.ClusterYieldDTMB16(p, arr.NumPrimary())
	if analytic < res.CILo-0.02 || analytic > res.CIHi+0.02 {
		t.Errorf("analytic %v outside MC interval [%v, %v]", analytic, res.CILo, res.CIHi)
	}
}

// TestDiagnosisDrivenRepairMatchesOmniscientRepair verifies that repairing
// from a (complete) diagnosis is as good as repairing from the hidden truth.
func TestDiagnosisDrivenRepairMatchesOmniscientRepair(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB36(), 120)
	if err != nil {
		t.Fatal(err)
	}
	in := defects.NewInjector(31415)
	for trial := 0; trial < 25; trial++ {
		truth, err := in.FixedCount(arr, 9, defects.AllCells, nil)
		if err != nil {
			t.Fatal(err)
		}
		source := layout.NoCell
		for _, id := range arr.Primaries() {
			if !truth.IsFaulty(id) {
				source = id
				break
			}
		}
		session, err := testplan.NewSession(arr, truth, source)
		if err != nil {
			t.Fatal(err)
		}
		diag, err := session.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !diag.Complete {
			continue // fragmented instance: diagnosis legitimately partial
		}
		diagnosed := defects.NewFaultSet(arr.NumCells())
		for _, id := range diag.Faulty {
			diagnosed.MarkFaulty(id)
		}
		fromDiag, err := reconfig.LocalReconfigure(arr, diagnosed, reconfig.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fromTruth, err := reconfig.LocalReconfigure(arr, truth, reconfig.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fromDiag.OK != fromTruth.OK {
			t.Fatalf("trial %d: diagnosis-driven repair OK=%v, omniscient OK=%v",
				trial, fromDiag.OK, fromTruth.OK)
		}
	}
}
