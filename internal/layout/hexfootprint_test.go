package layout

import (
	"testing"
)

func TestBuildHexagonWithPrimaryTargetExactCount(t *testing.T) {
	for _, d := range AllDesigns() {
		for _, n := range []int{1, 7, 40, 100} {
			arr, err := BuildHexagonWithPrimaryTarget(d, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", d.Name, n, err)
			}
			if arr.NumPrimary() != n {
				t.Errorf("%s n=%d: got %d primaries", d.Name, n, arr.NumPrimary())
			}
			if err := arr.Validate(); err != nil {
				t.Errorf("%s n=%d: invalid array: %v", d.Name, n, err)
			}
			if arr.NumSpare() == 0 && n > 6 {
				t.Errorf("%s n=%d: hexagon build produced no spares", d.Name, n)
			}
		}
	}
}

func TestBuildHexagonWithPrimaryTargetRejectsBadN(t *testing.T) {
	if _, err := BuildHexagonWithPrimaryTarget(DTMB26(), 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BuildHexagonWithPrimaryTarget(DTMB26(), -3); err == nil {
		t.Error("n=-3 accepted")
	}
}

// TestHexagonFootprintHasFewerBoundaryCells verifies the geometric motivation
// for the hex strategy: at equal primary count, the hexagonal footprint has a
// smaller boundary fraction than the parallelogram, so more cells keep the
// full six-neighbor interstitial signature.
func TestHexagonFootprintHasFewerBoundaryCells(t *testing.T) {
	const n = 150
	d := DTMB26()
	hexArr, err := BuildHexagonWithPrimaryTarget(d, n)
	if err != nil {
		t.Fatal(err)
	}
	parArr, err := BuildWithPrimaryTarget(d, n)
	if err != nil {
		t.Fatal(err)
	}
	interiorFrac := func(a *Array) float64 {
		interior := 0
		for i := 0; i < a.NumCells(); i++ {
			if a.IsInterior(CellID(i)) {
				interior++
			}
		}
		return float64(interior) / float64(a.NumCells())
	}
	hf, pf := interiorFrac(hexArr), interiorFrac(parArr)
	if hf <= pf {
		t.Errorf("hexagon interior fraction %.3f not above parallelogram %.3f", hf, pf)
	}
}
