// Package layout constructs defect-tolerant microfluidic arrays with
// interstitial redundancy, the DTMB(s, p) designs of Su, Chakrabarty and
// Pamula (DATE 2005).
//
// A DTMB(s, p) array is a hexagonal-electrode array in which spare cells
// occupy interstitial lattice sites so that every non-boundary primary cell
// is physically adjacent to exactly s spare cells and every non-boundary
// spare cell is adjacent to exactly p primary cells. Because droplets can
// only move between physically adjacent cells ("microfluidic locality"),
// this placement is what makes purely local reconfiguration possible.
//
// Spare sites form sublattices of the triangular lattice; the membership
// rules below are derived in DESIGN.md §3 and verified by the package tests:
//
//	DTMB(1,6):  (2q − r) ≡ 0 (mod 7)      — the index-7 perfect code
//	DTMB(2,6)A:  q ≡ 0 and r ≡ 0 (mod 2)
//	DTMB(2,6)B:  r ≡ 0 (mod 2) and (2q − r) ≡ 0 (mod 4)
//	DTMB(3,6):  (q − r) ≡ 0 (mod 3)       — the √3×√3 superlattice
//	DTMB(4,4):  r ≡ 0 (mod 2)             — alternating spare rows
package layout

import (
	"fmt"

	"dmfb/internal/hexgrid"
)

// Role distinguishes primary (working) cells from interstitial spares.
type Role uint8

const (
	// Primary cells carry out droplet operations during normal use.
	Primary Role = iota
	// Spare cells sit at interstitial sites and replace adjacent faulty
	// primaries during reconfiguration.
	Spare
)

// String returns "primary" or "spare".
func (r Role) String() string {
	if r == Spare {
		return "spare"
	}
	return "primary"
}

// Design describes a DTMB(s, p) interstitial-redundancy pattern.
type Design struct {
	// Name is the paper's designation, e.g. "DTMB(2,6)".
	Name string
	// S is the number of spare cells adjacent to each non-boundary primary.
	S int
	// P is the number of primary cells adjacent to each non-boundary spare.
	P int
	// IsSpare reports whether the lattice site is a spare site.
	IsSpare func(hexgrid.Axial) bool
}

// RR returns the asymptotic redundancy ratio s/p (spares per primary) of the
// design, Table 1 of the paper.
func (d Design) RR() float64 { return float64(d.S) / float64(d.P) }

// mod returns the non-negative remainder of x modulo m.
func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// DTMB16 returns the DTMB(1,6) design: every primary adjacent to exactly one
// spare, every spare to six primaries (RR = 1/6). Spares occupy the index-7
// perfect-code sublattice.
func DTMB16() Design {
	return Design{
		Name: "DTMB(1,6)",
		S:    1, P: 6,
		IsSpare: func(a hexgrid.Axial) bool { return mod(2*a.Q-a.R, 7) == 0 },
	}
}

// DTMB26 returns the DTMB(2,6) design of the paper's Fig. 4(a): spares on the
// doubled sublattice (RR = 1/3).
func DTMB26() Design {
	return Design{
		Name: "DTMB(2,6)",
		S:    2, P: 6,
		IsSpare: func(a hexgrid.Axial) bool { return mod(a.Q, 2) == 0 && mod(a.R, 2) == 0 },
	}
}

// DTMB26Alt returns the alternative DTMB(2,6) arrangement of the paper's
// Fig. 4(b): same (s, p) signature and redundancy ratio, different spare
// sublattice geometry.
func DTMB26Alt() Design {
	return Design{
		Name: "DTMB(2,6)alt",
		S:    2, P: 6,
		IsSpare: func(a hexgrid.Axial) bool {
			return mod(a.R, 2) == 0 && mod(2*a.Q-a.R, 4) == 0
		},
	}
}

// DTMB36 returns the DTMB(3,6) design (RR = 1/2): spares on the √3×√3
// superlattice so every primary touches three spares.
func DTMB36() Design {
	return Design{
		Name: "DTMB(3,6)",
		S:    3, P: 6,
		IsSpare: func(a hexgrid.Axial) bool { return mod(a.Q-a.R, 3) == 0 },
	}
}

// DTMB44 returns the DTMB(4,4) design (RR = 1): alternating rows of spares,
// the highest redundancy level evaluated in the paper.
func DTMB44() Design {
	return Design{
		Name: "DTMB(4,4)",
		S:    4, P: 4,
		IsSpare: func(a hexgrid.Axial) bool { return mod(a.R, 2) == 0 },
	}
}

// AllDesigns returns the four canonical designs in the paper's Table 1 order.
// The DTMB(2,6) Fig. 4(b) variant is available via DTMB26Alt.
func AllDesigns() []Design {
	return []Design{DTMB16(), DTMB26(), DTMB36(), DTMB44()}
}

// AllDesignsWithVariants returns every constructible design: the four
// canonical Table 1 designs followed by the DTMB(2,6) Fig. 4(b) variant.
func AllDesignsWithVariants() []Design {
	return append(AllDesigns(), DTMB26Alt())
}

// DesignByName returns the design with the given name (as produced by the
// constructors above, e.g. "DTMB(3,6)").
func DesignByName(name string) (Design, error) {
	for _, d := range AllDesignsWithVariants() {
		if d.Name == name {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("layout: unknown design %q", name)
}

// CellID indexes a cell within an Array. IDs are dense in [0, NumCells).
type CellID int32

// NoCell marks the absence of a cell.
const NoCell CellID = -1

// Cell is one electrode site of a defect-tolerant array.
type Cell struct {
	ID   CellID
	Pos  hexgrid.Axial
	Role Role
}

// Array is a finite defect-tolerant microfluidic array instantiated from a
// Design over a region of the hexagonal lattice. It precomputes the
// adjacency indices used by reconfiguration and yield simulation.
type Array struct {
	design Design
	cells  []Cell
	index  map[hexgrid.Axial]CellID

	// grid is the dense position index of the array's axial bounding box:
	// grid[(r−gridMinR)·gridW + (q−gridMinQ)] is the cell at (q,r), or NoCell.
	// CellAt resolves through it in a couple of arithmetic ops where the map
	// above costs a hash — the difference is the whole clustered-injection
	// hot path, which probes every ring position of every cluster. It is nil
	// for pathologically sparse regions (see gridMaxWaste), where CellAt
	// falls back to the map.
	grid            []CellID
	gridMinQ, gridW int
	gridMinR, gridH int

	primaries []CellID // IDs of primary cells, ascending
	spares    []CellID // IDs of spare cells, ascending

	// neighbors[id] lists the array-resident neighbors of cell id.
	neighbors [][]CellID
	// spareNbrs[id] lists adjacent spare cells (meaningful for primaries).
	spareNbrs [][]CellID
	// primaryNbrs[id] lists adjacent primary cells (meaningful for spares).
	primaryNbrs [][]CellID
}

// Build instantiates the design over the given region. Every region cell
// becomes either a primary or a spare according to the design's lattice rule.
func Build(d Design, region *hexgrid.Region) (*Array, error) {
	if d.IsSpare == nil {
		return nil, fmt.Errorf("layout: design %q has no membership rule", d.Name)
	}
	if region == nil || region.Len() == 0 {
		return nil, fmt.Errorf("layout: empty region for design %q", d.Name)
	}
	cells := region.Cells() // deterministic row-major order
	arr := &Array{
		design: d,
		cells:  make([]Cell, 0, len(cells)),
		index:  make(map[hexgrid.Axial]CellID, len(cells)),
	}
	for _, pos := range cells {
		id := CellID(len(arr.cells))
		role := Primary
		if d.IsSpare(pos) {
			role = Spare
		}
		arr.cells = append(arr.cells, Cell{ID: id, Pos: pos, Role: role})
		arr.index[pos] = id
		if role == Primary {
			arr.primaries = append(arr.primaries, id)
		} else {
			arr.spares = append(arr.spares, id)
		}
	}
	arr.buildAdjacency()
	arr.buildGrid()
	return arr, nil
}

// gridMaxWaste bounds the dense position index: the bounding box may hold at
// most this many empty slots per resident cell before Build falls back to the
// map. Every array shape the package constructs (parallelograms, hexagons,
// offset rectangles, cluster unions) is within a small constant of dense, so
// the guard only trips for degenerate hand-built regions such as long
// diagonal lines.
const gridMaxWaste = 64

// buildGrid precomputes the dense CellAt table over the axial bounding box.
func (a *Array) buildGrid() {
	minQ, maxQ := a.cells[0].Pos.Q, a.cells[0].Pos.Q
	minR, maxR := a.cells[0].Pos.R, a.cells[0].Pos.R
	for i := range a.cells {
		p := a.cells[i].Pos
		if p.Q < minQ {
			minQ = p.Q
		}
		if p.Q > maxQ {
			maxQ = p.Q
		}
		if p.R < minR {
			minR = p.R
		}
		if p.R > maxR {
			maxR = p.R
		}
	}
	w, h := maxQ-minQ+1, maxR-minR+1
	if w*h > gridMaxWaste*len(a.cells) {
		return // leave grid nil; CellAt falls back to the map
	}
	a.gridMinQ, a.gridW = minQ, w
	a.gridMinR, a.gridH = minR, h
	a.grid = make([]CellID, w*h)
	for i := range a.grid {
		a.grid[i] = NoCell
	}
	for i := range a.cells {
		p := a.cells[i].Pos
		a.grid[(p.R-minR)*w+(p.Q-minQ)] = CellID(i)
	}
}

// BuildParallelogram instantiates the design over a w×h axial parallelogram.
func BuildParallelogram(d Design, w, h int) (*Array, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("layout: invalid parallelogram %dx%d", w, h)
	}
	return Build(d, hexgrid.Parallelogram(w, h))
}

// BuildHexagon instantiates the design over a hexagonal region of the given
// radius centered at the origin.
func BuildHexagon(d Design, radius int) (*Array, error) {
	if radius < 0 {
		return nil, fmt.Errorf("layout: invalid hexagon radius %d", radius)
	}
	return Build(d, hexgrid.Hexagon(radius))
}

// BuildWithPrimaryTarget builds an array with exactly nPrimary primary cells,
// the parameter the paper sweeps ("n is the number of primary cells"). It
// grows a parallelogram until at least nPrimary primaries exist, then trims
// surplus primary cells from the region boundary (never spares, so the
// redundancy structure of the remaining primaries is intact).
func BuildWithPrimaryTarget(d Design, nPrimary int) (*Array, error) {
	if nPrimary <= 0 {
		return nil, fmt.Errorf("layout: primary target %d must be positive", nPrimary)
	}
	// Estimate the region size from the design's spare density
	// s/(s+p) per cell, then grow until the primary count suffices.
	for side := 2; ; side++ {
		region := hexgrid.Parallelogram(side, side)
		arr, err := Build(d, region)
		if err != nil {
			return nil, err
		}
		if len(arr.primaries) < nPrimary {
			continue
		}
		if len(arr.primaries) == nPrimary {
			return arr, nil
		}
		trimmed, err := trimPrimaries(d, region, len(arr.primaries)-nPrimary)
		if err != nil {
			return nil, err
		}
		return trimmed, nil
	}
}

// BuildHexagonWithPrimaryTarget builds an array over a regular hexagonal
// chip footprint with exactly nPrimary primary cells — the hexagonal-array
// DTMB geometry of the companion fault-tolerance work, where the chip
// outline follows the lattice instead of a rectangle. It grows the hexagon
// radius until at least nPrimary primaries exist, then trims surplus
// primaries from the region boundary (never spares), exactly like
// BuildWithPrimaryTarget does for parallelogram footprints. Relative to a
// parallelogram of equal primary count the hexagon has proportionally fewer
// boundary cells, so more of its primaries enjoy the full (s, p)
// interstitial signature.
func BuildHexagonWithPrimaryTarget(d Design, nPrimary int) (*Array, error) {
	if nPrimary <= 0 {
		return nil, fmt.Errorf("layout: primary target %d must be positive", nPrimary)
	}
	for radius := 0; ; radius++ {
		region := hexgrid.Hexagon(radius)
		arr, err := Build(d, region)
		if err != nil {
			return nil, err
		}
		if len(arr.primaries) < nPrimary {
			continue
		}
		if len(arr.primaries) == nPrimary {
			return arr, nil
		}
		return trimPrimaries(d, region, len(arr.primaries)-nPrimary)
	}
}

// BuildClusterCompleteDTMB16 builds a DTMB(1,6) array as a union of
// nClusters complete clusters — one spare plus its six surrounding primaries
// — chosen spiral-outward from the origin. Because the spare sites form a
// perfect code, clusters are disjoint and the array has exactly 6·nClusters
// primary cells, every primary owning its cluster spare. This is the exact
// geometry assumed by the paper's analytical yield model
// Y = (p^7 + 7p^6(1−p))^(n/6); parallelogram arrays deviate from it at the
// boundary (see the boundary-effects ablation in EXPERIMENTS.md).
func BuildClusterCompleteDTMB16(nClusters int) (*Array, error) {
	if nClusters <= 0 {
		return nil, fmt.Errorf("layout: cluster count %d must be positive", nClusters)
	}
	d := DTMB16()
	region := hexgrid.NewRegion()
	added := 0
	for radius := 0; added < nClusters; radius++ {
		for _, c := range hexgrid.Ring(hexgrid.Axial{}, radius) {
			if !d.IsSpare(c) {
				continue
			}
			region.Add(c)
			for _, nb := range c.Neighbors() {
				region.Add(nb)
			}
			added++
			if added == nClusters {
				break
			}
		}
	}
	return Build(d, region)
}

// trimPrimaries removes excess primary cells from the region's outer
// boundary, scanning from the last row inward, and rebuilds the array.
func trimPrimaries(d Design, region *hexgrid.Region, excess int) (*Array, error) {
	r := region.Clone()
	for excess > 0 {
		removed := false
		// Boundary returns deterministic row-major order; remove from the end
		// (highest row) so trimming stays contiguous and predictable.
		boundary := r.Boundary()
		for i := len(boundary) - 1; i >= 0 && excess > 0; i-- {
			pos := boundary[i]
			if d.IsSpare(pos) {
				continue
			}
			r.Remove(pos)
			excess--
			removed = true
		}
		if !removed {
			return nil, fmt.Errorf("layout: cannot trim %d more primaries", excess)
		}
	}
	return Build(d, r)
}

func (a *Array) buildAdjacency() {
	n := len(a.cells)
	a.neighbors = make([][]CellID, n)
	a.spareNbrs = make([][]CellID, n)
	a.primaryNbrs = make([][]CellID, n)
	for i := range a.cells {
		c := &a.cells[i]
		for _, npos := range c.Pos.Neighbors() {
			nid, ok := a.index[npos]
			if !ok {
				continue
			}
			a.neighbors[i] = append(a.neighbors[i], nid)
			switch a.cells[nid].Role {
			case Spare:
				a.spareNbrs[i] = append(a.spareNbrs[i], nid)
			case Primary:
				a.primaryNbrs[i] = append(a.primaryNbrs[i], nid)
			}
		}
	}
}

// Design returns the design the array was built from.
func (a *Array) Design() Design { return a.design }

// NumCells returns the total number of cells N (primaries + spares).
func (a *Array) NumCells() int { return len(a.cells) }

// NumPrimary returns the number of primary cells n.
func (a *Array) NumPrimary() int { return len(a.primaries) }

// NumSpare returns the number of spare cells.
func (a *Array) NumSpare() int { return len(a.spares) }

// Primaries returns the IDs of all primary cells in ascending order. The
// slice is owned by the array and must not be modified.
func (a *Array) Primaries() []CellID { return a.primaries }

// Spares returns the IDs of all spare cells in ascending order. The slice is
// owned by the array and must not be modified.
func (a *Array) Spares() []CellID { return a.spares }

// Cell returns the cell with the given ID.
func (a *Array) Cell(id CellID) Cell { return a.cells[id] }

// CellAt returns the ID of the cell at the given position, or NoCell. It is
// the clustered-injection hot path (every ring position of every cluster is
// probed), so it resolves through the dense bounding-box grid rather than
// the construction map.
func (a *Array) CellAt(pos hexgrid.Axial) CellID {
	if a.grid != nil {
		q, r := pos.Q-a.gridMinQ, pos.R-a.gridMinR
		if uint(q) >= uint(a.gridW) || uint(r) >= uint(a.gridH) {
			return NoCell
		}
		return a.grid[r*a.gridW+q]
	}
	if id, ok := a.index[pos]; ok {
		return id
	}
	return NoCell
}

// Neighbors returns the array-resident neighbors of id. The slice is owned by
// the array and must not be modified.
func (a *Array) Neighbors(id CellID) []CellID { return a.neighbors[id] }

// SpareNeighbors returns the spare cells adjacent to id (normally a primary).
// The slice is owned by the array and must not be modified.
func (a *Array) SpareNeighbors(id CellID) []CellID { return a.spareNbrs[id] }

// PrimaryNeighbors returns the primary cells adjacent to id (normally a
// spare). The slice is owned by the array and must not be modified.
func (a *Array) PrimaryNeighbors(id CellID) []CellID { return a.primaryNbrs[id] }

// RedundancyRatio returns the realized spare/primary ratio of this finite
// array. It approaches Design().RR() as the array grows (Definition 2).
func (a *Array) RedundancyRatio() float64 {
	if len(a.primaries) == 0 {
		return 0
	}
	return float64(len(a.spares)) / float64(len(a.primaries))
}

// IsInterior reports whether all six lattice neighbors of id are present in
// the array. The DTMB (s, p) signature is guaranteed only for interior cells.
func (a *Array) IsInterior(id CellID) bool { return len(a.neighbors[id]) == 6 }

// SignatureStats summarizes how many interior cells match the design's
// (s, p) signature; used by Validate and reported by the layout tool.
type SignatureStats struct {
	InteriorPrimaries, MatchingPrimaries int
	InteriorSpares, MatchingSpares       int
}

// Signature verifies the DTMB(s, p) property on interior cells.
func (a *Array) Signature() SignatureStats {
	var st SignatureStats
	for i := range a.cells {
		id := CellID(i)
		if !a.IsInterior(id) {
			continue
		}
		switch a.cells[i].Role {
		case Primary:
			st.InteriorPrimaries++
			if len(a.spareNbrs[i]) == a.design.S {
				st.MatchingPrimaries++
			}
		case Spare:
			st.InteriorSpares++
			if len(a.primaryNbrs[i]) == a.design.P {
				st.MatchingSpares++
			}
		}
	}
	return st
}

// Validate checks the structural invariants of the array: dense IDs,
// consistent index, no adjacent spare pair (spares are interstitial), and the
// exact (s, p) signature on every interior cell. It returns nil when sound.
func (a *Array) Validate() error {
	for i := range a.cells {
		if a.cells[i].ID != CellID(i) {
			return fmt.Errorf("layout: cell %d has ID %d", i, a.cells[i].ID)
		}
		if got := a.index[a.cells[i].Pos]; got != CellID(i) {
			return fmt.Errorf("layout: index[%v] = %d, want %d", a.cells[i].Pos, got, i)
		}
	}
	// When p = 6 a spare's whole neighborhood is primary, so spares must be
	// pairwise non-adjacent. Designs with p < 6 (DTMB(4,4)) place spares in
	// rows: an interior spare then touches exactly 6−p other spares, which
	// the signature check below enforces.
	if a.design.P == 6 {
		for _, s := range a.spares {
			for _, nb := range a.neighbors[s] {
				if a.cells[nb].Role == Spare {
					return fmt.Errorf("layout: adjacent spares %v and %v in %s",
						a.cells[s].Pos, a.cells[nb].Pos, a.design.Name)
				}
			}
		}
	}
	st := a.Signature()
	if st.MatchingPrimaries != st.InteriorPrimaries {
		return fmt.Errorf("layout: %s: %d/%d interior primaries have s=%d spare neighbors",
			a.design.Name, st.MatchingPrimaries, st.InteriorPrimaries, a.design.S)
	}
	if st.MatchingSpares != st.InteriorSpares {
		return fmt.Errorf("layout: %s: %d/%d interior spares have p=%d primary neighbors",
			a.design.Name, st.MatchingSpares, st.InteriorSpares, a.design.P)
	}
	return nil
}

// Region returns a copy of the array's cell positions as a region.
func (a *Array) Region() *hexgrid.Region {
	r := hexgrid.NewRegion()
	for i := range a.cells {
		r.Add(a.cells[i].Pos)
	}
	return r
}

// String summarizes the array.
func (a *Array) String() string {
	return fmt.Sprintf("%s array: %d primary + %d spare = %d cells (RR %.4f)",
		a.design.Name, a.NumPrimary(), a.NumSpare(), a.NumCells(), a.RedundancyRatio())
}
