package layout

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmfb/internal/hexgrid"
)

func TestTable1RedundancyRatios(t *testing.T) {
	// Paper Table 1: RR for the four canonical designs.
	want := map[string]float64{
		"DTMB(1,6)": 1.0 / 6.0,
		"DTMB(2,6)": 1.0 / 3.0,
		"DTMB(3,6)": 0.5,
		"DTMB(4,4)": 1.0,
	}
	for _, d := range AllDesigns() {
		if w, ok := want[d.Name]; !ok || math.Abs(d.RR()-w) > 1e-12 {
			t.Errorf("%s: RR() = %.4f, want %.4f", d.Name, d.RR(), w)
		}
	}
	if alt := DTMB26Alt(); math.Abs(alt.RR()-1.0/3.0) > 1e-12 {
		t.Errorf("DTMB(2,6)alt RR = %.4f, want 1/3", alt.RR())
	}
}

func TestDesignByName(t *testing.T) {
	for _, name := range []string{"DTMB(1,6)", "DTMB(2,6)", "DTMB(2,6)alt", "DTMB(3,6)", "DTMB(4,4)"} {
		d, err := DesignByName(name)
		if err != nil {
			t.Errorf("DesignByName(%q): %v", name, err)
		}
		if d.Name != name {
			t.Errorf("DesignByName(%q) returned %q", name, d.Name)
		}
	}
	if _, err := DesignByName("DTMB(9,9)"); err == nil {
		t.Error("unknown design should error")
	}
}

// allDesignsWithAlt returns the five concrete designs under test.
func allDesignsWithAlt() []Design {
	return append(AllDesigns(), DTMB26Alt())
}

func TestInteriorSignatureExactOnAllDesigns(t *testing.T) {
	// Definition 1: every non-boundary primary sees exactly s spares, every
	// non-boundary spare sees exactly p primaries. Checked on a region large
	// enough to have many interior cells.
	for _, d := range allDesignsWithAlt() {
		arr, err := BuildParallelogram(d, 30, 30)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		st := arr.Signature()
		if st.InteriorPrimaries == 0 || st.InteriorSpares == 0 {
			t.Fatalf("%s: degenerate interior (%d primaries, %d spares)",
				d.Name, st.InteriorPrimaries, st.InteriorSpares)
		}
		if st.MatchingPrimaries != st.InteriorPrimaries {
			t.Errorf("%s: %d/%d interior primaries have s=%d spare neighbors",
				d.Name, st.MatchingPrimaries, st.InteriorPrimaries, d.S)
		}
		if st.MatchingSpares != st.InteriorSpares {
			t.Errorf("%s: %d/%d interior spares have p=%d primary neighbors",
				d.Name, st.MatchingSpares, st.InteriorSpares, d.P)
		}
		if err := arr.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", d.Name, err)
		}
	}
}

func TestSparesAreNeverAdjacent(t *testing.T) {
	// Interstitial redundancy requires spares isolated from each other
	// (except DTMB(4,4), whose spares form rows and touch along rows — the
	// design trades that for RR=1; the paper's Fig. 6 shows spare rows).
	for _, d := range []Design{DTMB16(), DTMB26(), DTMB26Alt(), DTMB36()} {
		arr, err := BuildParallelogram(d, 20, 20)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		for _, s := range arr.Spares() {
			for _, nb := range arr.Neighbors(s) {
				if arr.Cell(nb).Role == Spare {
					t.Fatalf("%s: spares %v and %v adjacent",
						d.Name, arr.Cell(s).Pos, arr.Cell(nb).Pos)
				}
			}
		}
	}
}

func TestDTMB44SpareRows(t *testing.T) {
	// DTMB(4,4) places spares in alternating rows: spare neighbors of a
	// spare are the two same-row cells; its four other-row neighbors are
	// primary. Validate() intentionally rejects this design's spare-spare
	// adjacency only via the signature, so check the row structure directly.
	arr, err := BuildParallelogram(DTMB44(), 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range arr.Spares() {
		if arr.Cell(s).Pos.R%2 != 0 {
			t.Fatalf("spare at odd row %v", arr.Cell(s).Pos)
		}
	}
	for _, p := range arr.Primaries() {
		if mod := arr.Cell(p).Pos.R % 2; mod == 0 {
			t.Fatalf("primary on spare row %v", arr.Cell(p).Pos)
		}
	}
	st := arr.Signature()
	if st.MatchingPrimaries != st.InteriorPrimaries || st.MatchingSpares != st.InteriorSpares {
		t.Errorf("DTMB(4,4) signature violated: %+v", st)
	}
}

func TestRedundancyRatioConvergesToTable1(t *testing.T) {
	// Definition 2: RR ≈ s/p for large arrays.
	for _, d := range allDesignsWithAlt() {
		arr, err := BuildParallelogram(d, 84, 84) // multiple of 2,3,7 lattice periods
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		got := arr.RedundancyRatio()
		want := d.RR()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: finite RR %.4f, asymptotic %.4f", d.Name, got, want)
		}
	}
}

func TestSpareDensityMatchesLatticeIndex(t *testing.T) {
	// The fraction of spare sites must equal s/(s+p): 1/7, 1/4, 1/3, 1/2.
	want := map[string]float64{
		"DTMB(1,6)":    1.0 / 7.0,
		"DTMB(2,6)":    0.25,
		"DTMB(2,6)alt": 0.25,
		"DTMB(3,6)":    1.0 / 3.0,
		"DTMB(4,4)":    0.5,
	}
	for _, d := range allDesignsWithAlt() {
		arr, err := BuildParallelogram(d, 84, 84)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		got := float64(arr.NumSpare()) / float64(arr.NumCells())
		if math.Abs(got-want[d.Name]) > 1e-3 {
			t.Errorf("%s: spare density %.4f, want %.4f", d.Name, got, want[d.Name])
		}
	}
}

func TestMembershipRulesArePeriodic(t *testing.T) {
	// Shifting by the sublattice basis must preserve spare membership.
	bases := map[string][2]hexgrid.Axial{
		"DTMB(1,6)":    {{Q: 3, R: -1}, {Q: 1, R: 2}},
		"DTMB(2,6)":    {{Q: 2, R: 0}, {Q: 0, R: 2}},
		"DTMB(2,6)alt": {{Q: 2, R: 0}, {Q: 1, R: 2}},
		"DTMB(3,6)":    {{Q: 2, R: -1}, {Q: 1, R: 1}},
		"DTMB(4,4)":    {{Q: 1, R: 0}, {Q: 0, R: 2}},
	}
	rng := rand.New(rand.NewSource(11))
	for _, d := range allDesignsWithAlt() {
		basis := bases[d.Name]
		for trial := 0; trial < 500; trial++ {
			a := hexgrid.Axial{Q: rng.Intn(61) - 30, R: rng.Intn(61) - 30}
			for _, v := range basis {
				if d.IsSpare(a) != d.IsSpare(a.Add(v)) {
					t.Fatalf("%s: membership not periodic under %v at %v", d.Name, v, a)
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Design{Name: "broken"}, hexgrid.Hexagon(2)); err == nil {
		t.Error("design without rule should fail")
	}
	if _, err := Build(DTMB16(), nil); err == nil {
		t.Error("nil region should fail")
	}
	if _, err := Build(DTMB16(), hexgrid.NewRegion()); err == nil {
		t.Error("empty region should fail")
	}
	if _, err := BuildParallelogram(DTMB16(), 0, 5); err == nil {
		t.Error("degenerate parallelogram should fail")
	}
	if _, err := BuildHexagon(DTMB16(), -1); err == nil {
		t.Error("negative radius should fail")
	}
	if _, err := BuildWithPrimaryTarget(DTMB16(), 0); err == nil {
		t.Error("zero primary target should fail")
	}
}

func TestBuildWithPrimaryTargetExactCounts(t *testing.T) {
	for _, d := range allDesignsWithAlt() {
		for _, n := range []int{6, 50, 100, 252} {
			arr, err := BuildWithPrimaryTarget(d, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", d.Name, n, err)
			}
			if arr.NumPrimary() != n {
				t.Errorf("%s: NumPrimary = %d, want %d", d.Name, arr.NumPrimary(), n)
			}
			if err := arr.Validate(); err != nil {
				t.Errorf("%s n=%d: %v", d.Name, n, err)
			}
		}
	}
}

func TestCellLookupRoundTrip(t *testing.T) {
	arr, err := BuildHexagon(DTMB26(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < arr.NumCells(); i++ {
		c := arr.Cell(CellID(i))
		if got := arr.CellAt(c.Pos); got != c.ID {
			t.Fatalf("CellAt(%v) = %d, want %d", c.Pos, got, c.ID)
		}
	}
	if arr.CellAt(hexgrid.Axial{Q: 1000, R: 1000}) != NoCell {
		t.Error("absent position should return NoCell")
	}
}

func TestNeighborListsAreMutual(t *testing.T) {
	arr, err := BuildParallelogram(DTMB36(), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < arr.NumCells(); i++ {
		id := CellID(i)
		for _, nb := range arr.Neighbors(id) {
			found := false
			for _, back := range arr.Neighbors(nb) {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not mutual: %d -> %d", id, nb)
			}
		}
	}
}

func TestSpareAndPrimaryNeighborPartition(t *testing.T) {
	arr, err := BuildParallelogram(DTMB26Alt(), 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < arr.NumCells(); i++ {
		id := CellID(i)
		total := len(arr.SpareNeighbors(id)) + len(arr.PrimaryNeighbors(id))
		if total != len(arr.Neighbors(id)) {
			t.Fatalf("cell %d: spare+primary neighbors %d != total %d",
				id, total, len(arr.Neighbors(id)))
		}
		for _, s := range arr.SpareNeighbors(id) {
			if arr.Cell(s).Role != Spare {
				t.Fatalf("cell %d: non-spare in SpareNeighbors", id)
			}
		}
		for _, p := range arr.PrimaryNeighbors(id) {
			if arr.Cell(p).Role != Primary {
				t.Fatalf("cell %d: non-primary in PrimaryNeighbors", id)
			}
		}
	}
}

func TestPrimariesAndSparesPartitionCells(t *testing.T) {
	arr, err := BuildHexagon(DTMB16(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if arr.NumPrimary()+arr.NumSpare() != arr.NumCells() {
		t.Errorf("primaries %d + spares %d != cells %d",
			arr.NumPrimary(), arr.NumSpare(), arr.NumCells())
	}
	seen := map[CellID]bool{}
	for _, id := range arr.Primaries() {
		if arr.Cell(id).Role != Primary {
			t.Errorf("cell %d in Primaries has role %v", id, arr.Cell(id).Role)
		}
		seen[id] = true
	}
	for _, id := range arr.Spares() {
		if arr.Cell(id).Role != Spare {
			t.Errorf("cell %d in Spares has role %v", id, arr.Cell(id).Role)
		}
		if seen[id] {
			t.Errorf("cell %d in both partitions", id)
		}
	}
}

func TestDTMB16IsPerfectCode(t *testing.T) {
	// Every interior primary has exactly one spare neighbor, and the
	// clusters of one spare + six primaries tile the array: the distance
	// from any cell to the nearest spare site is at most 1.
	d := DTMB16()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		a := hexgrid.Axial{Q: rng.Intn(101) - 50, R: rng.Intn(101) - 50}
		if d.IsSpare(a) {
			continue
		}
		spares := 0
		for _, nb := range a.Neighbors() {
			if d.IsSpare(nb) {
				spares++
			}
		}
		if spares != 1 {
			t.Fatalf("primary %v has %d spare neighbors, want exactly 1", a, spares)
		}
	}
}

func TestBuildClusterCompleteDTMB16(t *testing.T) {
	for _, k := range []int{1, 7, 20} {
		arr, err := BuildClusterCompleteDTMB16(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if arr.NumPrimary() != 6*k || arr.NumSpare() != k {
			t.Errorf("k=%d: %d primaries %d spares, want %d/%d",
				k, arr.NumPrimary(), arr.NumSpare(), 6*k, k)
		}
		// Every primary must own exactly one spare, every spare exactly six
		// primaries — no boundary deficit anywhere.
		for _, p := range arr.Primaries() {
			if len(arr.SpareNeighbors(p)) != 1 {
				t.Fatalf("k=%d: primary %d has %d spares", k, p, len(arr.SpareNeighbors(p)))
			}
		}
		for _, s := range arr.Spares() {
			if len(arr.PrimaryNeighbors(s)) != 6 {
				t.Fatalf("k=%d: spare %d has %d primaries", k, s, len(arr.PrimaryNeighbors(s)))
			}
		}
		if err := arr.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
	if _, err := BuildClusterCompleteDTMB16(0); err == nil {
		t.Error("zero clusters should fail")
	}
}

func TestRegionRoundTrip(t *testing.T) {
	orig := hexgrid.Hexagon(4)
	arr, err := Build(DTMB36(), orig)
	if err != nil {
		t.Fatal(err)
	}
	back := arr.Region()
	if back.Len() != orig.Len() {
		t.Fatalf("region round trip: %d != %d", back.Len(), orig.Len())
	}
	for _, c := range orig.Cells() {
		if !back.Contains(c) {
			t.Fatalf("cell %v lost in round trip", c)
		}
	}
}

func TestStringMentionsDesignAndCounts(t *testing.T) {
	arr, err := BuildParallelogram(DTMB26(), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := arr.String()
	if !strings.Contains(s, "DTMB(2,6)") || !strings.Contains(s, "spare") {
		t.Errorf("String() = %q lacks design name or counts", s)
	}
}

func TestRoleString(t *testing.T) {
	if Primary.String() != "primary" || Spare.String() != "spare" {
		t.Error("Role.String wrong")
	}
}

func BenchmarkBuildParallelogram30(b *testing.B) {
	d := DTMB26()
	for i := 0; i < b.N; i++ {
		if _, err := BuildParallelogram(d, 30, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildWithPrimaryTarget100(b *testing.B) {
	d := DTMB36()
	for i := 0; i < b.N; i++ {
		if _, err := BuildWithPrimaryTarget(d, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCellAtGridMatchesIndex pins the dense CellAt grid to the construction
// map over every design and footprint shape: hits resolve to the same ID,
// and positions off the array (inside and outside the bounding box alike)
// return NoCell. CellAt is the clustered-injection hot path, so this is the
// lookup the defect model's determinism rests on.
func TestCellAtGridMatchesIndex(t *testing.T) {
	arrs := make([]*Array, 0, 8)
	for _, d := range AllDesignsWithVariants() {
		arr, err := BuildWithPrimaryTarget(d, 60)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, arr)
	}
	hexArr, err := BuildHexagonWithPrimaryTarget(DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := BuildClusterCompleteDTMB16(9)
	if err != nil {
		t.Fatal(err)
	}
	arrs = append(arrs, hexArr, cluster)
	for _, arr := range arrs {
		byPos := make(map[hexgrid.Axial]CellID, arr.NumCells())
		minQ, maxQ := 0, 0
		minR, maxR := 0, 0
		for i := 0; i < arr.NumCells(); i++ {
			c := arr.Cell(CellID(i))
			byPos[c.Pos] = c.ID
			if c.Pos.Q < minQ {
				minQ = c.Pos.Q
			}
			if c.Pos.Q > maxQ {
				maxQ = c.Pos.Q
			}
			if c.Pos.R < minR {
				minR = c.Pos.R
			}
			if c.Pos.R > maxR {
				maxR = c.Pos.R
			}
		}
		// Scan a margin beyond the bounding box so both the in-box miss and
		// the out-of-box early return are exercised.
		for q := minQ - 3; q <= maxQ+3; q++ {
			for r := minR - 3; r <= maxR+3; r++ {
				pos := hexgrid.Axial{Q: q, R: r}
				want, ok := byPos[pos]
				if !ok {
					want = NoCell
				}
				if got := arr.CellAt(pos); got != want {
					t.Fatalf("%s: CellAt(%v) = %d, want %d", arr, pos, got, want)
				}
			}
		}
	}
}
