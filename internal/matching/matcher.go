package matching

// Matcher is a reusable maximum-matching solver for the Monte-Carlo hot
// path. Where Graph allocates adjacency lists and Result slices per call,
// a Matcher keeps every working array — flat CSR adjacency, match, BFS
// distance, and queue buffers — as scratch that survives across trials, so
// a steady-state feasibility query performs no heap allocation at all.
//
// The build protocol is streaming and left-vertex-at-a-time, which is
// exactly how reconfiguration assembles its repair graph (one faulty
// primary after another):
//
//	m.Reset(nb)
//	for each left vertex:
//	    m.AddEdge(b) ... // edges of the current left vertex
//	    deg := m.EndLeft()
//	    if deg == 0 { /* no matching can saturate A */ }
//	feasible := m.SaturatesA()
//
// Edges added after Reset and before the first EndLeft belong to left
// vertex 0, and so on. The solver is Hopcroft–Karp, identical in result
// to Graph.HopcroftKarp (and, by maximality, to Graph.Kuhn).
//
// A Matcher is not safe for concurrent use; give each worker its own.
type Matcher struct {
	nb int
	// CSR adjacency: edges of left vertex a are edges[starts[a]:starts[a+1]].
	// len(starts) == NA()+1 at all times; starts[0] == 0.
	starts []int32
	edges  []int32
	// emptyLeft records whether any completed left vertex has degree zero —
	// an immediate Hall violation (|N({a})| = 0 < 1) that lets SaturatesA
	// answer without running the solver.
	emptyLeft bool

	matchA, matchB, dist, queue []int32
}

// NewMatcher returns a matcher with scratch preallocated for graphs of up
// to maxA left vertices, maxB right vertices, and maxEdges edges. Larger
// graphs still work; they just grow the scratch once. Callers that know
// their bounds (reconfig sessions know the array) reach zero steady-state
// allocation immediately. All five fixed-size scratch arrays are carved
// from one backing allocation (capacity-capped so appends can never bleed
// into a neighbor); only edges gets its own, as the one buffer whose growth
// profile differs.
func NewMatcher(maxA, maxB, maxEdges int) *Matcher {
	if maxA < 0 {
		maxA = 0
	}
	if maxB < 0 {
		maxB = 0
	}
	if maxEdges < 0 {
		maxEdges = 0
	}
	buf := make([]int32, (maxA+1)+3*maxA+maxB)
	startsEnd := maxA + 1
	matchAEnd := startsEnd + maxA
	matchBEnd := matchAEnd + maxB
	distEnd := matchBEnd + maxA
	m := &Matcher{
		starts: buf[0:1:startsEnd],
		matchA: buf[startsEnd:startsEnd:matchAEnd],
		matchB: buf[matchAEnd:matchAEnd:matchBEnd],
		dist:   buf[matchBEnd:matchBEnd:distEnd],
		queue:  buf[distEnd:distEnd],
		edges:  make([]int32, 0, maxEdges),
	}
	return m
}

// Reset clears the matcher for a new graph with nb right vertices. Left
// vertices are introduced incrementally by AddEdge/EndLeft.
func (m *Matcher) Reset(nb int) {
	if nb < 0 {
		nb = 0
	}
	m.nb = nb
	m.starts = m.starts[:1]
	m.starts[0] = 0
	m.edges = m.edges[:0]
	m.emptyLeft = false
}

// NA returns the number of completed left vertices.
func (m *Matcher) NA() int { return len(m.starts) - 1 }

// NB returns the number of right vertices.
func (m *Matcher) NB() int { return m.nb }

// Edges returns the number of edges added since Reset (including those of
// the still-open left vertex).
func (m *Matcher) Edges() int { return len(m.edges) }

// AddEdge attaches right vertex b to the currently open left vertex. b must
// be in [0, NB()); out-of-range values panic, as the caller (a session bound
// to a fixed array) controls both sides.
func (m *Matcher) AddEdge(b int) {
	if b < 0 || b >= m.nb {
		panic("matching: right vertex out of range")
	}
	m.edges = append(m.edges, int32(b))
}

// EndLeft completes the current left vertex and returns its degree. A zero
// degree means this vertex can never be matched — callers typically
// early-exit a saturation query on it.
func (m *Matcher) EndLeft() int {
	deg := len(m.edges) - int(m.starts[len(m.starts)-1])
	m.starts = append(m.starts, int32(len(m.edges)))
	if deg == 0 {
		m.emptyLeft = true
	}
	return deg
}

// MaxMatchingSize computes the maximum matching size with Hopcroft–Karp
// over the scratch buffers, without materializing a Result.
func (m *Matcher) MaxMatchingSize() int {
	na := m.NA()
	if na == 0 || m.nb == 0 || len(m.edges) == 0 {
		return 0
	}
	m.matchA = growInt32(m.matchA, na)
	m.matchB = growInt32(m.matchB, m.nb)
	m.dist = growInt32(m.dist, na)
	for i := 0; i < na; i++ {
		m.matchA[i] = Unmatched
	}
	for i := 0; i < m.nb; i++ {
		m.matchB[i] = Unmatched
	}
	size := 0
	for m.bfs() {
		for a := int32(0); a < int32(na); a++ {
			if m.matchA[a] == Unmatched && m.dfs(a) {
				size++
			}
		}
	}
	return size
}

// SaturatesA reports whether a maximum matching covers every left vertex —
// the reconfiguration-feasibility question. A recorded degree-zero left
// vertex answers false immediately, skipping the solver.
func (m *Matcher) SaturatesA() bool {
	if m.emptyLeft {
		return false
	}
	na := m.NA()
	if na == 0 {
		return true
	}
	return m.MaxMatchingSize() == na
}

const matcherInf = int32(1) << 30

func (m *Matcher) bfs() bool {
	na := int32(m.NA())
	m.queue = m.queue[:0]
	for a := int32(0); a < na; a++ {
		if m.matchA[a] == Unmatched {
			m.dist[a] = 0
			m.queue = append(m.queue, a)
		} else {
			m.dist[a] = matcherInf
		}
	}
	found := false
	for i := 0; i < len(m.queue); i++ {
		a := m.queue[i]
		for j := m.starts[a]; j < m.starts[a+1]; j++ {
			nxt := m.matchB[m.edges[j]]
			if nxt == Unmatched {
				found = true
				continue
			}
			if m.dist[nxt] == matcherInf {
				m.dist[nxt] = m.dist[a] + 1
				m.queue = append(m.queue, nxt)
			}
		}
	}
	return found
}

func (m *Matcher) dfs(a int32) bool {
	for j := m.starts[a]; j < m.starts[a+1]; j++ {
		b := m.edges[j]
		nxt := m.matchB[b]
		if nxt == Unmatched || (m.dist[nxt] == m.dist[a]+1 && m.dfs(nxt)) {
			m.matchA[a] = b
			m.matchB[b] = a
			return true
		}
	}
	m.dist[a] = matcherInf
	return false
}

// GraphSignature returns a 64-bit FNV-1a digest of the graph built since
// Reset: the right-side size, the CSR row starts, and the edge list, in
// order. Two matchers that were fed the identical Reset/AddEdge/EndLeft
// sequence — and only those — produce equal signatures, which is how the
// differential suite pins that the word-driven and FaultSet-driven
// feasibility paths assemble the same repair graph, not merely the same
// verdict.
func (m *Matcher) GraphSignature() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(m.nb))
	mix(uint64(len(m.starts)))
	for _, s := range m.starts {
		mix(uint64(uint32(s)))
	}
	for _, e := range m.edges {
		mix(uint64(uint32(e)))
	}
	return h
}

// growInt32 returns s resliced to length n, reallocating only when the
// capacity is insufficient (which the preallocating constructor avoids).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
