package matching

import (
	"math/rand"
	"testing"
)

// buildBoth constructs the same random bipartite graph as a Graph and as a
// Matcher, returning both.
func buildBoth(t *testing.T, rng *rand.Rand, na, nb int, edgeProb float64) (*Graph, *Matcher) {
	t.Helper()
	g := NewGraph(na, nb)
	m := NewMatcher(na, nb, na*nb)
	m.Reset(nb)
	for a := 0; a < na; a++ {
		for b := 0; b < nb; b++ {
			if rng.Float64() < edgeProb {
				if err := g.AddEdge(a, b); err != nil {
					t.Fatal(err)
				}
				m.AddEdge(b)
			}
		}
		m.EndLeft()
	}
	return g, m
}

// TestMatcherMatchesGraphRandom cross-validates the scratch-arena solver
// against both reference algorithms on random graphs of varied shape and
// density.
func TestMatcherMatchesGraphRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {3, 5}, {5, 3}, {8, 8}, {12, 7}, {20, 30}, {40, 40}}
	for _, sh := range shapes {
		for _, prob := range []float64{0, 0.05, 0.2, 0.5, 0.9, 1} {
			for trial := 0; trial < 20; trial++ {
				g, m := buildBoth(t, rng, sh[0], sh[1], prob)
				hk := g.HopcroftKarp()
				kuhn := g.Kuhn()
				got := m.MaxMatchingSize()
				if got != hk.Size || got != kuhn.Size {
					t.Fatalf("na=%d nb=%d prob=%.2f: Matcher size %d, HopcroftKarp %d, Kuhn %d",
						sh[0], sh[1], prob, got, hk.Size, kuhn.Size)
				}
				if m.SaturatesA() != hk.SaturatesA() {
					t.Fatalf("na=%d nb=%d prob=%.2f: SaturatesA disagrees (matcher %v, graph %v)",
						sh[0], sh[1], prob, m.SaturatesA(), hk.SaturatesA())
				}
			}
		}
	}
}

// TestMatcherReuseAcrossGraphs checks that one matcher solves a sequence of
// differently sized graphs correctly — the session usage pattern.
func TestMatcherReuseAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatcher(4, 4, 16) // deliberately small: later graphs force growth
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(15), rng.Intn(15)
		g := NewGraph(na, nb)
		m.Reset(nb)
		for a := 0; a < na; a++ {
			for b := 0; b < nb; b++ {
				if rng.Float64() < 0.3 {
					if err := g.AddEdge(a, b); err != nil {
						t.Fatal(err)
					}
					m.AddEdge(b)
				}
			}
			m.EndLeft()
		}
		if got, want := m.MaxMatchingSize(), g.HopcroftKarp().Size; got != want {
			t.Fatalf("trial %d (na=%d nb=%d): matcher %d, graph %d", trial, na, nb, got, want)
		}
	}
}

// TestMatcherEmptyLeftEarlyExit checks the degree-zero early exit: EndLeft
// reports 0 and SaturatesA answers false without solving.
func TestMatcherEmptyLeftEarlyExit(t *testing.T) {
	m := NewMatcher(2, 2, 4)
	m.Reset(2)
	m.AddEdge(0)
	if deg := m.EndLeft(); deg != 1 {
		t.Fatalf("degree %d, want 1", deg)
	}
	if deg := m.EndLeft(); deg != 0 {
		t.Fatalf("degree %d, want 0", deg)
	}
	if m.SaturatesA() {
		t.Fatal("SaturatesA true despite an isolated left vertex")
	}
	// The same matcher recovers after a Reset.
	m.Reset(1)
	m.AddEdge(0)
	m.EndLeft()
	if !m.SaturatesA() {
		t.Fatal("SaturatesA false on a trivially saturable graph")
	}
}

// TestMatcherTrivialCases pins the degenerate shapes.
func TestMatcherTrivialCases(t *testing.T) {
	m := NewMatcher(0, 0, 0)
	m.Reset(0)
	if !m.SaturatesA() {
		t.Fatal("empty graph must saturate A vacuously")
	}
	if m.MaxMatchingSize() != 0 {
		t.Fatal("empty graph has nonzero matching")
	}
	m.Reset(5)
	if m.NA() != 0 || m.NB() != 5 {
		t.Fatalf("NA=%d NB=%d after Reset(5)", m.NA(), m.NB())
	}
}

// TestMatcherAddEdgePanics pins the contract that out-of-range right
// vertices panic rather than corrupt scratch.
func TestMatcherAddEdgePanics(t *testing.T) {
	m := NewMatcher(1, 1, 1)
	m.Reset(1)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1) with nb=1 did not panic")
		}
	}()
	m.AddEdge(1)
}

// TestMatcherSteadyStateZeroAllocs pins the whole build-and-solve cycle to
// zero allocations once the scratch is warm.
func TestMatcherSteadyStateZeroAllocs(t *testing.T) {
	const na, nb = 12, 10
	m := NewMatcher(na, nb, na*3)
	rng := rand.New(rand.NewSource(3))
	// Deterministic pseudo-random edge pattern regenerated per cycle without
	// allocating: a tiny LCG inlined below.
	cycle := func(seed uint64) {
		m.Reset(nb)
		x := seed
		for a := 0; a < na; a++ {
			for k := 0; k < 3; k++ {
				x = x*6364136223846793005 + 1442695040888963407
				m.AddEdge(int(x>>33) % nb)
			}
			m.EndLeft()
		}
		m.SaturatesA()
	}
	for i := 0; i < 10; i++ {
		cycle(rng.Uint64())
	}
	allocs := testing.AllocsPerRun(100, func() { cycle(42) })
	if allocs != 0 {
		t.Fatalf("steady-state matcher cycle allocates %.1f times per run, want 0", allocs)
	}
}
