// Package matching implements maximum matching on bipartite graphs.
//
// It is the feasibility kernel of local reconfiguration for defect-tolerant
// microfluidic arrays: the left side A holds faulty primary cells, the right
// side B holds fault-free spare cells, and an edge means physical adjacency.
// A reconfiguration exists if and only if a maximum matching saturates A
// (every faulty primary is assigned its own adjacent spare).
//
// Two algorithms are provided: Hopcroft–Karp (O(E·sqrt(V)), the default) and
// Kuhn's augmenting-path algorithm (O(V·E), used as an independent
// cross-check in tests and ablation benchmarks). Both return identical
// matching sizes on every graph.
package matching

import "fmt"

// Unmatched marks a vertex with no partner in a matching.
const Unmatched = -1

// Graph is a bipartite graph with NA left vertices (0..NA-1) and NB right
// vertices (0..NB-1). Edges are stored as adjacency lists on the left side.
type Graph struct {
	na, nb int
	adj    [][]int32
	edges  int
}

// NewGraph returns an empty bipartite graph with the given part sizes.
// Negative sizes are treated as zero.
func NewGraph(na, nb int) *Graph {
	if na < 0 {
		na = 0
	}
	if nb < 0 {
		nb = 0
	}
	return &Graph{na: na, nb: nb, adj: make([][]int32, na)}
}

// NA returns the number of left-side vertices.
func (g *Graph) NA() int { return g.na }

// NB returns the number of right-side vertices.
func (g *Graph) NB() int { return g.nb }

// Edges returns the number of edges added so far.
func (g *Graph) Edges() int { return g.edges }

// AddEdge inserts the edge (a, b). It returns an error if either endpoint is
// out of range. Parallel edges are permitted and harmless.
func (g *Graph) AddEdge(a, b int) error {
	if a < 0 || a >= g.na {
		return fmt.Errorf("matching: left vertex %d out of range [0,%d)", a, g.na)
	}
	if b < 0 || b >= g.nb {
		return fmt.Errorf("matching: right vertex %d out of range [0,%d)", b, g.nb)
	}
	g.adj[a] = append(g.adj[a], int32(b))
	g.edges++
	return nil
}

// Adj returns the right-side neighbors of left vertex a. The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) Adj(a int) []int32 { return g.adj[a] }

// Result holds a matching. MatchA[a] is the right partner of left vertex a
// (or Unmatched); MatchB[b] is the left partner of right vertex b.
type Result struct {
	Size   int
	MatchA []int
	MatchB []int
}

// SaturatesA reports whether every left vertex is matched — for
// reconfiguration, whether every faulty primary cell received a spare.
func (r Result) SaturatesA() bool { return r.Size == len(r.MatchA) }

// UnmatchedA returns the left vertices without a partner, in index order.
func (r Result) UnmatchedA() []int {
	var out []int
	for a, b := range r.MatchA {
		if b == Unmatched {
			out = append(out, a)
		}
	}
	return out
}

// HopcroftKarp computes a maximum matching in O(E·sqrt(V)).
func (g *Graph) HopcroftKarp() Result {
	const inf = int32(1) << 30
	matchA := make([]int32, g.na)
	matchB := make([]int32, g.nb)
	for i := range matchA {
		matchA[i] = Unmatched
	}
	for i := range matchB {
		matchB[i] = Unmatched
	}
	dist := make([]int32, g.na)
	queue := make([]int32, 0, g.na)

	bfs := func() bool {
		queue = queue[:0]
		for a := 0; a < g.na; a++ {
			if matchA[a] == Unmatched {
				dist[a] = 0
				queue = append(queue, int32(a))
			} else {
				dist[a] = inf
			}
		}
		found := false
		for i := 0; i < len(queue); i++ {
			a := queue[i]
			for _, b := range g.adj[a] {
				nxt := matchB[b]
				if nxt == Unmatched {
					found = true
					continue
				}
				if dist[nxt] == inf {
					dist[nxt] = dist[a] + 1
					queue = append(queue, nxt)
				}
			}
		}
		return found
	}

	var dfs func(a int32) bool
	dfs = func(a int32) bool {
		for _, b := range g.adj[a] {
			nxt := matchB[b]
			if nxt == Unmatched || (dist[nxt] == dist[a]+1 && dfs(nxt)) {
				matchA[a] = b
				matchB[b] = a
				return true
			}
		}
		dist[a] = inf
		return false
	}

	size := 0
	for bfs() {
		for a := int32(0); a < int32(g.na); a++ {
			if matchA[a] == Unmatched && dfs(a) {
				size++
			}
		}
	}
	return g.makeResult(size, matchA, matchB)
}

// Kuhn computes a maximum matching with repeated augmenting-path search in
// O(V·E). It exists as an independent implementation for cross-validation.
func (g *Graph) Kuhn() Result {
	matchA := make([]int32, g.na)
	matchB := make([]int32, g.nb)
	for i := range matchA {
		matchA[i] = Unmatched
	}
	for i := range matchB {
		matchB[i] = Unmatched
	}
	visited := make([]int32, g.nb)
	for i := range visited {
		visited[i] = -1
	}

	var try func(a, stamp int32) bool
	try = func(a, stamp int32) bool {
		for _, b := range g.adj[a] {
			if visited[b] == stamp {
				continue
			}
			visited[b] = stamp
			if matchB[b] == Unmatched || try(matchB[b], stamp) {
				matchA[a] = b
				matchB[b] = a
				return true
			}
		}
		return false
	}

	size := 0
	for a := int32(0); a < int32(g.na); a++ {
		if try(a, a) {
			size++
		}
	}
	return g.makeResult(size, matchA, matchB)
}

func (g *Graph) makeResult(size int, matchA, matchB []int32) Result {
	res := Result{
		Size:   size,
		MatchA: make([]int, g.na),
		MatchB: make([]int, g.nb),
	}
	for i, v := range matchA {
		res.MatchA[i] = int(v)
	}
	for i, v := range matchB {
		res.MatchB[i] = int(v)
	}
	return res
}

// Validate checks that res is a feasible matching of g: partners are
// symmetric, every matched pair is an actual edge, and no vertex is reused.
// It returns nil if the matching is structurally sound.
func (g *Graph) Validate(res Result) error {
	if len(res.MatchA) != g.na || len(res.MatchB) != g.nb {
		return fmt.Errorf("matching: result sized %dx%d, graph %dx%d",
			len(res.MatchA), len(res.MatchB), g.na, g.nb)
	}
	size := 0
	for a, b := range res.MatchA {
		if b == Unmatched {
			continue
		}
		size++
		if b < 0 || b >= g.nb {
			return fmt.Errorf("matching: MatchA[%d]=%d out of range", a, b)
		}
		if res.MatchB[b] != a {
			return fmt.Errorf("matching: asymmetric pair a=%d b=%d (MatchB[%d]=%d)", a, b, b, res.MatchB[b])
		}
		found := false
		for _, nb := range g.adj[a] {
			if int(nb) == b {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", a, b)
		}
	}
	if size != res.Size {
		return fmt.Errorf("matching: declared size %d, actual %d", res.Size, size)
	}
	for b, a := range res.MatchB {
		if a == Unmatched {
			continue
		}
		if a < 0 || a >= g.na || res.MatchA[a] != b {
			return fmt.Errorf("matching: MatchB[%d]=%d inconsistent", b, a)
		}
	}
	return nil
}

// HallViolation returns a set S of left vertices whose neighborhood N(S) is
// smaller than S, which by Hall's theorem certifies that no matching
// saturates A. It returns nil if the matching res saturates A. The witness is
// the set of left vertices reachable by alternating paths from any unmatched
// left vertex (the König construction).
func (g *Graph) HallViolation(res Result) []int {
	if res.SaturatesA() {
		return nil
	}
	inS := make([]bool, g.na)
	inT := make([]bool, g.nb) // right vertices reached
	var stack []int
	for a := 0; a < g.na; a++ {
		if res.MatchA[a] == Unmatched {
			inS[a] = true
			stack = append(stack, a)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b32 := range g.adj[a] {
			b := int(b32)
			if inT[b] {
				continue
			}
			inT[b] = true
			// Follow the matched edge back to the left side.
			if a2 := res.MatchB[b]; a2 != Unmatched && !inS[a2] {
				inS[a2] = true
				stack = append(stack, a2)
			}
		}
	}
	var out []int
	for a, ok := range inS {
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// NeighborhoodSize returns |N(S)| for a set S of left vertices, used to check
// Hall-violation witnesses.
func (g *Graph) NeighborhoodSize(s []int) int {
	seen := make(map[int32]struct{})
	for _, a := range s {
		if a < 0 || a >= g.na {
			continue
		}
		for _, b := range g.adj[a] {
			seen[b] = struct{}{}
		}
	}
	return len(seen)
}
