package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, a, b int) {
	t.Helper()
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", a, b, err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	for _, res := range []Result{g.HopcroftKarp(), g.Kuhn()} {
		if res.Size != 0 {
			t.Errorf("empty graph matching size %d", res.Size)
		}
		if !res.SaturatesA() {
			t.Error("empty A should be trivially saturated")
		}
		if err := g.Validate(res); err != nil {
			t.Error(err)
		}
	}
}

func TestNegativeSizesClamped(t *testing.T) {
	g := NewGraph(-3, -1)
	if g.NA() != 0 || g.NB() != 0 {
		t.Errorf("negative sizes not clamped: %d %d", g.NA(), g.NB())
	}
}

func TestAddEdgeRangeChecks(t *testing.T) {
	g := NewGraph(2, 2)
	for _, e := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("AddEdge(%d,%d) should fail", e[0], e[1])
		}
	}
	if err := g.AddEdge(1, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if g.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", g.Edges())
	}
}

func TestPerfectMatchingSquare(t *testing.T) {
	// Complete bipartite K3,3 has a perfect matching.
	g := NewGraph(3, 3)
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			mustEdge(t, g, a, b)
		}
	}
	res := g.HopcroftKarp()
	if res.Size != 3 || !res.SaturatesA() {
		t.Errorf("K3,3: size %d", res.Size)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestPaperFigure8StyleInstance(t *testing.T) {
	// Mirrors the paper's Fig. 8 example shape: faulty primaries sharing
	// adjacent spares; a saturating assignment exists.
	// A = {f0, f1, f2}, B = {s0, s1, s2, s3}
	g := NewGraph(3, 4)
	mustEdge(t, g, 0, 0)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 2)
	mustEdge(t, g, 2, 3)
	res := g.HopcroftKarp()
	if !res.SaturatesA() {
		t.Fatalf("expected saturating matching, got size %d", res.Size)
	}
	if v := g.HallViolation(res); v != nil {
		t.Errorf("no violation expected, got %v", v)
	}
}

func TestContention(t *testing.T) {
	// Three faulty primaries all adjacent to only two spares: impossible.
	g := NewGraph(3, 2)
	for a := 0; a < 3; a++ {
		mustEdge(t, g, a, 0)
		mustEdge(t, g, a, 1)
	}
	res := g.HopcroftKarp()
	if res.Size != 2 {
		t.Fatalf("size %d, want 2", res.Size)
	}
	if res.SaturatesA() {
		t.Fatal("should not saturate")
	}
	unmatched := res.UnmatchedA()
	if len(unmatched) != 1 {
		t.Fatalf("unmatched %v, want exactly one", unmatched)
	}
	viol := g.HallViolation(res)
	if viol == nil {
		t.Fatal("expected Hall violation witness")
	}
	if g.NeighborhoodSize(viol) >= len(viol) {
		t.Errorf("witness S (|S|=%d) has |N(S)|=%d, not a violation",
			len(viol), g.NeighborhoodSize(viol))
	}
}

func TestIsolatedLeftVertex(t *testing.T) {
	g := NewGraph(2, 2)
	mustEdge(t, g, 0, 0)
	// vertex 1 has no edges
	res := g.HopcroftKarp()
	if res.Size != 1 || res.SaturatesA() {
		t.Errorf("size %d saturates %v", res.Size, res.SaturatesA())
	}
	viol := g.HallViolation(res)
	// {1} alone is a Hall violation (|N({1})| = 0).
	if len(viol) == 0 {
		t.Fatal("expected nonempty witness")
	}
	if g.NeighborhoodSize(viol) >= len(viol) {
		t.Error("witness is not a Hall violation")
	}
}

func TestParallelEdgesHarmless(t *testing.T) {
	g := NewGraph(1, 1)
	mustEdge(t, g, 0, 0)
	mustEdge(t, g, 0, 0)
	res := g.HopcroftKarp()
	if res.Size != 1 {
		t.Errorf("size %d, want 1", res.Size)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestChainAugmentation(t *testing.T) {
	// Path graph requiring augmentation: a0-b0, a1-b0, a1-b1. Greedy that
	// matches a0-b0 then must augment to place a1.
	g := NewGraph(2, 2)
	mustEdge(t, g, 0, 0)
	mustEdge(t, g, 1, 0)
	mustEdge(t, g, 1, 1)
	for name, res := range map[string]Result{"hk": g.HopcroftKarp(), "kuhn": g.Kuhn()} {
		if res.Size != 2 {
			t.Errorf("%s: size %d, want 2", name, res.Size)
		}
	}
}

// randomGraph builds a random bipartite graph with the given densities.
func randomGraph(rng *rand.Rand, na, nb int, prob float64) *Graph {
	g := NewGraph(na, nb)
	for a := 0; a < na; a++ {
		for b := 0; b < nb; b++ {
			if rng.Float64() < prob {
				_ = g.AddEdge(a, b)
			}
		}
	}
	return g
}

func TestHopcroftKarpEqualsKuhnOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		na := rng.Intn(20)
		nb := rng.Intn(20)
		g := randomGraph(rng, na, nb, rng.Float64())
		hk := g.HopcroftKarp()
		kuhn := g.Kuhn()
		if hk.Size != kuhn.Size {
			t.Fatalf("trial %d: HK size %d != Kuhn size %d (na=%d nb=%d edges=%d)",
				trial, hk.Size, kuhn.Size, na, nb, g.Edges())
		}
		if err := g.Validate(hk); err != nil {
			t.Fatalf("trial %d HK: %v", trial, err)
		}
		if err := g.Validate(kuhn); err != nil {
			t.Fatalf("trial %d Kuhn: %v", trial, err)
		}
	}
}

func TestHallViolationWitnessIsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		na := 1 + rng.Intn(15)
		nb := rng.Intn(12)
		g := randomGraph(rng, na, nb, 0.15)
		res := g.HopcroftKarp()
		viol := g.HallViolation(res)
		if res.SaturatesA() {
			if viol != nil {
				t.Fatalf("trial %d: witness on saturating matching", trial)
			}
			continue
		}
		checked++
		if len(viol) == 0 {
			t.Fatalf("trial %d: missing witness", trial)
		}
		if n := g.NeighborhoodSize(viol); n >= len(viol) {
			t.Fatalf("trial %d: |S|=%d |N(S)|=%d is not a violation", trial, len(viol), n)
		}
	}
	if checked == 0 {
		t.Fatal("no unsaturated instances generated; weaken density")
	}
}

func TestMatchingSizeNeverExceedsMinPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := rng.Intn(25), rng.Intn(25)
		g := randomGraph(rng, na, nb, 0.3)
		res := g.HopcroftKarp()
		minPart := na
		if nb < minPart {
			minPart = nb
		}
		return res.Size <= minPart && res.Size >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatchingMonotoneInEdges(t *testing.T) {
	// Adding edges can never decrease the maximum matching size.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(12), 1+rng.Intn(12)
		g := NewGraph(na, nb)
		prev := 0
		for k := 0; k < 30; k++ {
			_ = g.AddEdge(rng.Intn(na), rng.Intn(nb))
			size := g.HopcroftKarp().Size
			if size < prev {
				t.Fatalf("trial %d: matching shrank %d -> %d", trial, prev, size)
			}
			prev = size
		}
	}
}

func TestValidateRejectsCorruptResults(t *testing.T) {
	g := NewGraph(2, 2)
	mustEdge(t, g, 0, 0)
	mustEdge(t, g, 1, 1)
	res := g.HopcroftKarp()

	bad := res
	bad.Size = 5
	if err := g.Validate(bad); err == nil {
		t.Error("wrong size accepted")
	}

	bad = Result{Size: 1, MatchA: []int{1, Unmatched}, MatchB: []int{Unmatched, 0}}
	if err := g.Validate(bad); err == nil {
		t.Error("non-edge pair accepted")
	}

	bad = Result{Size: 0, MatchA: []int{Unmatched}, MatchB: []int{Unmatched, Unmatched}}
	if err := g.Validate(bad); err == nil {
		t.Error("wrong dimensions accepted")
	}

	asym := Result{
		Size:   2,
		MatchA: []int{0, 1},
		MatchB: []int{1, 0}, // inconsistent with MatchA
	}
	if err := g.Validate(asym); err == nil {
		t.Error("asymmetric matching accepted")
	}
}

func TestLargeSparseGraph(t *testing.T) {
	// A long "ladder": a_i adjacent to b_i and b_{i+1}. Perfect matching
	// exists; exercises deep augmenting structure.
	const n = 5000
	g := NewGraph(n, n)
	for i := 0; i < n; i++ {
		mustEdge(t, g, i, i)
		if i+1 < n {
			mustEdge(t, g, i, i+1)
		}
	}
	res := g.HopcroftKarp()
	if res.Size != n {
		t.Fatalf("ladder: size %d, want %d", res.Size, n)
	}
	if err := g.Validate(res); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHopcroftKarpDense100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 100, 100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HopcroftKarp()
	}
}

func BenchmarkKuhnDense100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 100, 100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Kuhn()
	}
}

func BenchmarkHopcroftKarpSparse5000(b *testing.B) {
	g := NewGraph(5000, 5000)
	for i := 0; i < 5000; i++ {
		_ = g.AddEdge(i, i)
		if i+1 < 5000 {
			_ = g.AddEdge(i, i+1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HopcroftKarp()
	}
}
