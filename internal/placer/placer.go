// Package placer places microfluidic modules (mixers, detectors, storage)
// onto cells of a hexagonal array, avoiding faulty cells.
//
// It implements the paper's first category of reconfiguration (§4): defect
// tolerance *without* space redundancy, where faults are tolerated by
// re-placing modules onto fault-free unused cells. The paper notes this
// "leads to an increase in design complexity" and couples fault tolerance
// into physical design; the placer exists to quantify that baseline against
// interstitial redundancy (which repairs in place, one spare per fault).
package placer

import (
	"fmt"
	"sort"

	"dmfb/internal/defects"
	"dmfb/internal/hexgrid"
	"dmfb/internal/layout"
)

// Shape is a module footprint: a set of axial offsets from an anchor cell.
type Shape struct {
	Name    string
	Offsets []hexgrid.Axial
}

// Size returns the number of cells the shape occupies.
func (s Shape) Size() int { return len(s.Offsets) }

// MixerShape is a compact 4-cell rhombus used as a droplet mixer region.
func MixerShape() Shape {
	return Shape{
		Name: "mixer",
		Offsets: []hexgrid.Axial{
			{Q: 0, R: 0}, {Q: 1, R: 0}, {Q: 0, R: 1}, {Q: 1, R: 1},
		},
	}
}

// DetectorShape is a single transparent-electrode detection cell.
func DetectorShape() Shape {
	return Shape{Name: "detector", Offsets: []hexgrid.Axial{{Q: 0, R: 0}}}
}

// StorageShape is a 3-cell triangle for parking droplets.
func StorageShape() Shape {
	return Shape{
		Name: "storage",
		Offsets: []hexgrid.Axial{
			{Q: 0, R: 0}, {Q: 1, R: 0}, {Q: 0, R: 1},
		},
	}
}

// FlowerShape is the 7-cell cluster (a cell plus its six neighbors), a
// large mixer/reaction chamber.
func FlowerShape() Shape {
	offsets := []hexgrid.Axial{{Q: 0, R: 0}}
	for _, d := range hexgrid.Directions {
		offsets = append(offsets, d)
	}
	return Shape{Name: "flower", Offsets: offsets}
}

// Placement is one placed module instance.
type Placement struct {
	Shape  Shape
	Anchor hexgrid.Axial
	Cells  []layout.CellID
}

// Request asks for count instances of a shape.
type Request struct {
	Shape Shape
	Count int
}

// Options tunes the placer.
type Options struct {
	// Faults marks unusable cells (nil = defect-free array).
	Faults *defects.FaultSet
	// PrimariesOnly restricts placement to primary cells, keeping spares
	// free for reconfiguration.
	PrimariesOnly bool
	// Spacing requires this many cells of clearance between modules
	// (0 = modules may touch; 1 = one empty ring, the fluidic-isolation
	// default).
	Spacing int
}

// Result is the outcome of a placement run.
type Result struct {
	Placements []Placement
	// Failed lists the requests (by shape name) that could not be placed.
	Failed []string
}

// OK reports whether every requested instance was placed.
func (r Result) OK() bool { return len(r.Failed) == 0 }

// usable reports whether a cell can host module area.
func usable(arr *layout.Array, opts Options, id layout.CellID) bool {
	if id == layout.NoCell {
		return false
	}
	if opts.Faults != nil && opts.Faults.IsFaulty(id) {
		return false
	}
	if opts.PrimariesOnly && arr.Cell(id).Role != layout.Primary {
		return false
	}
	return true
}

// Place greedily places all requested modules: anchors are scanned in
// row-major order and the first feasible anchor wins (first-fit). Greedy
// first-fit mirrors the incremental re-placement a chip controller performs
// after fault diagnosis.
func Place(arr *layout.Array, reqs []Request, opts Options) (Result, error) {
	if opts.Spacing < 0 {
		return Result{}, fmt.Errorf("placer: negative spacing")
	}
	occupied := make(map[layout.CellID]bool)
	blockedNear := make(map[layout.CellID]bool) // occupied + spacing halo

	anchors := make([]hexgrid.Axial, 0, arr.NumCells())
	for i := 0; i < arr.NumCells(); i++ {
		anchors = append(anchors, arr.Cell(layout.CellID(i)).Pos)
	}
	hexgrid.SortAxial(anchors)

	var result Result
	for _, req := range reqs {
		if req.Count < 0 {
			return Result{}, fmt.Errorf("placer: negative count for %q", req.Shape.Name)
		}
		if req.Shape.Size() == 0 {
			return Result{}, fmt.Errorf("placer: empty shape %q", req.Shape.Name)
		}
		for inst := 0; inst < req.Count; inst++ {
			placed := false
			for _, anchor := range anchors {
				cells, ok := footprint(arr, opts, anchor, req.Shape, occupied, blockedNear)
				if !ok {
					continue
				}
				result.Placements = append(result.Placements, Placement{
					Shape:  req.Shape,
					Anchor: anchor,
					Cells:  cells,
				})
				for _, c := range cells {
					occupied[c] = true
					blockedNear[c] = true
					if opts.Spacing > 0 {
						for _, ring := range hexgrid.Spiral(arr.Cell(c).Pos, opts.Spacing) {
							if id := arr.CellAt(ring); id != layout.NoCell {
								blockedNear[id] = true
							}
						}
					}
				}
				placed = true
				break
			}
			if !placed {
				result.Failed = append(result.Failed, req.Shape.Name)
			}
		}
	}
	return result, nil
}

// footprint resolves a shape at an anchor to cell IDs, checking usability,
// occupancy, and spacing halos.
func footprint(arr *layout.Array, opts Options, anchor hexgrid.Axial, s Shape,
	occupied, blockedNear map[layout.CellID]bool) ([]layout.CellID, bool) {
	cells := make([]layout.CellID, 0, len(s.Offsets))
	for _, off := range s.Offsets {
		id := arr.CellAt(anchor.Add(off))
		if !usable(arr, opts, id) || occupied[id] || blockedNear[id] {
			return nil, false
		}
		cells = append(cells, id)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	return cells, true
}

// Verify checks a placement result: cells usable, disjoint, shapes intact.
func Verify(arr *layout.Array, res Result, opts Options) error {
	seen := make(map[layout.CellID]bool)
	for _, p := range res.Placements {
		if len(p.Cells) != p.Shape.Size() {
			return fmt.Errorf("placer: %q at %v has %d cells, want %d",
				p.Shape.Name, p.Anchor, len(p.Cells), p.Shape.Size())
		}
		for _, c := range p.Cells {
			if !usable(arr, opts, c) {
				return fmt.Errorf("placer: %q uses unusable cell %d", p.Shape.Name, c)
			}
			if seen[c] {
				return fmt.Errorf("placer: cell %d used twice", c)
			}
			seen[c] = true
		}
	}
	return nil
}

// SurvivalStudy measures the category-1 baseline: the probability that all
// requested modules can still be placed when each cell fails independently
// with probability 1−p, over the given number of Monte-Carlo rounds.
// Interstitial redundancy answers the same question with local spare
// substitution instead of global re-placement.
func SurvivalStudy(arr *layout.Array, reqs []Request, opts Options, p float64, rounds int, seed int64) (float64, error) {
	if rounds <= 0 {
		return 0, fmt.Errorf("placer: rounds must be positive")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("placer: survival probability %v outside [0,1]", p)
	}
	in := defects.NewInjector(seed)
	ok := 0
	var fs *defects.FaultSet
	for i := 0; i < rounds; i++ {
		fs = in.Bernoulli(arr, p, fs)
		o := opts
		o.Faults = fs
		res, err := Place(arr, reqs, o)
		if err != nil {
			return 0, err
		}
		if res.OK() {
			ok++
		}
	}
	return float64(ok) / float64(rounds), nil
}
