package placer

import (
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

func buildArray(t testing.TB) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 14, 14)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestShapes(t *testing.T) {
	if MixerShape().Size() != 4 {
		t.Error("mixer shape size")
	}
	if DetectorShape().Size() != 1 {
		t.Error("detector shape size")
	}
	if StorageShape().Size() != 3 {
		t.Error("storage shape size")
	}
	if FlowerShape().Size() != 7 {
		t.Error("flower shape size")
	}
}

func TestPlaceBasicWorkload(t *testing.T) {
	arr := buildArray(t)
	reqs := []Request{
		{Shape: MixerShape(), Count: 2},
		{Shape: DetectorShape(), Count: 4},
		{Shape: StorageShape(), Count: 2},
	}
	res, err := Place(arr, reqs, Options{Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("placement failed: %v", res.Failed)
	}
	if len(res.Placements) != 8 {
		t.Errorf("%d placements", len(res.Placements))
	}
	if err := Verify(arr, res, Options{Spacing: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAvoidsFaultyCells(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	// Fail a broad band of cells.
	for i := 0; i < arr.NumCells(); i += 3 {
		fs.MarkFaulty(layout.CellID(i))
	}
	opts := Options{Faults: fs}
	res, err := Place(arr, []Request{{Shape: MixerShape(), Count: 2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Placements {
		for _, c := range p.Cells {
			if fs.IsFaulty(c) {
				t.Fatalf("module placed on faulty cell %d", c)
			}
		}
	}
	if err := Verify(arr, res, opts); err != nil {
		t.Fatal(err)
	}
}

func TestPlacePrimariesOnly(t *testing.T) {
	arr := buildArray(t)
	opts := Options{PrimariesOnly: true}
	res, err := Place(arr, []Request{{Shape: DetectorShape(), Count: 5}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("single-cell placements must fit")
	}
	for _, p := range res.Placements {
		for _, c := range p.Cells {
			if arr.Cell(c).Role != layout.Primary {
				t.Fatalf("detector on spare cell %d", c)
			}
		}
	}
	// A 4-cell rhombus always overlaps a spare site in DTMB(2,6) (spares
	// tile every 2x2 block), so primaries-only mixers must fail.
	mix, err := Place(arr, []Request{{Shape: MixerShape(), Count: 1}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mix.OK() {
		t.Error("2x2 rhombus should not fit on DTMB(2,6) primaries alone")
	}
}

func TestPlacementsDisjointEvenWithoutSpacing(t *testing.T) {
	arr := buildArray(t)
	res, err := Place(arr, []Request{{Shape: StorageShape(), Count: 20}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[layout.CellID]bool{}
	for _, p := range res.Placements {
		for _, c := range p.Cells {
			if seen[c] {
				t.Fatalf("cell %d reused", c)
			}
			seen[c] = true
		}
	}
}

func TestSpacingSeparatesModules(t *testing.T) {
	arr := buildArray(t)
	res, err := Place(arr, []Request{{Shape: DetectorShape(), Count: 6}}, Options{Spacing: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("six detectors should fit with spacing 2")
	}
	for i, a := range res.Placements {
		for j := i + 1; j < len(res.Placements); j++ {
			b := res.Placements[j]
			d := arr.Cell(a.Cells[0]).Pos.Distance(arr.Cell(b.Cells[0]).Pos)
			if d <= 2 {
				t.Errorf("detectors %d and %d at distance %d despite spacing 2", i, j, d)
			}
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	arr := buildArray(t)
	if _, err := Place(arr, nil, Options{Spacing: -1}); err == nil {
		t.Error("negative spacing accepted")
	}
	if _, err := Place(arr, []Request{{Shape: Shape{Name: "void"}, Count: 1}}, Options{}); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := Place(arr, []Request{{Shape: MixerShape(), Count: -1}}, Options{}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestImpossibleRequestReportsFailure(t *testing.T) {
	arr := buildArray(t)
	// More flowers than the array can hold with wide spacing.
	res, err := Place(arr, []Request{{Shape: FlowerShape(), Count: 100}}, Options{Spacing: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("impossible request reported success")
	}
	if len(res.Placements)+len(res.Failed) != 100 {
		t.Errorf("placements %d + failures %d != 100", len(res.Placements), len(res.Failed))
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	arr := buildArray(t)
	res, err := Place(arr, []Request{{Shape: DetectorShape(), Count: 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Placements[1].Cells = res.Placements[0].Cells
	if err := Verify(arr, res, Options{}); err == nil {
		t.Error("overlapping placements accepted")
	}
}

func TestSurvivalStudyMonotoneInP(t *testing.T) {
	arr := buildArray(t)
	reqs := []Request{{Shape: MixerShape(), Count: 2}, {Shape: DetectorShape(), Count: 2}}
	low, err := SurvivalStudy(arr, reqs, Options{}, 0.70, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := SurvivalStudy(arr, reqs, Options{}, 0.99, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if high < low-0.05 {
		t.Errorf("survival at p=0.99 (%v) below p=0.70 (%v)", high, low)
	}
	if high < 0.9 {
		t.Errorf("survival at p=0.99 suspiciously low: %v", high)
	}
	if _, err := SurvivalStudy(arr, reqs, Options{}, 1.5, 10, 1); err == nil {
		t.Error("invalid p accepted")
	}
	if _, err := SurvivalStudy(arr, reqs, Options{}, 0.9, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
}
