package reconfig

// Feasibility memoization for small arrays: the verdict of Session.Feasible
// is a pure function of the fault bit pattern (the array and options are
// fixed at session construction), and at the high survival probabilities
// yield analysis cares about the pattern space actually hit is tiny — a
// handful of faults over a few hundred cells, with single-fault patterns
// dominating. An LRU keyed by the exact fault words makes repeat patterns
// free while bounding memory to capacity × ~56 bytes per worker.
//
// The memo is a fixed-capacity chained-hash table plus an intrusive doubly
// linked LRU list, all indices into one preallocated entry arena: steady
// state (hits, misses, and evictions alike) allocates nothing, which the
// allocs regression suite pins. Keys are compared word-for-word — the
// signature hash only picks the bucket — so a hash collision can never
// produce a wrong verdict, even beyond the 64-cell injectivity guarantee.

// MemoMaxCells is the largest array (in cells) feasibility memoization
// accepts: patterns up to this size fit a fixed four-word key, keeping
// entries flat and comparisons branch-free. Larger arrays simply run the
// solver every time.
const MemoMaxCells = 256

// memoWords is the fixed key width: MemoMaxCells/64 machine words.
const memoWords = MemoMaxCells / 64

// DefaultMemoCapacity is the per-worker entry budget yieldsim enables by
// default on memoizable arrays: ~112 KB per worker, large enough to hold
// every 1- and 2-fault pattern of a MemoMaxCells-cell array's hot tail.
const DefaultMemoCapacity = 2048

// memoEntry is one cached verdict. Links are entry-arena indices, -1 nil.
type memoEntry struct {
	key        [memoWords]uint64
	hash       uint32 // bucket hash, kept so eviction can unlink its chain
	hnext      int32  // next entry in the bucket chain
	prev, next int32  // LRU list neighbors (prev is toward the front)
	ok         bool
}

// feasMemo is the session-embedded LRU. The zero value is disabled; init
// arms it.
type feasMemo struct {
	buckets    []int32 // bucket → chain head entry index, -1 empty
	mask       uint32
	entries    []memoEntry
	used       int   // entries handed out so far (arena high-water mark)
	head, tail int32 // LRU front (most recent) and back
}

// init sizes the memo for capacity entries, with buckets at the next power
// of two for load factor ≤ 1.
func (m *feasMemo) init(capacity int) {
	nb := 1
	for nb < capacity {
		nb <<= 1
	}
	m.buckets = make([]int32, nb)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	m.mask = uint32(nb - 1)
	m.entries = make([]memoEntry, capacity)
	m.used = 0
	m.head, m.tail = -1, -1
}

// enabled reports whether init has armed the memo.
func (m *feasMemo) enabled() bool { return len(m.entries) > 0 }

// lookup returns the cached verdict for key, moving its entry to the LRU
// front. The second result reports whether the key was present.
func (m *feasMemo) lookup(h uint32, key *[memoWords]uint64) (bool, bool) {
	for i := m.buckets[h&m.mask]; i >= 0; i = m.entries[i].hnext {
		if m.entries[i].key == *key {
			m.touch(i)
			return m.entries[i].ok, true
		}
	}
	return false, false
}

// touch moves entry i to the LRU front.
func (m *feasMemo) touch(i int32) {
	if m.head == i {
		return
	}
	e := &m.entries[i]
	if e.prev >= 0 {
		m.entries[e.prev].next = e.next
	}
	if e.next >= 0 {
		m.entries[e.next].prev = e.prev
	}
	if m.tail == i {
		m.tail = e.prev
	}
	e.prev = -1
	e.next = m.head
	if m.head >= 0 {
		m.entries[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
}

// insert caches a verdict for a key known to be absent, evicting the LRU
// tail once the arena is full.
func (m *feasMemo) insert(h uint32, key *[memoWords]uint64, ok bool) {
	var i int32
	if m.used < len(m.entries) {
		i = int32(m.used)
		m.used++
	} else {
		i = m.tail
		e := &m.entries[i]
		b := e.hash & m.mask
		if m.buckets[b] == i {
			m.buckets[b] = e.hnext
		} else {
			for j := m.buckets[b]; ; j = m.entries[j].hnext {
				if m.entries[j].hnext == i {
					m.entries[j].hnext = e.hnext
					break
				}
			}
		}
		m.tail = e.prev
		if m.tail >= 0 {
			m.entries[m.tail].next = -1
		} else {
			m.head = -1
		}
	}
	e := &m.entries[i]
	e.key = *key
	e.hash = h
	e.ok = ok
	b := h & m.mask
	e.hnext = m.buckets[b]
	m.buckets[b] = i
	e.prev = -1
	e.next = m.head
	if m.head >= 0 {
		m.entries[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
}

// len returns the number of live entries.
func (m *feasMemo) len() int { return m.used }
