// Package reconfig implements reconfiguration of defect-tolerant
// microfluidic arrays.
//
// The primary technique is the paper's local reconfiguration: every faulty
// primary cell is functionally replaced by a physically adjacent, fault-free
// interstitial spare cell. Feasibility and the assignment itself are
// computed with maximum bipartite matching (paper §6, Fig. 8): left vertices
// are faulty primaries, right vertices fault-free spares, edges are physical
// adjacency, and reconfiguration succeeds iff a maximum matching covers all
// faulty primaries.
//
// The package also implements the baseline the paper argues against —
// boundary-spare-row redundancy with "shifted replacement" (Fig. 2) — in
// shifted.go, to quantify the reconfiguration-cost gap.
package reconfig

import (
	"fmt"
	"sort"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/matching"
)

// Assignment records one replacement: the faulty primary cell and the
// adjacent spare that assumes its function.
type Assignment struct {
	Faulty layout.CellID
	Spare  layout.CellID
}

// Plan is the outcome of a local-reconfiguration attempt.
type Plan struct {
	// OK reports whether every faulty primary was assigned a spare.
	OK bool
	// Assignments lists the replacements, sorted by faulty cell ID. When OK
	// is false it still holds the maximum partial assignment.
	Assignments []Assignment
	// Unmatched lists the faulty primaries without a spare (empty when OK).
	Unmatched []layout.CellID
	// FaultyPrimaries and FaultySpares count the faults by role, for
	// reporting.
	FaultyPrimaries, FaultySpares int
	// HallWitness, when OK is false, is a set S of faulty primaries whose
	// combined spare neighborhood is smaller than |S| — a certificate that
	// no reconfiguration exists (König construction).
	HallWitness []layout.CellID
}

// Replacements returns the assignment as a map from faulty primary to spare.
func (p Plan) Replacements() map[layout.CellID]layout.CellID {
	m := make(map[layout.CellID]layout.CellID, len(p.Assignments))
	for _, a := range p.Assignments {
		m[a.Faulty] = a.Spare
	}
	return m
}

// CellsRemapped returns the number of cells whose function moves — for local
// reconfiguration exactly one per repaired fault, the property that makes
// interstitial redundancy cheap.
func (p Plan) CellsRemapped() int { return len(p.Assignments) }

// Scope selects which faulty primaries a reconfiguration must repair.
type Scope uint8

const (
	// RepairAll requires every faulty primary cell to be replaced (the
	// paper's Monte-Carlo criterion).
	RepairAll Scope = iota
	// RepairUsed requires only faulty cells in active use by the bioassay to
	// be replaced; unused faulty primaries are tolerated by leaving them
	// idle. An ablation policy for the case study.
	RepairUsed
)

// String names the scope.
func (s Scope) String() string {
	if s == RepairUsed {
		return "repair-used"
	}
	return "repair-all"
}

// Options configures LocalReconfigure.
type Options struct {
	// Scope selects the repair criterion; default RepairAll.
	Scope Scope
	// Used marks the primary cells in active use; required iff Scope is
	// RepairUsed. Indexed by CellID.
	Used []bool
	// UseKuhn switches the matching kernel from Hopcroft–Karp to Kuhn's
	// algorithm (cross-validation and ablation benchmarks).
	UseKuhn bool
}

// LocalReconfigure computes a local reconfiguration plan for the array under
// the given fault set. Spares that are themselves faulty are unusable; a
// spare repairs at most one primary.
func LocalReconfigure(arr *layout.Array, faults *defects.FaultSet, opts Options) (Plan, error) {
	if faults == nil {
		return Plan{}, fmt.Errorf("reconfig: nil fault set")
	}
	if faults.NumCells() != arr.NumCells() {
		return Plan{}, fmt.Errorf("reconfig: fault set sized %d, array %d",
			faults.NumCells(), arr.NumCells())
	}
	if opts.Scope == RepairUsed && len(opts.Used) != arr.NumCells() {
		return Plan{}, fmt.Errorf("reconfig: RepairUsed requires Used mask of %d cells, got %d",
			arr.NumCells(), len(opts.Used))
	}

	var plan Plan
	// Collect the faulty primaries that must be repaired.
	var targets []layout.CellID
	for _, id := range arr.Primaries() {
		if !faults.IsFaulty(id) {
			continue
		}
		plan.FaultyPrimaries++
		if opts.Scope == RepairUsed && !opts.Used[id] {
			continue
		}
		targets = append(targets, id)
	}
	for _, id := range arr.Spares() {
		if faults.IsFaulty(id) {
			plan.FaultySpares++
		}
	}
	if len(targets) == 0 {
		plan.OK = true
		return plan, nil
	}

	// Build the bipartite graph over the spares adjacent to any target.
	spareIdx := make(map[layout.CellID]int)
	var spareIDs []layout.CellID
	edges := make([][2]int, 0, len(targets)*2)
	for ti, t := range targets {
		for _, s := range arr.SpareNeighbors(t) {
			if faults.IsFaulty(s) {
				continue
			}
			si, ok := spareIdx[s]
			if !ok {
				si = len(spareIDs)
				spareIdx[s] = si
				spareIDs = append(spareIDs, s)
			}
			edges = append(edges, [2]int{ti, si})
		}
	}
	g := matching.NewGraph(len(targets), len(spareIDs))
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return Plan{}, err
		}
	}

	var res matching.Result
	if opts.UseKuhn {
		res = g.Kuhn()
	} else {
		res = g.HopcroftKarp()
	}

	plan.OK = res.SaturatesA()
	for ti, si := range res.MatchA {
		if si == matching.Unmatched {
			plan.Unmatched = append(plan.Unmatched, targets[ti])
			continue
		}
		plan.Assignments = append(plan.Assignments, Assignment{
			Faulty: targets[ti],
			Spare:  spareIDs[si],
		})
	}
	sort.Slice(plan.Assignments, func(i, j int) bool {
		return plan.Assignments[i].Faulty < plan.Assignments[j].Faulty
	})
	if !plan.OK {
		for _, ti := range g.HallViolation(res) {
			plan.HallWitness = append(plan.HallWitness, targets[ti])
		}
	}
	return plan, nil
}

// Verify checks that the plan is sound for the given array and fault set:
// every assignment pairs a faulty primary with an adjacent fault-free spare,
// no spare repairs two primaries, and (when the plan claims success under
// RepairAll) every faulty primary is covered. It returns nil when sound.
func Verify(arr *layout.Array, faults *defects.FaultSet, plan Plan) error {
	usedSpare := make(map[layout.CellID]layout.CellID)
	covered := make(map[layout.CellID]bool)
	for _, a := range plan.Assignments {
		cell := arr.Cell(a.Faulty)
		if cell.Role != layout.Primary {
			return fmt.Errorf("reconfig: assignment repairs non-primary %d", a.Faulty)
		}
		if !faults.IsFaulty(a.Faulty) {
			return fmt.Errorf("reconfig: assignment repairs healthy cell %d", a.Faulty)
		}
		if arr.Cell(a.Spare).Role != layout.Spare {
			return fmt.Errorf("reconfig: replacement %d is not a spare", a.Spare)
		}
		if faults.IsFaulty(a.Spare) {
			return fmt.Errorf("reconfig: replacement spare %d is faulty", a.Spare)
		}
		adjacent := false
		for _, s := range arr.SpareNeighbors(a.Faulty) {
			if s == a.Spare {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return fmt.Errorf("reconfig: spare %d not adjacent to faulty %d", a.Spare, a.Faulty)
		}
		if prev, dup := usedSpare[a.Spare]; dup {
			return fmt.Errorf("reconfig: spare %d assigned to both %d and %d", a.Spare, prev, a.Faulty)
		}
		usedSpare[a.Spare] = a.Faulty
		if covered[a.Faulty] {
			return fmt.Errorf("reconfig: primary %d repaired twice", a.Faulty)
		}
		covered[a.Faulty] = true
	}
	if plan.OK {
		for _, id := range plan.Unmatched {
			return fmt.Errorf("reconfig: plan claims OK but %d unmatched", id)
		}
	}
	return nil
}

// VerifyComplete additionally checks that, under RepairAll semantics, a plan
// claiming success covers every faulty primary of the array.
func VerifyComplete(arr *layout.Array, faults *defects.FaultSet, plan Plan) error {
	if err := Verify(arr, faults, plan); err != nil {
		return err
	}
	if !plan.OK {
		return nil
	}
	covered := make(map[layout.CellID]bool, len(plan.Assignments))
	for _, a := range plan.Assignments {
		covered[a.Faulty] = true
	}
	for _, id := range arr.Primaries() {
		if faults.IsFaulty(id) && !covered[id] {
			return fmt.Errorf("reconfig: OK plan leaves faulty primary %d unrepaired", id)
		}
	}
	return nil
}
