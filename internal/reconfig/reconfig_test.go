package reconfig

import (
	"math/rand"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

func buildArray(t testing.TB, d layout.Design, n int) *layout.Array {
	t.Helper()
	arr, err := layout.BuildWithPrimaryTarget(d, n)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestNoFaultsTrivialPlan(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 60)
	fs := defects.NewFaultSet(arr.NumCells())
	plan, err := LocalReconfigure(arr, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OK || len(plan.Assignments) != 0 {
		t.Errorf("empty fault set: plan %+v", plan)
	}
	if err := VerifyComplete(arr, fs, plan); err != nil {
		t.Error(err)
	}
}

func TestSingleFaultRepaired(t *testing.T) {
	arr := buildArray(t, layout.DTMB16(), 60)
	// Pick an interior primary so it surely has its spare.
	var target layout.CellID = -1
	for _, id := range arr.Primaries() {
		if arr.IsInterior(id) {
			target = id
			break
		}
	}
	if target < 0 {
		t.Fatal("no interior primary found")
	}
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(target)
	plan, err := LocalReconfigure(arr, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OK || len(plan.Assignments) != 1 {
		t.Fatalf("plan %+v", plan)
	}
	if plan.Assignments[0].Faulty != target {
		t.Error("wrong cell repaired")
	}
	if plan.CellsRemapped() != 1 {
		t.Error("local reconfiguration must remap exactly one cell per fault")
	}
	if err := VerifyComplete(arr, fs, plan); err != nil {
		t.Error(err)
	}
}

func TestFaultySpareBlocksItsOnlyPrimary(t *testing.T) {
	// In DTMB(1,6) each primary has exactly one spare: failing both the
	// primary and its spare makes reconfiguration infeasible.
	arr := buildArray(t, layout.DTMB16(), 60)
	var prim, spare layout.CellID = -1, -1
	for _, id := range arr.Primaries() {
		if arr.IsInterior(id) && len(arr.SpareNeighbors(id)) == 1 {
			prim = id
			spare = arr.SpareNeighbors(id)[0]
			break
		}
	}
	if prim < 0 {
		t.Fatal("no suitable primary")
	}
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(prim)
	fs.MarkFaulty(spare)
	plan, err := LocalReconfigure(arr, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.OK {
		t.Fatal("reconfiguration should fail when the only spare is dead")
	}
	if len(plan.Unmatched) != 1 || plan.Unmatched[0] != prim {
		t.Errorf("Unmatched = %v", plan.Unmatched)
	}
	if len(plan.HallWitness) == 0 {
		t.Error("expected a Hall-violation witness")
	}
	if plan.FaultySpares != 1 || plan.FaultyPrimaries != 1 {
		t.Errorf("fault counts %d/%d", plan.FaultyPrimaries, plan.FaultySpares)
	}
}

func TestSevenClusterFaultsExceedOneSpare(t *testing.T) {
	// Two faulty primaries sharing their single spare in DTMB(1,6): only one
	// can be repaired.
	arr := buildArray(t, layout.DTMB16(), 120)
	var spare layout.CellID = -1
	for _, id := range arr.Spares() {
		if arr.IsInterior(id) {
			spare = id
			break
		}
	}
	if spare < 0 {
		t.Fatal("no interior spare")
	}
	prims := arr.PrimaryNeighbors(spare)
	if len(prims) != 6 {
		t.Fatalf("interior spare has %d primaries", len(prims))
	}
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(prims[0])
	fs.MarkFaulty(prims[1])
	plan, err := LocalReconfigure(arr, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.OK {
		t.Fatal("two faults on one spare cluster must be irreparable in DTMB(1,6)")
	}
	if len(plan.Assignments) != 1 {
		t.Errorf("expected exactly one repair, got %d", len(plan.Assignments))
	}
	if err := Verify(arr, fs, plan); err != nil {
		t.Error(err)
	}
}

func TestDTMB26ToleratesSharedSpare(t *testing.T) {
	// With s=2, two faulty primaries sharing one spare can still both be
	// repaired via their second spares.
	arr := buildArray(t, layout.DTMB26(), 120)
	var spare layout.CellID = -1
	for _, id := range arr.Spares() {
		if arr.IsInterior(id) {
			spare = id
			break
		}
	}
	prims := arr.PrimaryNeighbors(spare)
	interior := prims[:0:0]
	for _, p := range prims {
		if arr.IsInterior(p) {
			interior = append(interior, p)
		}
	}
	if len(interior) < 2 {
		t.Fatal("need two interior primaries on one spare")
	}
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(interior[0])
	fs.MarkFaulty(interior[1])
	plan, err := LocalReconfigure(arr, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OK {
		t.Fatalf("DTMB(2,6) should tolerate two faults on a shared spare: %+v", plan)
	}
	if err := VerifyComplete(arr, fs, plan); err != nil {
		t.Error(err)
	}
}

func TestRepairUsedScopeIgnoresIdleFaults(t *testing.T) {
	arr := buildArray(t, layout.DTMB16(), 60)
	// Fail a primary and its only spare, but mark the primary as unused:
	// RepairUsed should succeed, RepairAll should fail.
	var prim layout.CellID = -1
	for _, id := range arr.Primaries() {
		if arr.IsInterior(id) {
			prim = id
			break
		}
	}
	spare := arr.SpareNeighbors(prim)[0]
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(prim)
	fs.MarkFaulty(spare)

	all, err := LocalReconfigure(arr, fs, Options{Scope: RepairAll})
	if err != nil {
		t.Fatal(err)
	}
	if all.OK {
		t.Fatal("RepairAll should fail")
	}

	used := make([]bool, arr.NumCells()) // nothing used
	scoped, err := LocalReconfigure(arr, fs, Options{Scope: RepairUsed, Used: used})
	if err != nil {
		t.Fatal(err)
	}
	if !scoped.OK || len(scoped.Assignments) != 0 {
		t.Errorf("RepairUsed with idle fault: %+v", scoped)
	}

	used[prim] = true
	scoped, err = LocalReconfigure(arr, fs, Options{Scope: RepairUsed, Used: used})
	if err != nil {
		t.Fatal(err)
	}
	if scoped.OK {
		t.Error("RepairUsed must fail when the used cell is irreparable")
	}
}

func TestOptionsValidation(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 30)
	fs := defects.NewFaultSet(arr.NumCells())
	if _, err := LocalReconfigure(arr, nil, Options{}); err == nil {
		t.Error("nil fault set accepted")
	}
	if _, err := LocalReconfigure(arr, defects.NewFaultSet(3), Options{}); err == nil {
		t.Error("mismatched fault set accepted")
	}
	if _, err := LocalReconfigure(arr, fs, Options{Scope: RepairUsed}); err == nil {
		t.Error("RepairUsed without mask accepted")
	}
}

func TestScopeString(t *testing.T) {
	if RepairAll.String() != "repair-all" || RepairUsed.String() != "repair-used" {
		t.Error("Scope.String wrong")
	}
}

func TestKuhnAgreesWithHopcroftKarp(t *testing.T) {
	arr := buildArray(t, layout.DTMB36(), 150)
	rng := rand.New(rand.NewSource(17))
	in := defects.NewInjector(17)
	var fs *defects.FaultSet
	for trial := 0; trial < 200; trial++ {
		p := 0.7 + 0.3*rng.Float64()
		fs = in.Bernoulli(arr, p, fs)
		hk, err := LocalReconfigure(arr, fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kuhn, err := LocalReconfigure(arr, fs, Options{UseKuhn: true})
		if err != nil {
			t.Fatal(err)
		}
		if hk.OK != kuhn.OK || len(hk.Assignments) != len(kuhn.Assignments) {
			t.Fatalf("trial %d: HK %v/%d vs Kuhn %v/%d", trial,
				hk.OK, len(hk.Assignments), kuhn.OK, len(kuhn.Assignments))
		}
	}
}

func TestPlansAlwaysVerifyOnRandomFaults(t *testing.T) {
	designs := []layout.Design{layout.DTMB16(), layout.DTMB26(), layout.DTMB26Alt(), layout.DTMB36(), layout.DTMB44()}
	in := defects.NewInjector(99)
	for _, d := range designs {
		arr := buildArray(t, d, 100)
		var fs *defects.FaultSet
		for trial := 0; trial < 100; trial++ {
			fs = in.Bernoulli(arr, 0.9, fs)
			plan, err := LocalReconfigure(arr, fs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyComplete(arr, fs, plan); err != nil {
				t.Fatalf("%s trial %d: %v", d.Name, trial, err)
			}
			// Success must coincide with every faulty primary repaired.
			faulty := len(fs.FaultyPrimaries(arr))
			if plan.OK != (len(plan.Assignments) == faulty) {
				t.Fatalf("%s trial %d: OK=%v with %d/%d repairs",
					d.Name, trial, plan.OK, len(plan.Assignments), faulty)
			}
		}
	}
}

func TestRemovingFaultPreservesSuccess(t *testing.T) {
	// Monotonicity: if a fault set is repairable, any subset is repairable.
	arr := buildArray(t, layout.DTMB26(), 100)
	in := defects.NewInjector(123)
	var fs *defects.FaultSet
	for trial := 0; trial < 60; trial++ {
		fs = in.Bernoulli(arr, 0.92, fs)
		plan, err := LocalReconfigure(arr, fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.OK {
			continue
		}
		faulty := fs.FaultyCells()
		if len(faulty) == 0 {
			continue
		}
		// Drop one fault and re-check.
		sub := defects.NewFaultSet(arr.NumCells())
		for i, id := range faulty {
			if i == trial%len(faulty) {
				continue
			}
			sub.MarkFaulty(id)
		}
		subPlan, err := LocalReconfigure(arr, sub, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !subPlan.OK {
			t.Fatalf("trial %d: subset of repairable faults became irreparable", trial)
		}
	}
}

func TestHigherRedundancyNeverHurts(t *testing.T) {
	// For identical fault realizations (by cell position), DTMB(3,6) has
	// spare supersets of DTMB(1,6)... not literally, but statistically the
	// success rate must be weakly increasing in redundancy. Cheap check:
	// count successes over a fixed batch.
	in := defects.NewInjector(2025)
	rates := map[string]int{}
	for _, d := range []layout.Design{layout.DTMB16(), layout.DTMB26(), layout.DTMB36(), layout.DTMB44()} {
		arr := buildArray(t, d, 100)
		inj := defects.NewInjector(55) // same stream per design
		var fs *defects.FaultSet
		ok := 0
		for trial := 0; trial < 300; trial++ {
			fs = inj.Bernoulli(arr, 0.95, fs)
			plan, err := LocalReconfigure(arr, fs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if plan.OK {
				ok++
			}
		}
		rates[d.Name] = ok
	}
	_ = in
	if rates["DTMB(2,6)"] < rates["DTMB(1,6)"]-20 {
		t.Errorf("DTMB(2,6) (%d) far below DTMB(1,6) (%d)", rates["DTMB(2,6)"], rates["DTMB(1,6)"])
	}
	if rates["DTMB(4,4)"] < rates["DTMB(2,6)"]-20 {
		t.Errorf("DTMB(4,4) (%d) far below DTMB(2,6) (%d)", rates["DTMB(4,4)"], rates["DTMB(2,6)"])
	}
}

func TestVerifyRejectsCorruptPlans(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 60)
	var prim layout.CellID = -1
	for _, id := range arr.Primaries() {
		if arr.IsInterior(id) {
			prim = id
			break
		}
	}
	spare := arr.SpareNeighbors(prim)[0]
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(prim)

	// Healthy cell "repaired".
	bad := Plan{OK: true, Assignments: []Assignment{{Faulty: arr.Primaries()[1], Spare: spare}}}
	if arr.Primaries()[1] != prim {
		if err := Verify(arr, fs, bad); err == nil {
			t.Error("repairing healthy cell accepted")
		}
	}

	// Faulty spare used.
	fs2 := defects.NewFaultSet(arr.NumCells())
	fs2.MarkFaulty(prim)
	fs2.MarkFaulty(spare)
	bad2 := Plan{OK: true, Assignments: []Assignment{{Faulty: prim, Spare: spare}}}
	if err := Verify(arr, fs2, bad2); err == nil {
		t.Error("faulty spare accepted")
	}

	// Non-adjacent spare.
	var farSpare layout.CellID = -1
	for _, s := range arr.Spares() {
		adjacent := false
		for _, nb := range arr.SpareNeighbors(prim) {
			if nb == s {
				adjacent = true
				break
			}
		}
		if !adjacent {
			farSpare = s
			break
		}
	}
	if farSpare >= 0 {
		bad3 := Plan{OK: true, Assignments: []Assignment{{Faulty: prim, Spare: farSpare}}}
		if err := Verify(arr, fs, bad3); err == nil {
			t.Error("non-adjacent spare accepted")
		}
	}

	// Spare reused for two faults.
	prim2 := layout.CellID(-1)
	for _, p := range arr.PrimaryNeighbors(spare) {
		if p != prim {
			prim2 = p
			break
		}
	}
	if prim2 >= 0 {
		fs3 := defects.NewFaultSet(arr.NumCells())
		fs3.MarkFaulty(prim)
		fs3.MarkFaulty(prim2)
		bad4 := Plan{OK: true, Assignments: []Assignment{
			{Faulty: prim, Spare: spare}, {Faulty: prim2, Spare: spare},
		}}
		if err := Verify(arr, fs3, bad4); err == nil {
			t.Error("spare reuse accepted")
		}
	}

	// OK plan with unrepaired faulty primary.
	incomplete := Plan{OK: true}
	if err := VerifyComplete(arr, fs, incomplete); err == nil {
		t.Error("incomplete OK plan accepted")
	}
}

func TestReplacementsMap(t *testing.T) {
	p := Plan{Assignments: []Assignment{{Faulty: 1, Spare: 2}, {Faulty: 3, Spare: 4}}}
	m := p.Replacements()
	if len(m) != 2 || m[1] != 2 || m[3] != 4 {
		t.Errorf("Replacements = %v", m)
	}
}

func BenchmarkLocalReconfigure35Faults(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 252)
	if err != nil {
		b.Fatal(err)
	}
	in := defects.NewInjector(1)
	var fs *defects.FaultSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err = in.FixedCount(arr, 35, defects.AllCells, fs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := LocalReconfigure(arr, fs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
