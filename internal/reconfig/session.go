package reconfig

import (
	"fmt"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/matching"
)

// Session answers repeated reconfiguration-feasibility queries against one
// fixed array without per-query allocation — the shape of the Monte-Carlo
// yield kernel, where the array never changes and only the fault set does
// (the repeated-feasibility framing of the companion dynamic-reconfiguration
// paper). Where LocalReconfigure rebuilds the bipartite repair graph with
// fresh maps and slices on every call, a Session precomputes the static
// structure once at construction:
//
//   - a dense CellID → spare-slot index (replacing the per-call spareIdx map),
//   - the worst-case matcher scratch sizes (every primary faulty, every
//     spare adjacency an edge), so the embedded matching.Matcher never grows.
//
// Feasible then runs entirely in scratch. It answers exactly the question
// LocalReconfigure(...).OK answers under the same Options — an equivalence
// the session differential tests pin across all designs, fault patterns,
// and seeds — but materializes no Plan, no assignments, and no Hall witness.
// Use LocalReconfigure when the caller needs the plan itself (API responses,
// the case-study tools); use a Session when only the verdict matters.
//
// A Session is not safe for concurrent use. Workers sharing an array must
// each own a Session; the array itself is read-only and freely shared.
type Session struct {
	arr  *layout.Array
	opts Options
	// spareSlot[id] is the dense index of cell id among the array's spares,
	// or -1 for primaries. It is the static replacement for the spareIdx map
	// LocalReconfigure rebuilds per call.
	spareSlot []int32
	// targets is the scratch list of faulty primaries to repair, capacity
	// NumPrimary (the worst case).
	targets []layout.CellID
	m       *matching.Matcher
}

// NewSession builds a reusable feasibility session for the array under the
// given options. Options.UseKuhn is ignored: both matching algorithms are
// exact, so feasibility is algorithm-independent, and the session always
// runs its scratch-arena Hopcroft–Karp. The array must outlive the session.
func NewSession(arr *layout.Array, opts Options) (*Session, error) {
	if arr == nil {
		return nil, fmt.Errorf("reconfig: nil array")
	}
	if opts.Scope == RepairUsed && len(opts.Used) != arr.NumCells() {
		return nil, fmt.Errorf("reconfig: RepairUsed requires Used mask of %d cells, got %d",
			arr.NumCells(), len(opts.Used))
	}
	spareSlot := make([]int32, arr.NumCells())
	for i := range spareSlot {
		spareSlot[i] = -1
	}
	for slot, id := range arr.Spares() {
		spareSlot[id] = int32(slot)
	}
	maxEdges := 0
	for _, id := range arr.Primaries() {
		maxEdges += len(arr.SpareNeighbors(id))
	}
	return &Session{
		arr:       arr,
		opts:      opts,
		spareSlot: spareSlot,
		targets:   make([]layout.CellID, 0, arr.NumPrimary()),
		m:         matching.NewMatcher(arr.NumPrimary(), arr.NumSpare(), maxEdges),
	}, nil
}

// Array returns the array the session is bound to.
func (s *Session) Array() *layout.Array { return s.arr }

// Feasible reports whether local reconfiguration can repair every faulty
// primary in scope: the same verdict as LocalReconfigure(arr, fs, opts).OK,
// computed without heap allocation. Spares that are themselves faulty are
// unusable; a spare repairs at most one primary.
func (s *Session) Feasible(fs *defects.FaultSet) (bool, error) {
	if fs == nil {
		return false, fmt.Errorf("reconfig: nil fault set")
	}
	if fs.NumCells() != s.arr.NumCells() {
		return false, fmt.Errorf("reconfig: fault set sized %d, array %d",
			fs.NumCells(), s.arr.NumCells())
	}
	// Degenerate fast path: an all-healthy array needs no repair.
	if fs.Count() == 0 {
		return true, nil
	}
	targets := s.targets[:0]
	for _, id := range s.arr.Primaries() {
		if !fs.IsFaulty(id) {
			continue
		}
		if s.opts.Scope == RepairUsed && !s.opts.Used[id] {
			continue
		}
		targets = append(targets, id)
	}
	s.targets = targets
	if len(targets) == 0 {
		return true, nil
	}
	// Build the repair graph over the full spare set: faulty spares simply
	// receive no edges, so the dynamic spare subset of LocalReconfigure is
	// unnecessary. A target with no healthy adjacent spare is an immediate
	// Hall violation (|N({t})| = 0), reported without running the solver.
	s.m.Reset(s.arr.NumSpare())
	for _, t := range targets {
		for _, sp := range s.arr.SpareNeighbors(t) {
			if !fs.IsFaulty(sp) {
				s.m.AddEdge(int(s.spareSlot[sp]))
			}
		}
		if s.m.EndLeft() == 0 {
			return false, nil
		}
	}
	return s.m.SaturatesA(), nil
}
