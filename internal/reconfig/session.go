package reconfig

import (
	"fmt"
	"math/bits"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/matching"
)

// Session answers repeated reconfiguration-feasibility queries against one
// fixed array without per-query allocation — the shape of the Monte-Carlo
// yield kernel, where the array never changes and only the fault set does
// (the repeated-feasibility framing of the companion dynamic-reconfiguration
// paper). Where LocalReconfigure rebuilds the bipartite repair graph with
// fresh maps and slices on every call, a Session precomputes the static
// structure once at construction:
//
//   - a dense CellID → spare-slot index (replacing the per-call spareIdx map),
//   - the worst-case matcher scratch sizes (every primary faulty, every
//     spare adjacency an edge), so the embedded matching.Matcher never grows.
//
// Feasible then runs entirely in scratch. It answers exactly the question
// LocalReconfigure(...).OK answers under the same Options — an equivalence
// the session differential tests pin across all designs, fault patterns,
// and seeds — but materializes no Plan, no assignments, and no Hall witness.
// Use LocalReconfigure when the caller needs the plan itself (API responses,
// the case-study tools); use a Session when only the verdict matters.
//
// A Session is not safe for concurrent use. Workers sharing an array must
// each own a Session; the array itself is read-only and freely shared.
type Session struct {
	arr  *layout.Array
	opts Options
	// spareSlot[id] is the dense index of cell id among the array's spares,
	// or -1 for primaries. It is the static replacement for the spareIdx map
	// LocalReconfigure rebuilds per call.
	spareSlot []int32
	// targetMask is the repair-target bitset in FaultSet.Words layout:
	// bit i set iff cell i is a primary the options put in scope (all
	// primaries under RepairAll, used primaries under RepairUsed). One AND
	// against the fault words yields the trial's targets, scanned in the
	// same ascending order the primary list would produce.
	targetMask []uint64
	m          *matching.Matcher

	// memo, when armed by EnableMemo, caches feasibility verdicts keyed by
	// the exact fault words; the counters, when set, receive hit/miss
	// increments (plain, non-atomic — sessions are single-worker).
	memo                 feasMemo
	memoHits, memoMisses *uint64
}

// NewSession builds a reusable feasibility session for the array under the
// given options. Options.UseKuhn is ignored: both matching algorithms are
// exact, so feasibility is algorithm-independent, and the session always
// runs its scratch-arena Hopcroft–Karp. The array must outlive the session.
func NewSession(arr *layout.Array, opts Options) (*Session, error) {
	if arr == nil {
		return nil, fmt.Errorf("reconfig: nil array")
	}
	if opts.Scope == RepairUsed && len(opts.Used) != arr.NumCells() {
		return nil, fmt.Errorf("reconfig: RepairUsed requires Used mask of %d cells, got %d",
			arr.NumCells(), len(opts.Used))
	}
	spareSlot := make([]int32, arr.NumCells())
	for i := range spareSlot {
		spareSlot[i] = -1
	}
	for slot, id := range arr.Spares() {
		spareSlot[id] = int32(slot)
	}
	targetMask := make([]uint64, (arr.NumCells()+63)/64)
	for _, id := range arr.Primaries() {
		if opts.Scope == RepairUsed && !opts.Used[id] {
			continue
		}
		targetMask[id>>6] |= uint64(1) << (uint(id) & 63)
	}
	maxEdges := 0
	for _, id := range arr.Primaries() {
		maxEdges += len(arr.SpareNeighbors(id))
	}
	return &Session{
		arr:        arr,
		opts:       opts,
		spareSlot:  spareSlot,
		targetMask: targetMask,
		m:          matching.NewMatcher(arr.NumPrimary(), arr.NumSpare(), maxEdges),
	}, nil
}

// Array returns the array the session is bound to.
func (s *Session) Array() *layout.Array { return s.arr }

// Feasible reports whether local reconfiguration can repair every faulty
// primary in scope: the same verdict as LocalReconfigure(arr, fs, opts).OK,
// computed without heap allocation. Spares that are themselves faulty are
// unusable; a spare repairs at most one primary.
func (s *Session) Feasible(fs *defects.FaultSet) (bool, error) {
	if fs == nil {
		return false, fmt.Errorf("reconfig: nil fault set")
	}
	if fs.NumCells() != s.arr.NumCells() {
		return false, fmt.Errorf("reconfig: fault set sized %d, array %d",
			fs.NumCells(), s.arr.NumCells())
	}
	// Degenerate fast path: an all-healthy array needs no repair.
	if fs.Count() == 0 {
		return true, nil
	}
	return s.feasible(fs.Words()), nil
}

// FeasibleWords is Feasible over a raw fault bitset in FaultSet.Words
// layout (bit i of words[i/64] = cell i faulty) — the zero-copy entry point
// of the bit-packed trial path, which holds per-trial words from a
// defects.TrialBatch row and never materializes a FaultSet.
func (s *Session) FeasibleWords(words []uint64) (bool, error) {
	if len(words) != len(s.targetMask) {
		return false, fmt.Errorf("reconfig: fault words sized %d, want %d",
			len(words), len(s.targetMask))
	}
	return s.feasible(words), nil
}

// EnableMemo arms feasibility memoization with the given entry capacity and
// reports whether it took effect: memoization is only available for arrays
// of at most MemoMaxCells cells (whose fault patterns fit the fixed memo
// key) and positive capacities. Verdicts are cached per exact fault
// pattern; the memo never changes a verdict, only its cost. Enabling resets
// any previously cached entries.
func (s *Session) EnableMemo(capacity int) bool {
	if capacity <= 0 || s.arr.NumCells() > MemoMaxCells {
		return false
	}
	s.memo.init(capacity)
	return true
}

// SetMemoCounters wires per-session hit/miss counters: each memoized
// Feasible increments *hits on a cache hit or *misses on a solver run. The
// increments are plain stores — a session is single-worker by contract —
// so the Monte-Carlo kernel points them at its per-worker probe and
// flushes to shared atomics once per chunk. Either pointer may be nil.
func (s *Session) SetMemoCounters(hits, misses *uint64) {
	s.memoHits, s.memoMisses = hits, misses
}

// MemoLen returns the number of cached feasibility verdicts (0 when
// memoization is disabled).
func (s *Session) MemoLen() int { return s.memo.len() }

// GraphSignature returns the matching.Matcher signature of the repair graph
// left by the most recent solver run — the differential suite's witness
// that two feasibility paths built the identical graph. Queries answered
// without the solver (all-healthy draws, no-target draws, memo hits) leave
// the previous graph in place.
func (s *Session) GraphSignature() uint64 { return s.m.GraphSignature() }

// feasible answers the feasibility query for a fault bitset, through the
// memo when armed.
func (s *Session) feasible(words []uint64) bool {
	if !s.memo.enabled() {
		return s.solve(words)
	}
	var key [memoWords]uint64
	copy(key[:], words)
	sig := defects.SignatureOfWords(words)
	h := uint32(sig ^ sig>>32)
	if ok, hit := s.memo.lookup(h, &key); hit {
		if s.memoHits != nil {
			*s.memoHits++
		}
		return ok
	}
	if s.memoMisses != nil {
		*s.memoMisses++
	}
	ok := s.solve(words)
	s.memo.insert(h, &key, ok)
	return ok
}

// solve runs the matcher over the fault bitset: targets are the set bits of
// words ∧ targetMask, visited in ascending cell order (the order the
// primary-list scan used to produce, so the repair graph is built
// identically), each wired to its non-faulty adjacent spares.
func (s *Session) solve(words []uint64) bool {
	// Build the repair graph over the full spare set: faulty spares simply
	// receive no edges, so the dynamic spare subset of LocalReconfigure is
	// unnecessary. A target with no healthy adjacent spare is an immediate
	// Hall violation (|N({t})| = 0), reported without running the solver.
	started := false
	for w, tm := range s.targetMask {
		ww := words[w] & tm
		for ; ww != 0; ww &= ww - 1 {
			id := layout.CellID(w<<6 + bits.TrailingZeros64(ww))
			if !started {
				s.m.Reset(s.arr.NumSpare())
				started = true
			}
			for _, sp := range s.arr.SpareNeighbors(id) {
				if words[sp>>6]&(uint64(1)<<(uint(sp)&63)) == 0 {
					s.m.AddEdge(int(s.spareSlot[sp]))
				}
			}
			if s.m.EndLeft() == 0 {
				return false
			}
		}
	}
	if !started {
		return true
	}
	return s.m.SaturatesA()
}
