package reconfig

import (
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/matching"
)

// TestDifferentialSessionFeasibleMatchesLocalReconfigure is the randomized
// differential test pinning the session's allocation-free verdict to the
// reference plan-materializing path over every constructible design,
// several fault patterns (Bernoulli at low/medium/high density,
// fixed-count, clustered), and a spread of seeds — including the UseKuhn
// cross-check, which the session must agree with because both algorithms
// are exact. Alongside the direct session it drives a memoized twin on the
// same draws, so every verdict is additionally pinned memoized == direct ==
// reference — with a capacity chosen small enough that the LRU evicts
// constantly under the test's fault densities, exercising the recycling
// path, not just warm hits.
func TestDifferentialSessionFeasibleMatchesLocalReconfigure(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 5
	}
	for _, d := range layout.AllDesignsWithVariants() {
		arr, err := layout.BuildWithPrimaryTarget(d, 60)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		memoSess, err := NewSession(arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !memoSess.EnableMemo(32) {
			t.Fatalf("%s: EnableMemo refused a %d-cell array", d.Name, arr.NumCells())
		}
		var hits, misses uint64
		memoSess.SetMemoCounters(&hits, &misses)
		check := func(fs *defects.FaultSet, pattern string, seed int64) {
			t.Helper()
			got, err := sess.Feasible(fs)
			if err != nil {
				t.Fatalf("%s %s seed %d: Feasible: %v", d.Name, pattern, seed, err)
			}
			memoGot, err := memoSess.Feasible(fs)
			if err != nil {
				t.Fatalf("%s %s seed %d: memoized Feasible: %v", d.Name, pattern, seed, err)
			}
			if memoGot != got {
				t.Fatalf("%s %s seed %d: memoized Feasible=%v, direct=%v (%d faults)",
					d.Name, pattern, seed, memoGot, got, fs.Count())
			}
			for _, kuhn := range []bool{false, true} {
				plan, err := LocalReconfigure(arr, fs, Options{UseKuhn: kuhn})
				if err != nil {
					t.Fatalf("%s %s seed %d: LocalReconfigure: %v", d.Name, pattern, seed, err)
				}
				if got != plan.OK {
					t.Fatalf("%s %s seed %d (kuhn=%v): Feasible=%v, LocalReconfigure.OK=%v (%d faults)",
						d.Name, pattern, seed, kuhn, got, plan.OK, fs.Count())
				}
			}
		}
		var fs *defects.FaultSet
		for seed := int64(0); seed < seeds; seed++ {
			in := defects.NewInjector(seed)
			for _, p := range []float64{0.99, 0.95, 0.85, 0.60} {
				fs = in.Bernoulli(arr, p, fs)
				check(fs, "bernoulli", seed)
			}
			for _, m := range []int{0, 1, 5, 20, arr.NumCells() / 3} {
				fs, err = in.FixedCount(arr, m, defects.AllCells, fs)
				if err != nil {
					t.Fatal(err)
				}
				check(fs, "fixed-count", seed)
			}
			fs, _, err = in.Clustered(arr, defects.ClusterParams{MeanDefects: 8, ClusterSize: 4}, fs)
			if err != nil {
				t.Fatal(err)
			}
			check(fs, "clustered", seed)
		}
		if misses == 0 {
			t.Errorf("%s: memoized twin never ran the solver", d.Name)
		}
		if memoSess.MemoLen() > 32 {
			t.Errorf("%s: memo holds %d entries, capacity 32", d.Name, memoSess.MemoLen())
		}
	}
}

// TestDifferentialFeasibleWordsMatchesFaultSet pins the two public entry
// points to each other and both to a reference repair graph built the
// pre-bitset way — an explicit primary-list scan into a fresh matcher —
// via GraphSignature: the word-driven target iteration must visit targets
// and edges in exactly the order the primary scan does, not merely reach
// the same verdict.
func TestDifferentialFeasibleWordsMatchesFaultSet(t *testing.T) {
	for _, d := range layout.AllDesigns() {
		arr, err := layout.BuildWithPrimaryTarget(d, 60)
		if err != nil {
			t.Fatal(err)
		}
		sessA, err := NewSession(arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sessB, err := NewSession(arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		spareSlot := make(map[layout.CellID]int)
		for slot, id := range arr.Spares() {
			spareSlot[id] = slot
		}
		var fs *defects.FaultSet
		for seed := int64(0); seed < 10; seed++ {
			in := defects.NewInjector(seed)
			fs = in.Bernoulli(arr, 0.85, fs)
			if fs.Count() == 0 {
				continue
			}
			okA, err := sessA.Feasible(fs)
			if err != nil {
				t.Fatal(err)
			}
			okB, err := sessB.FeasibleWords(fs.Words())
			if err != nil {
				t.Fatal(err)
			}
			if okA != okB {
				t.Fatalf("%s seed %d: Feasible=%v, FeasibleWords=%v", d.Name, seed, okA, okB)
			}
			if sessA.GraphSignature() != sessB.GraphSignature() {
				t.Fatalf("%s seed %d: repair graphs differ between entry points", d.Name, seed)
			}
			// Reference construction: the primary-list scan the session used
			// before targets became a bitset.
			ref := matching.NewMatcher(arr.NumPrimary(), arr.NumSpare(), 0)
			ref.Reset(arr.NumSpare())
			aborted := false
			for _, id := range arr.Primaries() {
				if !fs.IsFaulty(id) {
					continue
				}
				for _, sp := range arr.SpareNeighbors(id) {
					if !fs.IsFaulty(sp) {
						ref.AddEdge(spareSlot[sp])
					}
				}
				if ref.EndLeft() == 0 {
					aborted = true
					break
				}
			}
			// The session stops feeding the matcher at the first degree-zero
			// target, so only compare full builds.
			if !aborted && sessA.GraphSignature() != ref.GraphSignature() {
				t.Fatalf("%s seed %d: word-driven graph differs from primary-scan reference",
					d.Name, seed)
			}
		}
	}
}

// TestSessionMemoLRUBehavior exercises the memo mechanics directly: a hit
// must skip the solver (observable through the counters), capacity must
// bound residency with least-recently-used eviction, and a re-queried
// evictee must re-run the solver and still agree.
func TestSessionMemoLRUBehavior(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 40)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.EnableMemo(2) {
		t.Fatal("EnableMemo(2) refused")
	}
	var hits, misses uint64
	sess.SetMemoCounters(&hits, &misses)
	pattern := func(ids ...layout.CellID) *defects.FaultSet {
		fs := defects.NewFaultSet(arr.NumCells())
		for _, id := range ids {
			fs.MarkFaulty(id)
		}
		return fs
	}
	p := arr.Primaries()
	a, b, c := pattern(p[0]), pattern(p[1]), pattern(p[2])
	mustFeasible := func(fs *defects.FaultSet) bool {
		t.Helper()
		ok, err := sess.Feasible(fs)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	okA := mustFeasible(a) // miss, cached
	mustFeasible(b)        // miss, cached (memo full)
	if hits != 0 || misses != 2 {
		t.Fatalf("after two distinct queries: hits=%d misses=%d, want 0/2", hits, misses)
	}
	if got := mustFeasible(a); got != okA {
		t.Fatalf("memo hit verdict %v, want %v", got, okA)
	}
	if hits != 1 || misses != 2 {
		t.Fatalf("after repeat query: hits=%d misses=%d, want 1/2", hits, misses)
	}
	mustFeasible(c) // miss; evicts b (a was touched more recently)
	mustFeasible(a) // must still be cached
	if hits != 2 || misses != 3 {
		t.Fatalf("after eviction round: hits=%d misses=%d, want 2/3", hits, misses)
	}
	mustFeasible(b) // evicted: must miss and re-solve
	if hits != 2 || misses != 4 {
		t.Fatalf("evictee requery: hits=%d misses=%d, want 2/4", hits, misses)
	}
	if sess.MemoLen() != 2 {
		t.Fatalf("memo holds %d entries, want capacity 2", sess.MemoLen())
	}
	// All-healthy draws bypass the memo entirely.
	mustFeasible(defects.NewFaultSet(arr.NumCells()))
	if hits != 2 || misses != 4 {
		t.Fatalf("all-healthy query touched the memo: hits=%d misses=%d", hits, misses)
	}
	// Oversized arrays and bad capacities refuse memoization.
	if sess.EnableMemo(0) {
		t.Fatal("EnableMemo(0) accepted")
	}
	big, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if big.NumCells() <= MemoMaxCells {
		t.Fatalf("test premise broken: %d cells should exceed MemoMaxCells", big.NumCells())
	}
	bigSess, err := NewSession(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bigSess.EnableMemo(64) {
		t.Fatalf("EnableMemo accepted a %d-cell array beyond MemoMaxCells=%d", big.NumCells(), MemoMaxCells)
	}
}

// TestSessionMemoizedFeasibleZeroAllocs extends the steady-state
// zero-allocation pin to the memoized path: hits, misses, and evictions
// must all run entirely in the preallocated arena (capacity far below the
// draw diversity, so eviction churn is constant).
func TestSessionMemoizedFeasibleZeroAllocs(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.EnableMemo(16) {
		t.Fatal("EnableMemo refused")
	}
	var hits, misses uint64
	sess.SetMemoCounters(&hits, &misses)
	in := defects.NewInjector(1)
	var fs *defects.FaultSet
	for i := 0; i < 64; i++ { // warm scratch and fill the memo
		fs = in.Bernoulli(arr, 0.92, fs)
		if _, err := sess.Feasible(fs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		fs = in.Bernoulli(arr, 0.92, fs)
		if _, err := sess.Feasible(fs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized Feasible allocates %.1f times per run, want 0", allocs)
	}
	if misses == 0 {
		t.Fatal("memoized run never missed — eviction path untested")
	}
}

// TestSessionRepairUsedScope checks scope handling: under RepairUsed an
// unused faulty primary is tolerated, and the session verdict matches the
// reference path with the same mask.
func TestSessionRepairUsedScope(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 40)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, arr.NumCells())
	for i, id := range arr.Primaries() {
		used[id] = i%2 == 0 // half the primaries are in active use
	}
	opts := Options{Scope: RepairUsed, Used: used}
	sess, err := NewSession(arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var fs *defects.FaultSet
	for seed := int64(0); seed < 30; seed++ {
		in := defects.NewInjector(seed)
		fs = in.Bernoulli(arr, 0.85, fs)
		got, err := sess.Feasible(fs)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := LocalReconfigure(arr, fs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != plan.OK {
			t.Fatalf("seed %d: Feasible=%v, LocalReconfigure.OK=%v", seed, got, plan.OK)
		}
	}
}

// TestSessionErrors pins the constructor and query validation.
func TestSessionErrors(t *testing.T) {
	if _, err := NewSession(nil, Options{}); err == nil {
		t.Fatal("NewSession(nil) succeeded")
	}
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB16(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(arr, Options{Scope: RepairUsed}); err == nil {
		t.Fatal("NewSession with RepairUsed and no mask succeeded")
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feasible(nil); err == nil {
		t.Fatal("Feasible(nil) succeeded")
	}
	if _, err := sess.Feasible(defects.NewFaultSet(arr.NumCells() + 1)); err == nil {
		t.Fatal("Feasible with mismatched fault set succeeded")
	}
	if sess.Array() != arr {
		t.Fatal("Array() does not return the bound array")
	}
}

// TestSessionAllHealthyFastPath checks the degenerate no-fault path.
func TestSessionAllHealthyFastPath(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 30)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sess.Feasible(defects.NewFaultSet(arr.NumCells()))
	if err != nil || !ok {
		t.Fatalf("all-healthy Feasible = (%v, %v), want (true, nil)", ok, err)
	}
	// Faulty spares only: nothing to repair, still feasible.
	fs := defects.NewFaultSet(arr.NumCells())
	for _, id := range arr.Spares() {
		fs.MarkFaulty(id)
	}
	ok, err = sess.Feasible(fs)
	if err != nil || !ok {
		t.Fatalf("spares-only Feasible = (%v, %v), want (true, nil)", ok, err)
	}
}

// TestSessionFeasibleZeroAllocs pins the steady-state feasibility query to
// zero allocations, the property the Monte-Carlo kernel depends on.
func TestSessionFeasibleZeroAllocs(t *testing.T) {
	arr, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := defects.NewInjector(1)
	var fs *defects.FaultSet
	fs = in.Bernoulli(arr, 0.95, fs)
	for i := 0; i < 32; i++ { // warm the scratch
		fs = in.Bernoulli(arr, 0.95, fs)
		if _, err := sess.Feasible(fs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		fs = in.Bernoulli(arr, 0.95, fs)
		if _, err := sess.Feasible(fs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Feasible allocates %.1f times per run, want 0", allocs)
	}
}
