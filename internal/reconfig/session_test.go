package reconfig

import (
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

// TestSessionFeasibleMatchesLocalReconfigure is the randomized differential
// test pinning the session's allocation-free verdict to the reference
// plan-materializing path over every constructible design, several fault
// patterns (Bernoulli at low/medium/high density, fixed-count, clustered),
// and a spread of seeds — including the UseKuhn cross-check, which the
// session must agree with because both algorithms are exact.
func TestSessionFeasibleMatchesLocalReconfigure(t *testing.T) {
	for _, d := range layout.AllDesignsWithVariants() {
		arr, err := layout.BuildWithPrimaryTarget(d, 60)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		check := func(fs *defects.FaultSet, pattern string, seed int64) {
			t.Helper()
			got, err := sess.Feasible(fs)
			if err != nil {
				t.Fatalf("%s %s seed %d: Feasible: %v", d.Name, pattern, seed, err)
			}
			for _, kuhn := range []bool{false, true} {
				plan, err := LocalReconfigure(arr, fs, Options{UseKuhn: kuhn})
				if err != nil {
					t.Fatalf("%s %s seed %d: LocalReconfigure: %v", d.Name, pattern, seed, err)
				}
				if got != plan.OK {
					t.Fatalf("%s %s seed %d (kuhn=%v): Feasible=%v, LocalReconfigure.OK=%v (%d faults)",
						d.Name, pattern, seed, kuhn, got, plan.OK, fs.Count())
				}
			}
		}
		var fs *defects.FaultSet
		for seed := int64(0); seed < 25; seed++ {
			in := defects.NewInjector(seed)
			for _, p := range []float64{0.99, 0.95, 0.85, 0.60} {
				fs = in.Bernoulli(arr, p, fs)
				check(fs, "bernoulli", seed)
			}
			for _, m := range []int{0, 1, 5, 20, arr.NumCells() / 3} {
				fs, err = in.FixedCount(arr, m, defects.AllCells, fs)
				if err != nil {
					t.Fatal(err)
				}
				check(fs, "fixed-count", seed)
			}
			fs, _, err = in.Clustered(arr, defects.ClusterParams{MeanDefects: 8, ClusterSize: 4}, fs)
			if err != nil {
				t.Fatal(err)
			}
			check(fs, "clustered", seed)
		}
	}
}

// TestSessionRepairUsedScope checks scope handling: under RepairUsed an
// unused faulty primary is tolerated, and the session verdict matches the
// reference path with the same mask.
func TestSessionRepairUsedScope(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 40)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, arr.NumCells())
	for i, id := range arr.Primaries() {
		used[id] = i%2 == 0 // half the primaries are in active use
	}
	opts := Options{Scope: RepairUsed, Used: used}
	sess, err := NewSession(arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var fs *defects.FaultSet
	for seed := int64(0); seed < 30; seed++ {
		in := defects.NewInjector(seed)
		fs = in.Bernoulli(arr, 0.85, fs)
		got, err := sess.Feasible(fs)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := LocalReconfigure(arr, fs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != plan.OK {
			t.Fatalf("seed %d: Feasible=%v, LocalReconfigure.OK=%v", seed, got, plan.OK)
		}
	}
}

// TestSessionErrors pins the constructor and query validation.
func TestSessionErrors(t *testing.T) {
	if _, err := NewSession(nil, Options{}); err == nil {
		t.Fatal("NewSession(nil) succeeded")
	}
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB16(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(arr, Options{Scope: RepairUsed}); err == nil {
		t.Fatal("NewSession with RepairUsed and no mask succeeded")
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feasible(nil); err == nil {
		t.Fatal("Feasible(nil) succeeded")
	}
	if _, err := sess.Feasible(defects.NewFaultSet(arr.NumCells() + 1)); err == nil {
		t.Fatal("Feasible with mismatched fault set succeeded")
	}
	if sess.Array() != arr {
		t.Fatal("Array() does not return the bound array")
	}
}

// TestSessionAllHealthyFastPath checks the degenerate no-fault path.
func TestSessionAllHealthyFastPath(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 30)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sess.Feasible(defects.NewFaultSet(arr.NumCells()))
	if err != nil || !ok {
		t.Fatalf("all-healthy Feasible = (%v, %v), want (true, nil)", ok, err)
	}
	// Faulty spares only: nothing to repair, still feasible.
	fs := defects.NewFaultSet(arr.NumCells())
	for _, id := range arr.Spares() {
		fs.MarkFaulty(id)
	}
	ok, err = sess.Feasible(fs)
	if err != nil || !ok {
		t.Fatalf("spares-only Feasible = (%v, %v), want (true, nil)", ok, err)
	}
}

// TestSessionFeasibleZeroAllocs pins the steady-state feasibility query to
// zero allocations, the property the Monte-Carlo kernel depends on.
func TestSessionFeasibleZeroAllocs(t *testing.T) {
	arr, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := defects.NewInjector(1)
	var fs *defects.FaultSet
	fs = in.Bernoulli(arr, 0.95, fs)
	for i := 0; i < 32; i++ { // warm the scratch
		fs = in.Bernoulli(arr, 0.95, fs)
		if _, err := sess.Feasible(fs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		fs = in.Bernoulli(arr, 0.95, fs)
		if _, err := sess.Feasible(fs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Feasible allocates %.1f times per run, want 0", allocs)
	}
}
