package reconfig

import (
	"fmt"
	"sort"

	"dmfb/internal/sqgrid"
)

// Shifted replacement is the boundary-redundancy baseline of the paper's
// Fig. 2: spare rows sit at the array boundary, and a faulty cell is repaired
// by shifting cell functions along its column toward the spare row — "each
// faulty cell is replaced by one of its fault-free adjacent cells, which is
// in turn replaced by one of its adjacent cells, and so on, until a spare
// cell from the boundary is incorporated". Because of microfluidic locality
// this cascade drags fault-free modules into the reconfiguration, which is
// precisely the cost interstitial redundancy avoids.

// ShiftOptions tunes the baseline's behavior.
type ShiftOptions struct {
	// StopAtUnused lets the cascade terminate early at the first fault-free
	// cell not used by any module (a hybrid of shifted replacement and the
	// paper's "category 1" reconfiguration). The paper's pure scheme shifts
	// all the way to the boundary spare row; leave false to reproduce it.
	StopAtUnused bool
}

// ShiftResult reports the cost of repairing one fault by shifted replacement.
type ShiftResult struct {
	// OK reports whether the repair succeeded.
	OK bool
	// Reason explains a failure ("" when OK).
	Reason string
	// Chain lists the cells whose function moved, from the faulty cell down
	// to (and including) the cell that absorbed the cascade.
	Chain []sqgrid.Coord
	// ModulesReconfigured names the modules whose mapping changed, in
	// placement order. Fault-free modules in the chain appear here — the
	// overhead the paper criticizes.
	ModulesReconfigured []string
	// CellsRemapped counts cells whose logical function moved.
	CellsRemapped int
}

// shiftState tracks consumed cells across a multi-fault repair session.
type shiftState struct {
	p        sqgrid.Placement
	consumed map[sqgrid.Coord]bool
	faulty   map[sqgrid.Coord]bool
}

// ShiftedReplacement repairs a single faulty cell on a spare-row placement
// and reports the reconfiguration cost.
func ShiftedReplacement(p sqgrid.Placement, fault sqgrid.Coord, opts ShiftOptions) (ShiftResult, error) {
	session, err := NewShiftSession(p, []sqgrid.Coord{fault})
	if err != nil {
		return ShiftResult{}, err
	}
	return session.Repair(fault, opts), nil
}

// ShiftSession repairs a set of faults one at a time, tracking consumed spare
// capacity so that sequential repairs contend for the same boundary rows.
type ShiftSession struct {
	st shiftState
}

// NewShiftSession validates the placement and registers the fault set.
func NewShiftSession(p sqgrid.Placement, faults []sqgrid.Coord) (*ShiftSession, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SpareRows == 0 {
		return nil, fmt.Errorf("reconfig: placement has no spare rows")
	}
	st := shiftState{
		p:        p,
		consumed: make(map[sqgrid.Coord]bool),
		faulty:   make(map[sqgrid.Coord]bool, len(faults)),
	}
	for _, f := range faults {
		if !p.Grid.Contains(f) {
			return nil, fmt.Errorf("reconfig: fault %v off-grid", f)
		}
		st.faulty[f] = true
	}
	return &ShiftSession{st: st}, nil
}

// Repair runs shifted replacement for one registered fault.
func (s *ShiftSession) Repair(fault sqgrid.Coord, opts ShiftOptions) ShiftResult {
	st := &s.st
	if !st.faulty[fault] {
		return ShiftResult{OK: false, Reason: fmt.Sprintf("cell %v not registered as faulty", fault)}
	}
	mi := st.p.ModuleAt(fault)
	if mi < 0 {
		// Fault in an unused cell: nothing to remap.
		return ShiftResult{OK: true}
	}

	// Walk down the column toward the spare rows, building the cascade.
	chain := []sqgrid.Coord{fault}
	modules := map[string]bool{st.p.Modules[mi].Name: true}
	cur := fault
	for {
		next := sqgrid.Coord{X: cur.X, Y: cur.Y + 1}
		if !st.p.Grid.Contains(next) {
			return ShiftResult{
				OK:     false,
				Reason: fmt.Sprintf("column %d has no spare capacity left", fault.X),
				Chain:  chain,
			}
		}
		if st.faulty[next] {
			return ShiftResult{
				OK:     false,
				Reason: fmt.Sprintf("cascade blocked by faulty cell %v", next),
				Chain:  chain,
			}
		}
		if st.consumed[next] {
			// Defensive: a cascade can only meet a consumed cell by first
			// passing the fault that produced it, which the faulty-cell
			// check above already rejects. Under the paper's strict
			// adjacent-shifting scheme a column therefore absorbs at most
			// one repair, no matter how many spare rows lie below.
			return ShiftResult{
				OK:     false,
				Reason: fmt.Sprintf("cascade blocked at %v, already consumed by an earlier repair", next),
				Chain:  chain,
			}
		}
		chain = append(chain, next)
		if ni := st.p.ModuleAt(next); ni >= 0 {
			modules[st.p.Modules[ni].Name] = true
			cur = next
			continue
		}
		// next is unused: with StopAtUnused the cascade can absorb here;
		// otherwise it must reach a boundary spare row.
		if opts.StopAtUnused || next.Y >= st.p.Grid.H-st.p.SpareRows {
			st.consumed[next] = true
			break
		}
		cur = next
	}

	names := make([]string, 0, len(modules))
	for n := range modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return ShiftResult{
		OK:                  true,
		Chain:               chain,
		ModulesReconfigured: names,
		// The last chain cell gains a function rather than moving one, so
		// remapped cells = chain length − 1 … but the faulty cell's function
		// also moves, so every chain cell except the absorber was remapped.
		CellsRemapped: len(chain) - 1,
	}
}

// CostComparison contrasts shifted replacement against interstitial local
// reconfiguration for the same number of faults (local reconfiguration
// remaps exactly one cell — the adjacent spare — per repaired fault and
// touches no fault-free module).
type CostComparison struct {
	Faults                    int
	ShiftedOK                 bool
	ShiftedCellsRemapped      int
	ShiftedModulesTouched     int
	InterstitialCellsRemapped int
	InterstitialModules       int
}

// CompareWithInterstitial repairs all registered faults by shifted
// replacement (deepest faults first, so column capacity is allocated
// bottom-up) and totals the costs next to interstitial redundancy's
// one-cell-per-fault cost.
func CompareWithInterstitial(p sqgrid.Placement, faults []sqgrid.Coord, opts ShiftOptions) (CostComparison, []ShiftResult, error) {
	session, err := NewShiftSession(p, faults)
	if err != nil {
		return CostComparison{}, nil, err
	}
	ordered := append([]sqgrid.Coord(nil), faults...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Y != ordered[j].Y {
			return ordered[i].Y > ordered[j].Y
		}
		return ordered[i].X < ordered[j].X
	})
	cmp := CostComparison{Faults: len(faults), ShiftedOK: true}
	modules := map[string]bool{}
	results := make([]ShiftResult, 0, len(ordered))
	for _, f := range ordered {
		res := session.Repair(f, opts)
		results = append(results, res)
		if !res.OK {
			cmp.ShiftedOK = false
		}
		cmp.ShiftedCellsRemapped += res.CellsRemapped
		for _, m := range res.ModulesReconfigured {
			modules[m] = true
		}
	}
	cmp.ShiftedModulesTouched = len(modules)
	cmp.InterstitialCellsRemapped = len(faults)
	// Interstitial repair touches only the module containing each fault.
	touched := map[int]bool{}
	for _, f := range faults {
		if mi := p.ModuleAt(f); mi >= 0 {
			touched[mi] = true
		}
	}
	cmp.InterstitialModules = len(touched)
	return cmp, results, nil
}
