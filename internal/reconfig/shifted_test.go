package reconfig

import (
	"strings"
	"testing"

	"dmfb/internal/sqgrid"
)

func TestFigure2FaultInModule1TouchesOnlyModule1(t *testing.T) {
	// Paper Fig. 2(b): a fault in Module 1 (adjacent to the spare row) is
	// repaired by relocating Module 1 alone.
	p := sqgrid.Figure2Placement()
	fault := sqgrid.Coord{X: 3, Y: 6} // top row of Module 1
	res, err := ShiftedReplacement(p, fault, ShiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("repair failed: %s", res.Reason)
	}
	if len(res.ModulesReconfigured) != 1 || res.ModulesReconfigured[0] != "Module 1" {
		t.Errorf("modules touched = %v, want only Module 1", res.ModulesReconfigured)
	}
	// Chain: fault row 6 -> rows 7, 8 (Module 1), 9 (spare). 3 remapped.
	if res.CellsRemapped != 3 {
		t.Errorf("CellsRemapped = %d, want 3", res.CellsRemapped)
	}
}

func TestFigure2FaultInModule3DragsFaultFreeModules(t *testing.T) {
	// Paper Fig. 2(c): a fault in Module 3 forces reconfiguration of the
	// fault-free Modules 1 and 2 — the cost interstitial redundancy avoids.
	p := sqgrid.Figure2Placement()
	fault := sqgrid.Coord{X: 3, Y: 1} // middle of Module 3
	res, err := ShiftedReplacement(p, fault, ShiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("repair failed: %s", res.Reason)
	}
	joined := strings.Join(res.ModulesReconfigured, ",")
	for _, want := range []string{"Module 1", "Module 2", "Module 3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("modules touched = %v, missing %s", res.ModulesReconfigured, want)
		}
	}
	// Chain runs from row 1 to the spare row 9: 8 cells remapped versus 1
	// for interstitial redundancy.
	if res.CellsRemapped != 8 {
		t.Errorf("CellsRemapped = %d, want 8", res.CellsRemapped)
	}
}

func TestFaultInUnusedCellCostsNothing(t *testing.T) {
	p := sqgrid.Figure2Placement()
	res, err := ShiftedReplacement(p, sqgrid.Coord{X: 0, Y: 4}, ShiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.CellsRemapped != 0 || len(res.ModulesReconfigured) != 0 {
		t.Errorf("unused fault should be free: %+v", res)
	}
}

func TestStopAtUnusedShortensChain(t *testing.T) {
	// Insert a gap between Module 2 and Module 1 so the cascade can stop
	// early when StopAtUnused is set.
	p := sqgrid.Figure2Placement()
	p.Modules[1].Y = 2 // Module 2 rows 2-4, gap at row 5
	p.Modules[2].H = 2 // Module 3 rows 0-1
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	fault := sqgrid.Coord{X: 3, Y: 0} // Module 3

	full, err := ShiftedReplacement(p, fault, ShiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	early, err := ShiftedReplacement(p, fault, ShiftOptions{StopAtUnused: true})
	if err != nil {
		t.Fatal(err)
	}
	if !full.OK || !early.OK {
		t.Fatal("both repairs should succeed")
	}
	if early.CellsRemapped >= full.CellsRemapped {
		t.Errorf("StopAtUnused (%d) should remap fewer cells than full shift (%d)",
			early.CellsRemapped, full.CellsRemapped)
	}
	if len(early.ModulesReconfigured) >= len(full.ModulesReconfigured) {
		t.Errorf("StopAtUnused should touch fewer modules: %v vs %v",
			early.ModulesReconfigured, full.ModulesReconfigured)
	}
}

func TestCascadeBlockedByFaultyCellBelow(t *testing.T) {
	p := sqgrid.Figure2Placement()
	faults := []sqgrid.Coord{{X: 3, Y: 1}, {X: 3, Y: 4}}
	session, err := NewShiftSession(p, faults)
	if err != nil {
		t.Fatal(err)
	}
	res := session.Repair(sqgrid.Coord{X: 3, Y: 1}, ShiftOptions{})
	if res.OK {
		t.Error("cascade through a second faulty cell must fail")
	}
	if res.Reason == "" {
		t.Error("failure must carry a reason")
	}
}

func TestColumnCapacityExhausted(t *testing.T) {
	// Two faults in the same column with one spare row: the second repair
	// must fail because the column's spare cell is consumed.
	p := sqgrid.Figure2Placement()
	faults := []sqgrid.Coord{{X: 2, Y: 6}, {X: 2, Y: 0}}
	session, err := NewShiftSession(p, faults)
	if err != nil {
		t.Fatal(err)
	}
	first := session.Repair(sqgrid.Coord{X: 2, Y: 6}, ShiftOptions{})
	if !first.OK {
		t.Fatalf("first repair failed: %s", first.Reason)
	}
	second := session.Repair(sqgrid.Coord{X: 2, Y: 0}, ShiftOptions{})
	if second.OK {
		t.Error("second repair in same column should exhaust spare capacity")
	}
}

func TestRepairUnregisteredFaultFails(t *testing.T) {
	p := sqgrid.Figure2Placement()
	session, err := NewShiftSession(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := session.Repair(sqgrid.Coord{X: 1, Y: 1}, ShiftOptions{})
	if res.OK {
		t.Error("unregistered fault accepted")
	}
}

func TestNewShiftSessionValidation(t *testing.T) {
	p := sqgrid.Figure2Placement()
	if _, err := NewShiftSession(p, []sqgrid.Coord{{X: 100, Y: 0}}); err == nil {
		t.Error("off-grid fault accepted")
	}
	noSpare := p
	noSpare.SpareRows = 0
	if _, err := NewShiftSession(noSpare, nil); err == nil {
		t.Error("placement without spare rows accepted")
	}
	invalid := p.Clone()
	invalid.Modules[0].X = -5
	if _, err := NewShiftSession(invalid, nil); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestCompareWithInterstitialFigure2(t *testing.T) {
	p := sqgrid.Figure2Placement()
	faults := []sqgrid.Coord{{X: 3, Y: 1}} // Module 3 fault
	cmp, results, err := CompareWithInterstitial(p, faults, ShiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !cmp.ShiftedOK {
		t.Fatalf("unexpected results %+v", cmp)
	}
	if cmp.InterstitialCellsRemapped != 1 {
		t.Error("interstitial cost must be one cell per fault")
	}
	if cmp.ShiftedCellsRemapped <= cmp.InterstitialCellsRemapped {
		t.Errorf("shifted (%d) should cost more than interstitial (%d)",
			cmp.ShiftedCellsRemapped, cmp.InterstitialCellsRemapped)
	}
	if cmp.ShiftedModulesTouched != 3 || cmp.InterstitialModules != 1 {
		t.Errorf("modules: shifted %d interstitial %d", cmp.ShiftedModulesTouched, cmp.InterstitialModules)
	}
}

func TestCompareWithInterstitialMultiFaultOrdering(t *testing.T) {
	// Deepest-first ordering lets two faults in different columns succeed.
	p := sqgrid.Figure2Placement()
	faults := []sqgrid.Coord{{X: 1, Y: 0}, {X: 5, Y: 7}}
	cmp, results, err := CompareWithInterstitial(p, faults, ShiftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.ShiftedOK {
		for _, r := range results {
			t.Logf("result: %+v", r)
		}
		t.Fatal("independent columns should both repair")
	}
	if cmp.Faults != 2 || cmp.InterstitialCellsRemapped != 2 {
		t.Errorf("comparison bookkeeping wrong: %+v", cmp)
	}
}
