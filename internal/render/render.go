// Package render draws defect-tolerant microfluidic arrays as ASCII art and
// SVG: cell roles (primary/spare), fault marks, assay-used cells, and
// local-reconfiguration assignments. It regenerates the layout pictures of
// the paper (Figs. 3-6, 12) from live data structures.
package render

import (
	"fmt"
	"sort"
	"strings"

	"dmfb/internal/defects"
	"dmfb/internal/hexgrid"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
)

// Marks select the decoration of a rendering.
type Marks struct {
	// Faults marks faulty cells (optional).
	Faults *defects.FaultSet
	// Used marks assay-used cells (optional, indexed by CellID).
	Used []bool
	// Plan highlights replacement spares (optional).
	Plan *reconfig.Plan
}

// Glyphs used by the ASCII renderer.
const (
	GlyphPrimary     = '.'
	GlyphSpare       = 'o'
	GlyphUsed        = 'U'
	GlyphFaulty      = 'X'
	GlyphFaultySpare = 'x'
	GlyphReplacement = 'R'
	GlyphEmpty       = ' '
)

// glyphFor picks the ASCII glyph of one cell under the marks.
func glyphFor(arr *layout.Array, m Marks, id layout.CellID) rune {
	cell := arr.Cell(id)
	faulty := m.Faults != nil && m.Faults.IsFaulty(id)
	if faulty {
		if cell.Role == layout.Spare {
			return GlyphFaultySpare
		}
		return GlyphFaulty
	}
	if m.Plan != nil {
		for _, a := range m.Plan.Assignments {
			if a.Spare == id {
				return GlyphReplacement
			}
		}
	}
	if cell.Role == layout.Spare {
		return GlyphSpare
	}
	if m.Used != nil && int(id) < len(m.Used) && m.Used[id] {
		return GlyphUsed
	}
	return GlyphPrimary
}

// ASCII renders the array as offset-staggered rows of glyphs:
// '.' primary, 'U' used primary, 'o' spare, 'X' faulty primary, 'x' faulty
// spare, 'R' spare assigned as a replacement. Odd rows are indented half a
// cell to suggest the hexagonal packing.
func ASCII(arr *layout.Array, m Marks) string {
	minQ, maxQ, minR, maxR, ok := arr.Region().Bounds()
	if !ok {
		return ""
	}
	var b strings.Builder
	for r := minR; r <= maxR; r++ {
		// Hexagonal stagger: each row shifts right with r (axial q offset
		// keeps columns aligned when printed with the r/2 correction).
		indent := r - minR
		b.WriteString(strings.Repeat(" ", indent))
		for q := minQ; q <= maxQ; q++ {
			id := arr.CellAt(hexgrid.Axial{Q: q, R: r})
			if id == layout.NoCell {
				b.WriteRune(GlyphEmpty)
			} else {
				b.WriteRune(glyphFor(arr, m, id))
			}
			b.WriteRune(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend returns the glyph legend for ASCII renderings.
func Legend() string {
	return ". primary   U used primary   o spare   X faulty primary   x faulty spare   R replacement spare"
}

// SVG renders the array as a hexagon-tile SVG document. Size is the
// circumradius of one hexagon in pixels.
func SVG(arr *layout.Array, m Marks, size float64) string {
	if size <= 0 {
		size = 12
	}
	const sqrt3 = 1.7320508075688772
	// Pointy-top hex layout: x = s*sqrt3*(q + r/2), y = s*1.5*r.
	minX, minY, maxX, maxY := 1e18, 1e18, -1e18, -1e18
	type placed struct {
		x, y float64
		id   layout.CellID
	}
	cells := make([]placed, 0, arr.NumCells())
	for i := 0; i < arr.NumCells(); i++ {
		id := layout.CellID(i)
		pos := arr.Cell(id).Pos
		x := size * sqrt3 * (float64(pos.Q) + float64(pos.R)/2)
		y := size * 1.5 * float64(pos.R)
		cells = append(cells, placed{x, y, id})
		if x < minX {
			minX = x
		}
		if y < minY {
			minY = y
		}
		if x > maxX {
			maxX = x
		}
		if y > maxY {
			maxY = y
		}
	}
	pad := 2 * size
	width := maxX - minX + 2*pad
	height := maxY - minY + 2*pad

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	sort.Slice(cells, func(i, j int) bool { return cells[i].id < cells[j].id })
	for _, c := range cells {
		fill, stroke := colorFor(arr, m, c.id)
		cx := c.x - minX + pad
		cy := c.y - minY + pad
		b.WriteString(hexPolygon(cx, cy, size*0.95, fill, stroke))
	}
	// Replacement arrows.
	if m.Plan != nil {
		index := make(map[layout.CellID]placed, len(cells))
		for _, c := range cells {
			index[c.id] = c
		}
		for _, a := range m.Plan.Assignments {
			from, okF := index[a.Faulty]
			to, okT := index[a.Spare]
			if !okF || !okT {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="1.5"/>`+"\n",
				from.x-minX+pad, from.y-minY+pad, to.x-minX+pad, to.y-minY+pad)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// colorFor picks SVG colors for one cell.
func colorFor(arr *layout.Array, m Marks, id layout.CellID) (fill, stroke string) {
	cell := arr.Cell(id)
	stroke = "#555555"
	faulty := m.Faults != nil && m.Faults.IsFaulty(id)
	switch {
	case faulty && cell.Role == layout.Spare:
		return "#f4a6a6", stroke
	case faulty:
		return "#d62728", stroke
	}
	if m.Plan != nil {
		for _, a := range m.Plan.Assignments {
			if a.Spare == id {
				return "#2ca02c", stroke
			}
		}
	}
	if cell.Role == layout.Spare {
		return "#c7c7c7", stroke
	}
	if m.Used != nil && int(id) < len(m.Used) && m.Used[id] {
		return "#aec7e8", stroke
	}
	return "#ffffff", stroke
}

// hexPolygon emits one pointy-top hexagon.
func hexPolygon(cx, cy, r float64, fill, stroke string) string {
	// Vertices at 30° + 60°k.
	pts := make([]string, 6)
	coords := [6][2]float64{
		{0.8660254, 0.5}, {0, 1}, {-0.8660254, 0.5},
		{-0.8660254, -0.5}, {0, -1}, {0.8660254, -0.5},
	}
	for i, c := range coords {
		pts[i] = fmt.Sprintf("%.1f,%.1f", cx+r*c[0], cy+r*c[1])
	}
	return fmt.Sprintf(`<polygon points="%s" fill="%s" stroke="%s" stroke-width="1"/>`+"\n",
		strings.Join(pts, " "), fill, stroke)
}

// Summary returns a one-paragraph textual description of the array state,
// used under renderings in tools and examples.
func Summary(arr *layout.Array, m Marks) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", arr.String())
	if m.Faults != nil {
		faultyP := len(m.Faults.FaultyPrimaries(arr))
		faultyS := len(m.Faults.FaultySpares(arr))
		fmt.Fprintf(&b, "faults: %d primary, %d spare\n", faultyP, faultyS)
	}
	if m.Plan != nil {
		status := "FAILED"
		if m.Plan.OK {
			status = "OK"
		}
		fmt.Fprintf(&b, "reconfiguration %s: %d replacements, %d unmatched\n",
			status, len(m.Plan.Assignments), len(m.Plan.Unmatched))
	}
	return b.String()
}
