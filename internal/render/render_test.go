package render

import (
	"strings"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
)

func buildArray(t testing.TB) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestASCIIGlyphCounts(t *testing.T) {
	arr := buildArray(t)
	out := ASCII(arr, Marks{})
	if strings.Count(out, string(GlyphSpare)) != arr.NumSpare() {
		t.Errorf("spare glyphs %d, want %d", strings.Count(out, string(GlyphSpare)), arr.NumSpare())
	}
	if strings.Count(out, string(GlyphPrimary)) != arr.NumPrimary() {
		t.Errorf("primary glyphs %d, want %d", strings.Count(out, string(GlyphPrimary)), arr.NumPrimary())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Errorf("%d rows, want 8", len(lines))
	}
}

func TestASCIIFaultAndPlanGlyphs(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	var prim layout.CellID = -1
	for _, id := range arr.Primaries() {
		if arr.IsInterior(id) {
			prim = id
			break
		}
	}
	spare := arr.Spares()[0]
	fs.MarkFaulty(prim)
	fs.MarkFaulty(spare)
	plan, err := reconfig.LocalReconfigure(arr, fs, reconfig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := ASCII(arr, Marks{Faults: fs, Plan: &plan})
	if strings.Count(out, string(GlyphFaulty)) != 1 {
		t.Errorf("faulty-primary glyphs: %q", out)
	}
	if strings.Count(out, string(GlyphFaultySpare)) != 1 {
		t.Error("faulty-spare glyph missing")
	}
	if plan.OK && strings.Count(out, string(GlyphReplacement)) != len(plan.Assignments) {
		t.Error("replacement glyphs missing")
	}
}

func TestASCIIUsedGlyphs(t *testing.T) {
	arr := buildArray(t)
	used := make([]bool, arr.NumCells())
	used[arr.Primaries()[0]] = true
	used[arr.Primaries()[1]] = true
	out := ASCII(arr, Marks{Used: used})
	if strings.Count(out, string(GlyphUsed)) != 2 {
		t.Errorf("used glyphs: %q", out)
	}
}

func TestLegendMentionsAllGlyphs(t *testing.T) {
	l := Legend()
	for _, g := range []rune{GlyphPrimary, GlyphSpare, GlyphUsed, GlyphFaulty, GlyphFaultySpare, GlyphReplacement} {
		if !strings.ContainsRune(l, g) {
			t.Errorf("legend missing %q", g)
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(arr.Primaries()[3])
	plan, err := reconfig.LocalReconfigure(arr, fs, reconfig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg := SVG(arr, Marks{Faults: fs, Plan: &plan}, 10)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not an SVG document")
	}
	if got := strings.Count(svg, "<polygon"); got != arr.NumCells() {
		t.Errorf("%d polygons, want %d", got, arr.NumCells())
	}
	if plan.OK && len(plan.Assignments) > 0 && !strings.Contains(svg, "<line") {
		t.Error("replacement arrows missing")
	}
	// Faulty primary red, replacement green.
	if !strings.Contains(svg, "#d62728") {
		t.Error("fault color missing")
	}
	if plan.OK && !strings.Contains(svg, "#2ca02c") {
		t.Error("replacement color missing")
	}
}

func TestSVGDefaultSize(t *testing.T) {
	arr := buildArray(t)
	if !strings.HasPrefix(SVG(arr, Marks{}, 0), "<svg") {
		t.Error("zero size should fall back to default")
	}
}

func TestSummaryContents(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(arr.Primaries()[0])
	plan, err := reconfig.LocalReconfigure(arr, fs, reconfig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(arr, Marks{Faults: fs, Plan: &plan})
	for _, want := range []string{"DTMB(2,6)", "faults: 1 primary", "reconfiguration"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
