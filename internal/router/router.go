// Package router plans droplet routes on a defect-tolerant microfluidic
// array. Routes respect microfluidic locality (adjacent-cell moves only),
// avoid faulty cells, and can be restricted to primary cells (spares are
// reserved for reconfiguration) or to an assay's allotted footprint.
//
// Single-droplet routing is breadth-first / A* shortest path. Multi-droplet
// routing is prioritized time-expanded routing with stalls: droplets are
// routed one at a time against a reservation table that encodes the fluidic
// non-interference rules, the standard approach in DMFB synthesis flows.
package router

import (
	"container/heap"
	"fmt"
	"sort"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

// Constraints restrict the cells a route may use.
type Constraints struct {
	// Faults marks unusable cells (nil = defect-free).
	Faults *defects.FaultSet
	// PrimariesOnly keeps routes off spare cells.
	PrimariesOnly bool
	// Allowed, when non-nil, restricts routes to cells with Allowed[id]
	// true (e.g. an assay's footprint).
	Allowed []bool
	// Blocked marks additional unusable cells (e.g. other droplets' parked
	// positions); nil allowed.
	Blocked map[layout.CellID]bool
}

// usable reports whether a route may pass through the cell.
func (c Constraints) usable(arr *layout.Array, id layout.CellID) bool {
	if id < 0 || int(id) >= arr.NumCells() {
		return false
	}
	if c.Faults != nil && c.Faults.IsFaulty(id) {
		return false
	}
	if c.PrimariesOnly && arr.Cell(id).Role != layout.Primary {
		return false
	}
	if c.Allowed != nil && !c.Allowed[id] {
		return false
	}
	if c.Blocked != nil && c.Blocked[id] {
		return false
	}
	return true
}

// ShortestPath returns a minimum-length path from src to dst inclusive,
// breadth-first. It returns an error when no route exists.
func ShortestPath(arr *layout.Array, src, dst layout.CellID, c Constraints) ([]layout.CellID, error) {
	if !c.usable(arr, src) {
		return nil, fmt.Errorf("router: source %d unusable", src)
	}
	if !c.usable(arr, dst) {
		return nil, fmt.Errorf("router: destination %d unusable", dst)
	}
	if src == dst {
		return []layout.CellID{src}, nil
	}
	prev := make(map[layout.CellID]layout.CellID, 64)
	prev[src] = src
	queue := []layout.CellID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range arr.Neighbors(cur) {
			if _, seen := prev[nb]; seen || !c.usable(arr, nb) {
				continue
			}
			prev[nb] = cur
			if nb == dst {
				return reconstruct(prev, src, dst), nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("router: no route from %d to %d", src, dst)
}

func reconstruct(prev map[layout.CellID]layout.CellID, src, dst layout.CellID) []layout.CellID {
	var rev []layout.CellID
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// aStarNode is a priority-queue entry.
type aStarNode struct {
	id    layout.CellID
	f     int
	index int
}

type aStarQueue []*aStarNode

func (q aStarQueue) Len() int            { return len(q) }
func (q aStarQueue) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q aStarQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *aStarQueue) Push(x interface{}) { n := x.(*aStarNode); n.index = len(*q); *q = append(*q, n) }
func (q *aStarQueue) Pop() interface{} {
	old := *q
	n := old[len(old)-1]
	*q = old[:len(old)-1]
	return n
}

// AStarPath returns a minimum-length path using A* with the hex-distance
// heuristic. Identical results to ShortestPath in length; faster on large
// arrays with distant endpoints.
func AStarPath(arr *layout.Array, src, dst layout.CellID, c Constraints) ([]layout.CellID, error) {
	if !c.usable(arr, src) {
		return nil, fmt.Errorf("router: source %d unusable", src)
	}
	if !c.usable(arr, dst) {
		return nil, fmt.Errorf("router: destination %d unusable", dst)
	}
	dstPos := arr.Cell(dst).Pos
	h := func(id layout.CellID) int { return arr.Cell(id).Pos.Distance(dstPos) }

	gScore := map[layout.CellID]int{src: 0}
	prev := map[layout.CellID]layout.CellID{src: src}
	open := &aStarQueue{}
	heap.Init(open)
	heap.Push(open, &aStarNode{id: src, f: h(src)})
	closed := map[layout.CellID]bool{}

	for open.Len() > 0 {
		cur := heap.Pop(open).(*aStarNode)
		if cur.id == dst {
			return reconstruct(prev, src, dst), nil
		}
		if closed[cur.id] {
			continue
		}
		closed[cur.id] = true
		for _, nb := range arr.Neighbors(cur.id) {
			if closed[nb] || !c.usable(arr, nb) {
				continue
			}
			g := gScore[cur.id] + 1
			if old, seen := gScore[nb]; seen && g >= old {
				continue
			}
			gScore[nb] = g
			prev[nb] = cur.id
			heap.Push(open, &aStarNode{id: nb, f: g + h(nb)})
		}
	}
	return nil, fmt.Errorf("router: no route from %d to %d", src, dst)
}

// Request is one droplet's routing demand for MultiRoute.
type Request struct {
	Name     string
	Src, Dst layout.CellID
}

// Schedule is a time-expanded multi-droplet plan: Steps[t][i] is the cell of
// droplet i at time t (droplets may hold). All droplets start at t = 0 on
// their sources; a droplet that has arrived stays on its destination.
type Schedule struct {
	Requests []Request
	Steps    [][]layout.CellID
}

// Makespan returns the number of cycles in the schedule.
func (s Schedule) Makespan() int { return len(s.Steps) - 1 }

// PathOf returns droplet i's trajectory over time.
func (s Schedule) PathOf(i int) []layout.CellID {
	out := make([]layout.CellID, len(s.Steps))
	for t := range s.Steps {
		out[t] = s.Steps[t][i]
	}
	return out
}

// conflictsAt reports whether droplet cells a (at time t) and b (same time)
// violate fluidic spacing.
func conflictsAt(arr *layout.Array, a, b layout.CellID) bool {
	if a == b {
		return true
	}
	for _, nb := range arr.Neighbors(a) {
		if nb == b {
			return true
		}
	}
	return false
}

// MultiRoute plans concurrent routes for several droplets with prioritized
// time-expanded routing: requests are served in order, each against the
// reservations of the earlier ones; a droplet may stall to let another pass.
// maxExtra bounds the stall budget per droplet (0 picks a default).
func MultiRoute(arr *layout.Array, reqs []Request, c Constraints, maxExtra int) (Schedule, error) {
	if len(reqs) == 0 {
		return Schedule{}, fmt.Errorf("router: no requests")
	}
	if maxExtra <= 0 {
		maxExtra = 4 * len(reqs)
	}
	// Per-time occupied cells by earlier droplets. paths[i][t] = cell.
	paths := make([][]layout.CellID, 0, len(reqs))
	horizon := 0

	for ri, req := range reqs {
		if !c.usable(arr, req.Src) || !c.usable(arr, req.Dst) {
			return Schedule{}, fmt.Errorf("router: request %q has unusable endpoints", req.Name)
		}
		// Time-expanded BFS over (cell, time); time capped by horizon of
		// earlier paths plus shortest-path slack.
		base, err := ShortestPath(arr, req.Src, req.Dst, c)
		if err != nil {
			return Schedule{}, fmt.Errorf("router: request %q: %w", req.Name, err)
		}
		limit := horizon + len(base) + maxExtra

		type node struct {
			cell layout.CellID
			t    int
		}
		start := node{req.Src, 0}
		type visitKey struct {
			cell layout.CellID
			t    int
		}
		prev := map[visitKey]node{{req.Src, 0}: start}
		queue := []node{start}
		var goal *node
		cellAt := func(pi, t int) layout.CellID {
			p := paths[pi]
			if t < len(p) {
				return p[t]
			}
			return p[len(p)-1] // arrived droplets park on their destination
		}
		feasible := func(cell layout.CellID, t int, from layout.CellID) bool {
			if !c.usable(arr, cell) {
				return false
			}
			for pi := range paths {
				// Static spacing at time t.
				if conflictsAt(arr, cell, cellAt(pi, t)) {
					return false
				}
				// Head-on swap between t-1 and t.
				if t > 0 && cellAt(pi, t) == from && cellAt(pi, t-1) == cell {
					return false
				}
			}
			return true
		}
		if !feasible(req.Src, 0, req.Src) {
			return Schedule{}, fmt.Errorf("router: request %q source blocked at t=0", req.Name)
		}
		for len(queue) > 0 && goal == nil {
			cur := queue[0]
			queue = queue[1:]
			if cur.t > limit {
				break
			}
			// Arrived and stays clear forever after? Require clearance
			// against parked earlier droplets.
			if cur.cell == req.Dst {
				ok := true
				for pi := range paths {
					if conflictsAt(arr, cur.cell, cellAt(pi, len(paths[pi])+horizon)) {
						ok = false
						break
					}
				}
				if ok {
					g := cur
					goal = &g
					break
				}
			}
			next := append([]layout.CellID{cur.cell}, arr.Neighbors(cur.cell)...)
			for _, nb := range next {
				key := visitKey{nb, cur.t + 1}
				if _, seen := prev[key]; seen {
					continue
				}
				if cur.t+1 > limit || !feasible(nb, cur.t+1, cur.cell) {
					continue
				}
				prev[key] = cur
				queue = append(queue, node{nb, cur.t + 1})
			}
		}
		if goal == nil {
			return Schedule{}, fmt.Errorf("router: request %q unroutable within %d cycles", req.Name, limit)
		}
		// Reconstruct trajectory.
		traj := make([]layout.CellID, goal.t+1)
		cur := *goal
		for {
			traj[cur.t] = cur.cell
			if cur.t == 0 {
				break
			}
			cur = prev[visitKey{cur.cell, cur.t}]
		}
		paths = append(paths, traj)
		if len(traj) > horizon {
			horizon = len(traj)
		}
		_ = ri
	}

	// Assemble the common timeline.
	sched := Schedule{Requests: reqs, Steps: make([][]layout.CellID, horizon)}
	for t := 0; t < horizon; t++ {
		row := make([]layout.CellID, len(paths))
		for i, p := range paths {
			if t < len(p) {
				row[i] = p[t]
			} else {
				row[i] = p[len(p)-1]
			}
		}
		sched.Steps[t] = row
	}
	return sched, nil
}

// Validate checks a schedule: adjacency of consecutive positions, usable
// cells, pairwise spacing at every time, no swaps, and correct endpoints.
func (s Schedule) Validate(arr *layout.Array, c Constraints) error {
	if len(s.Steps) == 0 {
		return fmt.Errorf("router: empty schedule")
	}
	for i, req := range s.Requests {
		if s.Steps[0][i] != req.Src {
			return fmt.Errorf("router: droplet %d starts at %d, want %d", i, s.Steps[0][i], req.Src)
		}
		if s.Steps[len(s.Steps)-1][i] != req.Dst {
			return fmt.Errorf("router: droplet %d ends at %d, want %d", i, s.Steps[len(s.Steps)-1][i], req.Dst)
		}
	}
	for t, row := range s.Steps {
		for i, cell := range row {
			if !c.usable(arr, cell) {
				return fmt.Errorf("router: t=%d droplet %d on unusable cell %d", t, i, cell)
			}
			if t > 0 {
				from := s.Steps[t-1][i]
				if from != cell {
					adjacent := false
					for _, nb := range arr.Neighbors(from) {
						if nb == cell {
							adjacent = true
							break
						}
					}
					if !adjacent {
						return fmt.Errorf("router: t=%d droplet %d jumps %d -> %d", t, i, from, cell)
					}
				}
			}
			for j := i + 1; j < len(row); j++ {
				if conflictsAt(arr, cell, row[j]) {
					return fmt.Errorf("router: t=%d droplets %d and %d violate spacing", t, i, j)
				}
				if t > 0 && s.Steps[t-1][i] == row[j] && s.Steps[t-1][j] == cell {
					return fmt.Errorf("router: t=%d droplets %d and %d swap", t, i, j)
				}
			}
		}
	}
	return nil
}

// ReachableFrom returns the cells reachable from src under the constraints,
// sorted ascending — the connectivity check used by test planning.
func ReachableFrom(arr *layout.Array, src layout.CellID, c Constraints) []layout.CellID {
	if !c.usable(arr, src) {
		return nil
	}
	seen := map[layout.CellID]bool{src: true}
	queue := []layout.CellID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range arr.Neighbors(cur) {
			if !seen[nb] && c.usable(arr, nb) {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	out := make([]layout.CellID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
