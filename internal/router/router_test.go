package router

import (
	"math/rand"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

func buildArray(t testing.TB) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func pathValid(t *testing.T, arr *layout.Array, path []layout.CellID, c Constraints) {
	t.Helper()
	for i, id := range path {
		if !c.usable(arr, id) {
			t.Fatalf("path cell %d unusable", id)
		}
		if i > 0 {
			ok := false
			for _, nb := range arr.Neighbors(path[i-1]) {
				if nb == id {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("path jumps %d -> %d", path[i-1], id)
			}
		}
	}
}

func TestShortestPathStraightLine(t *testing.T) {
	arr := buildArray(t)
	src := arr.CellAt(arr.Cell(0).Pos)
	dst := layout.CellID(arr.NumCells() - 1)
	path, err := ShortestPath(arr, src, dst, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	pathValid(t, arr, path, Constraints{})
	// On a defect-free array the shortest path length equals hex distance.
	want := arr.Cell(src).Pos.Distance(arr.Cell(dst).Pos) + 1
	if len(path) != want {
		t.Errorf("path length %d, want %d", len(path), want)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Error("endpoints wrong")
	}
}

func TestShortestPathDegenerate(t *testing.T) {
	arr := buildArray(t)
	path, err := ShortestPath(arr, 5, 5, Constraints{})
	if err != nil || len(path) != 1 {
		t.Errorf("self path %v err %v", path, err)
	}
}

func TestShortestPathAvoidsFaults(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	src, dst := layout.CellID(0), layout.CellID(arr.NumCells()-1)
	free, err := ShortestPath(arr, src, dst, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// Fail an interior cell of the free path and re-route.
	fs.MarkFaulty(free[len(free)/2])
	c := Constraints{Faults: fs}
	detour, err := ShortestPath(arr, src, dst, c)
	if err != nil {
		t.Fatal(err)
	}
	pathValid(t, arr, detour, c)
	if len(detour) < len(free) {
		t.Error("detour shorter than free path")
	}
}

func TestShortestPathUnusableEndpoints(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(0)
	c := Constraints{Faults: fs}
	if _, err := ShortestPath(arr, 0, 5, c); err == nil {
		t.Error("faulty source accepted")
	}
	if _, err := ShortestPath(arr, 5, 0, c); err == nil {
		t.Error("faulty destination accepted")
	}
	if _, err := ShortestPath(arr, -1, 5, Constraints{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestNoRouteThroughBlockade(t *testing.T) {
	arr := buildArray(t)
	// Fail an entire row band (r = 5, 6) to cut the parallelogram in two.
	fs := defects.NewFaultSet(arr.NumCells())
	for i := 0; i < arr.NumCells(); i++ {
		r := arr.Cell(layout.CellID(i)).Pos.R
		if r == 5 || r == 6 {
			fs.MarkFaulty(layout.CellID(i))
		}
	}
	var north, south layout.CellID = layout.NoCell, layout.NoCell
	for i := 0; i < arr.NumCells(); i++ {
		r := arr.Cell(layout.CellID(i)).Pos.R
		if r == 0 && north == layout.NoCell {
			north = layout.CellID(i)
		}
		if r == 11 {
			south = layout.CellID(i)
		}
	}
	if _, err := ShortestPath(arr, north, south, Constraints{Faults: fs}); err == nil {
		t.Error("route through blockade accepted")
	}
}

func TestAStarMatchesBFSLength(t *testing.T) {
	arr := buildArray(t)
	rng := rand.New(rand.NewSource(4))
	in := defects.NewInjector(4)
	for trial := 0; trial < 60; trial++ {
		fs := in.Bernoulli(arr, 0.93, nil)
		c := Constraints{Faults: fs}
		src := layout.CellID(rng.Intn(arr.NumCells()))
		dst := layout.CellID(rng.Intn(arr.NumCells()))
		bfsPath, bfsErr := ShortestPath(arr, src, dst, c)
		aPath, aErr := AStarPath(arr, src, dst, c)
		if (bfsErr == nil) != (aErr == nil) {
			t.Fatalf("trial %d: BFS err %v, A* err %v", trial, bfsErr, aErr)
		}
		if bfsErr != nil {
			continue
		}
		if len(bfsPath) != len(aPath) {
			t.Fatalf("trial %d: BFS length %d != A* length %d", trial, len(bfsPath), len(aPath))
		}
		pathValid(t, arr, aPath, c)
	}
}

func TestPrimariesOnlyConstraint(t *testing.T) {
	arr := buildArray(t)
	primaries := arr.Primaries()
	src, dst := primaries[0], primaries[len(primaries)-1]
	c := Constraints{PrimariesOnly: true}
	path, err := ShortestPath(arr, src, dst, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range path {
		if arr.Cell(id).Role != layout.Primary {
			t.Fatalf("path crosses spare %d", id)
		}
	}
}

func TestAllowedMaskConstraint(t *testing.T) {
	arr := buildArray(t)
	allowed := make([]bool, arr.NumCells())
	// Allow only row r=0.
	var rowCells []layout.CellID
	for i := 0; i < arr.NumCells(); i++ {
		if arr.Cell(layout.CellID(i)).Pos.R == 0 {
			allowed[i] = true
			rowCells = append(rowCells, layout.CellID(i))
		}
	}
	c := Constraints{Allowed: allowed}
	path, err := ShortestPath(arr, rowCells[0], rowCells[len(rowCells)-1], c)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range path {
		if !allowed[id] {
			t.Fatalf("path leaves allowed mask at %d", id)
		}
	}
	// A cell outside the mask is unreachable.
	outside := layout.CellID(-1)
	for i := 0; i < arr.NumCells(); i++ {
		if !allowed[i] {
			outside = layout.CellID(i)
			break
		}
	}
	if _, err := ShortestPath(arr, rowCells[0], outside, c); err == nil {
		t.Error("route outside mask accepted")
	}
}

func TestMultiRouteTwoCrossingDroplets(t *testing.T) {
	arr := buildArray(t)
	// Route two droplets with crossing straight lines; the planner must
	// stall or detour to keep spacing.
	reqs := []Request{
		{Name: "west-east", Src: rowCell(t, arr, 5, 0), Dst: rowCell(t, arr, 5, 11)},
		{Name: "east-west", Src: rowCell(t, arr, 7, 11), Dst: rowCell(t, arr, 7, 0)},
	}
	sched, err := MultiRoute(arr, reqs, Constraints{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(arr, Constraints{}); err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() < 11 {
		t.Errorf("makespan %d below single-route distance", sched.Makespan())
	}
}

// rowCell returns the cell at row r, q-index qi of the parallelogram.
func rowCell(t *testing.T, arr *layout.Array, r, qi int) layout.CellID {
	t.Helper()
	for i := 0; i < arr.NumCells(); i++ {
		pos := arr.Cell(layout.CellID(i)).Pos
		if pos.R == r && pos.Q == qi {
			return layout.CellID(i)
		}
	}
	t.Fatalf("no cell at row %d q %d", r, qi)
	return layout.NoCell
}

func TestMultiRouteManyDroplets(t *testing.T) {
	arr := buildArray(t)
	reqs := []Request{
		{Name: "a", Src: rowCell(t, arr, 0, 0), Dst: rowCell(t, arr, 11, 11)},
		{Name: "b", Src: rowCell(t, arr, 0, 11), Dst: rowCell(t, arr, 11, 0)},
		{Name: "c", Src: rowCell(t, arr, 11, 5), Dst: rowCell(t, arr, 0, 5)},
	}
	sched, err := MultiRoute(arr, reqs, Constraints{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(arr, Constraints{}); err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		path := sched.PathOf(i)
		if path[0] != reqs[i].Src || path[len(path)-1] != reqs[i].Dst {
			t.Errorf("droplet %d endpoints wrong", i)
		}
	}
}

func TestMultiRouteValidation(t *testing.T) {
	arr := buildArray(t)
	if _, err := MultiRoute(arr, nil, Constraints{}, 0); err == nil {
		t.Error("empty request list accepted")
	}
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(0)
	reqs := []Request{{Name: "x", Src: 0, Dst: 5}}
	if _, err := MultiRoute(arr, reqs, Constraints{Faults: fs}, 0); err == nil {
		t.Error("faulty source accepted")
	}
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	arr := buildArray(t)
	reqs := []Request{
		{Name: "a", Src: rowCell(t, arr, 0, 0), Dst: rowCell(t, arr, 0, 5)},
	}
	sched, err := MultiRoute(arr, reqs, Constraints{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Teleport mid-schedule.
	if len(sched.Steps) > 2 {
		sched.Steps[1][0] = rowCell(t, arr, 11, 11)
		if err := sched.Validate(arr, Constraints{}); err == nil {
			t.Error("teleporting schedule accepted")
		}
	}
}

func TestReachableFrom(t *testing.T) {
	arr := buildArray(t)
	all := ReachableFrom(arr, 0, Constraints{})
	if len(all) != arr.NumCells() {
		t.Errorf("reachable %d of %d", len(all), arr.NumCells())
	}
	// Cut the array and check the component shrinks.
	fs := defects.NewFaultSet(arr.NumCells())
	for i := 0; i < arr.NumCells(); i++ {
		r := arr.Cell(layout.CellID(i)).Pos.R
		if r == 5 || r == 6 {
			fs.MarkFaulty(layout.CellID(i))
		}
	}
	part := ReachableFrom(arr, 0, Constraints{Faults: fs})
	if len(part) >= arr.NumCells()-2*12 {
		t.Errorf("blockade did not shrink reachability: %d", len(part))
	}
	if ReachableFrom(arr, 0, Constraints{Faults: func() *defects.FaultSet {
		f := defects.NewFaultSet(arr.NumCells())
		f.MarkFaulty(0)
		return f
	}()}) != nil {
		t.Error("faulty source should reach nothing")
	}
}

func BenchmarkShortestPathCaseStudySize(b *testing.B) {
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 14, 25)
	if err != nil {
		b.Fatal(err)
	}
	src, dst := layout.CellID(0), layout.CellID(arr.NumCells()-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShortestPath(arr, src, dst, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAStarCaseStudySize(b *testing.B) {
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 14, 25)
	if err != nil {
		b.Fatal(err)
	}
	src, dst := layout.CellID(0), layout.CellID(arr.NumCells()-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AStarPath(arr, src, dst, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}
