// Package scheduler binds bioassay operations to chip resources over time.
//
// It implements resource-constrained list scheduling: operations become
// ready when their dependencies finish, ready operations are started in
// priority order (critical-path length, ties by ID) whenever a unit of
// their resource class is free. This is the standard architectural-level
// synthesis step for digital microfluidic biochips and is what lets several
// bioassays share one microfluidic array concurrently — the setting the
// paper's case study evaluates.
package scheduler

import (
	"fmt"
	"sort"

	"dmfb/internal/bioassay"
)

// Resources declares how many concurrent units of each resource class the
// chip provides (e.g. 2 mixers, 4 detectors, 4 dispensers).
type Resources map[string]int

// DefaultResources mirrors the case-study chip: four reservoirs, two
// mixers, four optical detectors.
func DefaultResources() Resources {
	return Resources{"dispenser": 4, "mixer": 2, "detector": 4}
}

// Placed is one scheduled operation.
type Placed struct {
	Op    bioassay.Op
	Start int
	End   int
	// Unit is the index of the resource unit used (0-based), -1 if the
	// operation needs no resource.
	Unit int
}

// Schedule is the result of list scheduling.
type Schedule struct {
	Placed   []Placed
	Makespan int
}

// ByID returns the placement of the operation with the given ID.
func (s Schedule) ByID(id int) (Placed, bool) {
	for _, p := range s.Placed {
		if p.Op.ID == id {
			return p, true
		}
	}
	return Placed{}, false
}

// List schedules the operations under the resource constraints and returns
// the full placement. It returns an error on malformed DAGs, unknown
// resources, or cyclic dependencies.
func List(ops []bioassay.Op, res Resources) (Schedule, error) {
	if err := bioassay.ValidateDAG(ops); err != nil {
		return Schedule{}, err
	}
	byID := make(map[int]*bioassay.Op, len(ops))
	for i := range ops {
		byID[ops[i].ID] = &ops[i]
	}
	for _, op := range ops {
		if op.Resource != "" {
			if _, ok := res[op.Resource]; !ok {
				return Schedule{}, fmt.Errorf("scheduler: op %d needs unknown resource %q", op.ID, op.Resource)
			}
		}
	}

	// Critical-path priority: longest path from the op to any sink.
	memo := make(map[int]int, len(ops))
	successors := make(map[int][]int, len(ops))
	for _, op := range ops {
		for _, d := range op.Deps {
			successors[d] = append(successors[d], op.ID)
		}
	}
	var cp func(id int, visiting map[int]bool) (int, error)
	cp = func(id int, visiting map[int]bool) (int, error) {
		if v, ok := memo[id]; ok {
			return v, nil
		}
		if visiting[id] {
			return 0, fmt.Errorf("scheduler: dependency cycle through op %d", id)
		}
		visiting[id] = true
		best := 0
		for _, s := range successors[id] {
			v, err := cp(s, visiting)
			if err != nil {
				return 0, err
			}
			if v > best {
				best = v
			}
		}
		delete(visiting, id)
		memo[id] = best + byID[id].Duration
		return memo[id], nil
	}
	for _, op := range ops {
		if _, err := cp(op.ID, map[int]bool{}); err != nil {
			return Schedule{}, err
		}
	}

	// Event-driven list scheduling.
	remainingDeps := make(map[int]int, len(ops))
	for _, op := range ops {
		remainingDeps[op.ID] = len(op.Deps)
	}
	type unitState struct {
		freeAt []int // per unit, next free time
	}
	units := make(map[string]*unitState, len(res))
	for name, count := range res {
		if count <= 0 {
			return Schedule{}, fmt.Errorf("scheduler: resource %q has %d units", name, count)
		}
		units[name] = &unitState{freeAt: make([]int, count)}
	}

	ready := make([]int, 0, len(ops))
	for _, op := range ops {
		if remainingDeps[op.ID] == 0 {
			ready = append(ready, op.ID)
		}
	}
	depDone := make(map[int]int, len(ops)) // op ID -> earliest start from deps
	placed := make([]Placed, 0, len(ops))
	finishAt := make(map[int]int, len(ops))
	scheduled := make(map[int]bool, len(ops))

	for len(placed) < len(ops) {
		if len(ready) == 0 {
			return Schedule{}, fmt.Errorf("scheduler: deadlock with %d ops left", len(ops)-len(placed))
		}
		// Highest critical path first; ties by lowest ID for determinism.
		sort.Slice(ready, func(i, j int) bool {
			if memo[ready[i]] != memo[ready[j]] {
				return memo[ready[i]] > memo[ready[j]]
			}
			return ready[i] < ready[j]
		})
		id := ready[0]
		ready = ready[1:]
		op := byID[id]

		start := depDone[id]
		unit := -1
		if op.Resource != "" {
			us := units[op.Resource]
			// Earliest-available unit; start no earlier than dependencies.
			bestUnit, bestTime := 0, us.freeAt[0]
			for u, t := range us.freeAt {
				if t < bestTime {
					bestUnit, bestTime = u, t
				}
			}
			if bestTime > start {
				start = bestTime
			}
			us.freeAt[bestUnit] = start + op.Duration
			unit = bestUnit
		}
		end := start + op.Duration
		placed = append(placed, Placed{Op: *op, Start: start, End: end, Unit: unit})
		finishAt[id] = end
		scheduled[id] = true
		for _, s := range successors[id] {
			remainingDeps[s]--
			if end > depDone[s] {
				depDone[s] = end
			}
			if remainingDeps[s] == 0 && !scheduled[s] {
				ready = append(ready, s)
			}
		}
	}

	makespan := 0
	for _, p := range placed {
		if p.End > makespan {
			makespan = p.End
		}
	}
	sort.Slice(placed, func(i, j int) bool {
		if placed[i].Start != placed[j].Start {
			return placed[i].Start < placed[j].Start
		}
		return placed[i].Op.ID < placed[j].Op.ID
	})
	return Schedule{Placed: placed, Makespan: makespan}, nil
}

// Validate checks schedule feasibility: dependency order and resource
// capacity at every instant.
func Validate(s Schedule, ops []bioassay.Op, res Resources) error {
	place := make(map[int]Placed, len(s.Placed))
	for _, p := range s.Placed {
		place[p.Op.ID] = p
	}
	if len(place) != len(ops) {
		return fmt.Errorf("scheduler: %d of %d ops placed", len(place), len(ops))
	}
	for _, op := range ops {
		p := place[op.ID]
		if p.End-p.Start != op.Duration {
			return fmt.Errorf("scheduler: op %d duration %d placed as %d", op.ID, op.Duration, p.End-p.Start)
		}
		for _, d := range op.Deps {
			if place[d].End > p.Start {
				return fmt.Errorf("scheduler: op %d starts at %d before dep %d ends at %d",
					op.ID, p.Start, d, place[d].End)
			}
		}
	}
	// Resource capacity via sweep over start/end events.
	for name, capacity := range res {
		type ev struct{ t, delta int }
		var evs []ev
		for _, p := range s.Placed {
			if p.Op.Resource != name {
				continue
			}
			evs = append(evs, ev{p.Start, 1}, ev{p.End, -1})
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].delta < evs[j].delta // releases before acquisitions
		})
		inUse := 0
		for _, e := range evs {
			inUse += e.delta
			if inUse > capacity {
				return fmt.Errorf("scheduler: resource %q over capacity (%d > %d) at t=%d",
					name, inUse, capacity, e.t)
			}
		}
	}
	return nil
}

// CriticalPathLength returns the unconstrained lower bound on the makespan.
func CriticalPathLength(ops []bioassay.Op) (int, error) {
	if err := bioassay.ValidateDAG(ops); err != nil {
		return 0, err
	}
	finish := make(map[int]int, len(ops))
	// ops are in a valid order only if deps precede; compute iteratively.
	remaining := make([]bioassay.Op, len(ops))
	copy(remaining, ops)
	done := 0
	for len(remaining) > 0 {
		progressed := false
		var next []bioassay.Op
		for _, op := range remaining {
			ok := true
			start := 0
			for _, d := range op.Deps {
				f, computed := finish[d]
				if !computed {
					ok = false
					break
				}
				if f > start {
					start = f
				}
			}
			if !ok {
				next = append(next, op)
				continue
			}
			finish[op.ID] = start + op.Duration
			progressed = true
			done++
		}
		if !progressed {
			return 0, fmt.Errorf("scheduler: cyclic dependencies")
		}
		remaining = next
	}
	best := 0
	for _, f := range finish {
		if f > best {
			best = f
		}
	}
	return best, nil
}
