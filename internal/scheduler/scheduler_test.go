package scheduler

import (
	"testing"

	"dmfb/internal/bioassay"
)

func TestSingleAssaySchedule(t *testing.T) {
	ops, _ := bioassay.Operations("a", 0)
	s, err := List(ops, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(s, ops, DefaultResources()); err != nil {
		t.Fatal(err)
	}
	// With ample resources the makespan equals the critical path.
	cp, err := CriticalPathLength(ops)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != cp {
		t.Errorf("makespan %d, want critical path %d", s.Makespan, cp)
	}
}

func TestMultiplexedWorkloadSchedules(t *testing.T) {
	ops := bioassay.MultiplexedWorkload()
	res := DefaultResources()
	s, err := List(ops, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(s, ops, res); err != nil {
		t.Fatal(err)
	}
	cp, _ := CriticalPathLength(ops)
	if s.Makespan < cp {
		t.Errorf("makespan %d below critical path %d", s.Makespan, cp)
	}
	// 8 assays on 2 mixers: at least 4 mixing waves of 16 cycles each.
	if s.Makespan < 4*16 {
		t.Errorf("makespan %d implausibly small", s.Makespan)
	}
}

func TestResourceContentionSerializes(t *testing.T) {
	ops := bioassay.MultiplexedWorkload()
	tight := Resources{"dispenser": 1, "mixer": 1, "detector": 1}
	sTight, err := List(ops, tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(sTight, ops, tight); err != nil {
		t.Fatal(err)
	}
	ample := Resources{"dispenser": 16, "mixer": 8, "detector": 8}
	sAmple, err := List(ops, ample)
	if err != nil {
		t.Fatal(err)
	}
	if sTight.Makespan <= sAmple.Makespan {
		t.Errorf("tight resources (%d) should be slower than ample (%d)",
			sTight.Makespan, sAmple.Makespan)
	}
	// One mixer forces 8 x 16 cycles of mixing alone.
	if sTight.Makespan < 8*16 {
		t.Errorf("single-mixer makespan %d too small", sTight.Makespan)
	}
}

func TestMoreMixersHelpMonotonically(t *testing.T) {
	ops := bioassay.MultiplexedWorkload()
	prev := 1 << 30
	for mixers := 1; mixers <= 4; mixers++ {
		res := Resources{"dispenser": 4, "mixer": mixers, "detector": 4}
		s, err := List(ops, res)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan > prev {
			t.Errorf("%d mixers gave makespan %d > %d with fewer", mixers, s.Makespan, prev)
		}
		prev = s.Makespan
	}
}

func TestUnknownResourceRejected(t *testing.T) {
	ops := []bioassay.Op{{ID: 0, Kind: bioassay.OpMix, Duration: 5, Resource: "centrifuge"}}
	if _, err := List(ops, DefaultResources()); err == nil {
		t.Error("unknown resource accepted")
	}
}

func TestZeroCapacityRejected(t *testing.T) {
	ops := []bioassay.Op{{ID: 0, Kind: bioassay.OpMix, Duration: 5, Resource: "mixer"}}
	if _, err := List(ops, Resources{"mixer": 0}); err == nil {
		t.Error("zero-capacity resource accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	ops := []bioassay.Op{
		{ID: 0, Duration: 1, Deps: []int{1}},
		{ID: 1, Duration: 1, Deps: []int{0}},
	}
	if _, err := List(ops, DefaultResources()); err == nil {
		t.Error("cyclic DAG accepted")
	}
	if _, err := CriticalPathLength(ops); err == nil {
		t.Error("cyclic DAG accepted by CriticalPathLength")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	ops := bioassay.MultiplexedWorkload()
	a, err := List(ops, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	b, err := List(ops, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || len(a.Placed) != len(b.Placed) {
		t.Fatal("schedule not deterministic")
	}
	for i := range a.Placed {
		pa, pb := a.Placed[i], b.Placed[i]
		if pa.Op.ID != pb.Op.ID || pa.Start != pb.Start || pa.End != pb.End || pa.Unit != pb.Unit {
			t.Fatalf("placement %d differs: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestByID(t *testing.T) {
	ops, _ := bioassay.Operations("a", 0)
	s, err := List(ops, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ByID(0); !ok {
		t.Error("ByID(0) missing")
	}
	if _, ok := s.ByID(999); ok {
		t.Error("ByID(999) should miss")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	ops, _ := bioassay.Operations("a", 0)
	s, err := List(ops, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: start detect before its transport dependency ends.
	bad := s
	bad.Placed = append([]Placed(nil), s.Placed...)
	for i, p := range bad.Placed {
		if p.Op.Kind == bioassay.OpDetect {
			bad.Placed[i].Start = 0
			bad.Placed[i].End = p.Op.Duration
		}
	}
	if err := Validate(bad, ops, DefaultResources()); err == nil {
		t.Error("dependency violation accepted")
	}

	// Over-capacity: schedule all mixes of the multiplexed workload at t=0
	// with one mixer.
	mops := bioassay.MultiplexedWorkload()
	ms, err := List(mops, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	over := ms
	over.Placed = append([]Placed(nil), ms.Placed...)
	if err := Validate(over, mops, Resources{"dispenser": 1, "mixer": 1, "detector": 1}); err == nil {
		t.Error("capacity violation accepted")
	}
}

func BenchmarkListMultiplexed(b *testing.B) {
	ops := bioassay.MultiplexedWorkload()
	res := DefaultResources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := List(ops, res); err != nil {
			b.Fatal(err)
		}
	}
}
