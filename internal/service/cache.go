package service

import (
	"container/list"
	"sync"

	"dmfb/internal/telemetry"
)

// cacheKey identifies one simulation result. Simulations are deterministic
// in these fields (chunk-seeded Monte-Carlo is independent of worker count),
// so equal keys mean equal results and caching is sound. kind separates the
// endpoint namespaces; design is "*" for whole-design-space queries.
type cacheKey struct {
	kind     string
	design   string
	nPrimary int
	p        float64
	runs     int
	seed     int64
	// spare is the boundary spare-row count of shifted-replacement
	// simulations ("shifted" kind); 0 for the interstitial kinds.
	spare int
	// model and clusterSize identify the spatial defect model of sweep
	// points; both zero for the independent-model kinds that predate the
	// defect-model axis ("yield", "recommend").
	model       string
	clusterSize float64
	// epsilon is the precision target of adaptive estimates; 0 for fixed-run
	// requests (including every v1 request), which keeps pre-epsilon keys
	// shared with epsilon-free v2 requests.
	epsilon float64
}

// resultCache is a mutex-guarded LRU of finished responses.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[cacheKey]*list.Element
	hits     uint64
	misses   uint64
	// hitVec/missVec, when attached via instrument, break the counters down
	// by cache namespace for /metrics. peek bypasses both, like the plain
	// counters, so internal double-checks never skew the reported rate.
	hitVec  *telemetry.CounterVec
	missVec *telemetry.CounterVec
}

// cacheEntry is the list-element payload.
type cacheEntry struct {
	key cacheKey
	val any
}

// newResultCache builds an LRU holding at most capacity entries (minimum 1).
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element, capacity),
	}
}

// instrument attaches the per-kind hit/miss counter families.
func (c *resultCache) instrument(hits, misses *telemetry.CounterVec) {
	c.hitVec, c.missVec = hits, misses
}

// Get returns the cached value for k, marking it most recently used.
func (c *resultCache) Get(k cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		if c.missVec != nil {
			c.missVec.With(k.kind).Inc()
		}
		return nil, false
	}
	c.hits++
	if c.hitVec != nil {
		c.hitVec.With(k.kind).Inc()
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// peek is Get without touching the hit/miss counters, for internal
// double-checks that should not skew the reported hit rate.
func (c *resultCache) peek(k cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add stores v under k, evicting the least recently used entry when full.
func (c *resultCache) Add(k cacheKey, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the hit and miss counters.
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
