package service

import "testing"

func key(design string, n int) cacheKey {
	return cacheKey{kind: "yield", design: design, nPrimary: n, p: 0.95, runs: 1000, seed: 1}
}

func TestCacheHitMiss(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.Get(key("a", 1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add(key("a", 1), 42)
	v, ok := c.Get(key("a", 1))
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v, %v; want 42, true", v, ok)
	}
	// Distinct fields must miss: same design, different primaries.
	if _, ok := c.Get(key("a", 2)); ok {
		t.Error("key with different n_primary hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := newResultCache(2)
	c.Add(key("a", 1), 1)
	c.Add(key("a", 1), 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add, want 1", c.Len())
	}
	if v, _ := c.Get(key("a", 1)); v.(int) != 2 {
		t.Errorf("overwrite lost: got %v, want 2", v)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newResultCache(2)
	c.Add(key("a", 1), "a")
	c.Add(key("b", 1), "b")
	// Touch "a" so "b" becomes least recently used.
	if _, ok := c.Get(key("a", 1)); !ok {
		t.Fatal("warm entry missing")
	}
	c.Add(key("c", 1), "c")
	if _, ok := c.Get(key("b", 1)); ok {
		t.Error("LRU entry b not evicted")
	}
	if _, ok := c.Get(key("a", 1)); !ok {
		t.Error("recently used entry a evicted")
	}
	if _, ok := c.Get(key("c", 1)); !ok {
		t.Error("newest entry c evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := newResultCache(0)
	c.Add(key("a", 1), 1)
	c.Add(key("b", 1), 2)
	if c.Len() != 1 {
		t.Errorf("capacity-0 cache holds %d entries, want 1", c.Len())
	}
}
