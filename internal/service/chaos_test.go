package service

// Storage-side chaos: seeded fault schedules against the durable file store.
// The contract mirrors the dispatch chaos suite's — a fault the store cannot
// absorb produces a typed failed/storage terminal state (never a wedged
// store, never silently wrong bytes), and everything the store does persist
// verifies against its CRC seal on replay.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dmfb/internal/faultinject"
)

// metricValue scrapes one unlabeled metric's value from the engine
// registry's exposition text; -1 when the family is absent.
func metricValue(t *testing.T, e *Engine, name string) float64 {
	t.Helper()
	w := httptest.NewRecorder()
	e.Registry().Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(w.Body.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("unparseable metric line %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

func waitTerminalState(t *testing.T, j *Job) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job never reached a terminal state: %v", err)
	}
	return st
}

// TestChaosStoreAppendTornWrite tears the third result append mid-record:
// the job must fail with reason=storage and a counted write error, and a
// restart must truncate the torn tail back to the verified prefix while
// preserving the typed failure.
func TestChaosStoreAppendTornWrite(t *testing.T) {
	dir := t.TempDir()
	req := durableSweepReq()
	golden := runGolden(t, req)
	inj := faultinject.New(11).Arm(faultinject.StoreAppendWrite, faultinject.Rule{Hits: []int{3}})
	e := durableEngine()
	s, err := NewFileJobStore(e, JobStoreConfig{Inject: inj}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s)
	j, err := s.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminalState(t, j)
	if st.State != JobFailed || st.Reason != ReasonStorage {
		t.Fatalf("torn append: state=%q reason=%q, want failed/storage (%+v)", st.State, st.Reason, st)
	}
	if !strings.Contains(st.Error, "persist result record") {
		t.Errorf("error %q does not name the failed persist", st.Error)
	}
	if v := metricValue(t, e, "dmfb_store_write_errors_total"); v < 1 {
		t.Errorf("dmfb_store_write_errors_total = %v, want >= 1", v)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart without chaos: the torn tail fails its CRC and is truncated;
	// the two committed records replay byte-identical to the golden prefix.
	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if st2.State != JobFailed || st2.Reason != ReasonStorage {
		t.Fatalf("replayed torn job: state=%q reason=%q, want failed/storage", st2.State, st2.Reason)
	}
	if st2.PointsDone != 2 {
		t.Errorf("PointsDone = %d after replay, want 2 (the committed prefix)", st2.PointsDone)
	}
	got := streamBytes(t, j2, 0)
	lines := bytes.SplitAfter(golden, []byte("\n"))
	if prefix := bytes.Join(lines[:2], nil); !bytes.HasPrefix(got, prefix) {
		t.Error("replayed records diverge from the golden prefix")
	}
	if !bytes.Contains(got, []byte(`"error"`)) {
		t.Error("failed job's stream lacks the terminal error line")
	}
}

// TestChaosStoreENOSPCNotWedged fails the very first append with a no-space
// error: that job fails with reason=storage, but the store itself keeps
// accepting and completing jobs.
func TestChaosStoreENOSPCNotWedged(t *testing.T) {
	dir := t.TempDir()
	req := durableSweepReq()
	golden := runGolden(t, req)
	inj := faultinject.New(12).Arm(faultinject.StoreAppendENOSPC, faultinject.Rule{Hits: []int{1}})
	s, err := NewFileJobStore(durableEngine(), JobStoreConfig{Inject: inj}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	waitStoreReady(t, s)
	j1, err := s.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminalState(t, j1)
	if st1.State != JobFailed || st1.Reason != ReasonStorage {
		t.Fatalf("ENOSPC job: state=%q reason=%q, want failed/storage", st1.State, st1.Reason)
	}
	if st1.PointsDone != 0 {
		t.Errorf("PointsDone = %d, want 0 (append failed before any byte)", st1.PointsDone)
	}
	// The store is not wedged: the next job runs to completion.
	j2, err := s.Create(context.Background(), req)
	if err != nil {
		t.Fatalf("create after ENOSPC: %v", err)
	}
	if st2 := waitTerminalState(t, j2); st2.State != JobCompleted {
		t.Fatalf("job after ENOSPC: %+v", st2)
	}
	if got := streamBytes(t, j2, 0); !bytes.Equal(got, golden) {
		t.Error("post-ENOSPC job diverges from golden")
	}
}

// TestChaosManifestWriteFailureSurfacesOnCreate fails the first manifest
// save: Create itself errors with the injected fault (no half-born job), and
// the store keeps working afterwards.
func TestChaosManifestWriteFailureSurfacesOnCreate(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(13).Arm(faultinject.StoreManifestWrite, faultinject.Rule{Hits: []int{1}})
	e := durableEngine()
	s, err := NewFileJobStore(e, JobStoreConfig{Inject: inj}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	waitStoreReady(t, s)
	if _, err := s.Create(context.Background(), durableSweepReq()); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("create under manifest fault: err = %v, want ErrInjected", err)
	}
	if v := metricValue(t, e, "dmfb_store_write_errors_total"); v < 1 {
		t.Errorf("dmfb_store_write_errors_total = %v, want >= 1", v)
	}
	j, err := s.Create(context.Background(), durableSweepReq())
	if err != nil {
		t.Fatalf("create after manifest fault: %v", err)
	}
	if st := waitTerminalState(t, j); st.State != JobCompleted {
		t.Fatalf("job after manifest fault: %+v", st)
	}
}

// TestChaosReplayCorruptionDemotesJob completes a job cleanly, then replays
// it through a bit-flipping read: the CRC chain no longer matches the sealed
// manifest, so the job is demoted to failed/storage with a diagnostic — and
// the demotion itself is durable across a further clean restart.
func TestChaosReplayCorruptionDemotesJob(t *testing.T) {
	dir := t.TempDir()
	req := durableSweepReq()
	s1, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminalState(t, j); st.State != JobCompleted {
		t.Fatalf("seed job: %+v", st)
	}
	total := j.Status().TotalPoints
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(14).Arm(faultinject.StoreReplayCorrupt, faultinject.Rule{Hits: []int{1}})
	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{Inject: inj}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s2)
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if st2.State != JobFailed || st2.Reason != ReasonStorage {
		t.Fatalf("corrupted replay: state=%q reason=%q, want failed/storage", st2.State, st2.Reason)
	}
	if !strings.Contains(st2.Error, "failed verification") {
		t.Errorf("error %q does not name the verification failure", st2.Error)
	}
	if st2.PointsDone >= total {
		t.Errorf("PointsDone = %d, want < %d (corrupted suffix truncated)", st2.PointsDone, total)
	}
	if err := s2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The demotion was persisted: a clean restart still sees failed/storage.
	s3, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close(context.Background())
	waitStoreReady(t, s3)
	j3, err := s3.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st3 := j3.Status(); st3.State != JobFailed || st3.Reason != ReasonStorage {
		t.Fatalf("demotion not durable: state=%q reason=%q", st3.State, st3.Reason)
	}
}

// TestDurableReplayBitFlippedTrailingRecord flips one bit inside the last
// committed record of a crashed running job: replay must detect the CRC
// mismatch, truncate that record away, re-evaluate it, and still produce the
// golden bytes — corruption of a resumable job costs recomputation, never
// correctness.
func TestDurableReplayBitFlippedTrailingRecord(t *testing.T) {
	dir := t.TempDir()
	req := durableSlowReq()
	golden := runGolden(t, req)
	s1, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitPointsDone(t, j, 2)
	s1.crashForTest()

	log := filepath.Join(dir, j.ID(), "results.ndjson")
	raw, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatalf("result log tail not newline-terminated (%d bytes)", len(raw))
	}
	start := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	if len(raw)-start <= recordCRCLen+2 {
		t.Fatalf("last record too short to corrupt: %d bytes", len(raw)-start)
	}
	raw[start+recordCRCLen+1] ^= 0x01 // one bit inside the JSON payload
	if err := os.WriteFile(log, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j2.Wait(ctx)
	if err != nil || st.State != JobCompleted {
		t.Fatalf("resumed job: %+v, %v", st, err)
	}
	if got := streamBytes(t, j2, 0); !bytes.Equal(got, golden) {
		t.Fatalf("resumed stream differs from golden: %d bytes vs %d", len(got), len(golden))
	}
	assertCursorSuffixes(t, j2, golden)
}

// TestDurableReplayInterruptedManifestRename covers the tmp+rename seam: a
// job directory holding only a manifest tmp (the rename never happened) is
// skipped and its tmp removed, while a stale tmp beside a committed manifest
// loses to the committed copy and is cleaned up.
func TestDurableReplayInterruptedManifestRename(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), durableSweepReq())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminalState(t, j); st.State != JobCompleted {
		t.Fatalf("seed job: %+v", st)
	}
	want := streamBytes(t, j, 0)
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	orphan := filepath.Join(dir, "job-9")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	orphanTmp := filepath.Join(orphan, "manifest.json.tmp")
	if err := os.WriteFile(orphanTmp, []byte(`{"id":"job-9","state":"comple`), 0o644); err != nil {
		t.Fatal(err)
	}
	staleTmp := filepath.Join(dir, j.ID(), "manifest.json.tmp")
	if err := os.WriteFile(staleTmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	if _, err := s2.Get("job-9"); err == nil {
		t.Error("job with only an uncommitted manifest tmp was resurrected")
	}
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); st.State != JobCompleted {
		t.Fatalf("committed job lost to a stale tmp: %+v", st)
	}
	if got := streamBytes(t, j2, 0); !bytes.Equal(got, want) {
		t.Error("replayed stream differs after tmp cleanup")
	}
	for _, p := range []string{orphanTmp, staleTmp} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived replay, want removed", p)
		}
	}
}
