package service

import (
	"context"
	"errors"
)

// ErrPoisonShard tags a distributed job that was terminated because one of
// its shards exhausted its dispatch budget: every worker that leased the
// shard crashed, stalled past its lease, or submitted garbage. Rather than
// redispatch the shard forever — burning the whole fleet on one poisoned
// unit of work — the coordinator quarantines it and fails the job with this
// typed, persisted diagnosis (JobStatus.Reason == "poison_shard").
var ErrPoisonShard = errors.New("shard quarantined: dispatch budget exhausted")

// DistributedRunner executes one sweep job across remote workers. The job
// store calls RunJob instead of the local engine when a job opted into
// distributed mode; the runner partitions the plan's grid into shards,
// leases them to registered workers, and must invoke emit with every record
// of [start, NumPoints) strictly in grid-point order — exactly the contract
// of the local sweep runner, which is what keeps the job's NDJSON stream
// byte-identical to single-process execution at every cursor.
//
// internal/dispatch.Coordinator is the canonical implementation; the
// interface lives here so the service layer never imports the dispatch
// package (dispatch already imports service for the wire types).
type DistributedRunner interface {
	// RunJob evaluates plan's points [start, NumPoints) through remote
	// workers and emits their records in index order. req must carry fully
	// resolved simulation parameters (the runner forwards it to workers,
	// whose engine defaults may differ). RunJob returns after the final
	// record is emitted, or with ctx's error on cancellation.
	RunJob(ctx context.Context, jobID string, plan *SweepPlan, req SweepRequest, start int, emit func(SweepRecord) error) error
	// Stats snapshots the runner's lifetime shard and worker accounting.
	Stats() DispatchStats
}

// DispatchStats aggregates a distributed runner's accounting for /v1/stats.
type DispatchStats struct {
	// ShardsLeased counts leases handed to workers (redispatches included).
	ShardsLeased uint64
	// ShardsCompleted counts shards whose results were accepted and merged.
	ShardsCompleted uint64
	// ShardsExpired counts leases reclaimed after missed heartbeats.
	ShardsExpired uint64
	// ShardsQuarantined counts shards that exhausted their dispatch budget
	// and terminated their job with ErrPoisonShard.
	ShardsQuarantined uint64
	// Retries counts shard redispatches: every lease grant of a shard past
	// its first (expiry reclaims and rejected submissions both cause these).
	Retries uint64
	// WorkersActive counts workers seen within the liveness window.
	WorkersActive int
}

// Worker wire types. These are the bodies of the POST /v2/workers/*
// endpoints the dispatch coordinator serves and the dtmb-worker binary
// calls (through the client package, which aliases them). They live in the
// service package with the rest of the wire contracts so client, dispatch,
// and service share one set of types without an import cycle.

// WorkerRegisterRequest announces a worker to the coordinator.
type WorkerRegisterRequest struct {
	// Name is a human-readable worker label for logs and stats; the
	// coordinator assigns the authoritative worker ID.
	Name string `json:"name,omitempty"`
}

// WorkerRegisterResponse is the coordinator's registration receipt.
type WorkerRegisterResponse struct {
	// WorkerID identifies the worker on every subsequent call.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is the lease time-to-live; a worker must heartbeat
	// well inside it (TTL/3 is the convention) or its shard is redispatched.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// LeaseRequest asks the coordinator for one shard of work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// ShardLease is one unit of leased work: a contiguous, index-ordered slice
// [start, end) of a job's deterministic grid. The embedded request carries
// fully resolved simulation parameters (runs, seed, epsilon) and ChunkSize
// pins the kernel's work-unit size, so the worker's evaluation is
// bit-identical to the coordinator evaluating the same points locally.
type ShardLease struct {
	LeaseID string `json:"lease_id"`
	JobID   string `json:"job_id"`
	Shard   int    `json:"shard"`
	// Start and End bound the shard's grid-point indices: [start, end).
	Start int `json:"start"`
	End   int `json:"end"`
	// Request is the job's sweep request with resolved parameters; the
	// worker re-plans it (grid expansion is deterministic) and evaluates
	// points [start, end).
	Request SweepRequest `json:"request"`
	// ChunkSize is the coordinator's Monte-Carlo chunk size — part of the
	// determinism contract, so it must override the worker's own default.
	ChunkSize int `json:"chunk_size,omitempty"`
	// TTLMillis echoes the lease time-to-live for heartbeat pacing.
	TTLMillis int64 `json:"ttl_ms"`
}

// HeartbeatRequest renews a lease. A 410 response means the lease is gone
// (expired and redispatched, or its job cancelled): the worker should abort
// the shard's evaluation.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
}

// ShardResultRequest submits a completed shard's records, in index order.
// Submission is idempotent and at-least-once: a late submission from an
// expired lease is accepted if the shard is still unfinished (the kernel is
// deterministic, so every evaluation of a shard yields identical records)
// and ignored if a twin already completed it.
type ShardResultRequest struct {
	WorkerID string        `json:"worker_id"`
	LeaseID  string        `json:"lease_id"`
	JobID    string        `json:"job_id"`
	Shard    int           `json:"shard"`
	Records  []SweepRecord `json:"records"`
}
