package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmfb/internal/faultinject"
)

// jobManifest is the durable snapshot of one job's identity and lifecycle,
// written as <dir>/<id>/manifest.json. The request is stored verbatim so a
// restarted coordinator can re-plan the sweep (grid expansion is
// deterministic) and resume evaluation at the first index missing from the
// result log.
type jobManifest struct {
	ID          string       `json:"id"`
	State       JobState     `json:"state"`
	Error       string       `json:"error,omitempty"`
	Reason      string       `json:"reason,omitempty"`
	TotalPoints int          `json:"total_points"`
	CreatedAt   time.Time    `json:"created_at"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	Request     SweepRequest `json:"request"`
	// ResultRecords and ResultsCRC seal a terminal job's result log: the
	// number of committed records and the rolling CRC32C over their payloads,
	// filled in by the file persister at the terminal manifest save. Replay
	// re-derives both from the log; a mismatch on a completed job means the
	// log was corrupted or truncated after the fact, and the job is demoted
	// to failed/storage instead of served with silently wrong bytes.
	ResultRecords int    `json:"result_records,omitempty"`
	ResultsCRC    string `json:"results_crc,omitempty"`
}

// persistedJob is one job recovered from disk: its manifest plus every
// complete NDJSON line of its result log (a trailing partial line from a
// crash mid-write is truncated away, and re-evaluated on resume).
type persistedJob struct {
	manifest jobManifest
	lines    [][]byte
}

// jobPersister is the pluggable durability backend of a job store: the
// in-memory store uses the no-op nullPersister, the durable store a
// filePersister. Implementations are called with the owning job's mutex
// released but from at most one goroutine per job (the job runner), plus
// the store's eviction path for remove.
type jobPersister interface {
	// saveManifest durably records a job's manifest (at creation and at
	// every terminal transition), replacing any previous one atomically.
	saveManifest(m jobManifest) error
	// appendResult durably appends one encoded NDJSON line to the job's
	// result log before the line becomes visible to streams, so a crash
	// never loses a record a client may already have read.
	appendResult(id string, line []byte) error
	// finishResults releases the job's open result-log handle (the job
	// reached a terminal state and will append no more lines).
	finishResults(id string)
	// remove deletes every on-disk artifact of an evicted job.
	remove(id string) error
	// diskBytes reports the bytes currently held on disk across all jobs.
	diskBytes() int64
	// load recovers every persisted job, in creation (sequence) order.
	load() ([]persistedJob, error)
	// close releases all open handles.
	close()
}

// nullPersister backs the pure in-memory store: persistence is a no-op and
// replay finds nothing.
type nullPersister struct{}

func (nullPersister) saveManifest(jobManifest) error    { return nil }
func (nullPersister) appendResult(string, []byte) error { return nil }
func (nullPersister) finishResults(string)              {}
func (nullPersister) remove(string) error               { return nil }
func (nullPersister) diskBytes() int64                  { return 0 }
func (nullPersister) load() ([]persistedJob, error)     { return nil, nil }
func (nullPersister) close()                            {}

// filePersister is the durable backend: one directory per job holding
// manifest.json (atomically replaced via rename) and results.ndjson
// (append-only, fsync per record). Byte accounting is maintained
// incrementally so the dmfb_job_store_disk_bytes gauge is O(1) to scrape.
//
// Each result-log line carries a CRC32C of its payload ("crc8hex payload\n")
// and the persister keeps a rolling CRC chain plus record count per job,
// sealed into the manifest at the terminal save. The checksums live only on
// disk: callers hand in and get back pure JSON payloads, so the bytes served
// to streams are exactly the bytes the evaluation emitted.
type filePersister struct {
	dir    string
	inject *faultinject.Injector // fault schedule; nil disables chaos

	mu           sync.Mutex
	files        map[string]*os.File // open result logs of running jobs
	sizes        map[string]int64    // manifest + result bytes per job
	manifestSize map[string]int64    // manifest share of sizes, for rewrites
	logSize      map[string]int64    // committed result-log bytes, for torn-write rollback
	crcs         map[string]uint32   // rolling CRC32C chain over committed payloads
	counts       map[string]int      // committed record count per job
	crashed      bool                // test hook: simulate SIGKILL (drop all writes)
}

// newFilePersister prepares the backend rooted at dir, creating it if
// needed.
func newFilePersister(dir string) (*filePersister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: job store dir: %w", err)
	}
	return &filePersister{
		dir:          dir,
		files:        make(map[string]*os.File),
		sizes:        make(map[string]int64),
		manifestSize: make(map[string]int64),
		logSize:      make(map[string]int64),
		crcs:         make(map[string]uint32),
		counts:       make(map[string]int),
	}, nil
}

// crcTable is the Castagnoli polynomial used for result-log checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRCLen is the per-line overhead: 8 hex chars + one space.
const recordCRCLen = 9

// encodeRecordLine prefixes a payload with its CRC32C for the on-disk log.
func encodeRecordLine(payload []byte) []byte {
	out := make([]byte, 0, recordCRCLen+len(payload))
	out = fmt.Appendf(out, "%08x ", crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// decodeRecordLine splits a disk line into its verified payload. The payload
// keeps its trailing newline. Returns false when the prefix is malformed or
// the checksum does not match.
func decodeRecordLine(line []byte) (payload []byte, ok bool) {
	if len(line) <= recordCRCLen || line[recordCRCLen-1] != ' ' {
		return nil, false
	}
	var sum [4]byte
	if _, err := hex.Decode(sum[:], line[:8]); err != nil {
		return nil, false
	}
	payload = line[recordCRCLen:]
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if crc32.Checksum(payload, crcTable) != want {
		return nil, false
	}
	return payload, true
}

func (p *filePersister) jobDir(id string) string { return filepath.Join(p.dir, id) }

// saveManifest writes the manifest via tmp-file + fsync + rename, so a
// crash leaves either the old or the new manifest, never a torn one. At a
// terminal save it seals the result log: record count and rolling CRC go
// into the manifest so replay can prove the log complete and uncorrupted.
func (p *filePersister) saveManifest(m jobManifest) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil
	}
	if d := p.inject.Eval(faultinject.StoreManifestWrite); d.Fire {
		return d.Err
	}
	if m.State.terminal() {
		m.ResultRecords = p.counts[m.ID]
		m.ResultsCRC = fmt.Sprintf("%08x", p.crcs[m.ID])
	}
	dir := p.jobDir(m.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(dir, "manifest.json.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, "manifest.json")
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(dir)
	// Manifest rewrites replace the old bytes; adjust the delta only.
	p.sizes[m.ID] += int64(len(buf)) - p.manifestSize[m.ID]
	p.manifestSize[m.ID] = int64(len(buf))
	return nil
}

// appendResult appends one CRC-prefixed line to the job's result log and
// fsyncs before returning — the commit point that makes a record durable.
// On any failure past the first byte the log is rolled back to its last
// committed length, so a failed append never leaves a half-record that a
// reader could mistake for progress (a torn tail from a genuine crash is
// instead caught by the newline/CRC scan on replay).
func (p *filePersister) appendResult(id string, line []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil
	}
	if d := p.inject.Eval(faultinject.StoreAppendENOSPC); d.Fire {
		return fmt.Errorf("%w: no space left on device", d.Err)
	}
	f, ok := p.files[id]
	if !ok {
		var err error
		f, err = os.OpenFile(filepath.Join(p.jobDir(id), "results.ndjson"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		p.files[id] = f
		if off, err := f.Seek(0, io.SeekEnd); err == nil {
			p.logSize[id] = off
		}
	}
	disk := encodeRecordLine(line)
	if d := p.inject.Eval(faultinject.StoreAppendWrite); d.Fire {
		// Torn write: a prefix of the record reaches the disk, then the
		// write errors. Deliberately not rolled back — this is the injected
		// analog of a crash mid-write, which replay must truncate away.
		_, _ = f.Write(disk[:len(disk)/2])
		return d.Err
	}
	if _, err := f.Write(disk); err != nil {
		_ = f.Truncate(p.logSize[id])
		return err
	}
	if d := p.inject.Eval(faultinject.StoreAppendFsync); d.Fire {
		_ = f.Truncate(p.logSize[id])
		return d.Err
	}
	if err := f.Sync(); err != nil {
		_ = f.Truncate(p.logSize[id])
		return err
	}
	p.sizes[id] += int64(len(disk))
	p.logSize[id] += int64(len(disk))
	p.crcs[id] = crc32.Update(p.crcs[id], crcTable, line)
	p.counts[id]++
	return nil
}

// finishResults closes the job's result log; the job is terminal.
func (p *filePersister) finishResults(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.files[id]; ok {
		f.Close()
		delete(p.files, id)
	}
}

// remove deletes the job's directory (manifest and result log).
func (p *filePersister) remove(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil
	}
	if f, ok := p.files[id]; ok {
		f.Close()
		delete(p.files, id)
	}
	delete(p.sizes, id)
	delete(p.manifestSize, id)
	delete(p.logSize, id)
	delete(p.crcs, id)
	delete(p.counts, id)
	return os.RemoveAll(p.jobDir(id))
}

// diskBytes reports the bytes held on disk across all retained jobs.
func (p *filePersister) diskBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, n := range p.sizes {
		total += n
	}
	return total
}

// load scans the store directory and recovers every job, truncating the
// result log to its last checksum-verified record (a torn or bit-flipped
// tail left by a crash or disk fault is dropped and, for running jobs,
// re-evaluated on resume). A completed job whose log no longer matches the
// count and rolling CRC sealed in its manifest is demoted to failed/storage
// — corruption becomes a typed terminal error, never silently wrong bytes.
// Jobs whose manifest is unreadable are skipped (their directories are left
// in place for operator inspection); load fails only on I/O errors reading
// the root.
func (p *filePersister) load() ([]persistedJob, error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("service: job store scan: %w", err)
	}
	var jobs []persistedJob
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		// A leftover manifest.json.tmp means the atomic replace was
		// interrupted between write and rename; the committed manifest (if
		// any) is authoritative, the tmp is garbage.
		_ = os.Remove(filepath.Join(p.jobDir(id), "manifest.json.tmp"))
		raw, err := os.ReadFile(filepath.Join(p.jobDir(id), "manifest.json"))
		if err != nil {
			continue // no manifest (crash before first save, or foreign dir)
		}
		var m jobManifest
		if err := json.Unmarshal(raw, &m); err != nil || m.ID != id {
			continue // torn or foreign manifest; leave for inspection
		}
		lines, chain, valid, err := p.readResultLog(filepath.Join(p.jobDir(id), "results.ndjson"))
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.manifestSize[id] = int64(len(raw))
		p.sizes[id] = int64(len(raw)) + valid
		p.logSize[id] = valid
		p.crcs[id] = chain
		p.counts[id] = len(lines)
		p.mu.Unlock()
		if m.State == JobCompleted && m.ResultsCRC != "" {
			gotCRC := fmt.Sprintf("%08x", chain)
			if m.ResultRecords != len(lines) || m.ResultsCRC != gotCRC {
				m.Error = fmt.Sprintf(
					"result log failed verification on replay: manifest sealed %d records (crc %s), log has %d verified records (crc %s)",
					m.ResultRecords, m.ResultsCRC, len(lines), gotCRC)
				m.State = JobFailed
				m.Reason = ReasonStorage
				// Persist the demotion so the diagnosis survives the next
				// restart too (best effort: the job is already failed in
				// memory even if this write loses a race with the disk).
				_ = p.saveManifest(m)
			}
		}
		jobs = append(jobs, persistedJob{manifest: m, lines: lines})
	}
	sort.Slice(jobs, func(i, j int) bool {
		return jobSeq(jobs[i].manifest.ID) < jobSeq(jobs[j].manifest.ID)
	})
	return jobs, nil
}

// close releases every open result-log handle.
func (p *filePersister) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.files {
		f.Close()
		delete(p.files, id)
	}
}

// crashForTest simulates a SIGKILL: every subsequent write is silently
// dropped and open handles are released, so a second store can be opened on
// the same directory and observe exactly the state an abrupt process death
// would have left.
func (p *filePersister) crashForTest() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed = true
	for id, f := range p.files {
		f.Close()
		delete(p.files, id)
	}
}

// readResultLog reads a result log back as verified payloads: each disk
// line must be newline-terminated and pass its CRC32C check. The scan stops
// at the first bad line — torn by a crash, bit-flipped by the disk, or
// flipped by the store.replay.corrupt injection — and the file is truncated
// to the verified prefix, so an interrupted or corrupted append never
// poisons a later resume (the lost records are re-evaluated instead).
// Returns the payloads (pure JSON, CRC prefixes stripped), the rolling CRC
// chain over them, and the verified on-disk byte count. A missing file is
// an empty log.
func (p *filePersister) readResultLog(path string) (lines [][]byte, chain uint32, validBytes int64, err error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("service: job result log: %w", err)
	}
	if d := p.inject.Eval(faultinject.StoreReplayCorrupt); d.Fire && len(raw) > 0 {
		raw[len(raw)/2] ^= 0x04 // simulated disk corruption mid-log
	}
	var valid int64
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := raw[off : off+nl+1]
		payload, ok := decodeRecordLine(line)
		if !ok {
			break // malformed prefix or checksum mismatch
		}
		lines = append(lines, payload)
		chain = crc32.Update(chain, crcTable, payload)
		off += nl + 1
		valid = int64(off)
	}
	if valid < int64(len(raw)) {
		if err := os.Truncate(path, valid); err != nil {
			return nil, 0, 0, fmt.Errorf("service: truncate unverified records: %w", err)
		}
	}
	return lines, chain, valid, nil
}

// jobSeq extracts the numeric sequence of a "job-N" ID (0 when malformed),
// used to restore creation order and to seed the ID counter past every
// replayed job.
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// syncDir best-effort fsyncs a directory so a rename within it is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
