package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// jobManifest is the durable snapshot of one job's identity and lifecycle,
// written as <dir>/<id>/manifest.json. The request is stored verbatim so a
// restarted coordinator can re-plan the sweep (grid expansion is
// deterministic) and resume evaluation at the first index missing from the
// result log.
type jobManifest struct {
	ID          string       `json:"id"`
	State       JobState     `json:"state"`
	Error       string       `json:"error,omitempty"`
	TotalPoints int          `json:"total_points"`
	CreatedAt   time.Time    `json:"created_at"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	Request     SweepRequest `json:"request"`
}

// persistedJob is one job recovered from disk: its manifest plus every
// complete NDJSON line of its result log (a trailing partial line from a
// crash mid-write is truncated away, and re-evaluated on resume).
type persistedJob struct {
	manifest jobManifest
	lines    [][]byte
}

// jobPersister is the pluggable durability backend of a job store: the
// in-memory store uses the no-op nullPersister, the durable store a
// filePersister. Implementations are called with the owning job's mutex
// released but from at most one goroutine per job (the job runner), plus
// the store's eviction path for remove.
type jobPersister interface {
	// saveManifest durably records a job's manifest (at creation and at
	// every terminal transition), replacing any previous one atomically.
	saveManifest(m jobManifest) error
	// appendResult durably appends one encoded NDJSON line to the job's
	// result log before the line becomes visible to streams, so a crash
	// never loses a record a client may already have read.
	appendResult(id string, line []byte) error
	// finishResults releases the job's open result-log handle (the job
	// reached a terminal state and will append no more lines).
	finishResults(id string)
	// remove deletes every on-disk artifact of an evicted job.
	remove(id string) error
	// diskBytes reports the bytes currently held on disk across all jobs.
	diskBytes() int64
	// load recovers every persisted job, in creation (sequence) order.
	load() ([]persistedJob, error)
	// close releases all open handles.
	close()
}

// nullPersister backs the pure in-memory store: persistence is a no-op and
// replay finds nothing.
type nullPersister struct{}

func (nullPersister) saveManifest(jobManifest) error    { return nil }
func (nullPersister) appendResult(string, []byte) error { return nil }
func (nullPersister) finishResults(string)              {}
func (nullPersister) remove(string) error               { return nil }
func (nullPersister) diskBytes() int64                  { return 0 }
func (nullPersister) load() ([]persistedJob, error)     { return nil, nil }
func (nullPersister) close()                            {}

// filePersister is the durable backend: one directory per job holding
// manifest.json (atomically replaced via rename) and results.ndjson
// (append-only, fsync per record). Byte accounting is maintained
// incrementally so the dmfb_job_store_disk_bytes gauge is O(1) to scrape.
type filePersister struct {
	dir string

	mu           sync.Mutex
	files        map[string]*os.File // open result logs of running jobs
	sizes        map[string]int64    // manifest + result bytes per job
	manifestSize map[string]int64    // manifest share of sizes, for rewrites
	crashed      bool                // test hook: simulate SIGKILL (drop all writes)
}

// newFilePersister prepares the backend rooted at dir, creating it if
// needed.
func newFilePersister(dir string) (*filePersister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: job store dir: %w", err)
	}
	return &filePersister{
		dir:          dir,
		files:        make(map[string]*os.File),
		sizes:        make(map[string]int64),
		manifestSize: make(map[string]int64),
	}, nil
}

func (p *filePersister) jobDir(id string) string { return filepath.Join(p.dir, id) }

// saveManifest writes the manifest via tmp-file + fsync + rename, so a
// crash leaves either the old or the new manifest, never a torn one.
func (p *filePersister) saveManifest(m jobManifest) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil
	}
	dir := p.jobDir(m.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(dir, "manifest.json.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, "manifest.json")
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(dir)
	// Manifest rewrites replace the old bytes; adjust the delta only.
	p.sizes[m.ID] += int64(len(buf)) - p.manifestSize[m.ID]
	p.manifestSize[m.ID] = int64(len(buf))
	return nil
}

// appendResult appends one line to the job's result log and fsyncs before
// returning — the commit point that makes a record durable.
func (p *filePersister) appendResult(id string, line []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil
	}
	f, ok := p.files[id]
	if !ok {
		var err error
		f, err = os.OpenFile(filepath.Join(p.jobDir(id), "results.ndjson"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		p.files[id] = f
	}
	if _, err := f.Write(line); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	p.sizes[id] += int64(len(line))
	return nil
}

// finishResults closes the job's result log; the job is terminal.
func (p *filePersister) finishResults(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.files[id]; ok {
		f.Close()
		delete(p.files, id)
	}
}

// remove deletes the job's directory (manifest and result log).
func (p *filePersister) remove(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil
	}
	if f, ok := p.files[id]; ok {
		f.Close()
		delete(p.files, id)
	}
	delete(p.sizes, id)
	delete(p.manifestSize, id)
	return os.RemoveAll(p.jobDir(id))
}

// diskBytes reports the bytes held on disk across all retained jobs.
func (p *filePersister) diskBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, n := range p.sizes {
		total += n
	}
	return total
}

// load scans the store directory and recovers every job, truncating any
// partial trailing result line left by a crash mid-append. Jobs whose
// manifest is unreadable are skipped (their directories are left in place
// for operator inspection); load fails only on I/O errors reading the root.
func (p *filePersister) load() ([]persistedJob, error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("service: job store scan: %w", err)
	}
	var jobs []persistedJob
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		raw, err := os.ReadFile(filepath.Join(p.jobDir(id), "manifest.json"))
		if err != nil {
			continue // no manifest (crash before first save, or foreign dir)
		}
		var m jobManifest
		if err := json.Unmarshal(raw, &m); err != nil || m.ID != id {
			continue // torn or foreign manifest; leave for inspection
		}
		lines, valid, err := readResultLog(filepath.Join(p.jobDir(id), "results.ndjson"))
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.manifestSize[id] = int64(len(raw))
		p.sizes[id] = int64(len(raw)) + valid
		p.mu.Unlock()
		jobs = append(jobs, persistedJob{manifest: m, lines: lines})
	}
	sort.Slice(jobs, func(i, j int) bool {
		return jobSeq(jobs[i].manifest.ID) < jobSeq(jobs[j].manifest.ID)
	})
	return jobs, nil
}

// close releases every open result-log handle.
func (p *filePersister) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.files {
		f.Close()
		delete(p.files, id)
	}
}

// crashForTest simulates a SIGKILL: every subsequent write is silently
// dropped and open handles are released, so a second store can be opened on
// the same directory and observe exactly the state an abrupt process death
// would have left.
func (p *filePersister) crashForTest() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed = true
	for id, f := range p.files {
		f.Close()
		delete(p.files, id)
	}
}

// readResultLog reads the complete NDJSON lines of a result log, truncating
// the file past the last newline so an interrupted append never corrupts a
// later resume (the half-written record is re-evaluated instead). A missing
// file is an empty log.
func readResultLog(path string) (lines [][]byte, validBytes int64, err error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: job result log: %w", err)
	}
	valid := bytes.LastIndexByte(raw, '\n') + 1 // 0 when no complete line
	if valid < len(raw) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, 0, fmt.Errorf("service: truncate partial record: %w", err)
		}
	}
	for _, l := range bytes.SplitAfter(raw[:valid], []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines, int64(valid), nil
}

// jobSeq extracts the numeric sequence of a "job-N" ID (0 when malformed),
// used to restore creation order and to seed the ID counter past every
// replayed job.
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// syncDir best-effort fsyncs a directory so a rename within it is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
