package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// durableSweepReq is the struct form of jobSweepBody: a 16-point grid
// spanning every strategy and both defect models, cheap enough to finish in
// well under a second.
func durableSweepReq() SweepRequest {
	return SweepRequest{
		Strategies:   []string{"none", "local", "shifted", "hex"},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{40},
		Ps:           []float64{0.9, 0.95},
		SpareRows:    []int{1},
		DefectModels: []string{"independent", "clustered"},
		ClusterSize:  4,
		Runs:         150,
		Seed:         11,
	}
}

// durableSlowReq is a grid heavy enough (24 points × 15000 runs) that a
// test reliably observes it mid-flight, yet completes in a few seconds once
// resumed.
func durableSlowReq() SweepRequest {
	return SweepRequest{
		Strategies:   []string{"local", "hex"},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{100},
		PMin:         0.90,
		PMax:         0.99,
		PPoints:      12,
		DefectModels: []string{"independent"},
		Runs:         15000,
		Seed:         3,
	}
}

// durableEngine builds a fresh engine with the defaults the durable tests
// share, so golden and restarted runs resolve identical simulation
// parameters.
func durableEngine() *Engine {
	return NewEngine(EngineConfig{DefaultRuns: 150, CacheSize: 256})
}

// waitStoreReady blocks until the store finishes its replay scan.
func waitStoreReady(t *testing.T, s *Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("store never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// streamBytes drains a job's full result stream from the given cursor.
func streamBytes(t *testing.T, j *Job, cursor int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var buf bytes.Buffer
	if _, err := j.StreamResults(ctx, cursor, func(line []byte) error {
		_, err := buf.Write(line)
		return err
	}); err != nil {
		t.Fatalf("stream from cursor %d: %v", cursor, err)
	}
	return buf.Bytes()
}

// runGolden evaluates req on a fresh in-memory store and returns the
// finished job's exact stream bytes — the single-process reference every
// durable or distributed run must reproduce.
func runGolden(t *testing.T, req SweepRequest) []byte {
	t.Helper()
	s := NewJobStore(durableEngine(), JobStoreConfig{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("golden store close: %v", err)
		}
	}()
	req.Distributed = false
	j, err := s.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil || st.State != JobCompleted {
		t.Fatalf("golden job: %+v, %v", st, err)
	}
	return streamBytes(t, j, 0)
}

// waitPointsDone polls until the job has emitted at least n records.
func waitPointsDone(t *testing.T, j *Job, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for j.Status().PointsDone < n {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %d points, want >= %d", j.Status().PointsDone, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertCursorSuffixes checks the byte-identity contract at several cursors:
// the stream from cursor k must be the exact suffix of the golden stream
// after its first k lines.
func assertCursorSuffixes(t *testing.T, j *Job, golden []byte) {
	t.Helper()
	lines := bytes.SplitAfter(golden, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for _, cursor := range []int{0, 1, len(lines) / 2, len(lines) - 1, len(lines)} {
		if cursor < 0 {
			continue
		}
		want := bytes.Join(lines[cursor:], nil)
		if got := streamBytes(t, j, cursor); !bytes.Equal(got, want) {
			t.Fatalf("cursor %d: stream diverges from golden\n got %d bytes\nwant %d bytes", cursor, len(got), len(want))
		}
	}
}

func TestFileStoreRestartServesFinishedJob(t *testing.T) {
	dir := t.TempDir()
	e1 := durableEngine()
	s1, err := NewFileJobStore(e1, JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), durableSweepReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, err := j.Wait(ctx); err != nil || st.State != JobCompleted {
		t.Fatalf("job: %+v, %v", st, err)
	}
	want := streamBytes(t, j, 0)
	if s1.DiskBytes() <= int64(len(want)) {
		t.Errorf("DiskBytes = %d, want > %d (results + manifest)", s1.DiskBytes(), len(want))
	}
	// The disk gauge is registered on the engine's registry.
	mw := httptest.NewRecorder()
	e1.Registry().Handler().ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mw.Body.String(), "dmfb_job_store_disk_bytes") {
		t.Error("metrics exposition lacks dmfb_job_store_disk_bytes")
	}
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A new store on the same directory serves the job without recomputing.
	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if st.State != JobCompleted || st.PointsDone != 16 || st.TotalPoints != 16 {
		t.Fatalf("replayed status %+v", st)
	}
	if got := streamBytes(t, j2, 0); !bytes.Equal(got, want) {
		t.Fatalf("replayed stream differs: %d bytes vs %d", len(got), len(want))
	}
	// The ID sequence is seeded past replayed jobs.
	j3, err := s2.Create(context.Background(), durableSweepReq())
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID() == j.ID() {
		t.Fatalf("new job reused replayed ID %s", j.ID())
	}
}

func TestFileStoreGracefulShutdownResumesRunningJob(t *testing.T) {
	dir := t.TempDir()
	req := durableSlowReq()
	golden := runGolden(t, req)

	s1, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitPointsDone(t, j, 2)
	// Graceful shutdown interrupts the job but must NOT persist a terminal
	// cancellation the client never asked for.
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j2.Wait(ctx)
	if err != nil || st.State != JobCompleted {
		t.Fatalf("resumed job: %+v, %v", st, err)
	}
	if got := streamBytes(t, j2, 0); !bytes.Equal(got, golden) {
		t.Fatalf("resumed stream differs from golden: %d bytes vs %d", len(got), len(golden))
	}
	assertCursorSuffixes(t, j2, golden)
}

func TestFileStoreCrashResumesAndTruncatesPartialLine(t *testing.T) {
	dir := t.TempDir()
	req := durableSlowReq()
	golden := runGolden(t, req)

	s1, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitPointsDone(t, j, 2)
	// SIGKILL: no terminal state reaches disk, handles drop mid-flight.
	s1.crashForTest()
	// Simulate death mid-append on top of it: a torn half-record at the log
	// tail must be truncated away and re-evaluated on resume.
	log := filepath.Join(dir, j.ID(), "results.ndjson")
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":999,"yield":0.5`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	j2, err := s2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j2.Wait(ctx)
	if err != nil || st.State != JobCompleted {
		t.Fatalf("crash-resumed job: %+v, %v", st, err)
	}
	if got := streamBytes(t, j2, 0); !bytes.Equal(got, golden) {
		t.Fatalf("crash-resumed stream differs from golden: %d bytes vs %d", len(got), len(golden))
	}
	assertCursorSuffixes(t, j2, golden)
}

func TestFileStoreEvictionRemovesDiskArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileJobStore(durableEngine(), JobStoreConfig{MaxJobs: 2}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	waitStoreReady(t, s)

	ids := make([]string, 0, 3)
	req := durableSweepReq()
	for i := 0; i < 3; i++ {
		req.Seed = int64(100 + i) // distinct jobs, no cache interference
		j, err := s.Create(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if st, err := j.Wait(ctx); err != nil || st.State != JobCompleted {
			cancel()
			t.Fatalf("job %d: %+v, %v", i, st, err)
		}
		cancel()
		ids = append(ids, j.ID())
	}
	// Creating the third job evicted the oldest finished one — including its
	// on-disk artifacts, so retention bounds hold across restarts.
	if _, err := s.Get(ids[0]); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("evicted job lookup: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ids[0])); !os.IsNotExist(err) {
		t.Fatalf("evicted job directory still on disk: %v", err)
	}
	if s.Evictions() == 0 {
		t.Error("eviction counter not incremented")
	}

	// A restart replays only the retained jobs and keeps honoring the bound.
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileJobStore(durableEngine(), JobStoreConfig{MaxJobs: 2}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	waitStoreReady(t, s2)
	if _, err := s2.Get(ids[1]); err != nil {
		t.Errorf("retained job %s missing after restart: %v", ids[1], err)
	}
	if _, err := s2.Get(ids[2]); err != nil {
		t.Errorf("retained job %s missing after restart: %v", ids[2], err)
	}
	if got := s2.DiskBytes(); got <= 0 {
		t.Errorf("DiskBytes after restart = %d, want > 0", got)
	}
}

func TestFileStoreReadinessGate(t *testing.T) {
	dir := t.TempDir()
	// Seed the directory with one finished job.
	s1, err := NewFileJobStore(durableEngine(), JobStoreConfig{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitStoreReady(t, s1)
	j, err := s1.Create(context.Background(), durableSweepReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, err := j.Wait(ctx); err != nil || st.State != JobCompleted {
		t.Fatalf("seed job: %+v, %v", st, err)
	}
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	e := durableEngine()
	s2, err := newFileJobStore(e, JobStoreConfig{}, dir, gate)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	mux := NewMux(e, s2)

	// While the replay is gated: not ready, 503 from the readiness probe and
	// from job creation/lookup — but liveness stays 200.
	if s2.Ready() {
		t.Fatal("store ready before replay")
	}
	if w := doJSON(t, mux, http.MethodGet, "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during replay = %d", w.Code)
	}
	if w := doJSON(t, mux, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("/healthz during replay = %d", w.Code)
	}
	if _, err := s2.Create(context.Background(), durableSweepReq()); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Create during replay: %v", err)
	}
	if _, err := s2.Get(j.ID()); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Get during replay: %v", err)
	}

	close(gate)
	waitStoreReady(t, s2)
	if w := doJSON(t, mux, http.MethodGet, "/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("/readyz after replay = %d", w.Code)
	}
	if _, err := s2.Get(j.ID()); err != nil {
		t.Fatalf("Get after replay: %v", err)
	}
}

func TestSweepRejectsDistributedWithoutRunner(t *testing.T) {
	mux, _ := testJobMux(t, EngineConfig{DefaultRuns: 150}, JobStoreConfig{})
	body := `{"strategies":["local"],"designs":["DTMB(2,6)"],"n_primaries":[40],"ps":[0.95],"runs":150,"seed":1,"distributed":true}`
	// Synchronous /v1/sweep never accepts distributed mode.
	if w := doJSON(t, mux, http.MethodPost, "/v1/sweep", body); w.Code != http.StatusBadRequest {
		t.Errorf("/v1/sweep distributed = %d, want 400", w.Code)
	}
	// /v2/jobs rejects it when no dispatch runner is configured.
	if w := doJSON(t, mux, http.MethodPost, "/v2/jobs", body); w.Code != http.StatusBadRequest {
		t.Errorf("/v2/jobs distributed without runner = %d, want 400", w.Code)
	}
}
