package service

import (
	"context"
	"errors"
	"log/slog"
	"sync/atomic"
	"time"

	"dmfb/internal/core"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/sweep"
	"dmfb/internal/telemetry"
)

// EngineConfig tunes the batched simulation engine. The zero value gives
// sensible defaults.
type EngineConfig struct {
	// CacheSize bounds the LRU result cache; 0 means 1024 entries.
	CacheSize int
	// DefaultRuns is the Monte-Carlo run count for requests that omit runs;
	// 0 means the paper's 10000.
	DefaultRuns int
	// Workers bounds per-simulation parallelism; 0 means GOMAXPROCS. It does
	// not affect results — the chunk-seeded kernel is worker-independent.
	Workers int
	// ChunkSize is the Monte-Carlo work-unit size; 0 means
	// yieldsim.DefaultChunkSize. Part of the determinism contract: change it
	// and cached results for the same seed change.
	ChunkSize int
	// MaxConcurrent bounds simulations executing at once; excess requests
	// queue on the semaphore (respecting cancellation). 0 means 2: each
	// simulation already fans out across GOMAXPROCS workers, so a small
	// admission bound keeps cores saturated without heavy oversubscription,
	// while a lone request still uses the whole machine.
	MaxConcurrent int
	// Registry receives every engine instrument — kernel, cache, admission,
	// flight, and job series — and backs GET /metrics. nil leaves the
	// instruments unregistered (they still count, nothing is exposed).
	Registry *telemetry.Registry
	// Logger is handed to every Monte-Carlo kernel the engine builds; at
	// debug level the kernel emits per-chunk span events carrying the
	// request's trace ID. nil disables kernel spans.
	Logger *slog.Logger
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultRuns <= 0 {
		c.DefaultRuns = 10000
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Engine executes yield-analysis requests: a bounded admission semaphore in
// front of the chunked Monte-Carlo kernel, an LRU cache over finished
// results, and single-flight deduplication so concurrent identical requests
// share one computation.
type Engine struct {
	cfg     EngineConfig
	cache   *resultCache
	flights *flightGroup
	sem     chan struct{}
	metrics *serviceMetrics
	logger  *slog.Logger

	inFlight      atomic.Int64
	sharedFlights atomic.Uint64
	completed     atomic.Uint64
	start         time.Time
}

// NewEngine builds an engine from the config.
func NewEngine(cfg EngineConfig) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		metrics: newServiceMetrics(cfg.Registry),
		logger:  cfg.Logger,
		start:   time.Now(),
	}
	e.cache.instrument(e.metrics.cacheHits, e.metrics.cacheMisses)
	// Callback series read the counters the engine already maintains, so
	// /metrics and /v1/stats report from one source of truth.
	r := cfg.Registry
	r.GaugeFunc("dmfb_simulations_in_flight",
		"Simulations currently executing.",
		func() float64 { return float64(e.inFlight.Load()) })
	r.CounterFunc("dmfb_simulations_completed_total",
		"Simulations actually executed (cache misses that ran).",
		func() float64 { return float64(e.completed.Load()) })
	r.CounterFunc("dmfb_flight_shared_total",
		"Requests that piggybacked on an identical in-flight computation.",
		func() float64 { return float64(e.sharedFlights.Load()) })
	r.GaugeFunc("dmfb_cache_entries",
		"Entries currently held by the result cache.",
		func() float64 { return float64(e.cache.Len()) })
	r.Gauge("dmfb_cache_capacity",
		"Configured result-cache capacity.").Set(int64(cfg.CacheSize))
	r.GaugeFunc("dmfb_uptime_seconds",
		"Seconds since the engine was constructed.",
		func() float64 { return time.Since(e.start).Seconds() })
	return e
}

// Registry exposes the engine's metric registry (backing GET /metrics).
func (e *Engine) Registry() *telemetry.Registry { return e.metrics.registry }

// simParams assembles the core simulation parameters for a request, wiring
// in the engine's kernel instrumentation and logger. epsilon > 0 makes the
// simulation precision-targeted with runs as the trial budget; v1 endpoints
// pass 0 (fixed-run, bit-identical to the pre-epsilon engine).
func (e *Engine) simParams(runs int, seed int64, epsilon float64) core.SimParams {
	if runs <= 0 {
		runs = e.cfg.DefaultRuns
	}
	return core.SimParams{
		Runs:      runs,
		Seed:      seed,
		Workers:   e.cfg.Workers,
		ChunkSize: e.cfg.ChunkSize,
		Epsilon:   epsilon,
		Metrics:   e.metrics.kernel,
		Logger:    e.logger,
	}
}

// acquire admits one simulation, waiting for a semaphore slot. Every
// admission observes its queue wait (uncontended admissions record ~0), so
// the wait histogram's count doubles as the admission count.
func (e *Engine) acquire(ctx context.Context) error {
	// A pre-cancelled context must not win a race against a free slot.
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	select {
	case e.sem <- struct{}{}:
		e.metrics.admissionWait.Observe(time.Since(start).Seconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// flightResult wraps a flight's value with its provenance, so a leader that
// found a just-cached result still reports it as cache-served.
type flightResult struct {
	val       any
	fromCache bool
}

// cachedCompute serves key from the cache or runs compute exactly once
// across concurrent identical requests, caching its result. The cached flag
// reports whether the caller's response came from the cache (directly, by
// sharing another request's flight, or by winning a flight whose result a
// previous leader had just cached).
//
// The shared computation runs under the leader's context: if the leader's
// client disconnects, followers retry and one of them restarts the
// simulation. That trades wasted work under disconnect churn for the
// property that a simulation with no live waiters never burns CPU; a
// refcounted detached context could rescue near-finished work but is not
// worth the complexity at current workloads.
func (e *Engine) cachedCompute(ctx context.Context, key cacheKey, compute func() (any, error)) (val any, cached bool, err error) {
	lookup := e.cache.Get
	for {
		if v, ok := lookup(key); ok {
			return v, true, nil
		}
		// Retries after a cancelled leader are the same logical request;
		// don't let them re-count a cache miss.
		lookup = e.cache.peek
		v, err, shared := e.flights.Do(ctx, key, func() (any, error) {
			// A previous leader may have cached the result between our cache
			// miss and winning this flight; don't re-run the simulation (and
			// don't double-count this request in the hit/miss stats).
			if v, ok := e.cache.peek(key); ok {
				return flightResult{val: v, fromCache: true}, nil
			}
			if err := e.acquire(ctx); err != nil {
				return nil, err
			}
			defer e.release()
			e.inFlight.Add(1)
			defer e.inFlight.Add(-1)
			v, err := compute()
			if err != nil {
				return nil, err
			}
			e.completed.Add(1)
			e.cache.Add(key, v)
			return flightResult{val: v}, nil
		})
		if shared {
			// A follower inherits the leader's error; if the leader was
			// cancelled but we were not, retry rather than surface a
			// cancellation the client never asked for.
			if err != nil && isContextErr(err) && ctx.Err() == nil {
				continue
			}
			// Count only flights that delivered a shared outcome — not a
			// follower surfacing its own cancellation.
			if err == nil || !isContextErr(err) {
				e.sharedFlights.Add(1)
			}
		}
		if err != nil {
			return nil, false, err
		}
		fr := v.(flightResult)
		return fr.val, shared || fr.fromCache, nil
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// yieldResponse converts a core analysis to the wire type.
func yieldResponse(ya core.YieldAnalysis, runs int, seed int64) YieldResponse {
	return YieldResponse{
		Design:         ya.Design,
		NPrimary:       ya.NPrimary,
		NTotal:         ya.NTotal,
		P:              ya.P,
		Runs:           runs,
		Seed:           seed,
		Yield:          ya.Yield,
		CILo:           ya.CILo,
		CIHi:           ya.CIHi,
		EffectiveYield: ya.EffectiveYield,
		NoRedundancy:   ya.NoRedundancy,
	}
}

// yieldResponseOf converts an evaluated local-strategy scenario to the v1
// wire type; with analysisPointResult it round-trips exactly (the wire type
// simply never carries the success count), which is what keeps the v1
// adapter byte-identical to the pre-scenario handlers.
func yieldResponseOf(res sweep.PointResult) YieldResponse {
	return YieldResponse{
		Design:         res.Design,
		NPrimary:       res.NPrimary,
		NTotal:         res.NTotal,
		P:              res.P,
		Runs:           res.Runs,
		Seed:           res.Seed,
		Yield:          res.Yield,
		CILo:           res.CILo,
		CIHi:           res.CIHi,
		EffectiveYield: res.EffectiveYield,
		NoRedundancy:   res.NoRedundancy,
		Cached:         res.Cached,
	}
}

// analysisPointResult converts a core yield analysis to the scenario-core
// result type the "yield" cache namespace stores. Built from the analysis —
// not the v1 wire response — so the raw success count survives into the
// cache (the v1 wire type never carried it).
func analysisPointResult(ya core.YieldAnalysis, seed int64) sweep.PointResult {
	return sweep.PointResult{
		Point: sweep.Point{Scenario: sweep.Scenario{
			Strategy:    sweep.Local,
			Design:      ya.Design,
			NPrimary:    ya.NPrimary,
			P:           ya.P,
			DefectModel: sweep.Independent,
		}},
		NTotal:         ya.NTotal,
		Runs:           ya.Runs,
		Seed:           seed,
		Successes:      ya.Successes,
		Yield:          ya.Yield,
		CILo:           ya.CILo,
		CIHi:           ya.CIHi,
		EffectiveYield: ya.EffectiveYield,
		NoRedundancy:   ya.NoRedundancy,
	}
}

// Yield estimates one design's yield, serving repeats from the cache. It is
// a thin adapter over the scenario core: a /v1/yield request is exactly the
// local-strategy, independent-model scenario of its parameters.
func (e *Engine) Yield(ctx context.Context, req YieldRequest) (YieldResponse, error) {
	if err := req.validate(); err != nil {
		return YieldResponse{}, err
	}
	design, err := resolveDesign(req.Design)
	if err != nil {
		return YieldResponse{}, err
	}
	sp := e.simParams(req.Runs, req.Seed, 0)
	if err := validateWork(sp.Runs, req.NPrimary); err != nil {
		return YieldResponse{}, err
	}
	res, err := e.evalScenario(ctx, sweep.Scenario{
		Strategy:    sweep.Local,
		Design:      design.Name,
		NPrimary:    req.NPrimary,
		P:           req.P,
		DefectModel: sweep.Independent,
	}, sp)
	if err != nil {
		return YieldResponse{}, err
	}
	return yieldResponseOf(res), nil
}

// Recommend evaluates all canonical designs and names the effective-yield
// winner — identical inputs return exactly what core.RecommendDesign does.
func (e *Engine) Recommend(ctx context.Context, req RecommendRequest) (RecommendResponse, error) {
	if err := req.validate(); err != nil {
		return RecommendResponse{}, err
	}
	sp := e.simParams(req.Runs, req.Seed, 0)
	// A recommendation simulates every canonical design, so the work cap
	// applies to the whole fan-out, not a single design's share.
	if err := validateWork(sp.Runs*len(layout.AllDesigns()), req.NPrimary); err != nil {
		return RecommendResponse{}, err
	}
	key := cacheKey{kind: "recommend", design: "*", nPrimary: req.NPrimary, p: req.P, runs: sp.Runs, seed: sp.Seed}
	v, cached, err := e.cachedCompute(ctx, key, func() (any, error) {
		// req is fully validated above; any failure here (array construction
		// or simulation on canonical designs) is a server-side error.
		rec, err := core.RecommendDesignContext(ctx, req.P, req.NPrimary, sp)
		if err != nil {
			return nil, err
		}
		resp := RecommendResponse{Best: rec.Best.Name}
		for _, ya := range rec.Analyses {
			yr := yieldResponse(ya, sp.Runs, sp.Seed)
			resp.Analyses = append(resp.Analyses, yr)
			if yr.Design == resp.Best {
				resp.BestEffectiveYield = yr.EffectiveYield
			}
			// Prime the per-design yield cache: drilling into one design
			// after a recommendation is the natural next request, and the
			// simulation parameters are identical. The namespace stores
			// scenario-core results, so convert before seeding.
			e.cache.Add(cacheKey{kind: "yield", design: yr.Design, nPrimary: req.NPrimary, p: req.P, runs: sp.Runs, seed: sp.Seed}, analysisPointResult(ya, sp.Seed))
		}
		return resp, nil
	})
	if err != nil {
		return RecommendResponse{}, err
	}
	resp := v.(RecommendResponse)
	resp.Cached = cached
	return resp, nil
}

// Reconfigure computes a local-reconfiguration plan for an explicit fault
// list. It is pure matching (no Monte-Carlo) and uncacheable in practice
// (fault lists rarely repeat), but at the admissible extremes (n_primary up
// to MaxNPrimary) matching is not cheap, so it still goes through the
// admission semaphore.
func (e *Engine) Reconfigure(ctx context.Context, req ReconfigureRequest) (ReconfigureResponse, error) {
	if err := req.validate(); err != nil {
		return ReconfigureResponse{}, err
	}
	design, err := resolveDesign(req.Design)
	if err != nil {
		return ReconfigureResponse{}, err
	}
	if err := e.acquire(ctx); err != nil {
		return ReconfigureResponse{}, err
	}
	defer e.release()
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	chip, err := core.New(design, req.NPrimary)
	if err != nil {
		return ReconfigureResponse{}, err
	}
	n := chip.Array().NumCells()
	ids := make([]layout.CellID, 0, len(req.FaultyCells))
	for _, c := range req.FaultyCells {
		if c < 0 || c >= n {
			return ReconfigureResponse{}, invalidf("faulty cell %d out of range [0,%d)", c, n)
		}
		ids = append(ids, layout.CellID(c))
	}
	if err := chip.SetFaulty(ids...); err != nil {
		return ReconfigureResponse{}, invalidf("%v", err)
	}
	plan, err := chip.Reconfigure()
	if err != nil {
		return ReconfigureResponse{}, err
	}
	return reconfigureResponse(plan, n), nil
}

// reconfigureResponse converts a reconfig.Plan to the wire type.
func reconfigureResponse(plan reconfig.Plan, nTotal int) ReconfigureResponse {
	resp := ReconfigureResponse{
		OK:              plan.OK,
		Assignments:     make([]Assignment, 0, len(plan.Assignments)),
		FaultyPrimaries: plan.FaultyPrimaries,
		FaultySpares:    plan.FaultySpares,
		NTotal:          nTotal,
	}
	for _, a := range plan.Assignments {
		resp.Assignments = append(resp.Assignments, Assignment{Faulty: int(a.Faulty), Spare: int(a.Spare)})
	}
	for _, id := range plan.Unmatched {
		resp.Unmatched = append(resp.Unmatched, int(id))
	}
	for _, id := range plan.HallWitness {
		resp.HallWitness = append(resp.HallWitness, int(id))
	}
	return resp
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() StatsResponse {
	hits, misses := e.cache.Stats()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return StatsResponse{
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheHitRate:  rate,
		CacheSize:     e.cache.Len(),
		CacheCapacity: e.cfg.CacheSize,
		InFlight:      e.inFlight.Load(),
		SharedFlights: e.sharedFlights.Load(),
		Completed:     e.completed.Load(),
		UptimeSeconds: time.Since(e.start).Seconds(),

		KernelTrials:             e.metrics.kernel.Trials.Value(),
		KernelAllHealthy:         e.metrics.kernel.AllHealthy.Value(),
		KernelMatcherInvocations: e.metrics.kernel.MatcherInvocations.Value(),
		KernelChunks:             e.metrics.kernel.ChunkSeconds.Count(),
		KernelEarlyStops:         e.metrics.kernel.EarlyStops.Value(),

		AdmissionWaits:            e.metrics.admissionWait.Count(),
		AdmissionWaitSecondsTotal: e.metrics.admissionWait.Sum(),
	}
}

// DefaultRuns exposes the engine's default run count (for logs and tools).
func (e *Engine) DefaultRuns() int { return e.cfg.DefaultRuns }
