package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dmfb/internal/core"
)

// testEngine uses small run counts so tests stay fast.
func testEngine(cacheSize int) *Engine {
	return NewEngine(EngineConfig{CacheSize: cacheSize, DefaultRuns: 500})
}

func yieldReq() YieldRequest {
	return YieldRequest{Design: "DTMB(2,6)", NPrimary: 60, P: 0.95, Runs: 500, Seed: 7}
}

func TestEngineYieldMatchesCore(t *testing.T) {
	e := testEngine(8)
	req := yieldReq()
	got, err := e.Yield(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	design, err := resolveDesign(req.Design)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := core.New(design, req.NPrimary)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chip.AnalyzeYield(req.P, req.Runs, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Yield != want.Yield || got.EffectiveYield != want.EffectiveYield {
		t.Errorf("engine yield %v/%v differs from core %v/%v",
			got.Yield, got.EffectiveYield, want.Yield, want.EffectiveYield)
	}
}

func TestEngineRecommendMatchesCore(t *testing.T) {
	e := testEngine(8)
	req := RecommendRequest{P: 0.95, NPrimary: 60, Runs: 400, Seed: 11}
	got, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RecommendDesign(req.P, req.NPrimary, req.Runs, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best != want.Best.Name {
		t.Errorf("engine recommends %q, core recommends %q", got.Best, want.Best.Name)
	}
	if len(got.Analyses) != len(want.Analyses) {
		t.Fatalf("analysis count %d vs %d", len(got.Analyses), len(want.Analyses))
	}
	for i, a := range got.Analyses {
		if a.Yield != want.Analyses[i].Yield {
			t.Errorf("analysis %d yield %v vs core %v", i, a.Yield, want.Analyses[i].Yield)
		}
	}
}

func TestRecommendPrimesPerDesignYieldCache(t *testing.T) {
	e := testEngine(16)
	req := RecommendRequest{P: 0.95, NPrimary: 60, Runs: 400, Seed: 11}
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Drilling into any analyzed design with identical parameters must be a
	// cache hit, not a recomputation.
	computed := e.Stats().Completed
	for _, a := range rec.Analyses {
		resp, err := e.Yield(context.Background(), YieldRequest{
			Design: a.Design, NPrimary: req.NPrimary, P: req.P, Runs: req.Runs, Seed: req.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			t.Errorf("%s: follow-up yield not served from cache", a.Design)
		}
		if resp.Yield != a.Yield {
			t.Errorf("%s: cached yield %v differs from recommend analysis %v", a.Design, resp.Yield, a.Yield)
		}
	}
	if got := e.Stats().Completed; got != computed {
		t.Errorf("follow-up yields ran %d extra simulations", got-computed)
	}
}

func TestEngineYieldCaching(t *testing.T) {
	e := testEngine(8)
	first, err := e.Yield(context.Background(), yieldReq())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	second, err := e.Yield(context.Background(), yieldReq())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat request not served from cache")
	}
	if second.Yield != first.Yield {
		t.Errorf("cached yield %v differs from computed %v", second.Yield, first.Yield)
	}
	st := e.Stats()
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st.Completed)
	}
	if st.CacheHits == 0 {
		t.Error("cache hits not counted")
	}

	// A different seed is a different result and must recompute.
	other := yieldReq()
	other.Seed = 8
	resp, err := e.Yield(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("different seed served from cache")
	}
}

func TestEngineCacheEvictionRecomputes(t *testing.T) {
	e := testEngine(1) // room for exactly one result
	a := yieldReq()
	b := yieldReq()
	b.P = 0.9
	if _, err := e.Yield(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Yield(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Yield(context.Background(), a) // evicted by b
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("evicted entry served from cache")
	}
	if got := e.Stats().Completed; got != 3 {
		t.Errorf("Completed = %d, want 3 (a, b, a-again)", got)
	}
}

func TestEngineSingleFlightCollapsesConcurrentRequests(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 8, DefaultRuns: 4000, MaxConcurrent: 32})
	req := YieldRequest{Design: "DTMB(3,6)", NPrimary: 100, P: 0.95, Runs: 4000, Seed: 3}

	const callers = 16
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		resps [callers]YieldResponse
		errs  [callers]error
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resps[i], errs[i] = e.Yield(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if resps[i].Yield != resps[0].Yield {
			t.Errorf("caller %d yield %v differs from %v", i, resps[i].Yield, resps[0].Yield)
		}
	}
	// Whether a caller joined the flight or arrived after completion and hit
	// the cache, the simulation must have executed exactly once.
	if got := e.Stats().Completed; got != 1 {
		t.Errorf("Completed = %d, want 1 — single-flight failed to collapse", got)
	}
}

func TestFlightFollowerHonorsOwnCancellation(t *testing.T) {
	g := newFlightGroup()
	k := key("a", 1)
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = g.Do(context.Background(), k, func() (any, error) {
			close(leaderStarted)
			<-release
			return "slow", nil
		})
	}()
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err, shared := g.Do(ctx, k, func() (any, error) { return "never", nil })
		if !shared {
			t.Error("follower did not share the leader's flight")
		}
		followerDone <- err
	}()
	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower still blocked on the leader after its own cancellation")
	}
	close(release)
	<-leaderDone
}

func TestFlightPanicReleasesWaitersAndKey(t *testing.T) {
	g := newFlightGroup()
	k := key("a", 1)
	leaderStarted := make(chan struct{})

	followerDone := make(chan struct{})
	var followerErr error
	var followerShared bool
	go func() {
		defer close(followerDone)
		<-leaderStarted
		// Joins the in-flight call (or, if the leader already panicked,
		// starts a fresh one — both must terminate promptly).
		_, followerErr, followerShared = g.Do(context.Background(), k, func() (any, error) { return "follower", nil })
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic swallowed instead of propagating")
			}
		}()
		_, _, _ = g.Do(context.Background(), k, func() (any, error) {
			close(leaderStarted)
			time.Sleep(100 * time.Millisecond) // let the follower join the flight
			panic("boom")
		})
	}()

	select {
	case <-followerDone:
		// A sharing follower must see the panic surfaced as an error, never
		// a nil result with a nil error; a non-sharing late follower
		// legitimately computes its own nil-error result.
		if followerShared && followerErr == nil {
			t.Error("follower shared a panicked flight but got a nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower still blocked after leader panicked")
	}
	// The key must be usable again, not poisoned by the dead flight.
	v, err, _ := g.Do(context.Background(), k, func() (any, error) { return "recovered", nil })
	if err != nil || v.(string) != "recovered" {
		t.Errorf("key poisoned after panic: v=%v err=%v", v, err)
	}
}

func TestEngineCancelledContext(t *testing.T) {
	e := testEngine(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Yield(ctx, yieldReq()); !errors.Is(err, context.Canceled) {
		t.Errorf("Yield with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.Recommend(ctx, RecommendRequest{P: 0.9, NPrimary: 30, Runs: 100}); !errors.Is(err, context.Canceled) {
		t.Errorf("Recommend with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.Reconfigure(ctx, ReconfigureRequest{Design: "dtmb26", NPrimary: 30}); !errors.Is(err, context.Canceled) {
		t.Errorf("Reconfigure with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// A failed computation must not be cached: retry with a live context.
	resp, err := e.Yield(context.Background(), yieldReq())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("cancelled attempt left a cache entry")
	}
}

func TestEngineValidation(t *testing.T) {
	e := testEngine(8)
	ctx := context.Background()
	cases := []YieldRequest{
		{Design: "", NPrimary: 60, P: 0.95},
		{Design: "DTMB(9,9)", NPrimary: 60, P: 0.95},
		{Design: "DTMB(2,6)", NPrimary: 0, P: 0.95},
		{Design: "DTMB(2,6)", NPrimary: 60, P: 1.5},
		{Design: "DTMB(2,6)", NPrimary: 60, P: 0.95, Runs: -1},
		{Design: "DTMB(2,6)", NPrimary: 60, P: 0.95, Runs: MaxRuns + 1},
		{Design: "DTMB(2,6)", NPrimary: MaxNPrimary + 1, P: 0.95},
	}
	for i, req := range cases {
		if _, err := e.Yield(ctx, req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("case %d: err = %v, want ErrInvalidRequest", i, err)
		}
	}
	if _, err := e.Reconfigure(ctx, ReconfigureRequest{Design: "dtmb26", NPrimary: 30, FaultyCells: []int{-1}}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("negative cell: err = %v, want ErrInvalidRequest", err)
	}
	if _, err := e.Reconfigure(ctx, ReconfigureRequest{Design: "dtmb26", NPrimary: 30, FaultyCells: []int{1 << 20}}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("out-of-range cell: err = %v, want ErrInvalidRequest", err)
	}
	if _, err := e.Reconfigure(ctx, ReconfigureRequest{Design: "dtmb26", NPrimary: 30, FaultyCells: make([]int, MaxFaultyCells+1)}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("oversized fault list: err = %v, want ErrInvalidRequest", err)
	}
	// Per-field caps hold, but the combined work cap must reject the product.
	big := YieldRequest{Design: "DTMB(2,6)", NPrimary: MaxNPrimary, P: 0.95, Runs: MaxRuns}
	if _, err := e.Yield(ctx, big); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("work cap: err = %v, want ErrInvalidRequest", err)
	}
	// The cap also applies when runs is defaulted by the engine.
	huge := NewEngine(EngineConfig{DefaultRuns: MaxRuns})
	if _, err := huge.Recommend(ctx, RecommendRequest{P: 0.95, NPrimary: MaxNPrimary}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("work cap with defaulted runs: err = %v, want ErrInvalidRequest", err)
	}
}

func TestEngineReconfigure(t *testing.T) {
	e := testEngine(8)
	// No faults: trivially OK with zero assignments.
	resp, err := e.Reconfigure(context.Background(), ReconfigureRequest{Design: "DTMB(2,6)", NPrimary: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Assignments) != 0 {
		t.Errorf("fault-free chip: OK=%v assignments=%d", resp.OK, len(resp.Assignments))
	}
	// One faulty primary must be repaired by an adjacent spare.
	resp, err = e.Reconfigure(context.Background(), ReconfigureRequest{
		Design: "DTMB(2,6)", NPrimary: 60, FaultyCells: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FaultyPrimaries+resp.FaultySpares != 1 {
		t.Errorf("fault counts %d+%d, want total 1", resp.FaultyPrimaries, resp.FaultySpares)
	}
	if resp.FaultyPrimaries == 1 && (!resp.OK || len(resp.Assignments) != 1) {
		t.Errorf("single faulty primary not repaired: %+v", resp)
	}
}

func TestResolveDesignAliases(t *testing.T) {
	for _, name := range []string{"DTMB(2,6)", "dtmb26", "DTMB26", " dtmb(2,6) "} {
		d, err := resolveDesign(name)
		if err != nil {
			t.Errorf("resolveDesign(%q): %v", name, err)
			continue
		}
		if d.Name != "DTMB(2,6)" {
			t.Errorf("resolveDesign(%q) = %q", name, d.Name)
		}
	}
	if d, err := resolveDesign("dtmb26alt"); err != nil || d.Name != "DTMB(2,6)alt" {
		t.Errorf("alt alias: %v, %v", d, err)
	}
	if _, err := resolveDesign("nope"); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("unknown design err = %v", err)
	}
}
