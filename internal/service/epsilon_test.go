package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestEvaluateEpsilonPrecisionTargeted drives /v2/evaluate with a precision
// target: the response reports the realized (early-stopped) trial count, the
// raw success count, and echoes the epsilon; an identical repeat is served
// from the cache with identical numbers.
func TestEvaluateEpsilonPrecisionTargeted(t *testing.T) {
	mux, e := testMux()
	body := `{"design":"DTMB(2,6)","n_primary":100,"p":0.999,"runs":100000,"seed":7,"epsilon":0.005}`
	w := doJSON(t, mux, http.MethodPost, "/v2/evaluate", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var rec ScenarioRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Runs <= 0 || rec.Runs >= 100000 {
		t.Errorf("realized runs %d, want an early stop strictly inside (0, 100000)", rec.Runs)
	}
	if rec.Successes <= 0 || rec.Successes > rec.Runs {
		t.Errorf("successes %d inconsistent with %d runs", rec.Successes, rec.Runs)
	}
	if rec.Epsilon != 0.005 {
		t.Errorf("epsilon echo %v, want 0.005", rec.Epsilon)
	}
	if rec.Cached {
		t.Error("first evaluation reported cached")
	}
	if got := e.Stats().KernelEarlyStops; got != 1 {
		t.Errorf("kernel_early_stops %d, want 1", got)
	}

	w2 := doJSON(t, mux, http.MethodPost, "/v2/evaluate", body)
	var rec2 ScenarioRecord
	if err := json.Unmarshal(w2.Body.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}
	if !rec2.Cached {
		t.Error("identical adaptive request missed the cache")
	}
	rec2.Cached = false
	if rec2 != rec {
		t.Errorf("cached record %+v differs from fresh %+v", rec2, rec)
	}
}

// TestEvaluateEpsilonSeparatesCacheKeys checks adaptive and fixed-run
// evaluations of the same scenario never share a cache entry.
func TestEvaluateEpsilonSeparatesCacheKeys(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 300})
	ctx := context.Background()
	base := ScenarioRequest{Design: "DTMB(2,6)", NPrimary: 60, P: 0.99, Runs: 20000, Seed: 3}
	fixed, err := e.EvaluateScenario(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.Epsilon = 0.01
	got, err := e.EvaluateScenario(ctx, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatal("adaptive request was served the fixed-run cache entry")
	}
	if fixed.Runs != 20000 {
		t.Errorf("fixed-run request realized %d runs, want the full 20000", fixed.Runs)
	}
	if got.Runs >= fixed.Runs {
		t.Errorf("adaptive realized %d runs, want fewer than the fixed %d", got.Runs, fixed.Runs)
	}
}

// TestEpsilonValidation rejects malformed precision targets on both the
// evaluate and sweep surfaces.
func TestEpsilonValidation(t *testing.T) {
	mux, _ := testMux()
	for name, probe := range map[string]struct{ path, body string }{
		"evaluate negative": {"/v2/evaluate", `{"design":"DTMB(2,6)","n_primary":40,"p":0.9,"epsilon":-0.01}`},
		"evaluate too big":  {"/v2/evaluate", `{"design":"DTMB(2,6)","n_primary":40,"p":0.9,"epsilon":1}`},
		"sweep negative":    {"/v1/sweep", `{"epsilon":-0.5}`},
		"sweep too big":     {"/v1/sweep", `{"epsilon":2}`},
	} {
		w := doJSON(t, mux, http.MethodPost, probe.path, probe.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body.String())
		}
		if !strings.Contains(w.Body.String(), "epsilon") {
			t.Errorf("%s: error does not name epsilon: %s", name, w.Body.String())
		}
	}
}

// TestV1SweepSuppressesAdaptiveFields pins the v1 stream contract: even when
// a sweep runs precision-targeted, its NDJSON records never carry the
// post-v1 successes/epsilon fields, and runs reports the realized count.
func TestV1SweepSuppressesAdaptiveFields(t *testing.T) {
	mux, _ := testMux()
	body := `{"designs":["DTMB(2,6)"],"n_primaries":[60],"ps":[0.999],"runs":50000,"seed":5,"epsilon":0.01}`
	w := doJSON(t, mux, http.MethodPost, "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.Contains(line, `"successes"`) || strings.Contains(line, `"epsilon"`) {
			t.Errorf("v1 sweep record leaks adaptive fields: %s", line)
		}
		var rec SweepRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Runs <= 0 || rec.Runs >= 50000 {
			t.Errorf("realized runs %d, want an early stop strictly inside (0, 50000)", rec.Runs)
		}
	}
	if lines != 1 {
		t.Fatalf("sweep emitted %d lines, want 1", lines)
	}
}

// TestJobStreamCarriesAdaptiveFields checks the v2 job surface does expose
// the success count and epsilon for precision-targeted sweeps.
func TestJobStreamCarriesAdaptiveFields(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 300})
	plan, err := e.PlanSweep(SweepRequest{
		Designs: []string{"DTMB(2,6)"}, NPrimaries: []int{60}, Ps: []float64{0.999},
		Runs: 50000, Seed: 6, Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []SweepRecord
	if err := e.RunSweep(context.Background(), plan, func(r SweepRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Successes <= 0 {
		t.Errorf("successes %d, want carried through", r.Successes)
	}
	if r.Epsilon != 0.01 {
		t.Errorf("epsilon %v, want 0.01", r.Epsilon)
	}
	if r.Runs >= 50000 {
		t.Errorf("realized runs %d, want early stop", r.Runs)
	}
}
