package service

// CrashForTest exposes the SIGKILL simulation to external test packages
// (e.g. the coordinator-restart end-to-end test, which must live outside
// package service to import the dispatch package without a cycle).
func (s *Store) CrashForTest() { s.crashForTest() }
