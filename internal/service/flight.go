package service

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent identical work: callers who Do the
// same key while a computation is in flight block until the leader finishes
// and share its result, so N identical requests cost one simulation.
// A minimal single-flight, in the spirit of golang.org/x/sync/singleflight.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// Do executes fn for k, collapsing concurrent duplicate calls onto the first
// one. shared reports whether this caller piggybacked on another's work. A
// follower whose own ctx is cancelled stops waiting and returns ctx.Err();
// the leader's computation continues for the remaining waiters.
func (g *flightGroup) Do(ctx context.Context, k cacheKey, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[k]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[k] = c
	g.mu.Unlock()

	// Deregister and release waiters even if fn panics (net/http recovers
	// handler panics, and a stuck flightCall would poison this key forever:
	// every later identical request would block on done eternally). Waiters
	// get an error rather than a nil result; the panic then resumes on the
	// leader's goroutine.
	defer func() {
		if r := recover(); r != nil {
			c.val, c.err = nil, fmt.Errorf("service: panic during shared computation: %v", r)
			g.finish(k, c)
			panic(r)
		}
		g.finish(k, c)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// finish deregisters a call and releases its waiters.
func (g *flightGroup) finish(k cacheKey, c *flightCall) {
	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	close(c.done)
}
