package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzSweepRequestDecode feeds adversarial bodies through the exact decode
// path of POST /v1/sweep (strict JSON decoding, then PlanSweep). The
// invariants: no panic on any input, and every accepted request plans a
// finite grid within the advertised caps. The seed corpus runs in plain
// `go test`; `go test -fuzz=FuzzSweepRequestDecode ./internal/service`
// explores further.
func FuzzSweepRequestDecode(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"strategies":["none","local","shifted","hex"],"runs":100}`)
	f.Add(`{"designs":["dtmb26"],"n_primaries":[24],"ps":[0.95]}`)
	f.Add(`{"defect_models":["clustered"],"cluster_size":4}`)
	f.Add(`{"defect_models":["clustered","clustered"]}`)
	f.Add(`{"cluster_size":1e308}`)
	f.Add(`{"cluster_size":-1}`)
	f.Add(`{"p_points":2147483647}`)
	f.Add(`{"n_primaries":[0]}`)
	f.Add(`{"strategies":["hex"],"designs":["DTMB(9,9)"]}`)
	f.Add(`{"ps":[NaN]}`)
	f.Add(`{"runs":1000000000000}`)
	f.Add(`{"unknown_field":1}`)
	f.Add(`not json at all`)
	f.Add(`{"strategies":`)
	f.Add(`[]`)
	f.Add(``)
	e := NewEngine(EngineConfig{DefaultRuns: 100})
	f.Fuzz(func(t *testing.T, body string) {
		r := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		req, ok := decodeRequest[SweepRequest](w, r)
		if !ok {
			if w.Code == http.StatusOK {
				t.Fatalf("decode failed but wrote status 200 for body %q", body)
			}
			return
		}
		plan, err := e.PlanSweep(req)
		if err != nil {
			return // rejected requests just must not panic
		}
		if n := plan.NumPoints(); n < 0 || n > MaxSweepPoints {
			t.Fatalf("accepted plan with %d points (cap %d) for body %q", n, MaxSweepPoints, body)
		}
	})
}
