package service

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden wire-format tests for the v1 surface. The goldens were generated
// against the pre-/v2 handlers (run with -update to regenerate); they lock
// every byte of the v1 responses — field order, float formatting, error
// envelopes, NDJSON framing — so the scenario-core refactor that turned the
// v1 handlers into adapters is provably invisible on the wire.
var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// goldenEngine builds an engine with the fixed configuration the goldens
// were generated under. Determinism contract: DefaultRuns, ChunkSize, and
// the request seeds pin the bytes; Workers does not affect them.
func goldenEngine() *Engine {
	return NewEngine(EngineConfig{CacheSize: 64, DefaultRuns: 300})
}

// checkGolden compares got with the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s: response bytes changed\n got: %q\nwant: %q", name, got, want)
	}
}

// TestV1GoldenWireFormat replays one request per v1 endpoint — happy paths,
// cache-hit responses, and representative validation errors — and asserts
// the exact response bytes.
func TestV1GoldenWireFormat(t *testing.T) {
	mux := NewMux(goldenEngine(), nil)
	cases := []struct {
		golden     string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{
			golden: "yield.json",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":1}`,
			wantStatus: http.StatusOK,
		},
		{
			// Identical repeat: the cached flag must appear, nothing else move.
			golden: "yield_cached.json",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":1}`,
			wantStatus: http.StatusOK,
		},
		{
			golden: "yield_alias.json",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"dtmb44","n_primary":40,"p":0.9,"runs":200,"seed":2}`,
			wantStatus: http.StatusOK,
		},
		{
			golden: "yield_err_design.json",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(9,9)","n_primary":60,"p":0.95}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			golden: "yield_err_p.json",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":1.5}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			golden: "recommend.json",
			method: http.MethodPost, path: "/v1/recommend",
			body:       `{"p":0.95,"n_primary":40,"runs":200,"seed":5}`,
			wantStatus: http.StatusOK,
		},
		{
			golden: "reconfigure.json",
			method: http.MethodPost, path: "/v1/reconfigure",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"faulty_cells":[0,7]}`,
			wantStatus: http.StatusOK,
		},
		{
			golden: "sweep.ndjson",
			method: http.MethodPost, path: "/v1/sweep",
			body: `{"strategies":["none","local","shifted","hex"],"designs":["DTMB(2,6)"],` +
				`"n_primaries":[40],"ps":[0.9,0.95],"spare_rows":[1],` +
				`"defect_models":["independent","clustered"],"cluster_size":4,"runs":200,"seed":3}`,
			wantStatus: http.StatusOK,
		},
		{
			golden: "sweep_err_strategy.json",
			method: http.MethodPost, path: "/v1/sweep",
			body:       `{"strategies":["bogus"]}`,
			wantStatus: http.StatusBadRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			mux.ServeHTTP(w, req)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			checkGolden(t, tc.golden, w.Body.Bytes())
		})
	}
}
