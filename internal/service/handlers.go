package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds request bodies; yield requests are tiny.
const maxBodyBytes = 1 << 20

// NewMux routes the API onto a fresh ServeMux:
//
//	POST   /v1/yield             Monte-Carlo yield of one design
//	POST   /v1/recommend         effective-yield winner across all designs
//	POST   /v1/reconfigure       local-reconfiguration plan for a fault list
//	POST   /v1/sweep             parameter-grid sweep, streamed as NDJSON
//	GET    /v1/stats             cache hit rate, in-flight work, job counters
//	POST   /v2/evaluate          one scenario (any strategy × defect model)
//	POST   /v2/jobs              start an asynchronous sweep job
//	GET    /v2/jobs/{id}         job status and progress
//	GET    /v2/jobs/{id}/results job results as NDJSON, resumable at ?cursor=N
//	DELETE /v2/jobs/{id}         cancel a job
//	GET    /metrics              Prometheus text-format exposition
//	GET    /healthz              liveness probe
//	GET    /readyz               readiness probe (503 while the durable
//	                             store replays or the server drains)
//
// jobs may be nil, in which case a private in-memory store (bound to the
// process lifetime, never drained) backs the job endpoints — fine for tests;
// servers pass their own store so shutdown can drain it. Extra routes (the
// dispatch coordinator's /v2/workers/* endpoints) are registered verbatim.
func NewMux(e *Engine, jobs JobStore, extra ...Route) *http.ServeMux {
	if jobs == nil {
		jobs = NewJobStore(e, JobStoreConfig{})
	}
	mux := http.NewServeMux()
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	mux.HandleFunc("POST /v1/sweep", sweepHandler(e))
	mux.HandleFunc("POST /v1/yield", jsonHandler(func(r *http.Request, req YieldRequest) (YieldResponse, error) {
		return e.Yield(r.Context(), req)
	}))
	mux.HandleFunc("POST /v1/recommend", jsonHandler(func(r *http.Request, req RecommendRequest) (RecommendResponse, error) {
		return e.Recommend(r.Context(), req)
	}))
	mux.HandleFunc("POST /v1/reconfigure", jsonHandler(func(r *http.Request, req ReconfigureRequest) (ReconfigureResponse, error) {
		return e.Reconfigure(r.Context(), req)
	}))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := e.Stats()
		jc := jobs.Counters()
		st.JobsActive = jc.Active
		st.JobsCompleted = jc.Completed
		st.JobsCancelled = jc.Cancelled
		st.JobsFailed = jc.Failed
		st.PointsEvaluated = jc.PointsEvaluated
		st.JobResultBufferBytes = jobs.BufferBytes()
		st.JobEvictions = jobs.Evictions()
		st.StreamFlushes = e.metrics.streamFlushes.With("sweep").Value() +
			e.metrics.streamFlushes.With("job").Value()
		st.JobStoreDiskBytes = jobs.DiskBytes()
		ds := jobs.DispatchStats()
		st.DispatchShardsLeased = ds.ShardsLeased
		st.DispatchShardsCompleted = ds.ShardsCompleted
		st.DispatchShardsExpired = ds.ShardsExpired
		st.DispatchShardsQuarantined = ds.ShardsQuarantined
		st.DispatchRetries = ds.Retries
		st.WorkersActive = ds.WorkersActive
		writeJSON(w, http.StatusOK, st)
	})
	mux.Handle("GET /metrics", e.Registry().Handler())
	mux.HandleFunc("POST /v2/evaluate", jsonHandler(func(r *http.Request, req ScenarioRequest) (ScenarioRecord, error) {
		return e.EvaluateScenario(r.Context(), req)
	}))
	mux.HandleFunc("POST /v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest[SweepRequest](w, r)
		if !ok {
			return
		}
		job, err := jobs.Create(r.Context(), req)
		if err != nil {
			writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Location", "/v2/jobs/"+job.ID())
		writeJSON(w, http.StatusAccepted, job.Status())
	})
	mux.HandleFunc("GET /v2/jobs/{id}", jobHandler(jobs, func(_ *http.Request, j *Job) (JobStatus, error) {
		return j.Status(), nil
	}))
	mux.HandleFunc("DELETE /v2/jobs/{id}", jobHandler(jobs, func(_ *http.Request, j *Job) (JobStatus, error) {
		return j.Cancel(), nil
	}))
	mux.HandleFunc("GET /v2/jobs/{id}/results", jobResultsHandler(e, jobs))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Liveness (/healthz) answers "is the process up"; readiness answers "can
	// it take traffic" — false while the durable store replays its on-disk
	// jobs and again once shutdown begins, so load balancers and the worker
	// registration loop steer around a coordinator that isn't serving.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !jobs.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// Route is an extra (pattern, handler) pair mounted by NewMux — how the
// dispatch coordinator's worker endpoints join the server's mux without the
// service package importing dispatch.
type Route struct {
	Pattern string
	Handler http.Handler
}

// jobHandler looks up the {id} path value and maps fn's result to JSON.
func jobHandler(jobs JobStore, fn func(*http.Request, *Job) (JobStatus, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, err := jobs.Get(r.PathValue("id"))
		if err != nil {
			writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
			return
		}
		st, err := fn(r, j)
		if err != nil {
			writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
}

// jobResultsHandler streams a job's NDJSON result records from ?cursor=N
// (default 0), following a still-running job until it finishes. The bytes
// for any record range are identical across calls, so a client that lost
// its connection mid-stream resumes at its next unread record and ends up
// with the exact bytes of an uninterrupted stream.
func jobResultsHandler(e *Engine, jobs JobStore) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, err := jobs.Get(r.PathValue("id"))
		if err != nil {
			writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
			return
		}
		cursor := 0
		if s := r.URL.Query().Get("cursor"); s != "" {
			cursor, err = strconv.Atoi(s)
			if err != nil || cursor < 0 {
				writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid cursor %q", s)})
				return
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		flushes := e.metrics.streamFlushes.With("job")
		_, _ = j.StreamResults(r.Context(), cursor, func(line []byte) error {
			if _, err := w.Write(line); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
				flushes.Inc()
			}
			return nil
		})
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// decodeRequest strictly decodes the request body into Req. On failure it
// writes the JSON error response itself and reports ok = false.
func decodeRequest[Req any](w http.ResponseWriter, r *http.Request) (req Req, ok bool) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorBody{Error: fmt.Sprintf("invalid request body: %v", err)})
		return req, false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		status := http.StatusBadRequest
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorBody{Error: "invalid request body: trailing data"})
		return req, false
	}
	return req, true
}

// jsonHandler decodes a request body into Req, runs fn, and encodes its
// response, mapping errors to HTTP statuses.
func jsonHandler[Req, Resp any](fn func(*http.Request, Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest[Req](w, r)
		if !ok {
			return
		}
		resp, err := fn(r, req)
		if err != nil {
			status := errStatus(err)
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// sweepHandler streams a sweep as NDJSON: one SweepRecord line per grid
// point, in deterministic point order, flushed as each point completes so a
// client watching `curl -N` sees the grid fill in. Validation failures are
// rejected as ordinary JSON errors before the stream starts; a failure
// mid-stream appends a trailing {"error": ...} line, which is how a client
// distinguishes a truncated sweep from a finished one.
func sweepHandler(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest[SweepRequest](w, r)
		if !ok {
			return
		}
		if req.Distributed {
			err := invalidf("distributed mode requires an asynchronous job (POST /v2/jobs)")
			writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
			return
		}
		plan, err := e.PlanSweep(req)
		if err != nil {
			writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		flushes := e.metrics.streamFlushes.With("sweep")
		enc := json.NewEncoder(w)
		err = e.RunSweep(r.Context(), plan, func(rec SweepRecord) error {
			// The v1 stream predates the successes/epsilon fields; suppress
			// them here to keep its bytes frozen. The v2 job stream carries
			// both.
			rec.Successes, rec.Epsilon = 0, 0
			if err := enc.Encode(rec); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
				flushes.Inc()
			}
			return nil
		})
		if err != nil && r.Context().Err() == nil {
			_ = enc.Encode(SweepError{Error: err.Error()})
		}
	}
}

// errStatus maps engine and job-store errors to HTTP statuses: validation →
// 400, unknown job → 404, full job store → 429, caller cancellation/timeout
// or shutdown → 503, anything else → 500.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrJobNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrTooManyJobs):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotReady), errors.Is(err, errStoreClosed), isContextErr(err):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
