package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testMux() (*http.ServeMux, *Engine) {
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 300})
	return NewMux(e, nil), e
}

func doJSON(t *testing.T, mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestHandlersTable(t *testing.T) {
	mux, _ := testMux()
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{
			name:   "yield happy path",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":1}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"yield"`,
		},
		{
			name:   "yield compact alias",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"dtmb44","n_primary":40,"p":0.9,"runs":200}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"DTMB(4,4)"`,
		},
		{
			name:   "yield unknown design",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(9,9)","n_primary":60,"p":0.95}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "unknown design",
		},
		{
			name:   "yield p out of range",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":1.5}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "outside [0,1]",
		},
		{
			name:   "yield non-positive n_primary",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":0,"p":0.95}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "n_primary",
		},
		{
			name:   "yield malformed JSON",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "invalid request body",
		},
		{
			name:   "yield unknown field",
			method: http.MethodPost, path: "/v1/yield",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"bogus":1}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "invalid request body",
		},
		{
			name:   "yield wrong method",
			method: http.MethodGet, path: "/v1/yield",
			body:       "",
			wantStatus: http.StatusMethodNotAllowed,
		},
		{
			name:   "recommend happy path",
			method: http.MethodPost, path: "/v1/recommend",
			body:       `{"p":0.95,"n_primary":40,"runs":200,"seed":5}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"best"`,
		},
		{
			name:   "recommend bad p",
			method: http.MethodPost, path: "/v1/recommend",
			body:       `{"p":-0.1,"n_primary":40}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:   "reconfigure happy path",
			method: http.MethodPost, path: "/v1/reconfigure",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"faulty_cells":[0]}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"ok"`,
		},
		{
			name:   "reconfigure cell out of range",
			method: http.MethodPost, path: "/v1/reconfigure",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"faulty_cells":[99999]}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "out of range",
		},
		{
			name:   "healthz",
			method: http.MethodGet, path: "/healthz",
			wantStatus: http.StatusOK,
			wantSubstr: `"ok"`,
		},
		{
			name:   "stats",
			method: http.MethodGet, path: "/v1/stats",
			wantStatus: http.StatusOK,
			wantSubstr: `"cache_hit_rate"`,
		},
		{
			name:   "unknown route",
			method: http.MethodGet, path: "/v1/nope",
			wantStatus: http.StatusNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doJSON(t, mux, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if tc.wantSubstr != "" && !strings.Contains(w.Body.String(), tc.wantSubstr) {
				t.Errorf("body %q missing %q", w.Body.String(), tc.wantSubstr)
			}
		})
	}
}

func TestHandlerOversizedBody(t *testing.T) {
	mux, _ := testMux()
	big := `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"faulty_cells":[` +
		strings.Repeat("1,", maxBodyBytes/2) + `1]}`
	w := doJSON(t, mux, http.MethodPost, "/v1/reconfigure", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want %d", w.Code, http.StatusRequestEntityTooLarge)
	}
}

func TestHandlerCancelledContext(t *testing.T) {
	mux, _ := testMux()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/yield",
		strings.NewReader(`{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("cancelled request status = %d, want %d; body %s",
			w.Code, http.StatusServiceUnavailable, w.Body.String())
	}
}

func TestRepeatYieldServedFromCacheViaHTTP(t *testing.T) {
	mux, _ := testMux()
	body := `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":9}`

	var first, second YieldResponse
	w := doJSON(t, mux, http.MethodPost, "/v1/yield", body)
	if w.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	w = doJSON(t, mux, http.MethodPost, "/v1/yield", body)
	if err := json.Unmarshal(w.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	if first.Yield != second.Yield {
		t.Errorf("cached yield %v != computed %v", second.Yield, first.Yield)
	}

	var st StatsResponse
	w = doJSON(t, mux, http.MethodGet, "/v1/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 {
		t.Errorf("stats hit counter = 0 after a cache hit: %+v", st)
	}
	if st.Completed != 1 {
		t.Errorf("stats completed = %d, want 1", st.Completed)
	}
}

func TestServerLifecycle(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Engine: EngineConfig{DefaultRuns: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after graceful shutdown", err)
	}
}
