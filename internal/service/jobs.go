package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"dmfb/internal/faultinject"
	"dmfb/internal/telemetry"
)

// ErrJobNotFound tags lookups of unknown job IDs so handlers can map them to
// HTTP 404.
var ErrJobNotFound = errors.New("job not found")

// ErrTooManyJobs tags job creation attempts rejected because the store is
// full of unfinished jobs; handlers map it to HTTP 429.
var ErrTooManyJobs = errors.New("too many jobs")

// ErrNotReady tags requests that arrived while the durable store is still
// replaying its on-disk jobs; handlers (and the readiness probe) map it to
// HTTP 503 so clients and load balancers retry elsewhere.
var ErrNotReady = errors.New("job store not ready")

// errStoreClosed rejects job creation during shutdown; handlers map it to
// HTTP 503 like any other unavailability.
var errStoreClosed = errors.New("service: job store is shut down")

// errStorage tags job failures caused by the durable backend (failed write,
// failed fsync, out of disk) rather than by evaluation; such jobs terminate
// with Reason ReasonStorage instead of wedging the store.
var errStorage = errors.New("storage failure")

// Terminal failure reasons, surfaced in JobStatus.Reason and the durable
// manifest alongside State=="failed". Clients that need to distinguish
// retry-worthy failures from poisoned inputs switch on this field; see
// API.md for the full taxonomy.
const (
	// ReasonEvaluation: the sweep itself failed (bad request surviving
	// validation, engine error). Retrying the same request will likely fail
	// again.
	ReasonEvaluation = "evaluation"
	// ReasonStorage: the durable backend could not commit results (I/O
	// error, no space, corruption detected on replay). The computation was
	// fine; retry after the operator fixes the disk.
	ReasonStorage = "storage"
	// ReasonPoisonShard: a distributed shard exhausted its dispatch budget
	// (every worker that leased it crashed or failed). The job is quarantined
	// rather than redispatched forever.
	ReasonPoisonShard = "poison_shard"
)

// JobState names a sweep job's lifecycle phase.
type JobState string

// The four job states. Jobs start running immediately (the engine's
// admission semaphore is what actually paces simulation work) and end in
// exactly one of the three terminal states.
const (
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool { return s != JobRunning }

// JobStatus is the wire form of a job snapshot, returned by POST /v2/jobs,
// GET /v2/jobs/{id}, and DELETE /v2/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// TotalPoints is the size of the job's grid; PointsDone counts emitted
	// records, so PointsDone == TotalPoints iff the job completed.
	TotalPoints int       `json:"total_points"`
	PointsDone  int       `json:"points_done"`
	CreatedAt   time.Time `json:"created_at"`
	// FinishedAt is set once the job reaches a terminal state.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Error describes why a failed job stopped.
	Error string `json:"error,omitempty"`
	// Reason classifies a failed job's terminal cause ("evaluation",
	// "storage", "poison_shard"); empty for non-failed jobs.
	Reason string `json:"reason,omitempty"`
	// Distributed reports whether the job is sharded across remote workers.
	Distributed bool `json:"distributed,omitempty"`
}

// JobCounters aggregates the store's lifetime accounting for /v1/stats.
type JobCounters struct {
	Active          int
	Completed       uint64
	Cancelled       uint64
	Failed          uint64
	PointsEvaluated uint64
}

// JobStore is the interface the handlers and server run against: job
// lifecycle (create, look up, cancel via Job, drain), retention accounting,
// and readiness. NewJobStore builds the in-memory implementation,
// NewFileJobStore the durable one; both return the same *Store orchestrator
// parameterized by a persistence backend.
type JobStore interface {
	// Create validates req, registers a new job, and starts evaluating it.
	Create(ctx context.Context, req SweepRequest) (*Job, error)
	// Get returns the job with the given ID.
	Get(id string) (*Job, error)
	// Counters snapshots the store's job accounting.
	Counters() JobCounters
	// BufferBytes returns the encoded result bytes held by finished jobs.
	BufferBytes() int64
	// DiskBytes returns the bytes held on disk by the durable backend
	// (0 for the in-memory store).
	DiskBytes() int64
	// Evictions counts jobs evicted by the retention bounds.
	Evictions() uint64
	// Ready reports whether the store can accept work: true once any
	// durable replay has finished, false again once shutdown begins — the
	// readiness probe's source of truth.
	Ready() bool
	// DispatchStats snapshots the distributed runner's accounting (zero
	// when dispatch is not configured).
	DispatchStats() DispatchStats
	// Close cancels running jobs and waits for their goroutines.
	Close(ctx context.Context) error
}

// JobStoreConfig tunes a job store. The zero value gives sensible defaults.
type JobStoreConfig struct {
	// MaxJobs bounds the jobs retained (running and finished combined);
	// 0 means 128. Creating a job beyond the bound evicts the oldest
	// finished job — including its on-disk artifacts in a durable store —
	// or fails with ErrTooManyJobs if every retained job is still running.
	MaxJobs int
	// MaxResultBytes bounds the encoded result lines retained by finished
	// jobs; 0 means 64 MiB. When a finishing job pushes the total over the
	// bound, the oldest finished jobs are evicted (running jobs never are),
	// so a flood of cheap huge-grid jobs cannot pin unbounded heap — or,
	// durably, unbounded disk.
	MaxResultBytes int64
	// Runner executes jobs that request distributed mode by sharding them
	// across remote workers. nil rejects distributed jobs with a 400.
	Runner DistributedRunner
	// Inject supplies a chaos fault schedule to the durable backend (torn
	// writes, fsync failures, ENOSPC, replay corruption). nil — the default
	// and the production setting — disables injection entirely.
	Inject *faultinject.Injector
}

// Store is the canonical JobStore implementation: the lifecycle of
// asynchronous sweep jobs — creation (validated by the engine's sweep
// planner), execution (one goroutine per job, locally through the engine's
// cache/single-flight/admission layers or remotely through a
// DistributedRunner), result buffering for cursor-resumable streaming,
// cancellation, and shutdown draining — over a pluggable persistence
// backend. With the file backend every result line is fsynced before it
// becomes readable, and a restarted store replays finished jobs and resumes
// partial ones at their first missing grid point instead of recomputing.
type Store struct {
	engine   *Engine
	maxJobs  int
	maxBytes int64
	persist  jobPersister
	runner   DistributedRunner

	mu            sync.Mutex
	jobs          map[string]*Job
	order         []string // creation order, for bounded eviction
	seq           int
	closed        bool
	finishedBytes int64 // encoded result bytes held by finished jobs

	ready atomic.Bool // false until any durable replay completes

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	completed atomic.Uint64
	cancelled atomic.Uint64
	failed    atomic.Uint64
	points    atomic.Uint64
}

// Store must satisfy the interface it canonically implements.
var _ JobStore = (*Store)(nil)

// newStore builds the orchestrator around a persistence backend and
// registers the job lifecycle series on e's metric registry.
func newStore(e *Engine, cfg JobStoreConfig, persist jobPersister) *Store {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 128
	}
	if cfg.MaxResultBytes <= 0 {
		cfg.MaxResultBytes = 64 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Store{
		engine:    e,
		maxJobs:   cfg.MaxJobs,
		maxBytes:  cfg.MaxResultBytes,
		persist:   persist,
		runner:    cfg.Runner,
		jobs:      make(map[string]*Job),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	// Callback series read the store's existing accounting at scrape time.
	// The registry get-or-creates by name, so a second store on the same
	// engine (e.g. NewMux's private fallback store) leaves the first store's
	// series in place rather than double-registering.
	r := e.Registry()
	r.GaugeFunc("dmfb_jobs_active",
		"Sweep jobs currently running.",
		func() float64 { return float64(s.Counters().Active) })
	r.CounterFunc("dmfb_jobs_completed_total",
		"Sweep jobs that finished every grid point.",
		func() float64 { return float64(s.completed.Load()) })
	r.CounterFunc("dmfb_jobs_cancelled_total",
		"Sweep jobs cancelled before completion.",
		func() float64 { return float64(s.cancelled.Load()) })
	r.CounterFunc("dmfb_jobs_failed_total",
		"Sweep jobs that stopped on an evaluation error.",
		func() float64 { return float64(s.failed.Load()) })
	r.CounterFunc("dmfb_job_points_evaluated_total",
		"Grid points emitted by sweep jobs (cached or simulated).",
		func() float64 { return float64(s.points.Load()) })
	r.GaugeFunc("dmfb_job_result_buffer_bytes",
		"Encoded NDJSON result bytes held by finished jobs.",
		func() float64 { return float64(s.BufferBytes()) })
	return s
}

// NewJobStore builds the in-memory store executing jobs on e. Results live
// only in process memory: a restart forgets every job.
func NewJobStore(e *Engine, cfg JobStoreConfig) *Store {
	s := newStore(e, cfg, nullPersister{})
	s.ready.Store(true)
	return s
}

// NewFileJobStore builds the durable store rooted at dir: every job's
// manifest and result log live on disk (fsync per committed record), and
// construction replays the directory in the background — finished jobs
// become readable again, partial jobs resume evaluation at their first
// missing grid point. Until the replay scan completes, Ready reports false
// and Create/Get return ErrNotReady (HTTP 503).
func NewFileJobStore(e *Engine, cfg JobStoreConfig, dir string) (*Store, error) {
	return newFileJobStore(e, cfg, dir, nil)
}

// newFileJobStore is NewFileJobStore with a test hook: a non-nil gate delays
// the replay scan until the channel closes, letting tests observe the
// not-ready window deterministically.
func newFileJobStore(e *Engine, cfg JobStoreConfig, dir string, gate chan struct{}) (*Store, error) {
	p, err := newFilePersister(dir)
	if err != nil {
		return nil, err
	}
	p.inject = cfg.Inject
	s := newStore(e, cfg, p)
	e.Registry().GaugeFunc("dmfb_job_store_disk_bytes",
		"Bytes held on disk by the durable job store (manifests and result logs).",
		func() float64 { return float64(s.DiskBytes()) })
	go func() {
		if gate != nil {
			<-gate
		}
		s.replay()
	}()
	return s, nil
}

// replay recovers the durable backend's jobs: terminal jobs become readable,
// running jobs are re-planned and resumed at the first grid point missing
// from their result log. It runs once, in the background, before the store
// reports ready.
func (s *Store) replay() {
	defer s.ready.Store(true)
	pjobs, err := s.persist.load()
	if err != nil {
		s.logger().Error("job store replay failed; starting empty",
			slog.String("error", err.Error()))
		return
	}
	type resume struct {
		j   *Job
		ctx context.Context
	}
	var resumes []resume
	s.mu.Lock()
	for _, pj := range pjobs {
		m := pj.manifest
		if s.closed || s.jobs[m.ID] != nil {
			continue
		}
		var total int64
		for _, l := range pj.lines {
			total += int64(len(l))
		}
		j := &Job{
			id:          m.ID,
			store:       s,
			req:         m.Request,
			distributed: m.Request.Distributed,
			totalPoints: m.TotalPoints,
			lines:       pj.lines,
			bytes:       total,
			state:       m.State,
			errMsg:      m.Error,
			reason:      m.Reason,
			created:     m.CreatedAt,
			done:        make(chan struct{}),
			update:      make(chan struct{}),
		}
		if seq := jobSeq(m.ID); seq > s.seq {
			s.seq = seq
		}
		if m.State.terminal() {
			if m.FinishedAt != nil {
				j.finished = *m.FinishedAt
			} else {
				j.finished = m.CreatedAt
			}
			j.accounted = true
			s.finishedBytes += j.bytes
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			continue
		}
		// A job found running was interrupted by a crash or restart:
		// resume it. Re-planning can fail if the server's limits changed or
		// distributed mode lost its runner; such jobs fail cleanly rather
		// than recompute under different rules.
		j.resumeFrom = len(pj.lines)
		plan, perr := s.engine.PlanSweep(m.Request)
		switch {
		case perr != nil:
			perr = fmt.Errorf("resume after restart: %w", perr)
		case m.Request.Distributed && s.runner == nil:
			perr = errors.New("resume after restart: job is distributed but dispatch is not enabled")
		case len(pj.lines) > plan.NumPoints():
			perr = fmt.Errorf("resume after restart: result log has %d records for a %d-point grid", len(pj.lines), plan.NumPoints())
		}
		if perr != nil {
			j.state = JobFailed
			j.errMsg = perr.Error()
			j.reason = ReasonEvaluation
			j.finished = time.Now()
			j.accounted = true
			s.finishedBytes += j.bytes
			s.failed.Add(1)
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.persistTerminal(j)
			continue
		}
		j.plan = plan
		jobCtx, cancel := context.WithCancel(s.baseCtx)
		j.cancel = cancel
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.wg.Add(1)
		resumes = append(resumes, resume{j: j, ctx: jobCtx})
	}
	// Retention must hold across restarts: evict oldest finished jobs (and
	// their disk artifacts) until both bounds are satisfied again.
	s.enforceBoundsLocked(nil)
	s.mu.Unlock()
	for _, r := range resumes {
		s.logger().Info("resuming interrupted job",
			slog.String("job", r.j.id), slog.Int("from_point", r.j.resumeFrom))
		go r.j.run(r.ctx)
	}
}

// logger returns the engine's logger, or a discard logger when unset.
func (s *Store) logger() *slog.Logger {
	if s.engine.logger != nil {
		return s.engine.logger
	}
	return slog.New(slog.DiscardHandler)
}

// Job is one asynchronous sweep: a validated plan plus an append-only
// buffer of encoded NDJSON result lines. Lines are encoded exactly once,
// when the point completes, so every read of the same range returns
// identical bytes — the property that makes interrupted streams resumable
// without re-simulation. With a durable store each line is additionally
// fsynced to the job's result log before it becomes visible, so the buffer
// survives a coordinator restart.
type Job struct {
	id          string
	store       *Store
	plan        *SweepPlan
	req         SweepRequest
	distributed bool
	totalPoints int
	resumeFrom  int // grid points already on disk when this run started
	cancel      context.CancelFunc
	done        chan struct{}

	mu         sync.Mutex
	lines      [][]byte
	bytes      int64 // total encoded bytes in lines
	accounted  bool  // bytes added to the store's finishedBytes
	state      JobState
	errMsg     string
	reason     string // terminal failure classification (Reason* constants)
	created    time.Time
	finished   time.Time
	userCancel bool          // cancelled by a client, not by store shutdown
	update     chan struct{} // closed and replaced on every append/transition
}

// Create validates req through the engine's sweep planner, registers a new
// job, and starts evaluating it in the background. Validation failures
// surface as ErrInvalidRequest exactly like a synchronous /v1/sweep. A
// request with distributed mode set requires a configured DistributedRunner.
//
// The job's execution context derives from the store (so shutdown cancels
// it), but it inherits the trace ID of the creating request's ctx: kernel
// chunk spans evaluated by the job name the POST /v2/jobs request that
// started it, long after that request returned 202.
func (s *Store) Create(ctx context.Context, req SweepRequest) (*Job, error) {
	if !s.ready.Load() {
		return nil, fmt.Errorf("%w: replaying the durable store", ErrNotReady)
	}
	if req.Distributed && s.runner == nil {
		return nil, invalidf("distributed mode requested but dispatch is not enabled on this server")
	}
	plan, err := s.engine.PlanSweep(req)
	if err != nil {
		return nil, err
	}
	traceID := telemetry.TraceID(ctx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errStoreClosed
	}
	if err := s.evictLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.seq++
	jobCtx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		id:          fmt.Sprintf("job-%d", s.seq),
		store:       s,
		plan:        plan,
		req:         req,
		distributed: req.Distributed,
		totalPoints: plan.NumPoints(),
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       JobRunning,
		created:     time.Now(),
		update:      make(chan struct{}),
	}
	// The manifest is the durable birth certificate: it must exist before
	// any result line, or a crash between the two leaves an orphan log.
	if err := s.persist.saveManifest(j.manifest()); err != nil {
		cancel()
		s.mu.Unlock()
		s.engine.metrics.storeWriteErrors.Inc()
		return nil, fmt.Errorf("service: persist job manifest: %w", err)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.wg.Add(1)
	s.mu.Unlock()
	go j.run(telemetry.WithTraceID(jobCtx, traceID))
	return j, nil
}

// manifest snapshots the job for the durable backend. Callers may hold
// either s.mu or j.mu but not need both: every field read here is immutable
// after creation except state/error/finished, which only the job's own
// goroutine writes.
func (j *Job) manifest() jobManifest {
	m := jobManifest{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Reason:      j.reason,
		TotalPoints: j.totalPoints,
		CreatedAt:   j.created,
		Request:     j.req,
	}
	if j.state.terminal() {
		fin := j.finished
		m.FinishedAt = &fin
	}
	return m
}

// persistTerminal records a job's terminal state in the durable backend and
// releases its result-log handle.
func (s *Store) persistTerminal(j *Job) {
	j.mu.Lock()
	m := j.manifest()
	j.mu.Unlock()
	if err := s.persist.saveManifest(m); err != nil {
		s.engine.metrics.storeWriteErrors.Inc()
		s.logger().Error("persist terminal job state",
			slog.String("job", j.id), slog.String("error", err.Error()))
	}
	s.persist.finishResults(j.id)
}

// evictLocked makes room for one more job, dropping the oldest finished job
// when the store is at capacity. Requires s.mu.
func (s *Store) evictLocked() error {
	if len(s.jobs) < s.maxJobs {
		return nil
	}
	for i, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		finished := j.state.terminal()
		j.mu.Unlock()
		if finished {
			s.removeLocked(i, id, j)
			return nil
		}
	}
	return fmt.Errorf("%w: %d jobs running, retention cap %d", ErrTooManyJobs, len(s.jobs), s.maxJobs)
}

// removeLocked drops a terminal job from the store's bookkeeping and
// deletes its durable artifacts. Requires s.mu; takes j.mu briefly for the
// byte accounting.
func (s *Store) removeLocked(i int, id string, j *Job) {
	delete(s.jobs, id)
	s.order = append(s.order[:i], s.order[i+1:]...)
	j.mu.Lock()
	if j.accounted {
		s.finishedBytes -= j.bytes
	}
	j.mu.Unlock()
	if err := s.persist.remove(id); err != nil {
		s.logger().Error("remove evicted job artifacts",
			slog.String("job", id), slog.String("error", err.Error()))
	}
	s.engine.metrics.jobEvictions.Inc()
}

// enforceBoundsLocked evicts the oldest finished jobs (never except, never a
// running job) while either retention bound is exceeded. Requires s.mu.
func (s *Store) enforceBoundsLocked(except *Job) {
	for s.finishedBytes > s.maxBytes || len(s.jobs) > s.maxJobs {
		evicted := false
		for i, id := range s.order {
			other := s.jobs[id]
			if other == nil || other == except {
				continue
			}
			other.mu.Lock()
			terminal := other.state.terminal()
			other.mu.Unlock()
			if terminal {
				s.removeLocked(i, id, other)
				evicted = true
				break
			}
		}
		if !evicted {
			break // only except and running jobs remain; the bound is best-effort
		}
	}
}

// noteFinished moves a just-terminal job's buffer into the finished-bytes
// account and evicts the oldest finished jobs while the account exceeds the
// store's byte bound.
func (s *Store) noteFinished(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The job may have been evicted by a concurrent Create between turning
	// terminal and reaching here; only account for retained jobs.
	if _, ok := s.jobs[j.id]; ok {
		j.mu.Lock()
		s.finishedBytes += j.bytes
		j.accounted = true
		j.mu.Unlock()
	}
	if s.finishedBytes > s.maxBytes {
		s.enforceBoundsLocked(j)
	}
}

// Get returns the job with the given ID.
func (s *Store) Get(id string) (*Job, error) {
	if !s.ready.Load() {
		return nil, fmt.Errorf("%w: replaying the durable store", ErrNotReady)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return j, nil
}

// BufferBytes returns the encoded result bytes currently held by finished
// jobs (the quantity bounded by MaxResultBytes).
func (s *Store) BufferBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finishedBytes
}

// DiskBytes returns the bytes held on disk by the durable backend (0 for
// the in-memory store) — the dmfb_job_store_disk_bytes gauge.
func (s *Store) DiskBytes() int64 {
	return s.persist.diskBytes()
}

// Evictions returns the number of finished jobs evicted by the retention
// and byte bounds over the store's lifetime.
func (s *Store) Evictions() uint64 {
	return s.engine.metrics.jobEvictions.Value()
}

// Ready reports whether the store accepts work: any durable replay has
// completed and shutdown has not begun.
func (s *Store) Ready() bool {
	if !s.ready.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// DispatchStats snapshots the distributed runner's accounting; zero when
// dispatch is not configured.
func (s *Store) DispatchStats() DispatchStats {
	if s.runner == nil {
		return DispatchStats{}
	}
	return s.runner.Stats()
}

// Counters snapshots the store's job accounting.
func (s *Store) Counters() JobCounters {
	s.mu.Lock()
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			active++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return JobCounters{
		Active:          active,
		Completed:       s.completed.Load(),
		Cancelled:       s.cancelled.Load(),
		Failed:          s.failed.Load(),
		PointsEvaluated: s.points.Load(),
	}
}

// Close cancels every running job and waits for all job goroutines to exit
// (or ctx to expire). After Close, Create fails and Ready reports false;
// finished results remain readable until the process exits. With a durable
// store, jobs interrupted by shutdown keep their on-disk state "running":
// the next store on the same directory resumes them where they stopped —
// client-requested cancellations stay cancelled.
func (s *Store) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.persist.close()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: job drain: %w", ctx.Err())
	}
}

// crashForTest simulates a SIGKILL of the coordinator: persistence stops
// mid-flight (no terminal states are written), running jobs are aborted,
// and file handles are released so a new store can be opened on the same
// directory. Only meaningful with a durable backend; tests use it to assert
// restart-resume semantics without spawning processes.
func (s *Store) crashForTest() {
	if fp, ok := s.persist.(*filePersister); ok {
		fp.crashForTest()
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
}

// run executes the job's sweep — locally through the engine, or sharded
// across workers through the store's runner — appending one encoded NDJSON
// line per completed point, and records the terminal state. Each line is
// durably persisted before it becomes visible to streams, so a reader's
// cursor never runs ahead of what a restart can replay.
func (j *Job) run(ctx context.Context) {
	defer j.store.wg.Done()
	emit := func(rec SweepRecord) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if err := j.store.persist.appendResult(j.id, line); err != nil {
			j.store.engine.metrics.storeWriteErrors.Inc()
			return fmt.Errorf("%w: persist result record: %v", errStorage, err)
		}
		j.mu.Lock()
		j.lines = append(j.lines, line)
		j.bytes += int64(len(line))
		j.bumpLocked()
		j.mu.Unlock()
		j.store.points.Add(1)
		return nil
	}
	var err error
	if j.distributed {
		// Workers resolve nothing themselves: the forwarded request pins
		// the run count the coordinator's planner resolved, so a worker
		// with different engine defaults still computes identical records.
		req := j.req
		req.Runs = j.plan.SimParams().Runs
		err = j.store.runner.RunJob(ctx, j.id, j.plan, req, j.resumeFrom, emit)
	} else {
		err = j.store.engine.RunSweepRange(ctx, j.plan, j.resumeFrom, j.plan.NumPoints(), emit)
	}
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = JobCompleted
		j.store.completed.Add(1)
	case ctx.Err() != nil:
		j.state = JobCancelled
		j.store.cancelled.Add(1)
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
		switch {
		case errors.Is(err, errStorage):
			j.reason = ReasonStorage
		case errors.Is(err, ErrPoisonShard):
			j.reason = ReasonPoisonShard
		default:
			j.reason = ReasonEvaluation
		}
		j.store.failed.Add(1)
	}
	j.finished = time.Now()
	j.store.engine.metrics.jobDuration.Observe(j.finished.Sub(j.created).Seconds())
	j.bumpLocked()
	close(j.done)
	shutdownCancelled := j.state == JobCancelled && !j.userCancel
	j.mu.Unlock()
	if shutdownCancelled && j.store.isClosed() {
		// Interrupted by store shutdown, not by a client: leave the durable
		// state "running" so the next store resumes instead of recording a
		// cancellation the user never asked for. Release the log handle only.
		j.store.persist.finishResults(j.id)
	} else {
		j.store.persistTerminal(j)
	}
	j.store.noteFinished(j)
}

// isClosed reports whether shutdown has begun.
func (s *Store) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// bumpLocked wakes every stream waiting for more lines or a state change.
// Requires j.mu.
func (j *Job) bumpLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		TotalPoints: j.totalPoints,
		PointsDone:  len(j.lines),
		CreatedAt:   j.created,
		Error:       j.errMsg,
		Reason:      j.reason,
		Distributed: j.distributed,
	}
	if j.state.terminal() {
		fin := j.finished
		st.FinishedAt = &fin
	}
	return st
}

// Cancel stops the job and waits for its goroutine to finish, so the
// returned status is already terminal. Cancelling a finished job is a no-op.
// A cancellation requested here is durable: unlike a shutdown interruption,
// the job stays cancelled across a store restart.
func (j *Job) Cancel() JobStatus {
	j.mu.Lock()
	j.userCancel = true
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	<-j.done
	return j.Status()
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (j *Job) Wait(ctx context.Context) (JobStatus, error) {
	select {
	case <-j.done:
		return j.Status(), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// StreamResults writes the job's NDJSON result lines to write, starting at
// the cursor-th record, following the live job until it reaches a terminal
// state, and returning the next cursor. Because every line was encoded
// exactly once at evaluation time, the bytes written for records
// [cursor, end) are identical across calls — an interrupted stream resumed
// at its next unread record concatenates to the exact bytes of an
// uninterrupted stream. A failed or cancelled job's stream ends with a
// trailing {"error": ...} line after its last record, mirroring the
// mid-stream error contract of POST /v1/sweep.
//
// write is called outside the job's lock but from a single goroutine; its
// error aborts the stream (e.g. the client disconnected). ctx cancellation
// stops a follow of a still-running job.
func (j *Job) StreamResults(ctx context.Context, cursor int, write func([]byte) error) (next int, err error) {
	if cursor < 0 {
		return cursor, invalidf("cursor must be non-negative, got %d", cursor)
	}
	for {
		j.mu.Lock()
		lines := j.lines // append-only: the prefix [0, len) is immutable
		state := j.state
		errMsg := j.errMsg
		update := j.update
		j.mu.Unlock()

		for cursor < len(lines) {
			if err := write(lines[cursor]); err != nil {
				return cursor, err
			}
			cursor++
		}
		if state.terminal() {
			switch state {
			case JobFailed:
				line, _ := json.Marshal(SweepError{Error: errMsg})
				return cursor, write(append(line, '\n'))
			case JobCancelled:
				line, _ := json.Marshal(SweepError{Error: "sweep job cancelled"})
				return cursor, write(append(line, '\n'))
			}
			return cursor, nil
		}
		select {
		case <-update:
		case <-ctx.Done():
			return cursor, ctx.Err()
		}
	}
}
