package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmfb/internal/telemetry"
)

// ErrJobNotFound tags lookups of unknown job IDs so handlers can map them to
// HTTP 404.
var ErrJobNotFound = errors.New("job not found")

// ErrTooManyJobs tags job creation attempts rejected because the store is
// full of unfinished jobs; handlers map it to HTTP 429.
var ErrTooManyJobs = errors.New("too many jobs")

// errStoreClosed rejects job creation during shutdown; handlers map it to
// HTTP 503 like any other unavailability.
var errStoreClosed = errors.New("service: job store is shut down")

// JobState names a sweep job's lifecycle phase.
type JobState string

// The four job states. Jobs start running immediately (the engine's
// admission semaphore is what actually paces simulation work) and end in
// exactly one of the three terminal states.
const (
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool { return s != JobRunning }

// JobStatus is the wire form of a job snapshot, returned by POST /v2/jobs,
// GET /v2/jobs/{id}, and DELETE /v2/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// TotalPoints is the size of the job's grid; PointsDone counts emitted
	// records, so PointsDone == TotalPoints iff the job completed.
	TotalPoints int       `json:"total_points"`
	PointsDone  int       `json:"points_done"`
	CreatedAt   time.Time `json:"created_at"`
	// FinishedAt is set once the job reaches a terminal state.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Error describes why a failed job stopped.
	Error string `json:"error,omitempty"`
}

// JobCounters aggregates the store's lifetime accounting for /v1/stats.
type JobCounters struct {
	Active          int
	Completed       uint64
	Cancelled       uint64
	Failed          uint64
	PointsEvaluated uint64
}

// JobStoreConfig tunes the in-memory job store. The zero value gives
// sensible defaults.
type JobStoreConfig struct {
	// MaxJobs bounds the jobs retained in memory (running and finished
	// combined); 0 means 128. Creating a job beyond the bound evicts the
	// oldest finished job, or fails with ErrTooManyJobs if every retained
	// job is still running.
	MaxJobs int
	// MaxResultBytes bounds the encoded result lines retained by finished
	// jobs; 0 means 64 MiB. When a finishing job pushes the total over the
	// bound, the oldest finished jobs are evicted (running jobs never are),
	// so a flood of cheap huge-grid jobs cannot pin unbounded heap.
	MaxResultBytes int64
}

// JobStore owns the lifecycle of asynchronous sweep jobs: creation
// (validated by the engine's sweep planner), execution (one goroutine per
// job, evaluating through the engine's cache/single-flight/admission
// layers), result buffering for cursor-resumable streaming, cancellation,
// and shutdown draining. Results live in memory for as long as the job is
// retained, so a client can re-read any byte range at any time.
type JobStore struct {
	engine   *Engine
	maxJobs  int
	maxBytes int64

	mu            sync.Mutex
	jobs          map[string]*Job
	order         []string // creation order, for bounded eviction
	seq           int
	closed        bool
	finishedBytes int64 // encoded result bytes held by finished jobs

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	completed atomic.Uint64
	cancelled atomic.Uint64
	failed    atomic.Uint64
	points    atomic.Uint64
}

// NewJobStore builds a store executing jobs on e, registering the job
// lifecycle series on e's metric registry.
func NewJobStore(e *Engine, cfg JobStoreConfig) *JobStore {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 128
	}
	if cfg.MaxResultBytes <= 0 {
		cfg.MaxResultBytes = 64 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &JobStore{
		engine:    e,
		maxJobs:   cfg.MaxJobs,
		maxBytes:  cfg.MaxResultBytes,
		jobs:      make(map[string]*Job),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	// Callback series read the store's existing accounting at scrape time.
	// The registry get-or-creates by name, so a second store on the same
	// engine (e.g. NewMux's private fallback store) leaves the first store's
	// series in place rather than double-registering.
	r := e.Registry()
	r.GaugeFunc("dmfb_jobs_active",
		"Sweep jobs currently running.",
		func() float64 { return float64(s.Counters().Active) })
	r.CounterFunc("dmfb_jobs_completed_total",
		"Sweep jobs that finished every grid point.",
		func() float64 { return float64(s.completed.Load()) })
	r.CounterFunc("dmfb_jobs_cancelled_total",
		"Sweep jobs cancelled before completion.",
		func() float64 { return float64(s.cancelled.Load()) })
	r.CounterFunc("dmfb_jobs_failed_total",
		"Sweep jobs that stopped on an evaluation error.",
		func() float64 { return float64(s.failed.Load()) })
	r.CounterFunc("dmfb_job_points_evaluated_total",
		"Grid points emitted by sweep jobs (cached or simulated).",
		func() float64 { return float64(s.points.Load()) })
	r.GaugeFunc("dmfb_job_result_buffer_bytes",
		"Encoded NDJSON result bytes held by finished jobs.",
		func() float64 { return float64(s.BufferBytes()) })
	return s
}

// Job is one asynchronous sweep: a validated plan plus an append-only
// buffer of encoded NDJSON result lines. Lines are encoded exactly once,
// when the point completes, so every read of the same range returns
// identical bytes — the property that makes interrupted streams resumable
// without re-simulation.
type Job struct {
	id     string
	store  *JobStore
	plan   *SweepPlan
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	lines     [][]byte
	bytes     int64 // total encoded bytes in lines
	accounted bool  // bytes added to the store's finishedBytes
	state     JobState
	errMsg    string
	created   time.Time
	finished  time.Time
	update    chan struct{} // closed and replaced on every append/transition
}

// Create validates req through the engine's sweep planner, registers a new
// job, and starts evaluating it in the background. Validation failures
// surface as ErrInvalidRequest exactly like a synchronous /v1/sweep.
//
// The job's execution context derives from the store (so shutdown cancels
// it), but it inherits the trace ID of the creating request's ctx: kernel
// chunk spans evaluated by the job name the POST /v2/jobs request that
// started it, long after that request returned 202.
func (s *JobStore) Create(ctx context.Context, req SweepRequest) (*Job, error) {
	plan, err := s.engine.PlanSweep(req)
	if err != nil {
		return nil, err
	}
	traceID := telemetry.TraceID(ctx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errStoreClosed
	}
	if err := s.evictLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.seq++
	jobCtx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		id:      fmt.Sprintf("job-%d", s.seq),
		store:   s,
		plan:    plan,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobRunning,
		created: time.Now(),
		update:  make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.wg.Add(1)
	s.mu.Unlock()
	go j.run(telemetry.WithTraceID(jobCtx, traceID))
	return j, nil
}

// evictLocked makes room for one more job, dropping the oldest finished job
// when the store is at capacity. Requires s.mu.
func (s *JobStore) evictLocked() error {
	if len(s.jobs) < s.maxJobs {
		return nil
	}
	for i, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		finished := j.state.terminal()
		j.mu.Unlock()
		if finished {
			s.removeLocked(i, id, j)
			return nil
		}
	}
	return fmt.Errorf("%w: %d jobs running, retention cap %d", ErrTooManyJobs, len(s.jobs), s.maxJobs)
}

// removeLocked drops a terminal job from the store's bookkeeping. Requires
// s.mu; takes j.mu briefly for the byte accounting.
func (s *JobStore) removeLocked(i int, id string, j *Job) {
	delete(s.jobs, id)
	s.order = append(s.order[:i], s.order[i+1:]...)
	j.mu.Lock()
	if j.accounted {
		s.finishedBytes -= j.bytes
	}
	j.mu.Unlock()
	s.engine.metrics.jobEvictions.Inc()
}

// noteFinished moves a just-terminal job's buffer into the finished-bytes
// account and evicts the oldest finished jobs (never j itself, never a
// running job) while the account exceeds the store's byte bound.
func (s *JobStore) noteFinished(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The job may have been evicted by a concurrent Create between turning
	// terminal and reaching here; only account for retained jobs.
	if _, ok := s.jobs[j.id]; ok {
		j.mu.Lock()
		s.finishedBytes += j.bytes
		j.accounted = true
		j.mu.Unlock()
	}
	for s.finishedBytes > s.maxBytes {
		evicted := false
		for i, id := range s.order {
			other := s.jobs[id]
			if other == nil || other == j {
				continue
			}
			other.mu.Lock()
			terminal := other.state.terminal()
			other.mu.Unlock()
			if terminal {
				s.removeLocked(i, id, other)
				evicted = true
				break
			}
		}
		if !evicted {
			break // only j and running jobs remain; the bound is best-effort
		}
	}
}

// Get returns the job with the given ID.
func (s *JobStore) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return j, nil
}

// BufferBytes returns the encoded result bytes currently held by finished
// jobs (the quantity bounded by MaxResultBytes).
func (s *JobStore) BufferBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finishedBytes
}

// Evictions returns the number of finished jobs evicted by the retention
// and byte bounds over the store's lifetime.
func (s *JobStore) Evictions() uint64 {
	return s.engine.metrics.jobEvictions.Value()
}

// Counters snapshots the store's job accounting.
func (s *JobStore) Counters() JobCounters {
	s.mu.Lock()
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			active++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return JobCounters{
		Active:          active,
		Completed:       s.completed.Load(),
		Cancelled:       s.cancelled.Load(),
		Failed:          s.failed.Load(),
		PointsEvaluated: s.points.Load(),
	}
}

// Close cancels every running job and waits for all job goroutines to exit
// (or ctx to expire). After Close, Create fails; finished results remain
// readable until the process exits.
func (s *JobStore) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: job drain: %w", ctx.Err())
	}
}

// run executes the job's sweep, appending one encoded NDJSON line per
// completed point, and records the terminal state.
func (j *Job) run(ctx context.Context) {
	defer j.store.wg.Done()
	err := j.store.engine.RunSweep(ctx, j.plan, func(rec SweepRecord) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		j.mu.Lock()
		j.lines = append(j.lines, line)
		j.bytes += int64(len(line))
		j.bumpLocked()
		j.mu.Unlock()
		j.store.points.Add(1)
		return nil
	})
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = JobCompleted
		j.store.completed.Add(1)
	case ctx.Err() != nil:
		j.state = JobCancelled
		j.store.cancelled.Add(1)
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
		j.store.failed.Add(1)
	}
	j.finished = time.Now()
	j.store.engine.metrics.jobDuration.Observe(j.finished.Sub(j.created).Seconds())
	j.bumpLocked()
	close(j.done)
	j.mu.Unlock()
	j.store.noteFinished(j)
}

// bumpLocked wakes every stream waiting for more lines or a state change.
// Requires j.mu.
func (j *Job) bumpLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		TotalPoints: j.plan.NumPoints(),
		PointsDone:  len(j.lines),
		CreatedAt:   j.created,
		Error:       j.errMsg,
	}
	if j.state.terminal() {
		fin := j.finished
		st.FinishedAt = &fin
	}
	return st
}

// Cancel stops the job and waits for its goroutine to finish, so the
// returned status is already terminal. Cancelling a finished job is a no-op.
func (j *Job) Cancel() JobStatus {
	j.cancel()
	<-j.done
	return j.Status()
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (j *Job) Wait(ctx context.Context) (JobStatus, error) {
	select {
	case <-j.done:
		return j.Status(), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// StreamResults writes the job's NDJSON result lines to write, starting at
// the cursor-th record, following the live job until it reaches a terminal
// state, and returning the next cursor. Because every line was encoded
// exactly once at evaluation time, the bytes written for records
// [cursor, end) are identical across calls — an interrupted stream resumed
// at its next unread record concatenates to the exact bytes of an
// uninterrupted stream. A failed or cancelled job's stream ends with a
// trailing {"error": ...} line after its last record, mirroring the
// mid-stream error contract of POST /v1/sweep.
//
// write is called outside the job's lock but from a single goroutine; its
// error aborts the stream (e.g. the client disconnected). ctx cancellation
// stops a follow of a still-running job.
func (j *Job) StreamResults(ctx context.Context, cursor int, write func([]byte) error) (next int, err error) {
	if cursor < 0 {
		return cursor, invalidf("cursor must be non-negative, got %d", cursor)
	}
	for {
		j.mu.Lock()
		lines := j.lines // append-only: the prefix [0, len) is immutable
		state := j.state
		errMsg := j.errMsg
		update := j.update
		j.mu.Unlock()

		for cursor < len(lines) {
			if err := write(lines[cursor]); err != nil {
				return cursor, err
			}
			cursor++
		}
		if state.terminal() {
			switch state {
			case JobFailed:
				line, _ := json.Marshal(SweepError{Error: errMsg})
				return cursor, write(append(line, '\n'))
			case JobCancelled:
				line, _ := json.Marshal(SweepError{Error: "sweep job cancelled"})
				return cursor, write(append(line, '\n'))
			}
			return cursor, nil
		}
		select {
		case <-update:
		case <-ctx.Done():
			return cursor, ctx.Err()
		}
	}
}
