package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// jobSweepBody is a small but heterogeneous grid: every strategy and both
// defect models, 16 points total.
const jobSweepBody = `{"strategies":["none","local","shifted","hex"],"designs":["DTMB(2,6)"],` +
	`"n_primaries":[40],"ps":[0.9,0.95],"spare_rows":[1],` +
	`"defect_models":["independent","clustered"],"cluster_size":4,"runs":150,"seed":11}`

// slowJobBody is a grid expensive enough to still be running when the test
// cancels it.
const slowJobBody = `{"strategies":["local","hex"],"designs":["DTMB(4,4)"],` +
	`"n_primaries":[100],"p_min":0.90,"p_max":0.99,"p_points":16,` +
	`"defect_models":["independent","clustered"],"runs":200000,"seed":3}`

func testJobMux(t *testing.T, cfg EngineConfig, jcfg JobStoreConfig) (*http.ServeMux, *Store) {
	t.Helper()
	e := NewEngine(cfg)
	jobs := NewJobStore(e, jcfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := jobs.Close(ctx); err != nil {
			t.Errorf("job store close: %v", err)
		}
	})
	return NewMux(e, jobs), jobs
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	mux, jobs := testJobMux(t, EngineConfig{DefaultRuns: 150, CacheSize: 64}, JobStoreConfig{})

	w := doJSON(t, mux, http.MethodPost, "/v2/jobs", jobSweepBody)
	if w.Code != http.StatusAccepted {
		t.Fatalf("create status = %d, body %s", w.Code, w.Body.String())
	}
	if loc := w.Header().Get("Location"); !strings.HasPrefix(loc, "/v2/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var st JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.TotalPoints != 16 {
		t.Fatalf("create status %+v", st)
	}

	j, err := jobs.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCompleted || final.PointsDone != 16 || final.FinishedAt == nil {
		t.Fatalf("final status %+v", final)
	}

	w = doJSON(t, mux, http.MethodGet, "/v2/jobs/"+st.ID, "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"state":"completed"`) {
		t.Fatalf("status endpoint: %d %s", w.Code, w.Body.String())
	}

	w = doJSON(t, mux, http.MethodGet, "/v2/jobs/"+st.ID+"/results", "")
	if w.Code != http.StatusOK {
		t.Fatalf("results status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results Content-Type = %q", ct)
	}
	full := w.Body.Bytes()
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	if len(lines) != 16 {
		t.Fatalf("results has %d lines, want 16", len(lines))
	}
	for i, line := range lines {
		var rec SweepRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Index != i {
			t.Errorf("line %d has index %d", i, rec.Index)
		}
	}

	// A cursor-suffixed read returns exactly the tail of the full stream.
	w = doJSON(t, mux, http.MethodGet, "/v2/jobs/"+st.ID+"/results?cursor=9", "")
	wantTail := bytes.Join(lines[9:], []byte("\n"))
	if got := bytes.TrimSuffix(w.Body.Bytes(), []byte("\n")); !bytes.Equal(got, wantTail) {
		t.Errorf("cursor=9 tail mismatch:\n got %s\nwant %s", got, wantTail)
	}
	// A cursor at the end returns an empty, clean stream.
	w = doJSON(t, mux, http.MethodGet, "/v2/jobs/"+st.ID+"/results?cursor=16", "")
	if w.Code != http.StatusOK || w.Body.Len() != 0 {
		t.Errorf("cursor=16: status %d, %d bytes", w.Code, w.Body.Len())
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v2/jobs/job-999", http.StatusNotFound},
		{"/v2/jobs/job-999/results", http.StatusNotFound},
		{"/v2/jobs/" + st.ID + "/results?cursor=-1", http.StatusBadRequest},
		{"/v2/jobs/" + st.ID + "/results?cursor=x", http.StatusBadRequest},
	} {
		if w := doJSON(t, mux, http.MethodGet, tc.path, ""); w.Code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, w.Code, tc.want)
		}
	}
}

func TestJobCancellationAndCounters(t *testing.T) {
	mux, _ := testJobMux(t, EngineConfig{DefaultRuns: 150, CacheSize: 64, MaxConcurrent: 1}, JobStoreConfig{})

	// Run one small job to completion for the completed/points counters.
	w := doJSON(t, mux, http.MethodPost, "/v2/jobs", jobSweepBody)
	var done JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &done); err != nil {
		t.Fatal(err)
	}
	// Streaming the results follows the job to its end.
	w = doJSON(t, mux, http.MethodGet, "/v2/jobs/"+done.ID+"/results", "")
	if w.Code != http.StatusOK {
		t.Fatalf("results: %d", w.Code)
	}

	// Start a slow job and cancel it mid-flight.
	w = doJSON(t, mux, http.MethodPost, "/v2/jobs", slowJobBody)
	if w.Code != http.StatusAccepted {
		t.Fatalf("slow create: %d %s", w.Code, w.Body.String())
	}
	var slow JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	w = doJSON(t, mux, http.MethodDelete, "/v2/jobs/"+slow.ID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", w.Code, w.Body.String())
	}
	var cancelled JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.State != JobCancelled {
		t.Fatalf("state after DELETE = %q", cancelled.State)
	}
	// Its results stream ends with the cancellation error record.
	w = doJSON(t, mux, http.MethodGet, "/v2/jobs/"+slow.ID+"/results", "")
	if !strings.Contains(w.Body.String(), `"error":"sweep job cancelled"`) {
		t.Errorf("cancelled results missing trailing error: %s", w.Body.String())
	}

	var st StatsResponse
	w = doJSON(t, mux, http.MethodGet, "/v1/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.JobsCompleted != 1 || st.JobsCancelled != 1 || st.JobsActive != 0 {
		t.Errorf("job counters %+v", st)
	}
	if st.PointsEvaluated < 16 {
		t.Errorf("points_evaluated = %d, want >= 16", st.PointsEvaluated)
	}
}

func TestJobStoreCapacityAndEviction(t *testing.T) {
	e := NewEngine(EngineConfig{DefaultRuns: 150, MaxConcurrent: 1})
	jobs := NewJobStore(e, JobStoreConfig{MaxJobs: 1})
	defer jobs.Close(context.Background())

	var slowReq SweepRequest
	if err := json.Unmarshal([]byte(slowJobBody), &slowReq); err != nil {
		t.Fatal(err)
	}
	running, err := jobs.Create(context.Background(), slowReq)
	if err != nil {
		t.Fatal(err)
	}
	// The store is full of running jobs: creation must fail with
	// ErrTooManyJobs, not evict live work.
	if _, err := jobs.Create(context.Background(), slowReq); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("create on full store: %v", err)
	}
	running.Cancel()
	// A finished job is evictable; creation now succeeds and the old job is
	// gone.
	replacement, err := jobs.Create(context.Background(), slowReq)
	if err != nil {
		t.Fatalf("create after cancel: %v", err)
	}
	if _, err := jobs.Get(running.ID()); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("evicted job still retrievable: %v", err)
	}
	replacement.Cancel()
}

// TestJobStoreByteBoundEvictsOldestFinished pins the memory bound: finished
// jobs whose combined encoded results exceed MaxResultBytes are evicted
// oldest-first as newer jobs finish, so cheap huge-grid jobs cannot pin
// unbounded heap.
func TestJobStoreByteBoundEvictsOldestFinished(t *testing.T) {
	e := NewEngine(EngineConfig{DefaultRuns: 100})
	// Each closed-form job below buffers ~2 KB; a 5 KB bound retains at
	// most two finished jobs' results.
	jobs := NewJobStore(e, JobStoreConfig{MaxResultBytes: 5 << 10})
	defer jobs.Close(context.Background())

	req := SweepRequest{Strategies: []string{"none"}, NPrimaries: []int{100}, PPoints: 11, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := jobs.Create(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	if _, err := jobs.Get(ids[0]); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("oldest finished job survived the byte bound: %v", err)
	}
	if _, err := jobs.Get(ids[len(ids)-1]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	jobs.mu.Lock()
	held := jobs.finishedBytes
	jobs.mu.Unlock()
	if held > 5<<10 {
		t.Errorf("finishedBytes %d exceeds the 5 KiB bound", held)
	}
}

// TestJobResumeByteIdentityAcrossWorkers is the acceptance property of the
// resumable stream: a results stream interrupted at any cursor and resumed
// concatenates to the exact bytes of an uninterrupted stream, and those
// bytes are identical across worker counts and admission widths.
func TestJobResumeByteIdentityAcrossWorkers(t *testing.T) {
	var req SweepRequest
	if err := json.Unmarshal([]byte(jobSweepBody), &req); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var fullRef []byte
	for _, cfg := range []EngineConfig{
		{DefaultRuns: 150, Workers: 1, MaxConcurrent: 1},
		{DefaultRuns: 150, Workers: 4, MaxConcurrent: 4},
	} {
		jobs := NewJobStore(NewEngine(cfg), JobStoreConfig{})
		j, err := jobs.Create(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		var full bytes.Buffer
		end, err := j.StreamResults(ctx, 0, func(line []byte) error {
			full.Write(line)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if fullRef == nil {
			fullRef = append([]byte(nil), full.Bytes()...)
		} else if !bytes.Equal(fullRef, full.Bytes()) {
			t.Fatalf("stream bytes differ across engine config %+v", cfg)
		}

		errDrop := errors.New("connection dropped")
		for k := 0; k <= end; k++ {
			var got bytes.Buffer
			wrote := 0
			// Interrupt: the "connection" dies after k records.
			cursor, err := j.StreamResults(ctx, 0, func(line []byte) error {
				if wrote == k {
					return errDrop
				}
				wrote++
				got.Write(line)
				return nil
			})
			if k < end && !errors.Is(err, errDrop) {
				t.Fatalf("k=%d: interrupt not surfaced: %v", k, err)
			}
			if cursor != k {
				t.Fatalf("k=%d: cursor after interrupt = %d", k, cursor)
			}
			// Resume at the reported cursor and drain to the end.
			if _, err := j.StreamResults(ctx, cursor, func(line []byte) error {
				got.Write(line)
				return nil
			}); err != nil {
				t.Fatalf("k=%d: resume: %v", k, err)
			}
			if !bytes.Equal(got.Bytes(), fullRef) {
				t.Fatalf("k=%d: interrupted+resumed bytes differ from uninterrupted stream", k)
			}
		}
		if err := jobs.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}
