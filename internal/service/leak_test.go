package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSweepStreamCancelAndShutdownJoinsAllGoroutines starts a long /v1/sweep
// stream over a real server, cancels the request mid-stream, shuts the
// server down, and asserts via before/after goroutine accounting that every
// sweep worker, Monte-Carlo worker, and server goroutine joined. This is the
// end-to-end version of the sweep package's cancellation-leak test: it
// covers the handler, the admission semaphore, and the HTTP plumbing too.
func TestSweepStreamCancelAndShutdownJoinsAllGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := NewServer(ServerConfig{
		Addr:   "127.0.0.1:0",
		Engine: EngineConfig{DefaultRuns: 200000, Workers: 4, MaxConcurrent: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	// A grid long enough that the stream is alive when we cancel: 64 points
	// at 200k runs each.
	body := `{"strategies":["local","hex"],"designs":["DTMB(4,4)"],` +
		`"n_primaries":[100],"p_min":0.90,"p_max":0.99,"p_points":16,` +
		`"defect_models":["independent","clustered"],"seed":3}`
	ctx, cancel := context.WithCancel(context.Background())
	client := &http.Client{Transport: &http.Transport{}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+srv.Addr()+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Wait for the first record so the sweep is demonstrably in flight, then
	// cancel the request while later points are still being evaluated.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream ended before first record: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()
	client.CloseIdleConnections()

	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Goroutine counts settle asynchronously (connection teardown, worker
	// joins); poll with a deadline before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+1 { // +1 tolerates runtime bookkeeping goroutines
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before %d, after %d; stacks:\n%s",
				before, after, stackSummary(buf[:n]))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobShutdownDrainsWithoutLeaks starts a long-running /v2 sweep job
// plus a live results-stream follower, shuts the server down mid-job, and
// asserts via goroutine accounting that the job goroutine, its Monte-Carlo
// workers, and the follower's handler all joined: graceful shutdown cancels
// running jobs rather than leaking them.
func TestJobShutdownDrainsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := NewServer(ServerConfig{
		Addr:   "127.0.0.1:0",
		Engine: EngineConfig{DefaultRuns: 200000, Workers: 4, MaxConcurrent: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	body := `{"strategies":["local","hex"],"designs":["DTMB(4,4)"],` +
		`"n_primaries":[100],"p_min":0.90,"p_max":0.99,"p_points":16,` +
		`"defect_models":["independent","clustered"],"seed":3}`
	resp, err := http.Post("http://"+srv.Addr()+"/v2/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create job: status %d, err %v, body %s", resp.StatusCode, err, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	// Follow the job's result stream so shutdown also has a live streaming
	// handler to unblock. Wait for the first record so the follow is
	// demonstrably attached.
	streamReady := make(chan struct{})
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.Get("http://" + srv.Addr() + "/v2/jobs/" + st.ID + "/results")
		if err != nil {
			close(streamReady)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		first := true
		for sc.Scan() {
			if first {
				close(streamReady)
				first = false
			}
		}
		if first {
			close(streamReady)
		}
	}()
	<-streamReady

	shutdownCtx, stop := context.WithTimeout(context.Background(), 20*time.Second)
	defer stop()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	<-streamDone

	if jc := srv.Jobs().Counters(); jc.Active != 0 || jc.Cancelled != 1 {
		t.Errorf("job counters after shutdown: %+v", jc)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before %d, after %d; stacks:\n%s",
				before, after, stackSummary(buf[:n]))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stackSummary trims a full stack dump to its goroutine headers, enough to
// identify a leaked worker without drowning the test log.
func stackSummary(dump []byte) string {
	var b bytes.Buffer
	for _, block := range bytes.Split(dump, []byte("\n\n")) {
		lines := bytes.SplitN(block, []byte("\n"), 3)
		for i := 0; i < len(lines) && i < 2; i++ {
			fmt.Fprintf(&b, "%s\n", lines[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
