package service

import (
	"dmfb/internal/telemetry"
)

// serviceMetrics bundles every service-layer instrument: the kernel and
// sweep bundles threaded down into simulations, plus the HTTP, cache,
// admission, streaming, and job instruments the engine and handlers record
// directly. It is built once per engine from the configured registry; with a
// nil registry every instrument still works (unregistered), so no layer
// needs nil checks.
type serviceMetrics struct {
	registry *telemetry.Registry

	kernel *telemetry.KernelMetrics
	sweep  *telemetry.SweepMetrics

	// httpRequests counts finished requests by status code; httpDuration is
	// the request wall-time histogram. Both are recorded by the middleware.
	httpRequests *telemetry.CounterVec
	httpDuration *telemetry.Histogram
	// cacheHits/cacheMisses count result-cache lookups by cache namespace
	// ("yield", "recommend", "hex", ...), recorded inside the cache.
	cacheHits   *telemetry.CounterVec
	cacheMisses *telemetry.CounterVec
	// admissionWait observes how long each admitted simulation waited on the
	// engine's admission semaphore (uncontended admissions observe ~0).
	admissionWait *telemetry.Histogram
	// streamFlushes counts NDJSON records flushed to clients, by stream
	// ("sweep" for POST /v1/sweep, "job" for GET /v2/jobs/{id}/results).
	streamFlushes *telemetry.CounterVec
	// jobDuration observes each sweep job's creation-to-terminal wall time;
	// jobEvictions counts finished jobs evicted by the store's retention and
	// byte bounds.
	jobDuration  *telemetry.Histogram
	jobEvictions *telemetry.Counter
	// storeWriteErrors counts durable-store write failures (manifest saves
	// and result appends that errored); each one turns into a typed
	// failed/storage job rather than a wedged store, so a non-zero rate here
	// is an operator page, not a client bug.
	storeWriteErrors *telemetry.Counter
}

// jobDurationBuckets spans the realistic job range: sub-second cached grids
// to multi-minute cold sweeps.
var jobDurationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}

// newServiceMetrics registers the service instrument set on r (nil r yields
// working, unregistered instruments).
func newServiceMetrics(r *telemetry.Registry) *serviceMetrics {
	m := &serviceMetrics{
		registry: r,
		kernel:   telemetry.NewKernelMetrics(r),
		sweep:    telemetry.NewSweepMetrics(r),
		httpRequests: r.CounterVec("dmfb_http_requests_total",
			"HTTP requests served, by status code.", "code"),
		httpDuration: r.Histogram("dmfb_http_request_duration_seconds",
			"Wall time of one HTTP request.", nil),
		cacheHits: r.CounterVec("dmfb_cache_hits_total",
			"Result-cache hits, by cache namespace.", "kind"),
		cacheMisses: r.CounterVec("dmfb_cache_misses_total",
			"Result-cache misses, by cache namespace.", "kind"),
		admissionWait: r.Histogram("dmfb_admission_wait_seconds",
			"Time each admitted simulation waited on the admission semaphore.", nil),
		streamFlushes: r.CounterVec("dmfb_stream_flushes_total",
			"NDJSON records flushed to streaming responses, by stream.", "stream"),
		jobDuration: r.Histogram("dmfb_job_duration_seconds",
			"Wall time of one sweep job from creation to terminal state.", jobDurationBuckets),
		jobEvictions: r.Counter("dmfb_job_evictions_total",
			"Finished jobs evicted to satisfy the store's retention bounds."),
		storeWriteErrors: r.Counter("dmfb_store_write_errors_total",
			"Durable job-store write failures (manifest saves and result appends)."),
	}
	// Materialize both stream children so the family is present on the very
	// first scrape, before any NDJSON response has flushed.
	m.streamFlushes.With("sweep")
	m.streamFlushes.With("job")
	return m
}
