package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dmfb/internal/telemetry"
)

// doHandler sends one request through the full production handler
// (middleware included), with the JSON content type POSTs require.
func doHandler(t *testing.T, h http.Handler, method, path, body string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// sampleValue sums every sample of a family whose label body contains want
// (pass "" to sum all its samples).
func sampleValue(exp *telemetry.Exposition, name, want string) float64 {
	var sum float64
	for _, s := range exp.Samples {
		if s.Name == name && strings.Contains(s.Labels, want) {
			sum += s.Value
		}
	}
	return sum
}

// TestMetricsEndpoint drives real traffic through the production handler
// and checks that GET /metrics serves a valid Prometheus exposition whose
// numbers agree with the traffic: one simulated yield (a cache miss), one
// repeat (a hit), with the kernel trial counter matching the run count.
func TestMetricsEndpoint(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 300})
	h := NewHandler(e, nil, nil)
	body := `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":1}`
	for i := 0; i < 2; i++ {
		if w := doHandler(t, h, http.MethodPost, "/v1/yield", body, nil); w.Code != http.StatusOK {
			t.Fatalf("yield request %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	w := doHandler(t, h, http.MethodGet, "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	exp, err := telemetry.ParseExposition(w.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	fams := exp.Families()
	for _, want := range []string{
		"dmfb_kernel_trials_total",
		"dmfb_kernel_trials_all_healthy_total",
		"dmfb_kernel_matcher_invocations_total",
		"dmfb_kernel_memo_hits_total",
		"dmfb_kernel_memo_misses_total",
		"dmfb_kernel_chunk_duration_seconds",
		"dmfb_cache_hits_total",
		"dmfb_cache_misses_total",
		"dmfb_cache_entries",
		"dmfb_cache_capacity",
		"dmfb_http_requests_total",
		"dmfb_http_request_duration_seconds",
		"dmfb_admission_wait_seconds",
		"dmfb_simulations_in_flight",
		"dmfb_simulations_completed_total",
		"dmfb_flight_shared_total",
		"dmfb_jobs_active",
		"dmfb_jobs_completed_total",
		"dmfb_job_result_buffer_bytes",
		"dmfb_job_duration_seconds",
		"dmfb_job_evictions_total",
		"dmfb_stream_flushes_total",
		"dmfb_uptime_seconds",
	} {
		if !fams[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if got := sampleValue(exp, "dmfb_kernel_trials_total", ""); got != 300 {
		t.Errorf("kernel trials = %v, want 300 (one uncached simulation)", got)
	}
	if got := sampleValue(exp, "dmfb_cache_misses_total", `kind="yield"`); got != 1 {
		t.Errorf(`cache misses{kind="yield"} = %v, want 1`, got)
	}
	if got := sampleValue(exp, "dmfb_cache_hits_total", `kind="yield"`); got != 1 {
		t.Errorf(`cache hits{kind="yield"} = %v, want 1`, got)
	}
	// The scrape itself records its own metrics only after the handler
	// returns, so at scrape time exactly the two yield POSTs had finished.
	if got := sampleValue(exp, "dmfb_http_requests_total", `code="200"`); got != 2 {
		t.Errorf(`http requests{code="200"} = %v, want 2`, got)
	}
	if got := sampleValue(exp, "dmfb_kernel_chunk_duration_seconds_count", ""); got == 0 {
		t.Error("kernel chunk histogram recorded no chunks")
	}
	if got := sampleValue(exp, "dmfb_admission_wait_seconds_count", ""); got != 1 {
		t.Errorf("admission waits = %v, want 1 (one uncached simulation)", got)
	}
}

// TestStatsReportsKernelAndStreamCounters exercises a streaming sweep and
// checks the extended /v1/stats fields that summarize the telemetry
// registry: kernel trial counts, admission waits, and NDJSON flushes
// (httptest's recorder implements http.Flusher, so each record flushes).
func TestStatsReportsKernelAndStreamCounters(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 200})
	h := NewHandler(e, nil, nil)
	sweep := `{"strategies":["none","local"],"designs":["DTMB(2,6)"],"n_primaries":[40],"ps":[0.9,0.95],"runs":200,"seed":3}`
	if w := doHandler(t, h, http.MethodPost, "/v1/sweep", sweep, nil); w.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", w.Code, w.Body)
	}
	w := doHandler(t, h, http.MethodGet, "/v1/stats", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d: %s", w.Code, w.Body)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	// Two local-strategy points simulate (the "none" strategy is closed
	// form): 2 × 200 trials through the kernel.
	if st.KernelTrials != 400 {
		t.Errorf("stats kernel_trials = %d, want 400", st.KernelTrials)
	}
	if st.KernelAllHealthy+st.KernelMatcherInvocations != st.KernelTrials {
		t.Errorf("all_healthy %d + matcher %d != trials %d",
			st.KernelAllHealthy, st.KernelMatcherInvocations, st.KernelTrials)
	}
	if st.KernelChunks == 0 {
		t.Error("stats kernel_chunks = 0, want > 0")
	}
	if st.AdmissionWaits != 2 {
		t.Errorf("stats admission_waits = %d, want 2", st.AdmissionWaits)
	}
	if st.StreamFlushes != 4 {
		t.Errorf("stats stream_flushes = %d, want 4 (one per grid point)", st.StreamFlushes)
	}
}

// syncBuffer is a mutex-guarded log sink: kernel workers emit chunk spans
// concurrently with the serving goroutine's access log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestTraceIDLinksAccessLogToKernelSpans sends one yield request with a
// caller-chosen X-Request-ID through a debug-level logger shared by the
// middleware and the engine, and verifies the ID appears both in the
// http_access line and in every kernel_chunk span the request caused —
// the cross-layer join the observability design promises.
func TestTraceIDLinksAccessLogToKernelSpans(t *testing.T) {
	sink := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug}))
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 500, Logger: logger})
	h := NewHandler(e, nil, logger)
	body := `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":500,"seed":9}`
	w := doHandler(t, h, http.MethodPost, "/v1/yield", body, map[string]string{"X-Request-ID": "trace-join-1"})
	if w.Code != http.StatusOK {
		t.Fatalf("yield status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Request-ID"); got != "trace-join-1" {
		t.Fatalf("X-Request-ID echoed as %q, want trace-join-1", got)
	}
	var access, spans int
	for _, line := range sink.Lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		switch rec["msg"] {
		case "http_access":
			access++
			if rec["request_id"] != "trace-join-1" {
				t.Errorf("http_access request_id = %v, want trace-join-1", rec["request_id"])
			}
		case "kernel_chunk":
			spans++
			if rec["trace_id"] != "trace-join-1" {
				t.Errorf("kernel_chunk trace_id = %v, want trace-join-1", rec["trace_id"])
			}
		}
	}
	if access != 1 {
		t.Errorf("got %d http_access lines, want 1", access)
	}
	if spans == 0 {
		t.Error("no kernel_chunk spans logged at debug level")
	}
}
