package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// modelSweepBody exercises all four strategies under both defect models.
const modelSweepBody = `{"strategies":["none","local","shifted","hex"],` +
	`"designs":["DTMB(2,6)"],"n_primaries":[24],` +
	`"ps":[0.92,0.97],"spare_rows":[1],` +
	`"defect_models":["independent","clustered"],"cluster_size":3,` +
	`"runs":200,"seed":11}`

func decodeSweepNDJSON(t *testing.T, body string) []SweepRecord {
	t.Helper()
	var recs []SweepRecord
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var rec SweepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestSweepHexAndClusteredStream(t *testing.T) {
	mux, _ := testMux()
	w := doJSON(t, mux, http.MethodPost, "/v1/sweep", modelSweepBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	recs := decodeSweepNDJSON(t, w.Body.String())
	// 4 strategies × 2 models × 2 ps (one design, one n, one spare-row count).
	if want := 4 * 2 * 2; len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}
	seen := map[[2]string]int{}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
		seen[[2]string{rec.Strategy, rec.DefectModel}]++
		switch rec.DefectModel {
		case "independent":
			if rec.ClusterSize != 0 {
				t.Errorf("independent record carries cluster_size: %+v", rec)
			}
		case "clustered":
			if rec.ClusterSize != 3 {
				t.Errorf("clustered record cluster_size %v, want 3", rec.ClusterSize)
			}
		default:
			t.Errorf("record %d has model %q", i, rec.DefectModel)
		}
		if rec.Strategy == "hex" {
			if rec.Design != "DTMB(2,6)" {
				t.Errorf("hex record design %q", rec.Design)
			}
			if rec.NTotal <= rec.NPrimary {
				t.Errorf("hex record NTotal %d <= n %d", rec.NTotal, rec.NPrimary)
			}
		}
	}
	for _, strat := range []string{"none", "local", "shifted", "hex"} {
		for _, model := range []string{"independent", "clustered"} {
			if seen[[2]string{strat, model}] != 2 {
				t.Errorf("(%s, %s): %d records, want 2", strat, model, seen[[2]string{strat, model}])
			}
		}
	}
}

// TestSweepByteIdenticalAcrossWorkersAndGOMAXPROCS asserts the PR 2
// invariant extended to the hex strategy and the clustered defect model:
// the NDJSON stream is a pure function of the request, independent of both
// the per-simulation worker count and the scheduler's parallelism.
func TestSweepByteIdenticalAcrossWorkersAndGOMAXPROCS(t *testing.T) {
	run := func(workers, maxConcurrent, gomaxprocs int) string {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		e := NewEngine(EngineConfig{Workers: workers, MaxConcurrent: maxConcurrent})
		mux := NewMux(e, nil)
		w := doJSON(t, mux, http.MethodPost, "/v1/sweep", modelSweepBody)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	base := run(1, 1, 1)
	for _, cfg := range []struct{ workers, maxConcurrent, gomaxprocs int }{
		{4, 4, 1},
		{1, 1, 8},
		{4, 4, 8},
	} {
		got := run(cfg.workers, cfg.maxConcurrent, cfg.gomaxprocs)
		if got != base {
			t.Fatalf("sweep bytes differ at workers=%d gomaxprocs=%d:\n--- base:\n%s\n--- got:\n%s",
				cfg.workers, cfg.gomaxprocs, base, got)
		}
	}
}

func TestSweepHexAndClusteredPointsAreCached(t *testing.T) {
	mux, _ := testMux()
	first := doJSON(t, mux, http.MethodPost, "/v1/sweep", modelSweepBody)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body.String())
	}
	second := doJSON(t, mux, http.MethodPost, "/v1/sweep", modelSweepBody)
	recs := decodeSweepNDJSON(t, second.Body.String())
	for _, rec := range recs {
		if rec.Strategy == "none" {
			continue // closed form, never cached
		}
		if !rec.Cached {
			t.Errorf("(%s, %s, p=%v) not served from cache on repeat", rec.Strategy, rec.DefectModel, rec.P)
		}
	}
}

func TestSweepModelAxisValidation(t *testing.T) {
	mux, _ := testMux()
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown model", `{"defect_models":["quantum"]}`, "defect model"},
		{"duplicate model", `{"defect_models":["clustered","clustered"]}`, "twice"},
		{"bad cluster size", `{"cluster_size":0.25}`, "cluster_size"},
		{"huge cluster size", `{"cluster_size":1e9}`, "cluster_size"},
	}
	for _, tc := range cases {
		w := doJSON(t, mux, http.MethodPost, "/v1/sweep", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s: body %q missing %q", tc.name, w.Body.String(), tc.want)
		}
	}
}

// TestSweepLocalClusteredDoesNotPolluteYieldCache guards the cache
// namespaces: a clustered local point must not be served for a /v1/yield
// request with the same (design, n, p, runs, seed).
func TestSweepLocalClusteredDoesNotPolluteYieldCache(t *testing.T) {
	mux, _ := testMux()
	body := `{"strategies":["local"],"designs":["DTMB(2,6)"],"n_primaries":[24],` +
		`"ps":[0.95],"defect_models":["clustered"],"runs":200,"seed":11}`
	if w := doJSON(t, mux, http.MethodPost, "/v1/sweep", body); w.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", w.Code, w.Body.String())
	}
	w := doJSON(t, mux, http.MethodPost, "/v1/yield",
		`{"design":"DTMB(2,6)","n_primary":24,"p":0.95,"runs":200,"seed":11}`)
	if w.Code != http.StatusOK {
		t.Fatalf("yield status %d: %s", w.Code, w.Body.String())
	}
	var resp YieldResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("independent /v1/yield request was served from the clustered sweep's cache entry")
	}
}
