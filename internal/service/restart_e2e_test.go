// Coordinator-restart end-to-end test. It lives in package service_test so
// it can import the dispatch package (which itself imports service) without
// a cycle — exactly the wiring cmd/dtmb-serve does.
package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dmfb/internal/dispatch"
	"dmfb/internal/service"
)

// TestCoordinatorRestartResumesDistributedJob is the full crash story: a
// coordinator with a durable store is SIGKILLed mid-distributed-job (no
// graceful drain, no terminal manifests), a fresh coordinator on the same
// store directory replays the job, redispatches the remaining shards to a
// fresh worker fleet, and the merged stream is byte-identical to a
// single-process run at every cursor.
func TestCoordinatorRestartResumesDistributedJob(t *testing.T) {
	req := service.SweepRequest{
		Strategies:   []string{"local", "hex"},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{100},
		PMin:         0.90,
		PMax:         0.99,
		PPoints:      12,
		DefectModels: []string{"independent"},
		Runs:         15000,
		Seed:         3,
	}
	newEngine := func() *service.Engine {
		return service.NewEngine(service.EngineConfig{DefaultRuns: 150, CacheSize: 256})
	}

	// Single-process golden.
	golden := func() []byte {
		s := service.NewJobStore(newEngine(), service.JobStoreConfig{})
		defer s.Close(context.Background())
		j, err := s.Create(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if st, err := j.Wait(ctx); err != nil || st.State != service.JobCompleted {
			t.Fatalf("golden job: %+v, %v", st, err)
		}
		return streamAll(t, j, 0)
	}()

	dir := t.TempDir()
	dreq := req
	dreq.Distributed = true

	// Generation 1: durable store + coordinator + two workers.
	e1 := newEngine()
	// A generous TTL: this test's recovery comes from the restart itself (a
	// new coordinator starts with every unmerged shard pending), not from
	// lease expiry — and a short TTL thrashes when the race detector slows
	// shard evaluation past it.
	coord1 := dispatch.NewCoordinator(dispatch.Config{
		LeaseTTL: 10 * time.Second, ShardSize: 2, Registry: e1.Registry(),
	})
	store1, err := service.NewFileJobStore(e1, service.JobStoreConfig{Runner: coord1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, store1)
	srv1 := httptest.NewServer(service.NewMux(e1, store1, coord1.Routes()...))
	wctx1, killWorkers1 := context.WithCancel(context.Background())
	var wg1 sync.WaitGroup
	startWorkers(t, &wg1, wctx1, srv1.URL, 2)

	j, err := store1.Create(context.Background(), dreq)
	if err != nil {
		t.Fatal(err)
	}
	jobID := j.ID()
	waitPoints(t, j, 3)

	// SIGKILL the whole generation: workers vanish, the store stops
	// persisting mid-flight — the on-disk state stays "running".
	killWorkers1()
	wg1.Wait()
	store1.CrashForTest()
	coord1.Close()
	srv1.Close()

	// Generation 2 on the same directory: replay finds the running job and
	// hands its remaining points to the new coordinator.
	e2 := newEngine()
	coord2 := dispatch.NewCoordinator(dispatch.Config{
		LeaseTTL: 10 * time.Second, ShardSize: 2, Registry: e2.Registry(),
	})
	defer coord2.Close()
	store2, err := service.NewFileJobStore(e2, service.JobStoreConfig{Runner: coord2}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := store2.Close(ctx); err != nil {
			t.Errorf("store2 close: %v", err)
		}
	}()
	waitReady(t, store2)
	srv2 := httptest.NewServer(service.NewMux(e2, store2, coord2.Routes()...))
	defer srv2.Close()
	wctx2, killWorkers2 := context.WithCancel(context.Background())
	var wg2 sync.WaitGroup
	defer func() { killWorkers2(); wg2.Wait() }()
	startWorkers(t, &wg2, wctx2, srv2.URL, 2)

	j2, err := store2.Get(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Status().PointsDone; got < 1 {
		t.Errorf("restart lost the persisted prefix: PointsDone = %d", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := j2.Wait(ctx)
	if err != nil || st.State != service.JobCompleted {
		t.Fatalf("resumed distributed job: %+v, %v", st, err)
	}

	if got := streamAll(t, j2, 0); !bytes.Equal(got, golden) {
		t.Fatalf("resumed stream diverges from golden: %d bytes vs %d", len(got), len(golden))
	}
	lines := bytes.SplitAfter(golden, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for _, cursor := range []int{1, len(lines) / 2, len(lines)} {
		want := bytes.Join(lines[cursor:], nil)
		if got := streamAll(t, j2, cursor); !bytes.Equal(got, want) {
			t.Fatalf("cursor %d: resumed stream diverges from golden suffix", cursor)
		}
	}
}

func streamAll(t *testing.T, j *service.Job, cursor int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var buf bytes.Buffer
	if _, err := j.StreamResults(ctx, cursor, func(line []byte) error {
		_, err := buf.Write(line)
		return err
	}); err != nil {
		t.Fatalf("stream from cursor %d: %v", cursor, err)
	}
	return buf.Bytes()
}

func waitReady(t *testing.T, s *service.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("store never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitPoints(t *testing.T, j *service.Job, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for j.Status().PointsDone < n {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %d points, want >= %d", j.Status().PointsDone, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func startWorkers(t *testing.T, wg *sync.WaitGroup, ctx context.Context, url string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := dispatch.RunWorker(ctx, dispatch.WorkerConfig{
				Coordinator: url,
				Name:        name,
				Engine:      service.EngineConfig{CacheSize: 64},
				Poll:        20 * time.Millisecond,
			})
			if err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
}
