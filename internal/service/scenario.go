package service

import (
	"context"
	"math"
	"strings"

	"dmfb/internal/core"
	"dmfb/internal/sqgrid"
	"dmfb/internal/sweep"
)

// ScenarioRequest is the wire form of one sweep.Scenario plus its simulation
// parameters — the single request shape of the v2 surface. POST /v2/evaluate
// takes exactly one; a sweep job is a grid of them. Strategy-specific fields
// must be present exactly when applicable: design for local/hex, spare_rows
// for shifted, cluster_size for the clustered defect model.
type ScenarioRequest struct {
	// Strategy is "none", "local" (default), "shifted" or "hex".
	Strategy string `json:"strategy,omitempty"`
	// Design names a DTMB(s, p) pattern for the local and hex strategies,
	// e.g. "DTMB(2,6)" or the compact alias "dtmb26".
	Design string `json:"design,omitempty"`
	// NPrimary is the number of primary cells of the array.
	NPrimary int `json:"n_primary"`
	// SpareRows is the boundary spare-row count of the shifted strategy;
	// 0 means 1.
	SpareRows int `json:"spare_rows,omitempty"`
	// P is the cell survival probability in [0, 1].
	P float64 `json:"p"`
	// DefectModel is "independent" (default) or "clustered".
	DefectModel string `json:"defect_model,omitempty"`
	// ClusterSize is the expected faulty cells per cluster for the clustered
	// model; 0 means the default (4).
	ClusterSize float64 `json:"cluster_size,omitempty"`
	// Runs is the Monte-Carlo run count; 0 means the engine default.
	// Closed-form (none-strategy) scenarios ignore it.
	Runs int `json:"runs,omitempty"`
	// Seed makes the estimate reproducible; identical requests hit the cache.
	Seed int64 `json:"seed,omitempty"`
	// Epsilon, when positive, makes the estimate precision-targeted: the
	// kernel stops at the first deterministic chunk boundary where the
	// Wilson 95% half-width reaches epsilon, with runs as the trial budget.
	// The response's runs field reports the realized count. Must be in
	// [0, 1); 0 keeps the classic fixed-run behavior. The realized count and
	// estimate are deterministic in (seed, epsilon, runs), so adaptive
	// results cache exactly like fixed-run ones.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// resolve validates the request against the service resource bounds and
// canonicalizes it into a sweep.Scenario (design aliases resolved, defaults
// filled, inapplicable axes rejected rather than ignored).
func (r *ScenarioRequest) resolve() (sweep.Scenario, error) {
	sc := sweep.Scenario{
		Strategy:    sweep.Strategy(strings.ToLower(strings.TrimSpace(r.Strategy))),
		Design:      strings.TrimSpace(r.Design),
		NPrimary:    r.NPrimary,
		SpareRows:   r.SpareRows,
		P:           r.P,
		DefectModel: sweep.DefectModel(strings.ToLower(strings.TrimSpace(r.DefectModel))),
		ClusterSize: r.ClusterSize,
	}
	if sc.Strategy == "" {
		sc.Strategy = sweep.Local
	}
	if sc.DefectModel == "" {
		sc.DefectModel = sweep.Independent
	}
	if r.NPrimary <= 0 || r.NPrimary > MaxNPrimary {
		return sweep.Scenario{}, invalidf("n_primary must be in [1,%d], got %d", MaxNPrimary, r.NPrimary)
	}
	if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
		return sweep.Scenario{}, invalidf("p %v outside [0,1]", r.P)
	}
	if r.Runs < 0 || r.Runs > MaxRuns {
		return sweep.Scenario{}, invalidf("runs must be in [0,%d], got %d", MaxRuns, r.Runs)
	}
	if err := validateEpsilon(r.Epsilon); err != nil {
		return sweep.Scenario{}, err
	}
	if r.SpareRows < 0 || r.SpareRows > MaxNPrimary {
		return sweep.Scenario{}, invalidf("spare_rows must be in [0,%d], got %d", MaxNPrimary, r.SpareRows)
	}
	if r.ClusterSize != 0 {
		if math.IsNaN(r.ClusterSize) || r.ClusterSize < 1 || r.ClusterSize > MaxClusterSize {
			return sweep.Scenario{}, invalidf("cluster_size must be in [1,%v], got %v", float64(MaxClusterSize), r.ClusterSize)
		}
		if sc.DefectModel != sweep.Clustered {
			return sweep.Scenario{}, invalidf("cluster_size applies only to the clustered defect model")
		}
	}
	switch sc.Strategy {
	case sweep.Local, sweep.Hex:
		if sc.Design == "" {
			return sweep.Scenario{}, invalidf("strategy %q requires a design", sc.Strategy)
		}
		d, err := resolveDesign(sc.Design)
		if err != nil {
			return sweep.Scenario{}, err
		}
		sc.Design = d.Name
	default:
		if sc.Design != "" {
			return sweep.Scenario{}, invalidf("design applies only to the local and hex strategies")
		}
	}
	if sc.SpareRows != 0 && sc.Strategy != sweep.Shifted {
		return sweep.Scenario{}, invalidf("spare_rows applies only to the shifted strategy")
	}
	sc = sc.Normalize()
	if err := sc.Validate(); err != nil {
		return sweep.Scenario{}, invalidf("%v", err)
	}
	return sc, nil
}

// ScenarioRecord is the wire form of one evaluated scenario: its coordinates
// followed by its yield analysis. It is both the /v2/evaluate response and
// — behind a grid index — every NDJSON line of a sweep or job stream.
type ScenarioRecord struct {
	Strategy string `json:"strategy"`
	// Design is set for local- and hex-strategy scenarios, e.g. "DTMB(2,6)".
	Design   string `json:"design,omitempty"`
	NPrimary int    `json:"n_primary"`
	// SpareRows is set for shifted-strategy scenarios.
	SpareRows int `json:"spare_rows,omitempty"`
	// DefectModel is the scenario's spatial defect model ("independent" or
	// "clustered").
	DefectModel string `json:"defect_model"`
	// ClusterSize is set for clustered-model scenarios.
	ClusterSize float64 `json:"cluster_size,omitempty"`
	NTotal      int     `json:"n_total"`
	P           float64 `json:"p"`
	// Runs is the realized Monte-Carlo trial count — under a precision
	// target the stopping boundary, not the requested budget — and 0 for
	// closed-form (none-strategy) scenarios.
	Runs int   `json:"runs"`
	Seed int64 `json:"seed"`
	// Successes is the raw Monte-Carlo success count behind the yield
	// proportion; omitted for closed-form scenarios.
	Successes int `json:"successes,omitempty"`
	// Epsilon echoes the precision target the scenario was evaluated under;
	// omitted for fixed-run evaluation.
	Epsilon        float64 `json:"epsilon,omitempty"`
	Yield          float64 `json:"yield"`
	CILo           float64 `json:"ci_lo"`
	CIHi           float64 `json:"ci_hi"`
	EffectiveYield float64 `json:"effective_yield"`
	NoRedundancy   float64 `json:"no_redundancy"`
	Cached         bool    `json:"cached,omitempty"`
}

// scenarioRecord converts an evaluated point to the wire type.
func scenarioRecord(r sweep.PointResult) ScenarioRecord {
	return ScenarioRecord{
		Strategy:       string(r.Strategy),
		Design:         r.Design,
		NPrimary:       r.NPrimary,
		SpareRows:      r.SpareRows,
		DefectModel:    string(r.DefectModel),
		ClusterSize:    r.ClusterSize,
		NTotal:         r.NTotal,
		P:              r.P,
		Runs:           r.Runs,
		Seed:           r.Seed,
		Successes:      r.Successes,
		Epsilon:        r.Epsilon,
		Yield:          r.Yield,
		CILo:           r.CILo,
		CIHi:           r.CIHi,
		EffectiveYield: r.EffectiveYield,
		NoRedundancy:   r.NoRedundancy,
		Cached:         r.Cached,
	}
}

// EvaluateScenario serves POST /v2/evaluate: validate and canonicalize one
// scenario, bound its work, and evaluate it through the shared cache,
// single-flight, and admission layers. It is the single-scenario face of the
// same core the v1 endpoints and the job runner adapt over.
func (e *Engine) EvaluateScenario(ctx context.Context, req ScenarioRequest) (ScenarioRecord, error) {
	sc, err := req.resolve()
	if err != nil {
		return ScenarioRecord{}, err
	}
	sp := e.simParams(req.Runs, req.Seed, req.Epsilon)
	cells, err := scenarioCells(sc)
	if err != nil {
		return ScenarioRecord{}, invalidf("%v", err)
	}
	if cells > 0 {
		if err := validateWork(sp.Runs, cells); err != nil {
			return ScenarioRecord{}, err
		}
	}
	res, err := e.evalScenario(ctx, sc, sp)
	if err != nil {
		return ScenarioRecord{}, err
	}
	return scenarioRecord(res), nil
}

// scenarioCells returns the simulated cell count of a scenario — the factor
// that multiplies the run count into its work bound — or 0 for closed-form
// scenarios that never simulate.
func scenarioCells(sc sweep.Scenario) (int, error) {
	switch sc.Strategy {
	case sweep.Local, sweep.Hex:
		return sc.NPrimary, nil
	case sweep.Shifted:
		pl, err := sqgrid.PlacementWithPrimaryTarget(sc.NPrimary, sc.SpareRows)
		if err != nil {
			return 0, err
		}
		return pl.Grid.NumCells(), nil
	}
	return 0, nil
}

// evalScenario is the engine's scenario core: it routes one canonical
// scenario to its cache namespace and evaluates it via the sweep dispatch
// under the cache, single-flight, and admission layers. The v1 yield
// endpoint, the v1 sweep stream, the v2 evaluate endpoint, and sweep jobs
// are all adapters over this one entry point.
//
// Cache namespaces are preserved from the pre-v2 engine: a local-strategy,
// independent-model scenario lives in the "yield" namespace keyed without
// defect-model fields, so /v1/yield requests, /v2/evaluate calls, and sweep
// grid points of the same scenario share one entry.
func (e *Engine) evalScenario(ctx context.Context, sc sweep.Scenario, sp core.SimParams) (sweep.PointResult, error) {
	pt := sweep.Point{Scenario: sc}
	switch {
	case sc.Strategy == sweep.None:
		// Closed form: too cheap to cache or bound.
		return sweep.EvaluateScenario(ctx, sc, sp)
	case sc.Strategy == sweep.Local && sc.DefectModel != sweep.Clustered:
		return e.cachedScenario(ctx, cacheKey{
			kind:     "yield",
			design:   sc.Design,
			nPrimary: sc.NPrimary,
			p:        sc.P,
			runs:     sp.Runs,
			seed:     sp.Seed,
			epsilon:  sp.Epsilon,
		}, pt, sp)
	case sc.Strategy == sweep.Local:
		return e.cachedScenario(ctx, scenarioKey("local-clustered", pt, sp), pt, sp)
	case sc.Strategy == sweep.Hex:
		return e.cachedScenario(ctx, scenarioKey("hex", pt, sp), pt, sp)
	default: // shifted
		return e.cachedScenario(ctx, scenarioKey("shifted", pt, sp), pt, sp)
	}
}

// scenarioKey builds the full-coordinate cache key of the kinds that carry
// the defect-model axis.
func scenarioKey(kind string, pt sweep.Point, sp core.SimParams) cacheKey {
	return cacheKey{
		kind:        kind,
		design:      pt.Design,
		nPrimary:    pt.NPrimary,
		p:           pt.P,
		runs:        sp.Runs,
		seed:        sp.Seed,
		spare:       pt.SpareRows,
		model:       string(pt.DefectModel),
		clusterSize: pt.ClusterSize,
		epsilon:     sp.Epsilon,
	}
}

// cachedScenario evaluates a Monte-Carlo scenario through the result cache,
// single-flight layer, and admission semaphore under the given key.
func (e *Engine) cachedScenario(ctx context.Context, key cacheKey, pt sweep.Point, sp core.SimParams) (sweep.PointResult, error) {
	v, cached, err := e.cachedCompute(ctx, key, func() (any, error) {
		res, err := sweep.EvaluateScenario(ctx, pt.Scenario, sp)
		if err != nil {
			return nil, err
		}
		// The same scenario appears at different indices in different
		// sweeps; cache it index-free.
		res.Index = 0
		return res, nil
	})
	if err != nil {
		return sweep.PointResult{}, err
	}
	res := v.(sweep.PointResult)
	res.Index = pt.Index
	res.Cached = cached
	return res, nil
}
