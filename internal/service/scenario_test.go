package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestEvaluateScenarioHandlers(t *testing.T) {
	mux, _ := testMux()
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{
			name:       "local default strategy",
			body:       `{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":1}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"strategy":"local"`,
		},
		{
			name:       "hex with alias",
			body:       `{"strategy":"hex","design":"dtmb44","n_primary":40,"p":0.9,"runs":200,"seed":2}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"DTMB(4,4)"`,
		},
		{
			name:       "shifted default spare rows",
			body:       `{"strategy":"shifted","n_primary":36,"p":0.95,"runs":200,"seed":3}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"spare_rows":1`,
		},
		{
			name:       "none closed form",
			body:       `{"strategy":"none","n_primary":50,"p":0.99}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"runs":0`,
		},
		{
			name:       "clustered model",
			body:       `{"strategy":"local","design":"DTMB(2,6)","n_primary":40,"p":0.94,"defect_model":"clustered","cluster_size":4,"runs":200,"seed":4}`,
			wantStatus: http.StatusOK,
			wantSubstr: `"defect_model":"clustered"`,
		},
		{
			name:       "unknown strategy",
			body:       `{"strategy":"bogus","n_primary":40,"p":0.9}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "unknown strategy",
		},
		{
			name:       "missing design",
			body:       `{"strategy":"local","n_primary":40,"p":0.9}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "requires a design",
		},
		{
			name:       "design on shifted",
			body:       `{"strategy":"shifted","design":"DTMB(2,6)","n_primary":40,"p":0.9}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "design applies only",
		},
		{
			name:       "spare rows on local",
			body:       `{"strategy":"local","design":"DTMB(2,6)","spare_rows":2,"n_primary":40,"p":0.9}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "spare_rows applies only",
		},
		{
			name:       "cluster size on independent",
			body:       `{"strategy":"local","design":"DTMB(2,6)","cluster_size":4,"n_primary":40,"p":0.9}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "cluster_size applies only",
		},
		{
			name:       "unknown defect model",
			body:       `{"strategy":"local","design":"DTMB(2,6)","defect_model":"weird","n_primary":40,"p":0.9}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "unknown defect model",
		},
		{
			name:       "p out of range",
			body:       `{"design":"DTMB(2,6)","n_primary":40,"p":1.5}`,
			wantStatus: http.StatusBadRequest,
			wantSubstr: "outside [0,1]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doJSON(t, mux, http.MethodPost, "/v2/evaluate", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if tc.wantSubstr != "" && !strings.Contains(w.Body.String(), tc.wantSubstr) {
				t.Errorf("body %q missing %q", w.Body.String(), tc.wantSubstr)
			}
		})
	}
}

// TestV2EvaluateSharesV1YieldCache pins the adapter property: a /v1/yield
// request and the equivalent /v2/evaluate scenario are the same computation
// in the same cache namespace, in both directions.
func TestV2EvaluateSharesV1YieldCache(t *testing.T) {
	mux, _ := testMux()
	w := doJSON(t, mux, http.MethodPost, "/v1/yield",
		`{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":9}`)
	var v1 YieldResponse
	if err := json.Unmarshal(w.Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if v1.Cached {
		t.Fatal("first v1 request served from cache")
	}
	w = doJSON(t, mux, http.MethodPost, "/v2/evaluate",
		`{"design":"DTMB(2,6)","n_primary":60,"p":0.95,"runs":300,"seed":9}`)
	var v2 ScenarioRecord
	if err := json.Unmarshal(w.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Error("equivalent v2 scenario missed the v1 cache entry")
	}
	if v2.Yield != v1.Yield || v2.CILo != v1.CILo || v2.CIHi != v1.CIHi ||
		v2.EffectiveYield != v1.EffectiveYield || v2.NTotal != v1.NTotal {
		t.Errorf("v2 %+v != v1 %+v", v2, v1)
	}

	// And the reverse: an evaluate-first scenario primes /v1/yield.
	doJSON(t, mux, http.MethodPost, "/v2/evaluate",
		`{"design":"DTMB(3,6)","n_primary":60,"p":0.95,"runs":300,"seed":9}`)
	w = doJSON(t, mux, http.MethodPost, "/v1/yield",
		`{"design":"DTMB(3,6)","n_primary":60,"p":0.95,"runs":300,"seed":9}`)
	var rev YieldResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rev); err != nil {
		t.Fatal(err)
	}
	if !rev.Cached {
		t.Error("v1 request missed the cache entry primed by v2/evaluate")
	}
}

// TestEvaluateScenarioMatchesSweepEngine pins /v2/evaluate to the sweep
// engine: one scenario evaluated alone equals the same grid point of a
// sweep.
func TestEvaluateScenarioMatchesSweepEngine(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 200})
	rec, err := e.EvaluateScenario(context.Background(), ScenarioRequest{
		Strategy: "hex", Design: "DTMB(2,6)", NPrimary: 40, P: 0.95, Runs: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewEngine(EngineConfig{CacheSize: 16, DefaultRuns: 200})
	var got []SweepRecord
	err = fresh.Sweep(context.Background(), SweepRequest{
		Strategies: []string{"hex"}, Designs: []string{"DTMB(2,6)"},
		NPrimaries: []int{40}, Ps: []float64{0.95}, Runs: 200, Seed: 7,
	}, func(r SweepRecord) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sweep returned %d records", len(got))
	}
	if got[0].ScenarioRecord != rec {
		t.Errorf("sweep point %+v != evaluate %+v", got[0].ScenarioRecord, rec)
	}
}
