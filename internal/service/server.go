package service

import (
	"context"
	"fmt"
	"log/slog"
	"mime"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"dmfb/internal/telemetry"
)

// ServerConfig configures the HTTP server around an engine.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":8080"; empty means ":8080".
	Addr string
	// Engine tunes the simulation engine behind the handlers.
	Engine EngineConfig
	// Jobs tunes the asynchronous sweep-job store.
	Jobs JobStoreConfig
	// StoreDir, when non-empty, backs the job store with the durable
	// file-based implementation rooted there: jobs survive a coordinator
	// restart (finished jobs replay, partial jobs resume). Empty keeps the
	// in-memory store.
	StoreDir string
	// ExtraRoutes are mounted on the server's mux verbatim — the dispatch
	// coordinator's /v2/workers/* endpoints arrive here.
	ExtraRoutes []Route
	// Logger receives lifecycle events, the structured access log, and (at
	// debug level) kernel chunk spans; nil means JSON to stderr at info.
	// When Engine.Logger is unset it inherits this logger, so one injection
	// point configures every layer.
	Logger *slog.Logger
}

// Server is the dtmb-serve HTTP server: handlers over one Engine and one
// JobStore, with graceful shutdown that drains in-flight simulations and
// cancels running jobs without leaking their goroutines.
type Server struct {
	engine *Engine
	jobs   *Store
	http   *http.Server
	ln     net.Listener
	logger *slog.Logger
}

// NewServer builds the server; call Listen then Serve (or combine via Run).
// Construction fails only when a configured StoreDir cannot be prepared.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if cfg.Engine.Logger == nil {
		cfg.Engine.Logger = logger
	}
	engine := NewEngine(cfg.Engine)
	var jobs *Store
	if cfg.StoreDir != "" {
		var err error
		jobs, err = NewFileJobStore(engine, cfg.Jobs, cfg.StoreDir)
		if err != nil {
			return nil, err
		}
	} else {
		jobs = NewJobStore(engine, cfg.Jobs)
	}
	return &Server{
		engine: engine,
		jobs:   jobs,
		logger: logger,
		http: &http.Server{
			Addr:              cfg.Addr,
			Handler:           NewHandler(engine, jobs, logger, cfg.ExtraRoutes...),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}, nil
}

// NewHandler assembles the full serving stack: the v1+v2 mux wrapped in the
// server middleware (request-ID echo and trace-ID propagation, POST
// content-type enforcement, HTTP metrics, and a structured access log line
// per request). Tests that need the exact production behavior — 415s,
// X-Request-ID headers — use this instead of the bare NewMux. A nil logger
// discards log output (metrics and trace propagation still apply).
func NewHandler(e *Engine, jobs JobStore, logger *slog.Logger, extra ...Route) http.Handler {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return withMiddleware(NewMux(e, jobs, extra...), logger, e.metrics)
}

// Engine exposes the underlying engine (for stats and tests).
func (s *Server) Engine() *Engine { return s.engine }

// Jobs exposes the server's job store (for stats and tests).
func (s *Server) Jobs() *Store { return s.jobs }

// Listen binds the address; Addr is then available for clients.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.http.Addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address after Listen (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.http.Addr
	}
	return s.ln.Addr().String()
}

// Serve blocks serving requests until Shutdown; it returns nil after a
// graceful shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	s.logger.Info("dtmb-serve listening",
		slog.String("addr", s.Addr()), slog.Int("default_runs", s.engine.DefaultRuns()))
	if err := s.http.Serve(s.ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Run serves until ctx is cancelled, then shuts down gracefully within
// grace, draining in-flight requests and running jobs.
func (s *Server) Run(ctx context.Context, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.logger.Info("dtmb-serve shutting down", slog.Duration("grace", grace))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("service: shutdown: %w", err)
	}
	return <-errCh
}

// Shutdown stops the server: running jobs are cancelled first (which also
// unblocks any handler following a job's result stream), their goroutines
// joined, then in-flight requests are drained, all within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	jobsErr := s.jobs.Close(ctx)
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	return jobsErr
}

// requestSeq numbers generated request IDs process-wide.
var requestSeq atomic.Uint64

// statusWriter captures the response status and size for the access log
// while passing Flush through to the underlying writer, so NDJSON streams
// keep flushing per record.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer (http.ResponseController also finds
// it via Unwrap).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withMiddleware wraps next with the server-level cross-cutting concerns:
//
//   - X-Request-ID: an incoming ID is echoed on the response (and into the
//     access log); absent one, the server assigns req-<n>. The ID also
//     becomes the request context's trace ID (telemetry.WithTraceID), which
//     every layer below — engine, jobs, kernel chunk spans — reads back, so
//     one ID connects the access-log line to the kernel work it caused.
//   - Content-Type enforcement: every POST must declare application/json
//     (with optional parameters, e.g. a charset) or is rejected with 415
//     before its body is read.
//   - HTTP metrics: request count by status plus a duration histogram.
//   - Access log: one structured line per request on logger.
func withMiddleware(next http.Handler, logger *slog.Logger, m *serviceMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = fmt.Sprintf("req-%d", requestSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(telemetry.WithTraceID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		finish := func() {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			elapsed := time.Since(start)
			m.httpRequests.With(strconv.Itoa(status)).Inc()
			m.httpDuration.Observe(elapsed.Seconds())
			logAccess(logger, r, status, sw.bytes, id, elapsed)
		}
		if r.Method == http.MethodPost {
			ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
			if err != nil || ct != "application/json" {
				writeJSON(sw, http.StatusUnsupportedMediaType,
					errorBody{Error: "Content-Type must be application/json"})
				finish()
				return
			}
		}
		next.ServeHTTP(sw, r)
		finish()
	})
}

// sanitizeRequestID accepts a client-supplied request ID only when it is a
// single loggable token: printable ASCII with no spaces, quotes, or '='
// (which could forge key=value fields in the access log), at most 128
// bytes. Anything else is treated as absent and replaced by a generated ID.
func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '=' {
			return ""
		}
	}
	return id
}

// logAccess emits the structured access log line for one finished request.
// The path is client-controlled; the slog handler's encoding keeps it one
// forgery-proof field, like the sanitized request ID.
func logAccess(logger *slog.Logger, r *http.Request, status, bytes int, id string, elapsed time.Duration) {
	logger.LogAttrs(r.Context(), slog.LevelInfo, "http_access",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Int("bytes", bytes),
		slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
		slog.String("request_id", id),
		slog.String("remote", r.RemoteAddr),
	)
}
