package service

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"
)

// ServerConfig configures the HTTP server around an engine.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":8080"; empty means ":8080".
	Addr string
	// Engine tunes the simulation engine behind the handlers.
	Engine EngineConfig
	// Logger receives lifecycle messages; nil means the standard logger.
	Logger *log.Logger
}

// Server is the dtmb-serve HTTP server: handlers over one Engine, with
// graceful shutdown that drains in-flight simulations.
type Server struct {
	engine *Engine
	http   *http.Server
	ln     net.Listener
	logger *log.Logger
}

// NewServer builds the server; call Listen then Serve (or combine via Run).
func NewServer(cfg ServerConfig) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	engine := NewEngine(cfg.Engine)
	return &Server{
		engine: engine,
		logger: logger,
		http: &http.Server{
			Addr:              cfg.Addr,
			Handler:           NewMux(engine),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
}

// Engine exposes the underlying engine (for stats and tests).
func (s *Server) Engine() *Engine { return s.engine }

// Listen binds the address; Addr is then available for clients.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.http.Addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address after Listen (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.http.Addr
	}
	return s.ln.Addr().String()
}

// Serve blocks serving requests until Shutdown; it returns nil after a
// graceful shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	s.logger.Printf("dtmb-serve listening on %s (default runs %d)", s.Addr(), s.engine.DefaultRuns())
	if err := s.http.Serve(s.ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Run serves until ctx is cancelled, then shuts down gracefully within
// grace, draining in-flight requests.
func (s *Server) Run(ctx context.Context, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.logger.Printf("dtmb-serve shutting down (grace %s)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := s.http.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("service: shutdown: %w", err)
	}
	return <-errCh
}

// Shutdown stops the server, waiting for in-flight requests up to ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}
