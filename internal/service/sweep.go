package service

import (
	"context"
	"fmt"
	"math"

	"dmfb/internal/core"
	"dmfb/internal/sweep"
)

// SweepPlan is a validated, expanded sweep: its ordered grid points plus the
// resolved simulation parameters. Splitting planning from execution lets the
// HTTP handler reject a bad request with a JSON 400 before committing to a
// streaming response.
type SweepPlan struct {
	points []sweep.Point
	sp     core.SimParams
}

// NumPoints returns the number of grid points the plan will evaluate.
func (p *SweepPlan) NumPoints() int { return len(p.points) }

// SimParams exposes the plan's resolved simulation parameters (run count,
// seed, epsilon, chunk size). The dispatch coordinator reads them to pin the
// determinism-relevant values into shard leases.
func (p *SweepPlan) SimParams() core.SimParams { return p.sp }

// SetChunkSize overrides the plan's Monte-Carlo chunk size. Workers apply
// the coordinator's chunk size from the lease — chunk size is part of the
// determinism contract, so a worker's own default must never leak into a
// distributed evaluation.
func (p *SweepPlan) SetChunkSize(n int) { p.sp.ChunkSize = n }

// PlanSweep validates a sweep request — design aliases, axis bounds, grid
// size, and total simulation work — and expands it into its ordered points.
func (e *Engine) PlanSweep(req SweepRequest) (*SweepPlan, error) {
	if req.Runs < 0 || req.Runs > MaxRuns {
		return nil, invalidf("runs must be in [0,%d], got %d", MaxRuns, req.Runs)
	}
	if err := validateEpsilon(req.Epsilon); err != nil {
		return nil, err
	}
	// Bound the p axis before NumPoints/Expand: PValues materializes
	// p_points floats, so a huge count must be rejected before it can
	// allocate, not after.
	if req.PPoints < 0 || req.PPoints > MaxSweepPoints {
		return nil, invalidf("p_points must be in [0,%d], got %d", MaxSweepPoints, req.PPoints)
	}
	if len(req.Ps) > MaxSweepPoints {
		return nil, invalidf("ps has %d entries, cap is %d", len(req.Ps), MaxSweepPoints)
	}
	// Bound the remaining axis lists as well, so NumPoints' product of
	// list lengths cannot overflow.
	for _, axis := range []struct {
		name string
		n    int
	}{
		{"strategies", len(req.Strategies)},
		{"designs", len(req.Designs)},
		{"n_primaries", len(req.NPrimaries)},
		{"spare_rows", len(req.SpareRows)},
		{"defect_models", len(req.DefectModels)},
	} {
		if axis.n > MaxSweepPoints {
			return nil, invalidf("%s has %d entries, cap is %d", axis.name, axis.n, MaxSweepPoints)
		}
	}
	// Duplicate axis entries would expand to duplicate grid points, whose
	// cached flags depend on which concurrent twin wins the single-flight —
	// breaking the documented byte-reproducibility of the stream. Reject
	// them (post-canonicalization, so "DTMB(2,6)" and "dtmb26" collide).
	designs := make([]string, 0, len(req.Designs))
	seenDesign := make(map[string]bool, len(req.Designs))
	for _, name := range req.Designs {
		d, err := resolveDesign(name)
		if err != nil {
			return nil, err
		}
		if seenDesign[d.Name] {
			return nil, invalidf("designs lists %s twice", d.Name)
		}
		seenDesign[d.Name] = true
		designs = append(designs, d.Name)
	}
	seenStrategy := make(map[string]bool, len(req.Strategies))
	for _, s := range req.Strategies {
		if seenStrategy[s] {
			return nil, invalidf("strategies lists %q twice", s)
		}
		seenStrategy[s] = true
	}
	seenN := make(map[int]bool, len(req.NPrimaries))
	for _, n := range req.NPrimaries {
		if n <= 0 || n > MaxNPrimary {
			return nil, invalidf("n_primaries entries must be in [1,%d], got %d", MaxNPrimary, n)
		}
		if seenN[n] {
			return nil, invalidf("n_primaries lists %d twice", n)
		}
		seenN[n] = true
	}
	seenRows := make(map[int]bool, len(req.SpareRows))
	for _, r := range req.SpareRows {
		if r < 1 || r > MaxNPrimary {
			return nil, invalidf("spare_rows entries must be in [1,%d], got %d", MaxNPrimary, r)
		}
		if seenRows[r] {
			return nil, invalidf("spare_rows lists %d twice", r)
		}
		seenRows[r] = true
	}
	seenP := make(map[float64]bool, len(req.Ps))
	for _, p := range req.Ps {
		if seenP[p] {
			return nil, invalidf("ps lists %v twice", p)
		}
		seenP[p] = true
	}
	seenModel := make(map[string]bool, len(req.DefectModels))
	for _, m := range req.DefectModels {
		if seenModel[m] {
			return nil, invalidf("defect_models lists %q twice", m)
		}
		seenModel[m] = true
	}
	if req.ClusterSize != 0 {
		if math.IsNaN(req.ClusterSize) || req.ClusterSize < 1 || req.ClusterSize > MaxClusterSize {
			return nil, invalidf("cluster_size must be in [1,%v], got %v", float64(MaxClusterSize), req.ClusterSize)
		}
	}
	spec := sweep.Spec{
		Designs:     designs,
		NPrimaries:  req.NPrimaries,
		Ps:          req.Ps,
		PMin:        req.PMin,
		PMax:        req.PMax,
		PPoints:     req.PPoints,
		SpareRows:   req.SpareRows,
		ClusterSize: req.ClusterSize,
	}
	for _, s := range req.Strategies {
		spec.Strategies = append(spec.Strategies, sweep.Strategy(s))
	}
	for _, m := range req.DefectModels {
		spec.DefectModels = append(spec.DefectModels, sweep.DefectModel(m))
	}
	if n := spec.NumPoints(); n > MaxSweepPoints {
		return nil, invalidf("sweep has %d grid points, cap is %d", n, MaxSweepPoints)
	}
	pts, err := spec.Expand()
	if err != nil {
		return nil, invalidf("%v", err)
	}
	// Work bounds are checked against the trial budget; a precision target
	// can only stop earlier, so the budget is the admissible worst case.
	sp := e.simParams(req.Runs, req.Seed, req.Epsilon)
	var totalWork int64
	for _, pt := range pts {
		cells, err := scenarioCells(pt.Scenario)
		if err != nil {
			return nil, invalidf("%v", err)
		}
		if cells == 0 {
			continue // closed-form point, no simulation
		}
		if err := validateWork(sp.Runs, cells); err != nil {
			return nil, err
		}
		totalWork += int64(sp.Runs) * int64(cells)
	}
	if totalWork > MaxSweepWork {
		return nil, invalidf("sweep total work %d (runs × cells summed over the grid) exceeds cap %d", totalWork, MaxSweepWork)
	}
	return &SweepPlan{points: pts, sp: sp}, nil
}

// RunSweep evaluates the plan's points with the engine's bounded concurrency
// and emits one record per point, strictly in point order. Every Monte-Carlo
// point passes through the same cache, single-flight, and admission layers
// as /v1/yield — a local-strategy sweep point and an equivalent /v1/yield
// request share one cache entry.
func (e *Engine) RunSweep(ctx context.Context, plan *SweepPlan, emit func(SweepRecord) error) error {
	return e.RunSweepRange(ctx, plan, 0, plan.NumPoints(), emit)
}

// RunSweepRange evaluates the contiguous grid slice [start, end) of the
// plan, emitting records strictly in point order with their global grid
// indices (a shard's records are the exact subsequence of the full sweep's
// stream). Shard workers and resumed jobs run through here; because every
// point still flows through evalScenario, the cache, single-flight, and
// admission layers apply identically to local, resumed, and distributed
// evaluation.
func (e *Engine) RunSweepRange(ctx context.Context, plan *SweepPlan, start, end int, emit func(SweepRecord) error) error {
	if start < 0 || end > len(plan.points) || start > end {
		return fmt.Errorf("service: sweep range [%d,%d) outside grid of %d points", start, end, len(plan.points))
	}
	return sweep.Run(ctx, plan.points[start:end], e.cfg.MaxConcurrent, e.sweepEval(plan.sp), func(r sweep.PointResult) error {
		return emit(sweepRecord(r))
	})
}

// Sweep is PlanSweep followed by RunSweep, for callers that do not need the
// validation/streaming split.
func (e *Engine) Sweep(ctx context.Context, req SweepRequest, emit func(SweepRecord) error) error {
	plan, err := e.PlanSweep(req)
	if err != nil {
		return err
	}
	return e.RunSweep(ctx, plan, emit)
}

// sweepEval adapts the engine's scenario core to the sweep runner: every
// grid point is evaluated exactly like a /v2/evaluate of its scenario, then
// stamped with its grid index. Evaluations are timed into the sweep metric
// bundle by strategy × defect model (cache hits included — the histogram
// answers "how long does a point take to serve", and cheap cached points are
// part of that answer).
func (e *Engine) sweepEval(sp core.SimParams) sweep.EvalFunc {
	return sweep.Instrumented(func(ctx context.Context, pt sweep.Point) (sweep.PointResult, error) {
		res, err := e.evalScenario(ctx, pt.Scenario, sp)
		if err != nil {
			return sweep.PointResult{}, err
		}
		res.Index = pt.Index
		return res, nil
	}, e.metrics.sweep)
}

// sweepRecord converts a point result to the wire type.
func sweepRecord(r sweep.PointResult) SweepRecord {
	return SweepRecord{Index: r.Index, ScenarioRecord: scenarioRecord(r)}
}
