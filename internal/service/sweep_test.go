package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sweepBody is a ≥30-point grid mixing all three strategies.
const sweepBody = `{"strategies":["none","local","shifted"],` +
	`"designs":["DTMB(2,6)","dtmb44"],"n_primaries":[24],` +
	`"p_min":0.90,"p_max":1.0,"p_points":8,"spare_rows":[1],` +
	`"runs":200,"seed":7}`

func TestSweepHandlerStreamsOrderedNDJSON(t *testing.T) {
	mux, _ := testMux()
	w := doJSON(t, mux, http.MethodPost, "/v1/sweep", sweepBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	if !w.Flushed {
		t.Error("response was never flushed mid-stream")
	}
	var recs []SweepRecord
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	for sc.Scan() {
		var rec SweepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	// none: 8, local: 2*8, shifted: 8.
	if want := 8 + 16 + 8; len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("record %d has index %d (stream must be in point order)", i, rec.Index)
		}
		if rec.Yield < 0 || rec.Yield > 1 {
			t.Errorf("record %d yield %v", i, rec.Yield)
		}
	}
	// The compact alias was canonicalized.
	found := false
	for _, rec := range recs {
		if rec.Design == "DTMB(4,4)" {
			found = true
		}
	}
	if !found {
		t.Error("alias dtmb44 not resolved to DTMB(4,4)")
	}
}

func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers, maxConcurrent int) string {
		e := NewEngine(EngineConfig{Workers: workers, MaxConcurrent: maxConcurrent})
		mux := NewMux(e, nil)
		w := doJSON(t, mux, http.MethodPost, "/v1/sweep", sweepBody)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	a := run(1, 1)
	b := run(4, 4)
	if a != b {
		t.Fatalf("sweep bytes differ across worker counts:\n--- 1 worker:\n%s\n--- 4 workers:\n%s", a, b)
	}
}

func TestSweepValidationRejectedBeforeStreaming(t *testing.T) {
	mux, _ := testMux()
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown strategy", `{"strategies":["teleport"]}`, "unknown strategy"},
		{"unknown design", `{"designs":["DTMB(9,9)"]}`, "unknown design"},
		{"bad n", `{"n_primaries":[0]}`, "n_primaries"},
		{"bad spare rows", `{"strategies":["shifted"],"spare_rows":[-1]}`, "spare_rows"},
		{"bad p", `{"ps":[1.5]}`, "outside [0,1]"},
		{"oversized grid", `{"n_primaries":[1,2,3,4,5,6,7,8,9,10],"p_points":1000,"p_min":0.5,"p_max":0.6,"runs":100}`, "grid points"},
		{"negative runs", `{"runs":-1}`, "runs"},
	}
	for _, tc := range cases {
		w := doJSON(t, mux, http.MethodPost, "/v1/sweep", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: rejected with Content-Type %q, want plain JSON error", tc.name, ct)
		}
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s: body %q missing %q", tc.name, w.Body.String(), tc.want)
		}
	}
}

func TestSweepWorkCapRejectsHugeGrids(t *testing.T) {
	mux, _ := testMux()
	// Each point is within per-request bounds, but the grid total exceeds
	// the sweep work cap.
	body := `{"designs":["DTMB(2,6)"],"n_primaries":[100000],"p_min":0.5,"p_max":0.9,"p_points":30,"runs":1000000}`
	w := doJSON(t, mux, http.MethodPost, "/v1/sweep", body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "work") {
		t.Errorf("body %q should mention the work cap", w.Body.String())
	}
}

func TestSweepLocalPointsShareYieldCache(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 64})
	// Prime the cache through the single-point endpoint.
	if _, err := e.Yield(context.Background(), YieldRequest{Design: "DTMB(2,6)", NPrimary: 24, P: 0.95, Runs: 200, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	var recs []SweepRecord
	err := e.Sweep(context.Background(), SweepRequest{
		Designs:    []string{"dtmb26"},
		NPrimaries: []int{24},
		Ps:         []float64{0.95},
		Runs:       200,
		Seed:       7,
	}, func(r SweepRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if !recs[0].Cached {
		t.Error("sweep point with identical (design,n,p,runs,seed) must hit the /v1/yield cache")
	}
}

func TestSweepShiftedPointsAreCached(t *testing.T) {
	e := NewEngine(EngineConfig{CacheSize: 64})
	req := SweepRequest{
		Strategies: []string{"shifted"},
		NPrimaries: []int{24},
		Ps:         []float64{0.95},
		SpareRows:  []int{2},
		Runs:       200,
		Seed:       7,
	}
	run := func() SweepRecord {
		var recs []SweepRecord
		if err := e.Sweep(context.Background(), req, func(r SweepRecord) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("%d records", len(recs))
		}
		return recs[0]
	}
	first := run()
	if first.Cached {
		t.Error("first shifted evaluation reported cached")
	}
	second := run()
	if !second.Cached {
		t.Error("repeat shifted evaluation missed the cache")
	}
	first.Cached, second.Cached = false, false
	if first != second {
		t.Errorf("cached shifted record differs: %+v vs %+v", first, second)
	}
}

func TestSweepCancelledContext(t *testing.T) {
	e := NewEngine(EngineConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.Sweep(ctx, SweepRequest{NPrimaries: []int{24}, Ps: []float64{0.95}, Runs: 200}, func(SweepRecord) error { return nil })
	if err == nil {
		t.Fatal("cancelled sweep returned nil")
	}
	if !isContextErr(err) {
		t.Fatalf("err = %v, want a context error", err)
	}
}

func TestSweepDefaultsReproduceFig9Setting(t *testing.T) {
	e := NewEngine(EngineConfig{DefaultRuns: 100})
	plan, err := e.PlanSweep(SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Four canonical designs × 11 ps at n=100.
	if want := 44; plan.NumPoints() != want {
		t.Errorf("default sweep has %d points, want %d", plan.NumPoints(), want)
	}
}

// flushCountingRecorder counts Flush calls to verify per-record streaming.
type flushCountingRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushCountingRecorder) Flush() {
	f.flushes++
	f.ResponseRecorder.Flush()
}

func TestSweepFlushesAfterEveryRecord(t *testing.T) {
	mux, _ := testMux()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"designs":["DTMB(2,6)"],"n_primaries":[24],"ps":[0.9,0.95,0.99],"runs":100,"seed":1}`))
	w := &flushCountingRecorder{ResponseRecorder: httptest.NewRecorder()}
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if w.flushes < 3 {
		t.Errorf("%d flushes for 3 records; records must stream incrementally", w.flushes)
	}
}

func TestSweepHugePPointsRejectedWithoutAllocation(t *testing.T) {
	mux, _ := testMux()
	// A ~50-byte body must not be able to trigger a p_points-sized
	// allocation; the bound is checked before the grid is materialized.
	w := doJSON(t, mux, http.MethodPost, "/v1/sweep", `{"p_points":1000000000,"p_min":0.5,"p_max":0.9}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "p_points") {
		t.Errorf("body %q should name p_points", w.Body.String())
	}
	w = doJSON(t, mux, http.MethodPost, "/v1/sweep", `{"p_points":-1}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("negative p_points: status %d", w.Code)
	}
}

func TestSweepRejectsDuplicateAxisEntries(t *testing.T) {
	mux, _ := testMux()
	cases := []struct {
		name string
		body string
	}{
		{"aliased design twice", `{"designs":["DTMB(2,6)","dtmb26"]}`},
		{"strategy twice", `{"strategies":["local","local"]}`},
		{"n twice", `{"n_primaries":[60,60]}`},
		{"spare rows twice", `{"strategies":["shifted"],"spare_rows":[1,1]}`},
		{"p twice", `{"ps":[0.95,0.95]}`},
	}
	for _, tc := range cases {
		w := doJSON(t, mux, http.MethodPost, "/v1/sweep", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if !strings.Contains(w.Body.String(), "twice") {
			t.Errorf("%s: body %q should mention the duplicate", tc.name, w.Body.String())
		}
	}
}
