// Package service is the online serving layer of the library: an HTTP/JSON
// API exposing yield simulation, design recommendation,
// reconfiguration-plan queries, and streaming parameter sweeps over the
// core/yieldsim/reconfig/layout/sweep machinery.
//
// The package splits into
//
//   - types.go: the wire-level request/response contracts and validation,
//   - cache.go: a bounded LRU over finished simulation results,
//   - flight.go: single-flight deduplication of concurrent identical work,
//   - engine.go: the batched simulation engine combining the three,
//   - sweep.go: parameter-grid planning and cached point evaluation,
//   - handlers.go: the HTTP handlers, NDJSON streaming, and error mapping,
//   - server.go: server construction and graceful lifecycle.
//
// Simulation endpoints are deterministic in their request parameters (the
// chunk-seeded Monte-Carlo kernel is independent of worker count), which is
// what makes caching by request key sound — and, combined with ordered
// emission, what makes sweep responses byte-reproducible.
package service

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"dmfb/internal/layout"
)

// ErrInvalidRequest tags validation failures so handlers can map them to
// HTTP 400; wrap it with fmt.Errorf("%w: ...").
var ErrInvalidRequest = errors.New("invalid request")

// Resource bounds on a single request, so one cheap POST cannot monopolize
// a worker-pool slot for hours or drive array construction into huge
// allocations. Both are far above the paper's workloads (10000 runs,
// n ≤ 240) while keeping the worst-case request bounded.
const (
	// MaxRuns caps the Monte-Carlo run count of one request.
	MaxRuns = 1_000_000
	// MaxNPrimary caps the primary-cell count of one request.
	MaxNPrimary = 100_000
	// MaxWork caps runs × n_primary — the per-field caps alone would still
	// admit a request costing hours of CPU at both extremes at once.
	MaxWork = 2_000_000_000
	// MaxFaultyCells caps a reconfigure request's fault list; anything
	// larger than every cell of the largest admissible array is noise.
	MaxFaultyCells = 500_000
	// MaxSweepPoints caps the grid size of one sweep request.
	MaxSweepPoints = 20_000
	// MaxSweepWork caps the summed runs × n_primary of a whole sweep — a
	// sweep is one request, so its total cost is bounded like (a few of)
	// the single-point requests it replaces.
	MaxSweepWork = 10 * int64(MaxWork)
	// MaxClusterSize caps the clustered-defect cluster size of one request;
	// clusters larger than any admissible array are noise.
	MaxClusterSize = 1024
)

// validateWork bounds the total simulated trial-cells of one request; the
// engine calls it after defaulting the run count.
func validateWork(runs, nPrimary int) error {
	if int64(runs)*int64(nPrimary) > MaxWork {
		return invalidf("runs×n_primary = %d exceeds the per-request work cap %d", int64(runs)*int64(nPrimary), int64(MaxWork))
	}
	return nil
}

// invalidf builds an ErrInvalidRequest with detail.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidRequest, fmt.Sprintf(format, args...))
}

// validateEpsilon bounds a request's precision target. Zero disables
// adaptive sampling; a meaningful half-width target is strictly inside
// (0, 1) — a proportion's 95% half-width can never reach 1, so epsilon ≥ 1
// is a confused request, not a cheap one.
func validateEpsilon(eps float64) error {
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return invalidf("epsilon must be in [0,1), got %v", eps)
	}
	return nil
}

// resolveDesign maps a wire-level design name to a layout.Design. It accepts
// the paper's names ("DTMB(2,6)") and compact aliases ("dtmb26"),
// case-insensitively.
func resolveDesign(name string) (layout.Design, error) {
	all := layout.AllDesignsWithVariants()
	want := strings.ToLower(strings.TrimSpace(name))
	names := make([]string, 0, len(all))
	for _, d := range all {
		canonical := strings.ToLower(d.Name)
		compact := strings.NewReplacer("(", "", ")", "", ",", "").Replace(canonical)
		if want == canonical || want == compact {
			return d, nil
		}
		names = append(names, d.Name)
	}
	return layout.Design{}, invalidf("unknown design %q (try %s)", name, strings.Join(names, ", "))
}

// YieldRequest asks for a Monte-Carlo yield estimate of one design.
type YieldRequest struct {
	// Design names a DTMB(s, p) pattern, e.g. "DTMB(2,6)" or "dtmb26".
	Design string `json:"design"`
	// NPrimary is the number of primary cells of the array.
	NPrimary int `json:"n_primary"`
	// P is the cell survival probability in [0, 1].
	P float64 `json:"p"`
	// Runs is the Monte-Carlo run count; 0 means the engine default.
	Runs int `json:"runs,omitempty"`
	// Seed makes the estimate reproducible; identical requests hit the cache.
	Seed int64 `json:"seed,omitempty"`
}

func (r *YieldRequest) validate() error {
	if r.Design == "" {
		return invalidf("design is required")
	}
	if r.NPrimary <= 0 || r.NPrimary > MaxNPrimary {
		return invalidf("n_primary must be in [1,%d], got %d", MaxNPrimary, r.NPrimary)
	}
	if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
		return invalidf("p %v outside [0,1]", r.P)
	}
	if r.Runs < 0 || r.Runs > MaxRuns {
		return invalidf("runs must be in [0,%d], got %d", MaxRuns, r.Runs)
	}
	return nil
}

// YieldResponse is one design's yield analysis.
type YieldResponse struct {
	Design         string  `json:"design"`
	NPrimary       int     `json:"n_primary"`
	NTotal         int     `json:"n_total"`
	P              float64 `json:"p"`
	Runs           int     `json:"runs"`
	Seed           int64   `json:"seed"`
	Yield          float64 `json:"yield"`
	CILo           float64 `json:"ci_lo"`
	CIHi           float64 `json:"ci_hi"`
	EffectiveYield float64 `json:"effective_yield"`
	NoRedundancy   float64 `json:"no_redundancy"`
	// Cached reports whether the response was served from the result cache.
	Cached bool `json:"cached"`
}

// RecommendRequest asks which canonical design maximizes effective yield at
// survival probability P (the paper's Fig. 10 decision procedure).
type RecommendRequest struct {
	P        float64 `json:"p"`
	NPrimary int     `json:"n_primary"`
	Runs     int     `json:"runs,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

func (r *RecommendRequest) validate() error {
	if r.NPrimary <= 0 || r.NPrimary > MaxNPrimary {
		return invalidf("n_primary must be in [1,%d], got %d", MaxNPrimary, r.NPrimary)
	}
	if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
		return invalidf("p %v outside [0,1]", r.P)
	}
	if r.Runs < 0 || r.Runs > MaxRuns {
		return invalidf("runs must be in [0,%d], got %d", MaxRuns, r.Runs)
	}
	return nil
}

// RecommendResponse names the winning design and carries every analysis that
// fed the decision.
type RecommendResponse struct {
	Best               string          `json:"best"`
	BestEffectiveYield float64         `json:"best_effective_yield"`
	Analyses           []YieldResponse `json:"analyses"`
	Cached             bool            `json:"cached"`
}

// ReconfigureRequest asks for a local-reconfiguration plan of a design with
// the given faulty cells (e.g. from a test session's diagnosis).
type ReconfigureRequest struct {
	Design      string `json:"design"`
	NPrimary    int    `json:"n_primary"`
	FaultyCells []int  `json:"faulty_cells"`
}

func (r *ReconfigureRequest) validate() error {
	if r.Design == "" {
		return invalidf("design is required")
	}
	if r.NPrimary <= 0 || r.NPrimary > MaxNPrimary {
		return invalidf("n_primary must be in [1,%d], got %d", MaxNPrimary, r.NPrimary)
	}
	if len(r.FaultyCells) > MaxFaultyCells {
		return invalidf("faulty_cells has %d entries, cap is %d", len(r.FaultyCells), MaxFaultyCells)
	}
	return nil
}

// Assignment is one wire-level replacement: faulty primary → adjacent spare.
type Assignment struct {
	Faulty int `json:"faulty"`
	Spare  int `json:"spare"`
}

// ReconfigureResponse is the outcome of a reconfiguration attempt.
type ReconfigureResponse struct {
	// OK reports whether every faulty primary was repaired.
	OK bool `json:"ok"`
	// Assignments lists the replacements, sorted by faulty cell ID.
	Assignments []Assignment `json:"assignments"`
	// Unmatched lists faulty primaries left without a spare (empty when OK).
	Unmatched []int `json:"unmatched,omitempty"`
	// HallWitness, when OK is false, certifies infeasibility: a set of faulty
	// primaries whose combined spare neighborhood is too small.
	HallWitness     []int `json:"hall_witness,omitempty"`
	FaultyPrimaries int   `json:"faulty_primaries"`
	FaultySpares    int   `json:"faulty_spares"`
	NTotal          int   `json:"n_total"`
}

// SweepRequest asks for a Cartesian grid of yield scenarios, streamed back
// as one NDJSON record per grid point. Every axis is optional; the defaults
// reproduce the paper's Fig. 9 setting (the four canonical designs at
// n = 100, p from 0.90 to 1.00 in 11 steps, local reconfiguration).
type SweepRequest struct {
	// Strategies lists redundancy schemes: "none" (p^n baseline), "local"
	// (DTMB interstitial redundancy on a parallelogram footprint, the
	// paper's proposal), "shifted" (boundary spare rows, the Fig. 2
	// baseline) and/or "hex" (the same interstitial designs on a regular
	// hexagonal chip footprint). Empty means ["local"].
	Strategies []string `json:"strategies,omitempty"`
	// Designs lists DTMB designs for the local and hex strategies; names and
	// compact aliases are accepted as in /v1/yield. Empty means the
	// canonical four.
	Designs []string `json:"designs,omitempty"`
	// NPrimaries lists primary-cell counts; empty means [100].
	NPrimaries []int `json:"n_primaries,omitempty"`
	// Ps lists explicit survival probabilities; when empty the range
	// [p_min, p_max] is sampled at p_points evenly spaced values
	// (defaults: 0.90, 1.00, 11).
	Ps      []float64 `json:"ps,omitempty"`
	PMin    float64   `json:"p_min,omitempty"`
	PMax    float64   `json:"p_max,omitempty"`
	PPoints int       `json:"p_points,omitempty"`
	// SpareRows lists boundary spare-row counts for the shifted strategy;
	// empty means [1].
	SpareRows []int `json:"spare_rows,omitempty"`
	// DefectModels lists spatial defect models: "independent" (every cell
	// fails i.i.d. with probability 1−p, the paper's assumption) and/or
	// "clustered" (center-seeded defect clusters with geometric radius decay
	// at the same expected density). Empty means ["independent"].
	DefectModels []string `json:"defect_models,omitempty"`
	// ClusterSize is the expected faulty cells per cluster for the clustered
	// model; 0 means the default (4).
	ClusterSize float64 `json:"cluster_size,omitempty"`
	// Runs is the Monte-Carlo run count per grid point; 0 means the engine
	// default. Closed-form (none-strategy) points ignore it.
	Runs int `json:"runs,omitempty"`
	// Seed makes every grid point reproducible and cacheable.
	Seed int64 `json:"seed,omitempty"`
	// Epsilon, when positive, makes every Monte-Carlo grid point
	// precision-targeted: the kernel stops at the first deterministic chunk
	// boundary where the Wilson 95% half-width reaches epsilon, with runs as
	// the per-point trial budget. Each record's runs field reports the
	// realized count. Must be in [0, 1); 0 keeps fixed-run behavior.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Distributed, on a /v2/jobs request, shards the sweep across registered
	// remote workers instead of evaluating in-process. Requires the server to
	// run with dispatch enabled; the merged result stream is byte-identical
	// to local execution. Ignored (rejected) by the synchronous /v1/sweep.
	Distributed bool `json:"distributed,omitempty"`
}

// SweepRecord is one NDJSON line of a sweep response: the grid point's
// index followed by its evaluated scenario. Records arrive in deterministic
// point order (index ascending), so a sweep's byte stream is a pure
// function of the request for a fresh cache. The embedded ScenarioRecord
// inlines on the wire, keeping the v1 field order intact.
type SweepRecord struct {
	Index int `json:"index"`
	ScenarioRecord
}

// SweepError is the trailing NDJSON record of a sweep that failed after
// streaming began; its presence (any record with a non-empty "error") tells
// a client the stream is incomplete.
type SweepError struct {
	Error string `json:"error"`
}

// StatsResponse reports engine health: cache effectiveness and in-flight
// work.
type StatsResponse struct {
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CacheSize     int     `json:"cache_size"`
	CacheCapacity int     `json:"cache_capacity"`
	// InFlight counts simulations currently executing.
	InFlight int64 `json:"in_flight"`
	// SharedFlights counts requests that piggybacked on an identical
	// in-flight computation instead of starting their own.
	SharedFlights uint64 `json:"shared_flights"`
	// Completed counts simulations actually executed (cache misses that ran).
	Completed     uint64  `json:"completed"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// JobsActive counts /v2 sweep jobs currently running; the remaining job
	// counters accumulate over the server's lifetime.
	JobsActive    int    `json:"jobs_active"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsFailed    uint64 `json:"jobs_failed"`
	// PointsEvaluated counts grid points emitted by jobs (cached or not).
	PointsEvaluated uint64 `json:"points_evaluated"`

	// Kernel counters aggregate Monte-Carlo work across every endpoint:
	// total trials, the all-healthy fast-path vs matcher-invocation split,
	// and the number of executed kernel chunks.
	KernelTrials             uint64 `json:"kernel_trials"`
	KernelAllHealthy         uint64 `json:"kernel_all_healthy"`
	KernelMatcherInvocations uint64 `json:"kernel_matcher_invocations"`
	KernelChunks             uint64 `json:"kernel_chunks"`
	// KernelEarlyStops counts precision-targeted estimates that met their
	// epsilon before exhausting the trial budget.
	KernelEarlyStops uint64 `json:"kernel_early_stops"`

	// AdmissionWaits counts admissions through the engine's semaphore;
	// AdmissionWaitSecondsTotal sums the time they spent queued.
	AdmissionWaits            uint64  `json:"admission_waits"`
	AdmissionWaitSecondsTotal float64 `json:"admission_wait_seconds_total"`

	// JobResultBufferBytes is the encoded NDJSON held by finished jobs;
	// JobEvictions counts jobs evicted by the store's retention bounds.
	JobResultBufferBytes int64  `json:"job_result_buffer_bytes"`
	JobEvictions         uint64 `json:"job_evictions"`
	// StreamFlushes counts NDJSON records flushed across the sweep and job
	// result streams.
	StreamFlushes uint64 `json:"stream_flushes"`

	// JobStoreDiskBytes is the on-disk footprint of the durable job store
	// (0 when the store is in-memory).
	JobStoreDiskBytes int64 `json:"job_store_disk_bytes"`
	// Dispatch counters accumulate over the coordinator's lifetime; all zero
	// when distributed dispatch is not enabled.
	DispatchShardsLeased      uint64 `json:"dispatch_shards_leased"`
	DispatchShardsCompleted   uint64 `json:"dispatch_shards_completed"`
	DispatchShardsExpired     uint64 `json:"dispatch_shards_expired"`
	DispatchShardsQuarantined uint64 `json:"dispatch_shards_quarantined"`
	DispatchRetries           uint64 `json:"dispatch_retries"`
	// WorkersActive counts registered workers seen within the liveness window.
	WorkersActive int `json:"workers_active"`
}
