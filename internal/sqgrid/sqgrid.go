// Package sqgrid models square-electrode microfluidic arrays: the geometry of
// the first-generation fabricated biochip (paper Fig. 11) and the
// boundary-spare-row arrays used by the shifted-replacement baseline that the
// paper argues against (Fig. 2).
//
// A Placement arranges rectangular modules (mixers, detectors, storage) on a
// Grid, optionally reserving spare rows at the bottom boundary — the classic
// row-redundancy arrangement whose repair cascades package reconfig
// implements. PlacementWithPrimaryTarget builds such arrays with an exact
// working-cell count, the knob the yield sweeps vary when comparing boundary
// redundancy against the paper's interstitial designs.
package sqgrid

import (
	"fmt"
	"sort"
)

// Coord is a cell position on the square lattice.
type Coord struct {
	X, Y int
}

// String formats the coordinate.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Directions4 lists the four von-Neumann neighbor offsets. On a
// square-electrode array a droplet can move in exactly these directions.
var Directions4 = [4]Coord{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// Add returns the vector sum.
func (c Coord) Add(d Coord) Coord { return Coord{c.X + d.X, c.Y + d.Y} }

// Neighbors4 returns the four adjacent cells.
func (c Coord) Neighbors4() [4]Coord {
	var out [4]Coord
	for i, d := range Directions4 {
		out[i] = c.Add(d)
	}
	return out
}

// Manhattan returns the L1 distance between two cells, the minimum number of
// droplet moves on a defect-free square array.
func (c Coord) Manhattan(d Coord) int {
	return absInt(c.X-d.X) + absInt(c.Y-d.Y)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Grid is a W×H array of square electrodes.
type Grid struct {
	W, H int
}

// Contains reports whether the coordinate lies on the grid.
func (g Grid) Contains(c Coord) bool {
	return c.X >= 0 && c.X < g.W && c.Y >= 0 && c.Y < g.H
}

// NumCells returns W·H.
func (g Grid) NumCells() int { return g.W * g.H }

// Index returns the dense row-major index of c, or -1 if off-grid.
func (g Grid) Index(c Coord) int {
	if !g.Contains(c) {
		return -1
	}
	return c.Y*g.W + c.X
}

// CoordOf inverts Index.
func (g Grid) CoordOf(i int) Coord { return Coord{i % g.W, i / g.W} }

// Module is a rectangular group of cells reconfigured as a unit (mixer,
// detector, storage, ...). It occupies columns [X, X+W) and rows [Y, Y+H).
type Module struct {
	Name string
	X, Y int
	W, H int
}

// Cells returns the module's cells in row-major order.
func (m Module) Cells() []Coord {
	out := make([]Coord, 0, m.W*m.H)
	for y := m.Y; y < m.Y+m.H; y++ {
		for x := m.X; x < m.X+m.W; x++ {
			out = append(out, Coord{x, y})
		}
	}
	return out
}

// Area returns the number of cells the module occupies.
func (m Module) Area() int { return m.W * m.H }

// Contains reports whether the module covers c.
func (m Module) Contains(c Coord) bool {
	return c.X >= m.X && c.X < m.X+m.W && c.Y >= m.Y && c.Y < m.Y+m.H
}

// Overlaps reports whether two modules share any cell.
func (m Module) Overlaps(o Module) bool {
	return m.X < o.X+o.W && o.X < m.X+m.W && m.Y < o.Y+o.H && o.Y < m.Y+m.H
}

// Translate returns the module moved by (dx, dy).
func (m Module) Translate(dx, dy int) Module {
	m.X += dx
	m.Y += dy
	return m
}

// Placement is a set of modules on a grid, optionally with reserved spare
// rows at the bottom of the array (rows H-SpareRows .. H-1), the classic
// boundary-redundancy arrangement.
type Placement struct {
	Grid      Grid
	Modules   []Module
	SpareRows int
}

// usableH returns the number of rows available to modules before
// reconfiguration dips into the spare rows.
func (p Placement) usableH() int { return p.Grid.H - p.SpareRows }

// Validate checks bounds (modules must initially avoid the spare rows),
// non-overlap, and positive module dimensions. It returns nil when sound.
func (p Placement) Validate() error {
	if p.Grid.W <= 0 || p.Grid.H <= 0 {
		return fmt.Errorf("sqgrid: degenerate grid %dx%d", p.Grid.W, p.Grid.H)
	}
	if p.SpareRows < 0 || p.SpareRows >= p.Grid.H {
		return fmt.Errorf("sqgrid: %d spare rows on %d-row grid", p.SpareRows, p.Grid.H)
	}
	for i, m := range p.Modules {
		if m.W <= 0 || m.H <= 0 {
			return fmt.Errorf("sqgrid: module %q has degenerate size %dx%d", m.Name, m.W, m.H)
		}
		if m.X < 0 || m.Y < 0 || m.X+m.W > p.Grid.W || m.Y+m.H > p.usableH() {
			return fmt.Errorf("sqgrid: module %q out of usable area", m.Name)
		}
		for j := i + 1; j < len(p.Modules); j++ {
			if m.Overlaps(p.Modules[j]) {
				return fmt.Errorf("sqgrid: modules %q and %q overlap", m.Name, p.Modules[j].Name)
			}
		}
	}
	return nil
}

// ModuleAt returns the index of the module covering c, or -1.
func (p Placement) ModuleAt(c Coord) int {
	for i, m := range p.Modules {
		if m.Contains(c) {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the placement.
func (p Placement) Clone() Placement {
	out := p
	out.Modules = append([]Module(nil), p.Modules...)
	return out
}

// UsedCells returns the distinct cells covered by any module, sorted
// row-major.
func (p Placement) UsedCells() []Coord {
	seen := map[Coord]struct{}{}
	for _, m := range p.Modules {
		for _, c := range m.Cells() {
			seen[c] = struct{}{}
		}
	}
	out := make([]Coord, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// PlacementWithPrimaryTarget builds a spare-row placement with exactly
// nPrimary working (module-covered) cells and the given number of boundary
// spare rows — the square-grid counterpart of layout.BuildWithPrimaryTarget,
// used to compare shifted replacement against interstitial redundancy at
// equal primary-cell counts. The working area is a near-square block of
// width ceil(sqrt(nPrimary)): full rows sit next to the spare rows (so
// cascades stay short where the array is dense) and any partial row sits at
// the top. Spare rows occupy the bottom of the grid, as in the paper's
// Fig. 2.
func PlacementWithPrimaryTarget(nPrimary, spareRows int) (Placement, error) {
	if nPrimary <= 0 {
		return Placement{}, fmt.Errorf("sqgrid: primary target %d must be positive", nPrimary)
	}
	if spareRows < 1 {
		return Placement{}, fmt.Errorf("sqgrid: spare-row count %d must be at least 1", spareRows)
	}
	w := 1
	for w*w < nPrimary {
		w++
	}
	usable := (nPrimary + w - 1) / w
	rem := nPrimary - w*(usable-1) // cells in the partial top row (0 < rem <= w)
	p := Placement{
		Grid:      Grid{W: w, H: usable + spareRows},
		SpareRows: spareRows,
	}
	if rem == w {
		p.Modules = []Module{{Name: "work", X: 0, Y: 0, W: w, H: usable}}
	} else {
		p.Modules = []Module{{Name: "work-top", X: 0, Y: 0, W: rem, H: 1}}
		if usable > 1 {
			p.Modules = append(p.Modules, Module{Name: "work", X: 0, Y: 1, W: w, H: usable - 1})
		}
	}
	if err := p.Validate(); err != nil {
		return Placement{}, err
	}
	return p, nil
}

// Figure2Placement reproduces the arrangement of the paper's Fig. 2: three
// stacked modules above a single spare row. Module 1 sits directly above the
// spare row, Module 3 on top.
func Figure2Placement() Placement {
	g := Grid{W: 8, H: 10}
	return Placement{
		Grid:      g,
		SpareRows: 1,
		Modules: []Module{
			{Name: "Module 1", X: 1, Y: 6, W: 6, H: 3},
			{Name: "Module 2", X: 1, Y: 3, W: 6, H: 3},
			{Name: "Module 3", X: 1, Y: 0, W: 6, H: 3},
		},
	}
}
