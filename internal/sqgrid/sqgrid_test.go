package sqgrid

import (
	"testing"
	"testing/quick"
)

func TestCoordNeighborsAndDistance(t *testing.T) {
	c := Coord{3, 4}
	for _, n := range c.Neighbors4() {
		if c.Manhattan(n) != 1 {
			t.Errorf("neighbor %v at distance %d", n, c.Manhattan(n))
		}
	}
	if (Coord{0, 0}).Manhattan(Coord{3, -4}) != 7 {
		t.Error("Manhattan wrong")
	}
}

func TestManhattanIsAMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		c := Coord{int(cx), int(cy)}
		if a.Manhattan(b) != b.Manhattan(a) {
			return false
		}
		if (a.Manhattan(b) == 0) != (a == b) {
			return false
		}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridContainsAndIndex(t *testing.T) {
	g := Grid{W: 5, H: 3}
	if g.NumCells() != 15 {
		t.Error("NumCells wrong")
	}
	if !g.Contains(Coord{4, 2}) || g.Contains(Coord{5, 0}) || g.Contains(Coord{0, -1}) {
		t.Error("Contains wrong")
	}
	if g.Index(Coord{5, 0}) != -1 {
		t.Error("off-grid index should be -1")
	}
	for i := 0; i < g.NumCells(); i++ {
		if g.Index(g.CoordOf(i)) != i {
			t.Fatalf("index round trip failed at %d", i)
		}
	}
}

func TestModuleCellsAreaContains(t *testing.T) {
	m := Module{Name: "mixer", X: 2, Y: 1, W: 3, H: 2}
	if m.Area() != 6 {
		t.Error("Area wrong")
	}
	cells := m.Cells()
	if len(cells) != 6 {
		t.Fatalf("Cells returned %d", len(cells))
	}
	for _, c := range cells {
		if !m.Contains(c) {
			t.Errorf("module does not contain own cell %v", c)
		}
	}
	if m.Contains(Coord{1, 1}) || m.Contains(Coord{2, 3}) {
		t.Error("Contains accepts outside cells")
	}
}

func TestModuleOverlaps(t *testing.T) {
	a := Module{X: 0, Y: 0, W: 3, H: 3}
	cases := []struct {
		b    Module
		want bool
	}{
		{Module{X: 2, Y: 2, W: 2, H: 2}, true},
		{Module{X: 3, Y: 0, W: 2, H: 2}, false}, // shares only an edge
		{Module{X: 0, Y: 3, W: 3, H: 1}, false},
		{Module{X: 1, Y: 1, W: 1, H: 1}, true}, // contained
	}
	for _, c := range cases {
		if a.Overlaps(c.b) != c.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", c.b, !c.want, c.want)
		}
		if c.b.Overlaps(a) != c.want {
			t.Errorf("Overlaps not symmetric for %+v", c.b)
		}
	}
}

func TestTranslate(t *testing.T) {
	m := Module{X: 1, Y: 2, W: 2, H: 2}
	mv := m.Translate(0, 3)
	if mv.X != 1 || mv.Y != 5 || m.Y != 2 {
		t.Error("Translate should return a moved copy")
	}
}

func TestPlacementValidate(t *testing.T) {
	good := Figure2Placement()
	if err := good.Validate(); err != nil {
		t.Fatalf("Figure2Placement invalid: %v", err)
	}

	bad := good.Clone()
	bad.Modules[0].Y = 7 // extends into spare row (usable rows are 0..8)
	if err := bad.Validate(); err == nil {
		t.Error("module in spare row accepted")
	}

	overlap := good.Clone()
	overlap.Modules[1].Y = 5
	if err := overlap.Validate(); err == nil {
		t.Error("overlapping modules accepted")
	}

	degenerate := good.Clone()
	degenerate.Modules[0].W = 0
	if err := degenerate.Validate(); err == nil {
		t.Error("degenerate module accepted")
	}

	if err := (Placement{Grid: Grid{0, 5}}).Validate(); err == nil {
		t.Error("degenerate grid accepted")
	}
	if err := (Placement{Grid: Grid{5, 5}, SpareRows: 5}).Validate(); err == nil {
		t.Error("all-spare grid accepted")
	}
}

func TestModuleAt(t *testing.T) {
	p := Figure2Placement()
	if i := p.ModuleAt(Coord{1, 6}); i != 0 {
		t.Errorf("ModuleAt(1,6) = %d, want 0 (Module 1)", i)
	}
	if i := p.ModuleAt(Coord{3, 1}); i != 2 {
		t.Errorf("ModuleAt(3,1) = %d, want 2 (Module 3)", i)
	}
	if i := p.ModuleAt(Coord{0, 0}); i != -1 {
		t.Errorf("ModuleAt(0,0) = %d, want -1", i)
	}
	if i := p.ModuleAt(Coord{4, 9}); i != -1 {
		t.Errorf("spare row should be unoccupied, got module %d", i)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Figure2Placement()
	c := p.Clone()
	c.Modules[0].Name = "changed"
	if p.Modules[0].Name == "changed" {
		t.Error("Clone shares module storage")
	}
}

func TestUsedCells(t *testing.T) {
	p := Placement{
		Grid:    Grid{W: 4, H: 4},
		Modules: []Module{{Name: "a", X: 0, Y: 0, W: 2, H: 2}, {Name: "b", X: 2, Y: 2, W: 2, H: 1}},
	}
	used := p.UsedCells()
	if len(used) != 6 {
		t.Fatalf("UsedCells = %v", used)
	}
	// Sorted row-major.
	for i := 1; i < len(used); i++ {
		a, b := used[i-1], used[i]
		if a.Y > b.Y || (a.Y == b.Y && a.X >= b.X) {
			t.Errorf("UsedCells not sorted: %v before %v", a, b)
		}
	}
}

func TestFigure2PlacementStructure(t *testing.T) {
	p := Figure2Placement()
	if len(p.Modules) != 3 || p.SpareRows != 1 {
		t.Fatal("Figure 2 placement must have 3 modules above one spare row")
	}
	// Module 1 must sit directly above the spare row, Module 3 at the top.
	m1, m3 := p.Modules[0], p.Modules[2]
	if m1.Y+m1.H != p.Grid.H-1 {
		t.Error("Module 1 must abut the spare row")
	}
	if m3.Y != 0 {
		t.Error("Module 3 must touch the top boundary")
	}
}

func TestPlacementWithPrimaryTargetExactCounts(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 60, 100, 101, 240} {
		for _, rows := range []int{1, 2, 3} {
			p, err := PlacementWithPrimaryTarget(n, rows)
			if err != nil {
				t.Fatalf("n=%d rows=%d: %v", n, rows, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d rows=%d: %v", n, rows, err)
			}
			if got := len(p.UsedCells()); got != n {
				t.Errorf("n=%d rows=%d: %d used cells", n, rows, got)
			}
			if p.SpareRows != rows {
				t.Errorf("n=%d: spare rows %d, want %d", n, p.SpareRows, rows)
			}
			if p.Grid.NumCells() <= n {
				t.Errorf("n=%d rows=%d: total %d must exceed n", n, rows, p.Grid.NumCells())
			}
		}
	}
}

func TestPlacementWithPrimaryTargetFullRowsTouchSpares(t *testing.T) {
	// The partial row (4 cells of width 5) must sit at the top, away from
	// the spare rows.
	p, err := PlacementWithPrimaryTarget(24, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Modules {
		if m.W < p.Grid.W && m.Y != 0 {
			t.Errorf("partial module %+v not at the top", m)
		}
	}
}

func TestPlacementWithPrimaryTargetRejectsBadInputs(t *testing.T) {
	if _, err := PlacementWithPrimaryTarget(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PlacementWithPrimaryTarget(10, 0); err == nil {
		t.Error("0 spare rows accepted")
	}
}
