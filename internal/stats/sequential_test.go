package stats

import (
	"math"
	"strings"
	"testing"
)

func TestWilson95HalfMatchesUnclampedInterval(t *testing.T) {
	// Away from the clamped edges the reported interval's spread is exactly
	// twice the half-width.
	for _, p := range []Proportion{
		{Successes: 50, Trials: 100},
		{Successes: 900, Trials: 1000},
		{Successes: 3, Trials: 10},
	} {
		lo, hi := p.Wilson95()
		if lo <= 0 || hi >= 1 {
			t.Fatalf("%+v: test case hit a clamped edge (lo=%v hi=%v)", p, lo, hi)
		}
		if got, want := p.Wilson95Half(), (hi-lo)/2; math.Abs(got-want) > 1e-12 {
			t.Errorf("%+v: half-width %v, want %v", p, got, want)
		}
	}
}

func TestWilson95HalfConservativeAtEdges(t *testing.T) {
	// At the edges the reported interval is clamped, so its spread never
	// exceeds twice the unclamped half-width — the stopping quantity is
	// conservative.
	for _, p := range []Proportion{
		{Successes: 0, Trials: 100},
		{Successes: 100, Trials: 100},
		{Successes: 999, Trials: 1000},
	} {
		lo, hi := p.Wilson95()
		if (hi-lo)/2 > p.Wilson95Half()+1e-15 {
			t.Errorf("%+v: clamped spread %v exceeds half-width %v", p, (hi-lo)/2, p.Wilson95Half())
		}
	}
	if !math.IsInf(Proportion{}.Wilson95Half(), 1) {
		t.Error("zero-trials half-width must be +Inf")
	}
}

func TestSequentialCI(t *testing.T) {
	off := SequentialCI{}
	if off.Enabled() || off.Satisfied(1000, 1000) {
		t.Error("epsilon 0 must disable the rule")
	}
	rule := SequentialCI{Epsilon: 0.01}
	if !rule.Enabled() {
		t.Error("positive epsilon must enable the rule")
	}
	if rule.Satisfied(0, 0) {
		t.Error("no trials can never satisfy a precision target")
	}
	if rule.Satisfied(50, 100) {
		t.Error("100 trials at phat=0.5 cannot reach half-width 0.01")
	}
	// At phat ≈ 1 the Wilson half-width collapses quickly; 10k unanimous
	// trials are comfortably below 0.01.
	if !rule.Satisfied(10000, 10000) {
		t.Error("10000/10000 should satisfy epsilon 0.01")
	}
	// Monotone in trials at fixed phat: once satisfied, more data at the
	// same proportion stays satisfied.
	if rule.Satisfied(9990, 10000) && !rule.Satisfied(2*9990, 2*10000) {
		t.Error("rule not monotone in trials at fixed proportion")
	}
}

func TestBinomialWeightsAgainstPoissonBinomial(t *testing.T) {
	const n, q = 40, 0.07
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = q
	}
	pmf := PoissonBinomialPMF(qs)
	weights, tail := BinomialWeights(n, q, 1e-12)
	if tail > 1e-12 {
		t.Fatalf("tail %v exceeds requested bound", tail)
	}
	if len(weights) < 10 {
		t.Fatalf("head kept only %d strata at mean %v", len(weights), float64(n)*q)
	}
	for k := range weights {
		if math.Abs(weights[k]-pmf[k]) > 1e-12 {
			t.Errorf("k=%d: binomial %v vs poisson-binomial %v", k, weights[k], pmf[k])
		}
	}
}

func TestBinomialWeightsTruncation(t *testing.T) {
	weights, tail := BinomialWeights(1000, 0.001, 1e-6)
	if len(weights) > 20 {
		t.Errorf("q=0.001 head kept %d strata; truncation is not working", len(weights))
	}
	if tail < 0 || tail > 1e-6 {
		t.Errorf("tail %v outside [0, 1e-6]", tail)
	}
	sum := tail
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("head + tail sums to %v, want 1", sum)
	}
}

func TestBinomialWeightsEdgeCases(t *testing.T) {
	if w, tail := BinomialWeights(-1, 0.5, 0); w != nil || tail != 0 {
		t.Errorf("negative n: %v, %v", w, tail)
	}
	if w, _ := BinomialWeights(10, 0, 0); len(w) != 1 || w[0] != 1 {
		t.Errorf("q=0: %v", w)
	}
	if w, _ := BinomialWeights(3, 1, 0); len(w) != 4 || w[3] != 1 || w[0] != 0 {
		t.Errorf("q=1: %v", w)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := Table{Columns: []string{"name", "note"}}
	tb.AddRow(`DTMB(2,6)`, `has "quotes" and, commas`)
	tb.AddRow("plain", "line\nbreak")
	got := tb.CSV()
	want := "name,note\n" +
		`"DTMB(2,6)","has ""quotes"" and, commas"` + "\n" +
		"plain,\"line\nbreak\"\n"
	if got != want {
		t.Errorf("CSV quoting:\ngot  %q\nwant %q", got, want)
	}
	// Cells without special characters must render byte-identically to their
	// input — existing CSV consumers see no change.
	if !strings.Contains(got, "\nplain,") {
		t.Error("plain cell was quoted")
	}
}
