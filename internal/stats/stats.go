// Package stats provides the small statistical toolkit shared by the yield
// simulators: deterministic PRNG stream splitting, summary statistics,
// Wilson score confidence intervals for Monte-Carlo success proportions, and
// series/table containers used by the experiment drivers.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// SplitMix64 advances and mixes a 64-bit state; used to derive independent
// per-worker PRNG seeds from one experiment seed so parallel Monte-Carlo
// remains reproducible regardless of worker count.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedStream returns n deterministic, well-separated seeds derived from seed.
func SeedStream(seed int64, n int) []int64 {
	state := uint64(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(SplitMix64(&state))
	}
	return out
}

// NewRand returns a rand.Rand seeded with the given seed. Centralizing the
// constructor keeps every simulation deterministic and greppable.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Proportion is a Monte-Carlo success proportion with its sample size.
type Proportion struct {
	Successes, Trials int
}

// Value returns successes/trials (0 when trials == 0).
func (p Proportion) Value() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// z95 is the normal quantile for a two-sided 95% interval.
const z95 = 1.959963984540054

// Wilson95 returns the Wilson score 95% confidence interval for the
// proportion. Unlike the normal approximation it behaves sensibly at 0 and 1,
// where Monte-Carlo yield estimates often sit.
func (p Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Value()
	z := z95
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Wilson95Half returns the half-width of the unclamped Wilson score 95%
// interval. The reported Wilson95 bounds are clamped to [0,1], so their
// spread never exceeds twice this value — which makes the unclamped
// half-width the conservative quantity for precision targets: once it is at
// or below ε, the reported interval is too.
func (p Proportion) Wilson95Half() float64 {
	if p.Trials == 0 {
		return math.Inf(1)
	}
	n := float64(p.Trials)
	phat := p.Value()
	z := z95
	return z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / (1 + z*z/n)
}

// Contains reports whether the Wilson 95% interval contains v.
func (p Proportion) Contains(v float64) bool {
	lo, hi := p.Wilson95()
	return v >= lo && v <= hi
}

// SequentialCI is the mid-stream stopping rule of precision-targeted
// Monte-Carlo sampling: stop as soon as the running success proportion's
// Wilson 95% half-width reaches the target Epsilon. Checking the Wilson
// width (rather than the normal-approximation width) keeps the rule sound
// at proportions near 0 and 1, exactly where yield estimates sit and where
// early stopping pays off most.
//
// Repeatedly testing a confidence interval mid-stream makes the realized
// coverage slightly below the nominal 95% (the usual sequential-testing
// caveat); the kernel mitigates this by evaluating the rule only at chunk
// boundaries, never per trial, and the estimate itself stays unbiased.
type SequentialCI struct {
	// Epsilon is the target 95% half-width; zero or negative disables the
	// rule (Satisfied never fires).
	Epsilon float64
}

// Enabled reports whether the rule can ever fire.
func (s SequentialCI) Enabled() bool { return s.Epsilon > 0 }

// Satisfied reports whether an estimate with the given counts already meets
// the precision target.
func (s SequentialCI) Satisfied(successes, trials int) bool {
	if !s.Enabled() || trials <= 0 {
		return false
	}
	return Proportion{Successes: successes, Trials: trials}.Wilson95Half() <= s.Epsilon
}

// BinomialWeights returns the head of the Binomial(n, q) probability mass
// function — weights[k] = P(K = k) for k = 0..kMax — extended until the
// remaining upper tail mass is at most maxTail, which is returned exactly as
// 1 − Σ weights. The head is computed by the stable ratio recurrence
// P(0) = exp(n·ln(1−q)), P(k+1) = P(k)·(n−k)/(k+1)·q/(1−q), so no factorials
// overflow and no alternating sums cancel. It is the fault-count
// stratification weight function: with every cell failing i.i.d. with
// probability q, weights[k] is the probability a trial draws exactly k
// faults.
func BinomialWeights(n int, q, maxTail float64) (weights []float64, tail float64) {
	if n < 0 {
		return nil, 0
	}
	if q <= 0 {
		return []float64{1}, 0
	}
	if q >= 1 {
		weights = make([]float64, n+1)
		weights[n] = 1
		return weights, 0
	}
	if maxTail < 0 {
		maxTail = 0
	}
	ratio := q / (1 - q)
	pk := math.Exp(float64(n) * math.Log1p(-q))
	cum := 0.0
	for k := 0; k <= n; k++ {
		weights = append(weights, pk)
		cum += pk
		if 1-cum <= maxTail {
			break
		}
		pk *= float64(n-k) / float64(k+1) * ratio
	}
	tail = 1 - cum
	if tail < 0 {
		tail = 0
	}
	return weights, tail
}

// PoissonBinomialPMF returns the full probability mass function of the
// number of successes among independent Bernoulli trials with the given
// per-trial probabilities qs: pmf[k] = P(K = k), k = 0..len(qs). It is the
// heterogeneous generalization of BinomialWeights, computed by the standard
// O(n²) convolution recurrence; BinomialWeights(n, q, 0) equals
// PoissonBinomialPMF of n copies of q.
func PoissonBinomialPMF(qs []float64) []float64 {
	pmf := make([]float64, 1, len(qs)+1)
	pmf[0] = 1
	for _, q := range qs {
		pmf = append(pmf, 0)
		for k := len(pmf) - 1; k > 0; k-- {
			pmf[k] = pmf[k]*(1-q) + pmf[k-1]*q
		}
		pmf[0] *= 1 - q
	}
	return pmf
}

// Series is a named (x, y) sequence, one curve of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value at the first x equal (within 1e-9) to x; ok
// reports whether the point exists.
func (s *Series) YAt(x float64) (y float64, ok bool) {
	for i, xv := range s.X {
		if math.Abs(xv-x) < 1e-9 {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Table is a printable grid of rows, one paper table or figure data block.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns, suitable for terminal
// output and EXPERIMENTS.md blocks.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 comma-separated values: cells containing
// commas, double quotes, or line breaks are quoted, with embedded quotes
// doubled; all other cells render byte-identically to their input.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvCell quotes one CSV cell per RFC 4180 when it needs it.
func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
