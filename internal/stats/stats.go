// Package stats provides the small statistical toolkit shared by the yield
// simulators: deterministic PRNG stream splitting, summary statistics,
// Wilson score confidence intervals for Monte-Carlo success proportions, and
// series/table containers used by the experiment drivers.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// SplitMix64 advances and mixes a 64-bit state; used to derive independent
// per-worker PRNG seeds from one experiment seed so parallel Monte-Carlo
// remains reproducible regardless of worker count.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedStream returns n deterministic, well-separated seeds derived from seed.
func SeedStream(seed int64, n int) []int64 {
	state := uint64(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(SplitMix64(&state))
	}
	return out
}

// NewRand returns a rand.Rand seeded with the given seed. Centralizing the
// constructor keeps every simulation deterministic and greppable.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Proportion is a Monte-Carlo success proportion with its sample size.
type Proportion struct {
	Successes, Trials int
}

// Value returns successes/trials (0 when trials == 0).
func (p Proportion) Value() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// z95 is the normal quantile for a two-sided 95% interval.
const z95 = 1.959963984540054

// Wilson95 returns the Wilson score 95% confidence interval for the
// proportion. Unlike the normal approximation it behaves sensibly at 0 and 1,
// where Monte-Carlo yield estimates often sit.
func (p Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Value()
	z := z95
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Contains reports whether the Wilson 95% interval contains v.
func (p Proportion) Contains(v float64) bool {
	lo, hi := p.Wilson95()
	return v >= lo && v <= hi
}

// Series is a named (x, y) sequence, one curve of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value at the first x equal (within 1e-9) to x; ok
// reports whether the point exists.
func (s *Series) YAt(x float64) (y float64, ok bool) {
	for i, xv := range s.X {
		if math.Abs(xv-x) < 1e-9 {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Table is a printable grid of rows, one paper table or figure data block.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns, suitable for terminal
// output and EXPERIMENTS.md blocks.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; callers keep
// cells free of commas).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
