package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeedStreamDeterministicAndDistinct(t *testing.T) {
	a := SeedStream(42, 16)
	b := SeedStream(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed stream not deterministic at %d", i)
		}
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	c := SeedStream(43, 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different master seeds produced identical streams")
	}
}

func TestSplitMix64AdvancesState(t *testing.T) {
	state := uint64(7)
	v1 := SplitMix64(&state)
	v2 := SplitMix64(&state)
	if v1 == v2 {
		t.Error("consecutive outputs equal; state not advancing")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestProportionValue(t *testing.T) {
	if (Proportion{}).Value() != 0 {
		t.Error("empty proportion should be 0")
	}
	p := Proportion{Successes: 30, Trials: 40}
	if math.Abs(p.Value()-0.75) > 1e-12 {
		t.Errorf("Value = %v", p.Value())
	}
}

func TestWilson95Properties(t *testing.T) {
	f := func(succ uint16, extra uint16) bool {
		trials := int(succ) + int(extra)
		if trials == 0 {
			return true
		}
		p := Proportion{Successes: int(succ), Trials: trials}
		lo, hi := p.Wilson95()
		v := p.Value()
		return lo >= 0 && hi <= 1 && lo <= v && v <= hi && p.Contains(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWilson95KnownValue(t *testing.T) {
	// 8/10 successes: Wilson interval ≈ [0.4902, 0.9433].
	p := Proportion{Successes: 8, Trials: 10}
	lo, hi := p.Wilson95()
	if math.Abs(lo-0.4902) > 5e-3 || math.Abs(hi-0.9433) > 5e-3 {
		t.Errorf("Wilson95 = [%.4f, %.4f], want ≈ [0.4902, 0.9433]", lo, hi)
	}
}

func TestWilson95ShrinksWithTrials(t *testing.T) {
	small := Proportion{Successes: 9, Trials: 10}
	large := Proportion{Successes: 9000, Trials: 10000}
	slo, shi := small.Wilson95()
	llo, lhi := large.Wilson95()
	if (lhi - llo) >= (shi - slo) {
		t.Errorf("interval did not shrink: small %.4f, large %.4f", shi-slo, lhi-llo)
	}
}

func TestWilsonEmptyTrials(t *testing.T) {
	lo, hi := (Proportion{}).Wilson95()
	if lo != 0 || hi != 1 {
		t.Errorf("empty proportion interval [%v,%v], want [0,1]", lo, hi)
	}
}

func TestSeriesAppendAndLookup(t *testing.T) {
	var s Series
	s.Name = "DTMB(1,6) n=100"
	s.Append(0.9, 0.5)
	s.Append(0.95, 0.8)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(0.95); !ok || y != 0.8 {
		t.Errorf("YAt(0.95) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(0.93); ok {
		t.Error("YAt should miss absent x")
	}
}

func TestTableStringAlignsAndContainsData(t *testing.T) {
	tb := Table{Title: "Table 1", Columns: []string{"Design", "RR"}}
	tb.AddRow("DTMB(1,6)", "0.1667")
	tb.AddRow("DTMB(4,4)", "1.0000")
	s := tb.String()
	for _, want := range []string{"Table 1", "Design", "RR", "DTMB(1,6)", "0.1667", "DTMB(4,4)"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Columns: []string{"p", "yield"}}
	tb.AddRow("0.95", "0.8321")
	csv := tb.CSV()
	if csv != "p,yield\n0.95,0.8321\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestLinspace(t *testing.T) {
	if Linspace(0, 1, 0) != nil {
		t.Error("n=0 should be nil")
	}
	one := Linspace(3, 9, 1)
	if len(one) != 1 || one[0] != 3 {
		t.Errorf("n=1: %v", one)
	}
	xs := Linspace(0.8, 1.0, 5)
	want := []float64{0.8, 0.85, 0.9, 0.95, 1.0}
	if len(xs) != 5 {
		t.Fatalf("len = %d", len(xs))
	}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if xs[4] != 1.0 {
		t.Error("endpoint must be exact")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("NewRand not deterministic")
		}
	}
}
