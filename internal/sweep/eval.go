package sweep

import (
	"context"
	"fmt"
	"math"

	"dmfb/internal/core"
	"dmfb/internal/layout"
	"dmfb/internal/sqgrid"
	"dmfb/internal/yieldsim"
)

// PointResult is the outcome of evaluating one grid point.
type PointResult struct {
	Point
	// NTotal is the total cell count of the evaluated array (primaries plus
	// spares; equals NPrimary for the no-redundancy strategy).
	NTotal int
	// Runs and Seed record the Monte-Carlo parameters that produced the
	// estimate. Runs is the *realized* trial count — under precision-targeted
	// sampling the stopping boundary, not the requested budget — and 0 for
	// closed-form (no-redundancy) points.
	Runs int
	Seed int64
	// Successes is the raw Monte-Carlo success count behind Yield (0 for
	// closed-form points, where Yield is exact rather than a proportion).
	Successes int
	// Epsilon is the precision target the point was evaluated under (0 for
	// fixed-run evaluation and closed forms).
	Epsilon float64
	// Yield is the estimated (or exact) yield, with its Wilson 95% interval.
	Yield, CILo, CIHi float64
	// EffectiveYield is Y·n/N, the paper's yield-per-area metric.
	EffectiveYield float64
	// NoRedundancy is the p^n baseline at this point's n and p.
	NoRedundancy float64
	// Cached reports that a caching evaluator (the service engine) served
	// the point from its result cache; always false for direct evaluation.
	Cached bool
}

// YieldResult converts the estimate back to a yieldsim.Result for consumers
// of the older sweep-free APIs. Successes is carried through from the kernel
// rather than reconstructed from the proportion, so closed-form and cached
// points (Runs == 0) round-trip faithfully.
func (r PointResult) YieldResult() yieldsim.Result {
	return yieldsim.Result{
		Yield:     r.Yield,
		Runs:      r.Runs,
		Successes: r.Successes,
		CILo:      r.CILo,
		CIHi:      r.CIHi,
	}
}

// Evaluate computes one grid point directly — no caching, no admission
// control — through the same core/yieldsim code path the service engine
// uses, so both produce identical numbers for identical (point, params).
func Evaluate(ctx context.Context, pt Point, sp core.SimParams) (PointResult, error) {
	res, err := EvaluateScenario(ctx, pt.Scenario, sp)
	if err != nil {
		return PointResult{}, err
	}
	res.Index = pt.Index
	return res, nil
}

// EvaluateScenario is the yieldsim dispatch at the heart of every
// evaluation path: it routes one Scenario to its closed form or Monte-Carlo
// kernel (interstitial, hexagonal-footprint, or shifted-replacement, under
// either defect model) and assembles the resulting yield analysis. The
// sweep runner, the service engine (with its cache in front), and the v2
// evaluate endpoint all funnel through this one switch.
func EvaluateScenario(ctx context.Context, sc Scenario, sp core.SimParams) (PointResult, error) {
	// Normalize + validate up front so defaults (defect model, cluster size)
	// apply on every path into the switch. Before this guard a zero
	// ClusterSize reached the None+Clustered closed form below and produced
	// exp(-Inf) = 0 silently.
	sc = sc.Normalize()
	if err := sc.Validate(); err != nil {
		return PointResult{}, fmt.Errorf("invalid scenario: %w", err)
	}
	pt := Point{Scenario: sc}
	switch pt.Strategy {
	case None:
		y := yieldsim.NoRedundancy(pt.P, pt.NPrimary)
		if pt.DefectModel == Clustered {
			// Every cluster marks at least its center faulty, so a chip with
			// no spares survives iff zero clusters strike: the Poisson zero
			// class exp(−λ) at cluster rate λ = (1−p)·n / cluster size.
			y = math.Exp(-(1 - pt.P) * float64(pt.NPrimary) / pt.ClusterSize)
		}
		return PointResult{
			Point:          pt,
			NTotal:         pt.NPrimary,
			Seed:           sp.Seed,
			Yield:          y,
			CILo:           y,
			CIHi:           y,
			EffectiveYield: y,
			NoRedundancy:   y,
		}, nil
	case Local:
		design, err := layout.DesignByName(pt.Design)
		if err != nil {
			return PointResult{}, fmt.Errorf("sweep: %w", err)
		}
		if pt.DefectModel == Clustered {
			arr, err := layout.BuildWithPrimaryTarget(design, pt.NPrimary)
			if err != nil {
				return PointResult{}, err
			}
			mc := sp.MonteCarlo()
			res, err := mc.YieldModelContext(ctx, arr, pt.P, pt.Model())
			if err != nil {
				return PointResult{}, err
			}
			return modelPointResult(pt, sp, res, arr.NumPrimary(), arr.NumCells()), nil
		}
		chip, err := core.New(design, pt.NPrimary)
		if err != nil {
			return PointResult{}, err
		}
		ya, err := chip.AnalyzeYieldContext(ctx, pt.P, sp)
		if err != nil {
			return PointResult{}, err
		}
		return PointResult{
			Point:          pt,
			NTotal:         ya.NTotal,
			Runs:           ya.Runs,
			Seed:           sp.Seed,
			Successes:      ya.Successes,
			Epsilon:        sp.Epsilon,
			Yield:          ya.Yield,
			CILo:           ya.CILo,
			CIHi:           ya.CIHi,
			EffectiveYield: ya.EffectiveYield,
			NoRedundancy:   ya.NoRedundancy,
		}, nil
	case Hex:
		design, err := layout.DesignByName(pt.Design)
		if err != nil {
			return PointResult{}, fmt.Errorf("sweep: %w", err)
		}
		mc := sp.MonteCarlo()
		hy, err := mc.HexYieldContext(ctx, design, pt.NPrimary, pt.P, pt.Model())
		if err != nil {
			return PointResult{}, err
		}
		return modelPointResult(pt, sp, hy.Result, hy.NPrimary, hy.NTotal), nil
	case Shifted:
		pl, err := sqgrid.PlacementWithPrimaryTarget(pt.NPrimary, pt.SpareRows)
		if err != nil {
			return PointResult{}, err
		}
		mc := sp.MonteCarlo()
		res, err := mc.ShiftedYieldModelContext(ctx, pl, pt.P, pt.Model())
		if err != nil {
			return PointResult{}, err
		}
		return modelPointResult(pt, sp, res, pt.NPrimary, pl.Grid.NumCells()), nil
	}
	return PointResult{}, fmt.Errorf("sweep: unknown strategy %q", pt.Strategy)
}

// modelPointResult assembles a Monte-Carlo point result from a kernel
// estimate plus the realized cell counts, attaching the independent p^n
// baseline every strategy is compared against.
func modelPointResult(pt Point, sp core.SimParams, res yieldsim.Result, nPrimary, nTotal int) PointResult {
	return PointResult{
		Point:          pt,
		NTotal:         nTotal,
		Runs:           res.Runs,
		Seed:           sp.Seed,
		Successes:      res.Successes,
		Epsilon:        sp.Epsilon,
		Yield:          res.Yield,
		CILo:           res.CILo,
		CIHi:           res.CIHi,
		EffectiveYield: yieldsim.EffectiveYieldCells(res.Yield, nPrimary, nTotal),
		NoRedundancy:   yieldsim.NoRedundancy(pt.P, pt.NPrimary),
	}
}

// Evaluator adapts Evaluate with fixed simulation parameters to an EvalFunc
// for Run.
func Evaluator(sp core.SimParams) EvalFunc {
	return func(ctx context.Context, pt Point) (PointResult, error) {
		return Evaluate(ctx, pt, sp)
	}
}
