package sweep

import (
	"testing"
)

// FuzzSpecExpand drives Spec validation with adversarial axis values. The
// invariants: Expand never panics; an accepted spec plans a finite,
// internally consistent grid (len(Expand()) == NumPoints(), indices dense,
// every point's axes validate individually). The seed corpus runs in plain
// `go test`; `go test -fuzz=FuzzSpecExpand ./internal/sweep` explores
// further.
func FuzzSpecExpand(f *testing.F) {
	f.Add("local", "DTMB(2,6)", 100, 0.9, 1.0, 11, 1, "independent", 4.0)
	f.Add("hex", "DTMB(4,4)", 60, 0.95, 0.95, 1, 1, "clustered", 2.0)
	f.Add("shifted", "", 40, 0.0, 0.0, 0, 3, "clustered", 0.0)
	f.Add("none", "", 1, -1.5, 2.5, 5, 0, "weird", -3.0)
	f.Add("teleport", "DTMB(9,9)", -7, 0.5, 0.4, 1000000, -2, "", 1e300)
	f.Add("", "", 0, 0.0, 0.0, -1, 0, "independent", 0.5)
	f.Fuzz(func(t *testing.T, strategy, design string, n int, pmin, pmax float64,
		points, spareRows int, model string, clusterSize float64) {
		s := Spec{
			PMin:        pmin,
			PMax:        pmax,
			PPoints:     points,
			ClusterSize: clusterSize,
		}
		if strategy != "" {
			s.Strategies = []Strategy{Strategy(strategy)}
		}
		if design != "" {
			s.Designs = []string{design}
		}
		if n != 0 {
			s.NPrimaries = []int{n}
		}
		if spareRows != 0 {
			s.SpareRows = []int{spareRows}
		}
		if model != "" {
			s.DefectModels = []DefectModel{DefectModel(model)}
		}
		// Keep accepted grids small enough to materialize: PPoints is the
		// only axis that can explode, so clamp it like a caller would.
		if s.PPoints > 10000 {
			s.PPoints = 10000
		}
		pts, err := s.Expand()
		if err != nil {
			return // rejected specs just must not panic
		}
		if got, want := len(pts), s.NumPoints(); got != want {
			t.Fatalf("len(Expand()) = %d, NumPoints() = %d", got, want)
		}
		for i, pt := range pts {
			if pt.Index != i {
				t.Fatalf("point %d carries index %d", i, pt.Index)
			}
			if pt.NPrimary <= 0 {
				t.Fatalf("accepted point with n=%d", pt.NPrimary)
			}
			if pt.P != pt.P || pt.P < 0 || pt.P > 1 {
				t.Fatalf("accepted point with p=%v", pt.P)
			}
			if pt.DefectModel != Independent && pt.DefectModel != Clustered {
				t.Fatalf("accepted point with model %q", pt.DefectModel)
			}
			if pt.DefectModel == Clustered && pt.ClusterSize < 1 {
				t.Fatalf("accepted clustered point with size %v", pt.ClusterSize)
			}
		}
	})
}
