package sweep

import (
	"context"
	"time"

	"dmfb/internal/telemetry"
)

// Instrumented wraps an EvalFunc so every grid-point evaluation is timed
// into m, labelled by the point's strategy and defect model. Failed
// evaluations are not recorded — the histogram answers "how long does a
// point of this kind take", and an aborted kernel run answers a different
// question. A nil m returns eval unchanged, so the direct (unmetered)
// evaluation path pays nothing.
func Instrumented(eval EvalFunc, m *telemetry.SweepMetrics) EvalFunc {
	if m == nil {
		return eval
	}
	return func(ctx context.Context, pt Point) (PointResult, error) {
		start := time.Now()
		res, err := eval(ctx, pt)
		if err == nil {
			m.ObservePoint(string(pt.Strategy), string(pt.DefectModel), time.Since(start).Seconds())
		}
		return res, err
	}
}
