package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/telemetry"
)

// TestInstrumentedEvaluator checks the wrapper: successes are timed under
// the right strategy × model labels, failures are not recorded, results
// pass through untouched, and a nil bundle is the identity.
func TestInstrumentedEvaluator(t *testing.T) {
	r := telemetry.NewRegistry()
	sm := telemetry.NewSweepMetrics(r)
	eval := Instrumented(Evaluator(core.SimParams{Runs: 200, Seed: 1}), sm)

	pt := Point{Scenario: Scenario{Strategy: None, NPrimary: 50, P: 0.95, DefectModel: Independent}}
	res, err := eval(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}

	if _, err := eval(context.Background(), Point{Scenario: Scenario{Strategy: "bogus"}}); err == nil {
		t.Fatal("bogus strategy evaluated without error")
	}

	exp := exposition(t, r)
	count := `dmfb_sweep_point_duration_seconds_count{defect_model="independent",strategy="none"}`
	found := false
	for _, s := range exp.Samples {
		if s.Name+"{"+s.Labels+"}" == count {
			found = true
			if s.Value != 1 {
				t.Errorf("point count = %v, want 1 (failure must not be recorded)", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("no %s sample in exposition", count)
	}

	plain := Evaluator(core.SimParams{Runs: 200})
	if got := Instrumented(plain, nil); got == nil {
		t.Error("nil-bundle Instrumented returned nil")
	}

	failing := func(ctx context.Context, pt Point) (PointResult, error) {
		return PointResult{}, errors.New("boom")
	}
	if _, err := Instrumented(failing, sm)(context.Background(), pt); err == nil {
		t.Error("wrapper swallowed the evaluation error")
	}
}

// exposition renders and re-parses r's Prometheus payload.
func exposition(t *testing.T, r *telemetry.Registry) *telemetry.Exposition {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := telemetry.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	return exp
}
