package sweep

import (
	"context"
	"math"
	"reflect"
	"testing"

	"dmfb/internal/core"
)

func TestSpecExpandDefectModelAxis(t *testing.T) {
	s := Spec{
		Strategies:   []Strategy{None, Hex},
		Designs:      []string{"DTMB(2,6)"},
		NPrimaries:   []int{30},
		Ps:           []float64{0.9, 0.95},
		DefectModels: []DefectModel{Independent, Clustered},
		ClusterSize:  5,
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// none: 2 models × 2 ps; hex: 2 models × 1 design × 2 ps.
	if want := 4 + 4; len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	if got := s.NumPoints(); got != len(pts) {
		t.Errorf("NumPoints %d != len(Expand) %d", got, len(pts))
	}
	for _, pt := range pts {
		switch pt.DefectModel {
		case Independent:
			if pt.ClusterSize != 0 {
				t.Errorf("independent point carries cluster size: %+v", pt)
			}
		case Clustered:
			if pt.ClusterSize != 5 {
				t.Errorf("clustered point cluster size %v, want 5", pt.ClusterSize)
			}
		default:
			t.Errorf("point with unexpected model %q", pt.DefectModel)
		}
		if pt.Strategy == Hex && pt.Design == "" {
			t.Errorf("hex point without design: %+v", pt)
		}
	}
	// Model varies slower than p within a strategy.
	if pts[0].DefectModel != Independent || pts[2].DefectModel != Clustered {
		t.Errorf("model ordering wrong: %+v", pts[:4])
	}
}

func TestSpecDefaultsKeepIndependentModel(t *testing.T) {
	var s Spec
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.DefectModel != Independent || pt.ClusterSize != 0 {
			t.Fatalf("default point carries non-default model: %+v", pt)
		}
	}
}

func TestSpecValidationModelAxes(t *testing.T) {
	cases := []Spec{
		{DefectModels: []DefectModel{"weird"}},
		{ClusterSize: 0.5, DefectModels: []DefectModel{Clustered}},
		{ClusterSize: math.NaN(), DefectModels: []DefectModel{Clustered}},
		{Strategies: []Strategy{"hexagonal"}},
	}
	for i, s := range cases {
		if _, err := s.Expand(); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, s)
		}
	}
}

func TestEvaluateHexPoint(t *testing.T) {
	sp := core.SimParams{Runs: 300, Seed: 5}
	pt := Point{Scenario: Scenario{Strategy: Hex, Design: "DTMB(2,6)", NPrimary: 40, P: 0.95, DefectModel: Independent}}
	res, err := Evaluate(context.Background(), pt, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.NTotal <= pt.NPrimary {
		t.Errorf("hex NTotal %d not above n %d", res.NTotal, pt.NPrimary)
	}
	if res.Runs != 300 || res.Seed != 5 {
		t.Errorf("runs/seed not recorded: %+v", res)
	}
	if res.Yield < 0 || res.Yield > 1 {
		t.Errorf("yield %v", res.Yield)
	}
	if want := res.Yield * float64(pt.NPrimary) / float64(res.NTotal); math.Abs(res.EffectiveYield-want) > 1e-12 {
		t.Errorf("effective yield %v, want %v", res.EffectiveYield, want)
	}
	// Deterministic.
	again, err := Evaluate(context.Background(), pt, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("hex evaluation not deterministic")
	}
}

func TestEvaluateClusteredNoneClosedForm(t *testing.T) {
	pt := Point{Scenario: Scenario{Strategy: None, NPrimary: 40, P: 0.95, DefectModel: Clustered, ClusterSize: 4}}
	res, err := Evaluate(context.Background(), pt, core.SimParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-0.05 * 40 / 4)
	if math.Abs(res.Yield-want) > 1e-12 {
		t.Errorf("clustered none yield %v, want exp(-λ) = %v", res.Yield, want)
	}
	if res.Runs != 0 {
		t.Errorf("closed-form point reports %d runs", res.Runs)
	}
}

// TestEvaluateClusteredNoneDefaultsClusterSize is the regression pin for the
// unguarded division: a zero ClusterSize on the direct Evaluate path used to
// reach the closed form as exp(-Inf) = 0 silently. It must normalize to the
// default cluster size instead.
func TestEvaluateClusteredNoneDefaultsClusterSize(t *testing.T) {
	pt := Point{Scenario: Scenario{Strategy: None, NPrimary: 40, P: 0.95, DefectModel: Clustered}}
	res, err := Evaluate(context.Background(), pt, core.SimParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-0.05 * 40 / DefaultClusterSize)
	if math.Abs(res.Yield-want) > 1e-12 {
		t.Errorf("zero cluster size: yield %v, want default-size closed form %v", res.Yield, want)
	}
	if res.Yield == 0 {
		t.Error("zero cluster size still collapses the closed form to 0")
	}
	if res.ClusterSize != DefaultClusterSize {
		t.Errorf("result cluster size %v, want normalized default %v", res.ClusterSize, DefaultClusterSize)
	}
}

// TestEvaluateScenarioRejectsInvalid checks EvaluateScenario validates up
// front: unnormalizable cluster sizes and malformed axes return an
// invalid-scenario error instead of silently computing nonsense.
func TestEvaluateScenarioRejectsInvalid(t *testing.T) {
	for name, sc := range map[string]Scenario{
		"cluster size below 1": {Strategy: None, NPrimary: 40, P: 0.95, DefectModel: Clustered, ClusterSize: 0.5},
		"cluster size NaN":     {Strategy: None, NPrimary: 40, P: 0.95, DefectModel: Clustered, ClusterSize: math.NaN()},
		"negative p":           {Strategy: None, NPrimary: 40, P: -0.1},
		"no primaries":         {Strategy: None, NPrimary: 0, P: 0.95},
	} {
		if _, err := EvaluateScenario(context.Background(), sc, core.SimParams{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEvaluateClusteredLocalAndShifted(t *testing.T) {
	sp := core.SimParams{Runs: 300, Seed: 2}
	for _, pt := range []Point{
		{Scenario: Scenario{Strategy: Local, Design: "DTMB(3,6)", NPrimary: 40, P: 0.94, DefectModel: Clustered, ClusterSize: 4}},
		{Scenario: Scenario{Strategy: Shifted, SpareRows: 1, NPrimary: 40, P: 0.94, DefectModel: Clustered, ClusterSize: 4}},
	} {
		res, err := Evaluate(context.Background(), pt, sp)
		if err != nil {
			t.Fatalf("%s: %v", pt.Strategy, err)
		}
		if res.Yield < 0 || res.Yield > 1 || res.Runs != 300 {
			t.Errorf("%s: malformed result %+v", pt.Strategy, res)
		}
		again, err := Evaluate(context.Background(), pt, sp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Errorf("%s: clustered evaluation not deterministic", pt.Strategy)
		}
	}
}

func TestPointModel(t *testing.T) {
	m := Point{Scenario: Scenario{DefectModel: Clustered, ClusterSize: 3}}.Model()
	if !m.Clustered || m.ClusterSize != 3 {
		t.Errorf("Model() = %+v", m)
	}
	if (Point{Scenario: Scenario{DefectModel: Independent}}).Model().Clustered {
		t.Error("independent point maps to clustered model")
	}
}
