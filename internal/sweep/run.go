package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// EvalFunc computes one grid point. Implementations must honor ctx (the
// Monte-Carlo kernel observes cancellation between chunks).
type EvalFunc func(ctx context.Context, pt Point) (PointResult, error)

// EmitFunc receives one finished point. Run calls it from a single
// goroutine, strictly in point order; returning an error cancels the sweep.
type EmitFunc func(res PointResult) error

// Run evaluates pts with up to workers concurrent evaluations (0 means
// GOMAXPROCS), emitting results strictly in point-index order as soon as
// each prefix completes. Because emission order is fixed and the kernel is
// chunk-seeded, a sweep's output is byte-identical regardless of worker
// count or scheduling.
//
// The first error — an evaluation failure at the lowest unemitted index, an
// emit error, or ctx's cancellation — cancels all outstanding evaluations.
// Run returns only after every worker goroutine has exited, so a cancelled
// sweep leaks nothing.
func Run(ctx context.Context, pts []Point, workers int, eval EvalFunc, emit EmitFunc) error {
	if len(pts) == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		res PointResult
		err error
	}
	results := make(chan outcome)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pts) || runCtx.Err() != nil {
					return
				}
				res, err := eval(runCtx, pts[i])
				// Deliberately no cancel() here on error: cancelling from a
				// worker would abort in-flight siblings at lower indices
				// with context errors, and whichever reached the collector
				// first would mask the real error — making both the emitted
				// prefix and the returned error nondeterministic. Only the
				// collector cancels, once it meets the error in point
				// order; the work evaluated in between is the price of a
				// deterministic stream. The collector drains every
				// outcome, so this send cannot block forever.
				results <- outcome{idx: i, res: res, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collect out-of-order outcomes and emit the ready prefix. firstErr is
	// deterministic: the error at the lowest point index wins (every lower
	// index has already been emitted when the collector reaches it), and
	// nothing after it is emitted. Cancellation of the remaining work
	// happens here, in point order, never in the workers.
	pending := make(map[int]outcome)
	nextEmit := 0
	var firstErr error
	for o := range results {
		pending[o.idx] = o
		for {
			cur, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			nextEmit++
			if firstErr != nil {
				continue
			}
			if cur.err != nil {
				firstErr = cur.err
				cancel()
				continue
			}
			if err := emit(cur.res); err != nil {
				firstErr = err
				cancel()
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
