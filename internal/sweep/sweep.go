// Package sweep evaluates Cartesian grids of yield scenarios — survival
// probability × array size × redundancy strategy — in one pass, reproducing
// the families of yield-vs-defect-probability curves that carry the paper's
// evaluation (Figs. 7, 9, 10) and the parameter-grid studies of the
// companion fault-tolerance work.
//
// A Spec names the axes of the grid; Expand flattens it into a deterministic
// ordered list of Points; Run evaluates the points with bounded concurrency
// while emitting results strictly in point order, so sweep output is
// byte-identical no matter how many workers execute it. Evaluate is the
// direct (uncached) evaluator over the core/yieldsim machinery; the service
// engine wraps the same Point type with its LRU cache and single-flight
// layer so every grid point of an HTTP sweep is individually cacheable.
//
// Three redundancy strategies are understood:
//
//   - "none": no spares at all; yield is the closed form p^n.
//   - "local": a DTMB(s,p) interstitial-redundancy design repaired by local
//     reconfiguration (the paper's proposal), estimated by the chunk-seeded
//     Monte-Carlo kernel.
//   - "shifted": a square array with boundary spare rows repaired by shifted
//     replacement (the baseline of the paper's Fig. 2), estimated by the
//     same kernel over sqgrid placements.
package sweep

import (
	"fmt"

	"dmfb/internal/layout"
	"dmfb/internal/stats"
)

// Strategy names a redundancy/reconfiguration scheme.
type Strategy string

// The three supported strategies.
const (
	// None is the no-redundancy baseline: any fault discards the chip.
	None Strategy = "none"
	// Local is interstitial redundancy with local reconfiguration, the
	// paper's proposal. Points carry a DTMB design name.
	Local Strategy = "local"
	// Shifted is boundary spare rows with shifted replacement, the baseline
	// of the paper's Fig. 2. Points carry a spare-row count.
	Shifted Strategy = "shifted"
)

// valid reports whether s is a known strategy.
func (s Strategy) valid() bool {
	switch s {
	case None, Local, Shifted:
		return true
	}
	return false
}

// Spec describes a sweep grid. Zero-valued axes take the defaults noted on
// each field; every combination of the applicable axes becomes one Point.
type Spec struct {
	// Strategies lists the redundancy schemes to evaluate; empty means
	// {Local}.
	Strategies []Strategy
	// Designs lists DTMB design names for the Local strategy (canonical
	// names as produced by layout, e.g. "DTMB(2,6)"); empty means the four
	// canonical Table 1 designs. Ignored by None and Shifted.
	Designs []string
	// NPrimaries lists primary-cell counts n; empty means {100}.
	NPrimaries []int
	// Ps lists explicit survival probabilities. When empty, the range
	// [PMin, PMax] is sampled at PPoints evenly spaced values.
	Ps []float64
	// PMin, PMax, PPoints define the sampled range when Ps is empty; zero
	// values mean the paper's 0.90..1.00 at 11 points.
	PMin, PMax float64
	PPoints    int
	// SpareRows lists boundary spare-row counts for the Shifted strategy;
	// empty means {1}. Ignored by None and Local.
	SpareRows []int
}

// withDefaults fills the documented defaults for empty axes.
func (s Spec) withDefaults() Spec {
	if len(s.Strategies) == 0 {
		s.Strategies = []Strategy{Local}
	}
	if len(s.Designs) == 0 {
		for _, d := range layout.AllDesigns() {
			s.Designs = append(s.Designs, d.Name)
		}
	}
	if len(s.NPrimaries) == 0 {
		s.NPrimaries = []int{100}
	}
	// The range fields default independently, so e.g. a spec setting only
	// PPoints still sweeps the paper's 0.90..1.00 band rather than a
	// degenerate [0,0] range.
	if len(s.Ps) == 0 {
		if s.PMin == 0 && s.PMax == 0 {
			s.PMin, s.PMax = 0.90, 1.00
		}
		if s.PPoints == 0 {
			s.PPoints = 11
		}
	}
	if len(s.SpareRows) == 0 {
		s.SpareRows = []int{1}
	}
	return s
}

// PValues returns the survival probabilities the sweep samples.
func (s Spec) PValues() []float64 {
	s = s.withDefaults()
	if len(s.Ps) > 0 {
		return s.Ps
	}
	if s.PPoints == 1 {
		return []float64{s.PMin}
	}
	return stats.Linspace(s.PMin, s.PMax, s.PPoints)
}

// validate checks the axes of an already-defaulted spec.
func (s Spec) validate() error {
	for _, st := range s.Strategies {
		if !st.valid() {
			return fmt.Errorf("sweep: unknown strategy %q (want none, local or shifted)", st)
		}
	}
	for _, name := range s.Designs {
		if _, err := layout.DesignByName(name); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, n := range s.NPrimaries {
		if n <= 0 {
			return fmt.Errorf("sweep: primary-cell count %d must be positive", n)
		}
	}
	if len(s.Ps) == 0 {
		if s.PPoints < 1 {
			return fmt.Errorf("sweep: p_points %d must be at least 1", s.PPoints)
		}
		if s.PMin > s.PMax {
			return fmt.Errorf("sweep: p range [%v,%v] is inverted", s.PMin, s.PMax)
		}
	}
	for _, p := range s.PValues() {
		if p != p || p < 0 || p > 1 {
			return fmt.Errorf("sweep: survival probability %v outside [0,1]", p)
		}
	}
	for _, r := range s.SpareRows {
		if r < 1 {
			return fmt.Errorf("sweep: spare-row count %d must be at least 1", r)
		}
	}
	return nil
}

// NumPoints returns the number of grid points Expand would produce.
func (s Spec) NumPoints() int {
	s = s.withDefaults()
	nps := len(s.NPrimaries) * len(s.PValues())
	total := 0
	for _, st := range s.Strategies {
		switch st {
		case Local:
			total += len(s.Designs) * nps
		case Shifted:
			total += len(s.SpareRows) * nps
		default:
			total += nps
		}
	}
	return total
}

// Point is one scenario of a sweep grid: a redundancy strategy with its
// strategy-specific axis value, an array size, and a survival probability.
type Point struct {
	// Index is the point's position in the sweep's deterministic order.
	Index int
	// Strategy selects the redundancy/reconfiguration scheme.
	Strategy Strategy
	// Design is the DTMB design name (Local strategy only; "" otherwise).
	Design string
	// NPrimary is the number of working cells n.
	NPrimary int
	// SpareRows is the boundary spare-row count (Shifted only; 0 otherwise).
	SpareRows int
	// P is the cell survival probability.
	P float64
}

// Expand validates the spec and flattens it into its ordered point list.
// The order is deterministic: strategies in the given order; within a
// strategy the applicable strategy axis (design or spare rows) varies
// slowest, then NPrimary, then P fastest.
func (s Spec) Expand() ([]Point, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	ps := s.PValues()
	pts := make([]Point, 0, s.NumPoints())
	add := func(pt Point) {
		pt.Index = len(pts)
		pts = append(pts, pt)
	}
	for _, st := range s.Strategies {
		switch st {
		case Local:
			for _, d := range s.Designs {
				for _, n := range s.NPrimaries {
					for _, p := range ps {
						add(Point{Strategy: Local, Design: d, NPrimary: n, P: p})
					}
				}
			}
		case Shifted:
			for _, r := range s.SpareRows {
				for _, n := range s.NPrimaries {
					for _, p := range ps {
						add(Point{Strategy: Shifted, SpareRows: r, NPrimary: n, P: p})
					}
				}
			}
		default:
			for _, n := range s.NPrimaries {
				for _, p := range ps {
					add(Point{Strategy: None, NPrimary: n, P: p})
				}
			}
		}
	}
	return pts, nil
}
